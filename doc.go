// Package repro is a from-scratch Go reproduction of "A Principled
// Approach to Bridging the Gap between Graph Data and their Schemas"
// (Arenas, Díaz, Fokoue, Kementsietsidis, Srinivas — VLDB 2014): a rule
// language for RDF structuredness measures, the sort-refinement problem,
// its ILP reduction, and the paper's full experimental evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The root package holds
// the benchmark harness (bench_test.go) that regenerates every table
// and figure; the library lives under internal/.
package repro
