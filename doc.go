// Package repro is a from-scratch Go reproduction of "A Principled
// Approach to Bridging the Gap between Graph Data and their Schemas"
// (Arenas, Díaz, Fokoue, Kementsietsidis, Srinivas — VLDB 2014): a rule
// language for RDF structuredness measures, the sort-refinement problem,
// its ILP reduction, and the paper's full experimental evaluation —
// plus the live half the paper doesn't have: an incremental
// structuredness engine (internal/incr) and an HTTP query service
// (cmd/rdfserved) maintaining views, σ counts and refinements under
// continuous triple ingestion.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The root package holds
// the benchmark harness (bench_test.go) that regenerates every table
// and figure; the library lives under internal/.
package repro
