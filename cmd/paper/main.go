// Command paper regenerates the tables and figures of the paper's
// evaluation (Section 7) against the calibrated synthetic datasets.
//
// Usage:
//
//	paper -exp all            # every artifact
//	paper -exp fig4a          # one artifact
//	paper -list               # available artifacts
//	paper -exp fig8 -quick    # reduced budgets
//	paper -exp fig2 -scale 1  # full paper-scale datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiments")
	scale := flag.Float64("scale", 0.01, "dataset scale in (0,1]")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced search budgets")
	workers := flag.Int("workers", 0, "refinement-engine parallelism (0 = all cores, 1 = sequential; results are identical)")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *quick, Workers: *workers}
	run := func(r experiments.Runner) {
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("%s(completed in %v)\n\n", rep, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			run(r)
		}
		return
	}
	r, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "paper: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(r)
}
