// Command rdfserved is a long-running structuredness service over a
// mutable RDF dataset. It ingests triple add/remove batches over HTTP,
// maintains the signature view and the closed-form σ counts
// incrementally (internal/incr), and serves σ reads and sort
// refinements against consistent copy-on-write snapshots while
// ingestion continues.
//
// Usage:
//
//	rdfserved -addr :8077
//	rdfserved -addr :8077 -in persons.nt -auto-refine -fn cov -theta 0.9
//
// Endpoints:
//
//	POST /triples   {"add": ["<s> <p> <o> ."], "remove": [...]}  (or a raw N-Triples body)
//	GET  /sigma?fn=cov|sim|dep[p1,p2]|symdep[p1,p2]
//	GET  /refine?fn=cov&mode=lowestk|highesttheta&theta=0.9&k=2&workers=0&engine=auto
//	GET  /stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	in := flag.String("in", "", "preload an N-Triples (.nt) or Turtle (.ttl) file")
	keepSubjects := flag.Bool("keep-subjects", false, "retain subject URIs per signature in snapshots")
	ignore := flag.String("ignore", "", "comma-separated predicate URIs to exclude from the view (rdf:type always is)")
	autoRefine := flag.Bool("auto-refine", false, "re-refine in the background when σ drifts")
	fnName := flag.String("fn", "cov", "measure for auto-refinement: cov, sim, dep[p1,p2], symdep[p1,p2]")
	mode := flag.String("mode", "lowestk", "auto-refinement strategy: lowestk or highesttheta")
	theta := flag.Float64("theta", 0.9, "threshold for lowestk auto-refinement")
	k := flag.Int("k", 2, "sort budget for highesttheta auto-refinement")
	drift := flag.Float64("drift", 0.01, "σ-drift threshold that triggers auto-refinement")
	workers := flag.Int("workers", 0, "refinement parallelism for the auto-refiner (0 = all cores)")
	maxBodyMB := flag.Int64("max-body-mb", 64, "request body cap in MiB")
	flag.Parse()

	var opts incr.Options
	opts.KeepSubjects = *keepSubjects
	if *ignore != "" {
		for _, p := range strings.Split(*ignore, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.IgnoreProperties = append(opts.IgnoreProperties, p)
			}
		}
	}
	d := incr.NewDataset(opts)

	if *in != "" {
		if err := preload(d, *in); err != nil {
			fmt.Fprintln(os.Stderr, "rdfserved:", err)
			os.Exit(1)
		}
		st := d.Stats()
		log.Printf("preloaded %s: %d triples, %d subjects, %d signatures",
			*in, st.Triples, st.Subjects, st.Signatures)
	}

	srvOpts := serve.Options{MaxBodyBytes: *maxBodyMB << 20}
	if *autoRefine {
		fn, rule, err := core.Builtin(*fnName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfserved:", err)
			os.Exit(1)
		}
		ropts := incr.RefinerOptions{
			Fn: fn, Rule: rule, Drift: *drift,
			Search: refine.SearchOptions{Workers: *workers},
		}
		switch *mode {
		case "lowestk":
			ropts.Mode = incr.ModeLowestK
			ropts.Theta1, ropts.Theta2 = int64(*theta*1000+0.5), 1000
		case "highesttheta":
			ropts.Mode = incr.ModeHighestTheta
			ropts.K = *k
		default:
			fmt.Fprintf(os.Stderr, "rdfserved: unknown mode %q\n", *mode)
			os.Exit(1)
		}
		srvOpts.Refiner = incr.NewRefiner(d, ropts)
	}

	log.Printf("rdfserved listening on %s", *addr)
	if err := http.ListenAndServe(*addr, serve.New(d, srvOpts)); err != nil {
		fmt.Fprintln(os.Stderr, "rdfserved:", err)
		os.Exit(1)
	}
}

// preload streams a dump into the dataset in bounded batches, so large
// files ingest without materializing an intermediate triple list.
func preload(d *incr.Dataset, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".ttl", ".turtle":
		_, err = d.AddStreamIDs(0, func(emit func(rdf.IDTriple) error) error {
			return rdf.ReadTurtleIDs(f, d.Dict(), emit)
		})
	default:
		_, err = d.AddNTriples(f, 0)
	}
	return err
}
