// Command rdfserved is a long-running structuredness service over a
// mutable RDF dataset. It ingests triple add/remove batches over HTTP,
// maintains the signature view and the closed-form σ counts
// incrementally (internal/incr), and serves σ reads and sort
// refinements against consistent copy-on-write snapshots while
// ingestion continues. With -shards N > 1 the dataset is partitioned
// into N subject-hash shards over one shared term dictionary, so
// concurrent ingest batches on different subjects proceed in parallel;
// merged σ reads and snapshots are exact (subject-disjoint shards make
// every aggregate additive).
//
// Usage:
//
//	rdfserved -addr :8077
//	rdfserved -addr :8077 -shards 8 -in persons.nt -auto-refine -fn cov -theta 0.9
//	rdfserved -addr :8077 -shards 4 -data-dir /var/lib/rdfserved -fsync 10ms
//
// With -data-dir every applied batch is written to a per-shard
// write-ahead log and the engine state is checkpointed periodically;
// after a crash the process replays the directory and resumes exactly
// where acknowledged ingestion left off (see internal/wal).
//
// Endpoints:
//
//	POST /triples   {"add": ["<s> <p> <o> ."], "remove": [...]}  (or a raw N-Triples body)
//	GET  /sigma?fn=cov|sim|dep[p1,p2]|symdep[p1,p2]
//	GET  /refine?fn=cov&mode=lowestk|highesttheta&theta=0.9&k=2&workers=0&engine=auto
//	GET  /stats
//	GET  /metrics          (Prometheus text; disable with -metrics=false)
//	GET  /debug/pprof/*    (only with -pprof)
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight
// requests drain, any running background auto-refine search is
// cancelled, and the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/protect"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/serve"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	in := flag.String("in", "", "preload an N-Triples (.nt) or Turtle (.ttl) file")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "subject-hash ingest shards (1 = the single-dataset engine)")
	keepSubjects := flag.Bool("keep-subjects", false, "retain subject URIs per signature in snapshots")
	noPairCounts := flag.Bool("no-pair-counts", false, "disable the O(|P|²) live pair-count tracker; dep/symdep reads fall back to snapshot evaluation")
	ignore := flag.String("ignore", "", "comma-separated predicate URIs to exclude from the view (rdf:type always is)")
	autoRefine := flag.Bool("auto-refine", false, "re-refine in the background when σ drifts")
	fnName := flag.String("fn", "cov", "measure for auto-refinement: cov, sim, dep[p1,p2], symdep[p1,p2]")
	mode := flag.String("mode", "lowestk", "auto-refinement strategy: lowestk or highesttheta")
	theta := flag.Float64("theta", 0.9, "threshold for lowestk auto-refinement")
	k := flag.Int("k", 2, "sort budget for highesttheta auto-refinement")
	drift := flag.Float64("drift", 0.01, "σ-drift threshold that triggers auto-refinement")
	workers := flag.Int("workers", 0, "refinement parallelism for the auto-refiner (0 = all cores)")
	maxBodyMB := flag.Int64("max-body-mb", 64, "request body cap in MiB")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain budget")
	dataDir := flag.String("data-dir", "", "durability directory (write-ahead log + checkpoints); empty = in-memory only")
	fsync := flag.String("fsync", "batch", "WAL fsync policy: batch (per ingest), off, or a group-commit window like 10ms")
	checkpointInterval := flag.Duration("checkpoint-interval", time.Minute, "background checkpoint cadence (0 = only on shutdown)")
	enableMetrics := flag.Bool("metrics", true, "serve Prometheus text metrics on GET /metrics")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof profiles under GET /debug/pprof/")
	slowRequest := flag.Duration("slow-request", time.Second, "log requests slower than this with their trace ID (0 = never)")
	// Overload protection. Gate defaults scale with the core count —
	// reads are cheap (many slots), writes contend on shard locks and
	// the WAL (fewer), refinements burn whole cores (fewest).
	ncpu := runtime.GOMAXPROCS(0)
	readLimit := flag.Int("read-limit", 8*ncpu, "max concurrent /sigma requests (0 = unlimited)")
	readQueue := flag.Int("read-queue", 16*ncpu, "max queued /sigma requests before shedding 429")
	writeLimit := flag.Int("write-limit", 2*ncpu, "max concurrent /triples requests (0 = unlimited)")
	writeQueue := flag.Int("write-queue", 4*ncpu, "max queued /triples requests before shedding 429")
	refineLimit := flag.Int("refine-limit", max(1, ncpu/2), "max concurrent /refine requests (0 = unlimited)")
	refineQueue := flag.Int("refine-queue", ncpu, "max queued /refine requests before shedding 429")
	admitWait := flag.Duration("admit-wait", 2*time.Second, "max time a queued request waits for an admission slot (0 = the request's own deadline)")
	writeDeadline := flag.Duration("write-deadline", 30*time.Second, "end-to-end budget for one POST /triples (body read, apply, fsync barrier; 0 = unbounded)")
	maxBacklogMB := flag.Int64("max-backlog-mb", 64, "WAL group-commit backlog bound in MiB; ingest blocks (then sheds) past it (0 = unbounded)")
	clusterWorker := flag.Bool("cluster-worker", false, "expose the internal worker endpoints (/internal/health, /internal/agg, /internal/view) for an rdfcoord coordinator")
	rateLimit := flag.Float64("rate-limit", 0, "per-client steady-state request rate in req/s, keyed by X-Client-Id else remote IP (0 = disabled)")
	rateLimitBurst := flag.Float64("rate-limit-burst", 0, "per-client burst allowance (0 = max(rate-limit, 1))")
	rateLimitClients := flag.Int("rate-limit-clients", 4096, "max tracked rate-limit clients; least-recently-seen evicted past this")
	sigmaCache := flag.Int("sigma-cache", 256, "epoch-keyed /sigma response cache entries (negative = disabled)")
	refineCache := flag.Int("refine-cache", 64, "epoch-keyed /refine response cache entries (negative = disabled)")
	refineSWR := flag.Bool("refine-swr", true, "serve stale cached /refine results (flagged, with epochs) while revalidating in the background")
	// Connection hygiene: without these a slowloris client parks
	// connections forever.
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout (covers slow request bodies)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	flag.Parse()

	var opts incr.Options
	opts.KeepSubjects = *keepSubjects
	opts.DisablePairCounts = *noPairCounts
	if *ignore != "" {
		for _, p := range strings.Split(*ignore, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.IgnoreProperties = append(opts.IgnoreProperties, p)
			}
		}
	}
	// -shards 1 uses the plain Dataset — the exact single-writer code
	// path, not a one-shard wrapper.
	var d incr.Engine
	if *shards > 1 {
		d = incr.NewSharded(*shards, opts)
	} else {
		d = incr.NewDataset(opts)
	}

	// The metrics registry is shared by every layer: engine ingest
	// counters, WAL fsync timings, and the serve-side HTTP histograms
	// all land in one /metrics scrape.
	var reg *metrics.Registry
	if *enableMetrics {
		reg = metrics.NewRegistry()
		d.RegisterMetrics(reg)
	}

	// Durability attaches before the preload so preloaded triples are
	// logged too; recovery replays the data directory into the fresh
	// engine first (re-preloading recovered triples is a no-op).
	var store *wal.Store
	var walInfo *serve.WALInfo
	if *dataDir != "" {
		mode, interval, err := wal.ParseSyncMode(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfserved:", err)
			os.Exit(1)
		}
		var shardList []*incr.Dataset
		switch e := d.(type) {
		case *incr.Sharded:
			shardList = e.Shards()
		case *incr.Dataset:
			shardList = []*incr.Dataset{e}
		}
		st, rec, err := wal.Open(*dataDir, d.Dict(), shardList, wal.Options{
			Mode: mode, SyncInterval: interval,
			CheckpointInterval: *checkpointInterval,
			Logf:               log.Printf,
			Metrics:            reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfserved:", err)
			os.Exit(1)
		}
		store = st
		log.Printf("rdfserved: recovered %s in %s: %d dict terms, %d shard checkpoints, %d WAL records applied (%d skipped), %d bytes scanned, %d torn bytes truncated",
			*dataDir, rec.Duration.Round(time.Millisecond), rec.Terms, rec.Checkpoints, rec.Records, rec.Skipped, rec.Bytes, rec.TornBytes)
		walInfo = &serve.WALInfo{
			Mode:        mode.String(),
			Synchronous: mode != wal.SyncOff,
			Recovery: serve.WALRecovery{
				Terms: rec.Terms, Checkpoints: rec.Checkpoints,
				Records: rec.Records, Skipped: rec.Skipped,
				Bytes: rec.Bytes, TornBytes: rec.TornBytes,
				DurationMs: rec.Duration.Milliseconds(),
			},
		}
	}

	if *in != "" {
		if err := preload(d, *in); err != nil {
			fmt.Fprintln(os.Stderr, "rdfserved:", err)
			os.Exit(1)
		}
		st := d.Stats()
		log.Printf("preloaded %s: %d triples, %d subjects, %d signatures",
			*in, st.Triples, st.Subjects, st.Signatures)
	}

	// cancelRefine aborts in-flight background auto-refine searches on
	// shutdown, so the process never sits out a long local search after
	// the listener has closed.
	cancelRefine := make(chan struct{})
	srvOpts := serve.Options{
		MaxBodyBytes:    *maxBodyMB << 20,
		Metrics:         reg,
		EnablePprof:     *enablePprof,
		SlowRequest:     *slowRequest,
		WAL:             walInfo,
		WriteDeadline:   *writeDeadline,
		SigmaCacheSize:  *sigmaCache,
		RefineCacheSize: *refineCache,
		RefineSWR:       *refineSWR,
		ClusterWorker:   *clusterWorker,
		RateLimit: protect.NewRateLimiter(protect.RateLimitConfig{
			RPS: *rateLimit, Burst: *rateLimitBurst, MaxClients: *rateLimitClients,
		}),
		Protect: protect.NewLimiter(protect.Limits{
			Read:   protect.GateConfig{Limit: *readLimit, Queue: *readQueue, MaxWait: *admitWait},
			Write:  protect.GateConfig{Limit: *writeLimit, Queue: *writeQueue, MaxWait: *admitWait},
			Refine: protect.GateConfig{Limit: *refineLimit, Queue: *refineQueue, MaxWait: *admitWait},
		}),
	}
	if store != nil {
		srvOpts.Durable = store
		srvOpts.Backlog = store
		srvOpts.MaxBacklogBytes = *maxBacklogMB << 20
	}
	if *autoRefine {
		fn, rule, err := core.Builtin(*fnName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfserved:", err)
			os.Exit(1)
		}
		ropts := incr.RefinerOptions{
			Fn: fn, Rule: rule, Drift: *drift,
			Search: refine.SearchOptions{Workers: *workers, Cancel: cancelRefine},
		}
		switch *mode {
		case "lowestk":
			ropts.Mode = incr.ModeLowestK
			ropts.Theta1, ropts.Theta2 = int64(*theta*1000+0.5), 1000
		case "highesttheta":
			ropts.Mode = incr.ModeHighestTheta
			ropts.K = *k
		default:
			fmt.Fprintf(os.Stderr, "rdfserved: unknown mode %q\n", *mode)
			os.Exit(1)
		}
		srvOpts.Refiner = incr.NewRefiner(d, ropts)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(d, srvOpts),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if sh, ok := d.(*incr.Sharded); ok {
		log.Printf("rdfserved listening on %s (%d shards)", *addr, sh.NumShards())
	} else {
		log.Printf("rdfserved listening on %s (unsharded)", *addr)
	}

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "rdfserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills immediately
	log.Printf("rdfserved: signal received, draining (budget %s)", *shutdownTimeout)
	close(cancelRefine)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rdfserved: shutdown:", err)
		os.Exit(1)
	}
	if store != nil {
		// Flush and checkpoint so a clean restart replays zero WAL
		// records.
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rdfserved: wal close:", err)
			os.Exit(1)
		}
		log.Printf("rdfserved: wal flushed and checkpointed")
	}
	log.Printf("rdfserved: bye")
}

// preload streams a dump into the engine in bounded batches (through
// the per-shard worker pool when sharded), so large files ingest
// without materializing an intermediate triple list.
func preload(d incr.Engine, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".ttl", ".turtle":
		_, err = d.AddStreamIDs(0, func(emit func(rdf.IDTriple) error) error {
			return rdf.ReadTurtleIDs(f, d.Dict(), emit)
		})
	default:
		_, err = d.AddNTriples(f, 0)
	}
	return err
}
