// Command rdfstruct computes the structuredness of an RDF dataset under
// a built-in measure or a custom rule of the paper's language.
//
// Usage:
//
//	rdfstruct -in persons.nt -sort http://xmlns.com/foaf/0.1/Person -fn cov
//	rdfstruct -in persons.nt -fn 'symdep[deathPlace,deathDate]'
//	rdfstruct -in persons.nt -rule 'c = c -> val(c) = 1'
//	rdfstruct -in persons.nt -render
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	in := flag.String("in", "", "N-Triples input file (required)")
	sortURI := flag.String("sort", "", "restrict to subjects of this rdf:type (default: whole graph)")
	fnName := flag.String("fn", "", "built-in measure: cov, sim, dep[p1,p2], symdep[p1,p2]")
	ruleSrc := flag.String("rule", "", "custom rule, e.g. 'c = c -> val(c) = 1'")
	workers := flag.Int("workers", 0, "evaluation workers for rules outside the compiled fragment (0 = all cores, 1 = sequential; result is identical)")
	render := flag.Bool("render", false, "render the signature view")
	maxRows := flag.Int("rows", 20, "max signature rows to render")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "rdfstruct: -in is required")
		os.Exit(2)
	}
	d, err := core.Load(*in, *sortURI)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfstruct:", err)
		os.Exit(1)
	}
	fmt.Println(d.Summary())
	if *render {
		fmt.Println(d.Render(*maxRows))
	}

	switch {
	case *ruleSrc != "":
		r, err := core.ParseRule(*ruleSrc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfstruct:", err)
			os.Exit(1)
		}
		val, err := d.StructurednessParallel(r, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfstruct:", err)
			os.Exit(1)
		}
		fmt.Printf("σ[%s] = %s\n", r, val)
	case *fnName != "":
		fn, _, err := core.Builtin(*fnName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfstruct:", err)
			os.Exit(1)
		}
		val, err := d.StructurednessFunc(fn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfstruct:", err)
			os.Exit(1)
		}
		fmt.Printf("σ%s = %s\n", fn.Name(), val)
	}
}
