// Command benchjson runs the perf-trajectory benchmarks — the ingest
// ablation (interned vs. string vs. incremental), the sharded-ingest
// scalability sweep (shards ∈ {1,2,4,8}), the refinement workload,
// the compiled σ-evaluator ablation (Dep eval and Dep refinement,
// scan vs pair-count kernel), the WAL durability ablation (ingest
// throughput vs fsync policy), and the wide-schema ablation (dense vs
// adaptive compressed signature containers on narrow and wide corpora)
// — and writes machine-readable results to BENCH_ingest.json,
// BENCH_shard.json, BENCH_refine.json, BENCH_eval.json, BENCH_wal.json
// and BENCH_wide.json. Each PR's CI run uploads the files as artifacts,
// so the throughput trend is diffable across commits without parsing
// `go test -bench` text.
//
// Usage:
//
//	go run ./cmd/benchjson                 # scale 0.01, write to .
//	go run ./cmd/benchjson -scale 0.002 -out artifacts/
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/rules"
)

// result is one benchmark measurement in the JSON artifact.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// artifact is the file layout shared by both outputs.
type artifact struct {
	Kind       string            `json:"kind"`
	Scale      float64           `json:"scale"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	Timestamp  string            `json:"timestamp"`
	Benchmarks []result          `json:"benchmarks"`
	Derived    map[string]string `json:"derived,omitempty"`
}

func measure(name string, bytes int64, fn func() error) (result, error) {
	var inner error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if bytes > 0 {
			b.SetBytes(bytes)
		}
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				inner = err
				b.Fatal(err)
			}
		}
	})
	if inner != nil {
		return result{}, fmt.Errorf("%s: %w", name, inner)
	}
	out := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if bytes > 0 && r.NsPerOp() > 0 {
		// 10^6 bytes, matching `go test -bench` MB/s so the JSON is
		// directly comparable with benchmark text output.
		out.MBPerSec = float64(bytes) / float64(r.NsPerOp()) * 1e9 / 1e6
	}
	return out, nil
}

func writeArtifact(path string, a artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func run() error {
	scale := flag.Float64("scale", 0.01, "DBpedia Persons generator scale for the ingest corpus")
	wideScale := flag.Float64("widescale", 0.25, "wide-schema generator scale for the compressed-signature ablation")
	outDir := flag.String("out", ".", "directory for the BENCH_*.json artifacts")
	flag.Parse()

	now := time.Now().UTC().Format(time.RFC3339)
	meta := func(kind string) artifact {
		return artifact{
			Kind: kind, Scale: *scale,
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
			Timestamp: now,
		}
	}

	// --- Ingest: the interned-vs-string ablation plus the rdfserved
	// incremental path, all over the same serialized corpus.
	data := experiments.IngestCorpus(*scale)
	size := int64(len(data))
	ingest := meta("ingest")
	for _, c := range []struct {
		name string
		fn   func() error
	}{
		{"ingest/interned", func() error { _, _, err := experiments.IngestInterned(data); return err }},
		{"ingest/string", func() error { _, _, err := experiments.IngestString(data); return err }},
		{"ingest/incremental", func() error { _, err := experiments.IngestIncremental(data, 10000); return err }},
	} {
		r, err := measure(c.name, size, c.fn)
		if err != nil {
			return err
		}
		ingest.Benchmarks = append(ingest.Benchmarks, r)
		fmt.Printf("%-22s %12.0f ns/op %8.1f MB/s %9d allocs/op\n",
			c.name, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	if len(ingest.Benchmarks) >= 2 {
		sp := ingest.Benchmarks[1].NsPerOp / ingest.Benchmarks[0].NsPerOp
		al := float64(ingest.Benchmarks[1].AllocsPerOp) / float64(ingest.Benchmarks[0].AllocsPerOp)
		ingest.Derived = map[string]string{
			"interned_speedup_vs_string": fmt.Sprintf("%.2fx", sp),
			"interned_alloc_reduction":   fmt.Sprintf("%.2fx", al),
			"corpus_bytes":               fmt.Sprintf("%d", size),
		}
	}
	if err := writeArtifact(filepath.Join(*outDir, "BENCH_ingest.json"), ingest); err != nil {
		return err
	}

	// --- Shard: ingest scalability of the sharded live engine — the
	// same corpus streamed through the per-shard worker pool at shards
	// ∈ {1, 2, 4, 8}, triples/sec derived from the corpus byte rate.
	shard := meta("shard")
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		name := fmt.Sprintf("ingest/sharded/shards=%d", n)
		r, err := measure(name, size, func() error {
			_, err := experiments.IngestSharded(data, 10000, n)
			return err
		})
		if err != nil {
			return err
		}
		shard.Benchmarks = append(shard.Benchmarks, r)
		fmt.Printf("%-28s %12.0f ns/op %8.1f MB/s %9d allocs/op\n",
			name, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	if len(shard.Benchmarks) == 4 {
		shard.Derived = map[string]string{
			"shard_speedup_8_vs_1": fmt.Sprintf("%.2fx",
				shard.Benchmarks[0].NsPerOp/shard.Benchmarks[3].NsPerOp),
			"shard_speedup_4_vs_1": fmt.Sprintf("%.2fx",
				shard.Benchmarks[0].NsPerOp/shard.Benchmarks[2].NsPerOp),
			"corpus_bytes": fmt.Sprintf("%d", size),
		}
	}
	if err := writeArtifact(filepath.Join(*outDir, "BENCH_shard.json"), shard); err != nil {
		return err
	}

	// --- Refine: the Fig4a-class search, sequential and parallel.
	ref := meta("refine")
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("refine/highesttheta/workers=%d", workers)
		r, err := measure(name, 0, func() error {
			_, err := experiments.RefineWorkload(*scale, workers)
			return err
		})
		if err != nil {
			return err
		}
		ref.Benchmarks = append(ref.Benchmarks, r)
		fmt.Printf("%-34s %12.0f ns/op\n", name, r.NsPerOp)
	}
	if err := writeArtifact(filepath.Join(*outDir, "BENCH_refine.json"), ref); err != nil {
		return err
	}

	// --- Eval: the compiled σ-evaluator trajectory — Dep evaluation via
	// signature scan vs pair-count kernel, and the Dep local search with
	// and without the compiled kernels, on the 64-signature DBpedia
	// Persons generator.
	evalArt := meta("eval")
	depView := datagen.DBpediaPersons(*scale)
	depView.PairCounts() // pay the one-time aggregate build outside the loop
	for _, c := range []struct {
		name string
		fn   func() error
	}{
		{"eval/dep/scan", func() error { _ = experiments.DepEvalScan(depView); return nil }},
		{"eval/dep/kernel", func() error { _ = experiments.DepEvalKernel(depView); return nil }},
	} {
		r, err := measure(c.name, 0, c.fn)
		if err != nil {
			return err
		}
		evalArt.Benchmarks = append(evalArt.Benchmarks, r)
		fmt.Printf("%-34s %12.0f ns/op %9d allocs/op\n", c.name, r.NsPerOp, r.AllocsPerOp)
	}
	var scans [2]int64
	for i, baseline := range []bool{false, true} {
		name := "refine/dep/pairkernel"
		if baseline {
			name = "refine/dep/baseline"
		}
		i := i
		baseline := baseline
		r, err := measure(name, 0, func() error {
			n, err := experiments.RefineDepWorkload(depView, baseline, 1)
			scans[i] = n
			return err
		})
		if err != nil {
			return err
		}
		evalArt.Benchmarks = append(evalArt.Benchmarks, r)
		fmt.Printf("%-34s %12.0f ns/op %9d allocs/op\n", name, r.NsPerOp, r.AllocsPerOp)
	}
	if scans[0] > 0 {
		evalArt.Derived = map[string]string{
			"dep_search_scans_pairkernel": fmt.Sprintf("%d", scans[0]),
			"dep_search_scans_baseline":   fmt.Sprintf("%d", scans[1]),
			"dep_search_scan_reduction":   fmt.Sprintf("%.0fx", float64(scans[1])/float64(scans[0])),
		}
	}
	if err := writeArtifact(filepath.Join(*outDir, "BENCH_eval.json"), evalArt); err != nil {
		return err
	}

	// --- WAL: ingest durability ablation — the same batched ingest with
	// no WAL, a WAL that never fsyncs, a 10ms group-commit window, and a
	// fsync per batch. The spread is the price of each durability level.
	walArt := meta("wal")
	for _, mode := range []string{"none", "off", "10ms", "batch"} {
		mode := mode
		name := "ingest/durable/fsync=" + mode
		r, err := measure(name, size, func() error {
			_, err := experiments.IngestDurable(data, 10000, mode)
			return err
		})
		if err != nil {
			return err
		}
		walArt.Benchmarks = append(walArt.Benchmarks, r)
		fmt.Printf("%-28s %12.0f ns/op %8.1f MB/s %9d allocs/op\n",
			name, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	if len(walArt.Benchmarks) == 4 {
		base := walArt.Benchmarks[0].NsPerOp
		walArt.Derived = map[string]string{
			"wal_overhead_off":      fmt.Sprintf("%.2fx", walArt.Benchmarks[1].NsPerOp/base),
			"wal_overhead_10ms":     fmt.Sprintf("%.2fx", walArt.Benchmarks[2].NsPerOp/base),
			"wal_overhead_perbatch": fmt.Sprintf("%.2fx", walArt.Benchmarks[3].NsPerOp/base),
			"corpus_bytes":          fmt.Sprintf("%d", size),
		}
	}
	if err := writeArtifact(filepath.Join(*outDir, "BENCH_wal.json"), walArt); err != nil {
		return err
	}

	// --- Wide: the compressed-signature ablation — view build and
	// pair-aggregate build under forced-dense vs adaptive containers, on
	// the narrow paper corpus (where adaptive must cost nothing) and the
	// wide schema (where it must win). The derived block carries the
	// CI gates: σ must be bit-identical across representations, and the
	// wide signature storage must shrink by at least the paper target.
	wideArt := meta("wide")
	wideArt.Derived = map[string]string{"wide_scale": fmt.Sprintf("%g", *wideScale)}
	prevPolicy := bitset.CurrentPolicy()
	defer bitset.SetPolicy(prevPolicy)
	narrowG := datagen.DBpediaPersonsGraph(*scale)
	wideG := datagen.WideSchemaGraph(datagen.WideAtScale(*wideScale, 1))
	policies := []struct {
		name string
		pol  bitset.Policy
	}{
		{"dense", bitset.PolicyDense},
		{"adaptive", bitset.PolicyAdaptive},
	}
	views := map[string]*matrix.View{}
	for _, corpus := range []struct {
		name string
		g    *rdf.Graph
	}{{"narrow", narrowG}, {"wide", wideG}} {
		for _, p := range policies {
			name := fmt.Sprintf("build/%s/%s", corpus.name, p.name)
			bitset.SetPolicy(p.pol)
			var v *matrix.View
			r, err := measure(name, 0, func() error {
				v = matrix.FromGraph(corpus.g, matrix.Options{})
				return nil
			})
			if err != nil {
				return err
			}
			views[corpus.name+"/"+p.name] = v
			wideArt.Benchmarks = append(wideArt.Benchmarks, r)
			fmt.Printf("%-28s %12.0f ns/op %9d allocs/op\n", name, r.NsPerOp, r.AllocsPerOp)
		}
	}
	// Pair-aggregate build: plane vs plane on the narrow corpus (the
	// no-regression pin), CSR on the wide one. A fresh view is decoded
	// per iteration because the aggregate is built once per view; the
	// decode cost is identical across policies, so the ratio is
	// conservative. The wide dense plane (|P|² words) is exactly the
	// footprint this tier exists to avoid, so it is not built.
	narrowEnc := views["narrow/dense"].AppendBinary(nil)
	wideEnc := views["wide/dense"].AppendBinary(nil)
	for _, c := range []struct {
		name string
		pol  bitset.Policy
		enc  []byte
	}{
		{"pairs/narrow/dense", bitset.PolicyDense, narrowEnc},
		{"pairs/narrow/adaptive", bitset.PolicyAdaptive, narrowEnc},
		{"pairs/wide/csr", bitset.PolicyAdaptive, wideEnc},
	} {
		bitset.SetPolicy(c.pol)
		r, err := measure(c.name, 0, func() error {
			v, err := matrix.DecodeView(c.enc)
			if err != nil {
				return err
			}
			v.PairCounts()
			return nil
		})
		if err != nil {
			return err
		}
		wideArt.Benchmarks = append(wideArt.Benchmarks, r)
		fmt.Printf("%-28s %12.0f ns/op %9d allocs/op\n", c.name, r.NsPerOp, r.AllocsPerOp)
	}
	bitset.SetPolicy(prevPolicy)

	// σ invariance across representations, checked on the exact
	// rationals and the canonical encoding.
	wd, wa := views["wide/dense"], views["wide/adaptive"]
	sigmaIdentical := bytes.Equal(wideEnc, wa.AppendBinary(nil)) &&
		rules.Coverage(wd).String() == rules.Coverage(wa).String() &&
		rules.Similarity(wd).String() == rules.Similarity(wa).String()
	if p := wd.Properties(); len(p) >= 2 {
		sigmaIdentical = sigmaIdentical &&
			rules.Dep(wd, p[0], p[1]).String() == rules.Dep(wa, p[0], p[1]).String()
	}
	ds, as := wd.StorageStats(), wa.StorageStats()
	wideArt.Derived["sigma_identical"] = fmt.Sprintf("%v", sigmaIdentical)
	wideArt.Derived["mem_reduction"] = fmt.Sprintf("%.2f", float64(ds.SigBytes)/float64(as.SigBytes))
	wideArt.Derived["sig_bytes_dense"] = fmt.Sprintf("%d", ds.SigBytes)
	wideArt.Derived["sig_bytes_adaptive"] = fmt.Sprintf("%d", as.SigBytes)
	wideArt.Derived["view_bytes_dense"] = fmt.Sprintf("%d", wd.MemSize())
	wideArt.Derived["view_bytes_adaptive"] = fmt.Sprintf("%d", wa.MemSize())
	wideArt.Derived["sparse_sigs_adaptive"] = fmt.Sprintf("%d", as.SparseSigs)
	// The structural no-regression pin for narrow corpora: the adaptive
	// policy must keep every narrow signature dense, so the narrow read
	// path is byte-for-byte the pre-tier code path.
	wideArt.Derived["narrow_sparse_sigs"] = fmt.Sprintf("%d",
		views["narrow/adaptive"].StorageStats().SparseSigs)
	nb := wideArt.Benchmarks
	wideArt.Derived["wide_build_ratio"] = fmt.Sprintf("%.2f", nb[3].NsPerOp/nb[2].NsPerOp)
	wideArt.Derived["narrow_build_ratio"] = fmt.Sprintf("%.2f", nb[1].NsPerOp/nb[0].NsPerOp)
	wideArt.Derived["pair_build_ratio"] = fmt.Sprintf("%.2f", nb[5].NsPerOp/nb[4].NsPerOp)
	if err := writeArtifact(filepath.Join(*outDir, "BENCH_wide.json"), wideArt); err != nil {
		return err
	}
	fmt.Printf("wide: sigma_identical=%v mem_reduction=%sx (sig bytes %d -> %d, %d compressed sigs)\n",
		sigmaIdentical, wideArt.Derived["mem_reduction"], ds.SigBytes, as.SigBytes, as.SparseSigs)

	fmt.Printf("wrote %s, %s, %s, %s, %s and %s\n",
		filepath.Join(*outDir, "BENCH_ingest.json"),
		filepath.Join(*outDir, "BENCH_shard.json"),
		filepath.Join(*outDir, "BENCH_refine.json"),
		filepath.Join(*outDir, "BENCH_eval.json"),
		filepath.Join(*outDir, "BENCH_wal.json"),
		filepath.Join(*outDir, "BENCH_wide.json"))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
