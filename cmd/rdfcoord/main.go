// Command rdfcoord is the cluster coordinator: the single front end
// for a fleet of rdfserved workers started with -cluster-worker. It
// routes triple batches to replicated shard groups by subject hash,
// replicates every write to all replicas of its group before acking,
// and answers σ reads by fanning out to one replica per group and
// merging the per-node aggregates exactly (internal/cluster) — the
// merged rationals are bit-identical to a single node holding the
// whole dataset.
//
// Topology is given as one -group flag per shard group, each listing
// its replica base URLs:
//
//	rdfcoord -addr :8070 \
//	    -group http://10.0.0.1:8077,http://10.0.0.2:8077 \
//	    -group http://10.0.0.3:8077,http://10.0.0.4:8077
//
// Failure behavior: replicas are health-checked (heartbeat probes plus
// request outcomes) and ejected after consecutive failures; reads
// fail over and hedge against slow replicas; writes that cannot reach
// every replica of a touched group are rejected 503 + Retry-After
// (never partially acked — the client retries the idempotent batch).
// Reads spanning a fully-down group answer 503, or a flagged partial
// result with ?partial=1.
//
// Endpoints mirror rdfserved: POST /triples, GET /sigma, /refine,
// /stats, /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/retry"
)

// groupFlags collects repeated -group flags, each a comma-separated
// replica URL list for one shard group.
type groupFlags [][]string

func (g *groupFlags) String() string { return fmt.Sprint([][]string(*g)) }

func (g *groupFlags) Set(v string) error {
	var urls []string
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("empty group")
	}
	*g = append(*g, urls)
	return nil
}

func main() {
	var groups groupFlags
	flag.Var(&groups, "group", "one shard group's replica base URLs, comma-separated (repeat per group)")
	addr := flag.String("addr", ":8070", "listen address")
	readTimeout := flag.Duration("read-timeout", 5*time.Second, "budget for one read attempt against one replica")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "budget for one write attempt against one replica (includes its durability barrier)")
	retryAttempts := flag.Int("retry-attempts", 4, "attempts per replica before failing over")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubles per attempt, full jitter)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "retry backoff cap")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker health-probe period (negative = request-path health only)")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that eject a replica from the read rotation")
	hedgeDelay := flag.Duration("hedge-delay", 25*time.Millisecond, "floor for the hedged-read delay (operative delay is max of this and the read p99; negative = no hedging)")
	enableMetrics := flag.Bool("metrics", true, "serve Prometheus text metrics on GET /metrics")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain budget")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	flag.Parse()

	if len(groups) == 0 {
		fmt.Fprintln(os.Stderr, "rdfcoord: at least one -group is required")
		os.Exit(1)
	}

	var reg *metrics.Registry
	if *enableMetrics {
		reg = metrics.NewRegistry()
	}
	coord, err := cluster.New(cluster.Topology{Groups: groups}, cluster.Options{
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		Retry:             retry.Policy{Attempts: *retryAttempts, Base: *retryBase, Max: *retryMax},
		HeartbeatInterval: *heartbeat,
		FailThreshold:     *failThreshold,
		HedgeDelay:        *hedgeDelay,
		Metrics:           reg,
		Logf:              log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfcoord:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           coord,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	replicas := 0
	for _, g := range groups {
		replicas += len(g)
	}
	log.Printf("rdfcoord listening on %s (%d groups, %d replicas)", *addr, len(groups), replicas)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "rdfcoord:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	log.Printf("rdfcoord: signal received, draining (budget %s)", *shutdownTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rdfcoord: shutdown:", err)
		os.Exit(1)
	}
	coord.Close()
	log.Printf("rdfcoord: bye")
}
