// Command rdfrefine discovers a sort refinement of an RDF dataset: an
// entity-preserving, signature-closed partition into implicit sorts
// whose structuredness clears a threshold (the paper's Section 4–6).
//
// Usage:
//
//	# best threshold with at most 2 sorts:
//	rdfrefine -in persons.nt -fn cov -k 2
//
//	# fewest sorts reaching threshold 0.9:
//	rdfrefine -in persons.nt -fn sim -theta 0.9
//
//	# custom rule, exact engine:
//	rdfrefine -in data.nt -rule '... -> ...' -k 3 -engine exact
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/refine"
	"repro/internal/rules"
)

func main() {
	in := flag.String("in", "", "N-Triples input file (required)")
	sortURI := flag.String("sort", "", "restrict to subjects of this rdf:type")
	fnName := flag.String("fn", "cov", "built-in measure: cov, sim, dep[p1,p2], symdep[p1,p2]")
	ruleSrc := flag.String("rule", "", "custom rule (overrides -fn)")
	k := flag.Int("k", 0, "fixed sort budget: find the highest threshold (paper setting 1)")
	theta := flag.Float64("theta", 0, "fixed threshold: find the lowest k (paper setting 2)")
	engine := flag.String("engine", "auto", "solver engine: auto, exact, heuristic")
	budget := flag.Int64("budget", 500000, "exact-solver decision budget")
	workers := flag.Int("workers", 0, "refinement-engine parallelism (0 = all cores, 1 = sequential; results are identical)")
	renderRows := flag.Int("rows", 0, "render the resulting sorts with this many rows (0 = off)")
	dumpLP := flag.String("dumplp", "", "write the paper's ILP encoding (at -k and -theta) to this file in CPLEX LP format and exit")
	flag.Parse()

	if *in == "" || (*dumpLP == "" && (*k == 0) == (*theta == 0)) {
		fmt.Fprintln(os.Stderr, "rdfrefine: need -in and exactly one of -k or -theta")
		os.Exit(2)
	}
	d, err := core.Load(*in, *sortURI)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfrefine:", err)
		os.Exit(1)
	}
	fmt.Println(d.Summary())

	var rule *rules.Rule
	if *ruleSrc != "" {
		rule, err = core.ParseRule(*ruleSrc)
	} else {
		_, rule, err = core.Builtin(*fnName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfrefine:", err)
		os.Exit(1)
	}

	if *dumpLP != "" {
		kk := *k
		if kk == 0 {
			kk = 2
		}
		p := &refine.Problem{View: d.View, Rule: rule, K: kk,
			Theta1: int64(*theta * 100), Theta2: 100}
		enc, err := refine.Encode(p, refine.EncodeOptions{SymmetryBreaking: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfrefine:", err)
			os.Exit(1)
		}
		f, err := os.Create(*dumpLP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfrefine:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := ilp.WriteLP(f, enc.Model); err != nil {
			fmt.Fprintln(os.Stderr, "rdfrefine:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote ILP instance: %d variables, %d constraints, %d rough assignments\n",
			enc.Model.NumVars(), enc.Model.NumConstraints(), len(enc.Taus))
		return
	}

	opts := refine.SearchOptions{
		Solver:  ilp.Options{MaxDecisions: *budget},
		Encode:  refine.EncodeOptions{SymmetryBreaking: true},
		Workers: *workers,
	}
	switch *engine {
	case "auto":
		opts.Engine = refine.EngineAuto
	case "exact":
		opts.Engine = refine.EngineExact
	case "heuristic":
		opts.Engine = refine.EngineHeuristic
	default:
		fmt.Fprintln(os.Stderr, "rdfrefine: unknown engine", *engine)
		os.Exit(2)
	}

	var res *core.RefineResult
	if *k > 0 {
		res, err = d.HighestTheta(rule, *k, opts)
	} else {
		t1 := int64(*theta * 100)
		res, err = d.LowestK(rule, t1, 100, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdfrefine:", err)
		os.Exit(1)
	}
	fmt.Print(res.Describe())
	if *renderRows > 0 {
		fmt.Print(res.RenderSorts(*renderRows))
	}
}
