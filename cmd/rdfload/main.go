// Command rdfload is a closed-loop load generator for rdfserved. Each
// worker runs an independent loop — pick an operation by the
// configured mix, issue it, wait for the response, record the latency,
// repeat — so offered load adapts to server capacity instead of
// piling up an open-loop queue. At the end it prints and writes a
// per-endpoint latency summary (p50/p90/p99/max) as a BENCH_*.json
// artifact, comparable across commits like the other bench emitters.
//
// Usage:
//
//	rdfload -addr http://localhost:8077 -duration 30s -workers 16
//	rdfload -reads 70 -writes 25 -refines 5 -batch 50 -out BENCH_serve.json
//	rdfload -burst 4 -slow-clients 8 -cache-probe 30 -out BENCH_protect.json
//
// Operations:
//
//	read    GET  /sigma?fn=cov          (σ scan over the snapshot)
//	write   POST /triples               (raw N-Triples batch, -batch lines)
//	refine  GET  /refine?...            (bounded heuristic search; -refine-mode)
//
// Writes draw subjects/predicates/objects from bounded synthetic
// spaces (-subjects, -props, -objects), so the signature view keeps a
// realistic overlap structure instead of degenerating to one sort or
// one-subject-per-triple.
//
// Overload mode (-burst N > 1) runs three phases instead of one steady
// window: a warm phase at -workers to establish a baseline, a burst
// phase at N×-workers to overrun the server's admission capacity, and
// a recovery phase back at -workers. The artifact then carries the
// graceful-degradation evidence: shed counts (429s, which are correct
// behavior under overload and never counted as errors), 429s missing
// their Retry-After header, 5xx counts, per-phase summaries, and the
// recovery-to-warm p99 ratio. -slow-clients adds trickle-body writers
// during the burst (slowloris-shaped pressure) and -chaos-stop-pid
// SIGSTOPs the server mid-burst to prove clients shed instead of
// hanging. -cache-probe measures the epoch-keyed /sigma cache after
// the run: repeated same-epoch reads vs nocache=1 bypasses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/retry"
)

type opKind int

const (
	opRead opKind = iota
	opWrite
	opRefine
	numOps
)

var opNames = [numOps]string{"read", "write", "refine"}

// sample is one completed request: which op, how long, the status the
// server answered with (0 = transport error), and the overload
// headers that the degradation contract is judged on.
type sample struct {
	op     opKind
	d      time.Duration
	status int
	retry  bool   // Retry-After header present
	cache  string // X-Cache header (reads/refines: hit, miss, stale, bypass)
}

// ok reports whether the request succeeded (2xx). Percentiles are
// computed over these only, so shed requests don't pollute latency.
func (s sample) ok() bool { return s.status >= 200 && s.status < 300 }

// failed reports a real failure: a transport error or a non-429 error
// status. A 429 is the server keeping its overload promise, not a
// failure, so it lands in the shed tally instead of total_errors.
func (s sample) failed() bool {
	return s.status == 0 || (s.status >= 400 && s.status != http.StatusTooManyRequests)
}

func main() {
	addr := flag.String("addr", "http://localhost:8077", "rdfserved base URL")
	duration := flag.Duration("duration", 10*time.Second, "measured run length (per warm/recovery phase in -burst mode)")
	workers := flag.Int("workers", 8, "concurrent closed-loop workers")
	reads := flag.Int("reads", 80, "relative weight of σ reads")
	writes := flag.Int("writes", 15, "relative weight of triple-batch writes")
	refines := flag.Int("refines", 5, "relative weight of refinements")
	batch := flag.Int("batch", 20, "triples per write batch")
	subjects := flag.Int("subjects", 1000, "synthetic subject space")
	props := flag.Int("props", 12, "synthetic predicate space")
	objects := flag.Int("objects", 200, "synthetic object space")
	theta := flag.Float64("theta", 0.9, "refinement threshold (lowestk mode)")
	refineMode := flag.String("refine-mode", "lowestk", "refine search setting: lowestk (θ fixed, minimize sorts — the expensive sweep) or highesttheta (k fixed, maximize θ — bounded cost, one failed probe ends it)")
	refineK := flag.Int("refine-k", 2, "sort budget for -refine-mode highesttheta")
	refineRestarts := flag.Int("refine-restarts", 2, "heuristic restarts per refine probe (0 = server default; a load generator issues bounded-cost searches, not open-ended ones)")
	refineIters := flag.Int("refine-iters", 50, "local-search iteration cap per refine probe (0 = server default)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	out := flag.String("out", "BENCH_serve.json", "JSON artifact path (empty = stdout only)")
	burst := flag.Int("burst", 0, "overload mode: burst-phase worker multiplier (0 or 1 = single steady run)")
	burstDuration := flag.Duration("burst-duration", 0, "burst phase length (0 = -duration)")
	slowClients := flag.Int("slow-clients", 0, "trickle-body writers running alongside the burst phase")
	chaosPid := flag.Int("chaos-stop-pid", 0, "PID to SIGSTOP mid-burst and SIGCONT after -chaos-stop (0 = off)")
	chaosStop := flag.Duration("chaos-stop", 2*time.Second, "how long the mid-burst SIGSTOP holds the server frozen")
	cacheProbe := flag.Int("cache-probe", 0, "post-run probe: N same-epoch /sigma reads vs N nocache=1 bypasses")
	probeFn := flag.String("probe-fn", "cov", "σ measure the cache probe reads (use a snapshot-evaluated fn, e.g. dep[p1,p2] on a -no-pair-counts server, to expose the cache win)")
	retries := flag.Int("retry", 0, "retry-until-ack attempts per write batch on 429/5xx/transport errors (0 = off; the cluster client contract — a rejected batch is re-sent verbatim, so acked state is lossless)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first write-retry backoff (doubles per attempt, full jitter)")
	retryMax := flag.Duration("retry-max", 2*time.Second, "write-retry backoff cap")
	writeLogPath := flag.String("write-log", "", "append every acked write body here — the audit trail a chaos run replays into a reference server to prove no acked write was lost")
	flag.Parse()

	total := *reads + *writes + *refines
	if total <= 0 {
		fmt.Fprintln(os.Stderr, "rdfload: operation mix sums to zero")
		os.Exit(1)
	}
	if *workers <= 0 || *batch <= 0 {
		fmt.Fprintln(os.Stderr, "rdfload: -workers and -batch must be positive")
		os.Exit(1)
	}
	client := &http.Client{Timeout: *timeout}
	cfg := &runConfig{
		addr: *addr, client: client, mixTotal: total,
		reads: *reads, writes: *writes, batch: *batch,
		seed: *seed, subjects: *subjects, props: *props, objects: *objects,
		retry: retry.Policy{Attempts: max(1, *retries), Base: *retryBase, Max: *retryMax},
	}
	switch *refineMode {
	case "lowestk":
		cfg.refineURL = fmt.Sprintf("%s/refine?fn=cov&mode=lowestk&theta=%g&engine=heuristic&workers=1", *addr, *theta)
	case "highesttheta":
		cfg.refineURL = fmt.Sprintf("%s/refine?fn=cov&mode=highesttheta&k=%d&engine=heuristic&workers=1", *addr, *refineK)
	default:
		fmt.Fprintf(os.Stderr, "rdfload: unknown -refine-mode %q\n", *refineMode)
		os.Exit(1)
	}
	if *refineRestarts > 0 {
		cfg.refineURL += fmt.Sprintf("&restarts=%d", *refineRestarts)
	}
	if *refineIters > 0 {
		cfg.refineURL += fmt.Sprintf("&maxiters=%d", *refineIters)
	}
	if *writeLogPath != "" {
		f, err := os.Create(*writeLogPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfload:", err)
			os.Exit(1)
		}
		cfg.log = &writeLog{f: f}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rdfload: write-log close:", err)
			}
		}()
	}

	// Prime outside the measured window: one write so σ and refine
	// requests never hit an empty dataset, and a fail-fast reachability
	// check before spinning up workers. Primed triples go through the
	// same acked-write path so the write log covers them too.
	prime := newWorkload(*seed, *subjects, *props, *objects)
	if s := cfg.doWrite(prime); !s.ok() {
		fmt.Fprintf(os.Stderr, "rdfload: cannot reach %s (priming write failed, status %d)\n", *addr, s.status)
		os.Exit(1)
	}

	var phases []phaseResult
	if *burst > 1 {
		bd := *burstDuration
		if bd <= 0 {
			bd = *duration
		}
		fmt.Printf("rdfload: overload mode — warm %s ×%d, burst %s ×%d, recovery %s ×%d\n",
			*duration, *workers, bd, *burst**workers, *duration, *workers)
		phases = append(phases, runPhase(cfg, "warm", *workers, *duration))
		burstPh := make(chan phaseResult, 1)
		var slow slowResult
		var slowWG sync.WaitGroup
		go func() { burstPh <- runPhase(cfg, "burst", *burst**workers, bd) }()
		if *slowClients > 0 {
			slowWG.Add(1)
			go func() { defer slowWG.Done(); slow = runSlowClients(cfg, *slowClients, bd) }()
		}
		if *chaosPid > 0 {
			go chaosStopCont(*chaosPid, bd/2, *chaosStop)
		}
		p := <-burstPh
		slowWG.Wait()
		p.slow = slow
		phases = append(phases, p)
		phases = append(phases, runPhase(cfg, "recovery", *workers, *duration))
	} else {
		phases = append(phases, runPhase(cfg, "steady", *workers, *duration))
	}

	report := summarize(phases, *workers,
		map[string]int{"reads": *reads, "writes": *writes, "refines": *refines}, *addr)
	report.WriteRetries = cfg.retried.Load()
	if *cacheProbe > 0 {
		report.CacheProbe = probeCache(client, *addr, *probeFn, *cacheProbe)
	}

	fmt.Printf("rdfload: %d requests (%d workers, mix r%d/w%d/f%d): ok=%d shed=%d err=%d 5xx=%d\n",
		report.TotalRequests, *workers, *reads, *writes, *refines,
		report.TotalRequests-report.Shed-report.TotalErrors, report.Shed, report.TotalErrors, report.Server5xx)
	for _, name := range []string{"read", "write", "refine"} {
		ep, ok := report.Endpoints[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-7s n=%-7d err=%-4d shed=%-5d rps=%-8.1f p50=%-10s p90=%-10s p99=%-10s max=%s\n",
			name, ep.Count, ep.Errors, ep.Shed, ep.RPS,
			time.Duration(ep.P50Ns), time.Duration(ep.P90Ns), time.Duration(ep.P99Ns), time.Duration(ep.MaxNs))
	}
	if report.RecoveryP99Ratio > 0 {
		fmt.Printf("  recovery read p99 = %.2f× warm baseline\n", report.RecoveryP99Ratio)
	}
	if report.CacheProbe != nil {
		fmt.Printf("  cache probe: hit_ratio=%.2f cached p50=%s nocache p50=%s speedup=%.2fx\n",
			report.CacheProbe.HitRatio,
			time.Duration(report.CacheProbe.CachedP50Ns), time.Duration(report.CacheProbe.NocacheP50Ns),
			report.CacheProbe.Speedup)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfload:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "rdfload:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rdfload:", err)
			os.Exit(1)
		}
		fmt.Printf("rdfload: wrote %s\n", *out)
	}
	if report.TotalRequests == report.TotalErrors+report.Shed {
		fmt.Fprintln(os.Stderr, "rdfload: no request succeeded")
		os.Exit(1)
	}
}

// runConfig carries the immutable knobs every phase and worker shares.
type runConfig struct {
	addr                     string
	client                   *http.Client
	mixTotal                 int
	reads, writes, batch     int
	refineURL                string // full /refine query, built once from the mode/cost flags
	seed                     int64
	subjects, props, objects int
	retry                    retry.Policy // write retry schedule (Attempts 1 = no retries)
	log                      *writeLog    // nil = no acked-write audit trail
	retried                  atomic.Int64 // extra write attempts issued
}

// writeLog is the acked-write audit trail: every 2xx write body is
// appended, so replaying the file into a fresh single-node server
// reconstructs exactly the state the server acknowledged — the
// zero-lost-acked-writes check of a chaos run.
type writeLog struct {
	mu sync.Mutex
	f  *os.File
}

func (l *writeLog) append(body string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := io.WriteString(l.f, body); err != nil {
		fmt.Fprintln(os.Stderr, "rdfload: write-log:", err)
	}
}

// doWrite issues one write batch under the retry policy: transient
// rejections (429, 5xx, transport errors) re-send the same body with
// capped exponential backoff until acked or attempts run out. Reads
// are deliberately single-attempt — the coordinator already fails
// over internally, and masking a read error here would weaken the
// zero-5xx gate a chaos run is judged on.
func (cfg *runConfig) doWrite(wl *workload) sample {
	body := wl.batchBody(cfg.batch)
	var s sample
	_ = retry.Do(context.Background(), cfg.retry, func(n int) error {
		if n > 0 {
			cfg.retried.Add(1)
		}
		s = postBody(cfg.client, cfg.addr, body)
		if s.status == 0 || s.status == http.StatusTooManyRequests || s.status >= 500 {
			return fmt.Errorf("write not acked: status %d", s.status)
		}
		return nil
	})
	if s.ok() && cfg.log != nil {
		cfg.log.append(body)
	}
	return s
}

// phaseResult is one phase's raw samples plus its identity; summaries
// are derived later so the top-level endpoint stats can aggregate
// across phases.
type phaseResult struct {
	name    string
	workers int
	dur     time.Duration
	samples []sample
	slow    slowResult
}

// runPhase spins up n closed-loop workers for dur and returns their
// merged samples.
func runPhase(cfg *runConfig, name string, n int, dur time.Duration) phaseResult {
	deadline := time.Now().Add(dur)
	perWorker := make([][]sample, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Seed folds in the phase name so warm and recovery workers
			// don't replay identical streams.
			wl := newWorkload(cfg.seed+int64(w)+int64(len(name))*7919+1, cfg.subjects, cfg.props, cfg.objects)
			var samples []sample
			for time.Now().Before(deadline) {
				var s sample
				die := wl.rng.Intn(cfg.mixTotal)
				switch {
				case die < cfg.reads:
					s = doGet(cfg.client, cfg.addr+"/sigma?fn=cov")
					s.op = opRead
				case die < cfg.reads+cfg.writes:
					s = cfg.doWrite(wl)
				default:
					s = doGet(cfg.client, cfg.refineURL)
					s.op = opRefine
				}
				samples = append(samples, s)
			}
			perWorker[w] = samples
		}(w)
	}
	wg.Wait()
	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	return phaseResult{name: name, workers: n, dur: dur, samples: all}
}

// slowResult tallies the trickle-body writers: they exist to pressure
// the server's read deadlines, so all that matters is how each attempt
// ended.
type slowResult struct {
	Clients   int `json:"clients"`
	Completed int `json:"completed"`
	Shed      int `json:"shed"`
	Errors    int `json:"errors"`
}

// trickleReader feeds a body a few bytes at a time, simulating a
// client on a terrible link. The server's write deadline / read
// timeout should cut it off rather than letting it park a worker.
type trickleReader struct {
	body  string
	pos   int
	chunk int
	pause time.Duration
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if t.pos >= len(t.body) {
		return 0, io.EOF
	}
	time.Sleep(t.pause)
	end := t.pos + t.chunk
	if end > len(t.body) {
		end = len(t.body)
	}
	n := copy(p, t.body[t.pos:end])
	t.pos += n
	return n, nil
}

// runSlowClients drives n sequential trickle-body POSTs per client for
// the burst window. Each body drips ~20 B every 100 ms, so a batch
// takes far longer than a healthy request — the server must shed or
// deadline it, never hang on it.
func runSlowClients(cfg *runConfig, n int, dur time.Duration) slowResult {
	deadline := time.Now().Add(dur)
	results := make([]slowResult, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			wl := newWorkload(cfg.seed+int64(c)+100003, cfg.subjects, cfg.props, cfg.objects)
			// A dedicated client: the trickle intentionally outlives the
			// normal per-request timeout.
			slow := &http.Client{Timeout: dur + 30*time.Second}
			r := results[c]
			for time.Now().Before(deadline) {
				body := &trickleReader{body: wl.batchBody(cfg.batch), chunk: 20, pause: 100 * time.Millisecond}
				req, err := http.NewRequest(http.MethodPost, cfg.addr+"/triples", body)
				if err != nil {
					r.Errors++
					continue
				}
				req.Header.Set("Content-Type", "text/plain")
				resp, err := slow.Do(req)
				if err != nil {
					r.Errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					r.Completed++
				case resp.StatusCode == http.StatusTooManyRequests:
					r.Shed++
				default:
					r.Errors++
				}
			}
			results[c] = r
		}(c)
	}
	wg.Wait()
	agg := slowResult{Clients: n}
	for _, r := range results {
		agg.Completed += r.Completed
		agg.Shed += r.Shed
		agg.Errors += r.Errors
	}
	return agg
}

// chaosStopCont freezes the target process mid-burst with SIGSTOP and
// resumes it with SIGCONT, simulating a GC stall / noisy neighbor.
// Clients should shed or time out during the freeze and recover after
// it — never wedge.
func chaosStopCont(pid int, after, hold time.Duration) {
	time.Sleep(after)
	fmt.Printf("rdfload: chaos — SIGSTOP pid %d for %s\n", pid, hold)
	if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
		fmt.Fprintf(os.Stderr, "rdfload: chaos SIGSTOP: %v\n", err)
		return
	}
	time.Sleep(hold)
	if err := syscall.Kill(pid, syscall.SIGCONT); err != nil {
		fmt.Fprintf(os.Stderr, "rdfload: chaos SIGCONT: %v\n", err)
		return
	}
	fmt.Printf("rdfload: chaos — SIGCONT pid %d\n", pid)
}

// probeCache measures the epoch-keyed /sigma cache with no concurrent
// writes: n same-key reads (all but the first should be hits at one
// epoch) against n nocache=1 bypasses that recompute every time. The
// measured speedup depends on how the server evaluates fn: closed-form
// measures (cov, sim with live counts) are already O(|P|), so the
// cache only saves marshalling; snapshot-evaluated measures (dep on a
// -no-pair-counts server) pay a full view scan per bypass.
func probeCache(client *http.Client, addr, fn string, n int) *cacheProbeSummary {
	base := addr + "/sigma?fn=" + url.QueryEscape(fn)
	// Warm the entry so the hit path is what gets measured.
	doGet(client, base)
	var cached, bypass []time.Duration
	hits := 0
	for i := 0; i < n; i++ {
		if s := doGet(client, base); s.ok() {
			cached = append(cached, s.d)
			if s.cache == "hit" {
				hits++
			}
		}
		if s := doGet(client, base+"&nocache=1"); s.ok() {
			bypass = append(bypass, s.d)
		}
	}
	p := &cacheProbeSummary{Fn: fn, Samples: n}
	if len(cached) > 0 {
		sort.Slice(cached, func(i, j int) bool { return cached[i] < cached[j] })
		p.HitRatio = float64(hits) / float64(len(cached))
		p.CachedP50Ns = int64(quantile(cached, 0.50))
	}
	if len(bypass) > 0 {
		sort.Slice(bypass, func(i, j int) bool { return bypass[i] < bypass[j] })
		p.NocacheP50Ns = int64(quantile(bypass, 0.50))
	}
	if p.CachedP50Ns > 0 && p.NocacheP50Ns > 0 {
		p.Speedup = float64(p.NocacheP50Ns) / float64(p.CachedP50Ns)
	}
	return p
}

// workload is a per-worker synthetic triple source with its own RNG,
// so workers never contend on randomness.
type workload struct {
	rng                     *rand.Rand
	subjects, props, object int
}

func newWorkload(seed int64, subjects, props, objects int) *workload {
	return &workload{rng: rand.New(rand.NewSource(seed)),
		subjects: subjects, props: props, object: objects}
}

// batchBody builds a raw N-Triples write body from the bounded
// synthetic spaces.
func (w *workload) batchBody(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://load/s%d> <http://load/p%d> <http://load/o%d> .\n",
			w.rng.Intn(w.subjects), w.rng.Intn(w.props), w.rng.Intn(w.object))
	}
	return b.String()
}

func doGet(client *http.Client, url string) sample {
	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		return sample{d: time.Since(start)}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{
		d: time.Since(start), status: resp.StatusCode,
		retry: resp.Header.Get("Retry-After") != "",
		cache: resp.Header.Get("X-Cache"),
	}
}

// postBody is one raw write attempt (no retries; doWrite wraps it).
func postBody(client *http.Client, addr, body string) sample {
	start := time.Now()
	resp, err := client.Post(addr+"/triples", "text/plain", strings.NewReader(body))
	if err != nil {
		return sample{op: opWrite, d: time.Since(start)}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{
		op: opWrite, d: time.Since(start), status: resp.StatusCode,
		retry: resp.Header.Get("Retry-After") != "",
	}
}

// endpointSummary is the per-operation slice of the artifact. Latencies
// are integer nanoseconds so jq-side comparisons need no float parsing;
// percentiles cover successful (2xx) requests only.
type endpointSummary struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	Shed   int     `json:"shed"`
	RPS    float64 `json:"rps"`
	MeanNs int64   `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// phaseSummary is the per-phase slice of the artifact in burst mode.
type phaseSummary struct {
	Name        string      `json:"name"`
	Workers     int         `json:"workers"`
	DurationSec float64     `json:"duration_sec"`
	Requests    int         `json:"requests"`
	OK          int         `json:"ok"`
	Shed        int         `json:"shed"`
	Server5xx   int         `json:"server_5xx"`
	Errors      int         `json:"errors"`
	ReadP99Ns   int64       `json:"read_p99_ns"`
	SlowClients *slowResult `json:"slow_clients,omitempty"`
}

// cacheSummary tallies X-Cache verdicts across every read/refine
// response in the run.
type cacheSummary struct {
	Hits     int     `json:"hits"`
	Misses   int     `json:"misses"`
	Stale    int     `json:"stale"`
	Bypass   int     `json:"bypass"`
	HitRatio float64 `json:"hit_ratio"`
}

// cacheProbeSummary is the controlled post-run cache measurement.
type cacheProbeSummary struct {
	Fn           string  `json:"fn"`
	Samples      int     `json:"samples"`
	HitRatio     float64 `json:"hit_ratio"`
	CachedP50Ns  int64   `json:"cached_p50_ns"`
	NocacheP50Ns int64   `json:"nocache_p50_ns"`
	Speedup      float64 `json:"speedup"`
}

// artifact mirrors the benchjson BENCH_*.json shape: run metadata up
// front, then the measured series. total_errors counts transport
// failures and non-429 error statuses; shed (429) is reported
// separately because it is the requested behavior under overload.
type artifact struct {
	Kind              string                     `json:"kind"`
	Target            string                     `json:"target"`
	GOOS              string                     `json:"goos"`
	GOARCH            string                     `json:"goarch"`
	NumCPU            int                        `json:"num_cpu"`
	Timestamp         string                     `json:"timestamp"`
	DurationSec       float64                    `json:"duration_sec"`
	Workers           int                        `json:"workers"`
	Mix               map[string]int             `json:"mix"`
	Endpoints         map[string]endpointSummary `json:"endpoints"`
	TotalRequests     int                        `json:"total_requests"`
	TotalErrors       int                        `json:"total_errors"`
	Shed              int                        `json:"shed"`
	RetryAfterMissing int                        `json:"retry_after_missing"`
	Server5xx         int                        `json:"server_5xx"`
	Cache             cacheSummary               `json:"cache"`
	WriteRetries      int64                      `json:"write_retries"`
	Phases            []phaseSummary             `json:"phases,omitempty"`
	RecoveryP99Ratio  float64                    `json:"recovery_p99_ratio,omitempty"`
	CacheProbe        *cacheProbeSummary         `json:"cache_probe,omitempty"`
}

// readP99 extracts the successful-read p99 from one phase's samples.
func readP99(samples []sample) int64 {
	var lat []time.Duration
	for _, s := range samples {
		if s.op == opRead && s.ok() {
			lat = append(lat, s.d)
		}
	}
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return int64(quantile(lat, 0.99))
}

func summarize(phases []phaseResult, workers int, mix map[string]int, target string) artifact {
	a := artifact{
		Kind: "serve_load", Target: target,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Workers:   workers, Mix: mix,
		Endpoints: make(map[string]endpointSummary),
	}
	byOp := make([][]time.Duration, numOps)
	counts := make([]int, numOps)
	errs := make([]int, numOps)
	sheds := make([]int, numOps)
	var totalDur time.Duration
	for _, ph := range phases {
		totalDur += ph.dur
		ps := phaseSummary{
			Name: ph.name, Workers: ph.workers, DurationSec: ph.dur.Seconds(),
			Requests: len(ph.samples), ReadP99Ns: readP99(ph.samples),
		}
		if ph.slow.Clients > 0 {
			slow := ph.slow
			ps.SlowClients = &slow
		}
		for _, s := range ph.samples {
			counts[s.op]++
			switch {
			case s.ok():
				ps.OK++
				byOp[s.op] = append(byOp[s.op], s.d)
			case s.status == http.StatusTooManyRequests:
				ps.Shed++
				sheds[s.op]++
				a.Shed++
				if !s.retry {
					a.RetryAfterMissing++
				}
			default:
				ps.Errors++
				errs[s.op]++
				if s.status >= 500 {
					ps.Server5xx++
					a.Server5xx++
				}
			}
			switch s.cache {
			case "hit":
				a.Cache.Hits++
			case "miss":
				a.Cache.Misses++
			case "stale":
				a.Cache.Stale++
			case "bypass":
				a.Cache.Bypass++
			}
		}
		a.Phases = append(a.Phases, ps)
	}
	a.DurationSec = totalDur.Seconds()
	if seen := a.Cache.Hits + a.Cache.Misses + a.Cache.Stale; seen > 0 {
		a.Cache.HitRatio = float64(a.Cache.Hits) / float64(seen)
	}
	for op := opKind(0); op < numOps; op++ {
		if counts[op] == 0 {
			continue
		}
		lat := byOp[op]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		ep := endpointSummary{
			Count: counts[op], Errors: errs[op], Shed: sheds[op],
			RPS: float64(counts[op]) / totalDur.Seconds(),
		}
		if len(lat) > 0 {
			ep.MeanNs = int64(sum) / int64(len(lat))
			ep.P50Ns = int64(quantile(lat, 0.50))
			ep.P90Ns = int64(quantile(lat, 0.90))
			ep.P99Ns = int64(quantile(lat, 0.99))
			ep.MaxNs = int64(lat[len(lat)-1])
		}
		a.Endpoints[opNames[op]] = ep
		a.TotalRequests += counts[op]
		a.TotalErrors += errs[op]
	}
	// Recovery ratio: how far the post-burst read p99 sits from the
	// warm baseline. Only meaningful in burst mode.
	var warm, rec int64
	for _, ps := range a.Phases {
		switch ps.Name {
		case "warm":
			warm = ps.ReadP99Ns
		case "recovery":
			rec = ps.ReadP99Ns
		}
	}
	if warm > 0 && rec > 0 {
		a.RecoveryP99Ratio = float64(rec) / float64(warm)
	}
	return a
}

// quantile reads the q-th quantile from an ascending latency slice
// using the nearest-rank method.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
