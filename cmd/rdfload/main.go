// Command rdfload is a closed-loop load generator for rdfserved. Each
// worker runs an independent loop — pick an operation by the
// configured mix, issue it, wait for the response, record the latency,
// repeat — so offered load adapts to server capacity instead of
// piling up an open-loop queue. At the end it prints and writes a
// per-endpoint latency summary (p50/p90/p99/max) as a BENCH_*.json
// artifact, comparable across commits like the other bench emitters.
//
// Usage:
//
//	rdfload -addr http://localhost:8077 -duration 30s -workers 16
//	rdfload -reads 70 -writes 25 -refines 5 -batch 50 -out BENCH_serve.json
//
// Operations:
//
//	read    GET  /sigma?fn=cov          (σ scan over the snapshot)
//	write   POST /triples               (raw N-Triples batch, -batch lines)
//	refine  GET  /refine?...            (lowest-k heuristic search)
//
// Writes draw subjects/predicates/objects from bounded synthetic
// spaces (-subjects, -props, -objects), so the signature view keeps a
// realistic overlap structure instead of degenerating to one sort or
// one-subject-per-triple.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

type opKind int

const (
	opRead opKind = iota
	opWrite
	opRefine
	numOps
)

var opNames = [numOps]string{"read", "write", "refine"}

// sample is one completed request: which op, how long, and whether the
// server answered 2xx.
type sample struct {
	op opKind
	d  time.Duration
	ok bool
}

func main() {
	addr := flag.String("addr", "http://localhost:8077", "rdfserved base URL")
	duration := flag.Duration("duration", 10*time.Second, "measured run length (after priming)")
	workers := flag.Int("workers", 8, "concurrent closed-loop workers")
	reads := flag.Int("reads", 80, "relative weight of σ reads")
	writes := flag.Int("writes", 15, "relative weight of triple-batch writes")
	refines := flag.Int("refines", 5, "relative weight of refinements")
	batch := flag.Int("batch", 20, "triples per write batch")
	subjects := flag.Int("subjects", 1000, "synthetic subject space")
	props := flag.Int("props", 12, "synthetic predicate space")
	objects := flag.Int("objects", 200, "synthetic object space")
	theta := flag.Float64("theta", 0.9, "refinement threshold")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	out := flag.String("out", "BENCH_serve.json", "JSON artifact path (empty = stdout only)")
	flag.Parse()

	total := *reads + *writes + *refines
	if total <= 0 {
		fmt.Fprintln(os.Stderr, "rdfload: operation mix sums to zero")
		os.Exit(1)
	}
	if *workers <= 0 || *batch <= 0 {
		fmt.Fprintln(os.Stderr, "rdfload: -workers and -batch must be positive")
		os.Exit(1)
	}
	client := &http.Client{Timeout: *timeout}

	// Prime outside the measured window: one write so σ and refine
	// requests never hit an empty dataset, and a fail-fast reachability
	// check before spinning up workers.
	prime := newWorkload(*seed, *subjects, *props, *objects)
	if _, ok := doWrite(client, *addr, prime, *batch); !ok {
		fmt.Fprintf(os.Stderr, "rdfload: cannot reach %s (priming write failed)\n", *addr)
		os.Exit(1)
	}

	deadline := time.Now().Add(*duration)
	perWorker := make([][]sample, *workers)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wl := newWorkload(*seed+int64(w)+1, *subjects, *props, *objects)
			var samples []sample
			for time.Now().Before(deadline) {
				var (
					op  opKind
					d   time.Duration
					ok  bool
					die = wl.rng.Intn(total)
				)
				switch {
				case die < *reads:
					op = opRead
					d, ok = doGet(client, *addr+"/sigma?fn=cov")
				case die < *reads+*writes:
					op = opWrite
					d, ok = doWrite(client, *addr, wl, *batch)
				default:
					op = opRefine
					d, ok = doGet(client, fmt.Sprintf(
						"%s/refine?fn=cov&mode=lowestk&theta=%g&engine=heuristic&workers=1", *addr, *theta))
				}
				samples = append(samples, sample{op, d, ok})
			}
			perWorker[w] = samples
		}(w)
	}
	wg.Wait()

	report := summarize(perWorker, *duration, *workers,
		map[string]int{"reads": *reads, "writes": *writes, "refines": *refines}, *addr)
	fmt.Printf("rdfload: %d requests in %s (%d workers, mix r%d/w%d/f%d)\n",
		report.TotalRequests, duration, *workers, *reads, *writes, *refines)
	for _, name := range []string{"read", "write", "refine"} {
		ep, ok := report.Endpoints[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-7s n=%-7d err=%-4d rps=%-8.1f p50=%-10s p90=%-10s p99=%-10s max=%s\n",
			name, ep.Count, ep.Errors, ep.RPS,
			time.Duration(ep.P50Ns), time.Duration(ep.P90Ns), time.Duration(ep.P99Ns), time.Duration(ep.MaxNs))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfload:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "rdfload:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rdfload:", err)
			os.Exit(1)
		}
		fmt.Printf("rdfload: wrote %s\n", *out)
	}
	if report.TotalRequests == report.TotalErrors {
		fmt.Fprintln(os.Stderr, "rdfload: every request failed")
		os.Exit(1)
	}
}

// workload is a per-worker synthetic triple source with its own RNG,
// so workers never contend on randomness.
type workload struct {
	rng                     *rand.Rand
	subjects, props, object int
}

func newWorkload(seed int64, subjects, props, objects int) *workload {
	return &workload{rng: rand.New(rand.NewSource(seed)),
		subjects: subjects, props: props, object: objects}
}

// batchBody builds a raw N-Triples write body from the bounded
// synthetic spaces.
func (w *workload) batchBody(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://load/s%d> <http://load/p%d> <http://load/o%d> .\n",
			w.rng.Intn(w.subjects), w.rng.Intn(w.props), w.rng.Intn(w.object))
	}
	return b.String()
}

func doGet(client *http.Client, url string) (time.Duration, bool) {
	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		return time.Since(start), false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode >= 200 && resp.StatusCode < 300
}

func doWrite(client *http.Client, addr string, wl *workload, batch int) (time.Duration, bool) {
	body := wl.batchBody(batch)
	start := time.Now()
	resp, err := client.Post(addr+"/triples", "text/plain", strings.NewReader(body))
	if err != nil {
		return time.Since(start), false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode >= 200 && resp.StatusCode < 300
}

// endpointSummary is the per-operation slice of the artifact. Latencies
// are integer nanoseconds so jq-side comparisons need no float parsing.
type endpointSummary struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	RPS    float64 `json:"rps"`
	MeanNs int64   `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// artifact mirrors the benchjson BENCH_*.json shape: run metadata up
// front, then the measured series.
type artifact struct {
	Kind          string                     `json:"kind"`
	Target        string                     `json:"target"`
	GOOS          string                     `json:"goos"`
	GOARCH        string                     `json:"goarch"`
	NumCPU        int                        `json:"num_cpu"`
	Timestamp     string                     `json:"timestamp"`
	DurationSec   float64                    `json:"duration_sec"`
	Workers       int                        `json:"workers"`
	Mix           map[string]int             `json:"mix"`
	Endpoints     map[string]endpointSummary `json:"endpoints"`
	TotalRequests int                        `json:"total_requests"`
	TotalErrors   int                        `json:"total_errors"`
}

func summarize(perWorker [][]sample, dur time.Duration, workers int, mix map[string]int, target string) artifact {
	byOp := make([][]time.Duration, numOps)
	errs := make([]int, numOps)
	for _, samples := range perWorker {
		for _, s := range samples {
			byOp[s.op] = append(byOp[s.op], s.d)
			if !s.ok {
				errs[s.op]++
			}
		}
	}
	a := artifact{
		Kind: "serve_load", Target: target,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		DurationSec: dur.Seconds(), Workers: workers, Mix: mix,
		Endpoints: make(map[string]endpointSummary),
	}
	for op := opKind(0); op < numOps; op++ {
		lat := byOp[op]
		if len(lat) == 0 {
			continue
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		a.Endpoints[opNames[op]] = endpointSummary{
			Count: len(lat), Errors: errs[op],
			RPS:    float64(len(lat)) / dur.Seconds(),
			MeanNs: int64(sum) / int64(len(lat)),
			P50Ns:  int64(quantile(lat, 0.50)),
			P90Ns:  int64(quantile(lat, 0.90)),
			P99Ns:  int64(quantile(lat, 0.99)),
			MaxNs:  int64(lat[len(lat)-1]),
		}
		a.TotalRequests += len(lat)
		a.TotalErrors += errs[op]
	}
	return a
}

// quantile reads the q-th quantile from an ascending latency slice
// using the nearest-rank method.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
