// Command rdfgen generates the calibrated synthetic datasets as
// N-Triples files.
//
// Usage:
//
//	rdfgen -dataset dbpedia -scale 0.01 -out persons.nt
//	rdfgen -dataset wordnet -scale 0.01 -out nouns.nt
//	rdfgen -dataset mixed -out mixed.nt
//	rdfgen -dataset wide -scale 0.1 -out wide.nt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	dataset := flag.String("dataset", "dbpedia", "dataset to generate: dbpedia, wordnet, mixed or wide")
	scale := flag.Float64("scale", 0.01, "subject-count scale in (0,1] (dbpedia/wordnet/wide)")
	seed := flag.Int64("seed", 1, "random seed (mixed/wide)")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var g *rdf.Graph
	switch *dataset {
	case "dbpedia":
		g = datagen.DBpediaPersonsGraph(*scale)
	case "wordnet":
		g = datagen.WordNetNounsGraph(*scale)
	case "mixed":
		g = datagen.MixedDrugSultans(datagen.MixedOptions{Seed: *seed})
	case "wide":
		g = datagen.WideSchemaGraph(datagen.WideAtScale(*scale, *seed))
	default:
		fmt.Fprintf(os.Stderr, "rdfgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdfgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rdf.WriteNTriples(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "rdfgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rdfgen: wrote %d triples (%d subjects)\n", g.Len(), g.SubjectCount())
}
