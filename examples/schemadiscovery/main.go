// Schema discovery: the paper's Section 7.4 scenario as an application.
// Two explicit sorts (Drug Companies, Sultans) are mixed into one
// untyped pile; the refinement engine re-discovers the hidden schema
// boundary from structure alone, and the result is scored against the
// ground-truth rdf:type triples.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
)

func main() {
	g := datagen.MixedDrugSultans(datagen.MixedOptions{Seed: 4})
	d, err := core.FromGraph(g, "mixed drug-companies + sultans", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Summary())
	fmt.Println(d.Render(12))

	_, covRule, _ := core.Builtin("cov")
	res, err := d.HighestTheta(covRule, 2, refine.SearchOptions{
		Heuristic: refine.HeuristicOptions{Restarts: 6, MaxIters: 100},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Describe())

	// Score the discovered split against the hidden types.
	for i, sv := range res.SortViewsBySize() {
		drugs, sultans := countTruth(g, sv)
		fmt.Printf("sort %d: %d drug companies, %d sultans\n", i+1, drugs, sultans)
	}
}

// countTruth tallies the ground-truth types of a sort's subjects.
func countTruth(g *rdf.Graph, sv *matrix.View) (drugs, sultans int) {
	for _, sg := range sv.Signatures() {
		for _, s := range sg.Subjects {
			switch datagen.TrueSort(g, s) {
			case "drug":
				drugs++
			case "sultan":
				sultans++
			}
		}
	}
	return drugs, sultans
}
