// Quickstart: load RDF triples, measure how well the data fit their
// sort, and discover a better-fitting sort refinement.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/refine"
)

// A tiny dataset of one declared sort ("Person") whose entities clearly
// split into two structural groups: people with death information and
// people without.
const triples = `
<http://ex/p1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/p1> <http://ex/name> "Ada" .
<http://ex/p1> <http://ex/birthDate> "1815" .
<http://ex/p1> <http://ex/deathDate> "1852" .
<http://ex/p2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/p2> <http://ex/name> "Grace" .
<http://ex/p2> <http://ex/birthDate> "1906" .
<http://ex/p2> <http://ex/deathDate> "1992" .
<http://ex/p3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/p3> <http://ex/name> "Linus" .
<http://ex/p3> <http://ex/birthDate> "1969" .
<http://ex/p4> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/p4> <http://ex/name> "Ken" .
<http://ex/p4> <http://ex/birthDate> "1943" .
`

func main() {
	// 1. Load the dataset, restricted to subjects typed as Person.
	d, err := core.ReadNTriples(strings.NewReader(triples), "people", "http://ex/Person")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Summary())
	fmt.Println(d.Render(10))

	// 2. Measure structuredness with the built-in coverage function
	// (how fully subjects populate the sort's columns).
	fn, rule, err := core.Builtin("cov")
	if err != nil {
		log.Fatal(err)
	}
	val, err := d.StructurednessFunc(fn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σCov of the declared sort: %s\n\n", val)

	// 3. Ask for the best 2-way sort refinement: the engine discovers
	// the alive/dead split and both implicit sorts reach σCov = 1.
	res, err := d.HighestTheta(rule, 2, refine.SearchOptions{Engine: refine.EngineExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Describe())
	fmt.Println(res.RenderSorts(5))
}
