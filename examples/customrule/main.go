// Custom rules: the paper's language (Section 3) lets users define
// their own structuredness measures. This example writes three custom
// rules — a column-ignoring coverage, a "mandatory property" check and
// a value-agreement measure — and evaluates them against two generated
// datasets.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	persons := core.FromView("DBpedia Persons", datagen.DBpediaPersons(0.01))
	nouns := core.FromView("WordNet Nouns", datagen.WordNetNouns(0.01))

	// Rule 1 — coverage that ignores the description column (Section
	// 3.2's "modified σCov"): how structured are persons if we accept
	// that descriptions are optional?
	covNoDesc := "c = c && prop(c) != <description> -> val(c) = 1"

	// Rule 2 — mandatory property: every cell in the name column must
	// be 1. σ = 1 iff name is universal.
	nameMandatory := "prop(c) = <name> -> val(c) = 1"

	// Rule 3 — same-row agreement between the two birth columns: given
	// a subject's birthDate and birthPlace cells, how often do they
	// agree (both present or both absent)?
	birthAgree := "subj(c1) = subj(c2) && prop(c1) = <birthDate> && prop(c2) = <birthPlace> -> val(c1) = val(c2)"

	for _, d := range []*core.Dataset{persons, nouns} {
		fmt.Println(d.Summary())
		for _, src := range []string{covNoDesc, nameMandatory, birthAgree} {
			rule, err := core.ParseRule(src)
			if err != nil {
				log.Fatal(err)
			}
			val, err := d.Structuredness(rule)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  σ[%s]\n      = %s\n", rule, val)
		}
		fmt.Println()
	}
}
