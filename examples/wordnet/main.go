// WordNet Nouns walkthrough: a highly structured dataset where sort
// refinement behaves very differently from DBpedia Persons — the
// paper's Figures 3, 6 and 7. Demonstrates how Cov and Sim disagree on
// the same data and what the lowest-k search says about schema quality.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ilp"
	"repro/internal/refine"
)

func main() {
	scale := flag.Float64("scale", 0.01, "subject-count scale in (0,1]")
	flag.Parse()

	d := core.FromView("WordNet Nouns", datagen.WordNetNouns(*scale))
	fmt.Println(d.Summary())
	fmt.Println(d.Render(8))

	// Cov and Sim disagree sharply on WordNet: nearly-empty columns are
	// punished by Cov (0.44) and forgiven by Sim (0.93).
	covFn, covRule, _ := core.Builtin("cov")
	simFn, simRule, _ := core.Builtin("sim")
	covVal, _ := d.StructurednessFunc(covFn)
	simVal, _ := d.StructurednessFunc(simFn)
	fmt.Printf("σCov = %.2f vs σSim = %.2f — the rule choice changes the verdict\n\n",
		covVal.Value(), simVal.Value())

	opts := refine.SearchOptions{
		Heuristic: refine.HeuristicOptions{Restarts: 4, MaxIters: 60},
		Solver:    ilp.Options{MaxDecisions: 30_000},
		Encode:    refine.EncodeOptions{SymmetryBreaking: true, MaxTVars: 3_000},
	}

	// k = 2 under Cov barely helps (Figure 6a): the dominant signatures
	// share most properties, so no 2-way split fixes the sparse tail.
	res, err := d.HighestTheta(covRule, 2, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best 2-sort refinement under σCov (Figure 6a):")
	fmt.Print(res.Describe())

	// The lowest-k question exposes it too: reaching θ = 0.9 under Cov
	// requires dissolving the sort into dozens of near-singleton groups
	// (Figure 7a) — evidence the original sort was already fine.
	low, err := d.LowestK(simRule, 95, 100, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlowest k with σSim ≥ 0.95: k = %d (%d instances, %v)\n",
		low.Outcome.K, low.Outcome.Instances, low.Outcome.Elapsed.Round(1000000))
}
