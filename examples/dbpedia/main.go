// DBpedia Persons walkthrough: the paper's flagship scenario. The
// generator reproduces the published statistics of the DBpedia Persons
// sort; the refinement engine rediscovers the alive/dead split of
// Figure 4a and the dependency structure of Tables 1 and 2.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/refine"
	"repro/internal/rules"
)

func main() {
	scale := flag.Float64("scale", 0.01, "subject-count scale in (0,1]")
	flag.Parse()

	d := core.FromView("DBpedia Persons", datagen.DBpediaPersons(*scale))
	fmt.Println(d.Summary())
	fmt.Println(d.Render(10))

	// How obtainable is a death date given a death place? The paper's
	// surprising Table 1 answer: knowing the deathPlace implies you
	// know nearly everything else about the person.
	for _, p2 := range []string{datagen.PropBirthPlace, datagen.PropDeathDate, datagen.PropBirthDate} {
		val := rules.Dep(d.View, datagen.PropDeathPlace, p2)
		fmt.Printf("σDep[deathPlace → %s] = %.2f\n", p2, val.Value())
	}
	fmt.Println()

	// Discover the alive/dead split (Figure 4a): k = 2 under σCov.
	_, covRule, _ := core.Builtin("cov")
	res, err := d.HighestTheta(covRule, 2, refine.SearchOptions{
		Heuristic: refine.HeuristicOptions{Restarts: 4, MaxIters: 80},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("k=2 refinement under σCov (the alive/dead split):")
	fmt.Print(res.Describe())

	// Confirm the semantics: the larger implicit sort uses no death
	// columns at all.
	larger := res.SortViewsBySize()[0]
	counts := larger.PropertyCounts()
	dd, _ := larger.PropertyIndex(datagen.PropDeathDate)
	dp, _ := larger.PropertyIndex(datagen.PropDeathPlace)
	fmt.Printf("larger sort deathDate/deathPlace counts: %d/%d (0/0 = alive)\n",
		counts[dd], counts[dp])
}
