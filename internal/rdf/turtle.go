package rdf

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"repro/internal/term"
)

// ReadTurtle streams a practical subset of the Turtle syntax from r,
// calling emit for every triple in document order: @prefix and @base
// directives, prefixed names, the `a` keyword for rdf:type, predicate
// lists (`;`), object lists (`,`), quoted and long-quoted literals with
// language tags or datatypes, numeric and boolean literal shorthands,
// and comments. Blank node property lists and collections are not
// supported (the paper's datasets do not use them); encountering one is
// an error, not a silent skip.
//
// The reader is incremental: input is pulled through a window buffer
// that is discarded statement by statement, so memory use is bounded by
// the largest single statement, not the document size.
func ReadTurtle(r io.Reader, emit func(Triple) error) error {
	p := &turtleParser{
		r:        bufio.NewReaderSize(r, 64*1024),
		prefixes: map[string]string{},
		emit:     emit,
	}
	return p.run()
}

// ReadTurtleIDs is ReadTurtle with interned output: every term is
// interned into dict straight from the parser's window buffer, so a
// term the dictionary already knows costs no string allocation
// (prefixed names and base-relative IRIs resolve through a reused
// scratch buffer before interning).
func ReadTurtleIDs(r io.Reader, dict *term.Dict, emit func(IDTriple) error) error {
	p := &turtleParser{
		r:        bufio.NewReaderSize(r, 64*1024),
		prefixes: map[string]string{},
		dict:     dict,
		emitID:   emit,
		typeID:   dict.Intern(TypeURI),
	}
	return p.run()
}

// ParseTurtle reads Turtle from r into a new graph, through the
// interned fast path. See ReadTurtle for the supported grammar.
func ParseTurtle(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadTurtleIDs(r, g.Dict(), func(it IDTriple) error { g.AddID(it); return nil }); err != nil {
		return nil, err
	}
	return g, nil
}

type turtleParser struct {
	r *bufio.Reader
	// buf[i:] is the unconsumed window; fill appends, and the consumed
	// prefix is dropped between top-level statements.
	buf      []byte
	i        int
	atEOF    bool
	readErr  error // non-EOF read failure; surfaced by run
	line     int
	prefixes map[string]string
	base     string
	emit     func(Triple) error

	// Interning mode (emitID non-nil): terms go straight from the
	// window buffer into dict.
	dict    *term.Dict
	emitID  func(IDTriple) error
	typeID  term.ID
	scratch []byte // prefixed-name / base-resolution concat buffer
	lit     []byte // literal-unescape buffer
}

func (p *turtleParser) run() error {
	err := p.parse()
	// An underlying read error outranks the syntax error the resulting
	// truncation may have produced.
	if p.readErr != nil {
		return fmt.Errorf("turtle: read: %w", p.readErr)
	}
	return err
}

func (p *turtleParser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line + 1, Col: 0, Msg: "turtle: " + fmt.Sprintf(format, args...)}
}

// fill ensures at least n unconsumed bytes are buffered, reading more
// input as needed, and reports whether it succeeded (false near end of
// input — true EOF or a read failure, recorded in readErr).
func (p *turtleParser) fill(n int) bool {
	for len(p.buf)-p.i < n && !p.atEOF {
		if cap(p.buf)-len(p.buf) < 4096 {
			grown := make([]byte, len(p.buf), 2*cap(p.buf)+64*1024)
			copy(grown, p.buf)
			p.buf = grown
		}
		m, err := p.r.Read(p.buf[len(p.buf):cap(p.buf)])
		p.buf = p.buf[:len(p.buf)+m]
		if err != nil {
			p.atEOF = true
			if err != io.EOF {
				p.readErr = err
			}
		}
	}
	return len(p.buf)-p.i >= n
}

// compactWindow drops the consumed prefix; called between statements so
// buffered memory stays bounded by one statement.
func (p *turtleParser) compactWindow() {
	if p.i == 0 {
		return
	}
	p.buf = append(p.buf[:0], p.buf[p.i:]...)
	p.i = 0
}

func (p *turtleParser) eof() bool                 { return !p.fill(1) }
func (p *turtleParser) cur() byte                 { return p.buf[p.i] }
func (p *turtleParser) str(start, end int) string { return string(p.buf[start:end]) }

// hasPrefix reports whether the unconsumed input starts with s; it does
// not consume. Allocation-free: it runs once per byte when scanning for
// a long literal's closing quotes.
func (p *turtleParser) hasPrefix(s string) bool {
	if !p.fill(len(s)) {
		return false
	}
	for j := 0; j < len(s); j++ {
		if p.buf[p.i+j] != s[j] {
			return false
		}
	}
	return true
}

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.cur()
		switch {
		case c == '\n':
			p.line++
			p.i++
		case c == ' ' || c == '\t' || c == '\r':
			p.i++
		case c == '#':
			for !p.eof() && p.cur() != '\n' {
				p.i++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		p.compactWindow()
		if p.eof() {
			return nil
		}
		if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		if p.hasKeyword("@base") || p.hasKeyword("BASE") {
			if err := p.parseBase(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseTriples(); err != nil {
			return err
		}
	}
}

// hasKeyword reports whether the input continues with the keyword
// (case-sensitive) followed by whitespace; it does not consume.
func (p *turtleParser) hasKeyword(kw string) bool {
	if !p.hasPrefix(kw) {
		return false
	}
	if !p.fill(len(kw) + 1) {
		return false
	}
	c := p.buf[p.i+len(kw)]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func (p *turtleParser) consumeKeyword() string {
	start := p.i
	for !p.eof() && p.cur() != ' ' && p.cur() != '\t' && p.cur() != '\n' {
		p.i++
	}
	return p.str(start, p.i)
}

func (p *turtleParser) parsePrefix() error {
	kw := p.consumeKeyword()
	p.skipWS()
	// prefix name ends with ':'
	start := p.i
	for {
		if p.eof() {
			return p.errf("malformed %s: missing ':'", kw)
		}
		if p.cur() == ':' {
			break
		}
		p.i++
	}
	name := strings.TrimSpace(p.str(start, p.i))
	p.i++
	p.skipWS()
	uri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = uri
	p.skipWS()
	if kw == "@prefix" {
		if p.eof() || p.cur() != '.' {
			return p.errf("@prefix missing terminating '.'")
		}
		p.i++
	}
	return nil
}

func (p *turtleParser) parseBase() error {
	kw := p.consumeKeyword()
	p.skipWS()
	uri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.base = uri
	p.skipWS()
	if kw == "@base" {
		if p.eof() || p.cur() != '.' {
			return p.errf("@base missing terminating '.'")
		}
		p.i++
	}
	return nil
}

func (p *turtleParser) parseTriples() error {
	if p.emitID != nil {
		return p.parseTriplesID()
	}
	subj, err := p.parseSubject()
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.parseObject()
			if err != nil {
				return err
			}
			if err := p.emit(Triple{Subject: subj, Predicate: pred, Object: obj}); err != nil {
				return err
			}
			p.skipWS()
			if !p.eof() && p.cur() == ',' {
				p.i++
				continue
			}
			break
		}
		more, err := p.endPredicateList()
		if err != nil || !more {
			return err
		}
	}
}

// parseTriplesID is parseTriples in interning mode: subjects and
// predicates intern once per group, so a `;`/`,` statement emitting
// many triples touches the dictionary once per distinct term.
func (p *turtleParser) parseTriplesID() error {
	p.skipWS()
	subj, err := p.parseSubjectID()
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.parsePredicateID()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, kind, err := p.parseObjectID()
			if err != nil {
				return err
			}
			if err := p.emitID(IDTriple{S: subj, P: pred, O: obj, OKind: kind}); err != nil {
				return err
			}
			p.skipWS()
			if !p.eof() && p.cur() == ',' {
				p.i++
				continue
			}
			break
		}
		more, err := p.endPredicateList()
		if err != nil || !more {
			return err
		}
	}
}

// endPredicateList consumes the ';' or '.' after an object list and
// reports whether another predicate follows.
func (p *turtleParser) endPredicateList() (more bool, err error) {
	p.skipWS()
	if p.eof() {
		return false, p.errf("unexpected end of input, expected ';' or '.'")
	}
	switch p.cur() {
	case ';':
		p.i++
		p.skipWS()
		// A dangling ';' before '.' is legal Turtle.
		if !p.eof() && p.cur() == '.' {
			p.i++
			return false, nil
		}
		return true, nil
	case '.':
		p.i++
		return false, nil
	default:
		return false, p.errf("expected ';' or '.', got %q", p.cur())
	}
}

func (p *turtleParser) parseSubject() (string, error) {
	p.skipWS()
	if p.eof() {
		return "", p.errf("expected subject")
	}
	switch p.cur() {
	case '<':
		return p.parseIRIRef()
	case '_':
		return p.parseBlankLabel()
	case '[':
		return "", p.errf("blank node property lists are not supported")
	case '(':
		return "", p.errf("collections are not supported")
	}
	return p.parsePrefixedName()
}

func (p *turtleParser) parseSubjectID() (term.ID, error) {
	if p.eof() {
		return 0, p.errf("expected subject")
	}
	switch p.cur() {
	case '<':
		return p.internIRIRef()
	case '_':
		return p.internBlankLabel()
	case '[':
		return 0, p.errf("blank node property lists are not supported")
	case '(':
		return 0, p.errf("collections are not supported")
	}
	return p.internPrefixedName()
}

// isA reports whether the input is the `a` keyword predicate; consumes
// it when so.
func (p *turtleParser) isA() bool {
	if p.cur() == 'a' && p.fill(2) {
		c := p.buf[p.i+1]
		if c == ' ' || c == '\t' || c == '\n' {
			p.i++
			return true
		}
	}
	return false
}

func (p *turtleParser) parsePredicate() (string, error) {
	if p.eof() {
		return "", p.errf("expected predicate")
	}
	if p.isA() {
		return TypeURI, nil
	}
	if p.cur() == '<' {
		return p.parseIRIRef()
	}
	return p.parsePrefixedName()
}

func (p *turtleParser) parsePredicateID() (term.ID, error) {
	if p.eof() {
		return 0, p.errf("expected predicate")
	}
	if p.isA() {
		return p.typeID, nil
	}
	if p.cur() == '<' {
		return p.internIRIRef()
	}
	return p.internPrefixedName()
}

func (p *turtleParser) parseObject() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("expected object")
	}
	switch c := p.cur(); {
	case c == '<':
		u, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewURI(u), nil
	case c == '_':
		b, err := p.parseBlankLabel()
		if err != nil {
			return Term{}, err
		}
		return NewURI(b), nil
	case c == '[':
		return Term{}, p.errf("blank node property lists are not supported")
	case c == '(':
		return Term{}, p.errf("collections are not supported")
	case c == '"' || c == '\'':
		v, err := p.scanTurtleLiteral(c)
		if err != nil {
			return Term{}, err
		}
		return NewLiteral(string(v)), nil
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		s, e, err := p.scanNumericLiteral()
		if err != nil {
			return Term{}, err
		}
		return NewLiteral(p.str(s, e)), nil
	case p.hasPrefix("true") || p.hasPrefix("false"):
		return NewLiteral(p.scanBooleanLiteral()), nil
	}
	u, err := p.parsePrefixedName()
	if err != nil {
		return Term{}, err
	}
	return NewURI(u), nil
}

func (p *turtleParser) parseObjectID() (term.ID, TermKind, error) {
	if p.eof() {
		return 0, URI, p.errf("expected object")
	}
	switch c := p.cur(); {
	case c == '<':
		id, err := p.internIRIRef()
		return id, URI, err
	case c == '_':
		id, err := p.internBlankLabel()
		return id, URI, err
	case c == '[':
		return 0, URI, p.errf("blank node property lists are not supported")
	case c == '(':
		return 0, URI, p.errf("collections are not supported")
	case c == '"' || c == '\'':
		v, err := p.scanTurtleLiteral(c)
		if err != nil {
			return 0, Literal, err
		}
		return p.dict.InternBytes(v), Literal, nil
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		s, e, err := p.scanNumericLiteral()
		if err != nil {
			return 0, Literal, err
		}
		return p.dict.InternBytes(p.buf[s:e]), Literal, nil
	case p.hasPrefix("true") || p.hasPrefix("false"):
		return p.dict.Intern(p.scanBooleanLiteral()), Literal, nil
	}
	id, err := p.internPrefixedName()
	return id, URI, err
}

// scanIRIRef consumes <...> and returns the offsets of the raw IRI
// content (valid until the next compactWindow).
func (p *turtleParser) scanIRIRef() (start, end int, err error) {
	if p.eof() || p.cur() != '<' {
		return 0, 0, p.errf("expected '<'")
	}
	p.i++
	start = p.i
	for !p.eof() && p.cur() != '>' {
		if p.cur() == '\n' {
			return 0, 0, p.errf("newline inside IRI")
		}
		p.i++
	}
	if p.eof() {
		return 0, 0, p.errf("unterminated IRI")
	}
	end = p.i
	p.i++
	if start == end {
		return 0, 0, p.errf("empty IRI")
	}
	return start, end, nil
}

// relativeIRI reports whether a raw IRI needs @base resolution (simple
// concatenation covers the fragment/path-suffix cases real dumps use).
func (p *turtleParser) relativeIRI(raw []byte) bool {
	return p.base != "" && !bytes.Contains(raw, []byte("://")) && !bytes.HasPrefix(raw, []byte("urn:"))
}

func (p *turtleParser) parseIRIRef() (string, error) {
	s, e, err := p.scanIRIRef()
	if err != nil {
		return "", err
	}
	if p.relativeIRI(p.buf[s:e]) {
		return p.base + p.str(s, e), nil
	}
	return p.str(s, e), nil
}

func (p *turtleParser) internIRIRef() (term.ID, error) {
	s, e, err := p.scanIRIRef()
	if err != nil {
		return 0, err
	}
	raw := p.buf[s:e]
	if p.relativeIRI(raw) {
		p.scratch = append(append(p.scratch[:0], p.base...), raw...)
		return p.dict.InternBytes(p.scratch), nil
	}
	return p.dict.InternBytes(raw), nil
}

func (p *turtleParser) scanBlankLabel() (start, end int, err error) {
	start = p.i
	if !p.fill(2) || p.buf[p.i+1] != ':' {
		return 0, 0, p.errf("malformed blank node")
	}
	p.i += 2
	for !p.eof() && isPNChar(rune(p.cur())) {
		p.i++
	}
	if p.i == start+2 {
		return 0, 0, p.errf("empty blank node label")
	}
	return start, p.i, nil
}

func (p *turtleParser) parseBlankLabel() (string, error) {
	s, e, err := p.scanBlankLabel()
	if err != nil {
		return "", err
	}
	return p.str(s, e), nil
}

func (p *turtleParser) internBlankLabel() (term.ID, error) {
	s, e, err := p.scanBlankLabel()
	if err != nil {
		return 0, err
	}
	return p.dict.InternBytes(p.buf[s:e]), nil
}

func isPNChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' ||
		(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r > 127
}

// scanPrefixedName consumes prefix:local and returns the offsets of
// both parts.
func (p *turtleParser) scanPrefixedName() (ps, pe, ls, le int, err error) {
	start := p.i
	for !p.eof() && isPNChar(rune(p.cur())) {
		p.i++
	}
	if p.eof() || p.cur() != ':' {
		got := p.str(start, p.i)
		if !p.eof() {
			got = p.str(start, p.i+1)
		}
		return 0, 0, 0, 0, p.errf("expected prefixed name, got %q", got)
	}
	ps, pe = start, p.i
	p.i++
	ls = p.i
	for !p.eof() && isPNChar(rune(p.cur())) {
		p.i++
	}
	return ps, pe, ls, p.i, nil
}

func (p *turtleParser) parsePrefixedName() (string, error) {
	ps, pe, ls, le, err := p.scanPrefixedName()
	if err != nil {
		return "", err
	}
	ns, ok := p.prefixes[string(p.buf[ps:pe])]
	if !ok {
		return "", p.errf("undeclared prefix %q", p.str(ps, pe))
	}
	return ns + p.str(ls, le), nil
}

func (p *turtleParser) internPrefixedName() (term.ID, error) {
	ps, pe, ls, le, err := p.scanPrefixedName()
	if err != nil {
		return 0, err
	}
	ns, ok := p.prefixes[string(p.buf[ps:pe])]
	if !ok {
		return 0, p.errf("undeclared prefix %q", p.str(ps, pe))
	}
	p.scratch = append(append(p.scratch[:0], ns...), p.buf[ls:le]...)
	return p.dict.InternBytes(p.scratch), nil
}

// scanTurtleLiteral parses a quoted or long-quoted literal and returns
// the unescaped value: a view of the window buffer when no escape
// occurred, otherwise the parser's reused unescape buffer. Valid until
// the next scan.
func (p *turtleParser) scanTurtleLiteral(quote byte) ([]byte, error) {
	end := strings.Repeat(string(quote), 3)
	if p.hasPrefix(end) {
		// Long literal: taken verbatim, no escape processing (matching
		// the pre-refactor parser).
		p.i += 3
		start := p.i
		for !p.hasPrefix(end) {
			if p.eof() {
				return nil, p.errf("unterminated long literal")
			}
			if p.cur() == '\n' {
				p.line++
			}
			p.i++
		}
		value := p.buf[start:p.i]
		p.i += 3
		return p.finishLiteral(value)
	}
	escaped := false
	// switchToLit seeds the unescape buffer with the escape-free prefix.
	p.i++
	start := p.i
	switchToLit := func() {
		if !escaped {
			escaped = true
			p.lit = append(p.lit[:0], p.buf[start:p.i]...)
		}
	}
	for {
		if p.eof() || p.cur() == '\n' {
			return nil, p.errf("unterminated literal")
		}
		c := p.cur()
		if c == quote {
			break
		}
		if c == '\\' {
			switchToLit()
			p.i++
			if p.eof() {
				return nil, p.errf("dangling escape")
			}
			esc := p.cur()
			p.i++
			switch esc {
			case 't':
				p.lit = append(p.lit, '\t')
			case 'n':
				p.lit = append(p.lit, '\n')
			case 'r':
				p.lit = append(p.lit, '\r')
			case '"', '\'', '\\':
				p.lit = append(p.lit, esc)
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				if !p.fill(n) {
					return nil, p.errf("truncated \\%c escape", esc)
				}
				var r rune
				for j := 0; j < n; j++ {
					d := hexVal(p.buf[p.i+j])
					if d < 0 {
						return nil, p.errf("bad hex digit in escape")
					}
					r = r<<4 | rune(d)
				}
				p.i += n
				if !utf8.ValidRune(r) {
					return nil, p.errf("invalid code point")
				}
				p.lit = utf8.AppendRune(p.lit, r)
			default:
				return nil, p.errf("unknown escape \\%c", esc)
			}
			continue
		}
		if escaped {
			p.lit = append(p.lit, c)
		}
		p.i++
	}
	value := p.buf[start:p.i]
	if escaped {
		value = p.lit
	}
	p.i++
	return p.finishLiteral(value)
}

// finishLiteral consumes an optional language tag or datatype
// annotation (discarded: presence-only view) after the closing quote.
// value must already view stable storage for the current statement.
func (p *turtleParser) finishLiteral(value []byte) ([]byte, error) {
	if !p.eof() && p.cur() == '@' {
		p.i++
		for !p.eof() && (isPNChar(rune(p.cur()))) {
			p.i++
		}
	} else if p.hasPrefix("^^") {
		p.i += 2
		if !p.eof() && p.cur() == '<' {
			if _, _, err := p.scanIRIRef(); err != nil {
				return nil, err
			}
		} else {
			ps, pe, _, _, err := p.scanPrefixedName()
			if err != nil {
				return nil, err
			}
			if _, ok := p.prefixes[string(p.buf[ps:pe])]; !ok {
				return nil, p.errf("undeclared prefix %q", p.str(ps, pe))
			}
		}
	}
	return value, nil
}

func (p *turtleParser) scanNumericLiteral() (start, end int, err error) {
	start = p.i
	if p.cur() == '+' || p.cur() == '-' {
		p.i++
	}
	seen := false
	for !p.eof() {
		c := p.cur()
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			// A '.' followed by whitespace terminates the statement, not
			// the number.
			if c == '.' && (!p.fill(2) || !isDigit(p.buf[p.i+1])) {
				break
			}
			seen = seen || (c >= '0' && c <= '9')
			p.i++
			continue
		}
		break
	}
	if !seen {
		return 0, 0, p.errf("malformed numeric literal")
	}
	return start, p.i, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (p *turtleParser) scanBooleanLiteral() string {
	if p.hasPrefix("true") {
		p.i += 4
		return "true"
	}
	p.i += 5
	return "false"
}
