package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseTurtle reads a practical subset of the Turtle syntax into a new
// graph: @prefix and @base directives, prefixed names, the `a` keyword
// for rdf:type, predicate lists (`;`), object lists (`,`), quoted and
// long-quoted literals with language tags or datatypes, numeric and
// boolean literal shorthands, and comments. Blank node property lists
// and collections are not supported (the paper's datasets do not use
// them); encountering one is an error, not a silent skip.
func ParseTurtle(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("turtle: read: %w", err)
	}
	p := &turtleParser{src: string(data), prefixes: map[string]string{}, g: NewGraph()}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.g, nil
}

type turtleParser struct {
	src      string
	i        int
	line     int
	prefixes map[string]string
	base     string
	g        *Graph
	blankSeq int
}

func (p *turtleParser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line + 1, Col: 0, Msg: "turtle: " + fmt.Sprintf(format, args...)}
}

func (p *turtleParser) eof() bool { return p.i >= len(p.src) }

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.src[p.i]
		switch {
		case c == '\n':
			p.line++
			p.i++
		case c == ' ' || c == '\t' || c == '\r':
			p.i++
		case c == '#':
			for !p.eof() && p.src[p.i] != '\n' {
				p.i++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		if p.hasKeyword("@base") || p.hasKeyword("BASE") {
			if err := p.parseBase(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseTriples(); err != nil {
			return err
		}
	}
}

// hasKeyword reports whether the input continues with the keyword
// (case-sensitive) followed by whitespace; it does not consume.
func (p *turtleParser) hasKeyword(kw string) bool {
	if !strings.HasPrefix(p.src[p.i:], kw) {
		return false
	}
	j := p.i + len(kw)
	return j < len(p.src) && (p.src[j] == ' ' || p.src[j] == '\t' || p.src[j] == '\n' || p.src[j] == '\r')
}

func (p *turtleParser) consumeKeyword() string {
	start := p.i
	for !p.eof() && p.src[p.i] != ' ' && p.src[p.i] != '\t' && p.src[p.i] != '\n' {
		p.i++
	}
	return p.src[start:p.i]
}

func (p *turtleParser) parsePrefix() error {
	kw := p.consumeKeyword()
	p.skipWS()
	// prefix name ends with ':'
	j := strings.IndexByte(p.src[p.i:], ':')
	if j < 0 {
		return p.errf("malformed %s: missing ':'", kw)
	}
	name := strings.TrimSpace(p.src[p.i : p.i+j])
	p.i += j + 1
	p.skipWS()
	uri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = uri
	p.skipWS()
	if kw == "@prefix" {
		if p.eof() || p.src[p.i] != '.' {
			return p.errf("@prefix missing terminating '.'")
		}
		p.i++
	}
	return nil
}

func (p *turtleParser) parseBase() error {
	kw := p.consumeKeyword()
	p.skipWS()
	uri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.base = uri
	p.skipWS()
	if kw == "@base" {
		if p.eof() || p.src[p.i] != '.' {
			return p.errf("@base missing terminating '.'")
		}
		p.i++
	}
	return nil
}

func (p *turtleParser) parseTriples() error {
	subj, err := p.parseSubject()
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.parseObject()
			if err != nil {
				return err
			}
			p.g.Add(Triple{Subject: subj, Predicate: pred, Object: obj})
			p.skipWS()
			if !p.eof() && p.src[p.i] == ',' {
				p.i++
				continue
			}
			break
		}
		p.skipWS()
		if p.eof() {
			return p.errf("unexpected end of input, expected ';' or '.'")
		}
		switch p.src[p.i] {
		case ';':
			p.i++
			p.skipWS()
			// A dangling ';' before '.' is legal Turtle.
			if !p.eof() && p.src[p.i] == '.' {
				p.i++
				return nil
			}
			continue
		case '.':
			p.i++
			return nil
		default:
			return p.errf("expected ';' or '.', got %q", p.src[p.i])
		}
	}
}

func (p *turtleParser) parseSubject() (string, error) {
	p.skipWS()
	if p.eof() {
		return "", p.errf("expected subject")
	}
	switch p.src[p.i] {
	case '<':
		return p.parseIRIRef()
	case '_':
		return p.parseBlankLabel()
	case '[':
		return "", p.errf("blank node property lists are not supported")
	case '(':
		return "", p.errf("collections are not supported")
	}
	return p.parsePrefixedName()
}

func (p *turtleParser) parsePredicate() (string, error) {
	if p.eof() {
		return "", p.errf("expected predicate")
	}
	// The `a` keyword.
	if p.src[p.i] == 'a' && p.i+1 < len(p.src) &&
		(p.src[p.i+1] == ' ' || p.src[p.i+1] == '\t' || p.src[p.i+1] == '\n') {
		p.i++
		return TypeURI, nil
	}
	if p.src[p.i] == '<' {
		return p.parseIRIRef()
	}
	return p.parsePrefixedName()
}

func (p *turtleParser) parseObject() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("expected object")
	}
	switch c := p.src[p.i]; {
	case c == '<':
		u, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewURI(u), nil
	case c == '_':
		b, err := p.parseBlankLabel()
		if err != nil {
			return Term{}, err
		}
		return NewURI(b), nil
	case c == '[':
		return Term{}, p.errf("blank node property lists are not supported")
	case c == '(':
		return Term{}, p.errf("collections are not supported")
	case c == '"' || c == '\'':
		return p.parseTurtleLiteral(c)
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumericLiteral()
	case strings.HasPrefix(p.src[p.i:], "true") || strings.HasPrefix(p.src[p.i:], "false"):
		return p.parseBooleanLiteral()
	}
	u, err := p.parsePrefixedName()
	if err != nil {
		return Term{}, err
	}
	return NewURI(u), nil
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if p.eof() || p.src[p.i] != '<' {
		return "", p.errf("expected '<'")
	}
	p.i++
	start := p.i
	for !p.eof() && p.src[p.i] != '>' {
		if p.src[p.i] == '\n' {
			return "", p.errf("newline inside IRI")
		}
		p.i++
	}
	if p.eof() {
		return "", p.errf("unterminated IRI")
	}
	u := p.src[start:p.i]
	p.i++
	if u == "" {
		return "", p.errf("empty IRI")
	}
	// Resolve against @base for relative IRIs (simple concatenation
	// covers the fragment/path-suffix cases real dumps use).
	if p.base != "" && !strings.Contains(u, "://") && !strings.HasPrefix(u, "urn:") {
		return p.base + u, nil
	}
	return u, nil
}

func (p *turtleParser) parseBlankLabel() (string, error) {
	start := p.i
	if p.i+1 >= len(p.src) || p.src[p.i+1] != ':' {
		return "", p.errf("malformed blank node")
	}
	p.i += 2
	for !p.eof() && isPNChar(rune(p.src[p.i])) {
		p.i++
	}
	if p.i == start+2 {
		return "", p.errf("empty blank node label")
	}
	return p.src[start:p.i], nil
}

func isPNChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' ||
		(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r > 127
}

func (p *turtleParser) parsePrefixedName() (string, error) {
	start := p.i
	for !p.eof() && isPNChar(rune(p.src[p.i])) {
		p.i++
	}
	if p.eof() || p.src[p.i] != ':' {
		return "", p.errf("expected prefixed name, got %q", p.src[start:min(p.i+1, len(p.src))])
	}
	prefix := p.src[start:p.i]
	p.i++
	localStart := p.i
	for !p.eof() && isPNChar(rune(p.src[p.i])) {
		p.i++
	}
	local := p.src[localStart:p.i]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errf("undeclared prefix %q", prefix)
	}
	return ns + local, nil
}

func (p *turtleParser) parseTurtleLiteral(quote byte) (Term, error) {
	long := strings.HasPrefix(p.src[p.i:], strings.Repeat(string(quote), 3))
	var value strings.Builder
	if long {
		p.i += 3
		end := strings.Repeat(string(quote), 3)
		j := strings.Index(p.src[p.i:], end)
		if j < 0 {
			return Term{}, p.errf("unterminated long literal")
		}
		raw := p.src[p.i : p.i+j]
		p.line += strings.Count(raw, "\n")
		p.i += j + 3
		value.WriteString(raw)
	} else {
		p.i++
		for {
			if p.eof() || p.src[p.i] == '\n' {
				return Term{}, p.errf("unterminated literal")
			}
			c := p.src[p.i]
			if c == quote {
				p.i++
				break
			}
			if c == '\\' {
				p.i++
				if p.eof() {
					return Term{}, p.errf("dangling escape")
				}
				esc := p.src[p.i]
				p.i++
				switch esc {
				case 't':
					value.WriteByte('\t')
				case 'n':
					value.WriteByte('\n')
				case 'r':
					value.WriteByte('\r')
				case '"', '\'', '\\':
					value.WriteByte(esc)
				case 'u', 'U':
					n := 4
					if esc == 'U' {
						n = 8
					}
					if p.i+n > len(p.src) {
						return Term{}, p.errf("truncated \\%c escape", esc)
					}
					var r rune
					for j := 0; j < n; j++ {
						d := hexVal(p.src[p.i+j])
						if d < 0 {
							return Term{}, p.errf("bad hex digit in escape")
						}
						r = r<<4 | rune(d)
					}
					p.i += n
					if !utf8.ValidRune(r) {
						return Term{}, p.errf("invalid code point")
					}
					value.WriteRune(r)
				default:
					return Term{}, p.errf("unknown escape \\%c", esc)
				}
				continue
			}
			value.WriteByte(c)
			p.i++
		}
	}
	// Optional language tag or datatype (discarded: presence-only view).
	if !p.eof() && p.src[p.i] == '@' {
		p.i++
		for !p.eof() && (isPNChar(rune(p.src[p.i]))) {
			p.i++
		}
	} else if strings.HasPrefix(p.src[p.i:], "^^") {
		p.i += 2
		if !p.eof() && p.src[p.i] == '<' {
			if _, err := p.parseIRIRef(); err != nil {
				return Term{}, err
			}
		} else {
			if _, err := p.parsePrefixedName(); err != nil {
				return Term{}, err
			}
		}
	}
	return NewLiteral(value.String()), nil
}

func (p *turtleParser) parseNumericLiteral() (Term, error) {
	start := p.i
	if p.src[p.i] == '+' || p.src[p.i] == '-' {
		p.i++
	}
	seen := false
	for !p.eof() {
		c := p.src[p.i]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			// A '.' followed by whitespace terminates the statement, not
			// the number.
			if c == '.' && (p.i+1 >= len(p.src) || !isDigit(p.src[p.i+1])) {
				break
			}
			seen = seen || (c >= '0' && c <= '9')
			p.i++
			continue
		}
		break
	}
	if !seen {
		return Term{}, p.errf("malformed numeric literal")
	}
	return NewLiteral(p.src[start:p.i]), nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (p *turtleParser) parseBooleanLiteral() (Term, error) {
	if strings.HasPrefix(p.src[p.i:], "true") {
		p.i += 4
		return NewLiteral("true"), nil
	}
	p.i += 5
	return NewLiteral("false"), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
