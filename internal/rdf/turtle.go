package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ReadTurtle streams a practical subset of the Turtle syntax from r,
// calling emit for every triple in document order: @prefix and @base
// directives, prefixed names, the `a` keyword for rdf:type, predicate
// lists (`;`), object lists (`,`), quoted and long-quoted literals with
// language tags or datatypes, numeric and boolean literal shorthands,
// and comments. Blank node property lists and collections are not
// supported (the paper's datasets do not use them); encountering one is
// an error, not a silent skip.
//
// The reader is incremental: input is pulled through a window buffer
// that is discarded statement by statement, so memory use is bounded by
// the largest single statement, not the document size.
func ReadTurtle(r io.Reader, emit func(Triple) error) error {
	p := &turtleParser{
		r:        bufio.NewReaderSize(r, 64*1024),
		prefixes: map[string]string{},
		emit:     emit,
	}
	err := p.parse()
	// An underlying read error outranks the syntax error the resulting
	// truncation may have produced.
	if p.readErr != nil {
		return fmt.Errorf("turtle: read: %w", p.readErr)
	}
	return err
}

// ParseTurtle reads Turtle from r into a new graph. See ReadTurtle for
// the supported grammar.
func ParseTurtle(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadTurtle(r, func(t Triple) error { g.Add(t); return nil }); err != nil {
		return nil, err
	}
	return g, nil
}

type turtleParser struct {
	r *bufio.Reader
	// buf[i:] is the unconsumed window; fill appends, and the consumed
	// prefix is dropped between top-level statements.
	buf      []byte
	i        int
	atEOF    bool
	readErr  error // non-EOF read failure; surfaced by ReadTurtle
	line     int
	prefixes map[string]string
	base     string
	emit     func(Triple) error
}

func (p *turtleParser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line + 1, Col: 0, Msg: "turtle: " + fmt.Sprintf(format, args...)}
}

// fill ensures at least n unconsumed bytes are buffered, reading more
// input as needed, and reports whether it succeeded (false near end of
// input — true EOF or a read failure, recorded in readErr).
func (p *turtleParser) fill(n int) bool {
	for len(p.buf)-p.i < n && !p.atEOF {
		if cap(p.buf)-len(p.buf) < 4096 {
			grown := make([]byte, len(p.buf), 2*cap(p.buf)+64*1024)
			copy(grown, p.buf)
			p.buf = grown
		}
		m, err := p.r.Read(p.buf[len(p.buf):cap(p.buf)])
		p.buf = p.buf[:len(p.buf)+m]
		if err != nil {
			p.atEOF = true
			if err != io.EOF {
				p.readErr = err
			}
		}
	}
	return len(p.buf)-p.i >= n
}

// compactWindow drops the consumed prefix; called between statements so
// buffered memory stays bounded by one statement.
func (p *turtleParser) compactWindow() {
	if p.i == 0 {
		return
	}
	p.buf = append(p.buf[:0], p.buf[p.i:]...)
	p.i = 0
}

func (p *turtleParser) eof() bool                 { return !p.fill(1) }
func (p *turtleParser) cur() byte                 { return p.buf[p.i] }
func (p *turtleParser) str(start, end int) string { return string(p.buf[start:end]) }

// hasPrefix reports whether the unconsumed input starts with s; it does
// not consume. Allocation-free: it runs once per byte when scanning for
// a long literal's closing quotes.
func (p *turtleParser) hasPrefix(s string) bool {
	if !p.fill(len(s)) {
		return false
	}
	for j := 0; j < len(s); j++ {
		if p.buf[p.i+j] != s[j] {
			return false
		}
	}
	return true
}

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.cur()
		switch {
		case c == '\n':
			p.line++
			p.i++
		case c == ' ' || c == '\t' || c == '\r':
			p.i++
		case c == '#':
			for !p.eof() && p.cur() != '\n' {
				p.i++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		p.compactWindow()
		if p.eof() {
			return nil
		}
		if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		if p.hasKeyword("@base") || p.hasKeyword("BASE") {
			if err := p.parseBase(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseTriples(); err != nil {
			return err
		}
	}
}

// hasKeyword reports whether the input continues with the keyword
// (case-sensitive) followed by whitespace; it does not consume.
func (p *turtleParser) hasKeyword(kw string) bool {
	if !p.hasPrefix(kw) {
		return false
	}
	if !p.fill(len(kw) + 1) {
		return false
	}
	c := p.buf[p.i+len(kw)]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func (p *turtleParser) consumeKeyword() string {
	start := p.i
	for !p.eof() && p.cur() != ' ' && p.cur() != '\t' && p.cur() != '\n' {
		p.i++
	}
	return p.str(start, p.i)
}

func (p *turtleParser) parsePrefix() error {
	kw := p.consumeKeyword()
	p.skipWS()
	// prefix name ends with ':'
	start := p.i
	for {
		if p.eof() {
			return p.errf("malformed %s: missing ':'", kw)
		}
		if p.cur() == ':' {
			break
		}
		p.i++
	}
	name := strings.TrimSpace(p.str(start, p.i))
	p.i++
	p.skipWS()
	uri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = uri
	p.skipWS()
	if kw == "@prefix" {
		if p.eof() || p.cur() != '.' {
			return p.errf("@prefix missing terminating '.'")
		}
		p.i++
	}
	return nil
}

func (p *turtleParser) parseBase() error {
	kw := p.consumeKeyword()
	p.skipWS()
	uri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.base = uri
	p.skipWS()
	if kw == "@base" {
		if p.eof() || p.cur() != '.' {
			return p.errf("@base missing terminating '.'")
		}
		p.i++
	}
	return nil
}

func (p *turtleParser) parseTriples() error {
	subj, err := p.parseSubject()
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.parseObject()
			if err != nil {
				return err
			}
			if err := p.emit(Triple{Subject: subj, Predicate: pred, Object: obj}); err != nil {
				return err
			}
			p.skipWS()
			if !p.eof() && p.cur() == ',' {
				p.i++
				continue
			}
			break
		}
		p.skipWS()
		if p.eof() {
			return p.errf("unexpected end of input, expected ';' or '.'")
		}
		switch p.cur() {
		case ';':
			p.i++
			p.skipWS()
			// A dangling ';' before '.' is legal Turtle.
			if !p.eof() && p.cur() == '.' {
				p.i++
				return nil
			}
			continue
		case '.':
			p.i++
			return nil
		default:
			return p.errf("expected ';' or '.', got %q", p.cur())
		}
	}
}

func (p *turtleParser) parseSubject() (string, error) {
	p.skipWS()
	if p.eof() {
		return "", p.errf("expected subject")
	}
	switch p.cur() {
	case '<':
		return p.parseIRIRef()
	case '_':
		return p.parseBlankLabel()
	case '[':
		return "", p.errf("blank node property lists are not supported")
	case '(':
		return "", p.errf("collections are not supported")
	}
	return p.parsePrefixedName()
}

func (p *turtleParser) parsePredicate() (string, error) {
	if p.eof() {
		return "", p.errf("expected predicate")
	}
	// The `a` keyword.
	if p.cur() == 'a' && p.fill(2) {
		c := p.buf[p.i+1]
		if c == ' ' || c == '\t' || c == '\n' {
			p.i++
			return TypeURI, nil
		}
	}
	if p.cur() == '<' {
		return p.parseIRIRef()
	}
	return p.parsePrefixedName()
}

func (p *turtleParser) parseObject() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("expected object")
	}
	switch c := p.cur(); {
	case c == '<':
		u, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewURI(u), nil
	case c == '_':
		b, err := p.parseBlankLabel()
		if err != nil {
			return Term{}, err
		}
		return NewURI(b), nil
	case c == '[':
		return Term{}, p.errf("blank node property lists are not supported")
	case c == '(':
		return Term{}, p.errf("collections are not supported")
	case c == '"' || c == '\'':
		return p.parseTurtleLiteral(c)
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumericLiteral()
	case p.hasPrefix("true") || p.hasPrefix("false"):
		return p.parseBooleanLiteral()
	}
	u, err := p.parsePrefixedName()
	if err != nil {
		return Term{}, err
	}
	return NewURI(u), nil
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if p.eof() || p.cur() != '<' {
		return "", p.errf("expected '<'")
	}
	p.i++
	start := p.i
	for !p.eof() && p.cur() != '>' {
		if p.cur() == '\n' {
			return "", p.errf("newline inside IRI")
		}
		p.i++
	}
	if p.eof() {
		return "", p.errf("unterminated IRI")
	}
	u := p.str(start, p.i)
	p.i++
	if u == "" {
		return "", p.errf("empty IRI")
	}
	// Resolve against @base for relative IRIs (simple concatenation
	// covers the fragment/path-suffix cases real dumps use).
	if p.base != "" && !strings.Contains(u, "://") && !strings.HasPrefix(u, "urn:") {
		return p.base + u, nil
	}
	return u, nil
}

func (p *turtleParser) parseBlankLabel() (string, error) {
	start := p.i
	if !p.fill(2) || p.buf[p.i+1] != ':' {
		return "", p.errf("malformed blank node")
	}
	p.i += 2
	for !p.eof() && isPNChar(rune(p.cur())) {
		p.i++
	}
	if p.i == start+2 {
		return "", p.errf("empty blank node label")
	}
	return p.str(start, p.i), nil
}

func isPNChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' ||
		(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r > 127
}

func (p *turtleParser) parsePrefixedName() (string, error) {
	start := p.i
	for !p.eof() && isPNChar(rune(p.cur())) {
		p.i++
	}
	if p.eof() || p.cur() != ':' {
		got := p.str(start, p.i)
		if !p.eof() {
			got = p.str(start, p.i+1)
		}
		return "", p.errf("expected prefixed name, got %q", got)
	}
	prefix := p.str(start, p.i)
	p.i++
	localStart := p.i
	for !p.eof() && isPNChar(rune(p.cur())) {
		p.i++
	}
	local := p.str(localStart, p.i)
	ns, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errf("undeclared prefix %q", prefix)
	}
	return ns + local, nil
}

func (p *turtleParser) parseTurtleLiteral(quote byte) (Term, error) {
	end := strings.Repeat(string(quote), 3)
	long := p.hasPrefix(end)
	var value strings.Builder
	if long {
		p.i += 3
		for {
			if p.hasPrefix(end) {
				p.i += 3
				break
			}
			if p.eof() {
				return Term{}, p.errf("unterminated long literal")
			}
			c := p.cur()
			if c == '\n' {
				p.line++
			}
			value.WriteByte(c)
			p.i++
		}
	} else {
		p.i++
		for {
			if p.eof() || p.cur() == '\n' {
				return Term{}, p.errf("unterminated literal")
			}
			c := p.cur()
			if c == quote {
				p.i++
				break
			}
			if c == '\\' {
				p.i++
				if p.eof() {
					return Term{}, p.errf("dangling escape")
				}
				esc := p.cur()
				p.i++
				switch esc {
				case 't':
					value.WriteByte('\t')
				case 'n':
					value.WriteByte('\n')
				case 'r':
					value.WriteByte('\r')
				case '"', '\'', '\\':
					value.WriteByte(esc)
				case 'u', 'U':
					n := 4
					if esc == 'U' {
						n = 8
					}
					if !p.fill(n) {
						return Term{}, p.errf("truncated \\%c escape", esc)
					}
					var r rune
					for j := 0; j < n; j++ {
						d := hexVal(p.buf[p.i+j])
						if d < 0 {
							return Term{}, p.errf("bad hex digit in escape")
						}
						r = r<<4 | rune(d)
					}
					p.i += n
					if !utf8.ValidRune(r) {
						return Term{}, p.errf("invalid code point")
					}
					value.WriteRune(r)
				default:
					return Term{}, p.errf("unknown escape \\%c", esc)
				}
				continue
			}
			value.WriteByte(c)
			p.i++
		}
	}
	// Optional language tag or datatype (discarded: presence-only view).
	if !p.eof() && p.cur() == '@' {
		p.i++
		for !p.eof() && (isPNChar(rune(p.cur()))) {
			p.i++
		}
	} else if p.hasPrefix("^^") {
		p.i += 2
		if !p.eof() && p.cur() == '<' {
			if _, err := p.parseIRIRef(); err != nil {
				return Term{}, err
			}
		} else {
			if _, err := p.parsePrefixedName(); err != nil {
				return Term{}, err
			}
		}
	}
	return NewLiteral(value.String()), nil
}

func (p *turtleParser) parseNumericLiteral() (Term, error) {
	start := p.i
	if p.cur() == '+' || p.cur() == '-' {
		p.i++
	}
	seen := false
	for !p.eof() {
		c := p.cur()
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			// A '.' followed by whitespace terminates the statement, not
			// the number.
			if c == '.' && (!p.fill(2) || !isDigit(p.buf[p.i+1])) {
				break
			}
			seen = seen || (c >= '0' && c <= '9')
			p.i++
			continue
		}
		break
	}
	if !seen {
		return Term{}, p.errf("malformed numeric literal")
	}
	return NewLiteral(p.str(start, p.i)), nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (p *turtleParser) parseBooleanLiteral() (Term, error) {
	if p.hasPrefix("true") {
		p.i += 4
		return NewLiteral("true"), nil
	}
	p.i += 5
	return NewLiteral("false"), nil
}
