// Package rdf implements the RDF data model used by the paper: URIs and
// literals, triples (s, p, o) ∈ U×U×(U∪L), finite triple sets (graphs)
// with indexes, rdf:type sort extraction, and an N-Triples
// parser/serializer. It is self-contained (stdlib only) because the Go
// RDF ecosystem is thin.
package rdf

import (
	"fmt"
	"strings"
)

// TypeURI is the constant rdf:type predicate used to declare that a
// subject belongs to a sort (type).
const TypeURI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// TermKind distinguishes URIs from literals.
type TermKind uint8

const (
	// URI is a term from the countably infinite set U.
	URI TermKind = iota
	// Literal is a term from the countably infinite set L.
	Literal
)

// Term is a URI or a literal. The zero value is the empty URI.
type Term struct {
	Kind  TermKind
	Value string
}

// NewURI returns a URI term.
func NewURI(v string) Term { return Term{Kind: URI, Value: v} }

// NewLiteral returns a literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// IsURI reports whether t is a URI.
func (t Term) IsURI() bool { return t.Kind == URI }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	if t.Kind == URI {
		return "<" + t.Value + ">"
	}
	return `"` + escapeLiteral(t.Value) + `"`
}

func escapeLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is an RDF triple (s, p, o) with s, p ∈ U and o ∈ U ∪ L.
type Triple struct {
	Subject   string // URI
	Predicate string // URI
	Object    Term
}

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return fmt.Sprintf("<%s> <%s> %s .", t.Subject, t.Predicate, t.Object)
}
