package rdf

import (
	"math"
	"sort"

	"repro/internal/term"
)

// IDTriple is a triple with every term replaced by its dictionary ID.
// The hot paths — graph indexes, view construction, incremental
// signature migration — operate exclusively on IDTriples; the string
// form materializes only at the edges via the owning graph's Dict.
// IDTriple is comparable and is used directly as the dedup map key.
type IDTriple struct {
	S, P  term.ID
	O     term.ID
	OKind TermKind
}

// Graph is a finite set of RDF triples with subject and predicate
// indexes, stored in interned form: one term dictionary maps every
// distinct URI/literal to a dense uint32 ID, and all indexes are keyed
// by ID. Adding a triple therefore hashes three small integers and the
// 16-byte IDTriple, never the URI strings, and duplicate terms cost no
// allocation. The zero value is not ready to use; call NewGraph.
type Graph struct {
	dict    *term.Dict
	triples []IDTriple
	// bySubject maps subject ID -> indices into triples, insertion order.
	bySubject map[term.ID][]int32
	// present deduplicates triples and locates them for removal.
	present map[IDTriple]int32
	// propSubjects maps predicate ID -> the set of subjects having it.
	propSubjects map[term.ID]*subjSet
	// dead marks removed slots in triples; compacted away once they
	// outnumber the live triples.
	dead map[int32]struct{}
}

// subjSpill is the size past which a predicate's subject set stops
// paying O(n) memmoves for out-of-order inserts and removals and
// converts to a hash set.
const subjSpill = 4096

// subjSet holds the subjects having one predicate. Small and
// append-mostly sets live in a sorted ID slice (cache-friendly, O(1)
// monotone append — the bulk-ingest pattern, since subject IDs are
// assigned in first-sight order); a set that is large *and* churning
// (out-of-order insert or removal past subjSpill) spills to a hash
// set, keeping every operation O(1) instead of an O(n) memmove.
type subjSet struct {
	sorted []term.ID            // sorted ascending; meaningful while set == nil
	set    map[term.ID]struct{} // non-nil once spilled
}

func (ss *subjSet) spill() {
	ss.set = make(map[term.ID]struct{}, 2*len(ss.sorted))
	for _, s := range ss.sorted {
		ss.set[s] = struct{}{}
	}
	ss.sorted = nil
}

func (ss *subjSet) add(s term.ID) {
	if ss.set != nil {
		ss.set[s] = struct{}{}
		return
	}
	n := len(ss.sorted)
	if n == 0 || ss.sorted[n-1] < s {
		ss.sorted = append(ss.sorted, s)
		return
	}
	if ss.sorted[n-1] == s {
		return
	}
	if n > subjSpill {
		ss.spill()
		ss.set[s] = struct{}{}
		return
	}
	j := sort.Search(n, func(i int) bool { return ss.sorted[i] >= s })
	if j < n && ss.sorted[j] == s {
		return
	}
	ss.sorted = append(ss.sorted, 0)
	copy(ss.sorted[j+1:], ss.sorted[j:])
	ss.sorted[j] = s
}

func (ss *subjSet) remove(s term.ID) {
	if ss.set == nil && len(ss.sorted) > subjSpill {
		ss.spill()
	}
	if ss.set != nil {
		delete(ss.set, s)
		return
	}
	j := sort.Search(len(ss.sorted), func(i int) bool { return ss.sorted[i] >= s })
	if j < len(ss.sorted) && ss.sorted[j] == s {
		ss.sorted = append(ss.sorted[:j], ss.sorted[j+1:]...)
	}
}

func (ss *subjSet) has(s term.ID) bool {
	if ss.set != nil {
		_, ok := ss.set[s]
		return ok
	}
	j := sort.Search(len(ss.sorted), func(i int) bool { return ss.sorted[i] >= s })
	return j < len(ss.sorted) && ss.sorted[j] == s
}

func (ss *subjSet) size() int {
	if ss.set != nil {
		return len(ss.set)
	}
	return len(ss.sorted)
}

// forEach visits every subject; ascending ID order while un-spilled,
// unspecified order after.
func (ss *subjSet) forEach(f func(term.ID)) {
	if ss.set != nil {
		for s := range ss.set {
			f(s)
		}
		return
	}
	for _, s := range ss.sorted {
		f(s)
	}
}

// NewGraph returns an empty graph with its own term dictionary.
func NewGraph() *Graph { return NewGraphWithDict(term.NewDict()) }

// NewGraphWithDict returns an empty graph interning into dict. Sharing
// one dictionary across graphs (e.g. a dataset and its sort subgraphs)
// makes their IDs directly comparable and skips re-interning.
func NewGraphWithDict(dict *term.Dict) *Graph {
	return &Graph{
		dict:         dict,
		bySubject:    make(map[term.ID][]int32),
		present:      make(map[IDTriple]int32),
		propSubjects: make(map[term.ID]*subjSet),
		dead:         make(map[int32]struct{}),
	}
}

// Dict returns the graph's term dictionary.
func (g *Graph) Dict() *term.Dict { return g.dict }

// Intern converts t to interned form, assigning IDs for unseen terms.
func (g *Graph) Intern(t Triple) IDTriple {
	return IDTriple{
		S:     g.dict.Intern(t.Subject),
		P:     g.dict.Intern(t.Predicate),
		O:     g.dict.Intern(t.Object.Value),
		OKind: t.Object.Kind,
	}
}

// LookupTriple converts t to interned form without growing the
// dictionary; ok is false when any term is unknown (so t cannot be in
// the graph).
func (g *Graph) LookupTriple(t Triple) (it IDTriple, ok bool) {
	if it.S, ok = g.dict.Lookup(t.Subject); !ok {
		return IDTriple{}, false
	}
	if it.P, ok = g.dict.Lookup(t.Predicate); !ok {
		return IDTriple{}, false
	}
	if it.O, ok = g.dict.Lookup(t.Object.Value); !ok {
		return IDTriple{}, false
	}
	it.OKind = t.Object.Kind
	return it, true
}

// materialize converts an interned triple back to string form.
func (g *Graph) materialize(it IDTriple) Triple {
	return Triple{
		Subject:   g.dict.String(it.S),
		Predicate: g.dict.String(it.P),
		Object:    Term{Kind: it.OKind, Value: g.dict.String(it.O)},
	}
}

// Add inserts t if not already present and reports whether it was added.
func (g *Graph) Add(t Triple) bool { return g.AddID(g.Intern(t)) }

// AddID inserts an interned triple if not already present and reports
// whether it was added. This is the ingestion hot path: no string
// touches at all.
func (g *Graph) AddID(it IDTriple) bool {
	if _, dup := g.present[it]; dup {
		return false
	}
	if len(g.triples) >= math.MaxInt32 {
		// The triple indexes are int32; make the capacity limit explicit
		// instead of silently wrapping.
		panic("rdf: graph exceeds 2^31-1 triple slots")
	}
	i := int32(len(g.triples))
	g.present[it] = i
	g.bySubject[it.S] = append(g.bySubject[it.S], i)
	g.addPropSubject(it.P, it.S)
	g.triples = append(g.triples, it)
	return true
}

// addPropSubject records s in the subject set of predicate p. Subject
// IDs are dense and assigned in first-sight order, so bulk ingestion
// appends monotonically and hits the O(1) fast path.
func (g *Graph) addPropSubject(p, s term.ID) {
	ps := g.propSubjects[p]
	if ps == nil {
		ps = &subjSet{}
		g.propSubjects[p] = ps
	}
	ps.add(s)
}

// removePropSubject deletes s from predicate p's subject set, dropping
// the predicate entirely when the set empties.
func (g *Graph) removePropSubject(p, s term.ID) {
	ps := g.propSubjects[p]
	if ps == nil {
		return
	}
	ps.remove(s)
	if ps.size() == 0 {
		delete(g.propSubjects, p)
	}
}

// Remove deletes t if present and reports whether it was removed. The
// subject and predicate indexes are cleaned up: bySubject and
// propSubjects entries are dropped when they empty, so Subjects,
// Properties, HasProperty and HasSubject reflect the removal exactly as
// if the graph had been rebuilt without t.
func (g *Graph) Remove(t Triple) bool {
	it, ok := g.LookupTriple(t)
	if !ok {
		return false
	}
	return g.RemoveID(it)
}

// RemoveID deletes an interned triple if present and reports whether it
// was removed.
func (g *Graph) RemoveID(it IDTriple) bool {
	i, ok := g.present[it]
	if !ok {
		return false
	}
	delete(g.present, it)
	g.dead[i] = struct{}{}

	idx := g.bySubject[it.S]
	for j, x := range idx {
		if x == i {
			idx = append(idx[:j], idx[j+1:]...)
			break
		}
	}
	if len(idx) == 0 {
		delete(g.bySubject, it.S)
	} else {
		g.bySubject[it.S] = idx
	}

	// The subject keeps the predicate only if another of its triples
	// still uses it.
	still := false
	for _, j := range idx {
		if g.triples[j].P == it.P {
			still = true
			break
		}
	}
	if !still {
		g.removePropSubject(it.P, it.S)
	}

	if len(g.dead) > len(g.triples)/2 && len(g.dead) >= 64 {
		g.compact()
	}
	return true
}

// compact rewrites the triple slice without dead slots, preserving
// insertion order, and rebuilds present and bySubject in a single pass
// over the live triples. Remove has already dropped fully-dead subjects
// from bySubject, so truncating the surviving entries and re-appending
// live indices reconstructs every slice in order.
func (g *Graph) compact() {
	for s, idx := range g.bySubject {
		g.bySubject[s] = idx[:0]
	}
	live := g.triples[:0]
	for i, t := range g.triples {
		if _, gone := g.dead[int32(i)]; gone {
			continue
		}
		ni := int32(len(live))
		live = append(live, t)
		g.present[t] = ni
		g.bySubject[t.S] = append(g.bySubject[t.S], ni)
	}
	g.triples = live
	g.dead = make(map[int32]struct{})
}

// AddURI is shorthand for adding (s, p, <o>).
func (g *Graph) AddURI(s, p, o string) bool {
	return g.Add(Triple{Subject: s, Predicate: p, Object: NewURI(o)})
}

// AddLiteral is shorthand for adding (s, p, "o").
func (g *Graph) AddLiteral(s, p, o string) bool {
	return g.Add(Triple{Subject: s, Predicate: p, Object: NewLiteral(o)})
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t Triple) bool {
	it, ok := g.LookupTriple(t)
	if !ok {
		return false
	}
	return g.ContainsID(it)
}

// ContainsID reports whether the interned triple is in the graph.
func (g *Graph) ContainsID(it IDTriple) bool {
	_, ok := g.present[it]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.triples) - len(g.dead) }

// EachTriple calls f with every live triple in insertion order,
// materializing strings one triple at a time.
func (g *Graph) EachTriple(f func(Triple)) {
	for i, it := range g.triples {
		if _, gone := g.dead[int32(i)]; !gone {
			f(g.materialize(it))
		}
	}
}

// EachTripleID calls f with every live interned triple in insertion
// order.
func (g *Graph) EachTripleID(f func(IDTriple)) {
	for i, it := range g.triples {
		if _, gone := g.dead[int32(i)]; !gone {
			f(it)
		}
	}
}

// Triples returns the triples in insertion order, materialized to
// string form.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.Len())
	g.EachTriple(func(t Triple) { out = append(out, t) })
	return out
}

// Subjects returns S(D): the distinct subjects, sorted.
func (g *Graph) Subjects() []string {
	out := make([]string, 0, len(g.bySubject))
	for s := range g.bySubject {
		out = append(out, g.dict.String(s))
	}
	sort.Strings(out)
	return out
}

// SubjectIDs returns the distinct subject IDs in ascending ID order
// (i.e. first-sight order, not lexicographic).
func (g *Graph) SubjectIDs() []term.ID {
	out := make([]term.ID, 0, len(g.bySubject))
	for s := range g.bySubject {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Properties returns P(D): the distinct predicates, sorted.
func (g *Graph) Properties() []string {
	out := make([]string, 0, len(g.propSubjects))
	for p := range g.propSubjects {
		out = append(out, g.dict.String(p))
	}
	sort.Strings(out)
	return out
}

// PropertyIDs returns the distinct predicate IDs, in no particular
// order.
func (g *Graph) PropertyIDs() []term.ID {
	out := make([]term.ID, 0, len(g.propSubjects))
	for p := range g.propSubjects {
		out = append(out, p)
	}
	return out
}

// HasProperty reports whether subject s has property p in the graph,
// i.e. ∃o such that (s, p, o) ∈ D.
func (g *Graph) HasProperty(s, p string) bool {
	sid, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pid, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	return g.HasPropertyID(sid, pid)
}

// HasPropertyID is HasProperty over interned IDs: a membership probe
// of the predicate's subject set.
func (g *Graph) HasPropertyID(s, p term.ID) bool {
	ps := g.propSubjects[p]
	return ps != nil && ps.has(s)
}

// SubjectTriples returns the triples whose subject is s, in insertion
// order (the "entity" of s in the paper's terminology).
func (g *Graph) SubjectTriples(s string) []Triple {
	sid, ok := g.dict.Lookup(s)
	if !ok {
		return nil
	}
	idx := g.bySubject[sid]
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.materialize(g.triples[j])
	}
	return out
}

// EachSubjectTripleID calls f with each triple of subject s (by ID) in
// insertion order, without materializing strings or slices.
func (g *Graph) EachSubjectTripleID(s term.ID, f func(IDTriple)) {
	for _, j := range g.bySubject[s] {
		f(g.triples[j])
	}
}

// SubjectCount returns |S(D)| without materializing the subject list.
func (g *Graph) SubjectCount() int { return len(g.bySubject) }

// HasSubject reports whether s has at least one triple in the graph.
func (g *Graph) HasSubject(s string) bool {
	sid, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	return g.HasSubjectID(sid)
}

// HasSubjectID is HasSubject over an interned ID.
func (g *Graph) HasSubjectID(s term.ID) bool {
	_, ok := g.bySubject[s]
	return ok
}

// SubjectDegree returns the number of triples whose subject is s.
func (g *Graph) SubjectDegree(s string) int {
	sid, ok := g.dict.Lookup(s)
	if !ok {
		return 0
	}
	return len(g.bySubject[sid])
}

// PropertyCount returns |P(D)|.
func (g *Graph) PropertyCount() int { return len(g.propSubjects) }

// Sorts returns the distinct sort URIs t appearing in (s, rdf:type, t)
// triples, sorted.
func (g *Graph) Sorts() []string {
	typeID, ok := g.dict.Lookup(TypeURI)
	if !ok {
		return nil
	}
	seen := map[term.ID]struct{}{}
	if ps := g.propSubjects[typeID]; ps != nil {
		ps.forEach(func(s term.ID) {
			g.EachSubjectTripleID(s, func(it IDTriple) {
				if it.P == typeID && it.OKind == URI {
					seen[it.O] = struct{}{}
				}
			})
		})
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, g.dict.String(t))
	}
	sort.Strings(out)
	return out
}

// SortSubgraph returns Dt = {(s,p,o) ∈ D | (s, rdf:type, t) ∈ D}: all
// triples whose subject is explicitly declared of sort t. The result is
// a new graph sharing this graph's term dictionary; it includes the
// rdf:type triples themselves, matching the paper's definition
// (experiments typically exclude the type property from the
// property-structure view; see matrix.Options).
func (g *Graph) SortSubgraph(sortURI string) *Graph {
	out := NewGraphWithDict(g.dict)
	typeID, ok1 := g.dict.Lookup(TypeURI)
	sortID, ok2 := g.dict.Lookup(sortURI)
	if !ok1 || !ok2 {
		return out
	}
	if ps := g.propSubjects[typeID]; ps != nil {
		ps.forEach(func(s term.ID) {
			if !g.ContainsID(IDTriple{S: s, P: typeID, O: sortID, OKind: URI}) {
				return
			}
			g.EachSubjectTripleID(s, func(it IDTriple) { out.AddID(it) })
		})
	}
	return out
}

// Merge adds every triple of other into g. When the graphs share a
// dictionary the triples transfer in interned form.
func (g *Graph) Merge(other *Graph) {
	if other.dict == g.dict {
		other.EachTripleID(func(it IDTriple) { g.AddID(it) })
		return
	}
	other.EachTriple(func(t Triple) { g.Add(t) })
}
