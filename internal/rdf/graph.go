package rdf

import (
	"sort"
)

// Graph is a finite set of RDF triples with subject and predicate
// indexes. The zero value is not ready to use; call NewGraph.
type Graph struct {
	triples []Triple
	// bySubject maps subject URI -> indices into triples, insertion order.
	bySubject map[string][]int
	// present deduplicates triples.
	present map[tripleKey]struct{}
	// propSubjects maps predicate URI -> set of subjects having it.
	propSubjects map[string]map[string]struct{}
}

type tripleKey struct {
	s, p string
	ok   TermKind
	ov   string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		bySubject:    make(map[string][]int),
		present:      make(map[tripleKey]struct{}),
		propSubjects: make(map[string]map[string]struct{}),
	}
}

func key(t Triple) tripleKey {
	return tripleKey{s: t.Subject, p: t.Predicate, ok: t.Object.Kind, ov: t.Object.Value}
}

// Add inserts t if not already present and reports whether it was added.
func (g *Graph) Add(t Triple) bool {
	k := key(t)
	if _, dup := g.present[k]; dup {
		return false
	}
	g.present[k] = struct{}{}
	g.bySubject[t.Subject] = append(g.bySubject[t.Subject], len(g.triples))
	ps := g.propSubjects[t.Predicate]
	if ps == nil {
		ps = make(map[string]struct{})
		g.propSubjects[t.Predicate] = ps
	}
	ps[t.Subject] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// AddURI is shorthand for adding (s, p, <o>).
func (g *Graph) AddURI(s, p, o string) bool {
	return g.Add(Triple{Subject: s, Predicate: p, Object: NewURI(o)})
}

// AddLiteral is shorthand for adding (s, p, "o").
func (g *Graph) AddLiteral(s, p, o string) bool {
	return g.Add(Triple{Subject: s, Predicate: p, Object: NewLiteral(o)})
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t Triple) bool {
	_, ok := g.present[key(t)]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the triples in insertion order. The slice must not be
// modified.
func (g *Graph) Triples() []Triple { return g.triples }

// Subjects returns S(D): the distinct subjects, sorted.
func (g *Graph) Subjects() []string {
	out := make([]string, 0, len(g.bySubject))
	for s := range g.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Properties returns P(D): the distinct predicates, sorted.
func (g *Graph) Properties() []string {
	out := make([]string, 0, len(g.propSubjects))
	for p := range g.propSubjects {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// HasProperty reports whether subject s has property p in the graph,
// i.e. ∃o such that (s, p, o) ∈ D.
func (g *Graph) HasProperty(s, p string) bool {
	ps := g.propSubjects[p]
	if ps == nil {
		return false
	}
	_, ok := ps[s]
	return ok
}

// SubjectTriples returns the triples whose subject is s, in insertion
// order (the "entity" of s in the paper's terminology).
func (g *Graph) SubjectTriples(s string) []Triple {
	idx := g.bySubject[s]
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.triples[j]
	}
	return out
}

// SubjectCount returns |S(D)| without materializing the subject list.
func (g *Graph) SubjectCount() int { return len(g.bySubject) }

// PropertyCount returns |P(D)|.
func (g *Graph) PropertyCount() int { return len(g.propSubjects) }

// Sorts returns the distinct sort URIs t appearing in (s, rdf:type, t)
// triples, sorted.
func (g *Graph) Sorts() []string {
	seen := map[string]struct{}{}
	ps := g.propSubjects[TypeURI]
	for s := range ps {
		for _, t := range g.SubjectTriples(s) {
			if t.Predicate == TypeURI && t.Object.IsURI() {
				seen[t.Object.Value] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// SortSubgraph returns Dt = {(s,p,o) ∈ D | (s, rdf:type, t) ∈ D}: all
// triples whose subject is explicitly declared of sort t. The result is
// a new graph; it includes the rdf:type triples themselves, matching the
// paper's definition (experiments typically exclude the type property
// from the property-structure view; see matrix.Options).
func (g *Graph) SortSubgraph(sortURI string) *Graph {
	out := NewGraph()
	typeTriple := Triple{Predicate: TypeURI, Object: NewURI(sortURI)}
	for s := range g.bySubject {
		typeTriple.Subject = s
		if !g.Contains(typeTriple) {
			continue
		}
		for _, t := range g.SubjectTriples(s) {
			out.Add(t)
		}
	}
	return out
}

// Merge adds every triple of other into g.
func (g *Graph) Merge(other *Graph) {
	for _, t := range other.Triples() {
		g.Add(t)
	}
}
