package rdf

import (
	"sort"
)

// Graph is a finite set of RDF triples with subject and predicate
// indexes. The zero value is not ready to use; call NewGraph.
type Graph struct {
	triples []Triple
	// bySubject maps subject URI -> indices into triples, insertion order.
	bySubject map[string][]int
	// present deduplicates triples and locates them for removal.
	present map[tripleKey]int
	// propSubjects maps predicate URI -> set of subjects having it.
	propSubjects map[string]map[string]struct{}
	// dead marks removed slots in triples; compacted away once they
	// outnumber the live triples.
	dead map[int]struct{}
}

type tripleKey struct {
	s, p string
	ok   TermKind
	ov   string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		bySubject:    make(map[string][]int),
		present:      make(map[tripleKey]int),
		propSubjects: make(map[string]map[string]struct{}),
		dead:         make(map[int]struct{}),
	}
}

func key(t Triple) tripleKey {
	return tripleKey{s: t.Subject, p: t.Predicate, ok: t.Object.Kind, ov: t.Object.Value}
}

// Add inserts t if not already present and reports whether it was added.
func (g *Graph) Add(t Triple) bool {
	k := key(t)
	if _, dup := g.present[k]; dup {
		return false
	}
	g.present[k] = len(g.triples)
	g.bySubject[t.Subject] = append(g.bySubject[t.Subject], len(g.triples))
	ps := g.propSubjects[t.Predicate]
	if ps == nil {
		ps = make(map[string]struct{})
		g.propSubjects[t.Predicate] = ps
	}
	ps[t.Subject] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// Remove deletes t if present and reports whether it was removed. The
// subject and predicate indexes are cleaned up: bySubject and
// propSubjects entries are dropped when they empty, so Subjects,
// Properties, HasProperty and HasSubject reflect the removal exactly as
// if the graph had been rebuilt without t.
func (g *Graph) Remove(t Triple) bool {
	k := key(t)
	i, ok := g.present[k]
	if !ok {
		return false
	}
	delete(g.present, k)
	g.dead[i] = struct{}{}

	idx := g.bySubject[t.Subject]
	for j, x := range idx {
		if x == i {
			idx = append(idx[:j], idx[j+1:]...)
			break
		}
	}
	if len(idx) == 0 {
		delete(g.bySubject, t.Subject)
	} else {
		g.bySubject[t.Subject] = idx
	}

	// The subject keeps the predicate only if another of its triples
	// still uses it.
	still := false
	for _, j := range idx {
		if g.triples[j].Predicate == t.Predicate {
			still = true
			break
		}
	}
	if !still {
		if ps := g.propSubjects[t.Predicate]; ps != nil {
			delete(ps, t.Subject)
			if len(ps) == 0 {
				delete(g.propSubjects, t.Predicate)
			}
		}
	}

	if len(g.dead) > len(g.triples)/2 && len(g.dead) >= 64 {
		g.compact()
	}
	return true
}

// compact rewrites the triple slice without dead slots, preserving
// insertion order, and reindexes present and bySubject.
func (g *Graph) compact() {
	live := make([]Triple, 0, len(g.triples)-len(g.dead))
	remap := make([]int, len(g.triples))
	for i, t := range g.triples {
		if _, gone := g.dead[i]; gone {
			remap[i] = -1
			continue
		}
		remap[i] = len(live)
		live = append(live, t)
	}
	g.triples = live
	g.dead = make(map[int]struct{})
	for k, i := range g.present {
		g.present[k] = remap[i]
	}
	for s, idx := range g.bySubject {
		for j, i := range idx {
			idx[j] = remap[i]
		}
		g.bySubject[s] = idx
	}
}

// AddURI is shorthand for adding (s, p, <o>).
func (g *Graph) AddURI(s, p, o string) bool {
	return g.Add(Triple{Subject: s, Predicate: p, Object: NewURI(o)})
}

// AddLiteral is shorthand for adding (s, p, "o").
func (g *Graph) AddLiteral(s, p, o string) bool {
	return g.Add(Triple{Subject: s, Predicate: p, Object: NewLiteral(o)})
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t Triple) bool {
	_, ok := g.present[key(t)]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.triples) - len(g.dead) }

// Triples returns the triples in insertion order. The slice must not be
// modified.
func (g *Graph) Triples() []Triple {
	if len(g.dead) == 0 {
		return g.triples
	}
	out := make([]Triple, 0, g.Len())
	for i, t := range g.triples {
		if _, gone := g.dead[i]; !gone {
			out = append(out, t)
		}
	}
	return out
}

// Subjects returns S(D): the distinct subjects, sorted.
func (g *Graph) Subjects() []string {
	out := make([]string, 0, len(g.bySubject))
	for s := range g.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Properties returns P(D): the distinct predicates, sorted.
func (g *Graph) Properties() []string {
	out := make([]string, 0, len(g.propSubjects))
	for p := range g.propSubjects {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// HasProperty reports whether subject s has property p in the graph,
// i.e. ∃o such that (s, p, o) ∈ D.
func (g *Graph) HasProperty(s, p string) bool {
	ps := g.propSubjects[p]
	if ps == nil {
		return false
	}
	_, ok := ps[s]
	return ok
}

// SubjectTriples returns the triples whose subject is s, in insertion
// order (the "entity" of s in the paper's terminology).
func (g *Graph) SubjectTriples(s string) []Triple {
	idx := g.bySubject[s]
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.triples[j]
	}
	return out
}

// SubjectCount returns |S(D)| without materializing the subject list.
func (g *Graph) SubjectCount() int { return len(g.bySubject) }

// HasSubject reports whether s has at least one triple in the graph.
func (g *Graph) HasSubject(s string) bool {
	_, ok := g.bySubject[s]
	return ok
}

// SubjectDegree returns the number of triples whose subject is s.
func (g *Graph) SubjectDegree(s string) int { return len(g.bySubject[s]) }

// PropertyCount returns |P(D)|.
func (g *Graph) PropertyCount() int { return len(g.propSubjects) }

// Sorts returns the distinct sort URIs t appearing in (s, rdf:type, t)
// triples, sorted.
func (g *Graph) Sorts() []string {
	seen := map[string]struct{}{}
	ps := g.propSubjects[TypeURI]
	for s := range ps {
		for _, t := range g.SubjectTriples(s) {
			if t.Predicate == TypeURI && t.Object.IsURI() {
				seen[t.Object.Value] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// SortSubgraph returns Dt = {(s,p,o) ∈ D | (s, rdf:type, t) ∈ D}: all
// triples whose subject is explicitly declared of sort t. The result is
// a new graph; it includes the rdf:type triples themselves, matching the
// paper's definition (experiments typically exclude the type property
// from the property-structure view; see matrix.Options).
func (g *Graph) SortSubgraph(sortURI string) *Graph {
	out := NewGraph()
	typeTriple := Triple{Predicate: TypeURI, Object: NewURI(sortURI)}
	for s := range g.bySubject {
		typeTriple.Subject = s
		if !g.Contains(typeTriple) {
			continue
		}
		for _, t := range g.SubjectTriples(s) {
			out.Add(t)
		}
	}
	return out
}

// Merge adds every triple of other into g.
func (g *Graph) Merge(other *Graph) {
	for _, t := range other.Triples() {
		g.Add(t)
	}
}
