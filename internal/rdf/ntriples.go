package rdf

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"unicode/utf8"

	"repro/internal/term"
)

// ParseError describes a syntax error in N-Triples input.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// NTriplesDecoder streams triples out of an N-Triples document one
// line at a time, holding only the current line in memory — the way
// rdfserved and the CLIs ingest large dumps with bounded memory.
//
// Two output forms are available: Next materializes a string Triple
// per line, while NextID parses directly off the scanner's byte buffer
// and interns each term into a dictionary — zero string allocation for
// terms the dictionary has already seen, which in steady-state
// ingestion is nearly all of them (subjects repeat across their
// triples, predicates and common objects repeat across the dump).
type NTriplesDecoder struct {
	sc      *bufio.Scanner
	line    int
	scratch []byte // literal-unescape buffer reused across NextID calls

	// Per-slot one-entry memos for NextID: real dumps are grouped by
	// subject (and often by predicate within a subject), so the
	// previous line's terms very frequently recur verbatim — a byte
	// compare then skips the dictionary probe entirely.
	memoDict           *term.Dict
	subjMemo, predMemo termMemo
	objMemo            termMemo
	objMemoKind        TermKind
}

// termMemo caches one token -> ID association.
type termMemo struct {
	bytes []byte
	id    term.ID
	ok    bool
}

func (m *termMemo) intern(tok []byte, dict *term.Dict) term.ID {
	if m.ok && bytes.Equal(m.bytes, tok) {
		return m.id
	}
	m.id = dict.InternBytes(tok)
	m.bytes = append(m.bytes[:0], tok...)
	m.ok = true
	return m.id
}

// NewNTriplesDecoder returns a decoder reading from r.
func NewNTriplesDecoder(r io.Reader) *NTriplesDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &NTriplesDecoder{sc: sc}
}

// Next returns the next triple. Blank and comment-only lines are
// skipped. At end of input it returns io.EOF.
func (d *NTriplesDecoder) Next() (Triple, error) {
	for d.sc.Scan() {
		d.line++
		t, ok, err := ParseNTriplesLine(d.sc.Text(), d.line)
		if err != nil {
			return Triple{}, err
		}
		if ok {
			return t, nil
		}
	}
	if err := d.sc.Err(); err != nil {
		return Triple{}, fmt.Errorf("ntriples: read: %w", err)
	}
	return Triple{}, io.EOF
}

// NextID returns the next triple in interned form, interning terms
// into dict zero-copy from the scanner's buffer: the term bytes are
// only copied into a string when the dictionary has never seen them.
// At end of input it returns io.EOF.
func (d *NTriplesDecoder) NextID(dict *term.Dict) (IDTriple, error) {
	if d.memoDict != dict {
		d.memoDict = dict
		d.subjMemo.ok, d.predMemo.ok, d.objMemo.ok = false, false, false
	}
	for d.sc.Scan() {
		d.line++
		p := &lineParser[[]byte]{s: d.sc.Bytes(), line: d.line, scratch: d.scratch[:0]}
		rt, ok, err := parseLine(p)
		d.scratch = p.scratch
		if err != nil {
			return IDTriple{}, err
		}
		if !ok {
			continue
		}
		it := IDTriple{
			S:     d.subjMemo.intern(rt.subj, dict),
			P:     d.predMemo.intern(rt.pred, dict),
			OKind: rt.objKind,
		}
		if d.objMemoKind != rt.objKind {
			d.objMemo.ok = false
			d.objMemoKind = rt.objKind
		}
		it.O = d.objMemo.intern(rt.obj, dict)
		return it, nil
	}
	if err := d.sc.Err(); err != nil {
		return IDTriple{}, fmt.Errorf("ntriples: read: %w", err)
	}
	return IDTriple{}, io.EOF
}

// Line returns the number of the last line consumed (1-based).
func (d *NTriplesDecoder) Line() int { return d.line }

// ReadNTriples streams N-Triples from r, calling emit for every triple
// in document order. Memory use is bounded by the longest line. It
// supports the core grammar the paper's datasets need: URI
// subjects/predicates, URI or literal objects (with language tags and
// datatype annotations, which are parsed and discarded since the
// property-structure view only records presence), comments (#) and
// blank lines. Blank nodes are accepted in subject/object position and
// treated as URIs with a _: prefix.
func ReadNTriples(r io.Reader, emit func(Triple) error) error {
	d := NewNTriplesDecoder(r)
	for {
		t, err := d.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
}

// ReadNTriplesIDs streams N-Triples from r in interned form, interning
// every term into dict. See NextID for the allocation profile.
func ReadNTriplesIDs(r io.Reader, dict *term.Dict, emit func(IDTriple) error) error {
	d := NewNTriplesDecoder(r)
	for {
		it, err := d.NextID(dict)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(it); err != nil {
			return err
		}
	}
}

// ParseNTriples reads N-Triples from r into a new graph, through the
// interned fast path. See ReadNTriples for the supported grammar.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadNTriplesIDs(r, g.Dict(), func(it IDTriple) error { g.AddID(it); return nil }); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseNTriplesLine parses a single N-Triples line. ok is false for
// blank and comment-only lines. The returned triple's strings are
// substrings of line where the grammar allows (unescaped terms).
func ParseNTriplesLine(line string, lineNo int) (t Triple, ok bool, err error) {
	p := &lineParser[string]{s: line, line: lineNo}
	rt, ok, err := parseLine(p)
	if !ok || err != nil {
		return Triple{}, false, err
	}
	return Triple{
		Subject:   rt.subj,
		Predicate: rt.pred,
		Object:    Term{Kind: rt.objKind, Value: rt.obj},
	}, true, nil
}

// byteseq abstracts the parser input so one implementation serves both
// the string API (substring results, no input copy) and the interning
// decoder (byte-slice results straight off the read buffer).
type byteseq interface{ ~string | ~[]byte }

// rawTriple is a parsed line before term materialization: each field
// views the input (or the parser's scratch buffer, for literals with
// escapes).
type rawTriple[S byteseq] struct {
	subj, pred S
	obj        S
	objKind    TermKind
}

type lineParser[S byteseq] struct {
	s       S
	i       int
	line    int
	scratch []byte // unescape buffer; only grown when a literal has escapes
}

func (p *lineParser[S]) eof() bool  { return p.i >= len(p.s) }
func (p *lineParser[S]) peek() byte { return p.s[p.i] }
func (p *lineParser[S]) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Col: p.i + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser[S]) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.i++
	}
}

// parseLine parses one N-Triples line into views of the input. ok is
// false for blank and comment-only lines.
func parseLine[S byteseq](p *lineParser[S]) (rt rawTriple[S], ok bool, err error) {
	p.skipWS()
	if p.eof() || p.peek() == '#' {
		return rt, false, nil
	}
	rt.subj, err = p.parseResource()
	if err != nil {
		return rt, false, err
	}
	p.skipWS()
	rt.pred, err = p.parseURI()
	if err != nil {
		return rt, false, err
	}
	p.skipWS()
	rt.obj, rt.objKind, err = p.parseObject()
	if err != nil {
		return rt, false, err
	}
	p.skipWS()
	if p.eof() || p.peek() != '.' {
		return rt, false, p.errf("expected '.' terminator")
	}
	p.i++
	p.skipWS()
	if !p.eof() && p.peek() != '#' {
		return rt, false, p.errf("unexpected trailing content %q", string(p.s[p.i:]))
	}
	return rt, true, nil
}

// parseResource parses a URI or a blank node label.
func (p *lineParser[S]) parseResource() (S, error) {
	var zero S
	if p.eof() {
		return zero, p.errf("unexpected end of line, expected URI or blank node")
	}
	if p.peek() == '_' {
		return p.parseBlankNode()
	}
	return p.parseURI()
}

func (p *lineParser[S]) parseBlankNode() (S, error) {
	var zero S
	start := p.i
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return zero, p.errf("malformed blank node")
	}
	p.i += 2
	for !p.eof() && p.peek() != ' ' && p.peek() != '\t' {
		p.i++
	}
	if p.i == start+2 {
		return zero, p.errf("empty blank node label")
	}
	return p.s[start:p.i], nil
}

func (p *lineParser[S]) parseURI() (S, error) {
	var zero S
	if p.eof() || p.peek() != '<' {
		return zero, p.errf("expected '<'")
	}
	p.i++
	start := p.i
	for !p.eof() && p.peek() != '>' {
		if p.peek() == ' ' {
			return zero, p.errf("space inside URI")
		}
		p.i++
	}
	if p.eof() {
		return zero, p.errf("unterminated URI")
	}
	u := p.s[start:p.i]
	p.i++
	if len(u) == 0 {
		return zero, p.errf("empty URI")
	}
	return u, nil
}

func (p *lineParser[S]) parseObject() (S, TermKind, error) {
	var zero S
	if p.eof() {
		return zero, URI, p.errf("unexpected end of line, expected object")
	}
	switch p.peek() {
	case '<':
		u, err := p.parseURI()
		return u, URI, err
	case '_':
		b, err := p.parseBlankNode()
		return b, URI, err
	case '"':
		v, err := p.parseLiteral()
		return v, Literal, err
	}
	return zero, URI, p.errf("expected URI, blank node or literal, got %q", p.peek())
}

// parseLiteral parses a quoted literal. When the literal contains no
// escape sequences the result views the input directly; otherwise the
// unescaped value is built in the parser's scratch buffer (reused
// across lines by the interning decoder).
func (p *lineParser[S]) parseLiteral() (S, error) {
	var zero S
	p.i++ // consume opening quote
	start := p.i
	escaped := false
	for {
		if p.eof() {
			return zero, p.errf("unterminated literal")
		}
		c := p.peek()
		if c == '"' {
			break
		}
		if c == '\\' {
			if !escaped {
				// First escape: switch to the scratch buffer, seeded with
				// the literal prefix scanned so far.
				escaped = true
				p.scratch = append(p.scratch[:0], p.s[start:p.i]...)
			}
			p.i++
			if p.eof() {
				return zero, p.errf("dangling escape")
			}
			esc := p.peek()
			p.i++
			switch esc {
			case 't':
				p.scratch = append(p.scratch, '\t')
			case 'n':
				p.scratch = append(p.scratch, '\n')
			case 'r':
				p.scratch = append(p.scratch, '\r')
			case '"':
				p.scratch = append(p.scratch, '"')
			case '\\':
				p.scratch = append(p.scratch, '\\')
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				if p.i+n > len(p.s) {
					return zero, p.errf("truncated \\%c escape", esc)
				}
				var r rune
				for j := 0; j < n; j++ {
					d := hexVal(p.s[p.i+j])
					if d < 0 {
						return zero, p.errf("bad hex digit in \\%c escape", esc)
					}
					r = r<<4 | rune(d)
				}
				p.i += n
				if !utf8.ValidRune(r) {
					return zero, p.errf("invalid code point in escape")
				}
				p.scratch = utf8.AppendRune(p.scratch, r)
			default:
				return zero, p.errf("unknown escape \\%c", esc)
			}
			continue
		}
		if escaped {
			p.scratch = append(p.scratch, c)
		}
		p.i++
	}
	var value S
	if escaped {
		value = S(p.scratch)
	} else {
		value = p.s[start:p.i]
	}
	p.i++ // consume closing quote
	// Optional language tag or datatype; presence-only semantics, so the
	// annotation is validated and discarded.
	if !p.eof() && p.peek() == '@' {
		p.i++
		start := p.i
		for !p.eof() && p.peek() != ' ' && p.peek() != '\t' && p.peek() != '.' {
			p.i++
		}
		if p.i == start {
			return zero, p.errf("empty language tag")
		}
	} else if p.i+1 < len(p.s) && p.s[p.i] == '^' && p.s[p.i+1] == '^' {
		p.i += 2
		if _, err := p.parseURI(); err != nil {
			return zero, err
		}
	}
	return value, nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// WriteNTriples serializes the graph to w in N-Triples syntax, one
// triple per line, in insertion order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for i, it := range g.triples {
		if _, gone := g.dead[int32(i)]; gone {
			continue
		}
		// Materialize one triple at a time and stop at the first write
		// error instead of draining the whole graph.
		if _, err := bw.WriteString(g.materialize(it).String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
