package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error in N-Triples input.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// NTriplesDecoder streams triples out of an N-Triples document one
// line at a time, holding only the current line in memory — the way
// rdfserved and the CLIs ingest large dumps with bounded memory.
type NTriplesDecoder struct {
	sc   *bufio.Scanner
	line int
}

// NewNTriplesDecoder returns a decoder reading from r.
func NewNTriplesDecoder(r io.Reader) *NTriplesDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &NTriplesDecoder{sc: sc}
}

// Next returns the next triple. Blank and comment-only lines are
// skipped. At end of input it returns io.EOF.
func (d *NTriplesDecoder) Next() (Triple, error) {
	for d.sc.Scan() {
		d.line++
		t, ok, err := ParseNTriplesLine(d.sc.Text(), d.line)
		if err != nil {
			return Triple{}, err
		}
		if ok {
			return t, nil
		}
	}
	if err := d.sc.Err(); err != nil {
		return Triple{}, fmt.Errorf("ntriples: read: %w", err)
	}
	return Triple{}, io.EOF
}

// Line returns the number of the last line consumed (1-based).
func (d *NTriplesDecoder) Line() int { return d.line }

// ReadNTriples streams N-Triples from r, calling emit for every triple
// in document order. Memory use is bounded by the longest line. It
// supports the core grammar the paper's datasets need: URI
// subjects/predicates, URI or literal objects (with language tags and
// datatype annotations, which are parsed and discarded since the
// property-structure view only records presence), comments (#) and
// blank lines. Blank nodes are accepted in subject/object position and
// treated as URIs with a _: prefix.
func ReadNTriples(r io.Reader, emit func(Triple) error) error {
	d := NewNTriplesDecoder(r)
	for {
		t, err := d.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
}

// ParseNTriples reads N-Triples from r into a new graph. See
// ReadNTriples for the supported grammar.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadNTriples(r, func(t Triple) error { g.Add(t); return nil }); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseNTriplesLine parses a single N-Triples line. ok is false for
// blank and comment-only lines.
func ParseNTriplesLine(line string, lineNo int) (t Triple, ok bool, err error) {
	p := &lineParser{s: line, line: lineNo}
	p.skipWS()
	if p.eof() || p.peek() == '#' {
		return Triple{}, false, nil
	}
	subj, err := p.parseResource()
	if err != nil {
		return Triple{}, false, err
	}
	p.skipWS()
	pred, err := p.parseURI()
	if err != nil {
		return Triple{}, false, err
	}
	p.skipWS()
	obj, err := p.parseObject()
	if err != nil {
		return Triple{}, false, err
	}
	p.skipWS()
	if p.eof() || p.peek() != '.' {
		return Triple{}, false, p.errf("expected '.' terminator")
	}
	p.i++
	p.skipWS()
	if !p.eof() && p.peek() != '#' {
		return Triple{}, false, p.errf("unexpected trailing content %q", p.s[p.i:])
	}
	return Triple{Subject: subj, Predicate: pred, Object: obj}, true, nil
}

type lineParser struct {
	s    string
	i    int
	line int
}

func (p *lineParser) eof() bool  { return p.i >= len(p.s) }
func (p *lineParser) peek() byte { return p.s[p.i] }
func (p *lineParser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Col: p.i + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.i++
	}
}

// parseResource parses a URI or a blank node label.
func (p *lineParser) parseResource() (string, error) {
	if p.eof() {
		return "", p.errf("unexpected end of line, expected URI or blank node")
	}
	if p.peek() == '_' {
		return p.parseBlankNode()
	}
	return p.parseURI()
}

func (p *lineParser) parseBlankNode() (string, error) {
	start := p.i
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return "", p.errf("malformed blank node")
	}
	p.i += 2
	for !p.eof() && p.peek() != ' ' && p.peek() != '\t' {
		p.i++
	}
	if p.i == start+2 {
		return "", p.errf("empty blank node label")
	}
	return p.s[start:p.i], nil
}

func (p *lineParser) parseURI() (string, error) {
	if p.eof() || p.peek() != '<' {
		return "", p.errf("expected '<'")
	}
	p.i++
	start := p.i
	for !p.eof() && p.peek() != '>' {
		if p.peek() == ' ' {
			return "", p.errf("space inside URI")
		}
		p.i++
	}
	if p.eof() {
		return "", p.errf("unterminated URI")
	}
	u := p.s[start:p.i]
	p.i++
	if u == "" {
		return "", p.errf("empty URI")
	}
	return u, nil
}

func (p *lineParser) parseObject() (Term, error) {
	if p.eof() {
		return Term{}, p.errf("unexpected end of line, expected object")
	}
	switch p.peek() {
	case '<':
		u, err := p.parseURI()
		if err != nil {
			return Term{}, err
		}
		return NewURI(u), nil
	case '_':
		b, err := p.parseBlankNode()
		if err != nil {
			return Term{}, err
		}
		return NewURI(b), nil
	case '"':
		return p.parseLiteral()
	}
	return Term{}, p.errf("expected URI, blank node or literal, got %q", p.peek())
}

func (p *lineParser) parseLiteral() (Term, error) {
	p.i++ // consume opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.peek()
		if c == '"' {
			p.i++
			break
		}
		if c == '\\' {
			p.i++
			if p.eof() {
				return Term{}, p.errf("dangling escape")
			}
			esc := p.peek()
			p.i++
			switch esc {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				if p.i+n > len(p.s) {
					return Term{}, p.errf("truncated \\%c escape", esc)
				}
				var r rune
				for j := 0; j < n; j++ {
					d := hexVal(p.s[p.i+j])
					if d < 0 {
						return Term{}, p.errf("bad hex digit in \\%c escape", esc)
					}
					r = r<<4 | rune(d)
				}
				p.i += n
				if !utf8.ValidRune(r) {
					return Term{}, p.errf("invalid code point in escape")
				}
				b.WriteRune(r)
			default:
				return Term{}, p.errf("unknown escape \\%c", esc)
			}
			continue
		}
		b.WriteByte(c)
		p.i++
	}
	// Optional language tag or datatype; presence-only semantics, so the
	// annotation is validated and discarded.
	if !p.eof() && p.peek() == '@' {
		p.i++
		start := p.i
		for !p.eof() && p.peek() != ' ' && p.peek() != '\t' && p.peek() != '.' {
			p.i++
		}
		if p.i == start {
			return Term{}, p.errf("empty language tag")
		}
	} else if p.i+1 < len(p.s) && p.s[p.i] == '^' && p.s[p.i+1] == '^' {
		p.i += 2
		if _, err := p.parseURI(); err != nil {
			return Term{}, err
		}
	}
	return NewLiteral(b.String()), nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// WriteNTriples serializes the graph to w in N-Triples syntax, one
// triple per line, in insertion order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
