package rdf

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// TestGraphIDRoundtrip checks the ID-based API agrees with the string
// API on the same graph.
func TestGraphIDRoundtrip(t *testing.T) {
	g := NewGraph()
	g.AddURI("s1", "p1", "o1")
	g.AddLiteral("s1", "p2", "v")
	g.AddURI("s2", "p1", "o1")

	dict := g.Dict()
	s1, ok := dict.Lookup("s1")
	if !ok {
		t.Fatal("s1 not interned")
	}
	p1, _ := dict.Lookup("p1")
	if !g.HasSubjectID(s1) || !g.HasPropertyID(s1, p1) {
		t.Fatal("ID accessors disagree with string accessors")
	}
	var seen []string
	g.EachSubjectTripleID(s1, func(it IDTriple) {
		seen = append(seen, dict.String(it.P))
	})
	if len(seen) != 2 || seen[0] != "p1" || seen[1] != "p2" {
		t.Fatalf("EachSubjectTripleID order = %v", seen)
	}
	// A literal and a URI with the same value are distinct triples.
	g.AddLiteral("s2", "p1", "o1")
	if g.Len() != 4 {
		t.Fatalf("literal/URI with equal value collapsed: Len = %d", g.Len())
	}
	if !g.Contains(Triple{Subject: "s2", Predicate: "p1", Object: NewLiteral("o1")}) ||
		!g.Contains(Triple{Subject: "s2", Predicate: "p1", Object: NewURI("o1")}) {
		t.Fatal("kind not part of triple identity")
	}
}

// TestCompactReusesRetiredSubject is the Remove→compact→Add regression
// test: retire a subject through enough removals to trigger compaction,
// then re-add triples for it and check every index answers correctly.
func TestCompactReusesRetiredSubject(t *testing.T) {
	g := NewGraph()
	// 200 filler triples across 100 subjects, plus the victim subject.
	for i := 0; i < 100; i++ {
		g.AddURI(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i))
		g.AddURI(fmt.Sprintf("s%d", i), "q", "shared")
	}
	g.AddURI("victim", "p", "vo")
	g.AddURI("victim", "r", "vo")

	// Remove the victim and then enough filler to force compact()
	// (dead > live/2 and dead >= 64).
	g.Remove(Triple{Subject: "victim", Predicate: "p", Object: NewURI("vo")})
	g.Remove(Triple{Subject: "victim", Predicate: "r", Object: NewURI("vo")})
	for i := 0; i < 70; i++ {
		g.Remove(Triple{Subject: fmt.Sprintf("s%d", i), Predicate: "p", Object: NewURI(fmt.Sprintf("o%d", i))})
		g.Remove(Triple{Subject: fmt.Sprintf("s%d", i), Predicate: "q", Object: NewURI("shared")})
	}
	if g.HasSubject("victim") {
		t.Fatal("victim survived removal")
	}
	if g.Len() != 60 {
		t.Fatalf("Len = %d, want 60", g.Len())
	}

	// Re-add the retired subject: its dictionary ID is reused, and the
	// rebuilt indexes must serve it exactly like a fresh subject.
	if !g.AddURI("victim", "p", "vo2") {
		t.Fatal("re-Add after compact failed")
	}
	if !g.HasSubject("victim") || !g.HasProperty("victim", "p") {
		t.Fatal("re-added subject not indexed")
	}
	if g.HasProperty("victim", "r") {
		t.Fatal("stale property survived retirement")
	}
	if got := g.SubjectTriples("victim"); len(got) != 1 || got[0].Object.Value != "vo2" {
		t.Fatalf("SubjectTriples(victim) = %v", got)
	}
	if g.SubjectDegree("victim") != 1 {
		t.Fatalf("SubjectDegree = %d, want 1", g.SubjectDegree("victim"))
	}
	// The old triple stays gone, the new one is present.
	if g.Contains(Triple{Subject: "victim", Predicate: "p", Object: NewURI("vo")}) {
		t.Fatal("compact resurrected a removed triple")
	}
	// Survivors kept their triples in insertion order.
	if got := g.SubjectTriples("s80"); len(got) != 2 || got[0].Predicate != "p" || got[1].Predicate != "q" {
		t.Fatalf("survivor triples = %v", got)
	}
}

// randomNTDoc builds an N-Triples document exercising escaped literals,
// language tags, datatypes, blank nodes, comments and very long lines.
func randomNTDoc(rng *rand.Rand, lines int) string {
	var b strings.Builder
	lit := func() string {
		pieces := []string{`plain`, `tab\there`, `nl\nthere`, `quote\"q`, `back\\slash`, `uni\u00e9`, `astral\U0001F600`, `cr\rx`}
		n := 1 + rng.Intn(3)
		var s strings.Builder
		for i := 0; i < n; i++ {
			s.WriteString(pieces[rng.Intn(len(pieces))])
		}
		if rng.Intn(4) == 0 {
			// A long literal: stress the scanner's buffer growth.
			s.WriteString(strings.Repeat("x", 5000+rng.Intn(5000)))
		}
		return s.String()
	}
	for i := 0; i < lines; i++ {
		switch rng.Intn(10) {
		case 0:
			b.WriteString("# comment line\n")
			continue
		case 1:
			b.WriteString("\n")
			continue
		}
		subj := fmt.Sprintf("<http://ex/s%d>", rng.Intn(20))
		if rng.Intn(6) == 0 {
			subj = fmt.Sprintf("_:b%d", rng.Intn(5))
		}
		pred := fmt.Sprintf("<http://ex/p%d>", rng.Intn(6))
		var obj string
		switch rng.Intn(3) {
		case 0:
			obj = fmt.Sprintf("<http://ex/o%d>", rng.Intn(30))
		case 1:
			obj = `"` + lit() + `"`
			switch rng.Intn(3) {
			case 0:
				obj += "@en"
			case 1:
				obj += "^^<http://www.w3.org/2001/XMLSchema#string>"
			}
		case 2:
			obj = fmt.Sprintf("_:b%d", rng.Intn(5))
		}
		fmt.Fprintf(&b, "%s %s %s .", subj, pred, obj)
		if rng.Intn(5) == 0 {
			b.WriteString("  # trailing comment")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestNTriplesStreamingMatchesBatch round-trips randomized documents
// through both decode paths — the streaming interned decoder (NextID)
// and the line-at-a-time string decoder (Next) — and requires identical
// triple sequences, including unescaped literal values.
func TestNTriplesStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		doc := randomNTDoc(rng, 60)

		var viaString []Triple
		if err := ReadNTriples(strings.NewReader(doc), func(tr Triple) error {
			viaString = append(viaString, tr)
			return nil
		}); err != nil {
			t.Fatalf("round %d: string path: %v\ndoc:\n%s", round, err, doc)
		}

		g := NewGraph()
		dec := NewNTriplesDecoder(strings.NewReader(doc))
		var viaID []Triple
		for {
			it, err := dec.NextID(g.Dict())
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("round %d: interned path: %v", round, err)
			}
			viaID = append(viaID, Triple{
				Subject:   g.Dict().String(it.S),
				Predicate: g.Dict().String(it.P),
				Object:    Term{Kind: it.OKind, Value: g.Dict().String(it.O)},
			})
		}

		if len(viaString) != len(viaID) {
			t.Fatalf("round %d: %d triples via strings, %d via IDs", round, len(viaString), len(viaID))
		}
		for i := range viaString {
			if viaString[i] != viaID[i] {
				t.Fatalf("round %d triple %d:\n  string: %+v\n  interned: %+v", round, i, viaString[i], viaID[i])
			}
		}
	}
}

// TestNTriplesWriteParseRoundtrip serializes a graph with hostile
// literal values and re-parses it through both paths.
func TestNTriplesWriteParseRoundtrip(t *testing.T) {
	g := NewGraph()
	values := []string{
		"plain", "with \"quotes\"", "tab\tand\nnewline", `back\slash`,
		"é-accent", "emoji \U0001F600", strings.Repeat("long", 4000),
		"\r carriage",
	}
	for i, v := range values {
		g.AddLiteral(fmt.Sprintf("http://ex/s%d", i), "http://ex/p", v)
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}

	batch, err := ParseNTriples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != g.Len() {
		t.Fatalf("batch reparse: %d triples, want %d", batch.Len(), g.Len())
	}
	for i, v := range values {
		if !batch.Contains(Triple{Subject: fmt.Sprintf("http://ex/s%d", i), Predicate: "http://ex/p", Object: NewLiteral(v)}) {
			t.Fatalf("value %q lost in roundtrip", v)
		}
	}
}

// FuzzNTriplesLineParity feeds arbitrary lines to the string parser and
// the interning parser; they must agree on accept/reject and on the
// parsed triple.
func FuzzNTriplesLineParity(f *testing.F) {
	f.Add(`<http://ex/s> <http://ex/p> "lit\ttab" .`)
	f.Add(`<http://ex/s> <http://ex/p> <http://ex/o> . # c`)
	f.Add(`_:b0 <p> "\u00e9"@en .`)
	f.Add(`<s> <p> "x"^^<http://t> .`)
	f.Add(`# just a comment`)
	f.Add(`<s> <p> "dangling\`)
	f.Add(`<s> <p> "bad\escape" .`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			return // the decoders never see embedded newlines
		}
		st, okS, errS := ParseNTriplesLine(line, 1)

		g := NewGraph()
		dec := NewNTriplesDecoder(strings.NewReader(line + "\n"))
		it, errI := dec.NextID(g.Dict())
		okI := errI == nil
		if errI == io.EOF {
			errI = nil
		}

		if okS != okI {
			t.Fatalf("accept mismatch for %q: string ok=%v err=%v, interned ok=%v err=%v", line, okS, errS, okI, errI)
		}
		if (errS == nil) != (errI == nil) {
			t.Fatalf("error mismatch for %q: %v vs %v", line, errS, errI)
		}
		if okS {
			got := Triple{
				Subject:   g.Dict().String(it.S),
				Predicate: g.Dict().String(it.P),
				Object:    Term{Kind: it.OKind, Value: g.Dict().String(it.O)},
			}
			if got != st {
				t.Fatalf("triple mismatch for %q:\n  string: %+v\n  interned: %+v", line, st, got)
			}
		}
	})
}

// TestSubjSetSpill drives one predicate's subject set past the spill
// threshold with out-of-order inserts and removals, checking that
// membership, removal semantics and property-count bookkeeping agree
// with a model map throughout.
func TestSubjSetSpill(t *testing.T) {
	g := NewGraph()
	rng := rand.New(rand.NewSource(11))
	model := map[string]bool{}
	name := func(i int) string { return fmt.Sprintf("s%06d", i) }
	// Interleave: a monotone bulk load, then random churn (re-adds and
	// removals across the whole ID range) well past subjSpill.
	for i := 0; i < subjSpill+2000; i++ {
		g.AddURI(name(i), "p", "o")
		model[name(i)] = true
	}
	for i := 0; i < 6000; i++ {
		j := rng.Intn(subjSpill + 2000)
		if rng.Intn(2) == 0 {
			g.AddURI(name(j), "p", "o")
			model[name(j)] = true
		} else {
			g.Remove(Triple{Subject: name(j), Predicate: "p", Object: NewURI("o")})
			delete(model, name(j))
		}
	}
	for i := 0; i < subjSpill+2000; i++ {
		if g.HasProperty(name(i), "p") != model[name(i)] {
			t.Fatalf("membership mismatch for %s", name(i))
		}
	}
	want := 0
	for _, ok := range model {
		if ok {
			want++
		}
	}
	if g.SubjectCount() != want {
		t.Fatalf("SubjectCount = %d, want %d", g.SubjectCount(), want)
	}
	if want > 0 {
		if got := g.Properties(); len(got) != 1 || got[0] != "p" {
			t.Fatalf("Properties = %v", got)
		}
	}
}
