package rdf

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestParseTurtleBasic(t *testing.T) {
	src := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex:   <http://ex/> .
# a comment
ex:alice a foaf:Person ;
    foaf:name "Alice" ;
    ex:knows ex:bob, ex:carol .
ex:bob foaf:name "Bob"@en ;
    ex:age 42 ;
    ex:height 1.75 ;
    ex:active true .
`
	g, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	checks := []Triple{
		{Subject: "http://ex/alice", Predicate: TypeURI, Object: NewURI("http://xmlns.com/foaf/0.1/Person")},
		{Subject: "http://ex/alice", Predicate: "http://xmlns.com/foaf/0.1/name", Object: NewLiteral("Alice")},
		{Subject: "http://ex/alice", Predicate: "http://ex/knows", Object: NewURI("http://ex/bob")},
		{Subject: "http://ex/alice", Predicate: "http://ex/knows", Object: NewURI("http://ex/carol")},
		{Subject: "http://ex/bob", Predicate: "http://xmlns.com/foaf/0.1/name", Object: NewLiteral("Bob")},
		{Subject: "http://ex/bob", Predicate: "http://ex/age", Object: NewLiteral("42")},
		{Subject: "http://ex/bob", Predicate: "http://ex/height", Object: NewLiteral("1.75")},
		{Subject: "http://ex/bob", Predicate: "http://ex/active", Object: NewLiteral("true")},
	}
	for _, want := range checks {
		if !g.Contains(want) {
			t.Errorf("missing %v", want)
		}
	}
	if g.Len() != len(checks) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(checks))
	}
}

func TestParseTurtleBaseAndIRIs(t *testing.T) {
	src := `
@base <http://ex/data/> .
@prefix x: <http://ex/vocab#> .
<item1> x:label "one" .
<http://absolute/item2> x:label "two"^^<http://www.w3.org/2001/XMLSchema#string> .
`
	g, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(Triple{Subject: "http://ex/data/item1", Predicate: "http://ex/vocab#label", Object: NewLiteral("one")}) {
		t.Errorf("relative IRI not resolved: %v", g.Subjects())
	}
	if !g.Contains(Triple{Subject: "http://absolute/item2", Predicate: "http://ex/vocab#label", Object: NewLiteral("two")}) {
		t.Error("absolute IRI mangled")
	}
}

func TestParseTurtleLongLiteralsAndEscapes(t *testing.T) {
	src := "@prefix ex: <http://ex/> .\n" +
		"ex:s ex:p \"\"\"multi\nline\"\"\" ;\n" +
		" ex:q \"tab\\tquote\\\"\" ;\n" +
		" ex:r \"uni\\u00e9\" .\n"
	g, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(Triple{Subject: "http://ex/s", Predicate: "http://ex/p", Object: NewLiteral("multi\nline")}) {
		t.Error("long literal mishandled")
	}
	if !g.Contains(Triple{Subject: "http://ex/s", Predicate: "http://ex/q", Object: NewLiteral("tab\tquote\"")}) {
		t.Error("escapes mishandled")
	}
	if !g.Contains(Triple{Subject: "http://ex/s", Predicate: "http://ex/r", Object: NewLiteral("unié")}) {
		t.Error("unicode escape mishandled")
	}
}

func TestParseTurtleSparqlStyleDirectives(t *testing.T) {
	src := `
PREFIX ex: <http://ex/>
ex:s ex:p ex:o .
`
	g, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestParseTurtleErrors(t *testing.T) {
	cases := []string{
		`ex:s ex:p ex:o .`, // undeclared prefix
		"@prefix ex: <http://ex/> .\nex:s ex:p [ ex:q 1 ] .", // bnode property list
		"@prefix ex: <http://ex/> .\nex:s ex:p (1 2) .",      // collection
		"@prefix ex: <http://ex/> .\nex:s ex:p \"unterminated .",
		"@prefix ex: <http://ex/>\nex:s ex:p ex:o .", // @prefix without dot
		"@prefix ex: <http://ex/> .\nex:s ex:p ex:o", // missing final dot
	}
	for _, src := range cases {
		if _, err := ParseTurtle(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseTurtleMatchesNTriples(t *testing.T) {
	// The same dataset in both syntaxes must parse to the same graph.
	nt := `
<http://ex/s> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/T> .
<http://ex/s> <http://ex/name> "n" .
<http://ex/s> <http://ex/other> <http://ex/o> .
`
	ttl := `
@prefix ex: <http://ex/> .
ex:s a ex:T ; ex:name "n" ; ex:other ex:o .
`
	g1, err := ParseNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseTurtle(strings.NewReader(ttl))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Len() != g2.Len() {
		t.Fatalf("lengths differ: %d vs %d", g1.Len(), g2.Len())
	}
	for _, tr := range g1.Triples() {
		if !g2.Contains(tr) {
			t.Errorf("turtle graph missing %v", tr)
		}
	}
}

// oneByteReader yields one byte per Read, forcing the streaming parser
// through every fill/refill boundary.
type oneByteReader struct{ s string }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.s) == 0 {
		return 0, io.EOF
	}
	p[0] = r.s[0]
	r.s = r.s[1:]
	return 1, nil
}

func TestReadTurtleStreaming(t *testing.T) {
	src := `
@prefix ex: <http://ex/> .
ex:alice a ex:Person ;
    ex:name """multi
line""" ;
    ex:knows ex:bob, ex:carol .
ex:bob ex:age 42 .
`
	want, err := ParseTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var got []Triple
	if err := ReadTurtle(&oneByteReader{s: src}, func(tr Triple) error {
		got = append(got, tr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != want.Len() {
		t.Fatalf("streamed %d triples, want %d", len(got), want.Len())
	}
	for _, tr := range got {
		if !want.Contains(tr) {
			t.Fatalf("streamed unexpected triple %v", tr)
		}
	}
	// Emit errors abort the stream.
	stop := errors.New("stop")
	n := 0
	err = ReadTurtle(strings.NewReader(src), func(Triple) error {
		n++
		return stop
	})
	if err != stop || n != 1 {
		t.Fatalf("emit error not propagated: err=%v n=%d", err, n)
	}
}

func TestNTriplesDecoder(t *testing.T) {
	src := "# comment\n<http://ex/s> <http://ex/p> <http://ex/o> .\n\n<http://ex/s> <http://ex/q> \"v\" .\n"
	d := NewNTriplesDecoder(&oneByteReader{s: src})
	var got []Triple
	for {
		tr, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tr)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d triples, want 2", len(got))
	}
	if d.Line() != 4 {
		t.Fatalf("Line = %d, want 4", d.Line())
	}
	if got[0].Predicate != "http://ex/p" || got[1].Predicate != "http://ex/q" {
		t.Fatalf("wrong order: %v", got)
	}
}

// errAfterReader yields s, then a non-EOF error.
type errAfterReader struct {
	s   string
	err error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.s) == 0 {
		return 0, r.err
	}
	n := copy(p, r.s)
	r.s = r.s[n:]
	return n, nil
}

func TestReadTurtlePropagatesReadErrors(t *testing.T) {
	boom := errors.New("disk on fire")
	// Truncation lands between statements: without error propagation the
	// parse would silently succeed with one triple.
	src := "<http://ex/s> <http://ex/p> <http://ex/o> .\n"
	err := ReadTurtle(&errAfterReader{s: src, err: boom}, func(Triple) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("read error not propagated: %v", err)
	}
	if _, err := ParseTurtle(&errAfterReader{s: src, err: boom}); !errors.Is(err, boom) {
		t.Fatalf("ParseTurtle swallowed read error: %v", err)
	}
}

func TestTurtleUndeclaredDatatypePrefix(t *testing.T) {
	in := `<http://ex/s> <http://ex/p> "x"^^xsd:string .`
	if _, err := ParseTurtle(strings.NewReader(in)); err == nil {
		t.Fatal("interned path accepted undeclared datatype prefix")
	}
	err := ReadTurtle(strings.NewReader(in), func(Triple) error { return nil })
	if err == nil {
		t.Fatal("string path accepted undeclared datatype prefix")
	}
}
