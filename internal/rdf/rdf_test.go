package rdf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	if got := NewURI("http://a/b").String(); got != "<http://a/b>" {
		t.Fatalf("URI String = %q", got)
	}
	if got := NewLiteral(`he said "hi"` + "\n").String(); got != `"he said \"hi\"\n"` {
		t.Fatalf("Literal String = %q", got)
	}
}

func TestGraphAddDedup(t *testing.T) {
	g := NewGraph()
	if !g.AddURI("s1", "p1", "o1") {
		t.Fatal("first Add returned false")
	}
	if g.AddURI("s1", "p1", "o1") {
		t.Fatal("duplicate Add returned true")
	}
	// Same value, different kind, is a distinct triple.
	if !g.AddLiteral("s1", "p1", "o1") {
		t.Fatal("literal vs URI object treated as duplicate")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestGraphAccessors(t *testing.T) {
	g := NewGraph()
	g.AddURI("s1", "p1", "o1")
	g.AddURI("s1", "p2", "o2")
	g.AddURI("s2", "p1", "o3")
	if got := g.Subjects(); len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("Subjects = %v", got)
	}
	if got := g.Properties(); len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("Properties = %v", got)
	}
	if !g.HasProperty("s1", "p2") || g.HasProperty("s2", "p2") {
		t.Fatal("HasProperty wrong")
	}
	if got := g.SubjectTriples("s1"); len(got) != 2 {
		t.Fatalf("SubjectTriples = %v", got)
	}
	if g.SubjectCount() != 2 || g.PropertyCount() != 2 {
		t.Fatal("counts wrong")
	}
}

func TestSortsAndSortSubgraph(t *testing.T) {
	g := NewGraph()
	g.AddURI("alice", TypeURI, "Person")
	g.AddLiteral("alice", "name", "Alice")
	g.AddLiteral("alice", "birthDate", "1980")
	g.AddURI("acme", TypeURI, "Company")
	g.AddLiteral("acme", "name", "Acme")
	g.AddLiteral("untyped", "name", "Nobody")

	sorts := g.Sorts()
	if len(sorts) != 2 || sorts[0] != "Company" || sorts[1] != "Person" {
		t.Fatalf("Sorts = %v", sorts)
	}

	persons := g.SortSubgraph("Person")
	if persons.SubjectCount() != 1 {
		t.Fatalf("person subjects = %v", persons.Subjects())
	}
	if persons.Len() != 3 { // type + name + birthDate
		t.Fatalf("person triples = %d", persons.Len())
	}
	if persons.HasProperty("acme", "name") {
		t.Fatal("company leaked into person subgraph")
	}
}

func TestParseNTriplesBasic(t *testing.T) {
	src := `
# a comment
<http://ex/s1> <http://ex/p> <http://ex/o> .
<http://ex/s1> <http://ex/q> "a literal" .
<http://ex/s2> <http://ex/p> "lang"@en .
<http://ex/s2> <http://ex/q> "typed"^^<http://www.w3.org/2001/XMLSchema#string> .
_:b1 <http://ex/p> _:b2 .

<http://ex/s3> <http://ex/p> "esc \"q\" \\ \t \n é" . # trailing comment
`
	g, err := ParseNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6", g.Len())
	}
	if !g.Contains(Triple{Subject: "http://ex/s1", Predicate: "http://ex/q", Object: NewLiteral("a literal")}) {
		t.Fatal("missing literal triple")
	}
	if !g.Contains(Triple{Subject: "http://ex/s2", Predicate: "http://ex/p", Object: NewLiteral("lang")}) {
		t.Fatal("language-tagged literal not parsed")
	}
	if !g.Contains(Triple{Subject: "_:b1", Predicate: "http://ex/p", Object: NewURI("_:b2")}) {
		t.Fatal("blank nodes not parsed")
	}
	want := "esc \"q\" \\ \t \n é"
	if !g.Contains(Triple{Subject: "http://ex/s3", Predicate: "http://ex/p", Object: NewLiteral(want)}) {
		t.Fatalf("escapes mishandled; triples: %v", g.SubjectTriples("http://ex/s3"))
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	cases := []string{
		`<http://ex/s> <http://ex/p> <http://ex/o>`,        // missing dot
		`<http://ex/s> <http://ex/p> .`,                    // missing object
		`<http://ex/s> "notauri" <http://ex/o> .`,          // literal predicate
		`<http://ex/s> <http://ex/p> "unterminated .`,      // unterminated literal
		`<http://ex/s <http://ex/p> <http://ex/o> .`,       // space in URI
		`<http://ex/s> <http://ex/p> "bad \x escape" .`,    // unknown escape
		`<http://ex/s> <http://ex/p> <http://ex/o> . junk`, // trailing junk
		`<> <http://ex/p> <http://ex/o> .`,                 // empty URI
	}
	for _, src := range cases {
		if _, err := ParseNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("error for %q is %T, want *ParseError", src, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddURI("http://ex/s1", TypeURI, "http://ex/T")
	g.AddLiteral("http://ex/s1", "http://ex/name", "line1\nline2\t\"quoted\"")
	g.AddURI("http://ex/s2", "http://ex/knows", "http://ex/s1")

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip Len = %d, want %d", g2.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !g2.Contains(tr) {
			t.Fatalf("round trip lost %v", tr)
		}
	}
}

// Property: serializing any randomly generated graph and parsing it back
// yields the same triple set.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := rng.Intn(40)
		alphabet := []string{"a", "b/c", "d#e", "f?g=1"}
		lits := []string{"plain", "with \"quotes\"", "tabs\tand\nnewlines", "unicode é ☃", `back\slash`}
		for i := 0; i < n; i++ {
			s := "http://ex/s" + alphabet[rng.Intn(len(alphabet))]
			p := "http://ex/p" + alphabet[rng.Intn(len(alphabet))]
			if rng.Intn(2) == 0 {
				g.AddURI(s, p, "http://ex/o"+alphabet[rng.Intn(len(alphabet))])
			} else {
				g.AddLiteral(s, p, lits[rng.Intn(len(lits))])
			}
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		g2, err := ParseNTriples(&buf)
		if err != nil {
			return false
		}
		if g2.Len() != g.Len() {
			return false
		}
		for _, tr := range g.Triples() {
			if !g2.Contains(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph()
	g.AddURI("s1", "p1", "o1")
	g.AddURI("s1", "p1", "o2")
	g.AddURI("s1", "p2", "o1")
	g.AddURI("s2", "p1", "o1")

	if g.Remove(Triple{Subject: "sX", Predicate: "p1", Object: NewURI("o1")}) {
		t.Fatal("removed absent triple")
	}
	// Removing one of two p1 triples keeps the property on s1.
	if !g.Remove(Triple{Subject: "s1", Predicate: "p1", Object: NewURI("o1")}) {
		t.Fatal("Remove returned false for present triple")
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if !g.HasProperty("s1", "p1") {
		t.Fatal("s1 lost p1 while (s1,p1,o2) remains")
	}
	if g.Contains(Triple{Subject: "s1", Predicate: "p1", Object: NewURI("o1")}) {
		t.Fatal("removed triple still Contains")
	}
	// Removing the second drops the property for s1 but keeps it for s2.
	g.Remove(Triple{Subject: "s1", Predicate: "p1", Object: NewURI("o2")})
	if g.HasProperty("s1", "p1") {
		t.Fatal("s1 still has p1")
	}
	if !g.HasProperty("s2", "p1") {
		t.Fatal("s2 lost p1")
	}
	// Removing s1's last triple drops the subject entirely.
	g.Remove(Triple{Subject: "s1", Predicate: "p2", Object: NewURI("o1")})
	if g.HasSubject("s1") || g.SubjectCount() != 1 {
		t.Fatalf("s1 not dropped; subjects = %v", g.Subjects())
	}
	if got := g.Properties(); len(got) != 1 || got[0] != "p1" {
		t.Fatalf("Properties = %v, want [p1]", got)
	}
	// Removed triples can be re-added.
	if !g.AddURI("s1", "p2", "o1") {
		t.Fatal("re-Add after Remove failed")
	}
	if !g.HasSubject("s1") || !g.HasProperty("s1", "p2") {
		t.Fatal("re-added triple not indexed")
	}
}

// Property: a random interleaving of adds and removes leaves the graph
// identical (triple set, indexes, accessors) to one built from only the
// surviving triples.
func TestGraphRemoveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGraph()
	var alive []Triple
	mk := func() Triple {
		return Triple{
			Subject:   "s" + string(rune('a'+rng.Intn(8))),
			Predicate: "p" + string(rune('a'+rng.Intn(5))),
			Object:    NewURI("o" + string(rune('a'+rng.Intn(6)))),
		}
	}
	for i := 0; i < 3000; i++ {
		if len(alive) > 0 && rng.Intn(2) == 0 {
			j := rng.Intn(len(alive))
			if !g.Remove(alive[j]) {
				t.Fatalf("Remove of live triple %v failed", alive[j])
			}
			alive = append(alive[:j], alive[j+1:]...)
		} else {
			tr := mk()
			if g.Add(tr) {
				alive = append(alive, tr)
			}
		}
	}
	want := NewGraph()
	for _, tr := range alive {
		want.Add(tr)
	}
	if g.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", g.Len(), want.Len())
	}
	for _, tr := range want.Triples() {
		if !g.Contains(tr) {
			t.Fatalf("missing %v", tr)
		}
	}
	gs, ws := g.Subjects(), want.Subjects()
	if len(gs) != len(ws) {
		t.Fatalf("Subjects = %v, want %v", gs, ws)
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("Subjects = %v, want %v", gs, ws)
		}
	}
	gp, wp := g.Properties(), want.Properties()
	if len(gp) != len(wp) {
		t.Fatalf("Properties = %v, want %v", gp, wp)
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("Properties = %v, want %v", gp, wp)
		}
		for _, s := range ws {
			if g.HasProperty(s, gp[i]) != want.HasProperty(s, gp[i]) {
				t.Fatalf("HasProperty(%s, %s) diverges", s, gp[i])
			}
		}
	}
	for _, s := range ws {
		if g.SubjectDegree(s) != want.SubjectDegree(s) {
			t.Fatalf("SubjectDegree(%s) = %d, want %d", s, g.SubjectDegree(s), want.SubjectDegree(s))
		}
	}
}

func TestMerge(t *testing.T) {
	a := NewGraph()
	a.AddURI("s1", "p", "o")
	b := NewGraph()
	b.AddURI("s1", "p", "o")
	b.AddURI("s2", "p", "o")
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", a.Len())
	}
}

func BenchmarkParseNTriples(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("<http://ex/s")
		sb.WriteString(strings.Repeat("x", i%7))
		sb.WriteString("> <http://ex/p> \"literal value\" .\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNTriples(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphAdd(b *testing.B) {
	g := NewGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddLiteral("s"+string(rune('a'+i%26)), "p"+string(rune('a'+i%7)), "o")
	}
}
