package term

import (
	"fmt"
	"testing"
)

// TestStringsFrom: the delta view the dictionary WAL serializes —
// stable under the append-only contract, copied (immune to later
// interning), and empty past the end.
func TestStringsFrom(t *testing.T) {
	d := NewDict()
	for i := 0; i < 10; i++ {
		d.Intern(fmt.Sprintf("t%d", i))
	}
	got := d.StringsFrom(4)
	if len(got) != 6 {
		t.Fatalf("StringsFrom(4) returned %d terms, want 6", len(got))
	}
	for i, s := range got {
		if want := fmt.Sprintf("t%d", i+4); s != want {
			t.Fatalf("StringsFrom(4)[%d] = %q, want %q", i, s, want)
		}
	}
	if got := d.StringsFrom(10); got != nil {
		t.Fatalf("StringsFrom(len) = %v, want nil", got)
	}
	if got := d.StringsFrom(-3); len(got) != 10 {
		t.Fatalf("StringsFrom(-3) returned %d terms, want all 10", len(got))
	}
	// The returned slice is a copy: interning more terms afterwards
	// must not grow or change it.
	snap := d.StringsFrom(0)
	d.Intern("later")
	if len(snap) != 10 || snap[9] != "t9" {
		t.Fatalf("StringsFrom result mutated by later interning: %v", snap)
	}
}
