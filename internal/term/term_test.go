package term

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundtrip(t *testing.T) {
	d := NewDict()
	terms := []string{"a", "b", "", "http://example.org/x", "a b c", "a"}
	want := []ID{0, 1, 2, 3, 4, 0}
	for i, s := range terms {
		if id := d.Intern(s); id != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", s, id, want[i])
		}
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	for i, s := range terms {
		if got := d.String(want[i]); got != s {
			t.Fatalf("String(%d) = %q, want %q", want[i], got, s)
		}
	}
}

func TestInternBytesMatchesIntern(t *testing.T) {
	d := NewDict()
	buf := []byte("hello")
	id1 := d.InternBytes(buf)
	// Mutating the caller's buffer must not corrupt the dictionary.
	buf[0] = 'X'
	if got := d.String(id1); got != "hello" {
		t.Fatalf("dictionary aliased caller buffer: %q", got)
	}
	if id := d.Intern("hello"); id != id1 {
		t.Fatalf("Intern after InternBytes: %d != %d", id, id1)
	}
	if id := d.InternBytes([]byte("hello")); id != id1 {
		t.Fatalf("InternBytes duplicate: %d != %d", id, id1)
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup invented a term")
	}
	if d.Len() != 0 {
		t.Fatalf("Lookup interned: Len = %d", d.Len())
	}
	id := d.Intern("x")
	got, ok := d.Lookup("x")
	if !ok || got != id {
		t.Fatalf("Lookup(x) = %d,%v want %d,true", got, ok, id)
	}
}

// TestPublishBoundary interns enough terms to force snapshot publishes
// and checks every assignment survives the pending->snapshot moves.
func TestPublishBoundary(t *testing.T) {
	d := NewDict()
	const n = 10_000
	ids := make([]ID, n)
	for i := 0; i < n; i++ {
		ids[i] = d.Intern(fmt.Sprintf("term/%d", i))
	}
	for i := 0; i < n; i++ {
		if d.String(ids[i]) != fmt.Sprintf("term/%d", i) {
			t.Fatalf("String(%d) mismatch", ids[i])
		}
		if id := d.Intern(fmt.Sprintf("term/%d", i)); id != ids[i] {
			t.Fatalf("re-Intern term/%d: %d != %d", i, id, ids[i])
		}
	}
}

// TestConcurrentIntern hammers the dictionary from many goroutines with
// overlapping term sets; run under -race. Every goroutine must observe
// one consistent ID per term.
func TestConcurrentIntern(t *testing.T) {
	d := NewDict()
	const workers, terms = 8, 2000
	got := make([][]ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]ID, terms)
			for i := 0; i < terms; i++ {
				// Overlapping ranges: every term interned by ~2 workers.
				got[w][i] = d.Intern(fmt.Sprintf("t/%d", (i+w*terms/2)%terms))
				_ = d.String(got[w][i])
			}
		}(w)
	}
	wg.Wait()
	canon := map[string]ID{}
	for w := 0; w < workers; w++ {
		for i := 0; i < terms; i++ {
			s := fmt.Sprintf("t/%d", (i+w*terms/2)%terms)
			if prev, ok := canon[s]; ok {
				if prev != got[w][i] {
					t.Fatalf("term %q got two IDs: %d and %d", s, prev, got[w][i])
				}
			} else {
				canon[s] = got[w][i]
			}
		}
	}
	if d.Len() != terms {
		t.Fatalf("Len = %d, want %d", d.Len(), terms)
	}
}

func BenchmarkInternHit(b *testing.B) {
	d := NewDict()
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://example.org/resource/%d", i)
		d.Intern(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(keys[i%len(keys)])
	}
}

func BenchmarkInternBytesHit(b *testing.B) {
	d := NewDict()
	keys := make([][]byte, 512)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("http://example.org/resource/%d", i))
		d.InternBytes(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.InternBytes(keys[i%len(keys)])
	}
}
