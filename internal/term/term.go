// Package term implements the interned term dictionary behind the
// ID-based hot paths: a bijective, append-only mapping between term
// strings (URIs, blank-node labels, literal values) and dense uint32
// IDs. Interning each distinct string once lets the graph, view and
// incremental engines key every index and signature by integer —
// the same move sparse-matrix engines such as D4M use to get
// string-keyed data onto integer kernels — so the per-triple cost of
// ingestion and maintenance no longer includes string hashing or
// string allocation. Strings materialize again only at the edges
// (parsing in, HTTP/JSON out, partition export) via Dict.String.
//
// Concurrency: a Dict is safe for concurrent use. Lookups of
// already-interned terms are lock-free — they read an immutable
// snapshot published through an atomic pointer — while writers
// serialize on a mutex and batch recent insertions into the next
// snapshot. This is the profile the serving layer needs: steady-state
// traffic re-mentions known terms almost exclusively, so the hot read
// path never contends with ingestion.
package term

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ID is a dense dictionary index: the i-th distinct term interned into
// a Dict gets ID i. IDs are never reused and never exceed the number
// of Intern calls, so slices indexed by ID stay compact.
type ID uint32

// snapshot is an immutable published state: every term with ID <
// len(strings) is resolvable, and lookup covers exactly those terms.
type snapshot struct {
	lookup  map[string]ID
	strings []string
}

// Dict is an append-only interning dictionary. The zero value is not
// ready to use; call NewDict.
type Dict struct {
	snap atomic.Pointer[snapshot]

	mu sync.Mutex
	// pending maps terms interned since the last publish. all is the
	// authoritative ID -> string table; published snapshots alias its
	// backing array, which is safe because entries below a snapshot's
	// recorded length are never rewritten.
	pending map[string]ID
	all     []string
	// slowHits counts lock-path reads (pending hits, unpublished-ID
	// String calls) since the last publish; sustained slow traffic
	// triggers a publish even when pending hasn't grown enough for the
	// geometric trigger, so no term stays off the lock-free path
	// indefinitely.
	slowHits int
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{pending: make(map[string]ID)}
	d.snap.Store(&snapshot{lookup: make(map[string]ID)})
	return d
}

// Intern returns the ID of s, assigning the next dense ID on first
// sight. Safe for concurrent use; lock-free when s is already in the
// published snapshot.
func (d *Dict) Intern(s string) ID {
	if id, ok := d.snap.Load().lookup[s]; ok {
		return id
	}
	return d.internSlow(s, nil)
}

// InternBytes is Intern for a byte view of the term, e.g. a slice of a
// decoder's read buffer. On the duplicate path it performs no
// allocation: the map probe uses the compiler's string(b) lookup
// optimization, and the bytes are only copied into a string when the
// term is genuinely new. The caller may reuse b afterwards.
func (d *Dict) InternBytes(b []byte) ID {
	if id, ok := d.snap.Load().lookup[string(b)]; ok {
		return id
	}
	return d.internSlow("", b)
}

// internSlow interns under the writer lock. Exactly one of s / b holds
// the term: b non-nil means the string must be materialized on miss.
func (d *Dict) internSlow(s string, b []byte) ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Re-check under the lock: a racing writer may have interned the
	// term, or a publish may have moved it from pending into a snapshot
	// loaded after our fast-path read.
	cur := d.snap.Load()
	if b != nil {
		if id, ok := cur.lookup[string(b)]; ok {
			return id
		}
		if id, ok := d.pending[string(b)]; ok {
			d.noteSlowHit(cur)
			return id
		}
		s = string(b)
	} else {
		if id, ok := cur.lookup[s]; ok {
			return id
		}
		if id, ok := d.pending[s]; ok {
			d.noteSlowHit(cur)
			return id
		}
	}
	id := ID(len(d.all))
	d.all = append(d.all, s)
	d.pending[s] = id
	// Publish geometrically: the merge copies the whole lookup map, so
	// deferring it until pending has grown as large as the snapshot
	// bounds total copy work at ~2 map inserts per distinct term.
	if len(d.pending) >= 64 && len(d.pending) >= len(cur.lookup) {
		d.publishLocked(cur)
	}
	return id
}

// noteSlowHit records one lock-path read and publishes once the hits
// since the last publish have paid for a fraction of the merge cost —
// so the copy stays amortized O(1) while sustained slow-path traffic
// always converges onto the lock-free snapshot. Caller holds mu.
func (d *Dict) noteSlowHit(cur *snapshot) {
	d.slowHits++
	if len(d.pending) > 0 && d.slowHits*4 >= len(cur.lookup)+len(d.pending) {
		d.publishLocked(cur)
	}
}

// publishLocked merges pending into a new snapshot. Caller holds mu.
func (d *Dict) publishLocked(cur *snapshot) {
	merged := make(map[string]ID, len(cur.lookup)+len(d.pending))
	for k, v := range cur.lookup {
		merged[k] = v
	}
	for k, v := range d.pending {
		merged[k] = v
	}
	d.snap.Store(&snapshot{lookup: merged, strings: d.all})
	d.pending = make(map[string]ID)
	d.slowHits = 0
}

// Lookup returns the ID of s without interning it. Safe for concurrent
// use; lock-free when s is covered by the published snapshot.
func (d *Dict) Lookup(s string) (ID, bool) {
	if id, ok := d.snap.Load().lookup[s]; ok {
		return id, true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.snap.Load()
	if id, ok := cur.lookup[s]; ok {
		return id, true
	}
	id, ok := d.pending[s]
	if ok {
		d.noteSlowHit(cur)
	}
	return id, ok
}

// String returns the term with the given ID. Lock-free for IDs covered
// by the published snapshot (the overwhelmingly common case at the
// output edges); panics on an ID never returned by Intern.
func (d *Dict) String(id ID) string {
	snap := d.snap.Load()
	if int(id) < len(snap.strings) {
		return snap.strings[id]
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.all) {
		panic(fmt.Sprintf("term: ID %d out of range [0,%d)", id, len(d.all)))
	}
	d.noteSlowHit(d.snap.Load())
	return d.all[id]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.all)
}

// StringsFrom returns a copy of the terms with IDs in [from, Len()), in
// ID order. The durability layer uses it to append newly interned terms
// to the dictionary log: because the dictionary is append-only, the
// slice is a stable delta — calling again with from advanced by the
// previous length never misses or repeats a term. from past the current
// length returns nil; a negative from is treated as 0.
func (d *Dict) StringsFrom(from int) []string {
	if from < 0 {
		from = 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if from >= len(d.all) {
		return nil
	}
	return append([]string(nil), d.all[from:]...)
}
