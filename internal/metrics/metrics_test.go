package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestHistogramMergeExact pins the additive-merge discipline: shard
// observation streams across N histograms, merge them, and the result
// must be bit-identical to one histogram fed every observation —
// bucket counts, total count, and (for exactly-representable
// observations) the float sum.
func TestHistogramMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := DefLatencyBuckets
	whole := NewHistogram(bounds)
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram(bounds)
	}
	for n := 0; n < 20000; n++ {
		// Dyadic rationals in [0, 16): every partial sum is exactly
		// representable, so float addition is associative here and the
		// sum comparison below can demand bit equality.
		v := float64(rng.Intn(1<<14)) / 1024
		whole.Observe(v)
		shards[rng.Intn(len(shards))].Observe(v)
	}
	merged := NewHistogram(bounds)
	for _, s := range shards {
		merged.Merge(s)
	}
	wc, mc := whole.BucketCounts(), merged.BucketCounts()
	for i := range wc {
		if wc[i] != mc[i] {
			t.Fatalf("bucket %d: merged %d, whole %d", i, mc[i], wc[i])
		}
	}
	if whole.Count() != merged.Count() {
		t.Fatalf("count: merged %d, whole %d", merged.Count(), whole.Count())
	}
	if whole.Sum() != merged.Sum() {
		t.Fatalf("sum: merged %v, whole %v", merged.Sum(), whole.Sum())
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different bucket layouts must panic")
		}
	}()
	NewHistogram([]float64{1, 2}).Merge(NewHistogram([]float64{1, 3}))
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 1} // le=1 gets 0.5 and 1 (le semantics), +Inf gets 100
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts: got %v, want %v", got, want)
		}
	}
	if h.Count() != 5 || h.Sum() != 106 {
		t.Fatalf("count=%d sum=%v, want 5/106", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); !(q >= 1 && q <= 2) {
		t.Fatalf("median %v outside covering bucket (1,2]", q)
	}
	// The +Inf bucket clamps to the last finite bound.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("q=1: got %v, want 4", q)
	}
}

// TestConcurrentIncrementAndScrape hammers every collector type from
// writer goroutines while scrapes run — the -race pin for the
// lock-free mutation paths.
func TestConcurrentIncrementAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_depth", "depth")
	h := reg.Histogram("test_latency_seconds", "latency", DefLatencyBuckets)
	cv := reg.CounterVec("test_labeled_total", "labeled", "shard")
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With("0")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%100) / 1000)
				child.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			var sb strings.Builder
			if err := reg.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if c.Value() != writers*perWriter || h.Count() != writers*perWriter {
				t.Fatalf("lost updates: counter=%d histogram=%d", c.Value(), h.Count())
			}
			if !strings.Contains(out, "test_ops_total 40000") {
				t.Fatalf("scrape missing final counter value:\n%s", out)
			}
			return
		default:
		}
	}
}

func TestTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a help").Add(3)
	reg.Gauge("b", "b help").Set(-2)
	reg.GaugeFunc("c", "c help", func() float64 { return 1.5 })
	var ext Counter
	ext.Add(7)
	reg.AttachCounter("d_total", "d help", &ext)
	reg.CounterVec("e_total", "e help", "shard", "op").With("0", `x"y`).Add(4)
	h := reg.Histogram("f_seconds", "f help", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total a help\n# TYPE a_total counter\na_total 3\n",
		"# TYPE b gauge\nb -2\n",
		"c 1.5\n",
		"d_total 7\n",
		`e_total{shard="0",op="x\"y"} 4` + "\n",
		`f_seconds_bucket{le="0.1"} 1` + "\n",
		`f_seconds_bucket{le="1"} 2` + "\n",
		`f_seconds_bucket{le="+Inf"} 2` + "\n",
		"f_seconds_sum 0.55\n",
		"f_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "# HELP a_total") > strings.Index(out, "# HELP b ") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	reg.Gauge("x_total", "x again")
}

func TestHistogramVecSharedLayout(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("v_seconds", "v", []float64{1, 2}, "shard")
	hv.With("0").Observe(0.5)
	hv.With("1").Observe(1.5)
	merged := NewHistogram([]float64{1, 2})
	merged.Merge(hv.With("0"))
	merged.Merge(hv.With("1"))
	if merged.Count() != 2 || merged.BucketCounts()[0] != 1 || merged.BucketCounts()[1] != 1 {
		t.Fatalf("vec children did not merge: %v", merged.BucketCounts())
	}
}
