// Package metrics is a dependency-free instrumentation layer for the
// serving stack: atomic counters and gauges, fixed-bucket latency
// histograms, and a registry that renders everything in the Prometheus
// text exposition format (served by rdfserved at GET /metrics).
//
// Histograms follow the same additive-merge discipline as the engine's
// σ aggregates (rules.CountTracker.Merge): bucket counts and the
// observation count are int64 sums, so merging per-shard histograms is
// exact — a merged histogram is bit-identical to one histogram fed the
// union observation stream, the invariant the multi-node roadmap
// (per-node aggregate merging) depends on.
//
// All mutation paths are lock-free single atomic operations, so
// instrumenting a hot path costs nanoseconds; scrapes read the same
// atomics without stopping writers.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use, so packages can hold one as a plain global and
// attach it to a registry later (Registry.AttachCounter).
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus counter contract; this
// is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) writeSeries(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
	return err
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) writeSeries(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
	return err
}

// gaugeFunc is a gauge computed at scrape time (staleness, queue
// depths — anything already maintained elsewhere).
type gaugeFunc struct{ fn func() float64 }

func (g gaugeFunc) writeSeries(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.fn()))
	return err
}

// counterFunc is a counter read from an external source at scrape time.
type counterFunc struct{ fn func() int64 }

func (c counterFunc) writeSeries(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.fn())
	return err
}

// Histogram is a fixed-bucket histogram: observation counts per bucket
// plus the running sum and total count. Buckets are defined by their
// ascending upper bounds; an implicit +Inf bucket catches the rest.
// Observe is two atomic adds and one CAS loop — safe and cheap under
// full concurrency.
type Histogram struct {
	bounds  []float64      // ascending upper bounds (exclusive of +Inf)
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. Panics on empty or non-ascending bounds — bucket
// layouts are compile-time decisions, not runtime inputs.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le-bucket semantics
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Merge adds other's buckets, count and sum into h — the additive
// union of two disjoint observation streams, exact on the integer
// bucket counts for the same reason CountTracker.Merge is exact on
// N_p. Panics when the bucket layouts differ: merging histograms with
// different bounds has no exact answer.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.bounds) != len(other.bounds) {
		panic("metrics: merging histograms with different bucket layouts")
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			panic("metrics: merging histograms with different bucket layouts")
		}
	}
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (read-only).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a copy of the per-bucket counts (last entry is
// the +Inf bucket). A concurrent scrape may see a count incremented
// before its sum — each field is individually, not jointly, atomic.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by
// linear interpolation inside the covering bucket — the usual
// Prometheus histogram_quantile shape, handy for in-process assertions
// and harness summaries.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp to the last finite bound
			}
			if c == 0 {
				return h.bounds[i]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) writeSeries(w io.Writer, name, labels string) error {
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, formatFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// withLE splices the le bucket label into a rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DefLatencyBuckets spans 100µs to 10s — the request- and
// fsync-latency range the serving stack lives in.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets is a decade ladder for batch-size style histograms.
var DefSizeBuckets = []float64{1, 10, 100, 1000, 10000, 100000}

// collector is anything that can render its sample lines for one
// series (one label set) of a family.
type collector interface {
	writeSeries(w io.Writer, name, labels string) error
}

// series is one labeled instance inside a family.
type series struct {
	labels string // rendered `{k="v",...}`, or "" for the unlabeled series
	col    collector
}

// family is one metric name: its metadata and every labeled series.
type family struct {
	name, help, typ string
	labelNames      []string

	mu    sync.Mutex
	order []*series
	byKey map[string]*series
}

// getOrCreate returns the series for the given label values, creating
// it with make on first sight. Caller guarantees len(values) matches
// the family's label arity (checked by the vec wrappers).
func (f *family) getOrCreate(values []string, make func() collector) collector {
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s.col
	}
	s := &series{labels: renderLabels(f.labelNames, values), col: make()}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return s.col
}

func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry holds a set of metric families and renders them as
// Prometheus text. Registration methods panic on a name registered
// twice — two subsystems claiming one series is a wiring bug, caught
// at startup, not a runtime condition.
type Registry struct {
	mu    sync.Mutex
	byNam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNam: make(map[string]*family)}
}

func (r *Registry) newFamily(name, help, typ string, labelNames []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byNam[name]; ok {
		panic("metrics: duplicate registration of " + name)
	}
	f := &family{name: name, help: help, typ: typ, labelNames: labelNames, byKey: make(map[string]*series)}
	r.byNam[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.AttachCounter(name, help, c)
	return c
}

// AttachCounter registers an existing counter — the path for package
// globals that count regardless of any registry (e.g. the rules
// signature-scan counter) to appear in /metrics.
func (r *Registry) AttachCounter(name, help string, c *Counter) {
	f := r.newFamily(name, help, "counter", nil)
	f.getOrCreate(nil, func() collector { return c })
}

// CounterFunc registers a counter whose value is read at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.newFamily(name, help, "counter", nil)
	f.getOrCreate(nil, func() collector { return counterFunc{fn} })
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.newFamily(name, help, "gauge", nil)
	g := &Gauge{}
	f.getOrCreate(nil, func() collector { return g })
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, "gauge", nil)
	f.getOrCreate(nil, func() collector { return gaugeFunc{fn} })
}

// Histogram registers and returns an unlabeled histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.newFamily(name, help, "histogram", nil)
	h := NewHistogram(bounds)
	f.getOrCreate(nil, func() collector { return h })
	return h
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.newFamily(name, help, "counter", labelNames)}
}

// With returns the counter for the given label values, creating it on
// first use. Callers on hot paths cache the returned child.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.f.labelNames) {
		panic("metrics: label arity mismatch for " + v.f.name)
	}
	return v.f.getOrCreate(values, func() collector { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.newFamily(name, help, "gauge", labelNames)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.f.labelNames) {
		panic("metrics: label arity mismatch for " + v.f.name)
	}
	return v.f.getOrCreate(values, func() collector { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms keyed by label values,
// sharing one bucket layout (so per-label histograms merge exactly).
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	// Validate the layout once at registration, not per child.
	NewHistogram(bounds)
	return &HistogramVec{r.newFamily(name, help, "histogram", labelNames), bounds}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.f.labelNames) {
		panic("metrics: label arity mismatch for " + v.f.name)
	}
	return v.f.getOrCreate(values, func() collector { return NewHistogram(v.bounds) }).(*Histogram)
}

// WriteText renders every family in the Prometheus text exposition
// format, families sorted by name, series in creation order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.byNam))
	for _, f := range r.byNam {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.Lock()
		srs := append([]*series(nil), f.order...)
		f.mu.Unlock()
		for _, s := range srs {
			if err := s.col.writeSeries(w, f.name, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry — the
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
