package rules

import (
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// RoughCell assigns a rule variable to a (signature, property) pair —
// the paper's "rough variable assignment" (Section 6), which fixes
// every variable's signature set and property column but not the
// concrete subject within the signature set.
type RoughCell struct {
	Sig  int // index into view.Signatures()
	Prop int // index into view.Properties()
}

// RoughAssignment holds one RoughCell per rule variable, in the order
// of Rule.Vars().
type RoughAssignment []RoughCell

// Counter computes count(ϕ1, τ, M) and count(ϕ1∧ϕ2, τ, M): the number
// of concrete variable assignments compatible with a rough assignment
// τ that satisfy the rule's antecedent (total cases) and the
// antecedent together with the consequent (favorable cases).
//
// The algorithm enumerates all set partitions of the rule variables
// into subject-coreference classes. Under a fixed τ and partition every
// atom of the language has a determined truth value, and the number of
// concrete assignments realizing the partition is a product of falling
// factorials: a signature set with n subjects hosting m distinct
// classes contributes n·(n−1)···(n−m+1).
type Counter struct {
	rule  *Rule
	view  *matrix.View
	vars  []string
	vpos  map[string]int
	parts [][]int // all partitions as class-id vectors (restricted growth strings)
}

// NewCounter validates the rule (no subj(c)=constant atoms, which are
// incompatible with signature-level counting and excluded by the
// paper's reduction) and precomputes partition structures.
func NewCounter(r *Rule, v *matrix.View) (*Counter, error) {
	if hasSubjConst(r.Antecedent) || hasSubjConst(r.Consequent) {
		return nil, fmt.Errorf("rules: subj(·)=constant not supported in rough counting")
	}
	vars := r.Vars()
	if len(vars) > 8 {
		return nil, fmt.Errorf("rules: rough counting limited to 8 variables, rule has %d", len(vars))
	}
	vpos := make(map[string]int, len(vars))
	for i, s := range vars {
		vpos[s] = i
	}
	return &Counter{
		rule:  r,
		view:  v,
		vars:  vars,
		vpos:  vpos,
		parts: enumeratePartitions(len(vars)),
	}, nil
}

// Vars returns the rule variables in τ order.
func (c *Counter) Vars() []string { return c.vars }

// enumeratePartitions returns every set partition of {0..n−1} encoded
// as restricted growth strings: p[i] is the class of element i, with
// p[0]=0 and p[i] ≤ max(p[0..i−1])+1.
func enumeratePartitions(n int) [][]int {
	var out [][]int
	p := make([]int, n)
	var rec func(i, maxSeen int)
	rec = func(i, maxSeen int) {
		if i == n {
			cp := make([]int, n)
			copy(cp, p)
			out = append(out, cp)
			return
		}
		for cls := 0; cls <= maxSeen+1; cls++ {
			p[i] = cls
			nm := maxSeen
			if cls > nm {
				nm = cls
			}
			rec(i+1, nm)
		}
	}
	if n == 0 {
		return [][]int{{}}
	}
	rec(0, -1)
	return out
}

// Count returns (total, favorable) counts for the rough assignment τ.
func (c *Counter) Count(tau RoughAssignment) (tot, fav *big.Int) {
	tot, fav = new(big.Int), new(big.Int)
	if len(tau) != len(c.vars) {
		panic("rules: rough assignment length mismatch")
	}
	sigs := c.view.Signatures()
	w := new(big.Int)
	for _, part := range c.parts {
		// Each class must have a consistent signature; classes sharing a
		// signature set consume distinct subjects from it.
		nClasses := 0
		for _, cls := range part {
			if cls+1 > nClasses {
				nClasses = cls + 1
			}
		}
		classSig := make([]int, nClasses)
		for i := range classSig {
			classSig[i] = -1
		}
		ok := true
		for vi, cls := range part {
			s := tau[vi].Sig
			if classSig[cls] == -1 {
				classSig[cls] = s
			} else if classSig[cls] != s {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Weight: per signature, falling factorial of its class count.
		perSig := map[int]int{}
		for _, s := range classSig {
			perSig[s]++
		}
		w.SetInt64(1)
		zero := false
		for s, m := range perSig {
			n := int64(sigs[s].Count)
			for j := int64(0); j < int64(m); j++ {
				if n-j <= 0 {
					zero = true
					break
				}
				w.Mul(w, big.NewInt(n-j))
			}
			if zero {
				break
			}
		}
		if zero || w.Sign() == 0 {
			continue
		}
		if !c.holds(c.rule.Antecedent, tau, part) {
			continue
		}
		tot.Add(tot, w)
		if c.holds(c.rule.Consequent, tau, part) {
			fav.Add(fav, w)
		}
	}
	return tot, fav
}

// holds evaluates a formula under a rough assignment and a coreference
// partition; every atom is decidable.
func (c *Counter) holds(f Formula, tau RoughAssignment, part []int) bool {
	switch g := f.(type) {
	case ValEqConst:
		cl := tau[c.vpos[g.C]]
		return c.view.Signatures()[cl.Sig].Bits.Test(cl.Prop) == (g.I == 1)
	case ValEqVar:
		c1, c2 := tau[c.vpos[g.C1]], tau[c.vpos[g.C2]]
		b1 := c.view.Signatures()[c1.Sig].Bits.Test(c1.Prop)
		b2 := c.view.Signatures()[c2.Sig].Bits.Test(c2.Prop)
		return b1 == b2
	case PropEqConst:
		cl := tau[c.vpos[g.C]]
		return c.view.Properties()[cl.Prop] == g.U
	case PropEqVar:
		return tau[c.vpos[g.C1]].Prop == tau[c.vpos[g.C2]].Prop
	case SubjEqVar:
		return part[c.vpos[g.C1]] == part[c.vpos[g.C2]]
	case CellEq:
		i, j := c.vpos[g.C1], c.vpos[g.C2]
		return part[i] == part[j] && tau[i].Prop == tau[j].Prop
	case Not:
		return !c.holds(g.F, tau, part)
	case And:
		return c.holds(g.L, tau, part) && c.holds(g.R, tau, part)
	case Or:
		return c.holds(g.L, tau, part) || c.holds(g.R, tau, part)
	}
	panic(fmt.Sprintf("rules: unknown formula %T", f))
}

// varDomain describes the τ cells a variable can take without making
// the antecedent trivially false, derived from top-level conjuncts.
type varDomain struct {
	prop int // fixed property column, or −1
	val  int // required bit value (0/1), or −1
}

// domains extracts per-variable restrictions from the top-level
// conjunction of the antecedent: prop(c)=constant pins the column and
// val(c)=i pins the cell value. This prunes the τ enumeration (e.g.
// σDep rules touch only two columns).
func (c *Counter) domains() []varDomain {
	doms := make([]varDomain, len(c.vars))
	for i := range doms {
		doms[i] = varDomain{prop: -1, val: -1}
	}
	var walk func(f Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case And:
			walk(g.L)
			walk(g.R)
		case PropEqConst:
			if idx, ok := c.view.PropertyIndex(g.U); ok {
				doms[c.vpos[g.C]].prop = idx
			} else {
				doms[c.vpos[g.C]].prop = -2 // property absent: antecedent unsatisfiable
			}
		case ValEqConst:
			doms[c.vpos[g.C]].val = g.I
		}
	}
	walk(c.rule.Antecedent)
	return doms
}

// Enumerate calls fn for every rough assignment over the view's
// signatures and used property columns that passes the domain pruning.
// fn receives a τ that must not be retained across calls.
func (c *Counter) Enumerate(fn func(tau RoughAssignment)) { c.enumerateRestricted(-1, fn) }

// enumerateRestricted is Enumerate with the first variable's signature
// optionally pinned to firstSig (−1 = unrestricted) — the partition
// unit of the signature-parallel evaluator. All local state (τ, domain
// tables) is per-call, so concurrent restricted enumerations over one
// Counter are safe.
func (c *Counter) enumerateRestricted(firstSig int, fn func(tau RoughAssignment)) {
	cols := usedColumns(c.view)
	doms := c.domains()
	for _, d := range doms {
		if d.prop == -2 {
			return // an antecedent conjunct names a property absent from the view
		}
	}
	sigs := c.view.Signatures()
	tau := make(RoughAssignment, len(c.vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(c.vars) {
			fn(tau)
			return
		}
		d := doms[i]
		for si := range sigs {
			if i == 0 && firstSig >= 0 && si != firstSig {
				continue
			}
			var candidates []int
			if d.prop >= 0 {
				candidates = []int{d.prop}
			} else {
				candidates = cols
			}
			for _, p := range candidates {
				if d.prop >= 0 {
					// A pinned column must still be a used column of this view.
					used := false
					for _, uc := range cols {
						if uc == p {
							used = true
							break
						}
					}
					if !used {
						continue
					}
				}
				if d.val >= 0 && sigs[si].Bits.Test(p) != (d.val == 1) {
					continue
				}
				tau[i] = RoughCell{Sig: si, Prop: p}
				rec(i + 1)
			}
		}
	}
	rec(0)
}

// Evaluate computes σr over the view exactly via rough assignments:
// total(ϕ) = Σ_τ count(ϕ, τ, M). It is polynomial for a fixed rule
// ((|Λ|·|P|)^n rough assignments) instead of (|S|·|P|)^n for the naive
// evaluator — the compression that makes paper-scale datasets feasible.
func Evaluate(r *Rule, v *matrix.View) (Ratio, error) {
	c, err := NewCounter(r, v)
	if err != nil {
		return Ratio{}, err
	}
	tot, fav := new(big.Int), new(big.Int)
	c.Enumerate(func(tau RoughAssignment) {
		t, f := c.Count(tau)
		tot.Add(tot, t)
		fav.Add(fav, f)
	})
	return Ratio{Fav: fav, Tot: tot}, nil
}

// EvaluateParallel computes σr exactly like Evaluate, splitting the
// rough-assignment enumeration across workers by the first variable's
// signature index — the signature-parallel fallback for rules the
// compiler cannot lower. Each worker sums its chunks into local
// big.Int accumulators and the chunks are merged afterwards; exact
// integer addition is associative and commutative, so the result is
// bit-identical to Evaluate for every worker count.
func EvaluateParallel(r *Rule, v *matrix.View, workers int) (Ratio, error) {
	c, err := NewCounter(r, v)
	if err != nil {
		return Ratio{}, err
	}
	nSigs := v.NumSignatures()
	if workers > nSigs {
		workers = nSigs
	}
	if workers <= 1 {
		return Evaluate(r, v)
	}
	type chunk struct{ tot, fav *big.Int }
	res := make([]chunk, nSigs)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(atomic.AddInt64(&next, 1))
				if si >= nSigs {
					return
				}
				tot, fav := new(big.Int), new(big.Int)
				c.enumerateRestricted(si, func(tau RoughAssignment) {
					t, f := c.Count(tau)
					tot.Add(tot, t)
					fav.Add(fav, f)
				})
				res[si] = chunk{tot: tot, fav: fav}
			}
		}()
	}
	wg.Wait()
	tot, fav := new(big.Int), new(big.Int)
	for _, ch := range res {
		tot.Add(tot, ch.tot)
		fav.Add(fav, ch.fav)
	}
	return Ratio{Fav: fav, Tot: tot}, nil
}
