package rules

import (
	"math/big"
	"math/rand"
	"repro/internal/bitset"
	"testing"
	"testing/quick"
)

func TestEnumeratePartitions(t *testing.T) {
	// Bell numbers: 1, 1, 2, 5, 15, 52.
	want := []int{1, 1, 2, 5, 15, 52}
	for n, w := range want {
		if got := len(enumeratePartitions(n)); got != w {
			t.Errorf("partitions(%d) = %d, want %d", n, got, w)
		}
	}
	// Every partition is a valid restricted growth string.
	for _, p := range enumeratePartitions(4) {
		maxSeen := -1
		for _, cls := range p {
			if cls > maxSeen+1 {
				t.Fatalf("invalid RGS %v", p)
			}
			if cls > maxSeen {
				maxSeen = cls
			}
		}
	}
}

func TestCounterCovByHand(t *testing.T) {
	// Two signatures: {p,q} ×3 and {p} ×2. Cov rule has one variable.
	v := mkView(t, []string{"p", "q"}, []string{"11", "10"}, []int{3, 2})
	c, err := NewCounter(CovRule(), v)
	if err != nil {
		t.Fatal(err)
	}
	// τ = (signature 0, column p): every subject of the signature is a
	// total case, and the cell value is 1 ⇒ all favorable.
	sig11 := v.SignatureOf(patternBits(2, "11"))
	sig10 := v.SignatureOf(patternBits(2, "10"))
	pCol, _ := v.PropertyIndex("p")
	qCol, _ := v.PropertyIndex("q")

	tot, fav := c.Count(RoughAssignment{{Sig: sig11, Prop: pCol}})
	if tot.Int64() != 3 || fav.Int64() != 3 {
		t.Fatalf("τ(11,p): tot=%v fav=%v, want 3/3", tot, fav)
	}
	// τ = (signature {p}, column q): 2 total cases (cells exist), value
	// 0 ⇒ no favorable.
	tot, fav = c.Count(RoughAssignment{{Sig: sig10, Prop: qCol}})
	if tot.Int64() != 2 || fav.Int64() != 0 {
		t.Fatalf("τ(10,q): tot=%v fav=%v, want 2/0", tot, fav)
	}
}

func TestCounterSimFallingFactorial(t *testing.T) {
	// One signature {p} with 4 subjects. Sim's two variables on the
	// same signature and column must consume distinct subjects:
	// 4·3 = 12 ordered pairs, all favorable.
	v := mkView(t, []string{"p"}, []string{"1"}, []int{4})
	c, err := NewCounter(SimRule(), v)
	if err != nil {
		t.Fatal(err)
	}
	tot, fav := c.Count(RoughAssignment{{Sig: 0, Prop: 0}, {Sig: 0, Prop: 0}})
	if tot.Int64() != 12 || fav.Int64() != 12 {
		t.Fatalf("tot=%v fav=%v, want 12/12", tot, fav)
	}
}

func TestCounterEnumerateRespectsDomains(t *testing.T) {
	v := mkView(t, []string{"p", "q"}, []string{"11", "10"}, []int{3, 2})
	// Dep rule pins both columns; enumeration must only emit τ with
	// those columns.
	c, err := NewCounter(DepRule("p", "q"), v)
	if err != nil {
		t.Fatal(err)
	}
	pCol, _ := v.PropertyIndex("p")
	qCol, _ := v.PropertyIndex("q")
	count := 0
	c.Enumerate(func(tau RoughAssignment) {
		count++
		if tau[0].Prop != pCol || tau[1].Prop != qCol {
			t.Fatalf("τ with wrong columns: %v", tau)
		}
	})
	// val(c1)=1 prunes signatures without p — both have p, so
	// 2 (sigs for c1) × 2 (sigs for c2) = 4.
	if count != 4 {
		t.Fatalf("enumerated %d τ, want 4", count)
	}
}

// Property: Σ_τ Count(τ) equals the totals from Evaluate for arbitrary
// small views — internal consistency of Enumerate + Count.
func TestQuickEnumerateCountConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomView(t, rng, 3, 4, 4)
		r := SimRule()
		c, err := NewCounter(r, v)
		if err != nil {
			return false
		}
		tot, fav := new(big.Int), new(big.Int)
		c.Enumerate(func(tau RoughAssignment) {
			tt, ff := c.Count(tau)
			tot.Add(tot, tt)
			fav.Add(fav, ff)
		})
		ev, err := Evaluate(r, v)
		if err != nil {
			return false
		}
		return tot.Cmp(ev.Tot) == 0 && fav.Cmp(ev.Fav) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The disjunctive dependency variant (Section 3.2's last example) has
// no closed form here; verify it against the naive evaluator and its
// intended meaning: P(subject has p2 or lacks p1).
func TestDepDisjRule(t *testing.T) {
	// Includes an all-zero signature (a subject with no properties),
	// which is a legal zero row of the view.
	v := mkView(t, []string{"p1", "p2"},
		[]string{"11", "10", "01", "00"}, []int{3, 2, 4, 1})
	r := DepDisjRule("p1", "p2")
	got, err := Evaluate(r, v)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EvalNaive(r, v)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value() != naive.Value() {
		t.Fatalf("generic %v != naive %v", got.Value(), naive.Value())
	}
	// Semantics: favorable subjects = has p2 (7) + lacks p1 entirely
	// (5, of which 4 have p2 — avoid double counting: subjects with
	// val(c1)=0 or val(c2)=1: "11"→1, "10"→0, "01"→1, "00"→1 ⇒ 3+0+4+1=8
	// of 10 total subjects.
	want := 8.0 / 10.0
	if got.Value() != want {
		t.Fatalf("σDepDisj = %v, want %v", got.Value(), want)
	}
}

func patternBits(n int, pattern string) bitset.Set {
	b := bitset.New(n)
	for i := range pattern {
		if pattern[i] == '1' {
			b.Set(i)
		}
	}
	return b
}
