package rules

import (
	"math/big"

	"repro/internal/matrix"
)

// This file is the structural rule compiler: it lowers any rule of at
// most two variables (without subject constants) onto the aggregate
// kernels of pair.go. The observation is the two-variable analogue of
// the closed forms: under a rough view of the matrix, a concrete
// assignment of (c1, c2) is characterized by the chosen columns
// (p1, p2), the two cell values (a, b) and whether the subjects
// coincide — and the number of assignments in each such bucket is
// determined by N_p, the co-occurrence counts C[p1][p2] and |S|:
//
//	n_ab(p1,p2)   = subjects with M[s,p1]=a ∧ M[s,p2]=b   (same subject)
//	cnt1(a)·cnt2(b) − n_ab                                 (distinct subjects)
//
// Every atom of the language has a fixed truth value inside a bucket,
// so σr is a sum of bucket weights over O(|P|²·8) buckets — O(1) when
// the antecedent pins both properties — instead of the rough
// evaluator's (|Λ|·|P|)^n enumeration. Compiled evaluators agree with
// Evaluate exactly (same Ratio), which randomized tests pin.

// cDomain is a per-variable restriction extracted from top-level
// antecedent conjuncts: a pinned property URI and/or a pinned cell
// value. Domains only prune the bucket loops — the full formula is
// still evaluated per bucket, so an over-constrained antecedent (e.g.
// two different pinned properties for one variable) stays correct: the
// skipped buckets would contribute zero weight anyway.
type cDomain struct {
	prop    string // pinned property URI
	hasProp bool
	val     int // pinned cell value, or −1
}

// extractDomains walks the top-level conjunction of the antecedent,
// mirroring Counter.domains but name-based (the compiler resolves
// columns per evaluation, not per view).
func extractDomains(f Formula, vpos map[string]int, doms []cDomain) {
	switch g := f.(type) {
	case And:
		extractDomains(g.L, vpos, doms)
		extractDomains(g.R, vpos, doms)
	case PropEqConst:
		doms[vpos[g.C]].prop, doms[vpos[g.C]].hasProp = g.U, true
	case ValEqConst:
		doms[vpos[g.C]].val = g.I
	}
}

// collectPropConsts gathers every property URI mentioned as a constant
// anywhere in the rule, so an evaluation resolves each name once.
func collectPropConsts(r *Rule) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(f Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case PropEqConst:
			if !seen[g.U] {
				seen[g.U] = true
				out = append(out, g.U)
			}
		case Not:
			walk(g.F)
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		}
	}
	walk(r.Antecedent)
	walk(r.Consequent)
	return out
}

// CompileRule lowers r onto the aggregate kernels when it mentions at
// most two variables and no subject constants. One-variable rules
// compile to a CountsFunc (or, when they mention property constants
// that need name resolution, a PairCountsFunc that reads no pair
// entries); two-variable rules compile to a PairCountsFunc whose
// NeededPairs is the pinned column pair when the antecedent pins both
// properties. Returns false for rules the compiler cannot lower, which
// stay on the generic rough-assignment evaluator.
func CompileRule(r *Rule) (Func, bool) {
	if hasSubjConst(r.Antecedent) || hasSubjConst(r.Consequent) {
		return nil, false
	}
	vars := r.Vars()
	vpos := make(map[string]int, len(vars))
	for i, s := range vars {
		vpos[s] = i
	}
	doms := make([]cDomain, len(vars))
	for i := range doms {
		doms[i].val = -1
	}
	extractDomains(r.Antecedent, vpos, doms)
	consts := collectPropConsts(r)
	switch len(vars) {
	case 1:
		c := compiled1{r: r, vpos: vpos, dom: doms[0], consts: consts}
		if len(consts) == 0 {
			return compiled1Counts{c}, true
		}
		return compiled1Pair{c}, true
	case 2:
		return compiled2{r: r, vpos: vpos, doms: [2]cDomain{doms[0], doms[1]}, consts: consts}, true
	}
	return nil, false
}

// bucket fixes the free coordinates of a rough two-cell assignment:
// columns, cell values, and subject coincidence. For one-variable rules
// only the first coordinate of each pair is meaningful.
type bucket struct {
	p1, p2 int
	b1, b2 bool
	same   bool
}

// constResolver holds the rule's property constants resolved against
// one evaluation's column space (−1 = absent). It lives on the
// caller's stack — kernels run once per candidate local-search move,
// so per-call map allocation is off the table. Lookups scan the tiny
// constant list (rules mention a handful of URIs at most).
type constResolver struct {
	names []string
	cols  [4]int
	extra []int // spill for rules with more than 4 constants
}

func (cr *constResolver) resolve(names []string, column func(string) (int, bool)) {
	cr.names = names
	for k, u := range names {
		c := -1
		if i, ok := column(u); ok {
			c = i
		}
		if k < len(cr.cols) {
			cr.cols[k] = c
		} else {
			cr.extra = append(cr.extra, c)
		}
	}
}

func (cr *constResolver) col(name string) int {
	for k, u := range cr.names {
		if u == name {
			if k < len(cr.cols) {
				return cr.cols[k]
			}
			return cr.extra[k-len(cr.cols)]
		}
	}
	return -1
}

// holdsBucket evaluates f inside a bucket. consts resolves every
// property constant of the rule to its column (−1 when absent from the
// column space). vpos maps variable names to slot 0/1.
func holdsBucket(f Formula, vpos map[string]int, bk *bucket, consts *constResolver) bool {
	bit := func(c string) bool {
		if vpos[c] == 1 {
			return bk.b2
		}
		return bk.b1
	}
	col := func(c string) int {
		if vpos[c] == 1 {
			return bk.p2
		}
		return bk.p1
	}
	switch g := f.(type) {
	case ValEqConst:
		return bit(g.C) == (g.I == 1)
	case ValEqVar:
		return bit(g.C1) == bit(g.C2)
	case PropEqConst:
		return col(g.C) == consts.col(g.U)
	case PropEqVar:
		return col(g.C1) == col(g.C2)
	case SubjEqVar:
		return vpos[g.C1] == vpos[g.C2] || bk.same
	case CellEq:
		if vpos[g.C1] == vpos[g.C2] {
			return true
		}
		return bk.same && bk.p1 == bk.p2
	case Not:
		return !holdsBucket(g.F, vpos, bk, consts)
	case And:
		return holdsBucket(g.L, vpos, bk, consts) && holdsBucket(g.R, vpos, bk, consts)
	case Or:
		return holdsBucket(g.L, vpos, bk, consts) || holdsBucket(g.R, vpos, bk, consts)
	}
	// SubjEqConst is rejected at compile time; anything else is a new
	// atom the compiler must be taught about.
	panic("rules: compiler cannot evaluate formula")
}

// pinnedCol resolves a variable's pinned property against the column
// space: −1 when the variable is unpinned (iterate all used columns),
// ok=false when the pinned property is absent or unused, making the
// rule vacuous. The kernels then filter the column loops in place —
// no used-column list is ever materialized, so evaluations allocate
// nothing beyond the returned Ratio.
func pinnedCol(dom cDomain, propCounts []int64, column func(string) (int, bool)) (int, bool) {
	if !dom.hasProp {
		return -1, true
	}
	i, ok := column(dom.prop)
	if !ok || propCounts[i] == 0 {
		return 0, false
	}
	return i, true
}

// valRange returns the cell-value loop bounds for one variable.
func valRange(dom cDomain) (lo, hi int) {
	if dom.val >= 0 {
		return dom.val, dom.val
	}
	return 0, 1
}

// compiled1 is the shared core of the one-variable kernels.
type compiled1 struct {
	r      *Rule
	vpos   map[string]int
	dom    cDomain
	consts []string
}

func (c compiled1) Name() string { return normalizeName(c.r.Name, c.r) }

func (c compiled1) Eval(v *matrix.View) (Ratio, error) {
	return c.kernel(v.PropertyCounts(), int64(v.NumSubjects()), v.PropertyIndex), nil
}

// kernel sums bucket weights over (column, value): a column p with
// value 1 hosts N_p assignments, with value 0 hosts |S|−N_p.
func (c compiled1) kernel(propCounts []int64, subjects int64, column func(string) (int, bool)) Ratio {
	var consts constResolver
	consts.resolve(c.consts, column)
	pin, ok := pinnedCol(c.dom, propCounts, column)
	if !ok {
		return NewRatio(0, 0)
	}
	lo, hi := valRange(c.dom)
	var tot, fav int64
	var bk bucket
	for p, np := range propCounts {
		if np == 0 || (pin >= 0 && p != pin) {
			continue
		}
		for a := lo; a <= hi; a++ {
			w := np
			if a == 0 {
				w = subjects - w
			}
			if w == 0 {
				continue
			}
			bk = bucket{p1: p, b1: a == 1}
			if !holdsBucket(c.r.Antecedent, c.vpos, &bk, &consts) {
				continue
			}
			tot += w
			if holdsBucket(c.r.Consequent, c.vpos, &bk, &consts) {
				fav += w
			}
		}
	}
	return NewRatio(fav, tot)
}

// compiled1Counts is a one-variable compiled rule without property
// constants: a pure function of (N_p, |S|), i.e. a CountsFunc that
// delta-scores in local search exactly like σCov and σSim.
type compiled1Counts struct{ compiled1 }

func (c compiled1Counts) EvalCounts(propCounts []int64, subjects int64) Ratio {
	return c.kernel(propCounts, subjects, func(string) (int, bool) { return 0, false })
}

// compiled1Pair is a one-variable compiled rule that mentions property
// constants: it needs the aggregate's name resolution but reads no
// co-occurrence entries, so NeededPairs is empty (not nil).
type compiled1Pair struct{ compiled1 }

func (c compiled1Pair) EvalPairCounts(propCounts []int64, pc PairCounts, subjects int64) Ratio {
	return c.kernel(propCounts, subjects, pc.Column)
}

func (c compiled1Pair) NeededPairs() [][2]string { return [][2]string{} }

// compiled2 is a two-variable rule lowered onto the pair-count kernels.
type compiled2 struct {
	r      *Rule
	vpos   map[string]int
	doms   [2]cDomain
	consts []string
}

func (c compiled2) Name() string { return normalizeName(c.r.Name, c.r) }

// viewPairProbe adapts a view to the PairCounts read interface with
// on-demand bothCount probes — cheaper than materializing the full
// aggregate when the rule pins both properties and reads one entry.
type viewPairProbe struct{ v *matrix.View }

func (p viewPairProbe) Column(name string) (int, bool) { return p.v.PropertyIndex(name) }
func (p viewPairProbe) Both(i, j int) int64            { return bothCount(p.v, i, j) }

func (c compiled2) Eval(v *matrix.View) (Ratio, error) {
	var pc PairCounts = v.PairCounts()
	if c.NeededPairs() != nil {
		// Both properties pinned: probe the one demanded entry instead
		// of building the |P|² aggregate.
		pc = viewPairProbe{v}
	}
	return c.EvalPairCounts(v.PropertyCounts(), pc, int64(v.NumSubjects())), nil
}

// maxInt64KernelSubjects bounds the fast path of the two-variable
// kernel: per-pair bucket sums reach 8·|S|², which stays within int64
// for |S| ≤ 2³⁰. Above that the kernel switches to big.Int bucket
// weights (still O(|P|²·8) work — only the arithmetic widens).
const maxInt64KernelSubjects = 1 << 30

// EvalPairCounts sums bucket weights over (p1, p2, a, b, same-subject).
// Per column pair the eight bucket weights are derived from N_{p1},
// N_{p2}, C[p1][p2] and |S|, accumulated in int64 while |S| keeps
// 8·|S|² representable and in big.Int beyond, so the Ratio is exact at
// any scale.
func (c compiled2) EvalPairCounts(propCounts []int64, pc PairCounts, subjects int64) Ratio {
	var consts constResolver
	consts.resolve(c.consts, pc.Column)
	pin1, ok1 := pinnedCol(c.doms[0], propCounts, pc.Column)
	pin2, ok2 := pinnedCol(c.doms[1], propCounts, pc.Column)
	if !ok1 || !ok2 {
		return NewRatio(0, 0)
	}
	lo1, hi1 := valRange(c.doms[0])
	lo2, hi2 := valRange(c.doms[1])
	wide := subjects > maxInt64KernelSubjects
	tot, fav := new(big.Int), new(big.Int)
	var chunk, wideW, wideC2 big.Int
	var bk bucket
	for p1, n1 := range propCounts {
		if n1 == 0 || (pin1 >= 0 && p1 != pin1) {
			continue
		}
		for p2, n2 := range propCounts {
			if n2 == 0 || (pin2 >= 0 && p2 != pin2) {
				continue
			}
			n11 := pc.Both(p1, p2)
			// Subjects by (bit at p1, bit at p2).
			nab := [2][2]int64{
				{subjects - n1 - n2 + n11, n2 - n11},
				{n1 - n11, n11},
			}
			var ptot, pfav int64
			for _, same := range [2]bool{true, false} {
				for a := lo1; a <= hi1; a++ {
					for b := lo2; b <= hi2; b++ {
						var w int64
						var wBig *big.Int
						if same {
							w = nab[a][b]
						} else {
							c1 := n1
							if a == 0 {
								c1 = subjects - n1
							}
							c2 := n2
							if b == 0 {
								c2 = subjects - n2
							}
							if wide {
								// c1·c2 can exceed int64; widen the product.
								wBig = wideW.SetInt64(c1)
								wBig.Mul(wBig, wideC2.SetInt64(c2))
								wBig.Sub(wBig, wideC2.SetInt64(nab[a][b]))
								if wBig.Sign() == 0 {
									continue
								}
							} else {
								w = c1*c2 - nab[a][b]
							}
						}
						if wBig == nil && w == 0 {
							continue
						}
						bk = bucket{p1: p1, p2: p2, b1: a == 1, b2: b == 1, same: same}
						if !holdsBucket(c.r.Antecedent, c.vpos, &bk, &consts) {
							continue
						}
						if wBig != nil {
							tot.Add(tot, wBig)
							if holdsBucket(c.r.Consequent, c.vpos, &bk, &consts) {
								fav.Add(fav, wBig)
							}
							continue
						}
						ptot += w
						if holdsBucket(c.r.Consequent, c.vpos, &bk, &consts) {
							pfav += w
						}
					}
				}
			}
			if ptot != 0 {
				tot.Add(tot, chunk.SetInt64(ptot))
			}
			if pfav != 0 {
				fav.Add(fav, chunk.SetInt64(pfav))
			}
		}
	}
	return Ratio{Fav: fav, Tot: tot}
}

// NeededPairs reports the single demanded co-occurrence entry when the
// antecedent pins both variables' properties, nil otherwise.
func (c compiled2) NeededPairs() [][2]string {
	if c.doms[0].hasProp && c.doms[1].hasProp {
		return [][2]string{{c.doms[0].prop, c.doms[1].prop}}
	}
	return nil
}
