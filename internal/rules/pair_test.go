package rules

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/matrix"
)

// randView builds a random view over nProps short property names.
func randView(t *testing.T, rng *rand.Rand, maxProps, maxSigs, maxCount int) *matrix.View {
	t.Helper()
	nProps := rng.Intn(maxProps) + 1
	props := make([]string, nProps)
	for i := range props {
		props[i] = "p" + string(rune('a'+i))
	}
	nSigs := rng.Intn(maxSigs) + 1
	var sigs []matrix.Signature
	for i := 0; i < nSigs; i++ {
		b := bitset.New(nProps)
		for j := 0; j < nProps; j++ {
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		sigs = append(sigs, matrix.Signature{Bits: b, Count: rng.Intn(20) + 1})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func sameRatio(a, b Ratio) bool {
	return a.Fav.Cmp(b.Fav) == 0 && a.Tot.Cmp(b.Tot) == 0
}

// The pair-count kernels of the dependency measures must agree exactly
// — as Ratios — with the view closed forms and with the generic
// rough-assignment evaluator on arbitrary views, including views
// missing one or both properties.
func TestPairKernelsMatchClosedFormsAndGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := []struct {
		name string
		fn   func(p1, p2 string) Func
		rule func(p1, p2 string) *Rule
	}{
		{"Dep", DepFunc, DepRule},
		{"SymDep", SymDepFunc, SymDepRule},
		{"DepDisj", DepDisjFunc, DepDisjRule},
	}
	for trial := 0; trial < 60; trial++ {
		v := randView(t, rng, 6, 8, 20)
		props := v.Properties()
		// Mix present, repeated and absent properties.
		candidates := append(append([]string{}, props...), "absent1", "absent2")
		p1 := candidates[rng.Intn(len(candidates))]
		p2 := candidates[rng.Intn(len(candidates))]
		for _, m := range mk {
			fn := m.fn(p1, p2)
			pf, ok := fn.(PairCountsFunc)
			if !ok {
				t.Fatalf("%s: not a PairCountsFunc", m.name)
			}
			want, err := fn.Eval(v)
			if err != nil {
				t.Fatal(err)
			}
			got := pf.EvalPairCounts(v.PropertyCounts(), v.PairCounts(), int64(v.NumSubjects()))
			if !sameRatio(want, got) {
				t.Fatalf("%s[%s,%s]: Eval=%v EvalPairCounts=%v on %s", m.name, p1, p2, want, got, v)
			}
			generic, err := Evaluate(m.rule(p1, p2), v)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRatio(want, generic) {
				t.Fatalf("%s[%s,%s]: closed=%v generic=%v on %s", m.name, p1, p2, want, generic, v)
			}
			pd, ok := fn.(PairDemands)
			if !ok || len(pd.NeededPairs()) != 1 {
				t.Fatalf("%s: expected one demanded pair", m.name)
			}
		}
	}
}

// PairTracker must agree with a brute-force recount after arbitrary
// column-set transitions.
func TestPairTrackerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const nProps = 7
	tr := NewPairTracker(0)
	tr.Grow(nProps)
	subjects := make(map[int][]int) // subject -> sorted cols
	hasCol := func(cols []int, c int) bool {
		for _, x := range cols {
			if x == c {
				return true
			}
		}
		return false
	}
	for step := 0; step < 2000; step++ {
		s := rng.Intn(30)
		cols := subjects[s]
		c := rng.Intn(nProps)
		if rng.Intn(2) == 0 { // gain
			if hasCol(cols, c) {
				continue
			}
			tr.AddCol(cols, c)
			subjects[s] = append(append([]int{}, cols...), c)
		} else { // lose
			if !hasCol(cols, c) {
				continue
			}
			var rest []int
			for _, x := range cols {
				if x != c {
					rest = append(rest, x)
				}
			}
			tr.RemoveCol(rest, c)
			subjects[s] = rest
		}
	}
	for i := 0; i < nProps; i++ {
		for j := 0; j < nProps; j++ {
			var want int64
			for _, cols := range subjects {
				if hasCol(cols, i) && hasCol(cols, j) {
					want++
				}
			}
			if got := tr.Both(i, j); got != want {
				t.Fatalf("Both(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

// CoverageIgnoring must be unchanged by the scratch-slice rewrite and
// stable under repeated and concurrent calls (the pool is shared).
func TestCoverageIgnoringPooledScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		v := randView(t, rng, 8, 10, 30)
		props := v.Properties()
		ignore := []string{"absent"}
		if len(props) > 1 {
			ignore = append(ignore, props[rng.Intn(len(props))])
		}
		want := CoverageIgnoring(v, ignore...)
		done := make(chan Ratio, 8)
		for w := 0; w < 8; w++ {
			go func() { done <- CoverageIgnoring(v, ignore...) }()
		}
		for w := 0; w < 8; w++ {
			if got := <-done; !sameRatio(want, got) {
				t.Fatalf("CoverageIgnoring unstable: %v vs %v", want, got)
			}
		}
		// Cross-check against the rule-based definition.
		ruleVal, err := Evaluate(CovRuleIgnoring(ignore...), v)
		if err != nil {
			t.Fatal(err)
		}
		if want.Value() != ruleVal.Value() {
			t.Fatalf("CoverageIgnoring=%v rule=%v", want, ruleVal)
		}
	}
}
