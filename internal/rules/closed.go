package rules

import (
	"fmt"
	"sync"

	"repro/internal/matrix"
	"repro/internal/metrics"
)

// This file provides the paper's named structuredness functions
// (Section 2.2) in two forms: as rules of the language (Section 3.2's
// encodings) and as closed-form evaluators over the signature view.
// The closed forms are algebraically derived from the rule semantics
// and verified against the generic evaluator in tests; they are what
// makes local search over candidate partitions fast (O(|P|) per
// evaluation instead of enumerating rough assignments).

// CovRule returns the rule expressing σCov: c = c ↦ val(c) = 1.
func CovRule() *Rule {
	return MustParse("c = c -> val(c) = 1")
}

// CovRuleIgnoring returns the σCov variant that ignores the given
// property columns (Section 3.2's "modified σCov" and the Section 7.4
// RDF-syntax exclusion).
func CovRuleIgnoring(props ...string) *Rule {
	ant := Formula(CellEq{C1: "c", C2: "c"})
	for _, p := range props {
		ant = And{ant, Not{PropEqConst{C: "c", U: p}}}
	}
	r, err := NewRule("Cov-ignoring", ant, ValEqConst{C: "c", I: 1})
	if err != nil {
		panic(err)
	}
	return r
}

// SimRule returns the rule expressing σSim:
// ¬(c1 = c2) ∧ prop(c1) = prop(c2) ∧ val(c1) = 1 ↦ val(c2) = 1.
func SimRule() *Rule {
	return MustParse("!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1")
}

// DepRule returns the rule expressing σDep[p1, p2].
func DepRule(p1, p2 string) *Rule {
	r := MustParse(fmt.Sprintf(
		"subj(c1) = subj(c2) && prop(c1) = <%s> && prop(c2) = <%s> && val(c1) = 1 -> val(c2) = 1",
		p1, p2))
	r.Name = fmt.Sprintf("Dep[%s,%s]", p1, p2)
	return r
}

// SymDepRule returns the rule expressing σSymDep[p1, p2].
func SymDepRule(p1, p2 string) *Rule {
	r := MustParse(fmt.Sprintf(
		"subj(c1) = subj(c2) && prop(c1) = <%s> && prop(c2) = <%s> && (val(c1) = 1 || val(c2) = 1) -> val(c1) = 1 && val(c2) = 1",
		p1, p2))
	r.Name = fmt.Sprintf("SymDep[%s,%s]", p1, p2)
	return r
}

// DepDisjRule returns the disjunctive dependency variant of Section
// 3.2: the probability that a random subject having p1 also has p2,
// vacuously counting subjects without p1.
func DepDisjRule(p1, p2 string) *Rule {
	r := MustParse(fmt.Sprintf(
		"subj(c1) = subj(c2) && prop(c1) = <%s> && prop(c2) = <%s> -> val(c1) = 0 || val(c2) = 1",
		p1, p2))
	r.Name = fmt.Sprintf("DepDisj[%s,%s]", p1, p2)
	return r
}

// Coverage computes σCov(D) = (Σsp M(D)sp) / (|S(D)|·|P(D)|) where
// P(D) counts only properties some subject of the view actually has.
func Coverage(v *matrix.View) Ratio {
	n := int64(v.NumSubjects())
	used := int64(v.UsedProperties())
	return NewRatio(v.Ones(), n*used)
}

// skipPool recycles the CoverageIgnoring scratch slices (as *[]bool,
// reusing the pooled box so a call allocates nothing). Entries are
// always returned all-false, so a pooled slice (or a longer prefix of
// one) is ready to use as-is.
var skipPool sync.Pool

func getSkip(n int) *[]bool {
	if p, ok := skipPool.Get().(*[]bool); ok {
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
		// Too small: replace the backing array, keep the box.
		*p = make([]bool, n)
		return p
	}
	s := make([]bool, n)
	return &s
}

// CoverageIgnoring computes σCov over the view with the given columns
// removed from both numerator and denominator. The excluded-column set
// is a pooled scratch bool slice indexed by column — no per-call map
// allocation and no hashed lookup inside the counts loop, which matters
// because σCov-ignoring variants are evaluated per candidate sort in
// local search.
func CoverageIgnoring(v *matrix.View, ignore ...string) Ratio {
	counts := v.PropertyCounts()
	sp := getSkip(len(counts))
	skip := *sp
	for _, p := range ignore {
		if i, ok := v.PropertyIndex(p); ok {
			skip[i] = true
		}
	}
	var ones, used int64
	for i, c := range counts {
		if skip[i] || c == 0 {
			continue
		}
		used++
		ones += c
	}
	for _, p := range ignore {
		if i, ok := v.PropertyIndex(p); ok {
			skip[i] = false
		}
	}
	skipPool.Put(sp)
	return NewRatio(ones, int64(v.NumSubjects())*used)
}

// Similarity computes σSim(D): the probability that a random property
// p of a random subject s (with s having p) is also had by a second
// random subject s′ ≠ s. Closed form:
//
//	fav = Σ_p N_p·(N_p − 1),  tot = Σ_p N_p·(N − 1)
func Similarity(v *matrix.View) Ratio {
	n := int64(v.NumSubjects())
	var fav, tot int64
	for _, np := range v.PropertyCounts() {
		fav += np * (np - 1)
		tot += np * (n - 1)
	}
	return NewRatio(fav, tot)
}

// sigScans counts full signature-list scans performed by bothCount —
// instrumentation for the compiled-evaluator ablation (BenchmarkRefineDep
// asserts the pair-count kernels do orders of magnitude fewer of these
// per local-search iteration than the scan-per-evaluation baseline).
// It is a metrics.Counter rather than a bare atomic so the serving
// stack can attach it to its registry (Registry.AttachCounter) and the
// scan rate shows up in GET /metrics.
var sigScans metrics.Counter

// SignatureScans returns the cumulative number of full signature-list
// scans performed by the pairwise closed forms since process start.
// Read-before/read-after deltas instrument benchmarks and tests; the
// single atomic add per scan is noise next to the scan itself.
func SignatureScans() int64 { return sigScans.Value() }

// SignatureScanCounter returns the scan counter itself, for
// registration in a metrics registry.
func SignatureScanCounter() *metrics.Counter { return &sigScans }

// bothCount returns the number of subjects having both columns by
// scanning the signature list with two direct bit tests per signature —
// the measured optimum for probing a single column pair, where a
// word-parallel AndCount over a two-bit mask only inspects wasted
// words. Word-parallel counting instead powers the dense
// matrix.View.PairCounts build, which amortizes whole-matrix
// construction across all pairs at once; the crossover between probing
// pairs here and building the full aggregate there is recorded in
// EXPERIMENTS.md. Evaluators that hold a PairCounts aggregate never
// call this.
func bothCount(v *matrix.View, i, j int) int64 {
	sigScans.Add(1)
	var both int64
	for _, sg := range v.Signatures() {
		if sg.Bits.Test(i) && sg.Bits.Test(j) {
			both += int64(sg.Count)
		}
	}
	return both
}

// Dep computes σDep[p1, p2](D): the probability that a random subject
// having p1 also has p2. Vacuously 1 when either column is absent from
// the view's used properties (no total cases — the Fig. 4c effect).
func Dep(v *matrix.View, p1, p2 string) Ratio {
	i, ok1 := v.PropertyIndex(p1)
	j, ok2 := v.PropertyIndex(p2)
	if !ok1 || !ok2 {
		return NewRatio(0, 0)
	}
	counts := v.PropertyCounts()
	if counts[i] == 0 || counts[j] == 0 {
		return NewRatio(0, 0)
	}
	return NewRatio(bothCount(v, i, j), counts[i])
}

// SymDep computes σSymDep[p1, p2](D): the probability that a random
// subject having p1 or p2 has both.
func SymDep(v *matrix.View, p1, p2 string) Ratio {
	i, ok1 := v.PropertyIndex(p1)
	j, ok2 := v.PropertyIndex(p2)
	if !ok1 || !ok2 {
		return NewRatio(0, 0)
	}
	counts := v.PropertyCounts()
	if counts[i] == 0 || counts[j] == 0 {
		return NewRatio(0, 0)
	}
	both := bothCount(v, i, j)
	either := counts[i] + counts[j] - both
	return NewRatio(both, either)
}

// DepDisjEval computes σDepDisj[p1, p2](D), the disjunctive dependency
// of Section 3.2: the probability that a random subject lacks p1 or has
// p2, i.e. (|S| − N_{p1} + both) / |S|. Vacuous when either column is
// absent or empty, matching the rule's antecedent (which pins both
// properties) under the generic evaluator.
func DepDisjEval(v *matrix.View, p1, p2 string) Ratio {
	i, ok1 := v.PropertyIndex(p1)
	j, ok2 := v.PropertyIndex(p2)
	if !ok1 || !ok2 {
		return NewRatio(0, 0)
	}
	counts := v.PropertyCounts()
	if counts[i] == 0 || counts[j] == 0 {
		return NewRatio(0, 0)
	}
	n := int64(v.NumSubjects())
	return NewRatio(n-counts[i]+bothCount(v, i, j), n)
}

// Func is a structuredness function σ: it assigns to every view an
// exact Ratio in [0, 1]. All named measures and every parsed rule
// satisfy this interface.
type Func interface {
	Name() string
	Eval(v *matrix.View) (Ratio, error)
}

// CountsFunc is implemented by measures whose value on any view is a
// function of the view's per-property subject counts N_p and subject
// count |S| alone — true of the closed forms σCov and σSim. It is the
// contract behind delta-scoring in local search: moving one signature
// set between candidate sorts updates running Σ counts in O(|P|), so a
// candidate move is scored without materializing a subset view.
type CountsFunc interface {
	Func
	// EvalCounts computes σ of a (sub-)dataset from its per-property
	// subject counts and its subject count. It must agree exactly with
	// Eval on the corresponding view. The counts slice is read-only.
	EvalCounts(propCounts []int64, subjects int64) Ratio
}

// closedFunc wraps a closed-form evaluator.
type closedFunc struct {
	name string
	eval func(v *matrix.View) Ratio
}

func (c closedFunc) Name() string                       { return c.name }
func (c closedFunc) Eval(v *matrix.View) (Ratio, error) { return c.eval(v), nil }

// covFunc is σCov with a counts-based incremental form.
type covFunc struct{}

func (covFunc) Name() string                       { return "Cov" }
func (covFunc) Eval(v *matrix.View) (Ratio, error) { return Coverage(v), nil }

// EvalCounts mirrors Coverage: ones / (|S|·used) over the used columns.
func (covFunc) EvalCounts(propCounts []int64, subjects int64) Ratio {
	var ones, used int64
	for _, c := range propCounts {
		if c > 0 {
			used++
			ones += c
		}
	}
	return NewRatio(ones, subjects*used)
}

// simFunc is σSim with a counts-based incremental form.
type simFunc struct{}

func (simFunc) Name() string                       { return "Sim" }
func (simFunc) Eval(v *matrix.View) (Ratio, error) { return Similarity(v), nil }

// EvalCounts mirrors Similarity: Σ N_p(N_p−1) / Σ N_p(|S|−1).
func (simFunc) EvalCounts(propCounts []int64, subjects int64) Ratio {
	var fav, tot int64
	for _, np := range propCounts {
		fav += np * (np - 1)
		tot += np * (subjects - 1)
	}
	return NewRatio(fav, tot)
}

// CovFunc returns σCov as a Func (closed form, counts-incremental).
func CovFunc() Func { return covFunc{} }

// SimFunc returns σSim as a Func (closed form, counts-incremental).
func SimFunc() Func { return simFunc{} }

// DepFunc returns σDep[p1,p2] as a Func (closed form, pair-counts
// incremental: the result also implements PairCountsFunc and
// PairDemands).
func DepFunc(p1, p2 string) Func { return depFunc{p1, p2} }

// SymDepFunc returns σSymDep[p1,p2] as a Func (closed form,
// pair-counts incremental).
func SymDepFunc(p1, p2 string) Func { return symDepFunc{p1, p2} }

// DepDisjFunc returns σDepDisj[p1,p2] as a Func (closed form,
// pair-counts incremental).
func DepDisjFunc(p1, p2 string) Func { return depDisjFunc{p1, p2} }

// CovIgnoringFunc returns the σCov variant excluding columns.
func CovIgnoringFunc(ignore ...string) Func {
	return closedFunc{"Cov-ignoring",
		func(v *matrix.View) Ratio { return CoverageIgnoring(v, ignore...) }}
}

// RuleFunc evaluates an arbitrary rule with the generic
// rough-assignment evaluator.
type RuleFunc struct {
	R *Rule
	// Workers splits the rough-assignment enumeration across goroutines
	// (EvaluateParallel); 0 or 1 evaluates sequentially. The result is
	// bit-identical for every value.
	Workers int
}

// Name returns the rule's label.
func (rf RuleFunc) Name() string { return normalizeName(rf.R.Name, rf.R) }

// Eval computes σr exactly.
func (rf RuleFunc) Eval(v *matrix.View) (Ratio, error) {
	if rf.Workers > 1 {
		return EvaluateParallel(rf.R, v, rf.Workers)
	}
	return Evaluate(rf.R, v)
}

// FuncForRule returns the fastest exact evaluator for r, in descending
// order of specialization: a closed form when r is recognized as one of
// the named measures (matched structurally), a compiled counts/
// pair-counts kernel when r mentions at most two variables and no
// subject constants (CompileRule), and the generic rough-assignment
// evaluator otherwise. All tiers agree exactly — same Ratio, not merely
// the same float — which the randomized equivalence tests pin.
func FuncForRule(r *Rule) Func {
	if r.String() == CovRule().String() {
		return CovFunc()
	}
	if r.String() == SimRule().String() {
		return SimFunc()
	}
	if p1, p2, ok := matchDep(r); ok {
		return DepFunc(p1, p2)
	}
	if p1, p2, ok := matchSymDep(r); ok {
		return SymDepFunc(p1, p2)
	}
	if p1, p2, ok := matchDepDisj(r); ok {
		return DepDisjFunc(p1, p2)
	}
	if fn, ok := CompileRule(r); ok {
		return fn
	}
	return RuleFunc{R: r}
}

func matchDep(r *Rule) (p1, p2 string, ok bool) {
	ps := twoPropConsts(r)
	if ps == nil {
		return "", "", false
	}
	if r.String() == DepRule(ps[0], ps[1]).String() {
		return ps[0], ps[1], true
	}
	return "", "", false
}

func matchSymDep(r *Rule) (p1, p2 string, ok bool) {
	ps := twoPropConsts(r)
	if ps == nil {
		return "", "", false
	}
	if r.String() == SymDepRule(ps[0], ps[1]).String() {
		return ps[0], ps[1], true
	}
	return "", "", false
}

func matchDepDisj(r *Rule) (p1, p2 string, ok bool) {
	ps := twoPropConsts(r)
	if ps == nil {
		return "", "", false
	}
	if r.String() == DepDisjRule(ps[0], ps[1]).String() {
		return ps[0], ps[1], true
	}
	return "", "", false
}

// twoPropConsts extracts the first two prop(·)=constant URIs in
// antecedent order, or nil.
func twoPropConsts(r *Rule) []string {
	var ps []string
	var walk func(f Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case And:
			walk(g.L)
			walk(g.R)
		case PropEqConst:
			ps = append(ps, g.U)
		}
	}
	walk(r.Antecedent)
	if len(ps) == 2 {
		return ps
	}
	return nil
}
