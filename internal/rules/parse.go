package rules

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the text syntax for rules:
//
//	rule    := formula "->" formula
//	formula := orExpr
//	orExpr  := andExpr { ("||" | "|") andExpr }
//	andExpr := unary { ("&&" | "&") unary }
//	unary   := ("!" | "~") unary | "(" formula ")" | atom
//	atom    := term ("=" | "!=") term
//	term    := "val" "(" var ")" | "prop" "(" var ")" | "subj" "(" var ")"
//	         | "0" | "1" | "<" uri ">" | var
//
// "!=" is sugar for the negated equality. Examples (the paper's rules):
//
//	σCov:    c = c -> val(c) = 1
//	σSim:    !(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1
//	σDep:    subj(c1)=subj(c2) && prop(c1)=<p1> && prop(c2)=<p2> && val(c1)=1 -> val(c2)=1
func Parse(src string) (*Rule, error) {
	p := &parser{toks: lex(src)}
	ant, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	cons, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("rules: unexpected trailing token %q", p.peek().text)
	}
	return NewRule("", ant, cons)
}

// MustParse is Parse that panics on error, for rule literals in code.
func MustParse(src string) *Rule {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokURI // <...>
	tokNum // 0 or 1
	tokLPar
	tokRPar
	tokEq
	tokNeq
	tokAnd
	tokOr
	tokNot
	tokArrow
	tokErr
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLPar, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRPar, ")"})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "="})
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{tokNeq, "!="})
			i += 2
		case c == '!' || c == '~':
			toks = append(toks, token{tokNot, string(c)})
			i++
		case c == '&':
			i++
			if i < len(src) && src[i] == '&' {
				i++
			}
			toks = append(toks, token{tokAnd, "&&"})
		case c == '|':
			i++
			if i < len(src) && src[i] == '|' {
				i++
			}
			toks = append(toks, token{tokOr, "||"})
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tokArrow, "->"})
			i += 2
		case c == '<':
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				toks = append(toks, token{tokErr, "unterminated URI"})
				return toks
			}
			toks = append(toks, token{tokURI, src[i+1 : i+j]})
			i += j + 1
		case c == '0' || c == '1':
			toks = append(toks, token{tokNum, string(c)})
			i++
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			toks = append(toks, token{tokErr, fmt.Sprintf("unexpected character %q", c)})
			return toks
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == ':' || r == '.'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind) error {
	t := p.next()
	if t.kind == tokErr {
		return fmt.Errorf("rules: %s", t.text)
	}
	if t.kind != k {
		return fmt.Errorf("rules: unexpected token %q", t.text)
	}
	return nil
}

func (p *parser) parseFormula() (Formula, error) { return p.parseOr() }

func (p *parser) parseOr() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	case tokLPar:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRPar); err != nil {
			return nil, err
		}
		return f, nil
	}
	return p.parseAtom()
}

// term is an intermediate parse result for one side of an (in)equality.
type term struct {
	kind termKind
	v    string // variable name for fn terms and bare vars
	u    string // URI constant
	n    int    // 0/1 constant
}

type termKind int

const (
	termVal termKind = iota
	termProp
	termSubj
	termVar
	termURI
	termNum
)

func (p *parser) parseTerm() (term, error) {
	t := p.next()
	switch t.kind {
	case tokErr:
		return term{}, fmt.Errorf("rules: %s", t.text)
	case tokURI:
		return term{kind: termURI, u: t.text}, nil
	case tokNum:
		n := 0
		if t.text == "1" {
			n = 1
		}
		return term{kind: termNum, n: n}, nil
	case tokIdent:
		switch t.text {
		case "val", "prop", "subj":
			if err := p.expect(tokLPar); err != nil {
				return term{}, err
			}
			arg := p.next()
			if arg.kind != tokIdent {
				return term{}, fmt.Errorf("rules: expected variable in %s(...), got %q", t.text, arg.text)
			}
			if err := p.expect(tokRPar); err != nil {
				return term{}, err
			}
			k := termVal
			if t.text == "prop" {
				k = termProp
			} else if t.text == "subj" {
				k = termSubj
			}
			return term{kind: k, v: arg.text}, nil
		}
		return term{kind: termVar, v: t.text}, nil
	}
	return term{}, fmt.Errorf("rules: unexpected token %q", t.text)
}

func (p *parser) parseAtom() (Formula, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	op := p.next()
	neg := false
	switch op.kind {
	case tokEq:
	case tokNeq:
		neg = true
	default:
		return nil, fmt.Errorf("rules: expected '=' or '!=', got %q", op.text)
	}
	right, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	f, err := makeAtom(left, right)
	if err != nil {
		return nil, err
	}
	if neg {
		return Not{f}, nil
	}
	return f, nil
}

func makeAtom(l, r term) (Formula, error) {
	// Normalize constant-on-the-left.
	if (l.kind == termURI || l.kind == termNum) && (r.kind != termURI && r.kind != termNum) {
		l, r = r, l
	}
	switch l.kind {
	case termVal:
		switch r.kind {
		case termNum:
			return ValEqConst{C: l.v, I: r.n}, nil
		case termVal:
			return ValEqVar{C1: l.v, C2: r.v}, nil
		}
		return nil, fmt.Errorf("rules: val(%s) can only be compared to 0, 1 or val(·)", l.v)
	case termProp:
		switch r.kind {
		case termURI:
			return PropEqConst{C: l.v, U: r.u}, nil
		case termProp:
			return PropEqVar{C1: l.v, C2: r.v}, nil
		case termVar:
			// Bare identifier on the right of prop(c)=name is a URI shorthand.
			return PropEqConst{C: l.v, U: r.v}, nil
		}
		return nil, fmt.Errorf("rules: prop(%s) can only be compared to a URI or prop(·)", l.v)
	case termSubj:
		switch r.kind {
		case termURI:
			return SubjEqConst{C: l.v, U: r.u}, nil
		case termSubj:
			return SubjEqVar{C1: l.v, C2: r.v}, nil
		case termVar:
			return SubjEqConst{C: l.v, U: r.v}, nil
		}
		return nil, fmt.Errorf("rules: subj(%s) can only be compared to a URI or subj(·)", l.v)
	case termVar:
		if r.kind == termVar {
			return CellEq{C1: l.v, C2: r.v}, nil
		}
		return nil, fmt.Errorf("rules: cell variable %s can only be compared to another cell variable", l.v)
	}
	return nil, fmt.Errorf("rules: invalid atom")
}
