package rules

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/matrix"
)

// The counts-based incremental forms must agree exactly with the view
// evaluators on arbitrary views — they are what delta-scoring in the
// local search trusts.
func TestQuickCountsFuncsMatchViewEval(t *testing.T) {
	funcs := []CountsFunc{
		CovFunc().(CountsFunc),
		SimFunc().(CountsFunc),
	}
	f := func(seed int64, fnIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := funcs[int(fnIdx)%len(funcs)]
		nProps := rng.Intn(6) + 1
		props := make([]string, nProps)
		for i := range props {
			props[i] = "p" + string(rune('0'+i))
		}
		nSigs := rng.Intn(8) + 1
		var sigs []matrix.Signature
		for i := 0; i < nSigs; i++ {
			b := bitset.New(nProps)
			for j := 0; j < nProps; j++ {
				if rng.Intn(2) == 1 {
					b.Set(j)
				}
			}
			sigs = append(sigs, matrix.Signature{Bits: b, Count: rng.Intn(30) + 1})
		}
		v, err := matrix.New(props, sigs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fn.Eval(v)
		if err != nil {
			t.Fatal(err)
		}
		got := fn.EvalCounts(v.PropertyCounts(), int64(v.NumSubjects()))
		if want.Fav.Cmp(got.Fav) != 0 || want.Tot.Cmp(got.Tot) != 0 {
			t.Logf("%s: Eval=%v EvalCounts=%v", fn.Name(), want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Memoized view aggregates must be stable across repeated calls and
// match a fresh view built from the same signatures.
func TestViewAggregateMemoization(t *testing.T) {
	props := []string{"a", "b", "c"}
	mk := func() *matrix.View {
		b1 := bitset.New(3)
		b1.Set(0)
		b1.Set(1)
		b2 := bitset.New(3)
		b2.Set(2)
		v, err := matrix.New(props, []matrix.Signature{
			{Bits: b1, Count: 4}, {Bits: b2, Count: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v, w := mk(), mk()
	if v.Ones() != w.Ones() || v.Ones() != 10 {
		t.Fatalf("Ones = %d and %d, want 10", v.Ones(), w.Ones())
	}
	c1 := v.PropertyCounts()
	c2 := v.PropertyCounts()
	if &c1[0] != &c2[0] {
		t.Fatal("PropertyCounts not memoized")
	}
	for i, want := range []int64{4, 4, 2} {
		if c1[i] != want {
			t.Fatalf("PropertyCounts[%d] = %d, want %d", i, c1[i], want)
		}
	}
}
