// Package rules implements the paper's language for defining
// structuredness measures (Section 3): formulas over cell variables of
// the property-structure view, rules ϕ1 ↦ ϕ2, their formal semantics
// (σr(M) = |total(ϕ1∧ϕ2,M)| / |total(ϕ1,M)|), a text parser, an exact
// generic evaluator based on rough assignments (Section 6), and closed
// forms for the paper's named measures σCov, σSim, σDep and σSymDep.
package rules

import (
	"fmt"
	"sort"
	"strings"
)

// Formula is a Boolean combination of the atomic formulas of Section
// 3.1. Implementations are immutable.
type Formula interface {
	fmt.Stringer
	// collectVars adds every variable mentioned to vars.
	collectVars(vars map[string]bool)
}

// ValEqConst is val(c) = i with i ∈ {0, 1}.
type ValEqConst struct {
	C string
	I int
}

// ValEqVar is val(c1) = val(c2).
type ValEqVar struct{ C1, C2 string }

// PropEqConst is prop(c) = u for a URI constant u.
type PropEqConst struct {
	C string
	U string
}

// SubjEqConst is subj(c) = u for a URI constant u. Supported by the
// naive evaluator but rejected by the rough-assignment machinery and
// the ILP encoding (the paper's reduction excludes subject constants).
type SubjEqConst struct {
	C string
	U string
}

// PropEqVar is prop(c1) = prop(c2).
type PropEqVar struct{ C1, C2 string }

// SubjEqVar is subj(c1) = subj(c2).
type SubjEqVar struct{ C1, C2 string }

// CellEq is c1 = c2 (same cell: same subject and same property).
type CellEq struct{ C1, C2 string }

// Not is (¬F).
type Not struct{ F Formula }

// And is (L ∧ R).
type And struct{ L, R Formula }

// Or is (L ∨ R).
type Or struct{ L, R Formula }

func (f ValEqConst) String() string  { return fmt.Sprintf("val(%s)=%d", f.C, f.I) }
func (f ValEqVar) String() string    { return fmt.Sprintf("val(%s)=val(%s)", f.C1, f.C2) }
func (f PropEqConst) String() string { return fmt.Sprintf("prop(%s)=<%s>", f.C, f.U) }
func (f SubjEqConst) String() string { return fmt.Sprintf("subj(%s)=<%s>", f.C, f.U) }
func (f PropEqVar) String() string   { return fmt.Sprintf("prop(%s)=prop(%s)", f.C1, f.C2) }
func (f SubjEqVar) String() string   { return fmt.Sprintf("subj(%s)=subj(%s)", f.C1, f.C2) }
func (f CellEq) String() string      { return fmt.Sprintf("%s=%s", f.C1, f.C2) }
func (f Not) String() string         { return "!(" + f.F.String() + ")" }
func (f And) String() string         { return "(" + f.L.String() + " && " + f.R.String() + ")" }
func (f Or) String() string          { return "(" + f.L.String() + " || " + f.R.String() + ")" }

func (f ValEqConst) collectVars(v map[string]bool)  { v[f.C] = true }
func (f ValEqVar) collectVars(v map[string]bool)    { v[f.C1] = true; v[f.C2] = true }
func (f PropEqConst) collectVars(v map[string]bool) { v[f.C] = true }
func (f SubjEqConst) collectVars(v map[string]bool) { v[f.C] = true }
func (f PropEqVar) collectVars(v map[string]bool)   { v[f.C1] = true; v[f.C2] = true }
func (f SubjEqVar) collectVars(v map[string]bool)   { v[f.C1] = true; v[f.C2] = true }
func (f CellEq) collectVars(v map[string]bool)      { v[f.C1] = true; v[f.C2] = true }
func (f Not) collectVars(v map[string]bool)         { f.F.collectVars(v) }
func (f And) collectVars(v map[string]bool)         { f.L.collectVars(v); f.R.collectVars(v) }
func (f Or) collectVars(v map[string]bool)          { f.L.collectVars(v); f.R.collectVars(v) }

// Vars returns the sorted variable names of f.
func Vars(f Formula) []string {
	m := map[string]bool{}
	f.collectVars(m)
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Rule is ϕ1 ↦ ϕ2 with var(ϕ2) ⊆ var(ϕ1).
type Rule struct {
	Name       string // optional human-readable label
	Antecedent Formula
	Consequent Formula
}

// NewRule validates the variable-containment side condition of the
// language and returns the rule.
func NewRule(name string, ant, cons Formula) (*Rule, error) {
	av := map[string]bool{}
	ant.collectVars(av)
	cv := map[string]bool{}
	cons.collectVars(cv)
	for v := range cv {
		if !av[v] {
			return nil, fmt.Errorf("rules: consequent variable %q not in antecedent", v)
		}
	}
	if len(av) == 0 {
		return nil, fmt.Errorf("rules: rule mentions no variables")
	}
	return &Rule{Name: name, Antecedent: ant, Consequent: cons}, nil
}

// Vars returns the sorted variables of the rule (those of the antecedent).
func (r *Rule) Vars() []string { return Vars(r.Antecedent) }

// String renders the rule in the parseable text syntax.
func (r *Rule) String() string {
	return r.Antecedent.String() + " -> " + r.Consequent.String()
}

// hasSubjConst reports whether f mentions subj(c)=constant, which is
// incompatible with signature-level (rough) counting.
func hasSubjConst(f Formula) bool {
	switch g := f.(type) {
	case SubjEqConst:
		return true
	case Not:
		return hasSubjConst(g.F)
	case And:
		return hasSubjConst(g.L) || hasSubjConst(g.R)
	case Or:
		return hasSubjConst(g.L) || hasSubjConst(g.R)
	}
	return false
}

// normalizeName returns a default name for unnamed rules.
func normalizeName(name string, r *Rule) string {
	if name != "" {
		return name
	}
	s := r.String()
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return strings.TrimSpace(s)
}
