package rules

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/matrix"
)

// compileTestRules is a battery of 1- and 2-variable rules exercising
// every atom kind the compiler must lower: cell equality, value and
// property (in)equalities, constants on used/unused/absent columns,
// negation and disjunction in both antecedent and consequent.
var compileTestRules = []string{
	// 1-variable, no property constants (→ CountsFunc).
	"c = c -> val(c) = 1",
	"val(c) = 1 -> val(c) = 1",
	"val(c) = 0 -> val(c) = 1",
	"c = c -> val(c) = 0 || val(c) = 1",
	// 1-variable with property constants (→ PairCountsFunc, no pairs).
	"(c = c && !(prop(c) = <pa>)) -> val(c) = 1",
	"prop(c) = <pb> -> val(c) = 1",
	"prop(c) = <absent> -> val(c) = 1",
	"val(c) = 1 -> prop(c) = <pa> || val(c) = 1",
	// 2-variable, both properties pinned (→ one demanded pair).
	"subj(c1) = subj(c2) && prop(c1) = <pa> && prop(c2) = <pb> && val(c1) = 1 -> val(c2) = 1",
	"subj(c1) = subj(c2) && prop(c1) = <pa> && prop(c2) = <pa> -> val(c1) = val(c2)",
	"subj(c1) = subj(c2) && prop(c1) = <pb> && prop(c2) = <absent> && val(c1) = 1 -> val(c2) = 1",
	// 2-variable, unpinned (→ full pair-count kernel).
	"!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1",
	"subj(c1) = subj(c2) && !(prop(c1) = prop(c2)) && val(c1) = 1 -> val(c2) = 1",
	"val(c1) = 1 && val(c2) = 0 -> subj(c1) = subj(c2)",
	"!(subj(c1) = subj(c2)) -> val(c1) = val(c2)",
	"prop(c1) = prop(c2) -> c1 = c2 || val(c1) = val(c2)",
	"prop(c1) = <pa> && c2 = c2 && val(c1) = 1 -> val(c2) = 1 || prop(c2) = <pb>",
}

// Compiled kernels must agree exactly — as Ratios — with the generic
// rough-assignment evaluator on arbitrary views.
func TestCompiledRulesMatchGenericEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, src := range compileTestRules {
		r := MustParse(src)
		fn, ok := CompileRule(r)
		if !ok {
			t.Fatalf("CompileRule(%q) not compilable", src)
		}
		for trial := 0; trial < 25; trial++ {
			v := randView(t, rng, 5, 6, 12)
			want, err := Evaluate(r, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fn.Eval(v)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRatio(want, got) {
				t.Fatalf("%q on %s:\n generic  %v\n compiled %v", src, v, want, got)
			}
			// The aggregate-kernel entry points must agree with Eval too.
			switch k := fn.(type) {
			case CountsFunc:
				if gc := k.EvalCounts(v.PropertyCounts(), int64(v.NumSubjects())); !sameRatio(want, gc) {
					t.Fatalf("%q: EvalCounts=%v want %v", src, gc, want)
				}
			case PairCountsFunc:
				gp := k.EvalPairCounts(v.PropertyCounts(), v.PairCounts(), int64(v.NumSubjects()))
				if !sameRatio(want, gp) {
					t.Fatalf("%q: EvalPairCounts=%v want %v", src, gp, want)
				}
			default:
				t.Fatalf("%q: compiled to neither CountsFunc nor PairCountsFunc", src)
			}
		}
	}
}

// FuncForRule must lower rules onto the right evaluator tier.
func TestFuncForRuleLowering(t *testing.T) {
	if _, ok := FuncForRule(CovRule()).(CountsFunc); !ok {
		t.Fatal("Cov rule did not lower to a CountsFunc")
	}
	if _, ok := FuncForRule(SimRule()).(CountsFunc); !ok {
		t.Fatal("Sim rule did not lower to a CountsFunc")
	}
	for _, r := range []*Rule{DepRule("a", "b"), SymDepRule("a", "b"), DepDisjRule("a", "b")} {
		fn := FuncForRule(r)
		pf, ok := fn.(PairCountsFunc)
		if !ok {
			t.Fatalf("%s did not lower to a PairCountsFunc", r.Name)
		}
		pd, ok := pf.(PairDemands)
		if !ok || len(pd.NeededPairs()) != 1 {
			t.Fatalf("%s: expected one demanded pair", r.Name)
		}
	}
	// A custom 1-variable rule compiles to a CountsFunc.
	if _, ok := FuncForRule(MustParse("val(c) = 0 -> val(c) = 1")).(CountsFunc); !ok {
		t.Fatal("custom 1-var rule did not compile to a CountsFunc")
	}
	// A custom pinned 2-variable rule compiles to a demanded-pair kernel.
	custom := MustParse("subj(c1) = subj(c2) && prop(c1) = <x> && prop(c2) = <y> -> val(c1) = val(c2)")
	fn := FuncForRule(custom)
	if pd, ok := fn.(PairDemands); !ok || len(pd.NeededPairs()) != 1 {
		t.Fatalf("custom pinned rule lowered to %T without a demanded pair", fn)
	}
	// An unpinned 2-variable rule compiles without fixed demands.
	free := MustParse("val(c1) = 1 && val(c2) = 0 -> val(c2) = 0")
	if pd, ok := FuncForRule(free).(PairDemands); !ok || pd.NeededPairs() != nil {
		t.Fatal("unpinned 2-var rule should compile with nil NeededPairs")
	}
	// Three variables stay on the generic evaluator.
	three := MustParse("val(c1) = 1 && val(c2) = 1 && val(c3) = 1 -> val(c1) = 1")
	if _, ok := FuncForRule(three).(RuleFunc); !ok {
		t.Fatal("3-var rule should stay a RuleFunc")
	}
	// Subject constants are not compilable (naive evaluator only).
	subj := &Rule{Antecedent: SubjEqConst{C: "c", U: "s"}, Consequent: ValEqConst{C: "c", I: 1}}
	if _, ok := CompileRule(subj); ok {
		t.Fatal("subj(c)=const rule must not compile")
	}
}

// The signature-parallel rough evaluator must be bit-identical to the
// sequential one for every worker count (run under -race in CI).
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	srcs := []string{
		"val(c1) = 1 && val(c2) = 1 && val(c3) = 1 -> val(c1) = val(c2)",
		"subj(c1) = subj(c2) && val(c1) = 1 -> val(c2) = 1",
		"c = c -> val(c) = 1",
	}
	for _, src := range srcs {
		r := MustParse(src)
		for trial := 0; trial < 6; trial++ {
			v := randView(t, rng, 4, 5, 8)
			want, err := Evaluate(r, v)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				got, err := EvaluateParallel(r, v, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !sameRatio(want, got) {
					t.Fatalf("%q workers=%d: %v vs sequential %v", src, workers, got, want)
				}
			}
			rf := RuleFunc{R: r, Workers: 4}
			got, err := rf.Eval(v)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRatio(want, got) {
				t.Fatalf("RuleFunc{Workers:4} %q: %v vs %v", src, got, want)
			}
		}
	}
}

// Beyond 2³⁰ subjects the two-variable kernel must widen its bucket
// arithmetic: distinct-subject weights reach |S|², past int64 for
// billion-subject views. Pin exact agreement with the big.Int-based
// generic evaluator at that scale.
func TestCompiled2WideArithmetic(t *testing.T) {
	props := []string{"pa", "pb"}
	big1 := bitset.FromIndices(2, 0)
	big2 := bitset.FromIndices(2, 1)
	both := bitset.FromIndices(2, 0, 1)
	v, err := matrix.New(props, []matrix.Signature{
		{Bits: big1, Count: 1_500_000_001},
		{Bits: big2, Count: 1_200_000_003},
		{Bits: both, Count: 900_000_007},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1",
		"val(c1) = 1 && val(c2) = 0 -> subj(c1) = subj(c2)",
		"subj(c1) = subj(c2) && prop(c1) = <pa> && prop(c2) = <pb> && val(c1) = 1 -> val(c2) = 1",
	} {
		r := MustParse(src)
		fn, ok := CompileRule(r)
		if !ok {
			t.Fatalf("CompileRule(%q) not compilable", src)
		}
		want, err := Evaluate(r, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fn.Eval(v)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRatio(want, got) {
			t.Fatalf("%q at 3.6G subjects:\n generic  %v\n compiled %v", src, want, got)
		}
		if got.Tot.Sign() < 0 || got.Fav.Sign() < 0 {
			t.Fatalf("%q: negative counts (overflow): %v", src, got)
		}
	}
}
