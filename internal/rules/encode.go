package rules

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Binary serialization of the Σ-count trackers, used by the durability
// layer (internal/wal) to embed the live aggregates in shard
// checkpoints. The encodings are canonical — the same tracker state
// always produces the same bytes — so a recovered engine can be pinned
// bit-identical to the checkpointed one by comparing encodings, and a
// checkpoint written by a different code version that maintains the
// aggregates differently fails recovery loudly instead of serving
// silently drifted σ values.

// AppendBinary appends a canonical encoding of the tracker to dst and
// returns the extended slice: uvarint column count, |S|, the 1-entry
// total, then each N_p as a uvarint.
func (t *CountTracker) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t.counts)))
	dst = binary.AppendUvarint(dst, uint64(t.subjects))
	dst = binary.AppendUvarint(dst, uint64(t.ones))
	for _, c := range t.counts {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// DecodeCountTracker decodes an AppendBinary encoding, verifying the
// internal invariant that the 1-entry total equals ΣN_p.
func DecodeCountTracker(data []byte) (*CountTracker, error) {
	r := byteReader{data: data}
	n := r.uvarint()
	subjects := r.uvarint()
	ones := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("rules: count tracker header: %w", r.err)
	}
	if n > uint64(len(data)) { // each count takes ≥ 1 byte
		return nil, fmt.Errorf("rules: count tracker claims %d columns in %d bytes", n, len(data))
	}
	t := NewCountTracker(int(n))
	var sum int64
	for i := range t.counts {
		t.counts[i] = int64(r.uvarint())
		sum += t.counts[i]
	}
	if r.err != nil {
		return nil, fmt.Errorf("rules: count tracker body: %w", r.err)
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("rules: count tracker: %d trailing bytes", r.rest())
	}
	if sum != int64(ones) {
		return nil, fmt.Errorf("rules: count tracker: ones %d != ΣN_p %d", ones, sum)
	}
	t.subjects = int64(subjects)
	t.ones = sum
	return t, nil
}

// Equal reports whether the trackers hold identical state: same column
// count, same N_p per column, same |S| (the 1-entry total is implied).
func (t *CountTracker) Equal(o *CountTracker) bool {
	if t.subjects != o.subjects || t.ones != o.ones || len(t.counts) != len(o.counts) {
		return false
	}
	for i, c := range t.counts {
		if o.counts[i] != c {
			return false
		}
	}
	return true
}

// AppendBinary appends a canonical encoding of the pair tracker to dst
// and returns the extended slice: uvarint column count, the number of
// non-zero upper-triangle entries (diagonal included), then each entry
// as (i, j−i, value) uvarints in row-major order. The symmetric lower
// triangle is implied, so a sparse co-occurrence matrix encodes in
// O(non-zero pairs) rather than O(|P|²). Both storage modes iterate
// their non-zeros in the same row-major order (sparse rows keep columns
// sorted and never hold explicit zeros), so equal logical state encodes
// to identical bytes regardless of mode — the property recovery pinning
// relies on.
func (t *PairTracker) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(t.n))
	nz := 0
	t.forEachUpper(func(i, j int, v int64) { nz++ })
	dst = binary.AppendUvarint(dst, uint64(nz))
	t.forEachUpper(func(i, j int, v int64) {
		dst = binary.AppendUvarint(dst, uint64(i))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		dst = binary.AppendUvarint(dst, uint64(v))
	})
	return dst
}

// forEachUpper calls f with every non-zero upper-triangle entry
// (diagonal included) in row-major order.
func (t *PairTracker) forEachUpper(f func(i, j int, v int64)) {
	if t.c != nil {
		for i, row := range t.c {
			for j := i; j < len(row); j++ {
				if row[j] != 0 {
					f(i, j, row[j])
				}
			}
		}
		return
	}
	for i := range t.rows {
		r := &t.rows[i]
		k := sort.Search(len(r.cols), func(k int) bool { return r.cols[k] >= int32(i) })
		for ; k < len(r.cols); k++ {
			f(i, int(r.cols[k]), r.vals[k])
		}
	}
}

// DecodePairTracker decodes an AppendBinary encoding, rebuilding the
// symmetric matrix (in whichever storage mode the active policy picks)
// and rejecting out-of-range or zero entries.
func DecodePairTracker(data []byte) (*PairTracker, error) {
	r := byteReader{data: data}
	n := r.uvarint()
	nz := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("rules: pair tracker header: %w", r.err)
	}
	if n > uint64(len(data))+1 || nz > uint64(len(data)) {
		return nil, fmt.Errorf("rules: pair tracker claims %d columns / %d entries in %d bytes", n, nz, len(data))
	}
	t := NewPairTracker(int(n))
	for e := uint64(0); e < nz; e++ {
		i := r.uvarint()
		j := i + r.uvarint()
		v := r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("rules: pair tracker entry %d: %w", e, r.err)
		}
		if i >= n || j >= n {
			return nil, fmt.Errorf("rules: pair tracker entry (%d,%d) out of %d columns", i, j, n)
		}
		if v == 0 {
			return nil, fmt.Errorf("rules: pair tracker: explicit zero entry (%d,%d)", i, j)
		}
		t.set(int(i), int(j), int64(v))
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("rules: pair tracker: %d trailing bytes", r.rest())
	}
	return t, nil
}

// set installs entry (i, j) and its mirror, assuming it is not present
// yet (decode feeds each entry once).
func (t *PairTracker) set(i, j int, v int64) {
	if t.c != nil {
		t.c[i][j] = v
		t.c[j][i] = v
		return
	}
	t.rows[i].add(i, j, v)
	if i != j {
		t.rows[j].add(j, i, v)
	}
}

// Equal reports whether the pair trackers hold identical co-occurrence
// matrices (same column count, same entries), regardless of storage
// mode.
func (t *PairTracker) Equal(o *PairTracker) bool {
	if t.n != o.n {
		return false
	}
	tn, on := 0, 0
	t.forEachNonZero(func(i, j int, v int64) { tn++ })
	o.forEachNonZero(func(i, j int, v int64) { on++ })
	if tn != on {
		return false
	}
	eq := true
	t.forEachNonZero(func(i, j int, v int64) {
		if eq && o.Both(i, j) != v {
			eq = false
		}
	})
	return eq
}

// Clone returns an independent copy of the pair tracker, preserving its
// storage mode.
func (t *PairTracker) Clone() *PairTracker {
	o := &PairTracker{n: t.n}
	if t.c != nil {
		o.c = make([][]int64, len(t.c))
		for i, row := range t.c {
			o.c[i] = append([]int64(nil), row...)
		}
		return o
	}
	o.rows = make([]pairRow, len(t.rows))
	for i := range t.rows {
		o.rows[i] = pairRow{
			cols: append([]int32(nil), t.rows[i].cols...),
			vals: append([]int64(nil), t.rows[i].vals...),
		}
	}
	return o
}

// byteReader is a minimal cursor over an encoding, accumulating the
// first error so decode loops stay linear.
type byteReader struct {
	data []byte
	off  int
	err  error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) rest() int { return len(r.data) - r.off }
