package rules

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// trackerOps is a policy-independent operation tape: the same sequence
// of column-set transitions replays into trackers built under
// different storage modes, so their logical states are identical by
// construction and any observable difference is a representation leak.
type trackerOp struct {
	remove bool
	cols   []int
	c      int
}

func randomTrackerOps(rng *rand.Rand, nProps, nSubjects int) []trackerOp {
	var ops []trackerOp
	// live[s] is subject s's current sorted column set.
	live := make([][]int, nSubjects)
	for s := 0; s < nSubjects; s++ {
		k := 1 + rng.Intn(7)
		if k > nProps {
			k = nProps
		}
		for len(live[s]) < k {
			c := rng.Intn(nProps)
			dup := false
			for _, x := range live[s] {
				if x == c {
					dup = true
				}
			}
			if dup {
				continue
			}
			ops = append(ops, trackerOp{cols: append([]int(nil), live[s]...), c: c})
			live[s] = append(live[s], c)
		}
	}
	// Random losses exercise decrement-to-zero entry deletion (the
	// sparse canonical-form path).
	for s := 0; s < nSubjects; s++ {
		for len(live[s]) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live[s]))
			c := live[s][i]
			live[s] = append(live[s][:i], live[s][i+1:]...)
			ops = append(ops, trackerOp{remove: true, cols: append([]int(nil), live[s]...), c: c})
		}
	}
	return ops
}

func replayTracker(pol bitset.Policy, nProps int, ops []trackerOp) *PairTracker {
	defer bitset.SetPolicy(bitset.SetPolicy(pol))
	t := NewPairTracker(nProps)
	for _, op := range ops {
		if op.remove {
			t.RemoveCol(op.cols, op.c)
		} else {
			t.AddCol(op.cols, op.c)
		}
	}
	return t
}

// TestPairTrackerMixedModeMerge replays shard tapes into trackers of
// forced modes and merges every mode combination (dense→dense,
// dense→sparse, sparse→dense, sparse→sparse, plus adaptive), checking
// each merged state entry-for-entry and byte-for-byte against the
// all-dense reference.
func TestPairTrackerMixedModeMerge(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	for _, seed := range []int64{2, 11, 31} {
		rng := rand.New(rand.NewSource(seed))
		const nProps, nShards = 11, 3
		tapes := make([][]trackerOp, nShards)
		colMaps := make([][]int, nShards)
		for sh := range tapes {
			// Shard-local spaces: a permuted subset of the union columns.
			local := rng.Perm(nProps)[:4+rng.Intn(nProps-4)]
			colMaps[sh] = local
			tapes[sh] = randomTrackerOps(rng, len(local), 4+rng.Intn(10))
		}

		// All-dense reference.
		ref := replayTracker(bitset.PolicyDense, nProps, nil)
		for sh, tape := range tapes {
			ref.Merge(replayTracker(bitset.PolicyDense, len(colMaps[sh]), tape), colMaps[sh])
		}
		refEnc := ref.AppendBinary(nil)

		policies := []bitset.Policy{bitset.PolicyDense, bitset.PolicySparse, bitset.PolicyAdaptive}
		for _, mergePol := range policies {
			for rot := 0; rot < len(policies); rot++ {
				merged := replayTracker(mergePol, nProps, nil)
				for sh, tape := range tapes {
					shardPol := policies[(sh+rot)%len(policies)]
					shard := replayTracker(shardPol, len(colMaps[sh]), tape)
					merged.Merge(shard, colMaps[sh])
				}
				for i := 0; i < nProps; i++ {
					for j := 0; j < nProps; j++ {
						if got, want := merged.Both(i, j), ref.Both(i, j); got != want {
							t.Fatalf("seed %d merge=%v rot=%d: C[%d][%d] = %d, want %d",
								seed, mergePol, rot, i, j, got, want)
						}
					}
				}
				if !merged.Equal(ref) || !ref.Equal(merged) {
					t.Fatalf("seed %d merge=%v rot=%d: Equal is mode-dependent", seed, mergePol, rot)
				}
				if enc := merged.AppendBinary(nil); !bytes.Equal(enc, refEnc) {
					t.Fatalf("seed %d merge=%v rot=%d: encoding differs across modes", seed, mergePol, rot)
				}
			}
		}
	}
}

// TestPairTrackerGrowConvertsModes pins the in-place mode conversions:
// a tape replayed dense then grown under a sparse-forcing policy (and
// vice versa) keeps every entry and the canonical encoding.
func TestPairTrackerGrowConvertsModes(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	rng := rand.New(rand.NewSource(8))
	const nProps = 9
	tape := randomTrackerOps(rng, nProps, 12)

	dense := replayTracker(bitset.PolicyDense, nProps, tape)
	sparse := replayTracker(bitset.PolicySparse, nProps, tape)
	if dense.IsSparse() || !sparse.IsSparse() {
		t.Fatalf("forced modes not honored: dense.IsSparse=%v sparse.IsSparse=%v",
			dense.IsSparse(), sparse.IsSparse())
	}
	wantEnc := dense.AppendBinary(nil)

	bitset.SetPolicy(bitset.PolicySparse)
	dense.Grow(nProps + 2)
	if !dense.IsSparse() {
		t.Fatal("Grow under sparse policy did not convert")
	}
	bitset.SetPolicy(bitset.PolicyDense)
	sparse.Grow(nProps + 2)
	if sparse.IsSparse() {
		t.Fatal("Grow under dense policy did not convert")
	}
	for i := 0; i < nProps; i++ {
		for j := 0; j < nProps; j++ {
			if dense.Both(i, j) != sparse.Both(i, j) {
				t.Fatalf("conversion changed C[%d][%d]: %d vs %d", i, j, dense.Both(i, j), sparse.Both(i, j))
			}
		}
	}
	// Grown columns are all-zero, so the non-zero encoding only differs
	// in the column-count header; shrink back via a fresh clone replay.
	grown := replayTracker(bitset.PolicyAdaptive, nProps, tape)
	if enc := grown.AppendBinary(nil); !bytes.Equal(enc, wantEnc) {
		t.Fatalf("adaptive replay encoding differs from dense replay")
	}
}
