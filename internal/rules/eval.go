package rules

import (
	"fmt"
	"math/big"

	"repro/internal/matrix"
)

// Ratio is an exact favorable/total pair defining a structuredness
// value σ = Fav/Tot, with the paper's convention σ = 1 when Tot = 0.
type Ratio struct {
	Fav *big.Int
	Tot *big.Int
}

// NewRatio builds a Ratio from int64 counts.
func NewRatio(fav, tot int64) Ratio {
	return Ratio{Fav: big.NewInt(fav), Tot: big.NewInt(tot)}
}

// Value returns the structuredness value as a float64 in [0, 1].
func (r Ratio) Value() float64 {
	if r.Tot == nil || r.Tot.Sign() == 0 {
		return 1
	}
	f, _ := new(big.Rat).SetFrac(r.Fav, r.Tot).Float64()
	return f
}

// AtLeast reports whether Fav/Tot ≥ θ1/θ2 exactly (Tot = 0 counts as 1).
func (r Ratio) AtLeast(theta1, theta2 int64) bool {
	if r.Tot == nil || r.Tot.Sign() == 0 {
		return true
	}
	// Fav·θ2 ≥ Tot·θ1
	lhs := new(big.Int).Mul(r.Fav, big.NewInt(theta2))
	rhs := new(big.Int).Mul(r.Tot, big.NewInt(theta1))
	return lhs.Cmp(rhs) >= 0
}

func (r Ratio) String() string {
	if r.Tot == nil || r.Tot.Sign() == 0 {
		return "1 (vacuous)"
	}
	return fmt.Sprintf("%s/%s = %.4f", r.Fav, r.Tot, r.Value())
}

// cell identifies a cell of the expanded matrix: subject row and
// property column. Rows are (signature index, ordinal within the
// signature set).
type cell struct {
	sig, ord, prop int
}

// EvalNaive computes σr over the view by brute-force enumeration of all
// variable assignments over the expanded |S|×|P(D)| matrix — the direct
// transcription of the paper's semantics (Section 3.2). It is
// exponential in the number of variables and linear in |S|^n, so it is
// only usable on small views; it exists as the ground truth against
// which the rough-assignment evaluator and the closed forms are tested.
//
// Subject-constant atoms (subj(c)=u) are supported when the view
// retains subject URIs.
func EvalNaive(r *Rule, v *matrix.View) (Ratio, error) {
	vars := r.Vars()
	if len(vars) > 4 {
		return Ratio{}, fmt.Errorf("rules: naive evaluation limited to 4 variables, rule has %d", len(vars))
	}
	// Materialize rows and used columns.
	var rows []struct{ sig, ord int }
	for si, sg := range v.Signatures() {
		for o := 0; o < sg.Count; o++ {
			rows = append(rows, struct{ sig, ord int }{si, o})
		}
	}
	cols := usedColumns(v)
	nAssign := 1
	for range vars {
		nAssign *= len(rows) * len(cols)
		if nAssign > 50_000_000 {
			return Ratio{}, fmt.Errorf("rules: naive evaluation too large (%d rows × %d cols, %d vars)", len(rows), len(cols), len(vars))
		}
	}

	asg := make(map[string]cell, len(vars))
	var tot, fav int64
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			ok, err := satisfies(r.Antecedent, asg, v)
			if err != nil || !ok {
				return
			}
			tot++
			ok, _ = satisfies(r.Consequent, asg, v)
			if ok {
				fav++
			}
			return
		}
		for _, row := range rows {
			for _, p := range cols {
				asg[vars[i]] = cell{sig: row.sig, ord: row.ord, prop: p}
				rec(i + 1)
			}
		}
	}
	rec(0)
	return NewRatio(fav, tot), nil
}

func usedColumns(v *matrix.View) []int {
	counts := v.PropertyCounts()
	var cols []int
	for i, c := range counts {
		if c > 0 {
			cols = append(cols, i)
		}
	}
	return cols
}

func satisfies(f Formula, asg map[string]cell, v *matrix.View) (bool, error) {
	switch g := f.(type) {
	case ValEqConst:
		c := asg[g.C]
		bit := v.Signatures()[c.sig].Bits.Test(c.prop)
		return bit == (g.I == 1), nil
	case ValEqVar:
		c1, c2 := asg[g.C1], asg[g.C2]
		b1 := v.Signatures()[c1.sig].Bits.Test(c1.prop)
		b2 := v.Signatures()[c2.sig].Bits.Test(c2.prop)
		return b1 == b2, nil
	case PropEqConst:
		c := asg[g.C]
		return v.Properties()[c.prop] == g.U, nil
	case SubjEqConst:
		c := asg[g.C]
		subjects := v.Signatures()[c.sig].Subjects
		if subjects == nil {
			return false, fmt.Errorf("rules: subj(·)=constant requires a view with subjects")
		}
		return subjects[c.ord] == g.U, nil
	case PropEqVar:
		return asg[g.C1].prop == asg[g.C2].prop, nil
	case SubjEqVar:
		c1, c2 := asg[g.C1], asg[g.C2]
		return c1.sig == c2.sig && c1.ord == c2.ord, nil
	case CellEq:
		return asg[g.C1] == asg[g.C2], nil
	case Not:
		ok, err := satisfies(g.F, asg, v)
		return !ok, err
	case And:
		ok, err := satisfies(g.L, asg, v)
		if err != nil || !ok {
			return false, err
		}
		return satisfies(g.R, asg, v)
	case Or:
		ok, err := satisfies(g.L, asg, v)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		return satisfies(g.R, asg, v)
	}
	return false, fmt.Errorf("rules: unknown formula %T", f)
}
