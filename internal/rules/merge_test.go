package rules

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestTrackerMergeMatchesUnion simulates subject-disjoint shards with
// shard-local column spaces (different orders, plus shard-private
// retired columns) and checks that Merge over the shard trackers
// reproduces the tracker a single engine would hold over the union:
// every N_p, |S|, the 1-entry total, and every pairwise co-occurrence
// entry.
func TestTrackerMergeMatchesUnion(t *testing.T) {
	for _, seed := range []int64{1, 9, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const nProps, nShards = 7, 3
			names := make([]string, nProps)
			for i := range names {
				names[i] = fmt.Sprintf("http://p/%d", i)
			}
			unionIdx := map[string]int{}
			for i, n := range names {
				unionIdx[n] = i
			}
			union := NewCountTracker(nProps)
			unionPairs := NewPairTracker(nProps)

			shardCounts := make([]*CountTracker, nShards)
			shardPairs := make([]*PairTracker, nShards)
			shardNames := make([][]string, nShards)
			// feed records one subject's property set into a tracker pair,
			// replaying it as the incremental engine would: one Gain/AddCol
			// transition per property.
			feed := func(ct *CountTracker, pt *PairTracker, cols []int) {
				ct.AddSubjects(1)
				for i, c := range cols {
					ct.Gain(c)
					pt.AddCol(cols[:i], c)
				}
			}
			for sh := 0; sh < nShards; sh++ {
				// Shard-local column space: a random permutation of a random
				// subset of the union names (the shard saw them in its own
				// first-sight order), plus a retired column with no counts.
				perm := rng.Perm(nProps)
				local := perm[:2+rng.Intn(nProps-2)]
				for _, c := range local {
					shardNames[sh] = append(shardNames[sh], names[c])
				}
				shardNames[sh] = append(shardNames[sh], fmt.Sprintf("http://retired/%d", sh))
				shardCounts[sh] = NewCountTracker(len(shardNames[sh]))
				shardPairs[sh] = NewPairTracker(len(shardNames[sh]))
				nSubj := 3 + rng.Intn(12)
				for i := 0; i < nSubj; i++ {
					var localCols, uCols []int
					for c := range local {
						if rng.Intn(2) == 0 {
							localCols = append(localCols, c)
							uCols = append(uCols, unionIdx[shardNames[sh][c]])
						}
					}
					feed(shardCounts[sh], shardPairs[sh], localCols)
					feed(union, unionPairs, uCols)
				}
			}

			merged := NewCountTracker(nProps)
			mergedPairs := NewPairTracker(nProps)
			for sh := 0; sh < nShards; sh++ {
				colMap := make([]int, len(shardNames[sh]))
				counts := shardCounts[sh].Counts()
				for i, n := range shardNames[sh] {
					if u, ok := unionIdx[n]; ok {
						colMap[i] = u
					} else {
						if counts[i] != 0 {
							t.Fatalf("retired column %q has count %d", n, counts[i])
						}
						colMap[i] = -1 // zero-count column: Merge must skip it
					}
				}
				merged.Merge(shardCounts[sh], colMap)
				mergedPairs.Merge(shardPairs[sh], colMap)
			}

			if merged.Subjects() != union.Subjects() {
				t.Fatalf("subjects = %d, want %d", merged.Subjects(), union.Subjects())
			}
			if merged.Ones() != union.Ones() {
				t.Fatalf("ones = %d, want %d", merged.Ones(), union.Ones())
			}
			for i := 0; i < nProps; i++ {
				if merged.Counts()[i] != union.Counts()[i] {
					t.Fatalf("N_p[%d] = %d, want %d", i, merged.Counts()[i], union.Counts()[i])
				}
				for j := 0; j < nProps; j++ {
					if got, want := mergedPairs.Both(i, j), unionPairs.Both(i, j); got != want {
						t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
					}
				}
			}
			// The closed forms must agree exactly, not just the raw counts.
			for _, fn := range []CountsFunc{CovFunc().(CountsFunc), SimFunc().(CountsFunc)} {
				got, want := merged.Eval(fn), union.Eval(fn)
				if got.Fav.Cmp(want.Fav) != 0 || got.Tot.Cmp(want.Tot) != 0 {
					t.Fatalf("%s: merged %v, want %v", fn.Name(), got, want)
				}
			}
		})
	}
}
