package rules

import (
	"fmt"

	"repro/internal/matrix"
)

// This file defines the compiled σ-evaluator contract: measures whose
// value on any view is a function of three aggregates — the
// per-property subject counts N_p, the pairwise co-occurrence counts
// C[p1][p2], and the subject count |S|. Following the associative-array
// view of graph measures (D4M), every two-variable rule of the language
// reduces to arithmetic over these aggregates, so evaluating σDep,
// σSymDep or any compiled rule costs a handful of array reads instead
// of a signature scan or a rough-assignment enumeration. The aggregates
// themselves are maintained incrementally: matrix.View memoizes them
// per view, refine delta-updates them per local-search move, and
// rules.PairTracker/internal/incr keep them live under ingestion.

// PairCounts is read access to a pairwise co-occurrence aggregate with
// name-keyed columns: Both(i, j) is the number of subjects having both
// property columns i and j (N_p on the diagonal), and Column resolves a
// property name to its index in the same column space as the N_p vector
// handed to EvalPairCounts. matrix.PairCounts implements it for views;
// internal/refine and internal/incr provide delta-maintained
// implementations for local-search groups and live datasets.
type PairCounts interface {
	// Column resolves a property name to its column index.
	Column(p string) (int, bool)
	// Both returns the number of subjects having both column i and j.
	Both(i, j int) int64
}

// PairCountsFunc is implemented by measures whose value on any view is
// a function of (N_p, C, |S|) alone — the two-variable analogue of
// CountsFunc. It is the contract behind delta-scoring dependency
// measures in local search and O(1) σ reads on live datasets: callers
// maintain the aggregates incrementally and re-evaluate the kernel
// without materializing subset views.
type PairCountsFunc interface {
	Func
	// EvalPairCounts computes σ of a (sub-)dataset from its per-property
	// subject counts, its pairwise co-occurrence counts and its subject
	// count. propCounts and pairCounts share one column space (pairCounts
	// .Column resolves names into it). It must agree exactly — as a
	// Ratio, not merely as a float — with Eval on the corresponding
	// view. The counts slice is read-only.
	EvalPairCounts(propCounts []int64, pairCounts PairCounts, subjects int64) Ratio
}

// PairDemands is optionally implemented by PairCountsFuncs whose
// EvalPairCounts reads only a fixed set of co-occurrence entries —
// true of σDep/σSymDep/σDepDisj (one entry each) and of compiled rules
// whose antecedent pins both variables' properties. Callers use it to
// maintain only the demanded entries: the local-search engine tracks
// one running count per demanded pair per sort, making relocation
// moves under dependency measures O(|P|).
type PairDemands interface {
	// NeededPairs returns the property-name pairs EvalPairCounts may
	// read, or nil when it may read arbitrary pairs.
	NeededPairs() [][2]string
}

// pairColumns resolves both endpoints of a dependency measure against
// the aggregate's column space, mirroring the view-based closed forms'
// vacuity rules: either column missing or empty ⇒ no total cases.
func pairColumns(pc PairCounts, propCounts []int64, p1, p2 string) (i, j int, ok bool) {
	i, ok1 := pc.Column(p1)
	j, ok2 := pc.Column(p2)
	if !ok1 || !ok2 || propCounts[i] == 0 || propCounts[j] == 0 {
		return 0, 0, false
	}
	return i, j, true
}

// depFunc is σDep[p1,p2] with a pair-counts kernel.
type depFunc struct{ p1, p2 string }

func (f depFunc) Name() string { return fmt.Sprintf("Dep[%s,%s]", f.p1, f.p2) }

func (f depFunc) Eval(v *matrix.View) (Ratio, error) { return Dep(v, f.p1, f.p2), nil }

// EvalPairCounts mirrors Dep: both(p1,p2) / N_{p1}.
func (f depFunc) EvalPairCounts(propCounts []int64, pc PairCounts, subjects int64) Ratio {
	i, j, ok := pairColumns(pc, propCounts, f.p1, f.p2)
	if !ok {
		return NewRatio(0, 0)
	}
	return NewRatio(pc.Both(i, j), propCounts[i])
}

func (f depFunc) NeededPairs() [][2]string { return [][2]string{{f.p1, f.p2}} }

// symDepFunc is σSymDep[p1,p2] with a pair-counts kernel.
type symDepFunc struct{ p1, p2 string }

func (f symDepFunc) Name() string { return fmt.Sprintf("SymDep[%s,%s]", f.p1, f.p2) }

func (f symDepFunc) Eval(v *matrix.View) (Ratio, error) { return SymDep(v, f.p1, f.p2), nil }

// EvalPairCounts mirrors SymDep: both / (N_{p1} + N_{p2} − both).
func (f symDepFunc) EvalPairCounts(propCounts []int64, pc PairCounts, subjects int64) Ratio {
	i, j, ok := pairColumns(pc, propCounts, f.p1, f.p2)
	if !ok {
		return NewRatio(0, 0)
	}
	both := pc.Both(i, j)
	return NewRatio(both, propCounts[i]+propCounts[j]-both)
}

func (f symDepFunc) NeededPairs() [][2]string { return [][2]string{{f.p1, f.p2}} }

// depDisjFunc is σDepDisj[p1,p2] with a pair-counts kernel.
type depDisjFunc struct{ p1, p2 string }

func (f depDisjFunc) Name() string { return fmt.Sprintf("DepDisj[%s,%s]", f.p1, f.p2) }

func (f depDisjFunc) Eval(v *matrix.View) (Ratio, error) { return DepDisjEval(v, f.p1, f.p2), nil }

// EvalPairCounts mirrors DepDisjEval: (|S| − N_{p1} + both) / |S|.
func (f depDisjFunc) EvalPairCounts(propCounts []int64, pc PairCounts, subjects int64) Ratio {
	i, j, ok := pairColumns(pc, propCounts, f.p1, f.p2)
	if !ok {
		return NewRatio(0, 0)
	}
	return NewRatio(subjects-propCounts[i]+pc.Both(i, j), subjects)
}

func (f depDisjFunc) NeededPairs() [][2]string { return [][2]string{{f.p1, f.p2}} }
