package rules

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/matrix"
)

// mkView builds a view from rows of 0/1 strings; row i repeated
// counts[i] times (counts nil ⇒ all 1).
func mkView(t testing.TB, props []string, rows []string, counts []int) *matrix.View {
	t.Helper()
	var sigs []matrix.Signature
	for i, r := range rows {
		b := bitset.New(len(props))
		for j := range r {
			if r[j] == '1' {
				b.Set(j)
			}
		}
		c := 1
		if counts != nil {
			c = counts[i]
		}
		sigs = append(sigs, matrix.Signature{Bits: b, Count: c})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"c = c -> val(c) = 1",
		"!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1",
		"subj(c1) = subj(c2) && prop(c1) = <p1> && prop(c2) = <p2> && val(c1) = 1 -> val(c2) = 1",
		"subj(c1)=subj(c2) && prop(c1)=<p1> && prop(c2)=<p2> -> val(c1)=0 || val(c2)=1",
		"val(c1) = val(c2) || subj(c) = <http://ex/s> -> val(c) = 0",
		"prop(c) != <http://ex/p> -> val(c) = 1",
	}
	for _, src := range cases {
		r, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		r2, err := Parse(r.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, r.String(), err)
		}
		if r.String() != r2.String() {
			t.Fatalf("round trip mismatch: %q vs %q", r.String(), r2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"val(c) = 1",                     // no arrow
		"val(c) = 1 -> val(d) = 1",       // consequent var not in antecedent
		"val(c) = 2 -> val(c) = 1",       // bad constant
		"val(c) = prop(c) -> val(c) = 1", // type mismatch
		"c = c -> val(c) = 1 extra",      // trailing tokens
		"prop(c) = <unterminated -> val(c) = 1",
		"c = c -> c = ",
		"(c = c -> val(c) = 1",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseSugar(t *testing.T) {
	// != sugar and bare identifier URIs.
	r, err := Parse("prop(c) != deathDate -> val(c) = 1")
	if err != nil {
		t.Fatal(err)
	}
	want := "!(prop(c)=<deathDate>) -> val(c)=1"
	if r.String() != want {
		t.Fatalf("got %q, want %q", r.String(), want)
	}
}

// Figure 1 of the paper: D1 (N subjects, all with property p),
// D2 = D1 + one subject also has q, D3 = diagonal.
func TestPaperFigure1(t *testing.T) {
	const n = 100
	// D1: single column all ones.
	d1 := mkView(t, []string{"p"}, []string{"1"}, []int{n})
	if got := Coverage(d1).Value(); got != 1 {
		t.Fatalf("σCov(D1) = %v, want 1", got)
	}
	if got := Similarity(d1).Value(); got != 1 {
		t.Fatalf("σSim(D1) = %v, want 1", got)
	}

	// D2: everyone has p; one subject also has q.
	d2 := mkView(t, []string{"p", "q"}, []string{"11", "10"}, []int{1, n - 1})
	cov := Coverage(d2).Value()
	if cov < 0.5 || cov > 0.51 {
		t.Fatalf("σCov(D2) = %v, want ≈ 0.5", cov)
	}
	sim := Similarity(d2).Value()
	if sim < 0.97 {
		t.Fatalf("σSim(D2) = %v, want ≈ 1", sim)
	}

	// D3: diagonal, each subject its own property.
	props := make([]string, 20)
	rows := make([]string, 20)
	for i := range props {
		props[i] = string(rune('a' + i))
		b := make([]byte, 20)
		for j := range b {
			b[j] = '0'
		}
		b[i] = '1'
		rows[i] = string(b)
	}
	d3 := mkView(t, props, rows, nil)
	if got := Similarity(d3).Value(); got != 0 {
		t.Fatalf("σSim(D3) = %v, want 0", got)
	}
	if got := Coverage(d3).Value(); got != 1.0/20 {
		t.Fatalf("σCov(D3) = %v, want 0.05", got)
	}
}

func TestDepAndSymDepClosedForms(t *testing.T) {
	// 10 with both, 5 with p1 only, 3 with p2 only, 2 with neither (but a third property).
	v := mkView(t, []string{"p1", "p2", "x"},
		[]string{"110", "100", "010", "001"}, []int{10, 5, 3, 2})
	if got := Dep(v, "p1", "p2").Value(); got != 10.0/15 {
		t.Fatalf("Dep = %v, want 2/3", got)
	}
	if got := Dep(v, "p2", "p1").Value(); got != 10.0/13 {
		t.Fatalf("Dep rev = %v", got)
	}
	if got := SymDep(v, "p1", "p2").Value(); got != 10.0/18 {
		t.Fatalf("SymDep = %v, want 10/18", got)
	}
	// Vacuous when a column is unused.
	v2 := mkView(t, []string{"p1", "p2"}, []string{"10"}, []int{4})
	if got := Dep(v2, "p1", "p2").Value(); got != 1 {
		t.Fatalf("Dep with missing column = %v, want 1 (vacuous)", got)
	}
	if got := SymDep(v2, "p1", "p2").Value(); got != 1 {
		t.Fatalf("SymDep with missing column = %v, want 1 (vacuous)", got)
	}
	if got := Dep(v2, "p1", "nosuch").Value(); got != 1 {
		t.Fatalf("Dep with absent property = %v, want 1", got)
	}
}

// randomView produces a small random view for cross-checking evaluators.
func randomView(t testing.TB, rng *rand.Rand, maxProps, maxSigs, maxCount int) *matrix.View {
	nProps := rng.Intn(maxProps) + 1
	props := make([]string, nProps)
	for i := range props {
		props[i] = "p" + string(rune('0'+i))
	}
	nSigs := rng.Intn(maxSigs) + 1
	rows := make([]string, nSigs)
	counts := make([]int, nSigs)
	for i := range rows {
		b := make([]byte, nProps)
		for j := range b {
			b[j] = byte('0' + rng.Intn(2))
		}
		rows[i] = string(b)
		counts[i] = rng.Intn(maxCount) + 1
	}
	return mkView(t, props, rows, counts)
}

// The generic rough-assignment evaluator must agree exactly with the
// naive per-subject evaluator for every rule of the language.
func TestQuickRoughMatchesNaive(t *testing.T) {
	ruleSrcs := []string{
		"c = c -> val(c) = 1",
		"!(c1 = c2) && prop(c1) = prop(c2) && val(c1) = 1 -> val(c2) = 1",
		"subj(c1) = subj(c2) && prop(c1) = <p0> && prop(c2) = <p1> && val(c1) = 1 -> val(c2) = 1",
		"subj(c1) = subj(c2) && prop(c1) = <p0> && prop(c2) = <p1> && (val(c1) = 1 || val(c2) = 1) -> val(c1) = 1 && val(c2) = 1",
		"subj(c1) = subj(c2) && prop(c1) = <p0> && prop(c2) = <p1> -> val(c1) = 0 || val(c2) = 1",
		"val(c1) = val(c2) -> subj(c1) = subj(c2)",
		"!(subj(c1) = subj(c2)) && val(c1) = 1 -> val(c2) = 0",
		"prop(c) != <p0> -> val(c) = 1",
	}
	rulesParsed := make([]*Rule, len(ruleSrcs))
	for i, s := range ruleSrcs {
		rulesParsed[i] = MustParse(s)
	}
	f := func(seed int64, ruleIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := rulesParsed[int(ruleIdx)%len(rulesParsed)]
		v := randomView(t, rng, 3, 3, 3)
		naive, err := EvalNaive(r, v)
		if err != nil {
			return false
		}
		rough, err := Evaluate(r, v)
		if err != nil {
			return false
		}
		return naive.Fav.Cmp(rough.Fav) == 0 && naive.Tot.Cmp(rough.Tot) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Closed forms must agree exactly with the generic evaluator.
func TestQuickClosedFormsMatchGeneric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomView(t, rng, 4, 5, 50)
		pairs := [][2]Ratio{}
		g1, err := Evaluate(CovRule(), v)
		if err != nil {
			return false
		}
		pairs = append(pairs, [2]Ratio{Coverage(v), g1})
		g2, err := Evaluate(SimRule(), v)
		if err != nil {
			return false
		}
		pairs = append(pairs, [2]Ratio{Similarity(v), g2})
		if v.NumProperties() >= 2 {
			p1, p2 := v.Properties()[0], v.Properties()[1]
			g3, err := Evaluate(DepRule(p1, p2), v)
			if err != nil {
				return false
			}
			pairs = append(pairs, [2]Ratio{Dep(v, p1, p2), g3})
			g4, err := Evaluate(SymDepRule(p1, p2), v)
			if err != nil {
				return false
			}
			pairs = append(pairs, [2]Ratio{SymDep(v, p1, p2), g4})
		}
		for _, pr := range pairs {
			a, b := pr[0], pr[1]
			// Compare as exact fractions (both may be vacuous).
			if (a.Tot.Sign() == 0) != (b.Tot.Sign() == 0) {
				return false
			}
			if a.Tot.Sign() == 0 {
				continue
			}
			// a.Fav·b.Tot == b.Fav·a.Tot
			l := new(big.Int).Mul(a.Fav, b.Tot)
			r := new(big.Int).Mul(b.Fav, a.Tot)
			if l.Cmp(r) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageIgnoring(t *testing.T) {
	v := mkView(t, []string{"a", "b"}, []string{"10", "11"}, []int{3, 1})
	// Ignoring b: column a has 4/4 ones.
	if got := CoverageIgnoring(v, "b").Value(); got != 1 {
		t.Fatalf("CoverageIgnoring = %v, want 1", got)
	}
	// Matches the rule variant evaluated generically.
	r := CovRuleIgnoring("b")
	g, err := Evaluate(r, v)
	if err != nil {
		t.Fatal(err)
	}
	if g.Value() != 1 {
		t.Fatalf("generic Cov-ignoring = %v, want 1", g.Value())
	}
}

func TestFuncForRuleDetection(t *testing.T) {
	cases := []struct {
		rule *Rule
		want string
	}{
		{CovRule(), "Cov"},
		{SimRule(), "Sim"},
		{DepRule("a", "b"), "Dep[a,b]"},
		{SymDepRule("a", "b"), "SymDep[a,b]"},
	}
	for _, c := range cases {
		if got := FuncForRule(c.rule).Name(); got != c.want {
			t.Errorf("FuncForRule(%s) = %q, want %q", c.rule, got, c.want)
		}
	}
	// An unrecognized rule within the compiler's fragment lowers to an
	// aggregate kernel rather than the generic evaluator.
	odd := MustParse("val(c) = 1 -> val(c) = 1")
	if _, ok := FuncForRule(odd).(CountsFunc); !ok {
		t.Errorf("compilable 1-var rule not lowered to a CountsFunc")
	}
	// Beyond the two-variable fragment the generic evaluator remains.
	wide := MustParse("val(c1) = 1 && val(c2) = 1 && val(c3) = 1 -> val(c1) = 1")
	if _, ok := FuncForRule(wide).(RuleFunc); !ok {
		t.Errorf("3-variable rule not wrapped as RuleFunc")
	}
}

func TestRatioAtLeast(t *testing.T) {
	r := NewRatio(9, 10)
	if !r.AtLeast(9, 10) || !r.AtLeast(89, 100) || r.AtLeast(91, 100) {
		t.Fatal("AtLeast wrong")
	}
	if !NewRatio(0, 0).AtLeast(1, 1) {
		t.Fatal("vacuous ratio should satisfy any threshold")
	}
}

func TestSubjConstRejectedByRough(t *testing.T) {
	r := MustParse("subj(c) = <http://ex/s> -> val(c) = 1")
	v := mkView(t, []string{"a"}, []string{"1"}, []int{2})
	if _, err := Evaluate(r, v); err == nil {
		t.Fatal("Evaluate accepted subj(·)=constant rule")
	}
}

func TestVacuousRuleIsOne(t *testing.T) {
	// Antecedent unsatisfiable: prop(c) = absent property.
	r := MustParse("prop(c) = <nosuch> -> val(c) = 1")
	v := mkView(t, []string{"a"}, []string{"1"}, []int{2})
	got, err := Evaluate(r, v)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value() != 1 {
		t.Fatalf("vacuous σ = %v, want 1", got.Value())
	}
}

func BenchmarkEvaluateSim64Sigs(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	v := randomView(b, rng, 8, 64, 10000)
	r := SimRule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(r, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosedSim64Sigs(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	v := randomView(b, rng, 8, 64, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Similarity(v)
	}
}
