package rules

import "fmt"

// CountTracker maintains the Σ-count state behind the closed-form
// structuredness measures — the per-property subject counts N_p, the
// subject count |S|, and the total 1-entries of M(D) — under
// incremental updates. It is the rules-layer half of the incremental
// structuredness engine: internal/incr feeds it property gain/loss and
// subject appear/disappear events as triples arrive and retract, and
// any CountsFunc (σCov, σSim) evaluates against the live counts in
// O(|P|) without rebuilding a view.
type CountTracker struct {
	counts   []int64
	subjects int64
	ones     int64
}

// NewCountTracker returns a tracker over nProps property columns.
func NewCountTracker(nProps int) *CountTracker {
	return &CountTracker{counts: make([]int64, nProps)}
}

// Grow extends the tracker to nProps columns (new columns start at 0).
// Shrinking is not supported: retired properties keep a zero column,
// which no closed-form measure observes.
func (t *CountTracker) Grow(nProps int) {
	for len(t.counts) < nProps {
		t.counts = append(t.counts, 0)
	}
}

// Gain records that one more subject has property column i.
func (t *CountTracker) Gain(i int) {
	t.counts[i]++
	t.ones++
}

// Lose records that one fewer subject has property column i.
func (t *CountTracker) Lose(i int) {
	if t.counts[i] == 0 {
		panic(fmt.Sprintf("rules: Lose on zero-count column %d", i))
	}
	t.counts[i]--
	t.ones--
}

// AddSubjects adjusts |S| by delta (use −1 for a retired subject).
func (t *CountTracker) AddSubjects(delta int64) {
	t.subjects += delta
	if t.subjects < 0 {
		panic("rules: negative subject count")
	}
}

// Counts returns the live N_p vector. Read-only; valid until the next
// mutation.
func (t *CountTracker) Counts() []int64 { return t.counts }

// Subjects returns |S|.
func (t *CountTracker) Subjects() int64 { return t.subjects }

// Ones returns Σ_p N_p, the number of 1-entries of the live M(D).
func (t *CountTracker) Ones() int64 { return t.ones }

// NumProps returns the number of tracked columns.
func (t *CountTracker) NumProps() int { return len(t.counts) }

// Eval computes σ of the live dataset under fn. Zero-count columns
// contribute nothing to either closed form, so retired properties need
// no compaction.
func (t *CountTracker) Eval(fn CountsFunc) Ratio {
	return fn.EvalCounts(t.counts, t.subjects)
}

// Clone returns an independent copy (used to snapshot σ at the last
// refinement for drift policies).
func (t *CountTracker) Clone() *CountTracker {
	return &CountTracker{
		counts:   append([]int64(nil), t.counts...),
		subjects: t.subjects,
		ones:     t.ones,
	}
}

// Merge adds other's aggregates into t: N_p, |S| and the 1-entry total
// all sum. This is the additive union of two subject-disjoint datasets'
// Σ-counts — exact because a subject contributes its N_p increments and
// its |S| unit to exactly one side. colMap translates other's column i
// into t's column space; a zero-count column of other (retired, never
// observed by any closed form) may map to -1 and is skipped.
func (t *CountTracker) Merge(other *CountTracker, colMap []int) {
	for i, c := range other.counts {
		if c != 0 {
			t.counts[colMap[i]] += c
			t.ones += c
		}
	}
	t.subjects += other.subjects
}

// PairTracker maintains the pairwise co-occurrence counts C[p1][p2] —
// the aggregate behind the compiled two-variable evaluators — under
// incremental updates. It is the pair-count half of the Σ-count state:
// internal/incr feeds it column-set transitions as subjects migrate
// between signature sets, and any PairCountsFunc (σDep, σSymDep,
// compiled rules) evaluates against the live matrix in O(1) per read
// without rebuilding a view. The diagonal carries N_p, mirroring
// matrix.PairCounts.
//
// Columns follow the same append-only space as CountTracker: retired
// columns keep zero rows, which no kernel observes (their N_p is 0).
type PairTracker struct {
	c [][]int64 // square, symmetric; c[i][j] = subjects with both i and j
}

// NewPairTracker returns a tracker over nProps property columns.
func NewPairTracker(nProps int) *PairTracker {
	t := &PairTracker{}
	t.Grow(nProps)
	return t
}

// Grow extends the tracker to nProps columns (new columns start at 0).
func (t *PairTracker) Grow(nProps int) {
	for i := range t.c {
		for len(t.c[i]) < nProps {
			t.c[i] = append(t.c[i], 0)
		}
	}
	for len(t.c) < nProps {
		t.c = append(t.c, make([]int64, nProps))
	}
}

// NumProps returns the number of tracked columns.
func (t *PairTracker) NumProps() int { return len(t.c) }

// Both returns the number of subjects having both column i and j.
func (t *PairTracker) Both(i, j int) int64 { return t.c[i][j] }

// AddCol records that a subject whose property set is cols gained
// column c (c ∉ cols): the diagonal and every (c, x) pair increment.
// The cost is O(|cols|) — proportional to the subject's property
// count, like CountTracker's per-transition work.
func (t *PairTracker) AddCol(cols []int, c int) {
	t.c[c][c]++
	for _, x := range cols {
		t.c[c][x]++
		t.c[x][c]++
	}
}

// Merge adds other's co-occurrence matrix into t — the additive union
// of two subject-disjoint datasets' pair aggregates. Exact for the same
// reason CountTracker.Merge is: each subject's co-occurrence pairs live
// wholly on one side, so every C[p1][p2] entry (diagonal N_p included)
// sums. colMap translates other's column i into t's column space; a
// column whose entries are all zero (retired — its N_p is 0, and a
// subject having a pair has both members, so all its pair entries are 0
// too) may map to -1 and is skipped.
func (t *PairTracker) Merge(other *PairTracker, colMap []int) {
	for i, row := range other.c {
		for j, c := range row {
			if c != 0 {
				t.c[colMap[i]][colMap[j]] += c
			}
		}
	}
}

// RemoveCol records that a subject whose property set is now cols
// (after the loss) lost column c.
func (t *PairTracker) RemoveCol(cols []int, c int) {
	t.c[c][c]--
	if t.c[c][c] < 0 {
		panic(fmt.Sprintf("rules: RemoveCol on zero-count column %d", c))
	}
	for _, x := range cols {
		t.c[c][x]--
		t.c[x][c]--
		if t.c[c][x] < 0 {
			panic(fmt.Sprintf("rules: negative pair count (%d,%d)", c, x))
		}
	}
}
