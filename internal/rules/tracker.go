package rules

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// CountTracker maintains the Σ-count state behind the closed-form
// structuredness measures — the per-property subject counts N_p, the
// subject count |S|, and the total 1-entries of M(D) — under
// incremental updates. It is the rules-layer half of the incremental
// structuredness engine: internal/incr feeds it property gain/loss and
// subject appear/disappear events as triples arrive and retract, and
// any CountsFunc (σCov, σSim) evaluates against the live counts in
// O(|P|) without rebuilding a view.
type CountTracker struct {
	counts   []int64
	subjects int64
	ones     int64
}

// NewCountTracker returns a tracker over nProps property columns.
func NewCountTracker(nProps int) *CountTracker {
	return &CountTracker{counts: make([]int64, nProps)}
}

// Grow extends the tracker to nProps columns (new columns start at 0).
// Shrinking is not supported: retired properties keep a zero column,
// which no closed-form measure observes.
func (t *CountTracker) Grow(nProps int) {
	for len(t.counts) < nProps {
		t.counts = append(t.counts, 0)
	}
}

// Gain records that one more subject has property column i.
func (t *CountTracker) Gain(i int) {
	t.counts[i]++
	t.ones++
}

// Lose records that one fewer subject has property column i.
func (t *CountTracker) Lose(i int) {
	if t.counts[i] == 0 {
		panic(fmt.Sprintf("rules: Lose on zero-count column %d", i))
	}
	t.counts[i]--
	t.ones--
}

// AddSubjects adjusts |S| by delta (use −1 for a retired subject).
func (t *CountTracker) AddSubjects(delta int64) {
	t.subjects += delta
	if t.subjects < 0 {
		panic("rules: negative subject count")
	}
}

// Counts returns the live N_p vector. Read-only; valid until the next
// mutation.
func (t *CountTracker) Counts() []int64 { return t.counts }

// Subjects returns |S|.
func (t *CountTracker) Subjects() int64 { return t.subjects }

// Ones returns Σ_p N_p, the number of 1-entries of the live M(D).
func (t *CountTracker) Ones() int64 { return t.ones }

// NumProps returns the number of tracked columns.
func (t *CountTracker) NumProps() int { return len(t.counts) }

// Eval computes σ of the live dataset under fn. Zero-count columns
// contribute nothing to either closed form, so retired properties need
// no compaction.
func (t *CountTracker) Eval(fn CountsFunc) Ratio {
	return fn.EvalCounts(t.counts, t.subjects)
}

// Clone returns an independent copy (used to snapshot σ at the last
// refinement for drift policies).
func (t *CountTracker) Clone() *CountTracker {
	return &CountTracker{
		counts:   append([]int64(nil), t.counts...),
		subjects: t.subjects,
		ones:     t.ones,
	}
}

// Merge adds other's aggregates into t: N_p, |S| and the 1-entry total
// all sum. This is the additive union of two subject-disjoint datasets'
// Σ-counts — exact because a subject contributes its N_p increments and
// its |S| unit to exactly one side. colMap translates other's column i
// into t's column space; a zero-count column of other (retired, never
// observed by any closed form) may map to -1 and is skipped.
func (t *CountTracker) Merge(other *CountTracker, colMap []int) {
	for i, c := range other.counts {
		if c != 0 {
			t.counts[colMap[i]] += c
			t.ones += c
		}
	}
	t.subjects += other.subjects
}

// PairTracker maintains the pairwise co-occurrence counts C[p1][p2] —
// the aggregate behind the compiled two-variable evaluators — under
// incremental updates. It is the pair-count half of the Σ-count state:
// internal/incr feeds it column-set transitions as subjects migrate
// between signature sets, and any PairCountsFunc (σDep, σSymDep,
// compiled rules) evaluates against the live matrix in O(1) per read
// without rebuilding a view. The diagonal carries N_p, mirroring
// matrix.PairCounts.
//
// Storage is adaptive, mirroring matrix.PairCounts: up to
// pairTrackerDenseMax columns the matrix is dense rows (O(1) reads and
// updates); above that it switches to sorted sparse (column, count)
// rows holding only non-zeros, so a wide schema costs O(live pairs)
// instead of 8·|P|² bytes. Entries that decrement to zero are removed,
// keeping the sparse form canonical: the binary encoding — which
// iterates non-zero upper-triangle entries row-major — is byte-
// identical across modes for equal logical state. The bitset storage
// policy forces a mode in tests; Grow converts in place when the mode
// changes, preserving every entry exactly.
//
// Columns follow the same append-only space as CountTracker: retired
// columns keep zero rows, which no kernel observes (their N_p is 0).
type PairTracker struct {
	n int
	// dense mode: square symmetric matrix; nil in sparse mode.
	c [][]int64
	// sparse mode: per-row non-zero entries, cols sorted ascending.
	// Symmetric entries are stored on both rows, like the dense form.
	rows []pairRow
}

type pairRow struct {
	cols []int32
	vals []int64
}

// pairTrackerDenseMax is the widest live schema kept on dense rows.
const pairTrackerDenseMax = 1024

// useSparseTracker applies the storage policy on top of the size bound.
func useSparseTracker(nProps int) bool {
	switch bitset.CurrentPolicy() {
	case bitset.PolicyDense:
		return false
	case bitset.PolicySparse:
		return true
	}
	return nProps > pairTrackerDenseMax
}

// NewPairTracker returns a tracker over nProps property columns.
func NewPairTracker(nProps int) *PairTracker {
	t := &PairTracker{}
	t.Grow(nProps)
	return t
}

// Grow extends the tracker to nProps columns (new columns start at 0),
// converting the storage mode if the policy/size bound now prefers the
// other one.
func (t *PairTracker) Grow(nProps int) {
	if nProps < t.n {
		nProps = t.n
	}
	wantSparse := useSparseTracker(nProps)
	if t.n == 0 && t.c == nil && t.rows == nil {
		// Fresh tracker: adopt the desired mode directly.
		if !wantSparse {
			t.c = make([][]int64, 0, nProps)
		}
	}
	if wantSparse != (t.c == nil) {
		t.convert(wantSparse)
	}
	if t.c != nil {
		for i := range t.c {
			for len(t.c[i]) < nProps {
				t.c[i] = append(t.c[i], 0)
			}
		}
		for len(t.c) < nProps {
			t.c = append(t.c, make([]int64, nProps))
		}
	} else {
		for len(t.rows) < nProps {
			t.rows = append(t.rows, pairRow{})
		}
	}
	t.n = nProps
}

// convert rewrites the storage into the other mode, preserving every
// entry exactly.
func (t *PairTracker) convert(toSparse bool) {
	if toSparse {
		rows := make([]pairRow, t.n)
		for i, row := range t.c {
			for j, v := range row {
				if v != 0 {
					rows[i].cols = append(rows[i].cols, int32(j))
					rows[i].vals = append(rows[i].vals, v)
				}
			}
		}
		t.c, t.rows = nil, rows
		return
	}
	c := make([][]int64, t.n)
	for i := range c {
		c[i] = make([]int64, t.n)
	}
	for i, row := range t.rows {
		for k, j := range row.cols {
			c[i][j] = row.vals[k]
		}
	}
	t.c, t.rows = c, nil
}

// NumProps returns the number of tracked columns.
func (t *PairTracker) NumProps() int { return t.n }

// Both returns the number of subjects having both column i and j.
func (t *PairTracker) Both(i, j int) int64 {
	if t.c != nil {
		return t.c[i][j]
	}
	r := &t.rows[i]
	k := sort.Search(len(r.cols), func(k int) bool { return r.cols[k] >= int32(j) })
	if k < len(r.cols) && r.cols[k] == int32(j) {
		return r.vals[k]
	}
	return 0
}

// add adjusts entry (i, j) by delta in sparse mode, inserting new
// entries in column order and deleting entries that reach zero (the
// canonical-form invariant the codec relies on). Panics on negative
// results like the dense decrements do.
func (r *pairRow) add(i, j int, delta int64) {
	k := sort.Search(len(r.cols), func(k int) bool { return r.cols[k] >= int32(j) })
	if k < len(r.cols) && r.cols[k] == int32(j) {
		r.vals[k] += delta
		switch {
		case r.vals[k] == 0:
			r.cols = append(r.cols[:k], r.cols[k+1:]...)
			r.vals = append(r.vals[:k], r.vals[k+1:]...)
		case r.vals[k] < 0:
			panic(fmt.Sprintf("rules: negative pair count (%d,%d)", i, j))
		}
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("rules: negative pair count (%d,%d)", i, j))
	}
	r.cols = append(r.cols, 0)
	copy(r.cols[k+1:], r.cols[k:])
	r.cols[k] = int32(j)
	r.vals = append(r.vals, 0)
	copy(r.vals[k+1:], r.vals[k:])
	r.vals[k] = delta
}

// addSym adjusts the symmetric entry pair (i, j)/(j, i) by delta.
func (t *PairTracker) addSym(i, j int, delta int64) {
	t.rows[i].add(i, j, delta)
	if i != j {
		t.rows[j].add(j, i, delta)
	}
}

// AddCol records that a subject whose property set is cols gained
// column c (c ∉ cols): the diagonal and every (c, x) pair increment.
// The cost is O(|cols|) dense — proportional to the subject's property
// count, like CountTracker's per-transition work — and
// O(|cols|·log row) sparse.
func (t *PairTracker) AddCol(cols []int, c int) {
	if t.c != nil {
		t.c[c][c]++
		for _, x := range cols {
			t.c[c][x]++
			t.c[x][c]++
		}
		return
	}
	t.addSym(c, c, 1)
	for _, x := range cols {
		t.addSym(c, x, 1)
	}
}

// forEachNonZero calls f with every non-zero entry (both triangles,
// diagonal included) in row-major order.
func (t *PairTracker) forEachNonZero(f func(i, j int, v int64)) {
	if t.c != nil {
		for i, row := range t.c {
			for j, v := range row {
				if v != 0 {
					f(i, j, v)
				}
			}
		}
		return
	}
	for i := range t.rows {
		r := &t.rows[i]
		for k, j := range r.cols {
			f(i, int(j), r.vals[k])
		}
	}
}

// Merge adds other's co-occurrence matrix into t — the additive union
// of two subject-disjoint datasets' pair aggregates. Exact for the same
// reason CountTracker.Merge is: each subject's co-occurrence pairs live
// wholly on one side, so every C[p1][p2] entry (diagonal N_p included)
// sums. The inputs may use different storage modes. colMap translates
// other's column i into t's column space; a column whose entries are
// all zero (retired — its N_p is 0, and a subject having a pair has
// both members, so all its pair entries are 0 too) may map to -1 and is
// skipped.
func (t *PairTracker) Merge(other *PairTracker, colMap []int) {
	other.forEachNonZero(func(i, j int, v int64) {
		mi, mj := colMap[i], colMap[j]
		if t.c != nil {
			t.c[mi][mj] += v
			return
		}
		t.rows[mi].add(mi, mj, v)
	})
}

// RemoveCol records that a subject whose property set is now cols
// (after the loss) lost column c.
func (t *PairTracker) RemoveCol(cols []int, c int) {
	if t.c != nil {
		t.c[c][c]--
		if t.c[c][c] < 0 {
			panic(fmt.Sprintf("rules: RemoveCol on zero-count column %d", c))
		}
		for _, x := range cols {
			t.c[c][x]--
			t.c[x][c]--
			if t.c[c][x] < 0 {
				panic(fmt.Sprintf("rules: negative pair count (%d,%d)", c, x))
			}
		}
		return
	}
	t.addSym(c, c, -1)
	for _, x := range cols {
		t.addSym(c, x, -1)
	}
}

// MemSize estimates the tracker's heap footprint in bytes.
func (t *PairTracker) MemSize() int64 {
	if t.c != nil {
		return int64(t.n) * int64(t.n) * 8
	}
	var b int64
	for i := range t.rows {
		b += 24 + int64(len(t.rows[i].cols))*4 + int64(len(t.rows[i].vals))*8
	}
	return b
}

// IsSparse reports whether the tracker currently uses sparse rows.
func (t *PairTracker) IsSparse() bool { return t.c == nil }
