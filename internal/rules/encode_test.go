package rules

import (
	"testing"
)

func TestCountTrackerEncodeRoundTrip(t *testing.T) {
	tr := NewCountTracker(3)
	tr.AddSubjects(4)
	for i := 0; i < 4; i++ {
		tr.Gain(0)
	}
	tr.Gain(1)
	tr.Gain(1)
	tr.Gain(2)

	enc := tr.AppendBinary(nil)
	got, err := DecodeCountTracker(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(tr) {
		t.Fatalf("round trip diverges: got %+v want %+v", got, tr)
	}
	// Encoding is canonical: same state, same bytes.
	if string(got.AppendBinary(nil)) != string(enc) {
		t.Fatal("re-encoding is not canonical")
	}
}

func TestCountTrackerDecodeRejectsDamage(t *testing.T) {
	tr := NewCountTracker(2)
	tr.AddSubjects(2)
	tr.Gain(0)
	tr.Gain(0)
	enc := tr.AppendBinary(nil)

	if _, err := DecodeCountTracker(append(enc[:len(enc):len(enc)], 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeCountTracker(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	// Inconsistent ones vs counts: the layout is n, subjects, ones,
	// counts...; with small values each field is one varint byte.
	bad := append([]byte(nil), enc...)
	bad[2]++
	if _, err := DecodeCountTracker(bad); err == nil {
		t.Fatal("ones/counts mismatch accepted")
	}
}

func TestPairTrackerEncodeRoundTrip(t *testing.T) {
	pt := NewPairTracker(3)
	pt.AddCol(nil, 0)         // subject A gains p0
	pt.AddCol([]int{0}, 1)    // A gains p1
	pt.AddCol([]int{0, 1}, 2) // A gains p2
	pt.AddCol(nil, 1)         // subject B gains p1

	enc := pt.AppendBinary(nil)
	got, err := DecodePairTracker(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(pt) {
		t.Fatal("round trip diverges")
	}
	if string(got.AppendBinary(nil)) != string(enc) {
		t.Fatal("re-encoding is not canonical")
	}

	// Clone must be deep: mutating the clone leaves the original.
	cl := pt.Clone()
	cl.AddCol(nil, 0)
	if cl.Equal(pt) {
		t.Fatal("clone shares state with original")
	}
}

func TestPairTrackerDecodeRejectsDamage(t *testing.T) {
	pt := NewPairTracker(2)
	pt.AddCol(nil, 0)
	pt.AddCol([]int{0}, 1)
	enc := pt.AppendBinary(nil)
	if _, err := DecodePairTracker(append(enc[:len(enc):len(enc)], 1)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodePairTracker(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if _, err := DecodePairTracker([]byte{2, 1, 5, 0, 1}); err == nil {
		t.Fatal("out-of-range pair index accepted")
	}
}
