package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/retry"
	"repro/internal/serve"
)

// worker is the coordinator's view of one replica: an HTTP client for
// its internal endpoints plus its health state. Health is driven from
// both the heartbeat prober and request-path outcomes, so a replica
// that dies between probes is ejected by the first failed read.
type worker struct {
	url   string
	label string // "g0r1", the metrics/worker label
	group int
	idx   int
	opts  *Options

	mu          sync.Mutex
	healthy     bool
	consecFails int
	epoch       uint64
	lastProbe   time.Time

	totalFails  uint64
	totalHedges uint64
	totalServes uint64
	totalWrites uint64

	gauge *metrics.Gauge // rdf_cluster_worker_healthy child; nil without metrics
}

func newWorker(url string, group, idx int, opts *Options) *worker {
	return &worker{
		url:     url,
		label:   fmt.Sprintf("g%dr%d", group, idx),
		group:   group,
		idx:     idx,
		opts:    opts,
		healthy: true,
	}
}

// ok records a successful call: readmits the worker immediately (one
// good response is proof of life) and notes its epoch when known.
func (w *worker) ok(epoch uint64) {
	w.mu.Lock()
	was := w.healthy
	w.healthy = true
	w.consecFails = 0
	if epoch > 0 {
		w.epoch = epoch
	}
	w.lastProbe = time.Now()
	w.totalServes++
	w.mu.Unlock()
	if !was && w.gauge != nil {
		w.gauge.Set(1)
	}
}

// fail records a failed call; FailThreshold consecutive failures
// eject the worker from the read rotation.
func (w *worker) fail() {
	w.mu.Lock()
	w.consecFails++
	w.totalFails++
	w.lastProbe = time.Now()
	ejected := w.healthy && w.consecFails >= w.opts.FailThreshold
	if ejected {
		w.healthy = false
	}
	w.mu.Unlock()
	if ejected {
		w.opts.Logf("cluster: worker %s (%s) ejected after %d consecutive failures",
			w.label, w.url, w.opts.FailThreshold)
		if w.gauge != nil {
			w.gauge.Set(0)
		}
	}
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

func (w *worker) healthView() replicaHealth {
	w.mu.Lock()
	defer w.mu.Unlock()
	ago := int64(-1)
	if !w.lastProbe.IsZero() {
		ago = time.Since(w.lastProbe).Milliseconds()
	}
	return replicaHealth{
		URL:          w.url,
		Healthy:      w.healthy,
		ConsecFails:  w.consecFails,
		Epoch:        w.epoch,
		LastProbeMs:  ago,
		TotalFails:   w.totalFails,
		TotalHedges:  w.totalHedges,
		TotalServes:  w.totalServes,
		TotalReplays: w.totalWrites,
	}
}

// get issues one GET against the worker (no retries — retry policy
// lives in the callers) and returns the body on 200.
func (w *worker) get(ctx context.Context, path string, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: status %d", w.label, path, resp.StatusCode)
	}
	return body, nil
}

// health probes the worker's liveness endpoint (single attempt — the
// heartbeat loop is itself the retry schedule).
func (w *worker) health(ctx context.Context) (uint64, error) {
	body, err := w.get(ctx, serve.WorkerHealthPath, w.opts.ReadTimeout)
	if err != nil {
		return 0, err
	}
	var h struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return 0, fmt.Errorf("%s health: %w", w.label, err)
	}
	return h.Epoch, nil
}

// agg fetches the worker's epoch-cut aggregate export.
func (w *worker) agg(ctx context.Context) (*incr.AggregateExport, error) {
	body, err := w.get(ctx, serve.WorkerAggPath, w.opts.ReadTimeout)
	if err != nil {
		return nil, err
	}
	ex, err := incr.DecodeAggregateExport(body)
	if err != nil {
		// A malformed body from a live worker will not improve on retry.
		return nil, retry.Permanent(fmt.Errorf("%s agg: %w", w.label, err))
	}
	return ex, nil
}

// view fetches the worker's epoch-cut snapshot view.
func (w *worker) view(ctx context.Context) (uint64, *matrix.View, error) {
	body, err := w.get(ctx, serve.WorkerViewPath, w.opts.ReadTimeout)
	if err != nil {
		return 0, nil, err
	}
	epoch, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, retry.Permanent(fmt.Errorf("%s view: truncated epoch", w.label))
	}
	v, err := matrix.DecodeView(body[n:])
	if err != nil {
		return 0, nil, retry.Permanent(fmt.Errorf("%s view: %w", w.label, err))
	}
	return epoch, v, nil
}

// ingestAck is a worker's POST /triples reply, as the coordinator
// reads it.
type ingestAck struct {
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	Durable *bool  `json:"durable"`
	Error   string `json:"error"`
}

// postTriples replicates one partition to the worker: JSON
// {add, remove} body, one attempt. A 429 (shed) or 5xx is retryable;
// other non-200s are permanent.
func (w *worker) postTriples(ctx context.Context, body []byte) (*ingestAck, error) {
	ctx, cancel := context.WithTimeout(ctx, w.opts.WriteTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/triples", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var ack ingestAck
	_ = json.Unmarshal(raw, &ack)
	switch {
	case resp.StatusCode == http.StatusOK:
		w.mu.Lock()
		w.totalWrites++
		w.mu.Unlock()
		return &ack, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return nil, fmt.Errorf("%s write: status %d: %s", w.label, resp.StatusCode, ack.Error)
	default:
		return nil, retry.Permanent(fmt.Errorf("%s write: status %d: %s", w.label, resp.StatusCode, ack.Error))
	}
}

// heartbeatLoop probes every worker each interval until Close.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.probeAll()
		}
	}
}

// probeAll runs one health sweep (exported to tests via ProbeNow).
func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, grp := range c.groups {
		for _, wk := range grp.replicas {
			wg.Add(1)
			go func(wk *worker) {
				defer wg.Done()
				epoch, err := wk.health(context.Background())
				if err != nil {
					wk.fail()
					if c.met != nil {
						c.met.probes.With(wk.label, "fail").Inc()
					}
					return
				}
				wk.ok(epoch)
				if c.met != nil {
					c.met.probes.With(wk.label, "ok").Inc()
				}
			}(wk)
		}
	}
	wg.Wait()
}

// ProbeNow runs one synchronous health sweep — for tests and for
// operators who want an immediate re-probe after restarting a worker.
func (c *Coordinator) ProbeNow() { c.probeAll() }
