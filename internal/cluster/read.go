package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/retry"
	"repro/internal/rules"
	"repro/internal/serve"
)

// retryAfterSeconds is the hint on every coordinator 503/429: the
// cluster heals on heartbeat timescales, so "retry shortly" is honest.
const retryAfterSeconds = 1

// readGroup fetches one group's value with failover and hedging:
// replicas are tried healthy-first; the preferred replica gets a head
// start of hedgeDelay (the observed read p99), then the next candidate
// is raced against it; the first success wins and every attempt's
// outcome feeds health. Each replica attempt runs under the retry
// policy. Only an all-replica failure fails the group.
func readGroup[T any](c *Coordinator, ctx context.Context, grp *group,
	fetch func(context.Context, *worker) (T, error)) (T, error) {

	candidates := orderReplicas(grp)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		val  T
		err  error
		rank int
		wk   *worker
	}
	results := make(chan outcome, len(candidates))
	attempt := func(rank int, hedge bool) {
		wk := candidates[rank]
		if hedge {
			wk.mu.Lock()
			wk.totalHedges++
			wk.mu.Unlock()
			if c.met != nil {
				c.met.hedges.Inc()
			}
		}
		go func() {
			t0 := time.Now()
			var val T
			err := retry.Do(ctx, c.opts.Retry, func(n int) error {
				if n > 0 && c.met != nil {
					c.met.retries.Inc()
				}
				var ferr error
				val, ferr = fetch(ctx, wk)
				return ferr
			})
			if err == nil {
				wk.ok(0)
				c.lat.observe(time.Since(t0))
			} else if ctx.Err() == nil {
				// Don't indict the worker for our own cancellation (a
				// faster replica already answered).
				wk.fail()
			}
			results <- outcome{val: val, err: err, rank: rank, wk: wk}
		}()
	}

	attempt(0, false)
	launched := 1
	pending := 1
	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(); d >= 0 && launched < len(candidates) {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for pending > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			if launched < len(candidates) {
				attempt(launched, true)
				launched++
				pending++
			}
		case out := <-results:
			pending--
			if out.err == nil {
				if out.rank > 0 && c.met != nil {
					c.met.failovers.Inc()
				}
				return out.val, nil
			}
			lastErr = out.err
			// A failed attempt launches the next candidate immediately —
			// failover does not wait for the hedge timer.
			if launched < len(candidates) && ctx.Err() == nil {
				attempt(launched, false)
				launched++
				pending++
				if out.rank == 0 && c.met != nil {
					c.met.failovers.Inc()
				}
			}
		case <-ctx.Done():
			var zero T
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return zero, lastErr
		}
	}
	var zero T
	if lastErr == nil {
		lastErr = fmt.Errorf("group %d: no replicas", grp.id)
	}
	return zero, fmt.Errorf("group %d: all replicas failed: %w", grp.id, lastErr)
}

// orderReplicas returns the group's replicas healthy-first (stable
// within each class), with ejected replicas kept at the tail as a
// last resort — when everything is marked down, trying one beats
// refusing outright, and a success readmits it.
func orderReplicas(grp *group) []*worker {
	out := append([]*worker(nil), grp.replicas...)
	sort.SliceStable(out, func(i, j int) bool {
		hi, hj := out[i].isHealthy(), out[j].isHealthy()
		return hi && !hj
	})
	return out
}

// groupAggs fans the aggregate fetch across all groups in parallel.
// Missing lists the groups with no live replica.
func (c *Coordinator) groupAggs(ctx context.Context) (exports []*incr.AggregateExport, missing []int) {
	type res struct {
		g  int
		ex *incr.AggregateExport
		ok bool
	}
	ch := make(chan res, len(c.groups))
	var wg sync.WaitGroup
	for _, grp := range c.groups {
		wg.Add(1)
		go func(grp *group) {
			defer wg.Done()
			ex, err := readGroup(c, ctx, grp, func(ctx context.Context, w *worker) (*incr.AggregateExport, error) {
				return w.agg(ctx)
			})
			if err != nil {
				c.opts.Logf("cluster: group %d aggregate read failed: %v", grp.id, err)
				ch <- res{g: grp.id}
				return
			}
			ch <- res{g: grp.id, ex: ex, ok: true}
		}(grp)
	}
	wg.Wait()
	close(ch)
	for r := range ch {
		if r.ok {
			exports = append(exports, r.ex)
		} else {
			missing = append(missing, r.g)
		}
	}
	sort.Ints(missing)
	return exports, missing
}

// groupViews fans the snapshot-view fetch across all groups.
func (c *Coordinator) groupViews(ctx context.Context) (epoch uint64, views []*matrix.View, missing []int) {
	type viewRes struct {
		epoch uint64
		view  *matrix.View
	}
	type res struct {
		g  int
		v  viewRes
		ok bool
	}
	ch := make(chan res, len(c.groups))
	var wg sync.WaitGroup
	for _, grp := range c.groups {
		wg.Add(1)
		go func(grp *group) {
			defer wg.Done()
			v, err := readGroup(c, ctx, grp, func(ctx context.Context, w *worker) (viewRes, error) {
				e, view, err := w.view(ctx)
				return viewRes{epoch: e, view: view}, err
			})
			if err != nil {
				c.opts.Logf("cluster: group %d view read failed: %v", grp.id, err)
				ch <- res{g: grp.id}
				return
			}
			ch <- res{g: grp.id, v: v, ok: true}
		}(grp)
	}
	wg.Wait()
	close(ch)
	for r := range ch {
		if r.ok {
			epoch += r.v.epoch
			views = append(views, r.v.view)
		} else {
			missing = append(missing, r.g)
		}
	}
	sort.Ints(missing)
	return epoch, views, missing
}

// degrade handles missing groups on a read: without ?partial=1 the
// read is refused (503 + Retry-After — never a silently wrong merged
// number); with it, the caller proceeds on the surviving groups and
// the response is flagged. Returns true when the request was answered
// here (refused or nothing left to merge).
func (c *Coordinator) degrade(w http.ResponseWriter, missing []int, partialOK bool, survivors int) bool {
	if len(missing) == 0 {
		return false
	}
	if c.met != nil {
		c.met.groupDown.Inc()
	}
	if !partialOK || survivors == 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error":             fmt.Sprintf("groups %v have no live replica; an exact answer is impossible right now", missing),
			"missingGroups":     missing,
			"retryAfterSeconds": retryAfterSeconds,
		})
		return true
	}
	if c.met != nil {
		c.met.partial.Inc()
	}
	return false
}

// handleSigma answers GET /sigma with the exactly merged cluster-wide
// value: closed-form measures evaluate on the merged (N_p, C, |S|)
// aggregates; anything else merges the full snapshot views. With
// ?partial=1 a down group degrades the answer to the surviving
// subject population, flagged — without it, a down group is a 503.
func (c *Coordinator) handleSigma(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("fn")
	if name == "" {
		name = "cov"
	}
	fn, _, err := core.Builtin(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	partialOK := r.URL.Query().Get("partial") == "1"
	exports, missing := c.groupAggs(r.Context())
	if c.degrade(w, missing, partialOK, len(exports)) {
		return
	}
	merged, pairsOK := incr.MergeAggregateExports(exports)
	if merged.Tracker.Subjects() == 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error":             "dataset is empty; ingest triples before reading σ",
			"retryAfterSeconds": retryAfterSeconds,
		})
		return
	}
	resp := map[string]interface{}{"fn": fn.Name(), "epoch": merged.Epoch}
	c.flagPartial(resp, missing)
	var ratio rules.Ratio
	solved := false
	if cf, ok := fn.(rules.CountsFunc); ok {
		ratio = merged.Sigma(cf)
		solved = true
	} else if pf, ok := fn.(rules.PairCountsFunc); ok && pairsOK {
		ratio, solved = merged.SigmaPairs(pf)
	}
	if !solved {
		// Generic measure (or a pairless worker in the mix): merge the
		// full views — still exact, just the expensive path.
		epoch, views, vMissing := c.groupViews(r.Context())
		if c.degrade(w, vMissing, partialOK, len(views)) {
			return
		}
		view, err := matrix.MergeViews(views...)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "merge views: %v", err)
			return
		}
		ratio, err = fn.Eval(view)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp["epoch"] = epoch
		c.flagPartial(resp, vMissing)
	}
	resp["value"] = ratio.Value()
	resp["ratio"] = ratio.String()
	writeJSON(w, http.StatusOK, resp)
}

// flagPartial marks a degraded response so a partial number can never
// be mistaken for the cluster-wide one.
func (c *Coordinator) flagPartial(resp map[string]interface{}, missing []int) {
	if len(missing) > 0 {
		resp["partial"] = true
		resp["missingGroups"] = missing
	}
}

// handleRefine answers GET /refine against the merged cluster
// snapshot: one view per group (hedged, failover), merged with the
// exact MergeViews, then the same search pipeline a single node runs.
func (c *Coordinator) handleRefine(w http.ResponseWriter, r *http.Request) {
	rp, err := serve.ParseRefineQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	partialOK := r.URL.Query().Get("partial") == "1"
	epoch, views, missing := c.groupViews(r.Context())
	if c.degrade(w, missing, partialOK, len(views)) {
		return
	}
	view, err := matrix.MergeViews(views...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "merge views: %v", err)
		return
	}
	if view.NumSignatures() == 0 {
		writeError(w, http.StatusConflict, "dataset is empty")
		return
	}
	snap := &incr.Snapshot{Epoch: epoch, View: view}
	out, err := rp.Run(snap, r.Context().Done())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := rp.Render(snap, out)
	c.flagPartial(resp, missing)
	writeJSON(w, http.StatusOK, resp)
}

// handleStats answers GET /stats: per-replica health, per-group
// epochs, and the merged dataset stats when every group is
// reachable (partial stats are flagged like partial σ reads).
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]interface{}{
		"cluster": map[string]interface{}{
			"groups":     len(c.groups),
			"hedgeDelay": c.hedgeDelay().String(),
			"health":     c.healthView(),
		},
	}
	exports, missing := c.groupAggs(r.Context())
	if len(exports) > 0 {
		merged, _ := incr.MergeAggregateExports(exports)
		resp["stats"] = map[string]interface{}{
			"epoch":      merged.Epoch,
			"subjects":   merged.Tracker.Subjects(),
			"properties": len(merged.Names),
		}
	}
	c.flagPartial(resp, missing)
	writeJSON(w, http.StatusOK, resp)
}
