package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/wal"
)

// fakeNet is the in-process cluster fabric: an http.RoundTripper that
// dispatches requests to registered worker handlers by host, with
// per-worker fault policies — the wal/faultfs discipline applied to
// the network. Policies compose: a downed worker refuses instantly, a
// delayed one stalls (honoring the request context, like a real
// half-open connection), failN injects transient 500-style transport
// errors.
type fakeNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	policies map[string]*faultPolicy
	requests map[string]int // per-host request counter
}

type faultPolicy struct {
	down  bool          // connection refused
	delay time.Duration // stall before dispatch (partition when > timeout)
	failN int           // fail this many requests with a transport error
}

func newFakeNet() *fakeNet {
	return &fakeNet{
		handlers: map[string]http.Handler{},
		policies: map[string]*faultPolicy{},
		requests: map[string]int{},
	}
}

func (f *fakeNet) register(host string, h http.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[host] = h
	if f.policies[host] == nil {
		f.policies[host] = &faultPolicy{}
	}
}

func (f *fakeNet) setDown(host string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policies[host].down = down
}

func (f *fakeNet) setDelay(host string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policies[host].delay = d
}

func (f *fakeNet) failNext(host string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policies[host].failN = n
}

func (f *fakeNet) requestCount(host string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests[host]
}

func (f *fakeNet) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	f.mu.Lock()
	h := f.handlers[host]
	pol := f.policies[host]
	f.requests[host]++
	var down bool
	var delay time.Duration
	if pol != nil {
		down = pol.down
		delay = pol.delay
		if pol.failN > 0 {
			pol.failN--
			f.mu.Unlock()
			return nil, fmt.Errorf("injected transport error to %s", host)
		}
	}
	f.mu.Unlock()
	if down {
		return nil, fmt.Errorf("dial tcp %s: connection refused", host)
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if h == nil {
		return nil, fmt.Errorf("no route to host %s", host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// testNode is one worker process: engine (+ optional WAL) behind a
// ClusterWorker-mode serve handler, registered on the fabric. crash()
// takes it off the network and closes its store; restart() recovers
// from the same data directory into a fresh engine — the full
// crashed-replica-rejoins path.
type testNode struct {
	t    *testing.T
	net  *fakeNet
	host string
	dir  string // WAL data dir; "" = memory-only
	eng  incr.Engine
	st   *wal.Store
}

func (n *testNode) start() {
	sh := incr.NewSharded(2, incr.Options{})
	n.eng = sh
	var durable serve.DurabilityBarrier
	if n.dir != "" {
		st, _, err := wal.Open(n.dir, sh.Dict(), sh.Shards(), wal.Options{
			Mode: wal.SyncInterval, SyncInterval: time.Millisecond,
		})
		if err != nil {
			n.t.Fatalf("node %s: wal open: %v", n.host, err)
		}
		n.st = st
		durable = st
	}
	srv := serve.New(n.eng, serve.Options{
		Logf:          n.t.Logf,
		ClusterWorker: true,
		Durable:       durable,
	})
	n.net.register(n.host, srv)
	n.net.setDown(n.host, false)
}

func (n *testNode) crash() {
	n.net.setDown(n.host, true)
	if n.st != nil {
		if err := n.st.Close(); err != nil {
			n.t.Logf("node %s: close on crash: %v", n.host, err)
		}
		n.st = nil
	}
}

func (n *testNode) restart() { n.start() }

func (n *testNode) stop() {
	if n.st != nil {
		_ = n.st.Close()
		n.st = nil
	}
}

// testCluster is G groups × R replicas on a fakeNet plus a
// coordinator wired through it.
type testCluster struct {
	t     *testing.T
	net   *fakeNet
	nodes [][]*testNode // [group][replica]
	coord *Coordinator
}

// newTestCluster builds the cluster. durable=true backs every node
// with a WAL in its own temp dir.
func newTestCluster(t *testing.T, groups, replicas int, durable bool, tune func(*Options)) *testCluster {
	t.Helper()
	net := newFakeNet()
	tc := &testCluster{t: t, net: net}
	var topo Topology
	for g := 0; g < groups; g++ {
		var row []*testNode
		var urls []string
		for r := 0; r < replicas; r++ {
			host := fmt.Sprintf("g%dr%d.test", g, r)
			n := &testNode{t: t, net: net, host: host}
			if durable {
				n.dir = t.TempDir()
			}
			n.start()
			row = append(row, n)
			urls = append(urls, "http://"+host)
		}
		tc.nodes = append(tc.nodes, row)
		topo.Groups = append(topo.Groups, urls)
	}
	opts := Options{
		Client:            &http.Client{Transport: net},
		ReadTimeout:       250 * time.Millisecond,
		WriteTimeout:      2 * time.Second,
		Retry:             retry.Policy{Attempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond},
		HeartbeatInterval: -1, // tests drive probes explicitly
		FailThreshold:     2,
		HedgeDelay:        20 * time.Millisecond,
		Logf:              t.Logf,
	}
	if tune != nil {
		tune(&opts)
	}
	coord, err := New(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	t.Cleanup(func() {
		coord.Close()
		for _, row := range tc.nodes {
			for _, n := range row {
				n.stop()
			}
		}
	})
	return tc
}

// do issues one request against the coordinator handler.
func (tc *testCluster) do(method, target, contentType, body string) *httptest.ResponseRecorder {
	tc.t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	tc.coord.ServeHTTP(rec, req)
	return rec
}
