package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/incr"
)

// TestClusterChaosKillRestart is the acceptance scenario: R=2
// replication, mixed ingest+read load, one replica SIGKILLed
// mid-stream and later restarted (rejoining via WAL recovery). The
// invariants checked at every step and at the end:
//
//   - zero read errors: every /sigma during the outage answers 200
//     with the exactly merged value (failover + hedging);
//   - zero lost acked writes: a batch acked 200 survives the crash
//     (it was on every replica, and the survivor carries the group);
//   - unacked batches are retried until acked (the client contract),
//     so the final state includes exactly the full stream;
//   - final σ rationals are bit-identical to an uninterrupted
//     single-node run over the same stream — through a WAL-recovered
//     replica serving reads again.
func TestClusterChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	tc := newTestCluster(t, 2, 2, true, nil)
	ref := newReference(t)
	victim := tc.nodes[0][1]

	const steps = 30
	pending := map[int][]string{} // unacked batches awaiting retry
	acked := 0
	readErrs := 0
	for i := 0; i < steps; i++ {
		switch i {
		case steps / 3:
			victim.crash()
		case 2 * steps / 3:
			victim.restart()
			tc.coord.ProbeNow()
		}
		// Retry everything pending first (retry-until-ack, oldest first).
		for j := 0; j < i; j++ {
			lines, ok := pending[j]
			if !ok {
				continue
			}
			if rec := tc.ingest(lines); rec.Code == http.StatusOK {
				delete(pending, j)
				ref.apply(lines)
				acked++
			}
		}
		b := batchFor(i)
		rec := tc.ingest(b)
		switch rec.Code {
		case http.StatusOK:
			ref.apply(b)
			acked++
		case http.StatusServiceUnavailable:
			// Not acked; must carry Retry-After and must not claim
			// replication.
			if rec.Header().Get("Retry-After") == "" {
				t.Fatalf("step %d: write 503 without Retry-After", i)
			}
			pending[i] = b
		default:
			t.Fatalf("step %d: ingest status %d: %s", i, rec.Code, rec.Body)
		}
		// Mixed read load: every step reads σ; during the outage these
		// exercise failover. Any non-200 is a failed read.
		for _, fn := range sigmaFns {
			r := tc.do("GET", "/sigma?fn="+fn, "", "")
			if r.Code != http.StatusOK {
				readErrs++
				t.Errorf("step %d: read fn=%s status %d: %s", i, fn, r.Code, r.Body)
			}
		}
	}
	if readErrs > 0 {
		t.Fatalf("%d read errors through the chaos run, want 0", readErrs)
	}
	// Drain: every batch must ack now that the cluster is whole.
	for j, lines := range pending {
		rec := tc.ingest(lines)
		if rec.Code != http.StatusOK {
			t.Fatalf("drain batch %d: status %d: %s", j, rec.Code, rec.Body)
		}
		ref.apply(lines)
		acked++
	}
	if acked != steps {
		t.Fatalf("acked %d batches, want %d", acked, steps)
	}
	// Final exactness: bit-identical to the uninterrupted single node,
	// for closed forms and pair measures.
	assertSigmaMatches(t, tc, ref, "post-chaos")

	// The restarted replica must be a full read citizen again: kill its
	// peer and read everything through it alone.
	tc.nodes[0][0].crash()
	assertSigmaMatches(t, tc, ref, "served by recovered replica")
	tc.nodes[0][0].restart()
	tc.coord.ProbeNow()

	// And the recovered replica's state must byte-match its peer's.
	ex0 := exportOf(t, tc, 0, 0)
	ex1 := exportOf(t, tc, 0, 1)
	if string(ex0) != string(ex1) {
		t.Fatal("recovered replica diverged from its peer")
	}
}

// exportOf renders group g replica r's aggregate export with the
// node-local epoch normalized out.
func exportOf(t *testing.T, tc *testCluster, g, r int) []byte {
	t.Helper()
	ex := tc.nodes[g][r].eng.(*incr.Sharded).ExportAggregates()
	ex.Epoch = 0
	return ex.AppendBinary(nil)
}

// TestClusterRestartDurability pins the zero-lost-acked-writes claim
// directly: ack a batch, crash BOTH replicas of its group, restart
// them from their WALs, and the data must still be there — bit-exact.
func TestClusterRestartDurability(t *testing.T) {
	tc := newTestCluster(t, 1, 2, true, nil)
	ref := newReference(t)
	for i := 0; i < 6; i++ {
		b := batchFor(i)
		rec := tc.ingest(b)
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
		var ack struct {
			Durable    *bool `json:"durable"`
			Replicated bool  `json:"replicated"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
			t.Fatal(err)
		}
		if !ack.Replicated {
			t.Fatalf("ingest %d not replicated: %s", i, rec.Body)
		}
		if ack.Durable == nil || !*ack.Durable {
			t.Fatalf("ingest %d not durable: %s", i, rec.Body)
		}
		ref.apply(b)
	}
	tc.nodes[0][0].crash()
	tc.nodes[0][1].crash()
	tc.nodes[0][0].restart()
	tc.nodes[0][1].restart()
	tc.coord.ProbeNow()
	assertSigmaMatches(t, tc, ref, "after full-group crash+recovery")
}

// TestGroupForStable pins the routing hash: the same subject maps to
// the same group forever (changing this silently re-shards every
// deployed cluster).
func TestGroupForStable(t *testing.T) {
	for _, c := range []struct {
		subject string
		groups  int
		want    int
	}{
		{"http://c/s0", 2, GroupFor("http://c/s0", 2)},
	} {
		for i := 0; i < 100; i++ {
			if got := GroupFor(c.subject, c.groups); got != c.want {
				t.Fatalf("GroupFor(%q) unstable: %d then %d", c.subject, c.want, got)
			}
		}
	}
	// Spread: 200 subjects over 4 groups should not collapse.
	counts := make([]int, 4)
	for i := 0; i < 200; i++ {
		counts[GroupFor(fmt.Sprintf("http://c/s%d", i), 4)]++
	}
	for g, n := range counts {
		if n == 0 {
			t.Fatalf("group %d empty over 200 subjects: %v", g, counts)
		}
	}
}
