// Package cluster is the multi-node tier of the serving stack: a
// coordinator that routes subject-hash ranges to R-way replicated
// worker groups over HTTP, fans snapshot reads (/sigma, /stats,
// /refine) across the groups, and merges each node's σ-aggregates
// with the exact Merge primitives from internal/rules and
// internal/matrix — so a clustered answer is bit-identical to a
// single node holding all the data, never an approximation.
//
// The design leans on the same invariant the sharded engine proved
// in-process: every σ-aggregate (N_p, |S|, the pair matrix C, the
// signature multiset) is additive over subject-disjoint partitions.
// Subjects are routed to groups by a stable string hash, each group
// holds its range on R replicas, and a read needs only one live
// replica per group.
//
// Robustness model:
//
//   - Writes replicate to every replica in a group before acking, so
//     an acked write survives any single-replica crash and replicas
//     never diverge on acked data. A group with a dead replica sheds
//     writes with 503 + Retry-After (nothing acked); adds and removes
//     are idempotent, so the client's retry-until-ack heals any
//     partially applied batch, and a restarted replica rejoins exactly
//     via its WAL recovery.
//   - Reads fail over: replicas are probed by heartbeat, ejected after
//     consecutive failures, and a slow primary is hedged after a
//     p99-based delay. A fully-down group yields 503 + Retry-After —
//     or, when the client opts in with ?partial=1, a 200 flagged
//     partial with the missing groups listed. Never a silently wrong
//     merged number.
//   - Every worker call runs under a timeout with capped exponential
//     backoff + full-jitter retries (internal/retry).
package cluster

import (
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/retry"
)

// Topology is the static cluster layout: Groups[g] lists the base
// URLs of group g's replicas. Subjects are routed to groups by
// GroupFor; every replica of a group holds the group's full range.
type Topology struct {
	Groups [][]string
}

// Validate checks the layout is servable.
func (t Topology) Validate() error {
	if len(t.Groups) == 0 {
		return fmt.Errorf("cluster: topology has no groups")
	}
	for g, reps := range t.Groups {
		if len(reps) == 0 {
			return fmt.Errorf("cluster: group %d has no replicas", g)
		}
		for r, u := range reps {
			if u == "" {
				return fmt.Errorf("cluster: group %d replica %d has an empty URL", g, r)
			}
		}
	}
	return nil
}

// GroupFor routes a subject to its group: FNV-1a over the subject
// string, mixed and reduced mod the group count. The hash is over the
// subject's text (not a node-local term ID), so routing is identical
// across coordinators and across restarts.
func GroupFor(subject string, groups int) int {
	h := fnv.New64a()
	h.Write([]byte(subject))
	z := h.Sum64()
	// splitmix64 finalizer: FNV's low bits are weak for small alphabets.
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(groups))
}

// Options configures a Coordinator.
type Options struct {
	// Client issues all worker requests. Default: a client with no
	// global timeout (per-request contexts bound every call). Tests
	// inject a faulty Transport here.
	Client *http.Client
	// ReadTimeout bounds one read attempt against one replica
	// (default 5s).
	ReadTimeout time.Duration
	// WriteTimeout bounds one write attempt against one replica
	// (default 30s — a write waits on the worker's durability barrier).
	WriteTimeout time.Duration
	// Retry is the per-replica retry schedule (zero value: 4 attempts,
	// 50ms base, 2s cap, full jitter).
	Retry retry.Policy
	// HeartbeatInterval is the health-probe period (default 1s;
	// negative disables the background prober — request-path results
	// still drive health, which is what the in-process tests use).
	HeartbeatInterval time.Duration
	// FailThreshold is the consecutive-failure count that ejects a
	// replica from the read rotation (default 3). Any success readmits
	// it.
	FailThreshold int
	// HedgeDelay floors the hedged-read delay; the operative delay is
	// max(HedgeDelay, observed read p99) (default 25ms). Negative
	// disables hedging.
	HedgeDelay time.Duration
	// Metrics, when set, registers the rdf_cluster_* families.
	Metrics *metrics.Registry
	// Logf sinks coordinator events (default log.Printf).
	Logf func(format string, args ...interface{})
}

func (o *Options) withDefaults() {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 25 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// Coordinator is the cluster front end: an http.Handler serving the
// public read/write surface against a worker topology.
type Coordinator struct {
	opts   Options
	groups []*group
	mux    *http.ServeMux
	met    *clusterMetrics
	lat    *latencyWindow

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// group is one replicated subject-hash range.
type group struct {
	id       int
	replicas []*worker
}

// New validates the topology and returns a running coordinator
// (heartbeat prober started unless disabled). Close stops it.
func New(t Topology, opts Options) (*Coordinator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	opts.withDefaults()
	c := &Coordinator{
		opts: opts,
		mux:  http.NewServeMux(),
		lat:  newLatencyWindow(256),
		stop: make(chan struct{}),
	}
	for g, reps := range t.Groups {
		grp := &group{id: g}
		for r, u := range reps {
			grp.replicas = append(grp.replicas, newWorker(u, g, r, &c.opts))
		}
		c.groups = append(c.groups, grp)
	}
	if reg := opts.Metrics; reg != nil {
		c.met = newClusterMetrics(reg, c)
	}
	c.mux.HandleFunc("GET /{$}", c.handleIndex)
	c.mux.HandleFunc("GET /sigma", c.instrumented("sigma", c.handleSigma))
	c.mux.HandleFunc("GET /refine", c.instrumented("refine", c.handleRefine))
	c.mux.HandleFunc("GET /stats", c.instrumented("stats", c.handleStats))
	c.mux.HandleFunc("POST /triples", c.instrumented("triples", c.handleTriples))
	if opts.Metrics != nil {
		c.mux.Handle("GET /metrics", opts.Metrics.Handler())
	}
	if opts.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop()
	}
	return c, nil
}

// Close stops the heartbeat prober. The handler keeps serving
// (request-path health updates continue); Close exists for orderly
// shutdown and tests.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// instrumented wraps a handler with the fan-out latency histogram.
func (c *Coordinator) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if c.met == nil {
		return h
	}
	hist := c.met.fanout.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.Observe(time.Since(t0).Seconds())
	}
}

func (c *Coordinator) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"service": "rdfcoord",
		"groups":  len(c.groups),
		"endpoints": []string{
			"POST /triples  (N-Triples body, or JSON {add:[],remove:[]})",
			"GET  /sigma?fn=cov|sim|dep[p1,p2]|...&partial=1",
			"GET  /refine?fn=cov&mode=lowestk|highesttheta&...",
			"GET  /stats",
		},
	})
}

// snapshotHealth is the /stats health view of one replica.
type replicaHealth struct {
	URL          string `json:"url"`
	Healthy      bool   `json:"healthy"`
	ConsecFails  int    `json:"consecFails"`
	Epoch        uint64 `json:"epoch"`
	LastProbeMs  int64  `json:"lastProbeAgoMs"`
	TotalFails   uint64 `json:"totalFails"`
	TotalHedges  uint64 `json:"totalHedges"`
	TotalServes  uint64 `json:"totalServes"`
	TotalReplays uint64 `json:"totalWrites"`
}

func (c *Coordinator) healthView() []map[string]interface{} {
	out := make([]map[string]interface{}, len(c.groups))
	for g, grp := range c.groups {
		reps := make([]replicaHealth, len(grp.replicas))
		healthy := 0
		for i, wk := range grp.replicas {
			reps[i] = wk.healthView()
			if reps[i].Healthy {
				healthy++
			}
		}
		out[g] = map[string]interface{}{
			"group":    g,
			"healthy":  healthy,
			"replicas": reps,
		}
	}
	return out
}

// clusterMetrics is the rdf_cluster_* family set.
type clusterMetrics struct {
	healthy   *metrics.GaugeVec     // worker
	probes    *metrics.CounterVec   // worker, result
	retries   *metrics.Counter      // worker-call retries (all endpoints)
	failovers *metrics.Counter      // reads answered by a non-primary replica
	hedges    *metrics.Counter      // hedge requests launched
	partial   *metrics.Counter      // partial σ reads served
	groupDown *metrics.Counter      // reads/writes refused for a down group
	writeFail *metrics.Counter      // write batches refused (not acked)
	fanout    *metrics.HistogramVec // endpoint
}

func newClusterMetrics(reg *metrics.Registry, c *Coordinator) *clusterMetrics {
	m := &clusterMetrics{
		healthy: reg.GaugeVec("rdf_cluster_worker_healthy",
			"1 when the worker is in the read rotation, 0 when ejected.", "worker"),
		probes: reg.CounterVec("rdf_cluster_probes_total",
			"Health probes by worker and result.", "worker", "result"),
		retries: reg.Counter("rdf_cluster_retries_total",
			"Worker-call retry attempts (beyond each call's first try)."),
		failovers: reg.Counter("rdf_cluster_failovers_total",
			"Group reads answered by a replica other than the preferred one."),
		hedges: reg.Counter("rdf_cluster_hedged_reads_total",
			"Hedge requests launched after the p99-based delay."),
		partial: reg.Counter("rdf_cluster_partial_reads_total",
			"σ reads answered partial (at least one group missing, client opted in)."),
		groupDown: reg.Counter("rdf_cluster_group_down_total",
			"Requests refused because a group had no live replica."),
		writeFail: reg.Counter("rdf_cluster_write_rejected_total",
			"Write batches refused before full replication (503, nothing acked)."),
		fanout: reg.HistogramVec("rdf_cluster_fanout_seconds",
			"Coordinator end-to-end latency, by endpoint.", metrics.DefLatencyBuckets, "endpoint"),
	}
	for _, grp := range c.groups {
		for _, wk := range grp.replicas {
			wk.gauge = m.healthy.With(wk.label)
			wk.gauge.Set(1)
			m.probes.With(wk.label, "ok")
			m.probes.With(wk.label, "fail")
		}
	}
	for _, ep := range []string{"sigma", "refine", "stats", "triples"} {
		m.fanout.With(ep)
	}
	return m
}

// latencyWindow is a bounded ring of recent read latencies; its p99
// sets the hedged-read delay, so hedging adapts to the workers'
// actual service time instead of a guessed constant.
type latencyWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

func newLatencyWindow(n int) *latencyWindow {
	return &latencyWindow{buf: make([]time.Duration, n)}
}

func (l *latencyWindow) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// p99 returns the 99th-percentile latency of the window, or 0 with
// no samples yet.
func (l *latencyWindow) p99() time.Duration {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	tmp := append([]time.Duration(nil), l.buf[:n]...)
	l.mu.Unlock()
	if len(tmp) == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := len(tmp) * 99 / 100
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// hedgeDelay is the operative hedged-read delay: the observed read
// p99, floored at Options.HedgeDelay.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.opts.HedgeDelay < 0 {
		return -1
	}
	d := c.lat.p99()
	if d < c.opts.HedgeDelay {
		d = c.opts.HedgeDelay
	}
	return d
}
