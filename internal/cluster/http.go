package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
)

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
