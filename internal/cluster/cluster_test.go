package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/rdf"
	"repro/internal/serve"
)

// line renders one synthetic N-Triples add.
func line(s, p, o int) string {
	return fmt.Sprintf("<http://c/s%d> <http://c/p%d> <http://c/o%d> .", s, p, o)
}

// batchFor returns a deterministic mixed batch for step i: a spread of
// subjects across groups, a few shared properties, some multi-valued.
func batchFor(i int) []string {
	var lines []string
	for j := 0; j < 6; j++ {
		s := (i*7 + j*3) % 40
		lines = append(lines, line(s, j%4, i%5))
	}
	return lines
}

// referenceServer is the single-node oracle: one serve.Server over one
// dataset fed the same batches.
type referenceServer struct {
	t   *testing.T
	srv *serve.Server
	d   *incr.Dataset
}

func newReference(t *testing.T) *referenceServer {
	d := incr.NewDataset(incr.Options{})
	return &referenceServer{t: t, d: d, srv: serve.New(d, serve.Options{Logf: t.Logf})}
}

func (rs *referenceServer) apply(add []string) {
	rs.t.Helper()
	var ts []rdf.Triple
	for i, l := range add {
		tr, ok, err := rdf.ParseNTriplesLine(l, i+1)
		if err != nil {
			rs.t.Fatal(err)
		}
		if ok {
			ts = append(ts, tr)
		}
	}
	rs.d.Apply(ts, nil)
}

// sigmaFields extracts the {fn, value, ratio} triple that must be
// bit-identical between cluster and single node.
func sigmaFields(t *testing.T, body []byte) (string, float64, string) {
	t.Helper()
	var resp struct {
		Fn    string  `json:"fn"`
		Value float64 `json:"value"`
		Ratio string  `json:"ratio"`
		Error string  `json:"error"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad σ body %s: %v", body, err)
	}
	if resp.Error != "" {
		t.Fatalf("σ error: %s", resp.Error)
	}
	return resp.Fn, resp.Value, resp.Ratio
}

func (rs *referenceServer) sigma(fn string) (string, float64, string) {
	rs.t.Helper()
	req := httptest.NewRequest("GET", "/sigma?fn="+fn, nil)
	rec := httptest.NewRecorder()
	rs.srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		rs.t.Fatalf("reference /sigma?fn=%s: status %d: %s", fn, rec.Code, rec.Body)
	}
	return sigmaFields(rs.t, rec.Body.Bytes())
}

// sigmaFns are the measures every exactness assertion sweeps: both
// closed forms and a dependency (pair-matrix) measure, URL-encoded.
var sigmaFns = []string{"cov", "sim", "dep%5Bhttp%3A%2F%2Fc%2Fp0,http%3A%2F%2Fc%2Fp1%5D"}

// assertSigmaMatches checks the coordinator's σ equals the reference
// for every swept measure, bit-identical rationals included.
func assertSigmaMatches(t *testing.T, tc *testCluster, ref *referenceServer, label string) {
	t.Helper()
	for _, fn := range sigmaFns {
		rec := tc.do("GET", "/sigma?fn="+fn, "", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: cluster /sigma?fn=%s: status %d: %s", label, fn, rec.Code, rec.Body)
		}
		cFn, cVal, cRatio := sigmaFields(t, rec.Body.Bytes())
		rFn, rVal, rRatio := ref.sigma(fn)
		if cFn != rFn || cVal != rVal || cRatio != rRatio {
			t.Fatalf("%s: fn=%s cluster (%s, %v, %s) != reference (%s, %v, %s)",
				label, fn, cFn, cVal, cRatio, rFn, rVal, rRatio)
		}
	}
}

// ingest writes a batch through the coordinator, asserting the ack.
func (tc *testCluster) ingest(lines []string) *httptest.ResponseRecorder {
	tc.t.Helper()
	body, _ := json.Marshal(map[string][]string{"add": lines})
	return tc.do("POST", "/triples", "application/json", string(body))
}

// TestClusterExactMerge is the healthy-path exactness check: data
// ingested through the coordinator, read back as σ, must be
// bit-identical to a single node fed the same stream — for closed
// forms, pair measures, and a full /refine.
func TestClusterExactMerge(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false, nil)
	ref := newReference(t)
	for i := 0; i < 12; i++ {
		b := batchFor(i)
		rec := tc.ingest(b)
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, rec.Code, rec.Body)
		}
		ref.apply(b)
	}
	var ack struct {
		Replicated bool `json:"replicated"`
		Added      int  `json:"added"`
	}
	rec := tc.ingest(batchFor(99))
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil || !ack.Replicated {
		t.Fatalf("ack not replicated: %s", rec.Body)
	}
	ref.apply(batchFor(99))
	assertSigmaMatches(t, tc, ref, "healthy")

	// Raw N-Triples bodies partition identically.
	raw := strings.Join(batchFor(100), "\n")
	if rec := tc.do("POST", "/triples", "text/plain", raw); rec.Code != http.StatusOK {
		t.Fatalf("raw ingest: status %d: %s", rec.Code, rec.Body)
	}
	ref.apply(batchFor(100))
	assertSigmaMatches(t, tc, ref, "after raw ingest")

	// /refine through the coordinator answers with the standard shape.
	// The heuristic engine keeps this a shape check: the exact solver is
	// exponential in the worst case and this fixture's signature set
	// happens to be adversarial for it (~40s), which is a solver
	// property, not a cluster one.
	rrec := tc.do("GET", "/refine?fn=cov&mode=lowestk&theta=0.9&engine=heuristic", "", "")
	if rrec.Code != http.StatusOK {
		t.Fatalf("/refine: status %d: %s", rrec.Code, rrec.Body)
	}
	var refResp map[string]interface{}
	if err := json.Unmarshal(rrec.Body.Bytes(), &refResp); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"epoch", "k", "sorts", "minSigma"} {
		if _, ok := refResp[k]; !ok {
			t.Fatalf("/refine response missing %q: %s", k, rrec.Body)
		}
	}

	// /stats reports every replica healthy.
	srec := tc.do("GET", "/stats", "", "")
	if srec.Code != http.StatusOK || !strings.Contains(srec.Body.String(), `"healthy": true`) {
		t.Fatalf("/stats: %d %s", srec.Code, srec.Body)
	}
}

// TestClusterReadFailover kills one replica per group pattern and
// checks reads keep answering exactly, the dead replica is ejected,
// and a revived one is readmitted by the prober.
func TestClusterReadFailover(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false, nil)
	ref := newReference(t)
	for i := 0; i < 8; i++ {
		b := batchFor(i)
		if rec := tc.ingest(b); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
		ref.apply(b)
	}

	tc.net.setDown("g0r0.test", true)
	// Every read must keep succeeding, from the very first one.
	for i := 0; i < 5; i++ {
		assertSigmaMatches(t, tc, ref, fmt.Sprintf("g0r0 down, read %d", i))
	}
	if v := tc.coord.met; v != nil {
		t.Fatal("metrics unexpectedly configured") // tuned off in this fixture
	}
	// Probes eject the dead replica past the threshold.
	tc.coord.ProbeNow()
	tc.coord.ProbeNow()
	if tc.coord.groups[0].replicas[0].isHealthy() {
		t.Fatal("dead replica still in rotation after probes")
	}
	if !tc.coord.groups[0].replicas[1].isHealthy() {
		t.Fatal("live replica wrongly ejected")
	}
	// Revive; one good probe readmits.
	tc.net.setDown("g0r0.test", false)
	tc.coord.ProbeNow()
	if !tc.coord.groups[0].replicas[0].isHealthy() {
		t.Fatal("revived replica not readmitted")
	}
	assertSigmaMatches(t, tc, ref, "after revive")
}

// TestClusterTransientErrorsRetry checks the retry policy rides out
// blips without failing over or erroring.
func TestClusterTransientErrorsRetry(t *testing.T) {
	tc := newTestCluster(t, 1, 2, false, nil)
	ref := newReference(t)
	b := batchFor(1)
	if rec := tc.ingest(b); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	ref.apply(b)
	// Two injected failures; the 3-attempt policy absorbs them.
	tc.net.failNext("g0r0.test", 2)
	assertSigmaMatches(t, tc, ref, "through transient errors")
}

// TestClusterPartition stalls one replica past the read timeout (a
// network partition, not a crash) and checks reads fail over.
func TestClusterPartition(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false, nil)
	ref := newReference(t)
	b := batchFor(3)
	if rec := tc.ingest(b); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	ref.apply(b)
	tc.net.setDelay("g1r0.test", time.Second) // ReadTimeout is 250ms
	assertSigmaMatches(t, tc, ref, "partitioned replica")
	tc.net.setDelay("g1r0.test", 0)
}

// TestClusterHedgedRead checks a slow (but alive) primary is hedged:
// the secondary answers well before the primary's stall, and the
// hedge counter moves.
func TestClusterHedgedRead(t *testing.T) {
	reg := metrics.NewRegistry()
	tc := newTestCluster(t, 1, 2, false, func(o *Options) {
		o.Metrics = reg
		o.HedgeDelay = 5 * time.Millisecond
	})
	ref := newReference(t)
	b := batchFor(5)
	if rec := tc.ingest(b); rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	ref.apply(b)
	// 150ms stall is inside the 250ms read timeout: without hedging the
	// primary would eventually answer; with it the secondary wins.
	tc.net.setDelay("g0r0.test", 150*time.Millisecond)
	t0 := time.Now()
	assertSigmaMatches(t, tc, ref, "hedged")
	if tc.coord.met.hedges.Value() == 0 {
		t.Fatal("no hedge launched")
	}
	if tc.coord.met.failovers.Value() == 0 {
		t.Fatal("no failover recorded for hedged win")
	}
	_ = t0
}

// TestClusterGroupDownDegrades checks the no-wrong-number rule: a
// fully-down group refuses reads with 503 + Retry-After, serves a
// flagged partial when the client opts in, and never answers a plain
// 200 with a silently wrong merged value.
func TestClusterGroupDownDegrades(t *testing.T) {
	tc := newTestCluster(t, 2, 2, false, nil)
	for i := 0; i < 8; i++ {
		if rec := tc.ingest(batchFor(i)); rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	tc.net.setDown("g0r0.test", true)
	tc.net.setDown("g0r1.test", true)

	rec := tc.do("GET", "/sigma?fn=cov", "", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("down group read: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	rec = tc.do("GET", "/sigma?fn=cov&partial=1", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("partial read: status %d: %s", rec.Code, rec.Body)
	}
	var partial struct {
		Partial       bool   `json:"partial"`
		MissingGroups []int  `json:"missingGroups"`
		Ratio         string `json:"ratio"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &partial); err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || len(partial.MissingGroups) != 1 || partial.MissingGroups[0] != 0 {
		t.Fatalf("partial response not flagged: %s", rec.Body)
	}
	if partial.Ratio == "" {
		t.Fatal("partial response missing ratio")
	}

	// Writes touching the down group are refused, not half-acked.
	wrec := tc.ingest(batchFor(2))
	if wrec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write into down group: status %d: %s", wrec.Code, wrec.Body)
	}
	if wrec.Header().Get("Retry-After") == "" {
		t.Fatal("write 503 without Retry-After")
	}
	var wresp struct {
		Replicated bool `json:"replicated"`
	}
	_ = json.Unmarshal(wrec.Body.Bytes(), &wresp)
	if wresp.Replicated {
		t.Fatalf("refused write claims replicated: %s", wrec.Body)
	}
}

// TestClusterWriteQuorum checks a write is acked only after every
// replica applied it: with one replica down the group's writes 503
// (nothing acked), and after revival the retried batch converges both
// replicas to identical state.
func TestClusterWriteQuorum(t *testing.T) {
	tc := newTestCluster(t, 1, 2, false, nil)
	ref := newReference(t)
	b1 := batchFor(1)
	if rec := tc.ingest(b1); rec.Code != http.StatusOK {
		t.Fatalf("healthy ingest: %d %s", rec.Code, rec.Body)
	}
	ref.apply(b1)

	tc.net.setDown("g0r1.test", true)
	b2 := batchFor(2)
	rec := tc.ingest(b2)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: status %d, want 503: %s", rec.Code, rec.Body)
	}
	// r0 may have applied b2 (the 503 means NOT acked, not "nothing
	// happened anywhere") — the client contract is retry-until-ack.
	tc.net.setDown("g0r1.test", false)
	rec = tc.ingest(b2)
	if rec.Code != http.StatusOK {
		t.Fatalf("retried ingest: status %d: %s", rec.Code, rec.Body)
	}
	ref.apply(b2)
	assertSigmaMatches(t, tc, ref, "after retry-until-ack")

	// Both replicas hold identical aggregate state (no divergence on
	// acked data): compare their exports byte for byte.
	ex0 := tc.nodes[0][0].eng.(*incr.Sharded).ExportAggregates()
	ex1 := tc.nodes[0][1].eng.(*incr.Sharded).ExportAggregates()
	ex0.Epoch, ex1.Epoch = 0, 0
	if string(ex0.AppendBinary(nil)) != string(ex1.AppendBinary(nil)) {
		t.Fatal("replicas diverged on acked data")
	}
}
