package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/rdf"
	"repro/internal/retry"
)

// maxWriteBody caps a coordinator ingest request (64 MiB, matching
// the single-node default).
const maxWriteBody = 64 << 20

// partition is one group's slice of a write batch, in the JSON
// {add, remove} form the worker ingest endpoint accepts.
type partition struct {
	Add    []string `json:"add,omitempty"`
	Remove []string `json:"remove,omitempty"`
}

// handleTriples answers POST /triples: the batch is partitioned by
// subject hash, each partition is replicated to EVERY replica of its
// group, and the batch is acked only when every replica of every
// touched group acked. Anything less is a 503 with Retry-After and
// nothing reported as accepted: adds/removes are idempotent, so the
// client's retry-until-ack converges every replica to the full batch
// — an acked write is never lost and replicas never diverge on acked
// data.
//
// Bodies: raw N-Triples (adds), or JSON {"add": [...], "remove":
// [...]} of N-Triples lines.
func (c *Coordinator) handleTriples(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxWriteBody)
	defer func() { _, _ = io.Copy(io.Discard, body); _ = body.Close() }()

	parts := make([]partition, len(c.groups))
	route := func(lines []string, remove bool, what string) error {
		for i, line := range lines {
			t, ok, err := rdf.ParseNTriplesLine(line, i+1)
			if err != nil {
				return fmt.Errorf("%s[%d]: %v", what, i, err)
			}
			if !ok {
				continue
			}
			g := GroupFor(t.Subject, len(c.groups))
			if remove {
				parts[g].Remove = append(parts[g].Remove, line)
			} else {
				parts[g].Add = append(parts[g].Add, line)
			}
		}
		return nil
	}

	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			Add    []string `json:"add"`
			Remove []string `json:"remove"`
		}
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		if err := route(req.Add, false, "add"); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := route(req.Remove, true, "remove"); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 64<<10), 4<<20)
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		if err := route(lines, false, "line"); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	type groupAck struct {
		Group    int    `json:"group"`
		Added    int    `json:"added"`
		Removed  int    `json:"removed"`
		Replicas int    `json:"replicas"`
		Error    string `json:"error,omitempty"`

		touched        bool
		durableUnknown bool
		notDurable     bool
	}
	acks := make([]groupAck, len(c.groups))
	var wg sync.WaitGroup
	for g, part := range parts {
		if len(part.Add) == 0 && len(part.Remove) == 0 {
			acks[g] = groupAck{Group: g}
			continue
		}
		wg.Add(1)
		go func(g int, part partition) {
			defer wg.Done()
			payload, _ := json.Marshal(part)
			grp := c.groups[g]
			ackCh := make(chan *ingestAck, len(grp.replicas))
			errCh := make(chan error, len(grp.replicas))
			var rwg sync.WaitGroup
			for _, wk := range grp.replicas {
				rwg.Add(1)
				go func(wk *worker) {
					defer rwg.Done()
					var ack *ingestAck
					err := retry.Do(r.Context(), c.opts.Retry, func(n int) error {
						if n > 0 && c.met != nil {
							c.met.retries.Inc()
						}
						var perr error
						ack, perr = wk.postTriples(r.Context(), payload)
						return perr
					})
					if err != nil {
						wk.fail()
						errCh <- fmt.Errorf("%s: %w", wk.label, err)
						return
					}
					wk.ok(0)
					ackCh <- ack
				}(wk)
			}
			rwg.Wait()
			close(ackCh)
			close(errCh)
			ga := groupAck{Group: g, Replicas: len(grp.replicas), touched: true}
			for err := range errCh {
				if ga.Error == "" {
					ga.Error = err.Error()
				}
			}
			for ack := range ackCh {
				// Replicas apply identical partitions; their counts agree,
				// so any one ack's numbers are the group's.
				ga.Added, ga.Removed = ack.Added, ack.Removed
				if ack.Durable == nil {
					ga.durableUnknown = true
				} else if !*ack.Durable {
					ga.notDurable = true
				}
			}
			acks[g] = ga
		}(g, part)
	}
	wg.Wait()

	added, removed := 0, 0
	touchedAny := false
	durable, durableKnown := true, true
	var failed []int
	for _, ga := range acks {
		added += ga.Added
		removed += ga.Removed
		if ga.Error != "" {
			failed = append(failed, ga.Group)
		}
		if ga.touched {
			touchedAny = true
			if ga.durableUnknown {
				durableKnown = false
			}
			if ga.notDurable {
				durable = false
			}
		}
	}
	if len(failed) > 0 {
		// NOT an ack: some replica did not apply the batch. The groups
		// that did apply keep the data (idempotent — the client's retry
		// re-converges them), but the batch as a whole is not accepted
		// and must be retried.
		if c.met != nil {
			c.met.writeFail.Inc()
			c.met.groupDown.Inc()
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error":             fmt.Sprintf("write not fully replicated (groups %v); retry the batch", failed),
			"failedGroups":      failed,
			"groups":            acks,
			"replicated":        false,
			"retryAfterSeconds": retryAfterSeconds,
		})
		return
	}
	resp := map[string]interface{}{
		"added":      added,
		"removed":    removed,
		"replicated": true,
		"groups":     acks,
	}
	if touchedAny && durableKnown {
		resp["durable"] = durable
	}
	writeJSON(w, http.StatusOK, resp)
}
