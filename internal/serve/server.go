// Package serve exposes an incremental structuredness dataset
// (internal/incr) over HTTP: triple ingestion, live σ reads and
// on-demand refinement against consistent snapshots. It is the
// rdfserved engine, factored out of the command so the full
// request surface is testable with httptest.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/protect"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
)

// Options configures a Server.
type Options struct {
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// IngestBatch is the Apply batch size for streamed N-Triples bodies
	// (default 10000 triples).
	IngestBatch int
	// Refiner, when set, is refreshed in the background after every
	// mutating batch (single-flight; the σ-drift policy inside the
	// refiner decides whether a search actually runs).
	Refiner *incr.Refiner
	// Logf sinks background-refresh errors and slow-request lines
	// (default log.Printf).
	Logf func(format string, args ...interface{})
	// Durable, when set, is the write-ahead log attached to the
	// engine: POST /triples waits on its Barrier before responding,
	// so a 200 with durable:true means the batch survives a crash.
	Durable DurabilityBarrier
	// Metrics, when set, instruments every endpoint (request counters,
	// latency histograms, in-flight gauges), registers the
	// refine-staleness gauge and the search instrumentation counters,
	// and serves the registry at GET /metrics. The caller registers the
	// engine's own series (Engine.RegisterMetrics) — the server only
	// claims the rdf_http_*, rdf_refine_* and rdf_sigma_* families, so
	// at most one Server per registry.
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
	// SlowRequest, when > 0, logs any request slower than this through
	// Logf, tagged with the request's trace ID (every instrumented
	// response carries it in the X-Trace-Id header).
	SlowRequest time.Duration
	// WAL, when set, is surfaced in GET /stats: durability mode and
	// what recovery replayed at boot (previously only logged).
	WAL *WALInfo
	// Protect, when set, is the per-class admission front: /sigma,
	// /triples and /refine acquire the read/write/refine gate before any
	// work, and excess load is shed with 429 + Retry-After instead of
	// accepted and half-served. The server registers its rdf_admission_*
	// families when Metrics is also set. Index, /stats and /metrics are
	// never gated — the operator's view must survive overload.
	Protect *protect.Limiter
	// SigmaCacheSize bounds the epoch-keyed /sigma response cache
	// (entries). 0 means the default (256); negative disables caching.
	SigmaCacheSize int
	// RefineCacheSize bounds the epoch-keyed /refine response cache
	// (entries). 0 means the default (64); negative disables caching.
	RefineCacheSize int
	// RefineSWR enables stale-while-revalidate on /refine: a request
	// whose cached result is for an older epoch is answered immediately
	// from that result (flagged stale, with both epochs) while a
	// single-flight background re-refinement brings the cache current.
	RefineSWR bool
	// WriteDeadline bounds POST /triples end to end — body read, apply,
	// WAL backlog wait and durability barrier. Past it the request is
	// either shed (429, nothing or a prefix applied) or answered 200
	// with durable:false (applied, fsync pending). 0 means no bound.
	WriteDeadline time.Duration
	// MaxBacklogBytes bounds the WAL group-commit backlog: an ingest
	// request first waits (within its deadline) for the backlog to
	// drain below this, so a write burst blocks at the front door
	// instead of growing the pending buffers without bound. 0 means
	// unbounded. Requires Backlog.
	MaxBacklogBytes int64
	// Backlog is the WAL backlog waiter (implemented by *wal.Store).
	Backlog BacklogWaiter
	// ClusterWorker mounts the internal cluster-worker endpoints
	// (/internal/health, /internal/agg, /internal/view) a coordinator
	// reads. Only for nodes behind a coordinator: the endpoints expose
	// raw aggregate state and bypass admission gating by design.
	ClusterWorker bool
	// RateLimit, when set, enforces per-client request quotas in front
	// of the admission gate: a client over its token budget is shed
	// with 429 + Retry-After before it can queue for a slot. Internal
	// worker endpoints, index, /stats and /metrics are exempt.
	RateLimit *protect.RateLimiter
}

// BacklogWaiter is the slice of the WAL store the ingest backpressure
// path needs (implemented by *wal.Store).
type BacklogWaiter interface {
	// AwaitBacklog blocks until the group-commit backlog is at or below
	// max bytes, the store fails, or ctx expires (returning ctx.Err()).
	AwaitBacklog(ctx context.Context, max int64) error
	// PendingBytes returns the current backlog (surfaced in /stats).
	PendingBytes() int64
}

// WALInfo is the operator-facing durability summary shown in GET
// /stats. The command layer fills it from wal.Open's RecoveryStats so
// serve stays decoupled from the wal package.
type WALInfo struct {
	// Mode is the fsync policy ("batch", "interval", "off").
	Mode string `json:"mode"`
	// Synchronous reports whether ingest barriers wait for stable
	// storage (false when fsync is off).
	Synchronous bool        `json:"synchronous"`
	Recovery    WALRecovery `json:"recovery"`
}

// WALRecovery mirrors wal.RecoveryStats for the /stats JSON.
type WALRecovery struct {
	Terms       int   `json:"terms"`
	Checkpoints int   `json:"checkpoints"`
	Records     int   `json:"records"`
	Skipped     int   `json:"skipped"`
	Bytes       int64 `json:"bytes"`
	TornBytes   int64 `json:"tornBytes"`
	DurationMs  int64 `json:"durationMs"`
}

// DurabilityBarrier is the slice of the WAL store the server needs
// (implemented by *wal.Store).
type DurabilityBarrier interface {
	// BarrierCtx blocks until every batch applied before the call is
	// durable per the store's sync policy, or ctx expires (returning
	// ctx.Err() — the batch stays applied and becomes durable later).
	BarrierCtx(ctx context.Context) error
	// Synchronous reports whether the barrier actually waits for stable
	// storage (false when fsync is disabled).
	Synchronous() bool
}

// Server is the rdfserved HTTP handler. It serves any incr.Engine —
// the single Dataset or the sharded engine; with a Sharded, ingest
// batches route through its per-shard worker pool and /stats reports
// per-shard breakdowns.
type Server struct {
	d    incr.Engine
	opts Options
	mux  *http.ServeMux
	met  *serverMetrics
	// refreshing is the single-flight latch for background refreshes;
	// refreshQueued remembers a batch that arrived mid-refresh.
	refreshing    atomic.Bool
	refreshQueued atomic.Bool
	// sigmaCache / refineCache are the epoch-keyed response caches; nil
	// when disabled.
	sigmaCache  *protect.Cache
	refineCache *protect.Cache
}

// serverMetrics is the per-endpoint HTTP instrumentation family set.
type serverMetrics struct {
	requests *metrics.CounterVec   // endpoint, code
	latency  *metrics.HistogramVec // endpoint
	inFlight *metrics.GaugeVec     // endpoint
	slow     *metrics.CounterVec   // endpoint
}

// New returns a handler serving d.
func New(d incr.Engine, opts Options) *Server {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.IngestBatch == 0 {
		opts.IngestBatch = 10000
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.SigmaCacheSize == 0 {
		opts.SigmaCacheSize = 256
	}
	if opts.RefineCacheSize == 0 {
		opts.RefineCacheSize = 64
	}
	s := &Server{d: d, opts: opts, mux: http.NewServeMux()}
	if opts.SigmaCacheSize > 0 {
		s.sigmaCache = protect.NewCache(opts.SigmaCacheSize)
	}
	if opts.RefineCacheSize > 0 {
		s.refineCache = protect.NewCache(opts.RefineCacheSize)
	}
	if reg := opts.Metrics; reg != nil {
		s.met = &serverMetrics{
			requests: reg.CounterVec("rdf_http_requests_total",
				"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
			latency: reg.HistogramVec("rdf_http_request_seconds",
				"HTTP request latency, by endpoint.", metrics.DefLatencyBuckets, "endpoint"),
			inFlight: reg.GaugeVec("rdf_http_in_flight",
				"Requests currently being served, by endpoint.", "endpoint"),
			slow: reg.CounterVec("rdf_http_slow_requests_total",
				"Requests slower than the -slow-request threshold, by endpoint.", "endpoint"),
		}
		// Refine staleness: how many epochs the live dataset has
		// advanced past the snapshot the current refinement was computed
		// on — the "is the background refiner keeping up" signal. With a
		// refiner but no result yet, everything is stale (the full
		// epoch); without a refiner the series reads 0.
		reg.GaugeFunc("rdf_refine_staleness_epochs",
			"Epochs the live dataset is ahead of the last refinement's snapshot.",
			s.refineStaleness)
		reg.AttachCounter("rdf_sigma_signature_scans_total",
			"Full signature-list scans by the pairwise closed forms (process-wide).",
			rules.SignatureScanCounter())
		reg.AttachCounter("rdf_refine_restarts_total",
			"Refinement local-search restarts executed (process-wide).",
			refine.RestartCounter())
		if opts.Protect != nil {
			opts.Protect.Register(reg)
		}
		if opts.RateLimit != nil {
			opts.RateLimit.Register(reg)
		}
		// The cache families are registered (and their children
		// materialized at 0) whether or not the caches are enabled, so a
		// scrape always carries the series.
		hits := reg.CounterVec("rdf_cache_hits_total",
			"Epoch-keyed response cache hits, by endpoint.", "endpoint")
		misses := reg.CounterVec("rdf_cache_misses_total",
			"Epoch-keyed response cache misses, by endpoint.", "endpoint")
		stale := reg.CounterVec("rdf_cache_stale_served_total",
			"Stale cached responses served while revalidating, by endpoint.", "endpoint")
		for _, ep := range []string{"sigma", "refine"} {
			hits.With(ep)
			misses.With(ep)
			stale.With(ep)
		}
		if s.sigmaCache != nil {
			s.sigmaCache.SetMetrics(hits.With("sigma"), misses.With("sigma"), nil)
		}
		if s.refineCache != nil {
			s.refineCache.SetMetrics(hits.With("refine"), misses.With("refine"), stale.With("refine"))
		}
	}
	s.handle("GET /{$}", "index", s.handleIndex)
	s.handle("POST /triples", "triples", s.gated(protect.ClassWrite, s.handleTriples))
	s.handle("GET /sigma", "sigma", s.gated(protect.ClassRead, s.handleSigma))
	s.handle("GET /refine", "refine", s.gated(protect.ClassRefine, s.handleRefine))
	s.handle("GET /stats", "stats", s.handleStats)
	if opts.ClusterWorker {
		s.mountWorker()
	}
	if opts.Metrics != nil {
		// The scrape itself is served unwrapped: scrapes polling at a
		// fixed cadence would otherwise dominate the request histograms.
		s.mux.Handle("GET /metrics", opts.Metrics.Handler())
	}
	if opts.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// refineStaleness is the rdf_refine_staleness_epochs gauge read.
func (s *Server) refineStaleness() float64 {
	if s.opts.Refiner == nil {
		return 0
	}
	epoch := s.d.Epoch()
	last := s.opts.Refiner.Last()
	if last == nil {
		return float64(epoch)
	}
	if epoch <= last.Epoch {
		return 0
	}
	return float64(epoch - last.Epoch)
}

// handle mounts a handler, wrapped with per-endpoint instrumentation
// (and slow-request tracing) when configured.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	if s.met == nil && s.opts.SlowRequest <= 0 {
		s.mux.HandleFunc(pattern, h)
		return
	}
	// Children are materialized once here so the request path never
	// touches the vec maps (status-code children are the exception —
	// cached for the dominant 200).
	var (
		latency  *metrics.Histogram
		inFlight *metrics.Gauge
		slow     *metrics.Counter
		ok200    *metrics.Counter
	)
	if s.met != nil {
		latency = s.met.latency.With(endpoint)
		inFlight = s.met.inFlight.With(endpoint)
		slow = s.met.slow.With(endpoint)
		ok200 = s.met.requests.With(endpoint, "200")
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		trace := newTraceID()
		w.Header().Set("X-Trace-Id", trace)
		if inFlight != nil {
			inFlight.Add(1)
			defer inFlight.Add(-1)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		elapsed := time.Since(t0)
		if s.met != nil {
			latency.Observe(elapsed.Seconds())
			if sw.status == http.StatusOK {
				ok200.Inc()
			} else {
				s.met.requests.With(endpoint, strconv.Itoa(sw.status)).Inc()
			}
		}
		if s.opts.SlowRequest > 0 && elapsed >= s.opts.SlowRequest {
			if slow != nil {
				slow.Inc()
			}
			s.opts.Logf("rdfserved: slow request trace=%s %s %s status=%d elapsed=%s",
				trace, r.Method, r.URL.RequestURI(), sw.status, elapsed.Round(time.Microsecond))
		}
	})
}

// gated wraps a handler with the per-client rate limit and admission
// control for class c: an over-quota client is shed first (before it
// can occupy a queue slot), then the request acquires the class's gate
// (queuing within its context deadline) or is shed with 429 before
// the handler runs any work.
func (s *Server) gated(c protect.Class, h http.HandlerFunc) http.HandlerFunc {
	if s.opts.Protect != nil {
		g := s.opts.Protect.Gate(c)
		inner := h
		h = func(w http.ResponseWriter, r *http.Request) {
			release, err := g.Acquire(r.Context())
			if err != nil {
				writeShed(w, "%s overloaded: %v", c, err)
				return
			}
			defer release()
			inner(w, r)
		}
	}
	if rl := s.opts.RateLimit; rl != nil {
		inner := h
		h = func(w http.ResponseWriter, r *http.Request) {
			if ok, retry := rl.Allow(clientKey(r)); !ok {
				secs := int(retry/time.Second) + 1
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
					"error":             "client rate limit exceeded",
					"retryAfterSeconds": secs,
				})
				return
			}
			inner(w, r)
		}
	}
	return h
}

// ClientIDHeader names the header a client uses to identify itself to
// the per-client rate limiter; without it the limit keys on the
// remote IP.
const ClientIDHeader = "X-Client-Id"

// clientKey extracts the rate-limit key: the client ID header when
// present, else the remote address with the ephemeral port stripped
// (so one host maps to one bucket across connections).
func clientKey(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.HasSuffix(host, "]") {
		host = host[:i]
	}
	return host
}

// shedRetryAfterSeconds is the retry hint on overload 429s, mirroring
// the empty-dataset 503 convention.
const shedRetryAfterSeconds = 1

// writeShed writes the overload rejection: 429 with a Retry-After
// header and retryAfterSeconds in the JSON body. A shed request did no
// work — the client retries the identical call after the hint.
func writeShed(w http.ResponseWriter, format string, args ...interface{}) {
	w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfterSeconds))
	writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
		"error":             fmt.Sprintf(format, args...),
		"retryAfterSeconds": shedRetryAfterSeconds,
	})
}

// statusWriter captures the response status for the request counter's
// code label.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// the ingest path can set per-request read deadlines through the
// instrumentation wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// traceState seeds trace IDs: a per-process random base (wall clock at
// init) mixed with an atomic sequence — unique within a process run
// and unlikely to collide across restarts, at the cost of one atomic
// add per request.
var (
	traceBase    = uint64(time.Now().UnixNano())
	traceCounter atomic.Uint64
)

// newTraceID returns a 16-hex-digit request trace ID (splitmix64 over
// base + sequence).
func newTraceID() string {
	z := traceBase + 0x9E3779B97F4A7C15*traceCounter.Add(1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	var b [16]byte
	const hex = "0123456789abcdef"
	for i := range b {
		b[i] = hex[z>>60]
		z <<= 4
	}
	return string(b[:])
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// marshalBody renders v exactly as writeJSON would (indented, trailing
// newline) into a byte slice the response caches can hold.
func marshalBody(v interface{}) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b, _ = json.Marshal(map[string]string{"error": err.Error()})
	}
	return append(b, '\n')
}

// writeBody writes a pre-rendered JSON body with the cache verdict
// ("hit", "miss", "stale", "bypass") in the X-Cache header.
func writeBody(w http.ResponseWriter, verdict string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", verdict)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"service": "rdfserved",
		"endpoints": []string{
			"POST /triples   {\"add\": [\"<s> <p> <o> .\"], \"remove\": [...]} or raw N-Triples body",
			"GET  /sigma?fn=cov|sim|dep[p1,p2]|symdep[p1,p2]|depdisj[p1,p2]",
			"GET  /refine?fn=cov&mode=lowestk|highesttheta&theta=0.9&k=2&workers=0&engine=auto",
			"GET  /stats",
		},
		"stats": s.d.Stats(),
	})
}

// ingestResponse is the POST /triples reply. Durable is absent when
// the server runs without a data directory, true when the batch was
// fsynced before the response, and false when fsync is off, the WAL
// failed, or the request deadline expired before the covering fsync
// (the batch stays applied and becomes durable shortly).
// RetryAfterSeconds rides on 429 sheds, matching the Retry-After
// header.
type ingestResponse struct {
	Added             int        `json:"added"`
	Removed           int        `json:"removed"`
	Durable           *bool      `json:"durable,omitempty"`
	RetryAfterSeconds int        `json:"retryAfterSeconds,omitempty"`
	Stats             incr.Stats `json:"stats"`
	Error             string     `json:"error,omitempty"`
}

// awaitDurable runs the WAL barrier after a mutating batch, bounded by
// the request context. It returns the response's durable field (nil
// when no WAL is attached) and an error when the batch applied in
// memory but is not yet known durable — a context error for a deadline
// (report durable=false, not a failure) or the store's latched fault.
func (s *Server) awaitDurable(ctx context.Context) (*bool, error) {
	if s.opts.Durable == nil {
		return nil, nil
	}
	durable := new(bool)
	if err := s.opts.Durable.BarrierCtx(ctx); err != nil {
		return durable, err
	}
	*durable = s.opts.Durable.Synchronous()
	return durable, nil
}

// isCtxErr reports whether err is a context deadline/cancellation —
// overload or client impatience, never a server fault.
func isCtxErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// isBodyTooLarge reports whether err is MaxBytesReader tripping.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// bodyLimitHit probes whether the MaxBytesReader tripped. A body cut
// off at the limit surfaces as a parse error on the truncated final
// line — not as a MaxBytesError — so on any decode error ask the
// reader itself: at the limit, one more read fails with the marker
// error; short of it, the probe reads a buffered byte and the decode
// error stands on its own.
func bodyLimitHit(body io.Reader) bool {
	var one [1]byte
	_, err := body.Read(one[:])
	return isBodyTooLarge(err)
}

func parseLines(lines []string, what string) ([]rdf.Triple, error) {
	out := make([]rdf.Triple, 0, len(lines))
	for i, line := range lines {
		t, ok, err := rdf.ParseNTriplesLine(line, i+1)
		if err != nil {
			return nil, fmt.Errorf("%s[%d]: %v", what, i, err)
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

func (s *Server) handleTriples(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if d := s.opts.WriteDeadline; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
		// Bound the body read too: a slow-trickling client trips the
		// connection read deadline instead of parking an admitted write
		// slot forever. Ignore ErrNotSupported (httptest recorders).
		_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(d))
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	defer func() { _, _ = io.Copy(io.Discard, body); _ = body.Close() }()

	// Backpressure: admit the batch only once the WAL group-commit
	// backlog is under its bound. Blocking here (within the deadline)
	// is what keeps a write burst from growing the pending buffers
	// without bound; a deadline expiry is a shed, not a failure —
	// nothing was applied yet.
	if s.opts.Backlog != nil && s.opts.MaxBacklogBytes > 0 {
		if err := s.opts.Backlog.AwaitBacklog(ctx, s.opts.MaxBacklogBytes); err != nil {
			if isCtxErr(err) {
				writeShed(w, "ingest backlog full: %v", err)
				return
			}
			writeError(w, http.StatusInternalServerError, "durability layer failed: %v", err)
			return
		}
	}

	ct := r.Header.Get("Content-Type")
	var added, removed int
	if strings.HasPrefix(ct, "application/json") {
		var req struct {
			Add    []string `json:"add"`
			Remove []string `json:"remove"`
		}
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			if isBodyTooLarge(err) || bodyLimitHit(body) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"request body exceeds the %d-byte limit", s.opts.MaxBodyBytes)
				return
			}
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		add, err := parseLines(req.Add, "add")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		remove, err := parseLines(req.Remove, "remove")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		added, removed = s.d.Apply(add, remove)
	} else {
		// Raw N-Triples: stream adds in bounded batches through the
		// interning decoder, so arbitrarily large dumps ingest without
		// building a triple list in memory and without allocating
		// strings for terms the dataset has already seen. The context
		// bounds the stream: past the deadline the decode stops and the
		// request is shed with the applied prefix reported (re-posting
		// the same document is idempotent — applied triples dedup).
		var err error
		added, err = s.d.AddNTriplesCtx(ctx, body, s.opts.IngestBatch)
		if err != nil {
			s.kickRefiner()
			durable, _ := s.awaitDurable(ctx)
			status := http.StatusBadRequest
			msg := fmt.Sprintf("stream aborted: %v (triples before the error were applied)", err)
			retryAfter := 0
			switch {
			case isCtxErr(err):
				status = http.StatusTooManyRequests
				msg = fmt.Sprintf("ingest deadline exceeded after %d triples (applied; re-post to continue): %v", added, err)
				retryAfter = shedRetryAfterSeconds
				w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfterSeconds))
			case isBodyTooLarge(err) || bodyLimitHit(body):
				status = http.StatusRequestEntityTooLarge
				msg = fmt.Sprintf("request body exceeds the %d-byte limit (%d triples before the limit were applied)", s.opts.MaxBodyBytes, added)
			}
			writeJSON(w, status, ingestResponse{
				Added: added, Durable: durable, RetryAfterSeconds: retryAfter,
				Stats: s.d.Stats(), Error: msg,
			})
			return
		}
	}
	s.kickRefiner()
	durable, err := s.awaitDurable(ctx)
	if err != nil {
		if isCtxErr(err) {
			// The batch is applied and will be durable at the next flush
			// cycle; the deadline just expired before the covering fsync.
			// Durable=false already tells the client exactly that.
			writeJSON(w, http.StatusOK, ingestResponse{
				Added: added, Removed: removed, Durable: durable, Stats: s.d.Stats(),
				Error: "durability pending: request deadline expired before the covering fsync",
			})
			return
		}
		writeJSON(w, http.StatusInternalServerError, ingestResponse{
			Added: added, Removed: removed, Durable: durable, Stats: s.d.Stats(),
			Error: fmt.Sprintf("batch applied in memory but not durable: %v", err),
		})
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Added: added, Removed: removed, Durable: durable, Stats: s.d.Stats()})
}

// kickRefiner triggers a background drift-policy refresh, coalescing
// bursts: one refresh runs at a time, and a batch landing mid-refresh
// queues exactly one more pass. The queued flag is raised before the
// single-flight latch is tried, so a kick racing a worker's exit is
// never lost — either the worker's drain loop or its exit re-check
// observes it, or this kick's own latch attempt succeeds.
func (s *Server) kickRefiner() {
	if s.opts.Refiner == nil {
		return
	}
	s.refreshQueued.Store(true)
	s.tryStartRefresh()
}

func (s *Server) tryStartRefresh() {
	if !s.refreshing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		for s.refreshQueued.CompareAndSwap(true, false) {
			if _, _, err := s.opts.Refiner.Refresh(false); err != nil {
				s.opts.Logf("rdfserved: background refine: %v", err)
			}
		}
		s.refreshing.Store(false)
		// A kick may have queued between the drain loop's last check and
		// the latch release.
		if s.refreshQueued.Load() {
			s.tryStartRefresh()
		}
	}()
}

// sigmaRetryAfterSeconds is the poll hint returned with the
// empty-dataset 503.
const sigmaRetryAfterSeconds = 1

// handleSigma answers GET /sigma. Status codes:
//
//	200 — σ computed, from the live aggregates ("stats" present) or a
//	      snapshot ("epoch" present)
//	400 — unknown or malformed fn parameter
//	503 — the dataset is empty, so no measure is defined yet (every σ
//	      denominator is vacuous); the response carries a Retry-After
//	      header and retryAfterSeconds in the JSON body, telling
//	      clients to poll again after ingestion starts
//
// Responses are cached keyed by (fn, composite epoch): any effective
// mutation advances the epoch and so invalidates every entry for free.
// The X-Cache header reports hit/miss/bypass; nocache=1 bypasses the
// cache (the ablation probe).
func (s *Server) handleSigma(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("fn")
	if name == "" {
		name = "cov"
	}
	fn, _, err := core.Builtin(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	nocache := r.URL.Query().Get("nocache") == "1"
	key := "fn=" + fn.Name()
	if s.sigmaCache != nil && !nocache {
		// Epoch() is an O(shards) consistent cut, much cheaper than the
		// full Stats merge (O(signatures) on the sharded engine), so hits
		// skip that merge entirely. A hit is by construction the body this
		// handler would compute at this epoch: entries are only Put when
		// the epoch was stable across the computation, and the composite
		// epoch strictly increases per effective mutation. The empty-
		// dataset guard below can run after this check — an empty dataset
		// has no entry at its current epoch, because any mutation that
		// emptied it advanced the epoch past every cached cut.
		if v, ok := s.sigmaCache.Get(key, s.d.Epoch()); ok {
			writeBody(w, "hit", v.([]byte))
			return
		}
	}
	st := s.d.Stats()
	if st.Subjects == 0 {
		// Returning a zero ratio here would be indistinguishable from a
		// genuinely unstructured dataset; tell the client to retry once
		// data has arrived instead.
		w.Header().Set("Retry-After", strconv.Itoa(sigmaRetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error":             "dataset is empty; ingest triples before reading σ",
			"retryAfterSeconds": sigmaRetryAfterSeconds,
			"stats":             st,
		})
		return
	}
	resp := map[string]interface{}{"fn": fn.Name()}
	var ratio rules.Ratio
	live := false
	if cf, ok := fn.(rules.CountsFunc); ok {
		// Closed forms read the live counts in O(|P|) — no snapshot.
		ratio = s.d.Sigma(cf)
		live = true
	} else if pf, ok := fn.(rules.PairCountsFunc); ok {
		// Dependency measures and compiled two-variable rules read the
		// live pair-count aggregates in O(1) — no snapshot — unless the
		// tracker is disabled (live stays false and the read falls back
		// to snapshot evaluation below).
		ratio, live = s.d.SigmaPairs(pf)
	}
	if live {
		// Reuse the guard's Stats read: a second read would pay another
		// all-shard merge on the sharded engine for the same request.
		resp["stats"] = st
	} else {
		snap := s.d.Snapshot()
		var err error
		ratio, err = fn.Eval(snap.View)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp["epoch"] = snap.Epoch
	}
	resp["value"] = ratio.Value()
	resp["ratio"] = ratio.String()
	body := marshalBody(resp)
	verdict := "miss"
	if nocache {
		verdict = "bypass"
	} else if s.sigmaCache != nil && s.d.Epoch() == st.Epoch {
		// Only cache when no write landed during the computation: the
		// epoch re-check guarantees the body is the one any reader at
		// st.Epoch computes, so a cached body is never served for an
		// epoch it doesn't match. (Put's newer-epoch-wins rule closes
		// the remaining store-order race.)
		s.sigmaCache.Put(key, st.Epoch, body)
	}
	writeBody(w, verdict, body)
}

// sortSummary describes one non-empty implicit sort of a refinement.
type sortSummary struct {
	Sort     int     `json:"sort"`
	Sigs     int     `json:"signatures"`
	Subjects int     `json:"subjects"`
	Sigma    float64 `json:"sigma"`
}

// refineParams is one /refine request's parsed search specification,
// including its cache key (the normalized parameter tuple — two raw
// queries meaning the same search share one cache entry).
type refineParams struct {
	fn             rules.Func
	rule           *rules.Rule
	mode           string
	theta1, theta2 int64
	k              int
	opts           refine.SearchOptions
	key            string
}

func parseRefineParams(q url.Values) (*refineParams, error) {
	name := q.Get("fn")
	if name == "" {
		name = "cov"
	}
	fn, rule, err := core.Builtin(name)
	if err != nil {
		return nil, err
	}
	p := &refineParams{fn: fn, rule: rule, mode: q.Get("mode")}
	if p.mode == "" {
		p.mode = "lowestk"
	}
	switch q.Get("engine") {
	case "", "auto":
		p.opts.Engine = refine.EngineAuto
	case "exact":
		p.opts.Engine = refine.EngineExact
	case "heuristic":
		p.opts.Engine = refine.EngineHeuristic
	default:
		return nil, fmt.Errorf("unknown engine %q", q.Get("engine"))
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad workers %q", v)
		}
		p.opts.Workers = n
	}
	// restarts / maxiters bound the heuristic engine's per-instance
	// cost. A lowest-k sweep runs one local search per probed k, so an
	// interactive or load-generating client can cap its worst case here
	// instead of relying on disconnect-cancellation after the fact.
	if v := q.Get("restarts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 64 {
			return nil, fmt.Errorf("bad restarts %q (want 1..64)", v)
		}
		p.opts.Heuristic.Restarts = n
	}
	if v := q.Get("maxiters"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 10000 {
			return nil, fmt.Errorf("bad maxiters %q (want 1..10000)", v)
		}
		p.opts.Heuristic.MaxIters = n
	}
	switch p.mode {
	case "lowestk":
		p.theta1, p.theta2, err = parseTheta(q.Get("theta"))
		if err != nil {
			return nil, err
		}
	case "highesttheta":
		p.k = 2
		if v := q.Get("k"); v != "" {
			p.k, err = strconv.Atoi(v)
			if err != nil || p.k < 1 {
				return nil, fmt.Errorf("bad k %q", v)
			}
		}
	default:
		return nil, fmt.Errorf("unknown mode %q (lowestk|highesttheta)", p.mode)
	}
	p.key = fmt.Sprintf("%s|%s|%d/%d|%d|%d|%d|%d|%d",
		fn.Name(), p.mode, p.theta1, p.theta2, p.k, p.opts.Workers, p.opts.Engine,
		p.opts.Heuristic.Restarts, p.opts.Heuristic.MaxIters)
	return p, nil
}

// run executes the search against a snapshot. Snapshots are immutable,
// so the outcome is a pure function of (snapshot epoch, params) — what
// makes the cache below sound without any post-compute epoch check.
func (p *refineParams) run(snap *incr.Snapshot) (*refine.Outcome, error) {
	if p.mode == "lowestk" {
		return refine.LowestK(snap.View, p.rule, p.fn, p.theta1, p.theta2, p.opts)
	}
	return refine.HighestTheta(snap.View, p.rule, p.fn, p.k, p.opts)
}

// cachedRefine is one cached /refine result: the rendered body for
// exact-epoch hits plus the response map stale serves copy and flag.
type cachedRefine struct {
	body []byte
	resp map[string]interface{}
}

// handleRefine answers GET /refine. Results are cached keyed by
// (params, snapshot epoch). With stale-while-revalidate on, a request
// whose cache entry is for an older epoch gets that result immediately
// — flagged "stale": true with both epochs — while one background
// search per key recomputes at the current epoch; refine storms repeat
// cheap stale reads instead of stacking up expensive searches.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, err := parseRefineParams(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap := s.d.Snapshot()
	if snap.View.NumSignatures() == 0 {
		writeError(w, http.StatusConflict, "dataset is empty")
		return
	}
	nocache := q.Get("nocache") == "1"
	if s.refineCache != nil && !nocache {
		if v, ok := s.refineCache.Get(p.key, snap.Epoch); ok {
			writeBody(w, "hit", v.(*cachedRefine).body)
			return
		}
		if s.opts.RefineSWR {
			if v, _, ok := s.refineCache.GetStale(p.key); ok {
				cr := v.(*cachedRefine)
				if s.refineCache.BeginRefresh(p.key, snap.Epoch) {
					go s.revalidateRefine(p, snap)
				}
				// Shallow copy before flagging: the cached map may be
				// serving other requests concurrently.
				stale := make(map[string]interface{}, len(cr.resp)+2)
				for k, val := range cr.resp {
					stale[k] = val
				}
				stale["stale"] = true
				stale["liveEpoch"] = snap.Epoch
				writeBody(w, "stale", marshalBody(stale))
				return
			}
		}
	}
	// The inline search aborts when the client goes away (or the server
	// shuts down): an abandoned /refine must not keep burning cores and
	// holding its admission slot. Run on a copy so the SWR goroutine
	// above — which outlives this request by design — never inherits
	// the request's cancellation.
	inline := *p
	inline.opts.Cancel = r.Context().Done()
	out, err := inline.run(snap)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := refineResponse(snap, p.fn.Name(), p.mode, out)
	body := marshalBody(resp)
	verdict := "miss"
	if nocache {
		verdict = "bypass"
	} else if s.refineCache != nil && r.Context().Err() == nil {
		// A live context certifies the search ran to completion — a
		// cancelled search returns its best-so-far, which must not be
		// cached as the answer for this epoch.
		s.refineCache.Put(p.key, snap.Epoch, &cachedRefine{body: body, resp: resp})
	}
	writeBody(w, verdict, body)
}

// revalidateRefine is the stale-while-revalidate background search:
// recompute at the snapshot the stale read was answered against and
// refresh the cache. Single-flight per key via the cache's refresh
// latch (the caller holds it; released here).
func (s *Server) revalidateRefine(p *refineParams, snap *incr.Snapshot) {
	defer s.refineCache.EndRefresh(p.key)
	out, err := p.run(snap)
	if err != nil {
		s.opts.Logf("rdfserved: background revalidate %s: %v", p.key, err)
		return
	}
	resp := refineResponse(snap, p.fn.Name(), p.mode, out)
	s.refineCache.Put(p.key, snap.Epoch, &cachedRefine{body: marshalBody(resp), resp: resp})
}

// parseTheta converts a decimal threshold ("0.9", default) to an exact
// rational on a 1/1000 grid.
func parseTheta(s string) (int64, int64, error) {
	if s == "" {
		return 900, 1000, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || !(f >= 0 && f <= 1) { // the negated form also rejects NaN
		return 0, 0, fmt.Errorf("bad theta %q (want a decimal in [0,1])", s)
	}
	return int64(f*1000 + 0.5), 1000, nil
}

func refineResponse(snap *incr.Snapshot, fn, mode string, out *refine.Outcome) map[string]interface{} {
	ref := out.Refinement
	var sorts []sortSummary
	if ref != nil {
		views, idx := ref.SortViews(snap.View)
		for i, v := range views {
			sorts = append(sorts, sortSummary{
				Sort:     idx[i],
				Sigs:     v.NumSignatures(),
				Subjects: v.NumSubjects(),
				Sigma:    ref.Values[idx[i]].Value(),
			})
		}
	}
	resp := map[string]interface{}{
		"epoch":     snap.Epoch,
		"fn":        fn,
		"mode":      mode,
		"k":         out.K,
		"theta":     float64(out.Theta1) / float64(out.Theta2),
		"elapsedMs": out.Elapsed.Milliseconds(),
		"instances": out.Instances,
		"exact":     out.Exact,
		"sorts":     sorts,
	}
	if ref != nil {
		resp["minSigma"] = ref.MinSigma
		resp["assignment"] = ref.Assignment
	}
	return resp
}

// balanceSummary describes one per-shard load distribution. Imbalance
// is max/mean — 1 means perfectly even, 2 means the hottest shard
// carries twice its fair share (the signal that a subject-hash skew is
// eating the parallel-ingest speedup).
type balanceSummary struct {
	Min       int     `json:"min"`
	Max       int     `json:"max"`
	Mean      float64 `json:"mean"`
	Imbalance float64 `json:"imbalance"`
}

func summarizeBalance(vals []int) balanceSummary {
	if len(vals) == 0 {
		return balanceSummary{}
	}
	b := balanceSummary{Min: vals[0], Max: vals[0]}
	sum := 0
	for _, v := range vals {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
		sum += v
	}
	b.Mean = float64(sum) / float64(len(vals))
	if b.Mean > 0 {
		b.Imbalance = float64(b.Max) / b.Mean
	}
	return b
}

// shardBalance condenses the per-shard breakdown into max/min/mean
// imbalance summaries over subjects and triples, so an operator reads
// skew at a glance instead of eyeballing the raw array.
func shardBalance(per []incr.Stats) map[string]balanceSummary {
	subjects := make([]int, len(per))
	triples := make([]int, len(per))
	for i, st := range per {
		subjects[i] = st.Subjects
		triples[i] = st.Triples
	}
	return map[string]balanceSummary{
		"subjects": summarizeBalance(subjects),
		"triples":  summarizeBalance(triples),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]interface{}{}
	if sh, ok := s.d.(*incr.Sharded); ok {
		// One all-shard cut, so the per-shard breakdown always sums to
		// the merged totals even while writers are landing.
		merged, per := sh.StatsWithShards()
		resp["stats"] = merged
		resp["shards"] = per
		resp["shardBalance"] = shardBalance(per)
	} else {
		resp["stats"] = s.d.Stats()
	}
	resp["viewStorage"] = s.d.ViewStorage()
	if s.opts.WAL != nil {
		resp["wal"] = s.opts.WAL
	}
	if s.opts.Protect != nil {
		resp["admission"] = s.opts.Protect.Stats()
	}
	if s.opts.RateLimit != nil {
		resp["rateLimit"] = s.opts.RateLimit.Stats()
	}
	if s.sigmaCache != nil || s.refineCache != nil {
		caches := map[string]interface{}{}
		if s.sigmaCache != nil {
			caches["sigma"] = s.sigmaCache.Stats()
		}
		if s.refineCache != nil {
			caches["refine"] = s.refineCache.Stats()
		}
		resp["cache"] = caches
	}
	if s.opts.Backlog != nil {
		resp["backlog"] = map[string]interface{}{
			"pendingBytes": s.opts.Backlog.PendingBytes(),
			"maxBytes":     s.opts.MaxBacklogBytes,
		}
	}
	if ref := s.opts.Refiner; ref != nil {
		if last := ref.Last(); last != nil {
			resp["refinement"] = map[string]interface{}{
				"epoch":     last.Epoch,
				"sigma":     last.Sigma,
				"k":         last.Outcome.K,
				"theta":     float64(last.Outcome.Theta1) / float64(last.Outcome.Theta2),
				"minSigma":  last.Outcome.Refinement.MinSigma,
				"warm":      last.Warm,
				"elapsedMs": last.Outcome.Elapsed.Milliseconds(),
			}
		}
		if need, err := ref.NeedsRefresh(); err == nil {
			resp["refineStale"] = need
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
