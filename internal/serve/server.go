// Package serve exposes an incremental structuredness dataset
// (internal/incr) over HTTP: triple ingestion, live σ reads and
// on-demand refinement against consistent snapshots. It is the
// rdfserved engine, factored out of the command so the full
// request surface is testable with httptest.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
)

// Options configures a Server.
type Options struct {
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// IngestBatch is the Apply batch size for streamed N-Triples bodies
	// (default 10000 triples).
	IngestBatch int
	// Refiner, when set, is refreshed in the background after every
	// mutating batch (single-flight; the σ-drift policy inside the
	// refiner decides whether a search actually runs).
	Refiner *incr.Refiner
	// Logf sinks background-refresh errors and slow-request lines
	// (default log.Printf).
	Logf func(format string, args ...interface{})
	// Durable, when set, is the write-ahead log attached to the
	// engine: POST /triples waits on its Barrier before responding,
	// so a 200 with durable:true means the batch survives a crash.
	Durable DurabilityBarrier
	// Metrics, when set, instruments every endpoint (request counters,
	// latency histograms, in-flight gauges), registers the
	// refine-staleness gauge and the search instrumentation counters,
	// and serves the registry at GET /metrics. The caller registers the
	// engine's own series (Engine.RegisterMetrics) — the server only
	// claims the rdf_http_*, rdf_refine_* and rdf_sigma_* families, so
	// at most one Server per registry.
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
	// SlowRequest, when > 0, logs any request slower than this through
	// Logf, tagged with the request's trace ID (every instrumented
	// response carries it in the X-Trace-Id header).
	SlowRequest time.Duration
	// WAL, when set, is surfaced in GET /stats: durability mode and
	// what recovery replayed at boot (previously only logged).
	WAL *WALInfo
}

// WALInfo is the operator-facing durability summary shown in GET
// /stats. The command layer fills it from wal.Open's RecoveryStats so
// serve stays decoupled from the wal package.
type WALInfo struct {
	// Mode is the fsync policy ("batch", "interval", "off").
	Mode string `json:"mode"`
	// Synchronous reports whether ingest barriers wait for stable
	// storage (false when fsync is off).
	Synchronous bool        `json:"synchronous"`
	Recovery    WALRecovery `json:"recovery"`
}

// WALRecovery mirrors wal.RecoveryStats for the /stats JSON.
type WALRecovery struct {
	Terms       int   `json:"terms"`
	Checkpoints int   `json:"checkpoints"`
	Records     int   `json:"records"`
	Skipped     int   `json:"skipped"`
	Bytes       int64 `json:"bytes"`
	TornBytes   int64 `json:"tornBytes"`
	DurationMs  int64 `json:"durationMs"`
}

// DurabilityBarrier is the slice of the WAL store the server needs
// (implemented by *wal.Store).
type DurabilityBarrier interface {
	// Barrier blocks until every batch applied before the call is
	// durable per the store's sync policy.
	Barrier() error
	// Synchronous reports whether Barrier actually waits for stable
	// storage (false when fsync is disabled).
	Synchronous() bool
}

// Server is the rdfserved HTTP handler. It serves any incr.Engine —
// the single Dataset or the sharded engine; with a Sharded, ingest
// batches route through its per-shard worker pool and /stats reports
// per-shard breakdowns.
type Server struct {
	d    incr.Engine
	opts Options
	mux  *http.ServeMux
	met  *serverMetrics
	// refreshing is the single-flight latch for background refreshes;
	// refreshQueued remembers a batch that arrived mid-refresh.
	refreshing    atomic.Bool
	refreshQueued atomic.Bool
}

// serverMetrics is the per-endpoint HTTP instrumentation family set.
type serverMetrics struct {
	requests *metrics.CounterVec   // endpoint, code
	latency  *metrics.HistogramVec // endpoint
	inFlight *metrics.GaugeVec     // endpoint
	slow     *metrics.CounterVec   // endpoint
}

// New returns a handler serving d.
func New(d incr.Engine, opts Options) *Server {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.IngestBatch == 0 {
		opts.IngestBatch = 10000
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	s := &Server{d: d, opts: opts, mux: http.NewServeMux()}
	if reg := opts.Metrics; reg != nil {
		s.met = &serverMetrics{
			requests: reg.CounterVec("rdf_http_requests_total",
				"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
			latency: reg.HistogramVec("rdf_http_request_seconds",
				"HTTP request latency, by endpoint.", metrics.DefLatencyBuckets, "endpoint"),
			inFlight: reg.GaugeVec("rdf_http_in_flight",
				"Requests currently being served, by endpoint.", "endpoint"),
			slow: reg.CounterVec("rdf_http_slow_requests_total",
				"Requests slower than the -slow-request threshold, by endpoint.", "endpoint"),
		}
		// Refine staleness: how many epochs the live dataset has
		// advanced past the snapshot the current refinement was computed
		// on — the "is the background refiner keeping up" signal. With a
		// refiner but no result yet, everything is stale (the full
		// epoch); without a refiner the series reads 0.
		reg.GaugeFunc("rdf_refine_staleness_epochs",
			"Epochs the live dataset is ahead of the last refinement's snapshot.",
			s.refineStaleness)
		reg.AttachCounter("rdf_sigma_signature_scans_total",
			"Full signature-list scans by the pairwise closed forms (process-wide).",
			rules.SignatureScanCounter())
		reg.AttachCounter("rdf_refine_restarts_total",
			"Refinement local-search restarts executed (process-wide).",
			refine.RestartCounter())
	}
	s.handle("GET /{$}", "index", s.handleIndex)
	s.handle("POST /triples", "triples", s.handleTriples)
	s.handle("GET /sigma", "sigma", s.handleSigma)
	s.handle("GET /refine", "refine", s.handleRefine)
	s.handle("GET /stats", "stats", s.handleStats)
	if opts.Metrics != nil {
		// The scrape itself is served unwrapped: scrapes polling at a
		// fixed cadence would otherwise dominate the request histograms.
		s.mux.Handle("GET /metrics", opts.Metrics.Handler())
	}
	if opts.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// refineStaleness is the rdf_refine_staleness_epochs gauge read.
func (s *Server) refineStaleness() float64 {
	if s.opts.Refiner == nil {
		return 0
	}
	epoch := s.d.Epoch()
	last := s.opts.Refiner.Last()
	if last == nil {
		return float64(epoch)
	}
	if epoch <= last.Epoch {
		return 0
	}
	return float64(epoch - last.Epoch)
}

// handle mounts a handler, wrapped with per-endpoint instrumentation
// (and slow-request tracing) when configured.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	if s.met == nil && s.opts.SlowRequest <= 0 {
		s.mux.HandleFunc(pattern, h)
		return
	}
	// Children are materialized once here so the request path never
	// touches the vec maps (status-code children are the exception —
	// cached for the dominant 200).
	var (
		latency  *metrics.Histogram
		inFlight *metrics.Gauge
		slow     *metrics.Counter
		ok200    *metrics.Counter
	)
	if s.met != nil {
		latency = s.met.latency.With(endpoint)
		inFlight = s.met.inFlight.With(endpoint)
		slow = s.met.slow.With(endpoint)
		ok200 = s.met.requests.With(endpoint, "200")
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		trace := newTraceID()
		w.Header().Set("X-Trace-Id", trace)
		if inFlight != nil {
			inFlight.Add(1)
			defer inFlight.Add(-1)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		elapsed := time.Since(t0)
		if s.met != nil {
			latency.Observe(elapsed.Seconds())
			if sw.status == http.StatusOK {
				ok200.Inc()
			} else {
				s.met.requests.With(endpoint, strconv.Itoa(sw.status)).Inc()
			}
		}
		if s.opts.SlowRequest > 0 && elapsed >= s.opts.SlowRequest {
			if slow != nil {
				slow.Inc()
			}
			s.opts.Logf("rdfserved: slow request trace=%s %s %s status=%d elapsed=%s",
				trace, r.Method, r.URL.RequestURI(), sw.status, elapsed.Round(time.Microsecond))
		}
	})
}

// statusWriter captures the response status for the request counter's
// code label.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// traceState seeds trace IDs: a per-process random base (wall clock at
// init) mixed with an atomic sequence — unique within a process run
// and unlikely to collide across restarts, at the cost of one atomic
// add per request.
var (
	traceBase    = uint64(time.Now().UnixNano())
	traceCounter atomic.Uint64
)

// newTraceID returns a 16-hex-digit request trace ID (splitmix64 over
// base + sequence).
func newTraceID() string {
	z := traceBase + 0x9E3779B97F4A7C15*traceCounter.Add(1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	var b [16]byte
	const hex = "0123456789abcdef"
	for i := range b {
		b[i] = hex[z>>60]
		z <<= 4
	}
	return string(b[:])
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"service": "rdfserved",
		"endpoints": []string{
			"POST /triples   {\"add\": [\"<s> <p> <o> .\"], \"remove\": [...]} or raw N-Triples body",
			"GET  /sigma?fn=cov|sim|dep[p1,p2]|symdep[p1,p2]|depdisj[p1,p2]",
			"GET  /refine?fn=cov&mode=lowestk|highesttheta&theta=0.9&k=2&workers=0&engine=auto",
			"GET  /stats",
		},
		"stats": s.d.Stats(),
	})
}

// ingestResponse is the POST /triples reply. Durable is absent when
// the server runs without a data directory, true when the batch was
// fsynced before the response, and false when fsync is off or the WAL
// failed.
type ingestResponse struct {
	Added   int        `json:"added"`
	Removed int        `json:"removed"`
	Durable *bool      `json:"durable,omitempty"`
	Stats   incr.Stats `json:"stats"`
	Error   string     `json:"error,omitempty"`
}

// awaitDurable runs the WAL barrier after a mutating batch. It returns
// the response's durable field (nil when no WAL is attached) and an
// error when the batch applied in memory but could not be made
// durable.
func (s *Server) awaitDurable() (*bool, error) {
	if s.opts.Durable == nil {
		return nil, nil
	}
	durable := new(bool)
	if err := s.opts.Durable.Barrier(); err != nil {
		return durable, err
	}
	*durable = s.opts.Durable.Synchronous()
	return durable, nil
}

func parseLines(lines []string, what string) ([]rdf.Triple, error) {
	out := make([]rdf.Triple, 0, len(lines))
	for i, line := range lines {
		t, ok, err := rdf.ParseNTriplesLine(line, i+1)
		if err != nil {
			return nil, fmt.Errorf("%s[%d]: %v", what, i, err)
		}
		if ok {
			out = append(out, t)
		}
	}
	return out, nil
}

func (s *Server) handleTriples(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	defer func() { _, _ = io.Copy(io.Discard, body); _ = body.Close() }()

	ct := r.Header.Get("Content-Type")
	var added, removed int
	if strings.HasPrefix(ct, "application/json") {
		var req struct {
			Add    []string `json:"add"`
			Remove []string `json:"remove"`
		}
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		add, err := parseLines(req.Add, "add")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		remove, err := parseLines(req.Remove, "remove")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		added, removed = s.d.Apply(add, remove)
	} else {
		// Raw N-Triples: stream adds in bounded batches through the
		// interning decoder, so arbitrarily large dumps ingest without
		// building a triple list in memory and without allocating
		// strings for terms the dataset has already seen.
		var err error
		added, err = s.d.AddNTriples(body, s.opts.IngestBatch)
		if err != nil {
			s.kickRefiner()
			durable, _ := s.awaitDurable()
			writeJSON(w, http.StatusBadRequest, ingestResponse{
				Added: added, Durable: durable, Stats: s.d.Stats(),
				Error: fmt.Sprintf("stream aborted: %v (triples before the error were applied)", err),
			})
			return
		}
	}
	s.kickRefiner()
	durable, err := s.awaitDurable()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ingestResponse{
			Added: added, Removed: removed, Durable: durable, Stats: s.d.Stats(),
			Error: fmt.Sprintf("batch applied in memory but not durable: %v", err),
		})
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Added: added, Removed: removed, Durable: durable, Stats: s.d.Stats()})
}

// kickRefiner triggers a background drift-policy refresh, coalescing
// bursts: one refresh runs at a time, and a batch landing mid-refresh
// queues exactly one more pass. The queued flag is raised before the
// single-flight latch is tried, so a kick racing a worker's exit is
// never lost — either the worker's drain loop or its exit re-check
// observes it, or this kick's own latch attempt succeeds.
func (s *Server) kickRefiner() {
	if s.opts.Refiner == nil {
		return
	}
	s.refreshQueued.Store(true)
	s.tryStartRefresh()
}

func (s *Server) tryStartRefresh() {
	if !s.refreshing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		for s.refreshQueued.CompareAndSwap(true, false) {
			if _, _, err := s.opts.Refiner.Refresh(false); err != nil {
				s.opts.Logf("rdfserved: background refine: %v", err)
			}
		}
		s.refreshing.Store(false)
		// A kick may have queued between the drain loop's last check and
		// the latch release.
		if s.refreshQueued.Load() {
			s.tryStartRefresh()
		}
	}()
}

// sigmaRetryAfterSeconds is the poll hint returned with the
// empty-dataset 503.
const sigmaRetryAfterSeconds = 1

// handleSigma answers GET /sigma. Status codes:
//
//	200 — σ computed, from the live aggregates ("stats" present) or a
//	      snapshot ("epoch" present)
//	400 — unknown or malformed fn parameter
//	503 — the dataset is empty, so no measure is defined yet (every σ
//	      denominator is vacuous); the response carries a Retry-After
//	      header and retryAfterSeconds in the JSON body, telling
//	      clients to poll again after ingestion starts
func (s *Server) handleSigma(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("fn")
	if name == "" {
		name = "cov"
	}
	fn, _, err := core.Builtin(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.d.Stats()
	if st.Subjects == 0 {
		// Returning a zero ratio here would be indistinguishable from a
		// genuinely unstructured dataset; tell the client to retry once
		// data has arrived instead.
		w.Header().Set("Retry-After", strconv.Itoa(sigmaRetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error":             "dataset is empty; ingest triples before reading σ",
			"retryAfterSeconds": sigmaRetryAfterSeconds,
			"stats":             st,
		})
		return
	}
	resp := map[string]interface{}{"fn": fn.Name()}
	var ratio rules.Ratio
	live := false
	if cf, ok := fn.(rules.CountsFunc); ok {
		// Closed forms read the live counts in O(|P|) — no snapshot.
		ratio = s.d.Sigma(cf)
		live = true
	} else if pf, ok := fn.(rules.PairCountsFunc); ok {
		// Dependency measures and compiled two-variable rules read the
		// live pair-count aggregates in O(1) — no snapshot — unless the
		// tracker is disabled (live stays false and the read falls back
		// to snapshot evaluation below).
		ratio, live = s.d.SigmaPairs(pf)
	}
	if live {
		// Reuse the guard's Stats read: a second read would pay another
		// all-shard merge on the sharded engine for the same request.
		resp["stats"] = st
	} else {
		snap := s.d.Snapshot()
		var err error
		ratio, err = fn.Eval(snap.View)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp["epoch"] = snap.Epoch
	}
	resp["value"] = ratio.Value()
	resp["ratio"] = ratio.String()
	writeJSON(w, http.StatusOK, resp)
}

// sortSummary describes one non-empty implicit sort of a refinement.
type sortSummary struct {
	Sort     int     `json:"sort"`
	Sigs     int     `json:"signatures"`
	Subjects int     `json:"subjects"`
	Sigma    float64 `json:"sigma"`
}

func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("fn")
	if name == "" {
		name = "cov"
	}
	fn, rule, err := core.Builtin(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode := q.Get("mode")
	if mode == "" {
		mode = "lowestk"
	}
	var opts refine.SearchOptions
	switch q.Get("engine") {
	case "", "auto":
		opts.Engine = refine.EngineAuto
	case "exact":
		opts.Engine = refine.EngineExact
	case "heuristic":
		opts.Engine = refine.EngineHeuristic
	default:
		writeError(w, http.StatusBadRequest, "unknown engine %q", q.Get("engine"))
		return
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		opts.Workers = n
	}
	snap := s.d.Snapshot()
	if snap.View.NumSignatures() == 0 {
		writeError(w, http.StatusConflict, "dataset is empty")
		return
	}

	var out *refine.Outcome
	switch mode {
	case "lowestk":
		theta1, theta2, err := parseTheta(q.Get("theta"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		out, err = refine.LowestK(snap.View, rule, fn, theta1, theta2, opts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	case "highesttheta":
		k := 2
		if v := q.Get("k"); v != "" {
			k, err = strconv.Atoi(v)
			if err != nil || k < 1 {
				writeError(w, http.StatusBadRequest, "bad k %q", v)
				return
			}
		}
		out, err = refine.HighestTheta(snap.View, rule, fn, k, opts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (lowestk|highesttheta)", mode)
		return
	}
	writeJSON(w, http.StatusOK, refineResponse(snap, fn.Name(), mode, out))
}

// parseTheta converts a decimal threshold ("0.9", default) to an exact
// rational on a 1/1000 grid.
func parseTheta(s string) (int64, int64, error) {
	if s == "" {
		return 900, 1000, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || !(f >= 0 && f <= 1) { // the negated form also rejects NaN
		return 0, 0, fmt.Errorf("bad theta %q (want a decimal in [0,1])", s)
	}
	return int64(f*1000 + 0.5), 1000, nil
}

func refineResponse(snap *incr.Snapshot, fn, mode string, out *refine.Outcome) map[string]interface{} {
	ref := out.Refinement
	var sorts []sortSummary
	if ref != nil {
		views, idx := ref.SortViews(snap.View)
		for i, v := range views {
			sorts = append(sorts, sortSummary{
				Sort:     idx[i],
				Sigs:     v.NumSignatures(),
				Subjects: v.NumSubjects(),
				Sigma:    ref.Values[idx[i]].Value(),
			})
		}
	}
	resp := map[string]interface{}{
		"epoch":     snap.Epoch,
		"fn":        fn,
		"mode":      mode,
		"k":         out.K,
		"theta":     float64(out.Theta1) / float64(out.Theta2),
		"elapsedMs": out.Elapsed.Milliseconds(),
		"instances": out.Instances,
		"exact":     out.Exact,
		"sorts":     sorts,
	}
	if ref != nil {
		resp["minSigma"] = ref.MinSigma
		resp["assignment"] = ref.Assignment
	}
	return resp
}

// balanceSummary describes one per-shard load distribution. Imbalance
// is max/mean — 1 means perfectly even, 2 means the hottest shard
// carries twice its fair share (the signal that a subject-hash skew is
// eating the parallel-ingest speedup).
type balanceSummary struct {
	Min       int     `json:"min"`
	Max       int     `json:"max"`
	Mean      float64 `json:"mean"`
	Imbalance float64 `json:"imbalance"`
}

func summarizeBalance(vals []int) balanceSummary {
	if len(vals) == 0 {
		return balanceSummary{}
	}
	b := balanceSummary{Min: vals[0], Max: vals[0]}
	sum := 0
	for _, v := range vals {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
		sum += v
	}
	b.Mean = float64(sum) / float64(len(vals))
	if b.Mean > 0 {
		b.Imbalance = float64(b.Max) / b.Mean
	}
	return b
}

// shardBalance condenses the per-shard breakdown into max/min/mean
// imbalance summaries over subjects and triples, so an operator reads
// skew at a glance instead of eyeballing the raw array.
func shardBalance(per []incr.Stats) map[string]balanceSummary {
	subjects := make([]int, len(per))
	triples := make([]int, len(per))
	for i, st := range per {
		subjects[i] = st.Subjects
		triples[i] = st.Triples
	}
	return map[string]balanceSummary{
		"subjects": summarizeBalance(subjects),
		"triples":  summarizeBalance(triples),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]interface{}{}
	if sh, ok := s.d.(*incr.Sharded); ok {
		// One all-shard cut, so the per-shard breakdown always sums to
		// the merged totals even while writers are landing.
		merged, per := sh.StatsWithShards()
		resp["stats"] = merged
		resp["shards"] = per
		resp["shardBalance"] = shardBalance(per)
	} else {
		resp["stats"] = s.d.Stats()
	}
	if s.opts.WAL != nil {
		resp["wal"] = s.opts.WAL
	}
	if ref := s.opts.Refiner; ref != nil {
		if last := ref.Last(); last != nil {
			resp["refinement"] = map[string]interface{}{
				"epoch":     last.Epoch,
				"sigma":     last.Sigma,
				"k":         last.Outcome.K,
				"theta":     float64(last.Outcome.Theta1) / float64(last.Outcome.Theta2),
				"minSigma":  last.Outcome.Refinement.MinSigma,
				"warm":      last.Warm,
				"elapsedMs": last.Outcome.Elapsed.Milliseconds(),
			}
		}
		if need, err := ref.NeedsRefresh(); err == nil {
			resp["refineStale"] = need
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
