package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/protect"
)

func newTestServerOpts(t *testing.T, d incr.Engine, opts Options) *httptest.Server {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	ts := httptest.NewServer(New(d, opts))
	t.Cleanup(ts.Close)
	return ts
}

// seedTriples posts n distinct subjects so σ reads have data.
func seedTriples(t *testing.T, base string, n int) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<http://seed/s%d> <http://seed/p%d> <http://seed/o> .\n", i, i%3)
	}
	resp, err := http.Post(base+"/triples", "text/plain", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status %d", resp.StatusCode)
	}
}

// get returns status, headers and decoded JSON body.
func get(t *testing.T, url string) (int, http.Header, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestAdmissionShed429: a request arriving with the class gate
// saturated and no queue room is rejected 429 with the Retry-After
// header and retryAfterSeconds body — the documented shed contract.
func TestAdmissionShed429(t *testing.T) {
	d := incr.NewDataset(incr.Options{})
	lim := protect.NewLimiter(protect.Limits{
		Read: protect.GateConfig{Limit: 1, Queue: 0},
	})
	ts := newTestServerOpts(t, d, Options{Protect: lim})
	seedTriples(t, ts.URL, 5)

	// Saturate the read gate from outside the HTTP path — deterministic,
	// no racing goroutines.
	release, err := lim.Acquire(protect.ClassRead, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, body := get(t, ts.URL+"/sigma")
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if ra, ok := body["retryAfterSeconds"].(float64); !ok || ra < 1 {
		t.Fatalf("retryAfterSeconds = %v", body["retryAfterSeconds"])
	}
	release()

	// With the slot free the same request is served.
	if status, _, _ := get(t, ts.URL+"/sigma"); status != http.StatusOK {
		t.Fatalf("after release: status = %d, want 200", status)
	}
	// Ungated endpoints answer even while the read gate is saturated.
	release, _ = lim.Acquire(protect.ClassRead, context.Background())
	defer release()
	if status, _, _ := get(t, ts.URL+"/stats"); status != http.StatusOK {
		t.Fatalf("/stats gated: status = %d", status)
	}
}

// TestBodyTooLarge413: both ingest content types reject an over-limit
// body with 413, not a 500 or an OOM.
func TestBodyTooLarge413(t *testing.T) {
	d := incr.NewDataset(incr.Options{})
	ts := newTestServerOpts(t, d, Options{MaxBodyBytes: 512})

	big := strings.Repeat("<http://big/s> <http://big/p> <http://big/o> .\n", 100)
	resp, err := http.Post(ts.URL+"/triples", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("raw: status = %d, want 413", resp.StatusCode)
	}

	bigJSON := fmt.Sprintf(`{"add": [%q]}`, strings.Repeat("x", 1024))
	resp, err = http.Post(ts.URL+"/triples", "application/json", strings.NewReader(bigJSON))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("json: status = %d, want 413", resp.StatusCode)
	}
}

// fullBacklog is a BacklogWaiter stuck over its bound: AwaitBacklog
// always times out against the context.
type fullBacklog struct{}

func (fullBacklog) AwaitBacklog(ctx context.Context, max int64) error {
	<-ctx.Done()
	return ctx.Err()
}
func (fullBacklog) PendingBytes() int64 { return 1 << 30 }

// TestBacklogShed: an ingest request that cannot get under the WAL
// backlog bound within its deadline is shed 429 before applying
// anything.
func TestBacklogShed(t *testing.T) {
	d := incr.NewDataset(incr.Options{})
	ts := newTestServerOpts(t, d, Options{
		Backlog:         fullBacklog{},
		MaxBacklogBytes: 1,
		WriteDeadline:   50 * time.Millisecond,
	})
	resp, err := http.Post(ts.URL+"/triples", "text/plain",
		strings.NewReader("<http://b/s> <http://b/p> <http://b/o> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if d.Epoch() != 0 {
		t.Fatalf("epoch = %d: batch applied despite shed", d.Epoch())
	}
}

// TestSigmaCacheEpochKeyed: repeated same-epoch reads hit the cache
// with byte-identical bodies; any ingest invalidates by epoch advance;
// nocache=1 bypasses.
func TestSigmaCacheEpochKeyed(t *testing.T) {
	d := incr.NewDataset(incr.Options{})
	ts := newTestServerOpts(t, d, Options{})
	seedTriples(t, ts.URL, 10)

	readSigma := func() (string, string) {
		resp, err := http.Get(ts.URL + "/sigma?fn=cov")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sigma: status %d: %s", resp.StatusCode, b)
		}
		return resp.Header.Get("X-Cache"), string(b)
	}

	v1, b1 := readSigma()
	if v1 != "miss" {
		t.Fatalf("first read X-Cache = %q, want miss", v1)
	}
	v2, b2 := readSigma()
	if v2 != "hit" || b2 != b1 {
		t.Fatalf("second read X-Cache = %q (bodies equal: %v), want hit + identical", v2, b2 == b1)
	}

	// Ingest advances the epoch: the cached entry is dead without any
	// explicit invalidation.
	seedTriples(t, ts.URL, 20)
	v3, b3 := readSigma()
	if v3 != "miss" || b3 == b1 {
		t.Fatalf("post-ingest read X-Cache = %q (body changed: %v), want miss + changed", v3, b3 != b1)
	}

	resp, err := http.Get(ts.URL + "/sigma?fn=cov&nocache=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	xc := resp.Header.Get("X-Cache")
	resp.Body.Close()
	if xc != "bypass" {
		t.Fatalf("nocache X-Cache = %q, want bypass", xc)
	}
}

// TestRefineSWR: a refine read after an epoch advance is served the
// previous result flagged stale with both epochs, while a background
// revalidation converges the cache to a fresh hit.
func TestRefineSWR(t *testing.T) {
	d := incr.NewDataset(incr.Options{})
	ts := newTestServerOpts(t, d, Options{RefineSWR: true})
	seedTriples(t, ts.URL, 10)

	refineURL := ts.URL + "/refine?fn=cov&mode=lowestk&theta=0.9&workers=1"
	status, hdr, body := get(t, refineURL)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first refine: status=%d X-Cache=%q", status, hdr.Get("X-Cache"))
	}
	firstEpoch := body["epoch"].(float64)

	if status, hdr, _ = get(t, refineURL); status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second refine: status=%d X-Cache=%q, want hit", status, hdr.Get("X-Cache"))
	}

	seedTriples(t, ts.URL, 20)
	status, hdr, body = get(t, refineURL)
	if status != http.StatusOK || hdr.Get("X-Cache") != "stale" {
		t.Fatalf("post-ingest refine: status=%d X-Cache=%q, want stale", status, hdr.Get("X-Cache"))
	}
	if body["stale"] != true {
		t.Fatalf("stale response missing stale flag: %v", body)
	}
	if body["epoch"].(float64) != firstEpoch {
		t.Fatalf("stale response epoch = %v, want the cached %v", body["epoch"], firstEpoch)
	}
	if le, ok := body["liveEpoch"].(float64); !ok || le <= firstEpoch {
		t.Fatalf("liveEpoch = %v, want > %v", body["liveEpoch"], firstEpoch)
	}

	// The background revalidation lands; reads converge to a fresh hit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, hdr, body = get(t, refineURL)
		if status == http.StatusOK && hdr.Get("X-Cache") == "hit" && body["stale"] == nil {
			if body["epoch"].(float64) <= firstEpoch {
				t.Fatalf("revalidated epoch = %v, want > %v", body["epoch"], firstEpoch)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revalidation never converged: status=%d X-Cache=%q", status, hdr.Get("X-Cache"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCacheNeverStaleUnderRace drives concurrent ingest, σ reads and
// refine reads (run with -race) and asserts the core cache invariant:
// a /sigma response — cached or not — never reports an epoch older
// than a write acknowledged before the read started.
func TestCacheNeverStaleUnderRace(t *testing.T) {
	d := incr.NewSharded(4, incr.Options{})
	ts := newTestServerOpts(t, d, Options{RefineSWR: true})
	seedTriples(t, ts.URL, 10)

	var maxAcked atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: each acknowledged batch raises the acknowledged-epoch
	// floor from its response stats.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nt := fmt.Sprintf("<http://race/w%d-s%d> <http://race/p%d> <http://race/o> .\n", w, i, i%4)
				resp, err := http.Post(ts.URL+"/triples", "text/plain", strings.NewReader(nt))
				if err != nil {
					t.Error(err)
					return
				}
				var ir struct {
					Stats struct {
						Epoch uint64 `json:"epoch"`
					} `json:"stats"`
				}
				err = json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for {
					cur := maxAcked.Load()
					if ir.Stats.Epoch <= cur || maxAcked.CompareAndSwap(cur, ir.Stats.Epoch) {
						break
					}
				}
			}
		}(w)
	}

	// σ readers: the invariant check.
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := maxAcked.Load()
				resp, err := http.Get(ts.URL + "/sigma?fn=cov")
				if err != nil {
					t.Error(err)
					return
				}
				var sr struct {
					Stats struct {
						Epoch uint64 `json:"epoch"`
					} `json:"stats"`
				}
				err = json.NewDecoder(resp.Body).Decode(&sr)
				verdict := resp.Header.Get("X-Cache")
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if sr.Stats.Epoch < floor {
					t.Errorf("σ response (X-Cache=%s) epoch %d below acknowledged floor %d — stale cache served",
						verdict, sr.Stats.Epoch, floor)
					return
				}
			}
		}()
	}

	// Refine reader: exercises the SWR path concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/refine?fn=cov&mode=lowestk&theta=0.9&workers=1")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
}
