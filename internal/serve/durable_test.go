package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/incr"
	"repro/internal/wal"
)

// newDurableServer wires a real WAL store under the HTTP surface.
func newDurableServer(t *testing.T, mode wal.SyncMode) (*httptest.Server, *incr.Dataset, *wal.Store) {
	t.Helper()
	d := incr.NewDataset(incr.Options{})
	s, _, err := wal.Open(t.TempDir(), d.Dict(), []*incr.Dataset{d}, wal.Options{Mode: mode})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(New(d, Options{Logf: t.Logf, Durable: s}))
	t.Cleanup(ts.Close)
	return ts, d, s
}

// TestIngestDurableField: with a WAL attached, POST /triples reports
// durable:true (fsync before response) in batch mode and durable:false
// with fsync off; without a WAL the field is absent.
func TestIngestDurableField(t *testing.T) {
	body := `{"add": ["<s1> <p1> <o1> .", "<s2> <p1> <o2> ."]}`

	t.Run("batch", func(t *testing.T) {
		ts, _, _ := newDurableServer(t, wal.SyncBatch)
		var resp struct {
			Added   int   `json:"added"`
			Durable *bool `json:"durable"`
		}
		if code := postJSON(t, ts.URL+"/triples", body, &resp); code != 200 {
			t.Fatalf("status %d", code)
		}
		if resp.Added != 2 || resp.Durable == nil || !*resp.Durable {
			t.Fatalf("want added=2 durable=true, got %+v", resp)
		}
		// Raw N-Triples path barriers too.
		raw := "<s3> <p1> <o3> .\n"
		r, err := ts.Client().Post(ts.URL+"/triples", "text/plain", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var resp2 struct {
			Durable *bool `json:"durable"`
		}
		if err := json.NewDecoder(r.Body).Decode(&resp2); err != nil {
			t.Fatalf("decode raw-ingest response: %v", err)
		}
		if resp2.Durable == nil || !*resp2.Durable {
			t.Fatalf("raw ingest: want durable=true, got %+v", resp2)
		}
	})

	t.Run("off", func(t *testing.T) {
		ts, _, _ := newDurableServer(t, wal.SyncOff)
		var resp struct {
			Durable *bool `json:"durable"`
		}
		if code := postJSON(t, ts.URL+"/triples", body, &resp); code != 200 {
			t.Fatalf("status %d", code)
		}
		if resp.Durable == nil || *resp.Durable {
			t.Fatalf("fsync off: want durable=false, got durable=%v", resp.Durable)
		}
	})

	t.Run("no-wal", func(t *testing.T) {
		ts, _ := newTestServer(t, false)
		var resp map[string]interface{}
		if code := postJSON(t, ts.URL+"/triples", body, &resp); code != 200 {
			t.Fatalf("status %d", code)
		}
		if _, present := resp["durable"]; present {
			t.Fatalf("durable field present without a WAL: %v", resp)
		}
	})
}

// TestIngestSurvivesRestart: ingest over HTTP, close the store (clean
// shutdown), recover into a fresh engine and serve again — /sigma and
// /stats must match.
func TestIngestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := incr.NewDataset(incr.Options{})
	s, _, err := wal.Open(dir, d.Dict(), []*incr.Dataset{d}, wal.Options{Mode: wal.SyncBatch})
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	ts := httptest.NewServer(New(d, Options{Logf: t.Logf, Durable: s}))
	var resp struct{ Added int }
	lines := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		lines = append(lines, fmt.Sprintf("%q", fmt.Sprintf("<s%d> <p%d> <o> .", i, i%3)))
	}
	body := fmt.Sprintf(`{"add": [%s]}`, strings.Join(lines, ","))
	if code := postJSON(t, ts.URL+"/triples", body, &resp); code != 200 || resp.Added != 8 {
		t.Fatalf("ingest: code=%d resp=%+v", code, resp)
	}
	var sigma1, stats1 map[string]interface{}
	getJSON(t, ts.URL+"/sigma?fn=cov", &sigma1)
	getJSON(t, ts.URL+"/stats", &stats1)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	d2 := incr.NewDataset(incr.Options{})
	s2, rec, err := wal.Open(dir, d2.Dict(), []*incr.Dataset{d2}, wal.Options{Mode: wal.SyncBatch})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer s2.Close()
	if rec.Records != 0 {
		t.Fatalf("clean restart replayed %d records", rec.Records)
	}
	ts2 := httptest.NewServer(New(d2, Options{Logf: t.Logf, Durable: s2}))
	defer ts2.Close()
	var sigma2, stats2 map[string]interface{}
	getJSON(t, ts2.URL+"/sigma?fn=cov", &sigma2)
	getJSON(t, ts2.URL+"/stats", &stats2)
	for _, k := range []string{"value", "ratio"} {
		if fmt.Sprint(sigma1[k]) != fmt.Sprint(sigma2[k]) {
			t.Fatalf("sigma %s diverges after restart: %v vs %v", k, sigma1[k], sigma2[k])
		}
	}
	for _, k := range []string{"triples", "subjects", "signatures"} {
		v1 := stats1["stats"].(map[string]interface{})[k]
		v2 := stats2["stats"].(map[string]interface{})[k]
		if fmt.Sprint(v1) != fmt.Sprint(v2) {
			t.Fatalf("stats %s diverges after restart: %v vs %v", k, v1, v2)
		}
	}
}
