package serve

import (
	"encoding/binary"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/incr"
	"repro/internal/refine"
)

// This file is the worker half of the cluster protocol: the internal
// endpoints a coordinator (internal/cluster) reads from a replica.
// They are mounted only with Options.ClusterWorker — a public node
// never exposes its raw aggregate state — and are deliberately not
// admission-gated: a coordinator health probe or aggregate pull must
// see the node's true state even when client traffic is being shed.

// worker endpoint paths, shared with internal/cluster.
const (
	// WorkerHealthPath answers cheap liveness probes with the current
	// composite epoch.
	WorkerHealthPath = "/internal/health"
	// WorkerAggPath serves the epoch-cut binary σ-aggregate export
	// (incr.AggregateExport wire form).
	WorkerAggPath = "/internal/agg"
	// WorkerViewPath serves the epoch-cut binary snapshot view
	// (uvarint epoch, then the matrix.View wire form).
	WorkerViewPath = "/internal/view"
)

// mountWorker registers the cluster-worker endpoints.
func (s *Server) mountWorker() {
	s.handle("GET "+WorkerHealthPath, "worker_health", s.handleWorkerHealth)
	s.handle("GET "+WorkerAggPath, "worker_agg", s.handleWorkerAgg)
	s.handle("GET "+WorkerViewPath, "worker_view", s.handleWorkerView)
}

// handleWorkerHealth is the heartbeat target: O(shards) epoch read,
// no aggregate merge, so probes stay cheap under any load.
func (s *Server) handleWorkerHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"epoch":  s.d.Epoch(),
	})
}

// handleWorkerAgg serves the node's σ-aggregates at one epoch cut in
// the canonical binary form the coordinator merges exactly.
func (s *Server) handleWorkerAgg(w http.ResponseWriter, r *http.Request) {
	ex, ok := s.d.(incr.AggregateExporter)
	if !ok {
		writeError(w, http.StatusNotImplemented, "engine cannot export aggregates")
		return
	}
	e := ex.ExportAggregates()
	body := e.AppendBinary(nil)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Epoch", strconv.FormatUint(e.Epoch, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// handleWorkerView serves the node's full snapshot view — the fallback
// the coordinator uses for measures with no counts/pair closed form
// and for /refine, merged across nodes with matrix.MergeViews. Layout:
// uvarint epoch, then the matrix.View encoding (self-describing, PR 6
// checkpoint format).
func (s *Server) handleWorkerView(w http.ResponseWriter, r *http.Request) {
	snap := s.d.Snapshot()
	body := binary.AppendUvarint(nil, snap.Epoch)
	body = snap.View.AppendBinary(body)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Epoch", strconv.FormatUint(snap.Epoch, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// RefineParams is the exported handle on a parsed /refine request, so
// the cluster coordinator runs the exact search-and-render pipeline a
// single node runs — against a cross-node merged snapshot — and a
// refinement answered by the cluster is bit-compatible with one
// answered by a worker.
type RefineParams struct {
	p refineParams
}

// ParseRefineQuery parses /refine query parameters (same defaults and
// validation as the single-node handler).
func ParseRefineQuery(q url.Values) (*RefineParams, error) {
	p, err := parseRefineParams(q)
	if err != nil {
		return nil, err
	}
	return &RefineParams{p: *p}, nil
}

// Key returns the normalized parameter tuple — the coordinator's cache
// key, identical to the single-node one.
func (rp *RefineParams) Key() string { return rp.p.key }

// Run executes the search against a snapshot, aborting on cancel.
func (rp *RefineParams) Run(snap *incr.Snapshot, cancel <-chan struct{}) (*refine.Outcome, error) {
	run := rp.p
	run.opts.Cancel = cancel
	return run.run(snap)
}

// Render builds the /refine response body for an outcome — the same
// shape the single-node handler writes.
func (rp *RefineParams) Render(snap *incr.Snapshot, out *refine.Outcome) map[string]interface{} {
	return refineResponse(snap, rp.p.fn.Name(), rp.p.mode, out)
}
