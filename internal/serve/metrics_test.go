package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/refine"
	"repro/internal/rules"
)

// TestMetricsEndToEnd drives a mixed workload through an instrumented
// sharded server and asserts GET /metrics contains every registered
// series family afterwards — the wiring pin for the whole
// observability layer (HTTP, ingest, refine, scan counters).
func TestMetricsEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	d := incr.NewSharded(2, incr.Options{})
	d.RegisterMetrics(reg)

	var logMu sync.Mutex
	var logs []string
	opts := Options{
		Metrics: reg,
		// Every request is "slow" at 1ns, so the trace-ID log path runs.
		SlowRequest: time.Nanosecond,
		Logf: func(format string, args ...interface{}) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
		Refiner: incr.NewRefiner(d, incr.RefinerOptions{
			Fn: rules.CovFunc(), Mode: incr.ModeLowestK, Theta1: 9, Theta2: 10,
			Search: refine.SearchOptions{Engine: refine.EngineHeuristic, Workers: 1,
				Heuristic: refine.HeuristicOptions{Seed: 1}},
		}),
	}
	ts := httptest.NewServer(New(d, opts))
	defer ts.Close()

	// Mixed workload: JSON ingest, raw-NT ingest, σ reads (counts and
	// pair kernels), a refinement, stats, and one client error.
	post := func(body, ct string) *http.Response {
		resp, err := http.Post(ts.URL+"/triples", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp
	}
	post(`{"add":["<http://x/a> <http://x/p> \"1\" .","<http://x/a> <http://x/q> \"2\" .","<http://x/b> <http://x/p> \"3\" ."]}`, "application/json")
	post("<http://x/c> <http://x/q> \"4\" .\n<http://x/d> <http://x/p> \"5\" .\n", "text/plain")
	get := func(path string, want int) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Fatalf("GET %s: missing X-Trace-Id header", path)
		}
	}
	get("/sigma?fn=cov", 200)
	get("/sigma?fn=dep[http://x/p,http://x/q]", 200)
	get("/refine?fn=cov&mode=lowestk&theta=0.5&engine=heuristic&workers=1", 200)
	get("/stats", 200)
	get("/sigma?fn=nosuch", 400)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	// Every family registered anywhere in the stack must be present.
	for _, series := range []string{
		"rdf_http_requests_total",
		"rdf_http_request_seconds_bucket",
		"rdf_http_request_seconds_count",
		"rdf_http_in_flight",
		"rdf_http_slow_requests_total",
		"rdf_refine_staleness_epochs",
		"rdf_refine_restarts_total",
		"rdf_sigma_signature_scans_total",
		"rdf_ingest_triples_total",
		"rdf_ingest_batches_total",
		"rdf_ingest_batch_triples_bucket",
		"rdf_engine_epoch",
		"rdf_engine_signatures",
		"rdf_engine_subjects",
		"rdf_engine_terms",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
	// Specific samples: both ingest shards are labeled, the σ reads
	// landed on the sigma endpoint, and the 400 is coded.
	for _, sample := range []string{
		`rdf_ingest_triples_total{shard="0",op="add"}`,
		`rdf_ingest_triples_total{shard="1",op="add"}`,
		`rdf_http_requests_total{endpoint="sigma",code="200"} 2`,
		`rdf_http_requests_total{endpoint="sigma",code="400"} 1`,
		`rdf_http_requests_total{endpoint="triples",code="200"} 2`,
	} {
		if !strings.Contains(out, sample) {
			t.Errorf("/metrics missing sample %q\n%s", sample, out)
		}
	}

	// The slow-request log fired and carries a trace ID.
	logMu.Lock()
	defer logMu.Unlock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "slow request trace=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-request log line; logs: %v", logs)
	}
}

// TestStatsViewStorageAndGauges pins the storage-breakdown surface:
// /stats carries the viewStorage block and /metrics the matching
// rdf_view_* gauges, on both the single and the sharded engine.
func TestStatsViewStorageAndGauges(t *testing.T) {
	engines := map[string]incr.Engine{
		"single":  incr.NewDataset(incr.Options{}),
		"sharded": incr.NewSharded(3, incr.Options{}),
	}
	for name, d := range engines {
		t.Run(name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			d.RegisterMetrics(reg)
			ts := httptest.NewServer(New(d, Options{Metrics: reg, Logf: t.Logf}))
			defer ts.Close()

			var add []string
			for i := 0; i < 30; i++ {
				add = append(add, fmt.Sprintf("<http://x/s%d> <http://x/p%d> <http://x/o> .", i, i%5))
			}
			body := `{"add":["` + strings.Join(add, `","`) + `"]}`
			if code := postJSON(t, ts.URL+"/triples", body, &struct{}{}); code != 200 {
				t.Fatalf("ingest status %d", code)
			}

			var stats struct {
				Stats       incr.Stats       `json:"stats"`
				Shards      []incr.Stats     `json:"shards"`
				ViewStorage incr.ViewStorage `json:"viewStorage"`
			}
			if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
				t.Fatalf("stats status %d", code)
			}
			vs := stats.ViewStorage
			if vs.SigBytes <= 0 || vs.ViewBytes < vs.SigBytes {
				t.Fatalf("implausible storage breakdown %+v", vs)
			}
			// ViewStorage counts per shard; the sharded breakdown is the
			// per-shard sum, the single engine's is its one snapshot.
			total := stats.Stats.Signatures
			if len(stats.Shards) > 0 {
				total = 0
				for _, sh := range stats.Shards {
					total += sh.Signatures
				}
			}
			if vs.DenseSigs+vs.SparseSigs != total {
				t.Fatalf("dense %d + sparse %d != %d signatures (%+v)",
					vs.DenseSigs, vs.SparseSigs, total, vs)
			}

			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			out := string(raw)
			for _, series := range []string{
				"rdf_view_bytes",
				"rdf_view_sparse_signatures",
				"rdf_view_dense_signatures",
				"rdf_pair_tracker_bytes",
			} {
				if !strings.Contains(out, series) {
					t.Errorf("/metrics missing series %s", series)
				}
			}
		})
	}
}

// TestStatsShardBalanceAndWAL pins the /stats satellites: the
// per-shard imbalance summary and the surfaced WAL recovery info.
func TestStatsShardBalanceAndWAL(t *testing.T) {
	d := incr.NewSharded(4, incr.Options{})
	walInfo := &WALInfo{Mode: "batch", Synchronous: true,
		Recovery: WALRecovery{Terms: 7, Records: 3, DurationMs: 12}}
	ts := httptest.NewServer(New(d, Options{Logf: t.Logf, WAL: walInfo}))
	defer ts.Close()

	var add []string
	for i := 0; i < 40; i++ {
		add = append(add, fmt.Sprintf("<http://x/s%d> <http://x/p> <http://x/o> .", i))
	}
	body := `{"add":["` + strings.Join(add, `","`) + `"]}`
	if code := postJSON(t, ts.URL+"/triples", body, &struct{}{}); code != 200 {
		t.Fatalf("ingest status %d", code)
	}

	var stats struct {
		Shards       []incr.Stats              `json:"shards"`
		ShardBalance map[string]balanceSummary `json:"shardBalance"`
		WAL          *WALInfo                  `json:"wal"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("want 4 shard entries, got %d", len(stats.Shards))
	}
	bal, ok := stats.ShardBalance["subjects"]
	if !ok {
		t.Fatal("shardBalance missing subjects summary")
	}
	if bal.Mean != 10 {
		t.Fatalf("subjects mean %v, want 10 (40 subjects over 4 shards)", bal.Mean)
	}
	if bal.Min > bal.Max || float64(bal.Max) < bal.Mean {
		t.Fatalf("inconsistent balance summary %+v", bal)
	}
	if bal.Imbalance < 1 {
		t.Fatalf("imbalance %v < 1", bal.Imbalance)
	}
	sum := 0
	for _, st := range stats.Shards {
		sum += st.Subjects
	}
	if sum != 40 {
		t.Fatalf("shard subjects sum %d, want 40", sum)
	}
	if stats.WAL == nil || stats.WAL.Mode != "batch" || stats.WAL.Recovery.Terms != 7 {
		t.Fatalf("wal info not surfaced: %+v", stats.WAL)
	}
}
