package serve

import (
	"encoding/binary"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/protect"
	"repro/internal/rdf"
	"repro/internal/rules"
)

// workerFixture is a ClusterWorker-mode server over a small sharded
// engine with data loaded.
func workerFixture(t *testing.T) (*httptest.Server, *incr.Sharded) {
	t.Helper()
	d := incr.NewSharded(2, incr.Options{KeepSubjects: true})
	for i := 0; i < 40; i++ {
		d.Apply([]rdf.Triple{
			{Subject: sub(i), Predicate: prop(i % 3), Object: rdf.NewURI("http://o/x")},
			{Subject: sub(i), Predicate: prop((i + 1) % 3), Object: rdf.NewURI("http://o/y")},
		}, nil)
	}
	ts := httptest.NewServer(New(d, Options{Logf: t.Logf, ClusterWorker: true}))
	t.Cleanup(ts.Close)
	return ts, d
}

func sub(i int) string  { return "http://t/s" + string(rune('a'+i%26)) }
func prop(i int) string { return "http://t/p" + string(rune('a'+i)) }

func getBytes(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// TestWorkerEndpoints checks the three internal endpoints serve the
// engine's exact state: health carries the epoch, /internal/agg
// decodes to the engine's live export, /internal/view decodes to the
// snapshot view.
func TestWorkerEndpoints(t *testing.T) {
	ts, d := workerFixture(t)

	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if code := getJSON(t, ts.URL+WorkerHealthPath, &health); code != http.StatusOK {
		t.Fatalf("health status %d", code)
	}
	if health.Status != "ok" || health.Epoch != d.Epoch() {
		t.Fatalf("health = %+v, engine epoch %d", health, d.Epoch())
	}

	code, body, hdr := getBytes(t, ts.URL+WorkerAggPath)
	if code != http.StatusOK {
		t.Fatalf("agg status %d", code)
	}
	ex, err := incr.DecodeAggregateExport(body)
	if err != nil {
		t.Fatalf("decode agg: %v", err)
	}
	if hdr.Get("X-Epoch") == "" || ex.Epoch != d.Epoch() {
		t.Fatalf("agg epoch %d (header %q), engine %d", ex.Epoch, hdr.Get("X-Epoch"), d.Epoch())
	}
	cov := rules.CovFunc().(rules.CountsFunc)
	if got, want := ex.Sigma(cov), d.SigmaCov(); got.String() != want.String() {
		t.Fatalf("agg σCov %s, engine %s", got, want)
	}

	code, body, _ = getBytes(t, ts.URL+WorkerViewPath)
	if code != http.StatusOK {
		t.Fatalf("view status %d", code)
	}
	epoch, n := binary.Uvarint(body)
	if n <= 0 || epoch != d.Epoch() {
		t.Fatalf("view epoch %d, engine %d", epoch, d.Epoch())
	}
	view, err := matrix.DecodeView(body[n:])
	if err != nil {
		t.Fatalf("decode view: %v", err)
	}
	snap := d.Snapshot()
	if got, want := view.AppendBinary(nil), snap.View.AppendBinary(nil); string(got) != string(want) {
		t.Fatal("decoded view differs from engine snapshot view")
	}
}

// TestWorkerEndpointsHidden checks the internal endpoints are not
// mounted on a public (non-worker) server.
func TestWorkerEndpointsHidden(t *testing.T) {
	ts, _ := newTestServer(t, false)
	for _, p := range []string{WorkerHealthPath, WorkerAggPath, WorkerViewPath} {
		code, _, _ := getBytes(t, ts.URL+p)
		if code != http.StatusNotFound {
			t.Fatalf("%s on public server: status %d, want 404", p, code)
		}
	}
}

// TestRefineParamsExported checks the exported refine pipeline renders
// the same body shape the single-node handler serves, from the same
// key space.
func TestRefineParamsExported(t *testing.T) {
	_, d := workerFixture(t)
	q := url.Values{"fn": {"cov"}, "mode": {"lowestk"}, "theta": {"0.9"}}
	rp, err := ParseRefineQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	rp2, _ := ParseRefineQuery(url.Values{"theta": {"0.900"}})
	if rp.Key() == "" || rp.Key() != rp2.Key() {
		t.Fatalf("equivalent queries have keys %q and %q", rp.Key(), rp2.Key())
	}
	snap := d.Snapshot()
	out, err := rp.Run(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp := rp.Render(snap, out)
	for _, k := range []string{"epoch", "fn", "mode", "k", "theta", "exact", "sorts"} {
		if _, ok := resp[k]; !ok {
			t.Fatalf("rendered response missing %q", k)
		}
	}
	if resp["epoch"] != snap.Epoch {
		t.Fatalf("rendered epoch %v, want %d", resp["epoch"], snap.Epoch)
	}
	if _, err := ParseRefineQuery(url.Values{"fn": {"nope"}}); err == nil {
		t.Fatal("bad fn accepted")
	}
}

// TestRateLimitWired checks the serve wiring: an over-quota client is
// shed with 429 + Retry-After while a distinct client ID still passes,
// and exempt endpoints ignore the limit.
func TestRateLimitWired(t *testing.T) {
	d := incr.NewDataset(incr.Options{})
	d.Apply([]rdf.Triple{{Subject: "http://t/s", Predicate: "http://t/p", Object: rdf.NewURI("http://t/o")}}, nil)
	rl := protect.NewRateLimiter(protect.RateLimitConfig{RPS: 0.01, Burst: 2})
	ts := httptest.NewServer(New(d, Options{Logf: t.Logf, RateLimit: rl}))
	t.Cleanup(ts.Close)

	get := func(client string, path string) (int, http.Header) {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if client != "" {
			req.Header.Set(ClientIDHeader, client)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}
	for i := 0; i < 2; i++ {
		if code, _ := get("alice", "/sigma"); code != http.StatusOK {
			t.Fatalf("alice request %d: status %d", i, code)
		}
	}
	code, hdr := get("alice", "/sigma")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if code, _ := get("bob", "/sigma"); code != http.StatusOK {
		t.Fatalf("bob (fresh client) status %d", code)
	}
	// /stats is exempt: the operator's view survives a client's storm.
	for i := 0; i < 5; i++ {
		if code, _ := get("alice", "/stats"); code != http.StatusOK {
			t.Fatalf("/stats shed: status %d", code)
		}
	}
}
