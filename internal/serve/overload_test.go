package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/protect"
	"repro/internal/wal"
)

// newOverloadServer builds the full protected stack: 4-shard engine,
// real WAL with a group-commit window, admission gates sized small
// enough that a test-scale burst overruns them, and backlog-bounded
// ingest.
func newOverloadServer(t *testing.T) *httptest.Server {
	t.Helper()
	e := incr.NewSharded(4, incr.Options{})
	store, _, err := wal.Open(t.TempDir(), e.Dict(), e.Shards(), wal.Options{
		Mode: wal.SyncInterval, SyncInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	lim := protect.NewLimiter(protect.Limits{
		Read:   protect.GateConfig{Limit: 4, Queue: 4, MaxWait: 50 * time.Millisecond},
		Write:  protect.GateConfig{Limit: 2, Queue: 2, MaxWait: 50 * time.Millisecond},
		Refine: protect.GateConfig{Limit: 1, Queue: 1, MaxWait: 50 * time.Millisecond},
	})
	ts := httptest.NewServer(New(e, Options{
		Logf:            t.Logf,
		Durable:         store,
		Backlog:         store,
		MaxBacklogBytes: 1 << 20,
		WriteDeadline:   2 * time.Second,
		Protect:         lim,
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestOverloadNeverFailsHard drives a 2× burst against the admission
// capacity and asserts the graceful-degradation contract: every
// response is 200 or 429, every 429 carries Retry-After, every worker
// finishes (no shard-lock deadlock), and post-burst latency recovers
// to within a bounded factor of the unloaded baseline.
func TestOverloadNeverFailsHard(t *testing.T) {
	ts := newOverloadServer(t)
	seedTriples(t, ts.URL, 20)
	client := ts.Client()
	client.Timeout = 10 * time.Second

	readOnce := func() (int, bool, time.Duration) {
		t0 := time.Now()
		resp, err := client.Get(ts.URL + "/sigma?fn=cov")
		if err != nil {
			t.Errorf("read: %v", err)
			return 0, false, 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After") != "", time.Since(t0)
	}

	// Unloaded baseline p99 over serial reads (first one warms the
	// cache).
	var base []time.Duration
	for i := 0; i < 30; i++ {
		_, _, d := readOnce()
		base = append(base, d)
	}
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	baseline := base[len(base)*99/100]

	// Burst: 2× the read capacity (limit 4 + queue 4 → 16 concurrent
	// readers) plus writers and refine traffic, long enough to overrun
	// every gate.
	var (
		mu           sync.Mutex
		statuses     = map[int]int{}
		missingRetry int
	)
	record := func(code int, hasRetry bool) {
		mu.Lock()
		statuses[code]++
		if code == http.StatusTooManyRequests && !hasRetry {
			missingRetry++
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				code, hasRetry, _ := readOnce()
				record(code, hasRetry)
			}
		}()
	}
	for wtr := 0; wtr < 6; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				nt := fmt.Sprintf("<http://burst/w%d-s%d> <http://burst/p%d> <http://burst/o> .\n", wtr, i, i%5)
				resp, err := client.Post(ts.URL+"/triples", "text/plain", strings.NewReader(nt))
				if err != nil {
					t.Errorf("write: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				hasRetry := resp.Header.Get("Retry-After") != ""
				resp.Body.Close()
				record(resp.StatusCode, hasRetry)
			}
		}(wtr)
	}
	for rf := 0; rf < 3; rf++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := client.Get(ts.URL + "/refine?fn=cov&mode=lowestk&theta=0.9&workers=1")
				if err != nil {
					t.Errorf("refine: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				hasRetry := resp.Header.Get("Retry-After") != ""
				resp.Body.Close()
				record(resp.StatusCode, hasRetry)
			}
		}()
	}

	// Every worker finishing is the no-deadlock assertion: a stuck
	// shard lock or admission slot leak would park them past the
	// test timeout.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("burst workers did not finish — deadlock or admission slot leak")
	}

	for code := range statuses {
		if code >= 500 {
			t.Errorf("overload produced %d × %d — shedding must never 5xx", statuses[code], code)
		}
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d (×%d) under overload", code, statuses[code])
		}
	}
	if missingRetry > 0 {
		t.Errorf("%d × 429 without a Retry-After header", missingRetry)
	}
	if statuses[http.StatusOK] == 0 {
		t.Error("no request succeeded during the burst")
	}
	t.Logf("burst statuses: %v (baseline p99 %s)", statuses, baseline)

	// Recovery: with the burst gone, serial read p99 returns to within
	// a bounded factor of baseline. The floor keeps the check meaningful
	// on noisy CI hardware rather than flaking on microsecond baselines.
	var rec []time.Duration
	for i := 0; i < 30; i++ {
		code, _, d := readOnce()
		if code != http.StatusOK {
			t.Fatalf("post-burst read status %d", code)
		}
		rec = append(rec, d)
	}
	sort.Slice(rec, func(i, j int) bool { return rec[i] < rec[j] })
	recovered := rec[len(rec)*99/100]
	bound := 3 * baseline
	if floor := 50 * time.Millisecond; bound < floor {
		bound = floor
	}
	if recovered > bound {
		t.Errorf("post-burst p99 %s exceeds bound %s (baseline %s)", recovered, bound, baseline)
	}
}
