package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/refine"
	"repro/internal/rules"
)

func newTestServer(t *testing.T, refiner bool) (*httptest.Server, *incr.Dataset) {
	t.Helper()
	d := incr.NewDataset(incr.Options{})
	return newTestServerWith(t, d, refiner), d
}

func newTestServerWith(t *testing.T, d incr.Engine, refiner bool) *httptest.Server {
	t.Helper()
	opts := Options{Logf: t.Logf}
	if refiner {
		opts.Refiner = incr.NewRefiner(d, incr.RefinerOptions{
			Fn: rules.CovFunc(), Mode: incr.ModeLowestK, Theta1: 9, Theta2: 10,
			Search: refine.SearchOptions{Engine: refine.EngineHeuristic, Workers: 1,
				Heuristic: refine.HeuristicOptions{Seed: 1}},
		})
	}
	ts := httptest.NewServer(New(d, opts))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, out interface{}) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestIngestSigmaRefineStats(t *testing.T) {
	ts, _ := newTestServer(t, false)

	// JSON batch: two clean sorts of subjects.
	var lines []string
	for i := 0; i < 5; i++ {
		lines = append(lines,
			fmt.Sprintf("<http://ex/a%d> <http://ex/p> <http://ex/o> .", i),
			fmt.Sprintf("<http://ex/a%d> <http://ex/q> <http://ex/o> .", i),
			fmt.Sprintf("<http://ex/b%d> <http://ex/r> <http://ex/o> .", i))
	}
	body, _ := json.Marshal(map[string][]string{"add": lines})
	var ing ingestResponse
	if code := postJSON(t, ts.URL+"/triples", string(body), &ing); code != http.StatusOK {
		t.Fatalf("POST /triples = %d (%+v)", code, ing)
	}
	if ing.Added != 15 || ing.Stats.Subjects != 10 || ing.Stats.Signatures != 2 {
		t.Fatalf("ingest = %+v", ing)
	}

	// σCov live: sort A has p,q; sort B has r → ones=15, |S|·|P|=30.
	var sig struct {
		Fn    string  `json:"fn"`
		Value float64 `json:"value"`
	}
	if code := getJSON(t, ts.URL+"/sigma?fn=cov", &sig); code != http.StatusOK {
		t.Fatalf("GET /sigma = %d", code)
	}
	if sig.Fn != "Cov" || sig.Value != 0.5 {
		t.Fatalf("sigma = %+v, want Cov 0.5", sig)
	}

	// Refinement at θ=0.9 splits them into 2 sorts.
	var ref struct {
		K        int           `json:"k"`
		MinSigma float64       `json:"minSigma"`
		Sorts    []sortSummary `json:"sorts"`
		Exact    bool          `json:"exact"`
	}
	if code := getJSON(t, ts.URL+"/refine?fn=cov&theta=0.9&workers=1", &ref); code != http.StatusOK {
		t.Fatalf("GET /refine = %d (%+v)", code, ref)
	}
	if ref.K != 2 || ref.MinSigma < 0.999 || len(ref.Sorts) != 2 {
		t.Fatalf("refine = %+v", ref)
	}

	// Remove sort B entirely; σCov goes to 1.
	var rm []string
	for i := 0; i < 5; i++ {
		rm = append(rm, fmt.Sprintf("<http://ex/b%d> <http://ex/r> <http://ex/o> .", i))
	}
	body, _ = json.Marshal(map[string][]string{"remove": rm})
	postJSON(t, ts.URL+"/triples", string(body), &ing)
	if ing.Removed != 5 || ing.Stats.Subjects != 5 {
		t.Fatalf("remove = %+v", ing)
	}
	getJSON(t, ts.URL+"/sigma", &sig)
	if sig.Value != 1 {
		t.Fatalf("σCov after removal = %v, want 1", sig.Value)
	}

	var stats struct {
		Stats incr.Stats `json:"stats"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK || stats.Stats.Epoch != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRawNTriplesIngestAndErrors(t *testing.T) {
	ts, d := newTestServer(t, false)

	raw := "<http://ex/s1> <http://ex/p> \"v\" .\n<http://ex/s2> <http://ex/p> <http://ex/o> .\n"
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ing ingestResponse
	json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Added != 2 {
		t.Fatalf("raw ingest: %d %+v", resp.StatusCode, ing)
	}
	if d.Stats().Triples != 2 {
		t.Fatalf("dataset has %d triples", d.Stats().Triples)
	}

	// A malformed line mid-stream → 400, earlier triples applied.
	bad := "<http://ex/s3> <http://ex/p> <http://ex/o> .\nnot a triple\n"
	resp, err = http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || ing.Error == "" || ing.Added != 1 {
		t.Fatalf("bad stream: %d %+v", resp.StatusCode, ing)
	}

	// Bad JSON → 400.
	var errResp map[string]string
	if code := postJSON(t, ts.URL+"/triples", `{"add": ["<broken"]}`, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad JSON line = %d", code)
	}

	// Unknown fn → 400; empty-dataset refine → 409 (after clearing).
	var sig map[string]interface{}
	if code := getJSON(t, ts.URL+"/sigma?fn=nope", &sig); code != http.StatusBadRequest {
		t.Fatalf("bad fn = %d", code)
	}
}

func TestRefineOnEmptyDataset(t *testing.T) {
	ts, _ := newTestServer(t, false)
	var out map[string]interface{}
	if code := getJSON(t, ts.URL+"/refine", &out); code != http.StatusConflict {
		t.Fatalf("empty refine = %d (%v)", code, out)
	}
}

// TestConcurrentSigmaDuringIngestion is the service-level race check:
// concurrent /sigma and /stats reads against the current epoch while
// POST /triples batches land.
func TestConcurrentSigmaDuringIngestion(t *testing.T) {
	ts, _ := newTestServer(t, false)
	// Seed the dataset so readers never observe the empty-dataset 503.
	var seed ingestResponse
	if code := postJSON(t, ts.URL+"/triples",
		`{"add": ["<http://ex/seed> <http://ex/p0> \"v\" ."]}`, &seed); code != http.StatusOK {
		t.Fatalf("seed POST = %d", code)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sig struct {
					Value float64 `json:"value"`
				}
				if code := getJSON(t, ts.URL+"/sigma?fn=cov", &sig); code != http.StatusOK {
					t.Errorf("sigma = %d", code)
					return
				}
				if sig.Value < 0 || sig.Value > 1 {
					t.Errorf("σ = %v out of range", sig.Value)
					return
				}
				var stats map[string]interface{}
				getJSON(t, ts.URL+"/stats", &stats)
			}
		}()
	}
	for i := 0; i < 30; i++ {
		var lines []string
		for j := 0; j < 20; j++ {
			lines = append(lines, fmt.Sprintf("<http://ex/s%d> <http://ex/p%d> \"v\" .", (i*20+j)%50, j%7))
		}
		body, _ := json.Marshal(map[string][]string{"add": lines})
		var ing ingestResponse
		if code := postJSON(t, ts.URL+"/triples", string(body), &ing); code != http.StatusOK {
			t.Fatalf("POST = %d", code)
		}
	}
	close(stop)
	wg.Wait()
}

// TestBackgroundRefinerKicksIn checks the drift-policy auto-refresh
// after ingestion, surfaced via /stats.
func TestBackgroundRefinerKicksIn(t *testing.T) {
	ts, _ := newTestServer(t, true)
	var lines []string
	for i := 0; i < 10; i++ {
		lines = append(lines,
			fmt.Sprintf("<http://ex/a%d> <http://ex/p> <http://ex/o> .", i),
			fmt.Sprintf("<http://ex/b%d> <http://ex/q> <http://ex/o> .", i))
	}
	body, _ := json.Marshal(map[string][]string{"add": lines})
	var ing ingestResponse
	postJSON(t, ts.URL+"/triples", string(body), &ing)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats struct {
			Refinement *struct {
				K        int     `json:"k"`
				MinSigma float64 `json:"minSigma"`
			} `json:"refinement"`
			Stale bool `json:"refineStale"`
		}
		getJSON(t, ts.URL+"/stats", &stats)
		if stats.Refinement != nil {
			if stats.Refinement.K != 2 {
				t.Fatalf("auto-refine k = %d, want 2", stats.Refinement.K)
			}
			if stats.Stale {
				t.Fatal("fresh refinement reported stale")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background refinement never appeared in /stats")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// GET /sigma for dependency measures must answer from the live
// pair-count tracker — the "stats" field marks the live path, the
// "epoch" field the snapshot fallback — and agree with snapshot
// evaluation as triples come and go.
func TestSigmaDepLiveReads(t *testing.T) {
	ts, d := newTestServer(t, false)
	lines := []string{
		"<http://ex/s1> <http://ex/p1> <http://ex/o> .",
		"<http://ex/s1> <http://ex/p2> <http://ex/o> .",
		"<http://ex/s2> <http://ex/p1> <http://ex/o> .",
		"<http://ex/s3> <http://ex/p2> <http://ex/o> .",
	}
	body, _ := json.Marshal(map[string][]string{"add": lines})
	var ing ingestResponse
	if code := postJSON(t, ts.URL+"/triples", string(body), &ing); code != http.StatusOK {
		t.Fatalf("POST /triples = %d", code)
	}
	check := func(fn, wantRatio string, wantValue float64) {
		t.Helper()
		var resp struct {
			Value float64                `json:"value"`
			Ratio string                 `json:"ratio"`
			Stats map[string]interface{} `json:"stats"`
			Epoch *uint64                `json:"epoch"`
		}
		if code := getJSON(t, ts.URL+"/sigma?fn="+fn, &resp); code != http.StatusOK {
			t.Fatalf("GET /sigma?fn=%s = %d", fn, code)
		}
		if resp.Epoch != nil || resp.Stats == nil {
			t.Fatalf("fn=%s answered from a snapshot, want the live pair path", fn)
		}
		if resp.Ratio != wantRatio || resp.Value != wantValue {
			t.Fatalf("fn=%s = %q (%v), want %q (%v)", fn, resp.Ratio, resp.Value, wantRatio, wantValue)
		}
	}
	// s1 has p1∧p2; s2 only p1; s3 only p2 → Dep[p1,p2] = 1/2,
	// SymDep = 1/3.
	check("dep[http://ex/p1,http://ex/p2]", "1/2 = 0.5000", 0.5)
	check("symdep[http://ex/p1,http://ex/p2]", "1/3 = 0.3333", 1.0/3)
	// Retract s1's p2: no co-occurrence remains.
	body, _ = json.Marshal(map[string][]string{"remove": {lines[1]}})
	if code := postJSON(t, ts.URL+"/triples", string(body), &ing); code != http.StatusOK {
		t.Fatalf("POST /triples = %d", code)
	}
	check("dep[http://ex/p1,http://ex/p2]", "0/2 = 0.0000", 0)
	// Cross-check the live read against snapshot evaluation.
	fn := rules.SymDepFunc("http://ex/p1", "http://ex/p2")
	live, ok := d.SigmaPairs(fn.(rules.PairCountsFunc))
	if !ok {
		t.Fatal("pair tracking off")
	}
	snap, err := fn.Eval(d.Snapshot().View)
	if err != nil {
		t.Fatal(err)
	}
	if live.Fav.Cmp(snap.Fav) != 0 || live.Tot.Cmp(snap.Tot) != 0 {
		t.Fatalf("live %v != snapshot %v", live, snap)
	}
}

// GET /sigma on an empty dataset must answer 503 with a Retry-After
// header and a JSON retry hint — not a misleading zero ratio — and
// recover to 200 once data arrives.
func TestSigmaEmptyDataset503(t *testing.T) {
	ts, _ := newTestServer(t, false)
	for _, fn := range []string{"", "?fn=cov", "?fn=dep[http://a,http://b]"} {
		resp, err := http.Get(ts.URL + "/sigma" + fn)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error             string `json:"error"`
			RetryAfterSeconds int    `json:"retryAfterSeconds"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("empty /sigma%s = %d, want 503", fn, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" || body.Error == "" || body.RetryAfterSeconds < 1 {
			t.Fatalf("empty /sigma%s: header %q, body %+v", fn, resp.Header.Get("Retry-After"), body)
		}
	}
	// A bad fn still reports 400, even while empty.
	var e map[string]string
	if code := getJSON(t, ts.URL+"/sigma?fn=nope", &e); code != http.StatusBadRequest {
		t.Fatalf("bad fn on empty = %d, want 400", code)
	}
	var ing ingestResponse
	postJSON(t, ts.URL+"/triples", `{"add": ["<http://ex/s> <http://ex/p> <http://ex/o> ."]}`, &ing)
	var sig struct {
		Value float64 `json:"value"`
	}
	if code := getJSON(t, ts.URL+"/sigma?fn=cov", &sig); code != http.StatusOK || sig.Value != 1 {
		t.Fatalf("post-ingest /sigma = %d (%v), want 200 value 1", code, sig.Value)
	}
}

// TestShardedServer drives the full endpoint surface against the
// sharded engine: JSON and raw-NT ingest through the per-shard worker
// pool, live merged σ reads, refinement on merged snapshots, and the
// per-shard stats breakdown.
func TestShardedServer(t *testing.T) {
	sh := incr.NewSharded(3, incr.Options{})
	ts := newTestServerWith(t, sh, false)

	var lines []string
	for i := 0; i < 6; i++ {
		lines = append(lines,
			fmt.Sprintf("<http://ex/a%d> <http://ex/p> <http://ex/o> .", i),
			fmt.Sprintf("<http://ex/a%d> <http://ex/q> <http://ex/o> .", i),
			fmt.Sprintf("<http://ex/b%d> <http://ex/r> <http://ex/o> .", i))
	}
	body, _ := json.Marshal(map[string][]string{"add": lines})
	var ing ingestResponse
	if code := postJSON(t, ts.URL+"/triples", string(body), &ing); code != http.StatusOK {
		t.Fatalf("POST /triples = %d (%+v)", code, ing)
	}
	if ing.Added != 18 || ing.Stats.Subjects != 12 || ing.Stats.Signatures != 2 {
		t.Fatalf("sharded ingest = %+v", ing)
	}

	// Raw N-Triples through the shard worker pool.
	raw := "<http://ex/c1> <http://ex/p> \"v\" .\n<http://ex/c2> <http://ex/q> <http://ex/o> .\n"
	resp, err := http.Post(ts.URL+"/triples", "application/n-triples", strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Added != 2 {
		t.Fatalf("raw sharded ingest: %d %+v", resp.StatusCode, ing)
	}

	// Live merged σ: cov answers from merged counts, dep from merged
	// pair aggregates (the "stats" field marks the live path).
	var sig struct {
		Value float64                `json:"value"`
		Stats map[string]interface{} `json:"stats"`
	}
	if code := getJSON(t, ts.URL+"/sigma?fn=dep[http://ex/p,http://ex/q]", &sig); code != http.StatusOK {
		t.Fatalf("GET /sigma dep = %d", code)
	}
	if sig.Stats == nil {
		t.Fatal("dep σ not answered from the live merged aggregates")
	}
	// 6 a-subjects have p∧q, c1 has p only: Dep = 6/7.
	if want := 6.0 / 7; sig.Value < want-1e-9 || sig.Value > want+1e-9 {
		t.Fatalf("dep = %v, want %v", sig.Value, want)
	}

	// Refinement against the merged snapshot.
	var ref struct {
		K        int     `json:"k"`
		MinSigma float64 `json:"minSigma"`
	}
	if code := getJSON(t, ts.URL+"/refine?fn=cov&theta=0.9&workers=1", &ref); code != http.StatusOK {
		t.Fatalf("GET /refine = %d (%+v)", code, ref)
	}
	if ref.K < 2 || ref.MinSigma < 0.9 {
		t.Fatalf("sharded refine = %+v", ref)
	}

	// /stats carries the per-shard breakdown, consistent with the merge.
	var stats struct {
		Stats  incr.Stats   `json:"stats"`
		Shards []incr.Stats `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	if len(stats.Shards) != 3 {
		t.Fatalf("stats has %d shards, want 3", len(stats.Shards))
	}
	sum := 0
	for _, s := range stats.Shards {
		sum += s.Triples
	}
	if sum != stats.Stats.Triples || stats.Stats.Triples != 20 {
		t.Fatalf("shard triples sum %d, merged %d, want 20", sum, stats.Stats.Triples)
	}
}
