package viz

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/matrix"
)

func testView(t *testing.T) *matrix.View {
	t.Helper()
	props := []string{"http://ex/name", "http://ex/birthDate"}
	sigs := []matrix.Signature{
		{Bits: bitset.FromIndices(2, 0, 1), Count: 10},
		{Bits: bitset.FromIndices(2, 0), Count: 3},
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRender(t *testing.T) {
	out := Render(testView(t), Options{ShowCounts: true})
	if !strings.Contains(out, "×10") || !strings.Contains(out, "×3") {
		t.Fatalf("missing counts:\n%s", out)
	}
	if !strings.Contains(out, "█ █") {
		t.Fatalf("missing filled row:\n%s", out)
	}
	if !strings.Contains(out, "█ ·") {
		t.Fatalf("missing partial row:\n%s", out)
	}
	// Header uses local names, not full URIs.
	if strings.Contains(out, "http") {
		t.Fatalf("header leaked URIs:\n%s", out)
	}
}

func TestRenderMaxRows(t *testing.T) {
	out := Render(testView(t), Options{MaxRows: 1})
	if !strings.Contains(out, "1 more signature sets") {
		t.Fatalf("missing truncation note:\n%s", out)
	}
}

func TestRenderSideBySide(t *testing.T) {
	v := testView(t)
	out := RenderSideBySide([]*matrix.View{v, v}, []string{"left", ""}, Options{})
	if !strings.Contains(out, "left: 13 subjects") {
		t.Fatalf("missing label:\n%s", out)
	}
	if !strings.Contains(out, "sort 2: 13 subjects") {
		t.Fatalf("missing default label:\n%s", out)
	}
}

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://ex/a/name": "name",
		"http://ex#frag":   "frag",
		"plain":            "plain",
		"trailing/":        "trailing/",
	}
	for in, want := range cases {
		if got := localName(in); got != want {
			t.Errorf("localName(%q) = %q, want %q", in, got, want)
		}
	}
}
