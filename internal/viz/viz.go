// Package viz renders ASCII versions of the paper's horizontal-table
// figures: property columns across the top, signature sets as rows in
// decreasing size order, filled cells for present properties (Figures
// 2–7).
package viz

import (
	"fmt"
	"strings"

	"repro/internal/matrix"
)

// Options controls rendering.
type Options struct {
	// MaxRows caps the number of signature rows shown (0 = all).
	MaxRows int
	// Filled and Empty are the cell glyphs (defaults "█" and "·").
	Filled, Empty string
	// ShowCounts appends the signature-set size to each row.
	ShowCounts bool
	// AbbrevLen truncates property names in the header (0 = 12).
	AbbrevLen int
}

func (o *Options) defaults() {
	if o.Filled == "" {
		o.Filled = "█"
	}
	if o.Empty == "" {
		o.Empty = "·"
	}
	if o.AbbrevLen == 0 {
		o.AbbrevLen = 12
	}
}

// Render draws the signature view of v.
func Render(v *matrix.View, opts Options) string {
	opts.defaults()
	var b strings.Builder
	props := v.Properties()
	// Header: vertical property names, like the paper's rotated labels.
	names := make([]string, len(props))
	maxLen := 0
	for i, p := range props {
		n := localName(p)
		if len(n) > opts.AbbrevLen {
			n = n[:opts.AbbrevLen]
		}
		names[i] = n
		if len(n) > maxLen {
			maxLen = len(n)
		}
	}
	for row := 0; row < maxLen; row++ {
		b.WriteString("  ")
		for _, n := range names {
			pad := maxLen - len(n)
			if row < pad {
				b.WriteString("  ")
			} else {
				b.WriteByte(' ')
				b.WriteByte(n[row-pad])
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("  ")
	b.WriteString(strings.Repeat("——", len(props)))
	b.WriteByte('\n')

	rows := v.Signatures()
	shown := len(rows)
	if opts.MaxRows > 0 && shown > opts.MaxRows {
		shown = opts.MaxRows
	}
	for i := 0; i < shown; i++ {
		sg := rows[i]
		b.WriteString("  ")
		for p := range props {
			b.WriteByte(' ')
			if sg.Bits.Test(p) {
				b.WriteString(opts.Filled)
			} else {
				b.WriteString(opts.Empty)
			}
		}
		if opts.ShowCounts {
			fmt.Fprintf(&b, "  ×%d", sg.Count)
		}
		b.WriteByte('\n')
	}
	if shown < len(rows) {
		fmt.Fprintf(&b, "  … %d more signature sets\n", len(rows)-shown)
	}
	return b.String()
}

// RenderSideBySide draws multiple views (a sort refinement) with shared
// columns, separated by headers — the layout of Figures 4–7.
func RenderSideBySide(views []*matrix.View, labels []string, opts Options) string {
	var b strings.Builder
	for i, v := range views {
		label := fmt.Sprintf("sort %d", i+1)
		if i < len(labels) && labels[i] != "" {
			label = labels[i]
		}
		fmt.Fprintf(&b, "—— %s: %d subjects, %d signatures ——\n", label, v.NumSubjects(), v.NumSignatures())
		b.WriteString(Render(v, opts))
		b.WriteByte('\n')
	}
	return b.String()
}

// localName strips a URI down to its final path or fragment segment.
func localName(uri string) string {
	if i := strings.LastIndexAny(uri, "/#"); i >= 0 && i+1 < len(uri) {
		return uri[i+1:]
	}
	return uri
}
