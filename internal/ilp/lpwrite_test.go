package ilp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	m := &Model{}
	x := m.Binary("X[0,1]")
	y := m.IntVar("count", 0, 5)
	m.Add("c1", []Term{{x, 2}, {y, -3}}, LE, 4)
	m.Add("c2", []Term{{x, 1}}, GE, 0)
	m.Add("c3", []Term{{y, 1}}, EQ, 2)
	m.Add("empty", nil, LE, 0)

	var buf bytes.Buffer
	if err := WriteLP(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Minimize",
		"Subject To",
		"c0: 2 X_0_1_ - 3 count <= 4",
		"c1: 1 X_0_1_ >= 0",
		"c2: 1 count = 2",
		"c3: 0 <= 0",
		"Bounds",
		"0 <= count <= 5",
		"Binary",
		"X_0_1_",
		"General",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPUnnamedVars(t *testing.T) {
	m := &Model{}
	v := m.Binary("")
	m.Add("c", []Term{{v, 1}}, GE, 1)
	var buf bytes.Buffer
	if err := WriteLP(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x0") {
		t.Fatalf("unnamed variable not synthesized:\n%s", buf.String())
	}
}
