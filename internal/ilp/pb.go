package ilp

import (
	"sort"
)

// SolvePB decides feasibility of an all-binary model with a
// pseudo-Boolean propagation + chronological backtracking search. It is
// a complete decision procedure: StatusFeasible comes with a verified
// assignment, StatusInfeasible is a proof of unsatisfiability, and
// StatusUnknown is only returned when Options limits are hit.
//
// Propagation maintains, for every constraint Σ aᵢxᵢ ≥ b (all senses
// are normalized to ≥), the maximum achievable left-hand side given the
// current partial assignment. When that maximum drops below b the
// constraint is conflicting; when fixing a single literal would drop it
// below b, the opposite value is implied (unit propagation on
// pseudo-Boolean constraints).
func SolvePB(m *Model, opts Options) Result {
	if !m.AllBinary() {
		panic("ilp: SolvePB requires all-binary model")
	}
	s := newPBState(m)
	// Root propagation.
	if !s.propagate() {
		return Result{Status: StatusInfeasible, Stats: s.stats}
	}
	order := s.branchOrder()
	for {
		// Find next unassigned variable in branching order.
		v := -1
		for ; s.orderPos < len(order); s.orderPos++ {
			if s.value[order[s.orderPos]] == unassigned {
				v = order[s.orderPos]
				break
			}
		}
		if v == -1 {
			vals := make([]int64, len(s.value))
			for i, x := range s.value {
				vals[i] = int64(x)
			}
			return Result{Status: StatusFeasible, Values: vals, Stats: s.stats}
		}
		s.stats.Decisions++
		if opts.MaxDecisions > 0 && s.stats.Decisions > opts.MaxDecisions {
			return Result{Status: StatusUnknown, Stats: s.stats}
		}
		if s.stats.Decisions&63 == 0 && opts.canceled() {
			return Result{Status: StatusUnknown, Stats: s.stats}
		}
		ok := s.decide(v, s.preferred[v])
		for !ok || !s.propagate() {
			s.stats.Conflicts++
			if opts.MaxConflicts > 0 && s.stats.Conflicts > opts.MaxConflicts {
				return Result{Status: StatusUnknown, Stats: s.stats}
			}
			if s.stats.Conflicts&63 == 0 && opts.canceled() {
				return Result{Status: StatusUnknown, Stats: s.stats}
			}
			if !s.backtrack() {
				return Result{Status: StatusInfeasible, Stats: s.stats}
			}
			ok = true // backtrack leaves a propagated, conflict-free state
		}
	}
}

const unassigned = int8(-1)

// pbConstraint is a normalized Σ aᵢxᵢ ≥ b constraint.
type pbConstraint struct {
	vars  []int
	coefs []int64
	rhs   int64
	// maxAct is the maximum achievable LHS under the current partial
	// assignment: Σ_{assigned} aᵢxᵢ + Σ_{unassigned} max(aᵢ, 0).
	maxAct int64
}

type trailEntry struct {
	v        int
	decision bool // true if a decision point (vs propagated)
	tried    int8 // the value assigned
}

type pbState struct {
	m             *Model
	value         []int8
	cons          []pbConstraint
	occ           [][]int32 // var -> constraint indices
	trail         []trailEntry
	stats         Stats
	preferred     []int8
	orderPosStack []int
	orderPos      int
	// dirty tracks constraints whose activity changed since they were
	// last scanned for implications; propagation only revisits those.
	dirty   []int32
	inDirty []bool
}

func newPBState(m *Model) *pbState {
	s := &pbState{
		m:     m,
		value: make([]int8, m.NumVars()),
		occ:   make([][]int32, m.NumVars()),
	}
	for i := range s.value {
		s.value[i] = unassigned
	}
	s.preferred = make([]int8, m.NumVars())
	for v, val := range m.preferred {
		if val == 1 {
			s.preferred[v] = 1
		}
	}
	for _, c := range m.Constraints() {
		switch c.Sense {
		case GE:
			s.addNormalized(c.Terms, c.RHS, +1)
		case LE:
			s.addNormalized(c.Terms, c.RHS, -1)
		case EQ:
			s.addNormalized(c.Terms, c.RHS, +1)
			s.addNormalized(c.Terms, c.RHS, -1)
		}
	}
	s.sortConstraintTerms()
	s.inDirty = make([]bool, len(s.cons))
	for ci := range s.cons {
		for _, v := range s.cons[ci].vars {
			s.occ[v] = append(s.occ[v], int32(ci))
		}
		s.markDirty(int32(ci)) // initial full scan
	}
	return s
}

func (s *pbState) markDirty(ci int32) {
	if !s.inDirty[ci] {
		s.inDirty[ci] = true
		s.dirty = append(s.dirty, ci)
	}
}

// addNormalized adds sign·(Σ aᵢxᵢ) ≥ sign·rhs as a ≥ constraint.
func (s *pbState) addNormalized(terms []Term, rhs int64, sign int64) {
	c := pbConstraint{rhs: sign * rhs}
	for _, t := range terms {
		a := sign * t.Coef
		c.vars = append(c.vars, int(t.Var))
		c.coefs = append(c.coefs, a)
		if a > 0 {
			c.maxAct += a
		}
	}
	s.cons = append(s.cons, c)
}

// branchOrder returns variable indices in branching order.
func (s *pbState) branchOrder() []int {
	seen := make([]bool, s.m.NumVars())
	order := make([]int, 0, s.m.NumVars())
	for _, v := range s.m.priority {
		if !seen[v] {
			seen[v] = true
			order = append(order, int(v))
		}
	}
	for v := 0; v < s.m.NumVars(); v++ {
		if !seen[v] {
			order = append(order, v)
		}
	}
	return order
}

// assign sets v := val, atomically applying activity deltas to every
// constraint mentioning v, and reports whether no constraint became
// conflicting. Even on conflict all deltas are applied, so unassign is
// always an exact inverse.
func (s *pbState) assign(v int, val int8, decision bool) bool {
	s.value[v] = val
	s.trail = append(s.trail, trailEntry{v: v, decision: decision, tried: val})
	s.stats.Propagations++
	ok := true
	for _, ci := range s.occ[v] {
		c := &s.cons[ci]
		a := c.coefAt(v)
		if a > 0 {
			if val == 0 {
				c.maxAct -= a
				s.markDirty(ci)
			}
		} else if val == 1 {
			c.maxAct += a
			s.markDirty(ci)
		}
		if c.maxAct < c.rhs {
			ok = false
		}
	}
	return ok
}

// unassign restores v and the constraint activities.
func (s *pbState) unassign(v int) {
	val := s.value[v]
	for _, ci := range s.occ[v] {
		c := &s.cons[ci]
		a := c.coefAt(v)
		if a > 0 {
			if val == 0 {
				c.maxAct += a
			}
		} else if val == 1 {
			c.maxAct -= a
		}
	}
	s.value[v] = unassigned
}

func (s *pbState) decide(v int, val int8) bool {
	s.orderPosStack = append(s.orderPosStack, s.orderPos)
	return s.assign(v, val, true)
}

// propagate runs pseudo-Boolean unit propagation to a fixpoint over the
// dirty constraint set and reports whether the state is conflict-free.
// Tightening a constraint marks it dirty (via assign), so only touched
// constraints are rescanned; relaxations (backtracking) can never
// create new implications and need no marking.
func (s *pbState) propagate() bool {
	for len(s.dirty) > 0 {
		ci := s.dirty[len(s.dirty)-1]
		s.dirty = s.dirty[:len(s.dirty)-1]
		s.inDirty[ci] = false
		c := &s.cons[ci]
		slack := c.maxAct - c.rhs
		if slack < 0 {
			return false
		}
		for k, v := range c.vars {
			if s.value[v] != unassigned {
				continue
			}
			a := c.coefs[k]
			switch {
			case a > 0 && slack < a:
				// Setting v=0 would drop maxAct below rhs ⇒ v must be 1.
				if !s.assign(v, 1, false) {
					return false
				}
			case a < 0 && slack < -a:
				// Setting v=1 would drop maxAct below rhs ⇒ v must be 0.
				if !s.assign(v, 0, false) {
					return false
				}
			default:
				continue
			}
			slack = c.maxAct - c.rhs
			if slack < 0 {
				return false
			}
		}
	}
	return true
}

// coefAt returns the coefficient of variable v in c (0 if absent).
func (c *pbConstraint) coefAt(v int) int64 {
	// Term lists are sorted at build time for binary search when long.
	if len(c.vars) > 16 {
		i := sort.SearchInts(c.vars, v)
		if i < len(c.vars) && c.vars[i] == v {
			return c.coefs[i]
		}
		return 0
	}
	for i, w := range c.vars {
		if w == v {
			return c.coefs[i]
		}
	}
	return 0
}

// backtrack undoes to the most recent decision whose alternative value
// is untried, flips it, re-propagates, and returns true; returns false
// when the search space is exhausted. On true return the state is
// conflict-free and fully propagated.
func (s *pbState) backtrack() bool {
	// The state below the landing decision was at fixpoint when that
	// decision was made, so pending dirty entries are stale; drop them.
	for _, ci := range s.dirty {
		s.inDirty[ci] = false
	}
	s.dirty = s.dirty[:0]
	for len(s.trail) > 0 {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.unassign(e.v)
		if e.decision {
			s.orderPos = s.orderPosStack[len(s.orderPosStack)-1]
			s.orderPosStack = s.orderPosStack[:len(s.orderPosStack)-1]
			if e.tried == s.preferred[e.v] {
				// Flip to the other value; the flip is recorded as a
				// propagation-level assignment under the remaining prefix,
				// so a later unwind removes it without re-flipping.
				if s.assign(e.v, 1-e.tried, false) && s.propagate() {
					return true
				}
				// Flipping also conflicts: continue unwinding.
				continue
			}
			// Both values tried at this decision: keep unwinding.
		}
	}
	return false
}

// sortConstraintTerms orders long term lists for binary-search lookup.
func (s *pbState) sortConstraintTerms() {
	for ci := range s.cons {
		c := &s.cons[ci]
		if len(c.vars) <= 16 {
			continue
		}
		idx := make([]int, len(c.vars))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return c.vars[idx[a]] < c.vars[idx[b]] })
		nv := make([]int, len(c.vars))
		nc := make([]int64, len(c.coefs))
		for i, j := range idx {
			nv[i] = c.vars[j]
			nc[i] = c.coefs[j]
		}
		c.vars, c.coefs = nv, nc
	}
}
