package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLPDegenerate(t *testing.T) {
	// Klee-Minty-flavoured degenerate problem: redundant constraints and
	// ties in the ratio test must not cycle (Bland's rule).
	lp := &LP{N: 3, C: []float64{10, -57, -9}}
	lp.AddRow([]float64{0.5, -5.5, -2.5}, LE, 0)
	lp.AddRow([]float64{0.5, -1.5, -0.5}, LE, 0)
	lp.AddRow([]float64{1, 0, 0}, LE, 1)
	st, z, _ := SolveLP(lp)
	if st != LPOptimal {
		t.Fatalf("status %v", st)
	}
	if math.Abs(z-1) > 1e-6 {
		t.Fatalf("z = %v, want 1", z)
	}
}

func TestLPEqualityOnly(t *testing.T) {
	// x + y = 2, x − y = 0 ⇒ x = y = 1; maximize x.
	lp := &LP{N: 2, C: []float64{1, 0}}
	lp.AddRow([]float64{1, 1}, EQ, 2)
	lp.AddRow([]float64{1, -1}, EQ, 0)
	st, z, x := SolveLP(lp)
	if st != LPOptimal || math.Abs(z-1) > 1e-6 || math.Abs(x[1]-1) > 1e-6 {
		t.Fatalf("st=%v z=%v x=%v", st, z, x)
	}
}

func TestLPZeroRows(t *testing.T) {
	// No constraints at all: max of a zero objective is fine; a positive
	// objective is unbounded.
	lp := &LP{N: 1, C: []float64{0}}
	st, z, _ := SolveLP(lp)
	if st != LPOptimal || z != 0 {
		t.Fatalf("st=%v z=%v", st, z)
	}
	lp2 := &LP{N: 1, C: []float64{1}}
	st2, _, _ := SolveLP(lp2)
	if st2 != LPUnbounded {
		t.Fatalf("st=%v, want unbounded", st2)
	}
}

// Property: for random bounded LPs, the simplex optimum is feasible and
// at least as good as a sample of random feasible points.
func TestQuickLPOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		lp := &LP{N: n, C: make([]float64, n)}
		for j := range lp.C {
			lp.C[j] = rng.Float64()*4 - 2
		}
		// Box constraints keep it bounded: xⱼ ≤ u.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			lp.AddRow(row, LE, 1+rng.Float64()*5)
		}
		// A few random extra constraints.
		for c := 0; c < rng.Intn(3); c++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 2
			}
			lp.AddRow(row, LE, 1+rng.Float64()*5)
		}
		st, z, x := SolveLP(lp)
		if st != LPOptimal {
			return false
		}
		// Feasibility.
		for i, row := range lp.Rows {
			var lhs float64
			for j := range row {
				lhs += row[j] * x[j]
			}
			if lhs > lp.B[i]+1e-6 {
				return false
			}
		}
		// No sampled feasible point beats it.
		for trial := 0; trial < 50; trial++ {
			y := make([]float64, n)
			for j := range y {
				y[j] = rng.Float64() * 6
			}
			ok := true
			for i, row := range lp.Rows {
				var lhs float64
				for j := range row {
					lhs += row[j] * y[j]
				}
				if lhs > lp.B[i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var zy float64
			for j := range y {
				zy += lp.C[j] * y[j]
			}
			if zy > z+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPBEmptyModel(t *testing.T) {
	m := &Model{}
	m.Binary("x")
	res := SolvePB(m, Options{})
	if res.Status != StatusFeasible {
		t.Fatalf("unconstrained model: %v", res.Status)
	}
}

func TestPBTrivialConstraints(t *testing.T) {
	m := &Model{}
	x := m.Binary("x")
	// 0·x ≥ 1 is unsatisfiable regardless of x.
	m.Add("zero", []Term{{x, 0}}, GE, 1)
	if res := SolvePB(m, Options{}); res.Status != StatusInfeasible {
		t.Fatalf("status %v", res.Status)
	}
	m2 := &Model{}
	y := m2.Binary("y")
	// 0·y ≥ 0 is vacuous.
	m2.Add("zero", []Term{{y, 0}}, GE, 0)
	if res := SolvePB(m2, Options{}); res.Status != StatusFeasible {
		t.Fatalf("status %v", res.Status)
	}
}

func TestPBLargeCoefficients(t *testing.T) {
	// Exercise int64-scale coefficients (as in θ-scaled counts).
	m := &Model{}
	x := m.Binary("x")
	y := m.Binary("y")
	m.Add("big", []Term{{x, 1 << 40}, {y, -(1 << 40)}}, GE, 1)
	res := SolvePB(m, Options{})
	if res.Status != StatusFeasible {
		t.Fatalf("status %v", res.Status)
	}
	if res.Values[x] != 1 || res.Values[y] != 0 {
		t.Fatalf("values %v", res.Values)
	}
}

func TestBnBRespectsNodeBudget(t *testing.T) {
	// 2-coloring an odd cycle: the LP relaxation is feasible (all ½),
	// so branch and bound must actually branch — and hit the budget.
	const n = 9
	m := &Model{}
	x := make([][]Var, n)
	for v := range x {
		x[v] = make([]Var, 2)
		terms := make([]Term, 2)
		for c := 0; c < 2; c++ {
			x[v][c] = m.Binary("")
			terms[c] = Term{x[v][c], 1}
		}
		m.Add("one-color", terms, EQ, 1)
	}
	for v := 0; v < n; v++ {
		w := (v + 1) % n
		for c := 0; c < 2; c++ {
			m.Add("edge", []Term{{x[v][c], 1}, {x[w][c], 1}}, LE, 1)
		}
	}
	res := SolveBnB(m, Options{MaxDecisions: 2})
	if res.Status != StatusUnknown {
		t.Fatalf("status %v, want unknown under tiny budget", res.Status)
	}
	// With an adequate budget it proves infeasibility.
	res = SolveBnB(m, Options{MaxDecisions: 1_000_000})
	if res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}
