package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModelBasics(t *testing.T) {
	m := &Model{}
	x := m.Binary("x")
	y := m.IntVar("y", 0, 5)
	if m.NumVars() != 2 || m.VarName(x) != "x" {
		t.Fatal("var bookkeeping wrong")
	}
	lo, hi := m.Bounds(y)
	if lo != 0 || hi != 5 {
		t.Fatal("bounds wrong")
	}
	m.Add("c", []Term{{x, 1}, {y, 2}, {x, 3}}, LE, 7) // merges x terms
	c := m.Constraints()[0]
	if len(c.Terms) != 2 {
		t.Fatalf("terms not merged: %v", c.Terms)
	}
	if err := m.Check([]int64{1, 1}); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if err := m.Check([]int64{1, 3}); err == nil {
		t.Fatal("violation not detected")
	}
	if err := m.Check([]int64{2, 0}); err == nil {
		t.Fatal("out-of-bounds not detected")
	}
	if m.AllBinary() {
		t.Fatal("AllBinary true with int var")
	}
}

func TestPBSimpleFeasible(t *testing.T) {
	m := &Model{}
	x := m.Binary("x")
	y := m.Binary("y")
	z := m.Binary("z")
	m.Add("sum2", []Term{{x, 1}, {y, 1}, {z, 1}}, EQ, 2)
	m.Add("xy", []Term{{x, 1}, {y, 1}}, LE, 1)
	res := SolvePB(m, Options{})
	if res.Status != StatusFeasible {
		t.Fatalf("status = %v", res.Status)
	}
	if err := m.Check(res.Values); err != nil {
		t.Fatal(err)
	}
	if res.Values[z] != 1 {
		t.Fatalf("z = %d, want 1 (forced)", res.Values[z])
	}
}

func TestPBInfeasible(t *testing.T) {
	m := &Model{}
	x := m.Binary("x")
	y := m.Binary("y")
	m.Add("a", []Term{{x, 1}, {y, 1}}, GE, 2)
	m.Add("b", []Term{{x, 1}, {y, 1}}, LE, 1)
	res := SolvePB(m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v", res.Status)
	}
}

// Pigeonhole: n+1 pigeons into n holes is infeasible — a classic
// stress test for backtracking completeness.
func TestPBPigeonhole(t *testing.T) {
	const holes = 4
	m := &Model{}
	vars := make([][]Var, holes+1)
	for p := range vars {
		vars[p] = make([]Var, holes)
		terms := make([]Term, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = m.Binary("")
			terms[h] = Term{vars[p][h], 1}
		}
		m.Add("pigeon", terms, EQ, 1)
	}
	for h := 0; h < holes; h++ {
		terms := make([]Term, holes+1)
		for p := 0; p <= holes; p++ {
			terms[p] = Term{vars[p][h], 1}
		}
		m.Add("hole", terms, LE, 1)
	}
	res := SolvePB(m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("pigeonhole status = %v", res.Status)
	}
}

func TestPBGraphColoring(t *testing.T) {
	// C5 (odd cycle) is 3-colorable but not 2-colorable.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	build := func(k int) *Model {
		m := &Model{}
		x := make([][]Var, 5)
		for v := range x {
			x[v] = make([]Var, k)
			terms := make([]Term, k)
			for c := 0; c < k; c++ {
				x[v][c] = m.Binary("")
				terms[c] = Term{x[v][c], 1}
			}
			m.Add("one-color", terms, EQ, 1)
		}
		for _, e := range edges {
			for c := 0; c < k; c++ {
				m.Add("edge", []Term{{x[e[0]][c], 1}, {x[e[1]][c], 1}}, LE, 1)
			}
		}
		return m
	}
	if res := SolvePB(build(2), Options{}); res.Status != StatusInfeasible {
		t.Fatalf("C5 2-coloring: %v", res.Status)
	}
	res := SolvePB(build(3), Options{})
	if res.Status != StatusFeasible {
		t.Fatalf("C5 3-coloring: %v", res.Status)
	}
	if err := build(3).Check(res.Values); err != nil {
		t.Fatal(err)
	}
}

func TestPBDecisionLimit(t *testing.T) {
	// A hard infeasible instance with a tiny decision budget → Unknown.
	const holes = 8
	m := &Model{}
	vars := make([][]Var, holes+1)
	for p := range vars {
		vars[p] = make([]Var, holes)
		terms := make([]Term, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = m.Binary("")
			terms[h] = Term{vars[p][h], 1}
		}
		m.Add("pigeon", terms, GE, 1)
	}
	for h := 0; h < holes; h++ {
		terms := make([]Term, holes+1)
		for p := 0; p <= holes; p++ {
			terms[p] = Term{vars[p][h], 1}
		}
		m.Add("hole", terms, LE, 1)
	}
	res := SolvePB(m, Options{MaxDecisions: 5})
	if res.Status != StatusUnknown {
		t.Fatalf("status = %v, want unknown under budget", res.Status)
	}
}

func TestLPBasic(t *testing.T) {
	// max 3x+2y st x+y ≤ 4, x ≤ 2 → x=2, y=2, z=10.
	lp := &LP{N: 2, C: []float64{3, 2}}
	lp.AddRow([]float64{1, 1}, LE, 4)
	lp.AddRow([]float64{1, 0}, LE, 2)
	st, z, x := SolveLP(lp)
	if st != LPOptimal {
		t.Fatalf("status %v", st)
	}
	if math.Abs(z-10) > 1e-6 || math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-2) > 1e-6 {
		t.Fatalf("z=%v x=%v", z, x)
	}
}

func TestLPGEandEQ(t *testing.T) {
	// max x+y st x+y = 3, x ≥ 1, y ≥ 1 → z=3.
	lp := &LP{N: 2, C: []float64{1, 1}}
	lp.AddRow([]float64{1, 1}, EQ, 3)
	lp.AddRow([]float64{1, 0}, GE, 1)
	lp.AddRow([]float64{0, 1}, GE, 1)
	st, z, x := SolveLP(lp)
	if st != LPOptimal || math.Abs(z-3) > 1e-6 {
		t.Fatalf("status %v z=%v x=%v", st, z, x)
	}
}

func TestLPInfeasible(t *testing.T) {
	lp := &LP{N: 1, C: []float64{1}}
	lp.AddRow([]float64{1}, GE, 5)
	lp.AddRow([]float64{1}, LE, 3)
	st, _, _ := SolveLP(lp)
	if st != LPInfeasible {
		t.Fatalf("status %v", st)
	}
}

func TestLPUnbounded(t *testing.T) {
	lp := &LP{N: 1, C: []float64{1}}
	lp.AddRow([]float64{-1}, LE, 0) // x ≥ 0 only
	st, _, _ := SolveLP(lp)
	if st != LPUnbounded {
		t.Fatalf("status %v", st)
	}
}

func TestLPNegativeRHS(t *testing.T) {
	// max −x st −x ≤ −2 (x ≥ 2) → z = −2.
	lp := &LP{N: 1, C: []float64{-1}}
	lp.AddRow([]float64{-1}, LE, -2)
	st, z, x := SolveLP(lp)
	if st != LPOptimal || math.Abs(z+2) > 1e-6 || math.Abs(x[0]-2) > 1e-6 {
		t.Fatalf("status %v z=%v x=%v", st, z, x)
	}
}

func TestBnBMatchesPBSimple(t *testing.T) {
	m := &Model{}
	x := m.Binary("x")
	y := m.Binary("y")
	z := m.Binary("z")
	m.Add("c1", []Term{{x, 2}, {y, 3}, {z, 4}}, GE, 5)
	m.Add("c2", []Term{{x, 1}, {y, 1}, {z, 1}}, LE, 2)
	pb := SolvePB(m, Options{})
	bb := SolveBnB(m, Options{})
	if pb.Status != StatusFeasible || bb.Status != StatusFeasible {
		t.Fatalf("pb=%v bnb=%v", pb.Status, bb.Status)
	}
	if err := m.Check(bb.Values); err != nil {
		t.Fatal(err)
	}
}

func TestBnBIntegerVars(t *testing.T) {
	// 3x + 5y = 14, x,y ∈ [0,10] → x=3,y=1.
	m := &Model{}
	x := m.IntVar("x", 0, 10)
	y := m.IntVar("y", 0, 10)
	m.Add("eq", []Term{{x, 3}, {y, 5}}, EQ, 14)
	res := SolveBnB(m, Options{})
	if res.Status != StatusFeasible {
		t.Fatalf("status %v", res.Status)
	}
	if err := m.Check(res.Values); err != nil {
		t.Fatal(err)
	}
	// 3x + 6y = 14 has no integer solution.
	m2 := &Model{}
	x2 := m2.IntVar("x", 0, 10)
	y2 := m2.IntVar("y", 0, 10)
	m2.Add("eq", []Term{{x2, 3}, {y2, 6}}, EQ, 14)
	if res := SolveBnB(m2, Options{}); res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

// randomBinaryModel builds a small random 0/1 system.
func randomBinaryModel(rng *rand.Rand) *Model {
	m := &Model{}
	n := rng.Intn(8) + 2
	vars := make([]Var, n)
	for i := range vars {
		vars[i] = m.Binary("")
	}
	nc := rng.Intn(8) + 1
	for c := 0; c < nc; c++ {
		var terms []Term
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				terms = append(terms, Term{vars[i], int64(rng.Intn(7) - 3)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		rhs := int64(rng.Intn(9) - 4)
		m.Add("r", terms, sense, rhs)
	}
	return m
}

// bruteForce decides feasibility by enumerating all assignments.
func bruteForce(m *Model) bool {
	n := m.NumVars()
	vals := make([]int64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			vals[i] = int64((mask >> i) & 1)
		}
		if m.Check(vals) == nil {
			return true
		}
	}
	return false
}

// Property: the PB solver agrees with brute force on random systems,
// and every feasible answer verifies.
func TestQuickPBMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomBinaryModel(rng)
		want := bruteForce(m)
		res := SolvePB(m, Options{})
		if res.Status == StatusUnknown {
			return false
		}
		got := res.Status == StatusFeasible
		if got != want {
			return false
		}
		if got {
			return m.Check(res.Values) == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: branch-and-bound agrees with the PB solver.
func TestQuickBnBMatchesPB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomBinaryModel(rng)
		pb := SolvePB(m, Options{})
		bb := SolveBnB(m, Options{MaxDecisions: 100000})
		if pb.Status == StatusUnknown || bb.Status == StatusUnknown {
			return false
		}
		if pb.Status != bb.Status {
			return false
		}
		if bb.Status == StatusFeasible {
			return m.Check(bb.Values) == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityAndPreferred(t *testing.T) {
	m := &Model{}
	x := m.Binary("x")
	y := m.Binary("y")
	m.Add("any", []Term{{x, 1}, {y, 1}}, GE, 1)
	m.SetPriority([]Var{y, x})
	m.SetPreferred(y, 1)
	res := SolvePB(m, Options{})
	if res.Status != StatusFeasible {
		t.Fatalf("status %v", res.Status)
	}
	if res.Values[y] != 1 {
		t.Fatalf("preferred value ignored: y=%d", res.Values[y])
	}
}

func BenchmarkPBColoring(b *testing.B) {
	// Random 3-colorable graph, 20 nodes.
	rng := rand.New(rand.NewSource(3))
	colorOf := make([]int, 20)
	for i := range colorOf {
		colorOf[i] = rng.Intn(3)
	}
	var edges [][2]int
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if colorOf[i] != colorOf[j] && rng.Intn(3) == 0 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		m := &Model{}
		x := make([][]Var, 20)
		for v := range x {
			x[v] = make([]Var, 3)
			terms := make([]Term, 3)
			for c := 0; c < 3; c++ {
				x[v][c] = m.Binary("")
				terms[c] = Term{x[v][c], 1}
			}
			m.Add("one", terms, EQ, 1)
		}
		for _, e := range edges {
			for c := 0; c < 3; c++ {
				m.Add("e", []Term{{x[e[0]][c], 1}, {x[e[1]][c], 1}}, LE, 1)
			}
		}
		if res := SolvePB(m, Options{}); res.Status != StatusFeasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkSimplexDense(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n, mrows = 30, 20
	lp := &LP{N: n, C: make([]float64, n)}
	for j := range lp.C {
		lp.C[j] = rng.Float64()
	}
	for i := 0; i < mrows; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()
		}
		lp.AddRow(row, LE, 10+rng.Float64()*10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, _, _ := SolveLP(lp); st != LPOptimal {
			b.Fatal(st)
		}
	}
}

func TestPBCancel(t *testing.T) {
	// Pre-closed cancel channel: the pigeonhole proof needs far more
	// than 64 decisions/conflicts, so the solver must give up with
	// Unknown at a poll point instead of completing the refutation.
	const holes = 8
	m := &Model{}
	vars := make([][]Var, holes+1)
	for p := range vars {
		vars[p] = make([]Var, holes)
		terms := make([]Term, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = m.Binary("")
			terms[h] = Term{vars[p][h], 1}
		}
		m.Add("pigeon", terms, GE, 1)
	}
	for h := 0; h < holes; h++ {
		terms := make([]Term, holes+1)
		for p := 0; p <= holes; p++ {
			terms[p] = Term{vars[p][h], 1}
		}
		m.Add("hole", terms, LE, 1)
	}
	closed := make(chan struct{})
	close(closed)
	if res := SolvePB(m, Options{Cancel: closed}); res.Status != StatusUnknown {
		t.Fatalf("cancelled SolvePB status = %v, want unknown", res.Status)
	}
	// Sanity: without cancellation the instance is proven infeasible.
	if res := SolvePB(m, Options{}); res.Status != StatusInfeasible {
		t.Fatalf("SolvePB status = %v, want infeasible", res.Status)
	}
}

func TestBnBCancel(t *testing.T) {
	m := &Model{}
	x := m.IntVar("x", 0, 10)
	y := m.IntVar("y", 0, 10)
	m.Add("c", []Term{{x, 2}, {y, 3}}, EQ, 7)
	closed := make(chan struct{})
	close(closed)
	if res := SolveBnB(m, Options{Cancel: closed}); res.Status != StatusUnknown {
		t.Fatalf("cancelled SolveBnB status = %v, want unknown", res.Status)
	}
	if res := SolveBnB(m, Options{}); res.Status != StatusFeasible {
		t.Fatalf("SolveBnB status = %v, want feasible", res.Status)
	}
}
