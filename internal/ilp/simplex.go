package ilp

import (
	"fmt"
	"math"
)

// LPStatus is the outcome of an LP solve.
type LPStatus int

// LP outcomes.
const (
	LPOptimal LPStatus = iota
	LPInfeasible
	LPUnbounded
)

func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	}
	return "?"
}

// LP is a linear program over n non-negative variables:
//
//	maximize    c·x
//	subject to  A x ⟨sense⟩ b,   x ≥ 0
//
// Upper bounds are expressed as ordinary ≤ rows by the caller.
type LP struct {
	N     int
	C     []float64
	Rows  [][]float64 // dense coefficient rows
	Sense []Sense
	B     []float64
}

// AddRow appends a constraint row.
func (lp *LP) AddRow(coefs []float64, sense Sense, rhs float64) {
	row := make([]float64, lp.N)
	copy(row, coefs)
	lp.Rows = append(lp.Rows, row)
	lp.Sense = append(lp.Sense, sense)
	lp.B = append(lp.B, rhs)
}

const eps = 1e-9

// SolveLP runs two-phase dense primal simplex with Bland's rule.
// It returns the status, the optimal objective, and the variable values.
func SolveLP(lp *LP) (LPStatus, float64, []float64) {
	m := len(lp.Rows)
	n := lp.N

	// Standard form: every row becomes an equality with a slack (≤: +s,
	// ≥: −s) and, where needed (≥, =, or negative rhs), an artificial.
	// Column layout: [x (n)] [slacks (m, some unused)] [artificials].
	type rowSpec struct {
		coefs []float64
		rhs   float64
		sense Sense
	}
	specs := make([]rowSpec, m)
	for i := range specs {
		coefs := make([]float64, n)
		copy(coefs, lp.Rows[i])
		rhs := lp.B[i]
		sense := lp.Sense[i]
		if rhs < 0 { // normalize rhs ≥ 0
			for j := range coefs {
				coefs[j] = -coefs[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		specs[i] = rowSpec{coefs: coefs, rhs: rhs, sense: sense}
	}

	nSlack := 0
	slackCol := make([]int, m)
	for i := range specs {
		if specs[i].sense != EQ {
			slackCol[i] = n + nSlack
			nSlack++
		} else {
			slackCol[i] = -1
		}
	}
	nArt := 0
	artCol := make([]int, m)
	for i := range specs {
		if specs[i].sense == LE {
			artCol[i] = -1
		} else {
			artCol[i] = n + nSlack + nArt
			nArt++
		}
	}
	total := n + nSlack + nArt

	// Tableau: m rows × (total + 1); last column is rhs.
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := range t {
		t[i] = make([]float64, total+1)
		copy(t[i], specs[i].coefs)
		if sc := slackCol[i]; sc >= 0 {
			if specs[i].sense == LE {
				t[i][sc] = 1
			} else {
				t[i][sc] = -1
			}
		}
		if ac := artCol[i]; ac >= 0 {
			t[i][ac] = 1
			basis[i] = ac
		} else {
			basis[i] = slackCol[i]
		}
		t[i][total] = specs[i].rhs
	}

	// Phase 1: minimize w = Σ artificials. With the artificials basic,
	// w = Σ bᵢ − Σⱼ (Σᵢ tᵢⱼ)·xⱼ over the artificial rows, so in the
	// maximize-(−w) row convention the objective row is the negated sum
	// of those rows; pivoting stops when no entry is < −eps, and the
	// system is feasible iff w reaches 0 (obj[total] ≥ −eps).
	if nArt > 0 {
		obj := make([]float64, total+1)
		for i := range t {
			if artCol[i] >= 0 {
				for j := 0; j <= total; j++ {
					obj[j] -= t[i][j]
				}
			}
		}
		// Each artificial appears in exactly one row, so after eliminating
		// the basic artificials their reduced costs are exactly 0.
		for j := n + nSlack; j < total; j++ {
			obj[j] = 0
		}
		if !pivotLoop(t, basis, obj, total) {
			return LPUnbounded, 0, nil // cannot happen in phase 1
		}
		if obj[total] < -1e-7 {
			return LPInfeasible, 0, nil
		}
		// Drive any artificial out of the basis if possible.
		for i := range basis {
			if basis[i] >= n+nSlack {
				for j := 0; j < n+nSlack; j++ {
					if math.Abs(t[i][j]) > eps {
						pivot(t, basis, i, j, total)
						break
					}
				}
			}
		}
	}

	// Phase 2: maximize c·x. Build reduced-cost row for current basis.
	obj := make([]float64, total+1)
	for j := 0; j < n; j++ {
		obj[j] = -lp.C[j] // row form: z − c·x = 0
	}
	for i, b := range basis {
		if math.Abs(obj[b]) > eps {
			f := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= f * t[i][j]
			}
		}
	}
	// Forbid artificials from re-entering by making them unattractive.
	for j := n + nSlack; j < total; j++ {
		if obj[j] < 0 {
			obj[j] = 0
		}
	}
	if !pivotLoopPhase2(t, basis, obj, total, n+nSlack) {
		return LPUnbounded, 0, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = t[i][total]
		}
	}
	var z float64
	for j := 0; j < n; j++ {
		z += lp.C[j] * x[j]
	}
	return LPOptimal, z, x
}

// pivotLoop runs simplex pivots for phase 1 (all columns eligible).
func pivotLoop(t [][]float64, basis []int, obj []float64, total int) bool {
	return pivotLoopPhase2(t, basis, obj, total, total)
}

// pivotLoopPhase2 runs simplex pivots with entering columns restricted
// to [0, maxCol). Uses Bland's rule (smallest eligible index) to avoid
// cycling. Returns false on unboundedness.
func pivotLoopPhase2(t [][]float64, basis []int, obj []float64, total, maxCol int) bool {
	for iter := 0; ; iter++ {
		if iter > 200000 {
			// Safety net: treat as converged (should not happen with Bland).
			return true
		}
		// Entering column: smallest index with positive reduced profit
		// (we maximize; row convention: obj[j] < −eps means improving).
		col := -1
		for j := 0; j < maxCol; j++ {
			if obj[j] < -eps {
				col = j
				break
			}
		}
		if col == -1 {
			return true
		}
		// Ratio test with Bland tie-break on basis index.
		row := -1
		best := math.Inf(1)
		for i := range t {
			if t[i][col] > eps {
				r := t[i][total] / t[i][col]
				if r < best-eps || (math.Abs(r-best) <= eps && (row == -1 || basis[i] < basis[row])) {
					best = r
					row = i
				}
			}
		}
		if row == -1 {
			return false // unbounded
		}
		pivot(t, basis, row, col, total)
		f := obj[col]
		if f != 0 {
			for j := 0; j <= total; j++ {
				obj[j] -= f * t[row][j]
			}
		}
	}
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(t [][]float64, basis []int, row, col, total int) {
	p := t[row][col]
	if math.Abs(p) < eps {
		panic(fmt.Sprintf("ilp: zero pivot at (%d,%d)", row, col))
	}
	inv := 1 / p
	for j := 0; j <= total; j++ {
		t[row][j] *= inv
	}
	t[row][col] = 1
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			t[i][j] -= f * t[row][j]
		}
		t[i][col] = 0
	}
	basis[row] = col
}
