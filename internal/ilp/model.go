// Package ilp provides the integer linear programming substrate the
// paper delegates to IBM ILOG CPLEX. It contains a model builder, an
// exact pseudo-Boolean feasibility solver (the paper's sort-refinement
// encoding is a pure 0/1 feasibility system, for which propagation +
// backtracking search is a complete decision procedure), a dense
// two-phase primal simplex LP solver, and a branch-and-bound MILP
// solver on top of the LP relaxation.
package ilp

import (
	"fmt"
	"math"
)

// Var identifies a model variable.
type Var int

// Sense is a constraint relation.
type Sense int

// Constraint relations.
const (
	LE Sense = iota // Σ aᵢxᵢ ≤ b
	GE              // Σ aᵢxᵢ ≥ b
	EQ              // Σ aᵢxᵢ = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Term is a coefficient–variable product.
type Term struct {
	Var  Var
	Coef int64
}

// Constraint is a linear constraint Σ Terms ⟨Sense⟩ RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   int64
}

// varInfo describes one variable.
type varInfo struct {
	name   string
	lo, hi int64
}

// Model is a system of integer variables and linear constraints. The
// zero value is an empty model ready to use.
type Model struct {
	vars        []varInfo
	constraints []Constraint
	// Branching hints: variables listed first are decided first by the
	// PB solver; unlisted variables follow in index order.
	priority []Var
	// Preferred first value per variable (default 0 means "try 0 first"
	// unless set by SetPreferred).
	preferred map[Var]int64
}

// Binary adds a 0/1 variable.
func (m *Model) Binary(name string) Var { return m.IntVar(name, 0, 1) }

// IntVar adds an integer variable with inclusive bounds.
func (m *Model) IntVar(name string, lo, hi int64) Var {
	if lo > hi {
		panic(fmt.Sprintf("ilp: variable %q has empty domain [%d,%d]", name, lo, hi))
	}
	m.vars = append(m.vars, varInfo{name: name, lo: lo, hi: hi})
	return Var(len(m.vars) - 1)
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.constraints) }

// VarName returns the name of v.
func (m *Model) VarName(v Var) string { return m.vars[v].name }

// Bounds returns the domain of v.
func (m *Model) Bounds(v Var) (lo, hi int64) { return m.vars[v].lo, m.vars[v].hi }

// Add appends a constraint. Terms referencing unknown variables panic.
// Duplicate variables within one constraint are merged.
func (m *Model) Add(name string, terms []Term, sense Sense, rhs int64) {
	merged := make(map[Var]int64, len(terms))
	order := make([]Var, 0, len(terms))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.vars) {
			panic(fmt.Sprintf("ilp: constraint %q references unknown variable %d", name, t.Var))
		}
		if _, seen := merged[t.Var]; !seen {
			order = append(order, t.Var)
		}
		merged[t.Var] += t.Coef
	}
	out := make([]Term, 0, len(order))
	for _, v := range order {
		if merged[v] != 0 {
			out = append(out, Term{Var: v, Coef: merged[v]})
		}
	}
	m.constraints = append(m.constraints, Constraint{Name: name, Terms: out, Sense: sense, RHS: rhs})
}

// Constraints returns the constraints. The slice must not be modified.
func (m *Model) Constraints() []Constraint { return m.constraints }

// SetPriority declares the preferred branching order for search-based
// solvers. Variables not listed are branched on last, in index order.
func (m *Model) SetPriority(vars []Var) { m.priority = append([]Var(nil), vars...) }

// SetPreferred sets the value tried first when branching on v.
func (m *Model) SetPreferred(v Var, val int64) {
	if m.preferred == nil {
		m.preferred = map[Var]int64{}
	}
	m.preferred[v] = val
}

// AllBinary reports whether every variable has domain {0,1} — the
// precondition for the pseudo-Boolean solver.
func (m *Model) AllBinary() bool {
	for _, v := range m.vars {
		if v.lo != 0 || v.hi != 1 {
			return false
		}
	}
	return true
}

// Check verifies an assignment against all constraints, returning the
// first violated constraint (for tests and cross-validation).
func (m *Model) Check(values []int64) error {
	if len(values) != len(m.vars) {
		return fmt.Errorf("ilp: %d values for %d variables", len(values), len(m.vars))
	}
	for i, v := range m.vars {
		if values[i] < v.lo || values[i] > v.hi {
			return fmt.Errorf("ilp: variable %s = %d outside [%d,%d]", v.name, values[i], v.lo, v.hi)
		}
	}
	for _, c := range m.constraints {
		var lhs int64
		for _, t := range c.Terms {
			lhs += t.Coef * values[t.Var]
		}
		ok := false
		switch c.Sense {
		case LE:
			ok = lhs <= c.RHS
		case GE:
			ok = lhs >= c.RHS
		case EQ:
			ok = lhs == c.RHS
		}
		if !ok {
			return fmt.Errorf("ilp: constraint %q violated: lhs=%d %s %d", c.Name, lhs, c.Sense, c.RHS)
		}
	}
	return nil
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// StatusFeasible means a satisfying assignment was found.
	StatusFeasible Status = iota
	// StatusInfeasible means the system was proven unsatisfiable.
	StatusInfeasible
	// StatusUnknown means the solver hit its time or work limit.
	StatusUnknown
)

func (s Status) String() string {
	switch s {
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnknown:
		return "unknown"
	}
	return "?"
}

// Stats reports solver effort.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Nodes        int64 // branch-and-bound nodes
}

// Result is the outcome of a feasibility solve.
type Result struct {
	Status Status
	Values []int64 // valid when Status == StatusFeasible
	Stats  Stats
}

// Options bounds solver effort.
type Options struct {
	// MaxDecisions limits PB decisions / B&B nodes; 0 means no limit.
	MaxDecisions int64
	// MaxConflicts limits PB conflicts; 0 means no limit.
	MaxConflicts int64
	// Cancel aborts the solve with StatusUnknown when closed. The
	// solvers poll it in their decision loops, so a racing portfolio can
	// stop a losing engine promptly instead of waiting for its budget.
	Cancel <-chan struct{}
}

// canceled reports whether the Cancel channel is closed.
func (o *Options) canceled() bool {
	if o.Cancel == nil {
		return false
	}
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// infinity for LP arithmetic.
const inf = math.MaxFloat64
