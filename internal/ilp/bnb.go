package ilp

import (
	"math"
)

// SolveBnB decides feasibility of a model by branch and bound over the
// LP relaxation (depth-first, branching on the most fractional
// variable). It handles general integer bounds, not just binaries, and
// serves as an independent cross-check of the pseudo-Boolean solver.
func SolveBnB(m *Model, opts Options) Result {
	b := &bnb{m: m, opts: opts}
	lo := make([]float64, m.NumVars())
	hi := make([]float64, m.NumVars())
	for i := 0; i < m.NumVars(); i++ {
		l, h := m.Bounds(Var(i))
		lo[i], hi[i] = float64(l), float64(h)
	}
	status := b.search(lo, hi, 0)
	switch status {
	case nodeFeasible:
		return Result{Status: StatusFeasible, Values: b.solution, Stats: b.stats}
	case nodeInfeasible:
		return Result{Status: StatusInfeasible, Stats: b.stats}
	}
	return Result{Status: StatusUnknown, Stats: b.stats}
}

type nodeStatus int

const (
	nodeFeasible nodeStatus = iota
	nodeInfeasible
	nodeUnknown
)

type bnb struct {
	m        *Model
	opts     Options
	stats    Stats
	solution []int64
}

// buildLP constructs the LP relaxation under the given bounds. Model
// variables may have negative lower bounds in principle, but the sort
// refinement encoding uses lo ≥ 0 throughout; we require that here.
func (b *bnb) buildLP(lo, hi []float64) *LP {
	n := b.m.NumVars()
	lp := &LP{N: n, C: make([]float64, n)}
	for _, c := range b.m.Constraints() {
		row := make([]float64, n)
		for _, t := range c.Terms {
			row[t.Var] += float64(t.Coef)
		}
		lp.AddRow(row, c.Sense, float64(c.RHS))
	}
	for i := 0; i < n; i++ {
		if lo[i] > 0 {
			row := make([]float64, n)
			row[i] = 1
			lp.AddRow(row, GE, lo[i])
		}
		if hi[i] != inf {
			row := make([]float64, n)
			row[i] = 1
			lp.AddRow(row, LE, hi[i])
		}
	}
	return lp
}

func (b *bnb) search(lo, hi []float64, depth int) nodeStatus {
	b.stats.Nodes++
	if b.opts.MaxDecisions > 0 && b.stats.Nodes > b.opts.MaxDecisions {
		return nodeUnknown
	}
	if b.opts.canceled() {
		return nodeUnknown
	}
	status, _, x := SolveLP(b.buildLP(lo, hi))
	if status == LPInfeasible {
		return nodeInfeasible
	}
	if status == LPUnbounded {
		// A feasibility system with bounded variables cannot be unbounded;
		// treat as numerically suspect and explore by branching on the
		// first unfixed variable.
		for i := range lo {
			if lo[i] < hi[i] {
				return b.branch(lo, hi, i, (lo[i]+hi[i])/2, depth)
			}
		}
		return nodeInfeasible
	}
	// Find most fractional variable.
	frac := -1
	worst := 0.0
	for i, xi := range x {
		f := math.Abs(xi - math.Round(xi))
		if f > 1e-6 && f > worst {
			worst = f
			frac = i
		}
	}
	if frac == -1 {
		// Integer LP solution: round and verify exactly (guards against
		// accumulated float error).
		vals := make([]int64, len(x))
		for i, xi := range x {
			vals[i] = int64(math.Round(xi))
		}
		if err := b.m.Check(vals); err == nil {
			b.solution = vals
			return nodeFeasible
		}
		// Rounding failed exact verification: branch on first free var.
		for i := range lo {
			if lo[i] < hi[i] {
				return b.branch(lo, hi, i, (lo[i]+hi[i])/2, depth)
			}
		}
		return nodeInfeasible
	}
	return b.branch(lo, hi, frac, x[frac], depth)
}

// branch splits variable i at value v into floor/ceil subproblems.
func (b *bnb) branch(lo, hi []float64, i int, v float64, depth int) nodeStatus {
	floor := math.Floor(v)
	if floor < lo[i] {
		floor = lo[i]
	}
	if floor >= hi[i] {
		floor = hi[i] - 1
	}
	sawUnknown := false

	// Down branch: xᵢ ≤ floor.
	hi2 := append([]float64(nil), hi...)
	hi2[i] = floor
	if lo[i] <= hi2[i] {
		switch b.search(lo, hi2, depth+1) {
		case nodeFeasible:
			return nodeFeasible
		case nodeUnknown:
			sawUnknown = true
		}
	}
	// Up branch: xᵢ ≥ floor+1.
	lo2 := append([]float64(nil), lo...)
	lo2[i] = floor + 1
	if lo2[i] <= hi[i] {
		switch b.search(lo2, hi, depth+1) {
		case nodeFeasible:
			return nodeFeasible
		case nodeUnknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return nodeUnknown
	}
	return nodeInfeasible
}
