// Package wal is the durability layer for the incremental σ engine: a
// per-shard write-ahead log of applied ID-triple batches plus periodic
// checkpoints of each shard's full state, alongside an append log of
// the shared term dictionary.
//
// Layout under the data directory:
//
//	meta                     framed JSON manifest (version, shard count)
//	dict.wal                 dictionary append log (term runs, ID order)
//	shard-NNNN/wal-SSSSSSSS.log   WAL segments, rotated at checkpoints
//	shard-NNNN/ckpt-<epoch>.ckpt  checkpoints (newest two kept)
//
// Batches reach the log through the engine's batch hook (under the
// shard lock, so log order is epoch order) into an in-memory pending
// buffer; a group-commit flush cycle drains the buffers. Each cycle
// writes and fsyncs the dictionary delta BEFORE any shard bytes, so a
// WAL record on disk always has every term it references resolvable —
// the invariant recovery depends on.
//
// Recovery replays dict.wal, then per shard (in parallel) the newest
// readable checkpoint followed by the WAL segments in order, skipping
// records at or below the checkpoint epoch and verifying that the rest
// advance the epoch contiguously. A torn tail — a final record cut off
// or zero-filled by a crash — is truncated and logged; a bad CRC amid
// intact data is corruption and recovery stops with a hard error.
package wal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/rdf"
	"repro/internal/term"
)

// SyncMode selects when the store fsyncs.
type SyncMode int

const (
	// SyncBatch fsyncs before every Barrier returns: a durable=true
	// ingest response means the batch survives a crash.
	SyncBatch SyncMode = iota
	// SyncInterval groups commits: a background flusher fsyncs every
	// Options.SyncInterval; Barrier waits for the covering cycle.
	SyncInterval
	// SyncOff never fsyncs (the OS writes back when it pleases).
	// Barrier returns immediately and responses report durable=false.
	SyncOff
)

func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// ParseSyncMode parses the -fsync flag value: "batch", "off", or a
// group-commit window duration like "10ms".
func ParseSyncMode(s string) (SyncMode, time.Duration, error) {
	switch s {
	case "batch":
		return SyncBatch, 0, nil
	case "off":
		return SyncOff, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("bad fsync mode %q (want \"batch\", \"off\", or a positive duration)", s)
	}
	return SyncInterval, d, nil
}

// Options configures a Store.
type Options struct {
	// FS is the filesystem; nil means the real one (OSFS).
	FS FS
	// Mode is the fsync policy.
	Mode SyncMode
	// SyncInterval is the group-commit window for SyncInterval mode
	// (default 10ms).
	SyncInterval time.Duration
	// CheckpointInterval is how often the background flusher writes
	// checkpoints and rotates segments; 0 disables periodic
	// checkpoints (they still happen on Close and after recovery).
	CheckpointInterval time.Duration
	// Logf receives recovery and failure notices; nil discards.
	Logf func(format string, args ...any)
	// Metrics, when set, registers the store's durability
	// instrumentation (fsync latency, group-commit batch size, record
	// and byte counters, checkpoint/rotation counters) into the
	// registry. At most one Store per registry.
	Metrics *metrics.Registry
}

// walMetrics is the store's instrumentation; nil when no registry was
// supplied (every update site is nil-checked, so the default path pays
// one branch).
type walMetrics struct {
	fsync        *metrics.Histogram
	flushRecords *metrics.Histogram
	records      *metrics.Counter
	bytes        *metrics.Counter
	checkpoints  *metrics.Counter
	rotations    *metrics.Counter
}

func registerWALMetrics(reg *metrics.Registry) *walMetrics {
	return &walMetrics{
		fsync: reg.Histogram("rdf_wal_fsync_seconds",
			"Latency of WAL file fsyncs (dictionary log and shard segments).", metrics.DefLatencyBuckets),
		flushRecords: reg.Histogram("rdf_wal_flush_records",
			"WAL records drained per group-commit flush cycle (cycles that flushed at least one).", metrics.DefSizeBuckets),
		records: reg.Counter("rdf_wal_records_total",
			"WAL batch records written across all shards."),
		bytes: reg.Counter("rdf_wal_bytes_total",
			"Bytes appended to the WAL (shard segments plus dictionary log)."),
		checkpoints: reg.Counter("rdf_wal_checkpoints_total",
			"Shard checkpoints written."),
		rotations: reg.Counter("rdf_wal_segment_rotations_total",
			"WAL segment rotations (one per shard checkpoint)."),
	}
}

// RecoveryStats summarizes what Open replayed.
type RecoveryStats struct {
	Terms       int           // dictionary terms replayed
	Checkpoints int           // shards restored from a checkpoint
	Records     int           // WAL batch records applied
	Skipped     int           // records at or below their checkpoint epoch
	Bytes       int64         // WAL + dictionary bytes scanned
	TornBytes   int64         // bytes truncated from torn tails
	Duration    time.Duration // wall time of recovery
}

// storeMeta is the manifest pinned at first open; a reopen with a
// different topology fails loudly instead of mis-replaying.
type storeMeta struct {
	Version int  `json:"version"`
	Shards  int  `json:"shards"`
	Pairs   bool `json:"pairs"`
}

const metaVersion = 1

// shardLog is one shard's WAL stream.
type shardLog struct {
	dir string

	// hook side, guarded by mu: frames not yet handed to the flusher.
	mu       sync.Mutex
	pending  []byte
	appended uint64 // records ever appended (the shard's WAL LSN)

	// flusher side, guarded by the store's flushMu.
	f        File
	seq      uint64 // current segment sequence number
	unsynced bool   // bytes written since the last Sync
}

// Store is the durability layer attached to one engine. All methods
// are safe for concurrent use.
type Store struct {
	fs     FS
	dir    string
	opts   Options
	dict   *term.Dict
	shards []*incr.Dataset
	logs   []*shardLog

	// flushMu serializes flush cycles, segment rotation and
	// checkpoints — everything that touches the files.
	flushMu      sync.Mutex
	dictF        File
	dictWritten  int // terms written to dict.wal
	dictUnsynced bool

	// mu guards durable counters and the failure latch; cond wakes
	// Barrier, BarrierCtx and AwaitBacklog waiters after each flush
	// cycle.
	mu      sync.Mutex
	cond    *sync.Cond
	durable []uint64 // per shard: records flushed per the sync policy
	failed  error    // first write/sync error; latches the store

	// pendingBytes is the group-commit backlog: frame bytes appended by
	// batch hooks that no flush cycle has drained yet. AwaitBacklog
	// bounds it — the serving tier's ingest backpressure signal.
	pendingBytes atomic.Int64

	stopc chan struct{}
	done  chan struct{}

	closeOnce sync.Once
	closeErr  error

	// met is the optional instrumentation (Options.Metrics); nil-checked
	// at every update site.
	met *walMetrics

	// testAfterFlush, when non-nil, runs inside Checkpoint between the
	// flush cycle and the per-shard exports — the window where freshly
	// applied batches can intern terms the cycle's dict sync missed.
	// Test instrumentation only.
	testAfterFlush func()

	// lock is the data-directory LOCK file (real filesystem only; nil
	// under a test FS). Held for the life of the store so a second
	// writer on the same directory fails fast instead of corrupting
	// the segments.
	lock *dirLock
}

const (
	segPrefix      = "wal-"
	segSuffix      = ".log"
	metaName       = "meta"
	dictName       = "dict.wal"
	defaultFlushMs = 200 // background drain cadence outside SyncInterval mode
)

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (seq uint64, ok bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(mid) != 8 {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (s *Store) shardDir(i int) string { return filepath.Join(s.dir, fmt.Sprintf("shard-%04d", i)) }

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Open attaches durability to an engine's shards (a plain Dataset is a
// one-element shard list; a Sharded engine passes Shards()). The
// engine and its dictionary must be empty — recovery rebuilds them
// from the data directory — and the shard slice must match the
// directory's manifest. On success the batch hooks are installed, the
// background flusher is running, and the returned stats describe what
// was replayed.
func Open(dir string, dict *term.Dict, shards []*incr.Dataset, opts Options) (*Store, *RecoveryStats, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 10 * time.Millisecond
	}
	if len(shards) == 0 {
		return nil, nil, fmt.Errorf("wal: no shards")
	}
	// The dictionary may hold the engine's construction-time terms
	// (rdf:type, the ignore list); replay verifies them against the
	// log ID-by-ID, so a mismatching configuration fails loudly.
	for i, d := range shards {
		if d.Epoch() != 0 {
			return nil, nil, fmt.Errorf("wal: shard %d not empty at Open (epoch %d)", i, d.Epoch())
		}
	}
	s := &Store{
		fs:     opts.FS,
		dir:    dir,
		opts:   opts,
		dict:   dict,
		shards: shards,
		logs:   make([]*shardLog, len(shards)),
		stopc:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.durable = make([]uint64, len(shards))
	if opts.Metrics != nil {
		s.met = registerWALMetrics(opts.Metrics)
	}

	start := time.Now()
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	// Exclusive data-dir lock, real filesystem only: test filesystems
	// (faultfs) intercept every file operation already and flock needs
	// a real fd.
	if _, osfs := s.fs.(OSFS); osfs {
		lk, err := acquireDirLock(dir, opts.Logf)
		if err != nil {
			return nil, nil, err
		}
		s.lock = lk
	}
	if err := s.checkMeta(); err != nil {
		s.closeFiles()
		return nil, nil, err
	}

	stats := &RecoveryStats{}
	if err := s.recoverDict(stats); err != nil {
		s.closeFiles()
		return nil, nil, err
	}

	// Recover shards in parallel: replay is CPU-bound (CRC + σ
	// maintenance) and shards are independent.
	recs := make([]shardRecovery, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i], errs[i] = s.recoverShard(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			s.closeFiles()
			return nil, nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
	}
	for _, r := range recs {
		stats.Records += r.records
		stats.Skipped += r.skipped
		stats.Bytes += r.bytes
		stats.TornBytes += r.torn
		if r.fromCkpt {
			stats.Checkpoints++
		}
	}

	// Install the WAL taps. From here every effective batch is logged.
	for i, d := range shards {
		l := s.logs[i]
		d.SetBatchHook(func(add, remove []rdf.IDTriple, epoch uint64) {
			l.mu.Lock()
			before := len(l.pending)
			l.pending = appendFrame(l.pending, encodeBatch(nil, epoch, add, remove))
			l.appended++
			grew := len(l.pending) - before
			l.mu.Unlock()
			s.pendingBytes.Add(int64(grew))
		})
	}

	// A boot that replayed WAL records checkpoints immediately so the
	// replayed work is captured and the segments compacted; the next
	// crash replays only what arrived since.
	if stats.Records > 0 || stats.TornBytes > 0 {
		if err := s.Checkpoint(); err != nil {
			s.closeFiles()
			return nil, nil, fmt.Errorf("wal: post-recovery checkpoint: %w", err)
		}
	}

	go s.flusher()
	stats.Duration = time.Since(start)
	return s, stats, nil
}

// checkMeta verifies the manifest, writing it on first open.
func (s *Store) checkMeta() error {
	want := storeMeta{Version: metaVersion, Shards: len(s.shards), Pairs: s.shards[0].PairsTracked()}
	path := filepath.Join(s.dir, metaName)
	data, err := s.fs.ReadFile(path)
	if err != nil || len(data) == 0 {
		// First open: write the manifest.
		return s.writeMeta(path, want)
	}
	sc := frameScanner{data: data}
	payload, _, scanErr := sc.next()
	if scanErr != nil || payload == nil || payload[0] != recMeta {
		// A torn manifest frame with nothing else in the directory is a
		// crash during the first open's manifest write, before its
		// fsync — no data could have been acknowledged, so rewrite it.
		// With a dict log or shard data present, a prior open completed
		// (the manifest was fsynced before anything else was created),
		// so the damage is real corruption.
		if _, torn := scanErr.(*tornError); torn && s.emptyDataDir() {
			s.logf("wal: %s: torn manifest with no shard data — rewriting (crash during first open)", path)
			if err := s.fs.Truncate(path, 0); err != nil {
				return fmt.Errorf("wal: truncate torn manifest: %w", err)
			}
			return s.writeMeta(path, want)
		}
		return fmt.Errorf("wal: corrupt manifest %s", path)
	}
	var got storeMeta
	if err := json.Unmarshal(payload[1:], &got); err != nil {
		return fmt.Errorf("wal: corrupt manifest %s: %w", path, err)
	}
	if got.Version != want.Version {
		return fmt.Errorf("wal: data directory version %d (supported: %d)", got.Version, want.Version)
	}
	if got.Shards != want.Shards {
		return fmt.Errorf("wal: data directory has %d shards, engine has %d — shard routing is part of the on-disk layout; reopen with -shards %d",
			got.Shards, want.Shards, got.Shards)
	}
	if got.Pairs != want.Pairs {
		return fmt.Errorf("wal: data directory pair tracking %v, engine %v — reopen with matching pair-count configuration",
			got.Pairs, want.Pairs)
	}
	return nil
}

// writeMeta writes and fsyncs the manifest into an empty meta file.
func (s *Store) writeMeta(path string, want storeMeta) error {
	payload, _ := json.Marshal(want)
	f, size, err := s.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: create manifest: %w", err)
	}
	if size != 0 {
		f.Close()
		return fmt.Errorf("wal: manifest unreadable but non-empty")
	}
	if _, err := f.Write(appendFrame(nil, append([]byte{recMeta}, payload...))); err != nil {
		f.Close()
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close manifest: %w", err)
	}
	return s.fs.SyncDir(s.dir)
}

// emptyDataDir reports whether the data directory holds no dictionary
// log and no shard directories — no open ever got past writing the
// manifest.
func (s *Store) emptyDataDir() bool {
	names, err := s.fs.List(s.dir)
	if err != nil {
		return false
	}
	for _, n := range names {
		if n == dictName || strings.HasPrefix(n, "shard-") {
			return false
		}
	}
	return true
}

// recoverDict replays dict.wal into the engine dictionary, truncating
// a torn tail, then opens the log for appending.
func (s *Store) recoverDict(stats *RecoveryStats) error {
	path := filepath.Join(s.dir, dictName)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("wal: read %s: %w", dictName, err)
		}
		data = nil // absent on first open
	}
	stats.Bytes += int64(len(data))
	sc := frameScanner{data: data}
	expected := 0
	validEnd := int64(0)
	for {
		payload, end, err := sc.next()
		if err != nil {
			if te, ok := err.(*tornError); ok {
				torn := int64(len(data)) - te.off
				s.logf("wal: %s: truncating torn tail (%d bytes at offset %d)", dictName, torn, te.off)
				stats.TornBytes += torn
				if err := s.fs.Truncate(path, te.off); err != nil {
					return fmt.Errorf("wal: truncate %s: %w", dictName, err)
				}
				break
			}
			return fmt.Errorf("wal: %s: %w", dictName, err)
		}
		if payload == nil {
			break
		}
		firstID, terms, err := decodeTerms(payload)
		if err != nil {
			return fmt.Errorf("wal: %s at offset %d: %w", dictName, validEnd, err)
		}
		if firstID != uint64(expected) {
			return fmt.Errorf("wal: %s: term run starts at ID %d, want %d", dictName, firstID, expected)
		}
		for _, t := range terms {
			if id := s.dict.Intern(t); int(id) != expected {
				return fmt.Errorf("wal: %s: term %q interned as ID %d, want %d (duplicate in log)", dictName, t, id, expected)
			}
			expected++
		}
		validEnd = end
	}
	stats.Terms = expected
	f, _, err := s.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", dictName, err)
	}
	s.dictF = f
	s.dictWritten = expected
	return nil
}

type shardRecovery struct {
	records  int
	skipped  int
	bytes    int64
	torn     int64
	fromCkpt bool
}

// recoverShard restores shard i from its newest readable checkpoint
// and replays its WAL segments, then opens the last segment for
// appending.
func (s *Store) recoverShard(i int) (rec shardRecovery, err error) {
	d := s.shards[i]
	dir := s.shardDir(i)
	if err := s.fs.MkdirAll(dir); err != nil {
		return rec, err
	}

	st, ckptName, err := latestCheckpoint(s.fs, dir)
	if err != nil {
		return rec, err
	}
	base := uint64(0)
	if st != nil {
		if err := d.RestoreCheckpoint(st); err != nil {
			return rec, fmt.Errorf("%s: %w", ckptName, err)
		}
		base = st.Epoch
		rec.fromCkpt = true
	}

	names, err := s.fs.List(dir)
	if err != nil {
		return rec, err
	}
	type seg struct {
		name string
		seq  uint64
	}
	var segs []seg
	for _, n := range names {
		if q, ok := parseSegName(n); ok {
			segs = append(segs, seg{n, q})
		}
	}
	// List is sorted and the fixed-width names sort by sequence.

	dictLen := term.ID(s.dict.Len())
	cur := d.Epoch()
	for k, sg := range segs {
		path := filepath.Join(dir, sg.name)
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return rec, err
		}
		rec.bytes += int64(len(data))
		sc := frameScanner{data: data}
		off := int64(0)
		for {
			payload, end, err := sc.next()
			if err != nil {
				te, ok := err.(*tornError)
				if !ok {
					return rec, fmt.Errorf("%s: %w", sg.name, err)
				}
				if k != len(segs)-1 {
					// A torn interior segment means a later segment
					// was created — which only happens after the
					// earlier one was fully fsynced. Its tail held
					// acknowledged records; truncating would silently
					// drop them.
					return rec, fmt.Errorf("%s: torn tail in non-final segment (offset %d): acknowledged records lost", sg.name, te.off)
				}
				torn := int64(len(data)) - te.off
				s.logf("wal: shard %d: %s: truncating torn tail (%d bytes at offset %d)", i, sg.name, torn, te.off)
				rec.torn += torn
				if err := s.fs.Truncate(path, te.off); err != nil {
					return rec, fmt.Errorf("truncate %s: %w", sg.name, err)
				}
				break
			}
			if payload == nil {
				break
			}
			b, err := decodeBatch(payload)
			if err != nil {
				return rec, fmt.Errorf("%s at offset %d: %w", sg.name, off, err)
			}
			off = end
			if b.epoch <= base {
				rec.skipped++
				continue
			}
			if b.epoch != cur+1 {
				return rec, fmt.Errorf("%s: record epoch %d after epoch %d — WAL gap", sg.name, b.epoch, cur)
			}
			for _, it := range b.add {
				if it.S >= dictLen || it.P >= dictLen || it.O >= dictLen {
					return rec, fmt.Errorf("%s: record at epoch %d references a term ID past the recovered dictionary (%d terms) — WAL and dictionary log are out of step (crash with fsync disabled?)", sg.name, b.epoch, dictLen)
				}
			}
			for _, it := range b.remove {
				if it.S >= dictLen || it.P >= dictLen || it.O >= dictLen {
					return rec, fmt.Errorf("%s: record at epoch %d references a term ID past the recovered dictionary (%d terms) — WAL and dictionary log are out of step (crash with fsync disabled?)", sg.name, b.epoch, dictLen)
				}
			}
			d.ApplyIDs(b.add, b.remove)
			if got := d.Epoch(); got != b.epoch {
				return rec, fmt.Errorf("%s: replaying the batch for epoch %d left the shard at epoch %d — log and state disagree", sg.name, b.epoch, got)
			}
			cur = b.epoch
			rec.records++
		}
	}

	l := &shardLog{dir: dir, seq: 1}
	if n := len(segs); n > 0 {
		l.seq = segs[n-1].seq
	}
	f, _, err := s.fs.OpenAppend(filepath.Join(dir, segName(l.seq)))
	if err != nil {
		return rec, err
	}
	l.f = f
	s.logs[i] = l
	return rec, nil
}

// flusher is the background group-commit loop.
func (s *Store) flusher() {
	defer close(s.done)
	interval := time.Duration(defaultFlushMs) * time.Millisecond
	if s.opts.Mode == SyncInterval {
		interval = s.opts.SyncInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var ckpt <-chan time.Time
	if s.opts.CheckpointInterval > 0 {
		t := time.NewTicker(s.opts.CheckpointInterval)
		defer t.Stop()
		ckpt = t.C
	}
	for {
		select {
		case <-s.stopc:
			return
		case <-tick.C:
			s.flushMu.Lock()
			err := s.flushCycleLocked(s.opts.Mode != SyncOff)
			s.flushMu.Unlock()
			if err != nil {
				s.setFailed(err)
			}
		case <-ckpt:
			if err := s.Checkpoint(); err != nil {
				s.setFailed(err)
			}
		}
	}
}

func (s *Store) setFailed(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
		s.logf("wal: store failed, ingest is no longer durable: %v", err)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *Store) failedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// flushCycleLocked drains pending buffers: dictionary delta first
// (written and, when sync, fsynced before any shard bytes touch the
// files — the covering invariant), then each shard's frames. Caller
// holds flushMu.
func (s *Store) flushCycleLocked(sync bool) error {
	if err := s.failedErr(); err != nil {
		return err
	}
	if s.dictF == nil {
		return fmt.Errorf("wal: store closed")
	}
	// Swap out every shard's pending buffer first; the dictionary
	// delta captured after the swap covers every record in them (terms
	// are interned before the batch hook runs).
	type chunk struct {
		buf []byte
		lsn uint64
	}
	chunks := make([]chunk, len(s.logs))
	var drained int64
	for i, l := range s.logs {
		l.mu.Lock()
		chunks[i] = chunk{l.pending, l.appended}
		l.pending = nil
		l.mu.Unlock()
		drained += int64(len(chunks[i].buf))
	}

	if err := s.flushDictLocked(sync); err != nil {
		return err
	}

	for i, l := range s.logs {
		if len(chunks[i].buf) > 0 {
			if _, err := l.f.Write(chunks[i].buf); err != nil {
				return fmt.Errorf("wal: write shard %d segment: %w", i, err)
			}
			if s.met != nil {
				s.met.bytes.Add(int64(len(chunks[i].buf)))
			}
			l.unsynced = true
		}
		if sync && l.unsynced {
			if err := s.timedSync(l.f); err != nil {
				return fmt.Errorf("wal: sync shard %d segment: %w", i, err)
			}
			l.unsynced = false
		}
	}

	var cycleRecords int64
	s.mu.Lock()
	for i := range s.logs {
		if chunks[i].lsn > s.durable[i] {
			cycleRecords += int64(chunks[i].lsn - s.durable[i])
			s.durable[i] = chunks[i].lsn
		}
	}
	// The drained bytes leave the backlog under mu, adjacent to the
	// broadcast, so an AwaitBacklog waiter that checks after waking sees
	// the decrement. (On the error paths above the backlog stays high,
	// but setFailed broadcasts and waiters return the latched error.)
	if drained > 0 {
		s.pendingBytes.Add(-drained)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	if s.met != nil && cycleRecords > 0 {
		s.met.records.Add(cycleRecords)
		s.met.flushRecords.Observe(float64(cycleRecords))
	}
	return nil
}

// timedSync fsyncs f, feeding the fsync-latency histogram when
// instrumentation is on.
func (s *Store) timedSync(f File) error {
	if s.met == nil {
		return f.Sync()
	}
	t0 := time.Now()
	err := f.Sync()
	s.met.fsync.Observe(time.Since(t0).Seconds())
	return err
}

// flushDictLocked appends the dictionary delta up to dict.Len() and,
// when sync, fsyncs it. Terms are interned before the batch that uses
// them applies, so the delta captured here covers every term ID visible
// in any state read before the call. Caller holds flushMu.
func (s *Store) flushDictLocked(sync bool) error {
	if n := s.dict.Len(); n > s.dictWritten {
		terms := s.dict.StringsFrom(s.dictWritten)
		frame := appendFrame(nil, encodeTerms(nil, uint64(s.dictWritten), terms))
		if _, err := s.dictF.Write(frame); err != nil {
			return fmt.Errorf("wal: write %s: %w", dictName, err)
		}
		if s.met != nil {
			s.met.bytes.Add(int64(len(frame)))
		}
		s.dictWritten += len(terms)
		s.dictUnsynced = true
	}
	if sync && s.dictUnsynced {
		if err := s.timedSync(s.dictF); err != nil {
			return fmt.Errorf("wal: sync %s: %w", dictName, err)
		}
		s.dictUnsynced = false
	}
	return nil
}

// Flush runs one group-commit cycle immediately, honoring the sync
// policy (in SyncOff mode bytes reach the OS but are not fsynced).
func (s *Store) Flush() error {
	s.flushMu.Lock()
	err := s.flushCycleLocked(s.opts.Mode != SyncOff)
	s.flushMu.Unlock()
	if err != nil {
		s.setFailed(err)
	}
	return err
}

// Synchronous reports whether Barrier actually waits for stable
// storage (false in SyncOff mode — ingest responses report
// durable=false).
func (s *Store) Synchronous() bool { return s.opts.Mode != SyncOff }

// Barrier returns once every batch applied before the call is durable
// per the sync policy: immediately in SyncOff mode, after the covering
// group-commit cycle in SyncInterval mode, and after an inline flush +
// fsync in SyncBatch mode. A failed store returns its latched error.
func (s *Store) Barrier() error {
	if s.opts.Mode == SyncOff {
		return s.failedErr()
	}
	targets := make([]uint64, len(s.logs))
	for i, l := range s.logs {
		l.mu.Lock()
		targets[i] = l.appended
		l.mu.Unlock()
	}
	reached := func() bool {
		for i, t := range targets {
			if s.durable[i] < t {
				return false
			}
		}
		return true
	}
	if s.opts.Mode == SyncBatch {
		s.mu.Lock()
		done := s.failed != nil || reached()
		s.mu.Unlock()
		if !done {
			s.flushMu.Lock()
			err := s.flushCycleLocked(true)
			s.flushMu.Unlock()
			if err != nil {
				s.setFailed(err)
			}
		}
		return s.failedErr()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.failed == nil && !reached() {
		s.cond.Wait()
	}
	return s.failed
}

// BarrierCtx is Barrier bounded by ctx: it returns ctx.Err() if the
// covering group-commit cycle has not completed when the context
// expires (the batch stays applied and becomes durable later — the
// caller reports durable=false, it does not fail the request). SyncOff
// and SyncBatch modes never wait on the flusher and delegate to
// Barrier.
func (s *Store) BarrierCtx(ctx context.Context) error {
	if s.opts.Mode != SyncInterval {
		return s.Barrier()
	}
	targets := make([]uint64, len(s.logs))
	for i, l := range s.logs {
		l.mu.Lock()
		targets[i] = l.appended
		l.mu.Unlock()
	}
	reached := func() bool {
		for i, t := range targets {
			if s.durable[i] < t {
				return false
			}
		}
		return true
	}
	stop := context.AfterFunc(ctx, func() {
		// Taking mu before broadcasting guarantees the waiter below is
		// either not yet waiting (and will see ctx.Err() before Wait) or
		// parked in Wait and woken — no missed-wakeup window.
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.failed == nil && ctx.Err() == nil && !reached() {
		s.cond.Wait()
	}
	if s.failed != nil {
		return s.failed
	}
	if !reached() {
		return ctx.Err()
	}
	return nil
}

// PendingBytes returns the group-commit backlog: bytes appended by
// batch hooks that no flush cycle has drained yet.
func (s *Store) PendingBytes() int64 { return s.pendingBytes.Load() }

// AwaitBacklog blocks until the group-commit backlog is at or below
// max bytes, the store fails, or ctx expires (returning ctx.Err() —
// the ingest-backpressure shed signal). max <= 0 disables the bound.
func (s *Store) AwaitBacklog(ctx context.Context, max int64) error {
	if max <= 0 || s.pendingBytes.Load() <= max {
		return s.failedErr()
	}
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.failed == nil && ctx.Err() == nil && s.pendingBytes.Load() > max {
		s.cond.Wait()
	}
	if s.failed != nil {
		return s.failed
	}
	if s.pendingBytes.Load() > max {
		return ctx.Err()
	}
	return nil
}

// Checkpoint flushes everything, then per shard rotates to a fresh WAL
// segment, atomically publishes a checkpoint of the shard's state, and
// deletes the superseded segments. After a clean Checkpoint a restart
// replays zero WAL records.
func (s *Store) Checkpoint() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if err := s.flushCycleLocked(true); err != nil {
		s.setFailed(err)
		return err
	}
	if s.testAfterFlush != nil {
		s.testAfterFlush()
	}
	for i := range s.shards {
		if err := s.checkpointShardLocked(i); err != nil {
			err = fmt.Errorf("wal: checkpoint shard %d: %w", i, err)
			s.setFailed(err)
			return err
		}
	}
	return nil
}

// checkpointShardLocked rotates shard i's segment and writes its
// checkpoint. The old segment is already fully fsynced (flushCycleLocked
// with sync ran first and clears unsynced), so every record in it —
// all at epochs the export below will cover — is durable before the
// new segment exists; batches that land between the rotation and the
// export go to the new segment and are skipped at replay by the epoch
// filter. Caller holds flushMu.
func (s *Store) checkpointShardLocked(i int) error {
	l := s.logs[i]
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seq++
	f, _, err := s.fs.OpenAppend(filepath.Join(l.dir, segName(l.seq)))
	if err != nil {
		return err
	}
	if err := s.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.unsynced = false
	if s.met != nil {
		s.met.rotations.Inc()
	}

	st := s.shards[i].ExportCheckpoint()
	// The export can capture batches applied after this cycle's
	// flushCycleLocked — batches whose newly interned terms are not yet
	// in the fsynced dict log. The checkpoint below becomes durable and
	// prunes the WAL segments behind it, so every term ID it references
	// must be resolvable first: append and fsync the dictionary delta
	// now (the same dict-first ordering flushCycleLocked enforces for
	// WAL records). Always synced, whatever the WAL sync mode — the
	// checkpoint file itself is always fsynced.
	if err := s.flushDictLocked(true); err != nil {
		return err
	}
	if err := writeCheckpoint(s.fs, l.dir, st); err != nil {
		return err
	}
	if s.met != nil {
		s.met.checkpoints.Inc()
	}

	// The checkpoint covers every record in the pre-rotation segments.
	names, err := s.fs.List(l.dir)
	if err != nil {
		return err
	}
	for _, n := range names {
		if q, ok := parseSegName(n); ok && q < l.seq {
			if err := s.fs.Remove(filepath.Join(l.dir, n)); err != nil {
				return err
			}
		}
	}
	return s.fs.SyncDir(l.dir)
}

// Close stops the flusher, flushes and checkpoints every shard (so a
// graceful shutdown leaves zero WAL records to replay), uninstalls the
// batch hooks and closes the files. The engine remains usable in
// memory; batches applied after Close are not logged. Close is
// idempotent: later calls do nothing and return the first call's
// result.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		close(s.stopc)
		<-s.done
		err := s.Checkpoint()
		for _, d := range s.shards {
			d.SetBatchHook(nil)
		}
		s.flushMu.Lock()
		// Stamp the clean-shutdown marker only when the final checkpoint
		// landed and the store never latched a failure: an unclean marker
		// tells the next opener its recovery replay is expected.
		if s.lock != nil && err == nil && s.failedErr() == nil {
			s.lock.markClean()
		}
		s.closeFilesLocked()
		s.flushMu.Unlock()
		if err == nil {
			err = s.failedErr()
		}
		s.closeErr = err
	})
	return s.closeErr
}

func (s *Store) closeFiles() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.closeFilesLocked()
}

func (s *Store) closeFilesLocked() {
	if s.dictF != nil {
		s.dictF.Close()
		s.dictF = nil
	}
	for _, l := range s.logs {
		if l != nil && l.f != nil {
			l.f.Close()
			l.f = nil
		}
	}
	if s.lock != nil {
		s.lock.release()
		s.lock = nil
	}
}
