package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName is the data-directory lock file. Two stores flushing
// the same directory corrupt each other silently — segment rotation
// and checkpoint compaction assume a single writer — so Open takes an
// exclusive lock on the directory for the life of the store.
const lockFileName = "LOCK"

// lockInfo is the lock file's pid-stamped content. Clean flips to true
// on an orderly Close; an acquirer finding clean=false knows the
// previous holder died mid-flight and recovery will replay its tail.
type lockInfo struct {
	PID   int  `json:"pid"`
	Clean bool `json:"clean"`
}

// dirLock is a held data-directory lock: a flock(2) on the LOCK file.
// The kernel ties the lock to the open file description, which gives
// exactly the semantics we want for free: a second opener — same
// process or another — fails fast while the store lives, and a holder
// that dies without Close (crash, SIGKILL) releases the lock
// automatically, so stale locks never wedge a restart.
type dirLock struct {
	f *os.File
}

// acquireDirLock takes the exclusive lock or fails fast with the
// holder's pid. A pre-existing unclean marker (holder died without
// Close) is reported via logf and taken over.
func acquireDirLock(dir string, logf func(format string, args ...any)) (*dirLock, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		prev := readLockInfo(f)
		f.Close()
		if prev.PID != 0 {
			return nil, fmt.Errorf("wal: data dir %s is locked by running process %d; refusing a second writer", dir, prev.PID)
		}
		return nil, fmt.Errorf("wal: data dir %s is locked by another process; refusing a second writer", dir)
	}
	if prev := readLockInfo(f); prev.PID != 0 && !prev.Clean && logf != nil {
		logf("wal: taking over data dir %s from process %d which exited without a clean shutdown; recovery will replay its tail", dir, prev.PID)
	}
	l := &dirLock{f: f}
	if err := l.write(lockInfo{PID: os.Getpid(), Clean: false}); err != nil {
		l.release()
		return nil, fmt.Errorf("wal: lock %s: %w", path, err)
	}
	return l, nil
}

func readLockInfo(f *os.File) lockInfo {
	var info lockInfo
	buf := make([]byte, 256)
	n, _ := f.ReadAt(buf, 0)
	_ = json.Unmarshal(buf[:n], &info)
	return info
}

func (l *dirLock) write(info lockInfo) error {
	b, err := json.Marshal(info)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := l.f.WriteAt(b, 0); err != nil {
		return err
	}
	return l.f.Truncate(int64(len(b)))
}

// markClean stamps the orderly-shutdown marker; called by Close after
// the final checkpoint so the next opener knows the tail is complete.
func (l *dirLock) markClean() {
	if l.f != nil {
		_ = l.write(lockInfo{PID: os.Getpid(), Clean: true})
	}
}

// release drops the flock and closes the file. Idempotent.
func (l *dirLock) release() {
	if l.f == nil {
		return
	}
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	_ = l.f.Close()
	l.f = nil
}
