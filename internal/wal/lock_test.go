package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/incr"
	"repro/internal/term"
)

func openAt(t *testing.T, dir string) (*Store, *term.Dict) {
	t.Helper()
	e, shards := newEngine(t, 1)
	var dict *term.Dict
	switch eng := e.(type) {
	case *incr.Dataset:
		dict = eng.Dict()
	case *incr.Sharded:
		dict = eng.Dict()
	}
	st, _, err := Open(dir, dict, shards, Options{Mode: SyncOff})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return st, dict
}

func readLockFile(t *testing.T, dir string) lockInfo {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, lockFileName))
	if err != nil {
		t.Fatalf("read lock: %v", err)
	}
	var info lockInfo
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatalf("parse lock %q: %v", b, err)
	}
	return info
}

// TestDirLockExcludesSecondOpener pins the single-writer contract: a
// second Open on a live data dir fails fast naming the holder, and a
// clean Close hands the directory over to the next opener.
func TestDirLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	st, _ := openAt(t, dir)

	if info := readLockFile(t, dir); info.PID != os.Getpid() || info.Clean {
		t.Fatalf("held lock = %+v, want pid=%d clean=false", info, os.Getpid())
	}

	e2, shards2 := newEngine(t, 1)
	var dict2 = e2.(*incr.Dataset).Dict()
	_, _, err := Open(dir, dict2, shards2, Options{Mode: SyncOff})
	if err == nil {
		t.Fatal("second opener succeeded on a locked data dir")
	}
	if !strings.Contains(err.Error(), "locked by running process") {
		t.Fatalf("second opener error %q does not name the holder", err)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if info := readLockFile(t, dir); !info.Clean {
		t.Fatalf("lock after clean Close = %+v, want clean=true", info)
	}

	// Takeover after clean shutdown.
	st2, _ := openAt(t, dir)
	if info := readLockFile(t, dir); info.Clean {
		t.Fatalf("reacquired lock = %+v, want clean=false", info)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDirLockStaleTakeover pins crash recovery: a LOCK file left
// behind by a dead process (no flock held — the kernel released it on
// exit) must not wedge the restart, clean marker or not.
func TestDirLockStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	stale, _ := json.Marshal(lockInfo{PID: 1 << 28, Clean: false})
	if err := os.WriteFile(filepath.Join(dir, lockFileName), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	var notices []string
	e, shards := newEngine(t, 1)
	st, _, err := Open(dir, e.(*incr.Dataset).Dict(), shards, Options{
		Mode: SyncOff,
		Logf: func(format string, args ...any) {
			notices = append(notices, format)
		},
	})
	if err != nil {
		t.Fatalf("open over stale lock: %v", err)
	}
	defer st.Close()
	found := false
	for _, n := range notices {
		if strings.Contains(n, "clean shutdown") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unclean-takeover notice logged; got %q", notices)
	}
	if info := readLockFile(t, dir); info.PID != os.Getpid() || info.Clean {
		t.Fatalf("lock after takeover = %+v", info)
	}
}
