// Package walfs defines the narrow filesystem surface the durability
// layer (internal/wal) writes through. It is a leaf package so both
// the production store and the fault-injection harness
// (internal/wal/faultfs) can implement it without an import cycle.
package walfs

import "io"

// FS is the filesystem contract. Production uses wal.OSFS; tests
// substitute faultfs.FS, an in-memory implementation that can fail,
// short-write or lose un-synced data at a chosen point, so crash
// recovery is testable without killing processes.
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// OpenAppend opens path for appending, creating it if absent, and
	// returns the current size (where the next write lands).
	OpenAppend(path string) (File, int64, error)
	// ReadFile returns the full contents of path. A missing file
	// returns an error satisfying errors.Is(err, fs.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes (recovery drops torn tails).
	Truncate(path string, size int64) error
	// List returns the names (not paths) of dir's entries, sorted.
	// A missing directory returns an empty list, not an error.
	List(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames and creates
	// durable.
	SyncDir(dir string) error
}

// File is an append-only handle.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}
