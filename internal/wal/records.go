package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
	"repro/internal/term"
)

// Frame payload kinds. The first payload byte tags the record; files
// only accept the kinds they own, so a segment misfiled or overwritten
// with the wrong stream fails loudly.
const (
	recBatch byte = 1 + iota // shard WAL: one applied batch
	recTerms                 // dictionary log: a run of newly interned terms
	recMeta                  // manifest: JSON store configuration

	// checkpoint sections, in file order
	recCkptHeader
	recCkptProps
	recCkptTriples
	recCkptTracker
	recCkptPairs
	recCkptView
	recCkptEnd
)

// appendTriple encodes one ID triple (uvarint S, P, O + kind byte).
func appendTriple(dst []byte, it rdf.IDTriple) []byte {
	dst = binary.AppendUvarint(dst, uint64(it.S))
	dst = binary.AppendUvarint(dst, uint64(it.P))
	dst = binary.AppendUvarint(dst, uint64(it.O))
	return append(dst, byte(it.OKind))
}

// recReader is a cursor over a record payload, accumulating the first
// error.
type recReader struct {
	data []byte
	off  int
	err  error
}

func (r *recReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint at payload offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *recReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.err = fmt.Errorf("truncated byte at payload offset %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *recReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.err = fmt.Errorf("truncated %d-byte field at payload offset %d", n, r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *recReader) triple() rdf.IDTriple {
	s := r.uvarint()
	p := r.uvarint()
	o := r.uvarint()
	k := r.byte()
	if r.err == nil && (s > 1<<32-1 || p > 1<<32-1 || o > 1<<32-1) {
		r.err = fmt.Errorf("term ID out of uint32 range at payload offset %d", r.off)
	}
	if r.err == nil && k > byte(rdf.Literal) {
		r.err = fmt.Errorf("bad object kind %d at payload offset %d", k, r.off)
	}
	return rdf.IDTriple{S: term.ID(s), P: term.ID(p), O: term.ID(o), OKind: rdf.TermKind(k)}
}

func (r *recReader) rest() int { return len(r.data) - r.off }

// batchRecord is one applied batch: the post-batch epoch and the raw
// add/remove triple lists as the engine applied them.
type batchRecord struct {
	epoch  uint64
	add    []rdf.IDTriple
	remove []rdf.IDTriple
}

// encodeBatch builds the recBatch payload.
func encodeBatch(dst []byte, epoch uint64, add, remove []rdf.IDTriple) []byte {
	dst = append(dst, recBatch)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(len(add)))
	for _, it := range add {
		dst = appendTriple(dst, it)
	}
	dst = binary.AppendUvarint(dst, uint64(len(remove)))
	for _, it := range remove {
		dst = appendTriple(dst, it)
	}
	return dst
}

// decodeBatch parses a recBatch payload (tag byte included).
func decodeBatch(payload []byte) (*batchRecord, error) {
	r := recReader{data: payload}
	if tag := r.byte(); r.err == nil && tag != recBatch {
		return nil, fmt.Errorf("record kind %d in WAL segment (want batch)", tag)
	}
	b := &batchRecord{epoch: r.uvarint()}
	nAdd := r.uvarint()
	if r.err == nil && nAdd > uint64(r.rest()) { // a triple costs ≥ 4 bytes
		return nil, fmt.Errorf("batch claims %d adds in %d bytes", nAdd, r.rest())
	}
	b.add = make([]rdf.IDTriple, 0, nAdd)
	for i := uint64(0); i < nAdd && r.err == nil; i++ {
		b.add = append(b.add, r.triple())
	}
	nRem := r.uvarint()
	if r.err == nil && nRem > uint64(r.rest()) {
		return nil, fmt.Errorf("batch claims %d removes in %d bytes", nRem, r.rest())
	}
	b.remove = make([]rdf.IDTriple, 0, nRem)
	for i := uint64(0); i < nRem && r.err == nil; i++ {
		b.remove = append(b.remove, r.triple())
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("batch record: %d trailing bytes", r.rest())
	}
	return b, nil
}

// encodeTerms builds a recTerms payload: the dictionary delta
// [firstID, firstID+len(terms)) in ID order. firstID pins contiguity —
// replay verifies each run starts exactly where the previous ended.
func encodeTerms(dst []byte, firstID uint64, terms []string) []byte {
	dst = append(dst, recTerms)
	dst = binary.AppendUvarint(dst, firstID)
	dst = binary.AppendUvarint(dst, uint64(len(terms)))
	for _, s := range terms {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// decodeTerms parses a recTerms payload.
func decodeTerms(payload []byte) (firstID uint64, terms []string, err error) {
	r := recReader{data: payload}
	if tag := r.byte(); r.err == nil && tag != recTerms {
		return 0, nil, fmt.Errorf("record kind %d in dictionary log (want terms)", tag)
	}
	firstID = r.uvarint()
	n := r.uvarint()
	if r.err == nil && n > uint64(r.rest()) { // a term costs ≥ 1 length byte
		return 0, nil, fmt.Errorf("term run claims %d terms in %d bytes", n, r.rest())
	}
	terms = make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		l := int(r.uvarint())
		terms = append(terms, string(r.bytes(l)))
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	if r.rest() != 0 {
		return 0, nil, fmt.Errorf("term run: %d trailing bytes", r.rest())
	}
	return firstID, terms, nil
}
