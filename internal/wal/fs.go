package wal

import (
	"os"
	"path/filepath"
	"sort"

	"repro/internal/wal/walfs"
)

// FS and File are the filesystem surface the store writes through —
// defined in the leaf package walfs so the fault-injection harness
// (wal/faultfs) can implement them without importing this package.
type (
	FS   = walfs.FS
	File = walfs.File
)

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) OpenAppend(path string) (File, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
