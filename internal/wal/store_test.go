package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/incr"
	"repro/internal/rdf"
)

// testBatch is one generated add/remove batch in term space, the
// engine- and shard-independent form references are rebuilt from.
type testBatch struct {
	add    []rdf.Triple
	remove []rdf.Triple
}

// genBatches produces n batches over a small subject/property universe
// with occasional removes. Every batch adds one never-seen triple, so
// every batch is effective (bumps the epoch) no matter what state it
// lands on — which keeps reference replay aligned with the WAL.
func genBatches(rng *rand.Rand, n int) []testBatch {
	var live []rdf.Triple
	out := make([]testBatch, n)
	uniq := 0
	for i := range out {
		var b testBatch
		na := 1 + rng.Intn(4)
		for j := 0; j < na; j++ {
			var t rdf.Triple
			if j == 0 {
				t = rdf.Triple{Subject: fmt.Sprintf("u%d", uniq), Predicate: fmt.Sprintf("p%d", rng.Intn(6)), Object: rdf.NewURI("o")}
				uniq++
			} else {
				t = rdf.Triple{
					Subject:   fmt.Sprintf("s%d", rng.Intn(30)),
					Predicate: fmt.Sprintf("p%d", rng.Intn(6)),
					Object:    rdf.NewLiteral(fmt.Sprintf("v%d", rng.Intn(4))),
				}
			}
			b.add = append(b.add, t)
			live = append(live, t)
		}
		if len(live) > 5 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			b.remove = append(b.remove, live[k])
			live = append(live[:k], live[k+1:]...)
		}
		out[i] = b
	}
	return out
}

func newEngine(t *testing.T, shards int) (incr.Engine, []*incr.Dataset) {
	t.Helper()
	if shards > 1 {
		e := incr.NewSharded(shards, incr.Options{})
		return e, e.Shards()
	}
	d := incr.NewDataset(incr.Options{})
	return d, []*incr.Dataset{d}
}

// fingerprint captures the engine's observable structuredness state in
// a shard- and dictionary-invariant form: exact σ rationals, the
// signature multiset by property names, triple/subject counts and the
// composite epoch. Two engines over the same triple multiset and the
// same effective batch count fingerprint identically regardless of
// shard routing or term-ID assignment.
func fingerprint(e incr.Engine) string {
	snap := e.Snapshot()
	props := snap.View.Properties()
	lines := make([]string, 0, snap.View.NumSignatures())
	for _, sg := range snap.View.Signatures() {
		var names []string
		sg.Bits.ForEach(func(i int) { names = append(names, props[i]) })
		sort.Strings(names)
		lines = append(lines, fmt.Sprintf("%s x%d", strings.Join(names, "|"), sg.Count))
	}
	sort.Strings(lines)
	st := e.Stats()
	return fmt.Sprintf("cov=%s sim=%s triples=%d subjects=%d added=%d removed=%d epoch=%d\n%s",
		e.SigmaCov(), e.SigmaSim(), st.Triples, st.Subjects, st.Added, st.Removed, e.Epoch(),
		strings.Join(lines, "\n"))
}

// applyBatches runs batches through the engine, optionally barriering
// after each one.
func applyBatches(t *testing.T, e incr.Engine, s *Store, batches []testBatch, barrierEach bool) {
	t.Helper()
	for i, b := range batches {
		e.Apply(b.add, b.remove)
		if barrierEach {
			if err := s.Barrier(); err != nil {
				t.Fatalf("barrier after batch %d: %v", i, err)
			}
		}
	}
	if !barrierEach && s != nil {
		if err := s.Barrier(); err != nil {
			t.Fatalf("final barrier: %v", err)
		}
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

func TestParseSyncMode(t *testing.T) {
	cases := []struct {
		in   string
		mode SyncMode
		dur  time.Duration
		ok   bool
	}{
		{"batch", SyncBatch, 0, true},
		{"off", SyncOff, 0, true},
		{"10ms", SyncInterval, 10 * time.Millisecond, true},
		{"1s", SyncInterval, time.Second, true},
		{"0ms", 0, 0, false},
		{"-5ms", 0, 0, false},
		{"sometimes", 0, 0, false},
	}
	for _, c := range cases {
		m, d, err := ParseSyncMode(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSyncMode(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && (m != c.mode || d != c.dur) {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", c.in, m, d)
		}
	}
}

// TestCleanShutdownReplaysZero: Close flushes and checkpoints, so a
// clean restart restores entirely from checkpoints — zero WAL records
// replayed — and reproduces the engine bit-for-bit.
func TestCleanShutdownReplaysZero(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			e, ds := newEngine(t, shards)
			s, rec, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if rec.Records != 0 || rec.Terms != 0 {
				t.Fatalf("fresh dir replayed %+v", rec)
			}
			batches := genBatches(rand.New(rand.NewSource(1)), 60)
			applyBatches(t, e, s, batches, false)
			want := fingerprint(e)
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			e2, ds2 := newEngine(t, shards)
			s2, rec2, err := Open(dir, e2.Dict(), ds2, Options{Mode: SyncBatch})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			if rec2.Records != 0 {
				t.Fatalf("clean restart replayed %d WAL records, want 0 (skipped %d)", rec2.Records, rec2.Skipped)
			}
			if rec2.Checkpoints != shards {
				t.Fatalf("restored %d checkpoints, want %d", rec2.Checkpoints, shards)
			}
			if got := fingerprint(e2); got != want {
				t.Fatalf("recovered state diverges:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestKillAtRandomOffset is the core crash drill: ingest through the
// WAL, "kill" the process by copying the data directory, truncate one
// shard's WAL at a random byte offset (the torn tail a crash leaves),
// recover, and demand the recovered engine be bit-identical — exact σ
// rationals, signature multiset, epoch — to a never-crashed reference
// fed exactly the batches that survived the cut.
func TestKillAtRandomOffset(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				dir := t.TempDir()
				e, ds := newEngine(t, shards)
				s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				batches := genBatches(rng, 80)
				applyBatches(t, e, s, batches, false)

				killed := t.TempDir()
				copyTree(t, dir, killed)
				s.Close() // the writer store is done; we recover the copy

				// Snapshot every shard's pristine segment, then cut
				// one at a random offset.
				pristine := make(map[int][]byte)
				for i := 0; i < shards; i++ {
					data, err := os.ReadFile(filepath.Join(killed, fmt.Sprintf("shard-%04d", i), segName(1)))
					if err != nil {
						t.Fatalf("read shard %d: %v", i, err)
					}
					pristine[i] = data
				}
				victim := rng.Intn(shards)
				cut := int64(rng.Intn(len(pristine[victim]) + 1))
				segPath := filepath.Join(killed, fmt.Sprintf("shard-%04d", victim), segName(1))
				if err := os.Truncate(segPath, cut); err != nil {
					t.Fatalf("truncate: %v", err)
				}

				// Expected survivors: whole frames below the cut.
				survive := make(map[int]int) // shard -> surviving record count
				for i := 0; i < shards; i++ {
					data := pristine[i]
					if i == victim {
						data = data[:cut]
					}
					sc := frameScanner{data: data}
					for {
						p, _, err := sc.next()
						if err != nil || p == nil {
							break
						}
						survive[i]++
					}
				}

				// Reference: a never-crashed single dataset fed the
				// surviving batches, decoded from the pristine WAL
				// (partition invariance makes one dataset a valid
				// reference for any shard count).
				wdict := e.Dict()
				ref := incr.NewDataset(incr.Options{})
				for i := 0; i < shards; i++ {
					sc := frameScanner{data: pristine[i]}
					applied := 0
					for applied < survive[i] {
						p, _, err := sc.next()
						if err != nil || p == nil {
							t.Fatalf("pristine shard %d ended after %d records, want %d", i, applied, survive[i])
						}
						b, err := decodeBatch(p)
						if err != nil {
							t.Fatalf("pristine shard %d: %v", i, err)
						}
						toTriples := func(its []rdf.IDTriple) []rdf.Triple {
							out := make([]rdf.Triple, len(its))
							for k, it := range its {
								obj := rdf.NewURI(wdict.String(it.O))
								if it.OKind == rdf.Literal {
									obj = rdf.NewLiteral(wdict.String(it.O))
								}
								out[k] = rdf.Triple{Subject: wdict.String(it.S), Predicate: wdict.String(it.P), Object: obj}
							}
							return out
						}
						ref.Apply(toTriples(b.add), toTriples(b.remove))
						applied++
					}
				}

				e2, ds2 := newEngine(t, shards)
				s2, rec, err := Open(killed, e2.Dict(), ds2, Options{Mode: SyncBatch})
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				defer s2.Close()
				total := 0
				for _, n := range survive {
					total += n
				}
				if rec.Records != total {
					t.Fatalf("recovered %d records, want %d", rec.Records, total)
				}
				if got, want := fingerprint(e2), fingerprint(ref); got != want {
					t.Fatalf("recovered engine diverges from reference (cut %d/%d bytes of shard %d):\n got: %s\nwant: %s",
						cut, len(pristine[victim]), victim, got, want)
				}
			})
		}
	}
}

// TestTornTailShapes: the torn-tail shapes a crash produces — a
// truncated final frame, a zero-filled tail, and a final frame whose
// header survived but whose payload was zero-filled — are truncated and
// recovery proceeds; the truncation is persistent (a second open sees
// a clean log).
func TestTornTailShapes(t *testing.T) {
	shapes := map[string]func(t *testing.T, segPath string){
		"short": func(t *testing.T, segPath string) {
			data, err := os.ReadFile(segPath)
			if err != nil {
				t.Fatal(err)
			}
			half := appendFrame(nil, encodeBatch(nil, 9999, nil, nil))
			if err := os.WriteFile(segPath, append(data, half[:len(half)-3]...), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"zerofill": func(t *testing.T, segPath string) {
			f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(make([]byte, 37)); err != nil {
				t.Fatal(err)
			}
			f.Close()
		},
		// The crash persisted the next frame's header (length and CRC
		// intact) but zero-filled its payload from some point through
		// EOF — a CRC mismatch that must still read as torn, not
		// corrupt.
		"zero-payload": func(t *testing.T, segPath string) {
			frame := appendFrame(nil, encodeBatch(nil, 9999, nil, nil))
			for i := frameHeaderSize + 2; i < len(frame); i++ {
				frame[i] = 0
			}
			data, err := os.ReadFile(segPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segPath, append(data, frame...), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, mutate := range shapes {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			e, ds := newEngine(t, 1)
			s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			batches := genBatches(rand.New(rand.NewSource(7)), 20)
			applyBatches(t, e, s, batches, false)
			want := fingerprint(e)
			killed := t.TempDir()
			copyTree(t, dir, killed)
			s.Close()

			mutate(t, filepath.Join(killed, "shard-0000", segName(1)))

			e2, ds2 := newEngine(t, 1)
			s2, rec, err := Open(killed, e2.Dict(), ds2, Options{Mode: SyncBatch})
			if err != nil {
				t.Fatalf("recover with torn tail: %v", err)
			}
			if rec.TornBytes == 0 {
				t.Fatalf("expected torn bytes, got %+v", rec)
			}
			if got := fingerprint(e2); got != want {
				t.Fatalf("recovered state diverges:\n got: %s\nwant: %s", got, want)
			}
			s2.Close() // checkpoints; third open replays nothing

			e3, ds3 := newEngine(t, 1)
			s3, rec3, err := Open(killed, e3.Dict(), ds3, Options{Mode: SyncBatch})
			if err != nil {
				t.Fatalf("third open: %v", err)
			}
			defer s3.Close()
			if rec3.TornBytes != 0 || rec3.Records != 0 {
				t.Fatalf("truncation not persistent: %+v", rec3)
			}
			if got := fingerprint(e3); got != want {
				t.Fatalf("third open diverges:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestCorruptRecordHardError: a bad CRC amid intact data is not a torn
// tail — replay must stop with a clear error naming the damage, never
// silently skip acknowledged records.
func TestCorruptRecordHardError(t *testing.T) {
	dir := t.TempDir()
	e, ds := newEngine(t, 1)
	s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	applyBatches(t, e, s, genBatches(rand.New(rand.NewSource(3)), 20), false)
	killed := t.TempDir()
	copyTree(t, dir, killed)
	s.Close()

	segPath := filepath.Join(killed, "shard-0000", segName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the log: CRC mismatch
	// followed by valid non-zero frames.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, ds2 := newEngine(t, 1)
	_, _, err = Open(killed, e2.Dict(), ds2, Options{Mode: SyncBatch})
	if err == nil {
		t.Fatalf("recovery accepted a corrupt record")
	}
	if !strings.Contains(err.Error(), "corrupt frame") {
		t.Fatalf("error does not name the corruption: %v", err)
	}
}

// TestMetaMismatch: the shard count is part of the on-disk layout; an
// engine with a different topology must be rejected loudly.
func TestMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	e, ds := newEngine(t, 4)
	s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s.Close()

	e2, ds2 := newEngine(t, 1)
	_, _, err = Open(dir, e2.Dict(), ds2, Options{Mode: SyncBatch})
	if err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("shard mismatch not rejected: %v", err)
	}
}

// TestCheckpointMidIngestRace hammers Checkpoint concurrently with
// ingestion (run under -race); afterwards a recovery must reproduce
// the writer exactly.
func TestCheckpointMidIngestRace(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			e, ds := newEngine(t, shards)
			s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			batches := genBatches(rand.New(rand.NewSource(11)), 120)
			stop := make(chan struct{})
			ckptDone := make(chan struct{})
			go func() {
				defer close(ckptDone)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Checkpoint(); err != nil {
						t.Errorf("checkpoint: %v", err)
						return
					}
				}
			}()
			for _, b := range batches {
				e.Apply(b.add, b.remove)
			}
			if err := s.Barrier(); err != nil {
				t.Fatalf("barrier: %v", err)
			}
			close(stop)
			<-ckptDone
			want := fingerprint(e)
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			e2, ds2 := newEngine(t, shards)
			s2, _, err := Open(dir, e2.Dict(), ds2, Options{Mode: SyncBatch})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer s2.Close()
			if got := fingerprint(e2); got != want {
				t.Fatalf("recovered state diverges:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestCloseIdempotent: a second Close is a no-op that returns the
// first call's result — not a latched "store closed" error from
// re-running the shutdown checkpoint against closed files.
func TestCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	e, ds := newEngine(t, 1)
	s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	applyBatches(t, e, s, genBatches(rand.New(rand.NewSource(2)), 5), false)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestTornManifest: a crash during the very first open can leave a
// partial manifest with nothing else in the directory — reopen must
// rewrite it, not brick the data dir. Once shard data exists, a
// damaged manifest stays a hard error.
func TestTornManifest(t *testing.T) {
	t.Run("empty-dir-rewrites", func(t *testing.T) {
		dir := t.TempDir()
		frame := appendFrame(nil, append([]byte{recMeta}, []byte(`{"version":1,"shards":1,"pairs":true}`)...))
		if err := os.WriteFile(filepath.Join(dir, metaName), frame[:len(frame)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		e, ds := newEngine(t, 1)
		s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
		if err != nil {
			t.Fatalf("open with torn manifest in empty dir: %v", err)
		}
		applyBatches(t, e, s, genBatches(rand.New(rand.NewSource(8)), 5), false)
		want := fingerprint(e)
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		e2, ds2 := newEngine(t, 1)
		s2, _, err := Open(dir, e2.Dict(), ds2, Options{Mode: SyncBatch})
		if err != nil {
			t.Fatalf("reopen after rewrite: %v", err)
		}
		defer s2.Close()
		if got := fingerprint(e2); got != want {
			t.Fatalf("recovered state diverges:\n got: %s\nwant: %s", got, want)
		}
	})
	t.Run("with-data-hard-error", func(t *testing.T) {
		dir := t.TempDir()
		e, ds := newEngine(t, 1)
		s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncBatch})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		applyBatches(t, e, s, genBatches(rand.New(rand.NewSource(9)), 5), false)
		s.Close()

		path := filepath.Join(dir, metaName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		e2, ds2 := newEngine(t, 1)
		_, _, err = Open(dir, e2.Dict(), ds2, Options{Mode: SyncBatch})
		if err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
			t.Fatalf("damaged manifest alongside shard data not rejected: %v", err)
		}
	})
}

// TestSyncModes: interval mode barriers return after the group-commit
// window; off mode reports non-synchronous and still recovers whatever
// reached the OS on a clean close.
func TestSyncModes(t *testing.T) {
	t.Run("interval", func(t *testing.T) {
		dir := t.TempDir()
		e, ds := newEngine(t, 1)
		s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncInterval, SyncInterval: 2 * time.Millisecond})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if !s.Synchronous() {
			t.Fatal("interval mode should be synchronous")
		}
		applyBatches(t, e, s, genBatches(rand.New(rand.NewSource(5)), 10), true)
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
	t.Run("off", func(t *testing.T) {
		dir := t.TempDir()
		e, ds := newEngine(t, 1)
		s, _, err := Open(dir, e.Dict(), ds, Options{Mode: SyncOff})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if s.Synchronous() {
			t.Fatal("off mode must report non-synchronous")
		}
		batches := genBatches(rand.New(rand.NewSource(6)), 15)
		for _, b := range batches {
			e.Apply(b.add, b.remove)
		}
		if err := s.Barrier(); err != nil {
			t.Fatalf("off-mode barrier: %v", err)
		}
		want := fingerprint(e)
		if err := s.Close(); err != nil { // clean close still flushes + checkpoints
			t.Fatalf("close: %v", err)
		}
		e2, ds2 := newEngine(t, 1)
		s2, _, err := Open(dir, e2.Dict(), ds2, Options{Mode: SyncOff})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		defer s2.Close()
		if got := fingerprint(e2); got != want {
			t.Fatalf("recovered state diverges:\n got: %s\nwant: %s", got, want)
		}
	})
}
