// Package faultfs is an in-memory implementation of wal.FS with fault
// injection: it can fail or short-write the Nth write, and it can
// simulate a crash by discarding data that was never fsynced — wholly,
// as a torn tail, or as a reordered subset of writes. Crash recovery
// becomes testable in-process, deterministically, without killing
// anything.
//
// Durability model: bytes written before the last Sync on a file
// survive a crash; bytes after it survive only as the crash policy
// dictates. Namespace operations (create, rename, remove) are modeled
// as immediately durable — SyncDir is a no-op — which is the common
// journaled-metadata filesystem behavior; torn checkpoints are still
// exercised through lost unsynced *data*.
package faultfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/wal/walfs"
)

// FS is the in-memory filesystem. The zero value is not usable; call
// New.
type FS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool

	writes  int64 // write calls observed so far
	failAt  int64 // fail the Nth write (1-based); 0 = never
	shortAt int64 // short-write the Nth write (1-based); 0 = never
}

// memFile holds one file's bytes. data[:synced] is durable; the rest
// is partitioned into writeEnds — the end offset of each un-synced
// Write call, in order — so a crash can drop individual writes.
type memFile struct {
	data      []byte
	synced    int
	writeEnds []int
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string]*memFile), dirs: map[string]bool{".": true}}
}

// FailAt makes the nth subsequent Write call (1-based) return an
// error without writing anything.
func (f *FS) FailAt(n int64) {
	f.mu.Lock()
	f.failAt = f.writes + n
	f.mu.Unlock()
}

// ShortWriteAt makes the nth subsequent Write call (1-based) write
// only half its bytes and then return an error.
func (f *FS) ShortWriteAt(n int64) {
	f.mu.Lock()
	f.shortAt = f.writes + n
	f.mu.Unlock()
}

// Writes returns the number of Write calls observed so far.
func (f *FS) Writes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// CrashPolicy decides what survives of a file's un-synced bytes.
type CrashPolicy int

const (
	// KeepNone drops every un-synced byte: the strictest crash.
	KeepNone CrashPolicy = iota
	// TornTail keeps a random prefix of the un-synced bytes — cutting
	// mid-frame — and, half the time, zero-fills the rest of the
	// un-synced region instead of shortening the file (both shapes
	// real filesystems produce).
	TornTail
	// ReorderedWrites keeps a random subset of the un-synced write
	// calls; a dropped earlier write leaves a zero hole under a
	// surviving later one — out-of-order writeback.
	ReorderedWrites
)

// Crash returns a deep copy of the filesystem as a crashed disk under
// the given policy. The original FS (and any open handles into it)
// keeps working — it plays the dead process; the copy is what a
// restarted process mounts.
func (f *FS) Crash(policy CrashPolicy, rng *rand.Rand) *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := New()
	for d := range f.dirs {
		out.dirs[d] = true
	}
	for name, mf := range f.files {
		data := append([]byte(nil), mf.data[:mf.synced]...)
		switch policy {
		case KeepNone:
		case TornTail:
			unsynced := len(mf.data) - mf.synced
			keep := 0
			if unsynced > 0 {
				keep = rng.Intn(unsynced + 1)
			}
			data = append(data, mf.data[mf.synced:mf.synced+keep]...)
			if keep < unsynced && rng.Intn(2) == 0 {
				data = append(data, make([]byte, unsynced-keep)...)
			}
		case ReorderedWrites:
			prev := mf.synced
			for _, we := range mf.writeEnds {
				if rng.Intn(2) == 0 {
					// Zero-fill the holes left by dropped earlier
					// writes, then land this one at its true offset.
					for len(data) < prev {
						data = append(data, 0)
					}
					data = append(data, mf.data[prev:we]...)
				}
				prev = we
			}
		}
		out.files[name] = &memFile{data: data, synced: len(data)}
	}
	return out
}

type handle struct {
	fs   *FS
	name string
}

func clean(p string) string { return path.Clean(p) }

func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := clean(dir)
	for {
		f.dirs[d] = true
		parent := path.Dir(d)
		if parent == d {
			return nil
		}
		d = parent
	}
}

func (f *FS) OpenAppend(p string) (walfs.File, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name := clean(p)
	mf := f.files[name]
	if mf == nil {
		mf = &memFile{}
		f.files[name] = mf
	}
	return &handle{fs: f, name: name}, int64(len(mf.data)), nil
}

func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.fs.writes++
	mf := h.fs.files[h.name]
	if mf == nil {
		return 0, fmt.Errorf("faultfs: write to removed file %s", h.name)
	}
	if h.fs.failAt != 0 && h.fs.writes == h.fs.failAt {
		return 0, fmt.Errorf("faultfs: injected write failure (write #%d, %s)", h.fs.writes, h.name)
	}
	if h.fs.shortAt != 0 && h.fs.writes == h.fs.shortAt {
		n := len(p) / 2
		mf.data = append(mf.data, p[:n]...)
		mf.writeEnds = append(mf.writeEnds, len(mf.data))
		return n, fmt.Errorf("faultfs: injected short write (%d of %d bytes, %s)", n, len(p), h.name)
	}
	mf.data = append(mf.data, p...)
	mf.writeEnds = append(mf.writeEnds, len(mf.data))
	return len(p), nil
}

func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	mf := h.fs.files[h.name]
	if mf == nil {
		return fmt.Errorf("faultfs: sync of removed file %s", h.name)
	}
	mf.synced = len(mf.data)
	mf.writeEnds = nil
	return nil
}

func (h *handle) Close() error { return nil }

func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf := f.files[clean(p)]
	if mf == nil {
		return nil, fmt.Errorf("faultfs: %s: %w", p, fs.ErrNotExist)
	}
	return append([]byte(nil), mf.data...), nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	op, np := clean(oldpath), clean(newpath)
	mf := f.files[op]
	if mf == nil {
		return fmt.Errorf("faultfs: rename %s: %w", oldpath, fs.ErrNotExist)
	}
	f.files[np] = mf
	delete(f.files, op)
	return nil
}

func (f *FS) Remove(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name := clean(p)
	if f.files[name] == nil {
		return fmt.Errorf("faultfs: remove %s: %w", p, fs.ErrNotExist)
	}
	delete(f.files, name)
	return nil
}

func (f *FS) Truncate(p string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	mf := f.files[clean(p)]
	if mf == nil {
		return fmt.Errorf("faultfs: truncate %s: %w", p, fs.ErrNotExist)
	}
	if size > int64(len(mf.data)) {
		return fmt.Errorf("faultfs: truncate %s beyond EOF", p)
	}
	mf.data = mf.data[:size]
	if mf.synced > int(size) {
		mf.synced = int(size)
	}
	ends := mf.writeEnds[:0]
	for _, we := range mf.writeEnds {
		if we <= int(size) {
			ends = append(ends, we)
		}
	}
	mf.writeEnds = ends
	return nil
}

func (f *FS) List(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := clean(dir)
	seen := map[string]bool{}
	for name := range f.files {
		if path.Dir(name) == d {
			seen[path.Base(name)] = true
		}
	}
	for name := range f.dirs {
		if name != d && path.Dir(name) == d {
			seen[path.Base(name)] = true
		}
	}
	if len(seen) == 0 && !f.dirs[d] {
		return nil, nil
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (f *FS) SyncDir(dir string) error { return nil }

// Dump lists every file and its sizes — a debugging aid for tests.
func (f *FS) Dump() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.files))
	for n := range f.files {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		mf := f.files[n]
		fmt.Fprintf(&b, "%s: %d bytes (%d synced)\n", n, len(mf.data), mf.synced)
	}
	return b.String()
}
