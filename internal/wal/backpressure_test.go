package wal

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rdf"
)

// openLongInterval opens a store whose group-commit window is far
// longer than the test, so pending bytes accumulate until an explicit
// Flush — the backlog the backpressure primitives act on.
func openLongInterval(t *testing.T, shards int) (*Store, func(add []rdf.Triple)) {
	t.Helper()
	e, ds := newEngine(t, shards)
	s, _, err := Open(t.TempDir(), e.Dict(), ds, Options{
		Mode:         SyncInterval,
		SyncInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, func(add []rdf.Triple) { e.Apply(add, nil) }
}

func TestAwaitBacklogBoundsAndDrains(t *testing.T) {
	s, apply := openLongInterval(t, 2)
	if got := s.PendingBytes(); got != 0 {
		t.Fatalf("pending = %d before any batch", got)
	}
	for i := 0; i < 20; i++ {
		apply([]rdf.Triple{{
			Subject:   "s" + string(rune('a'+i)),
			Predicate: "p",
			Object:    rdf.NewURI("o"),
		}})
	}
	pending := s.PendingBytes()
	if pending <= 0 {
		t.Fatalf("pending = %d after 20 batches", pending)
	}

	// Under the bound (or disabled): returns immediately.
	if err := s.AwaitBacklog(context.Background(), pending); err != nil {
		t.Fatalf("AwaitBacklog at bound: %v", err)
	}
	if err := s.AwaitBacklog(context.Background(), 0); err != nil {
		t.Fatalf("AwaitBacklog disabled: %v", err)
	}

	// Over the bound with no flush coming: the context deadline is the
	// shed signal.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.AwaitBacklog(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AwaitBacklog over bound = %v, want DeadlineExceeded", err)
	}

	// A concurrent flush releases the waiter.
	done := make(chan error, 1)
	go func() { done <- s.AwaitBacklog(context.Background(), 1) }()
	time.Sleep(10 * time.Millisecond)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AwaitBacklog after flush: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AwaitBacklog not released by flush")
	}
	if got := s.PendingBytes(); got != 0 {
		t.Fatalf("pending = %d after flush", got)
	}
}

func TestBarrierCtxDeadlineAndCompletion(t *testing.T) {
	s, apply := openLongInterval(t, 1)
	apply([]rdf.Triple{{Subject: "s", Predicate: "p", Object: rdf.NewURI("o")}})

	// No covering cycle within the deadline: ctx.Err(), batch stays
	// applied and pending.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.BarrierCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("BarrierCtx = %v, want DeadlineExceeded", err)
	}

	// A flush completes the covering cycle; the same barrier target now
	// passes without waiting.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.BarrierCtx(context.Background()); err != nil {
		t.Fatalf("BarrierCtx after flush: %v", err)
	}

	// A waiter parked before the flush is woken by it.
	apply([]rdf.Triple{{Subject: "s2", Predicate: "p", Object: rdf.NewURI("o")}})
	done := make(chan error, 1)
	go func() { done <- s.BarrierCtx(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked BarrierCtx: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BarrierCtx not released by flush")
	}
}

// TestBarrierCtxSyncBatch: outside SyncInterval mode BarrierCtx never
// waits on the flusher — it delegates to Barrier (inline flush), so a
// tight deadline is irrelevant.
func TestBarrierCtxSyncBatch(t *testing.T) {
	e, ds := newEngine(t, 1)
	s, _, err := Open(t.TempDir(), e.Dict(), ds, Options{Mode: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e.Apply([]rdf.Triple{{Subject: "s", Predicate: "p", Object: rdf.NewURI("o")}}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if err := s.BarrierCtx(ctx); err != nil {
		t.Fatalf("BarrierCtx in SyncBatch mode: %v", err)
	}
	if got := s.PendingBytes(); got != 0 {
		t.Fatalf("pending = %d after SyncBatch barrier", got)
	}
}
