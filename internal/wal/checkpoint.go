package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/rules"
	"repro/internal/term"
)

// A checkpoint file is a frame sequence with a fixed section order:
//
//	header | props | triples* | tracker | [pairs] | view | end
//
// The end marker proves the file was written completely — a checkpoint
// without it (crash mid-write before the rename, or a torn rename on a
// non-atomic filesystem) is invalid and recovery falls back to the
// previous one. Files are written to a .tmp name, fsynced, renamed into
// place, and the directory is fsynced, so a visible ckpt-*.ckpt is
// either complete or detectably torn.

const ckptVersion = 1

// triples per recCkptTriples chunk; keeps single frames modest.
const ckptTripleChunk = 1 << 16

func checkpointName(epoch uint64) string {
	return fmt.Sprintf("ckpt-%020d.ckpt", epoch)
}

// parseCheckpointName returns the epoch encoded in a checkpoint file
// name, or ok=false if the name is not a checkpoint.
func parseCheckpointName(name string) (epoch uint64, ok bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
	if len(mid) != 20 {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// encodeCheckpoint serializes st as the checkpoint frame sequence.
func encodeCheckpoint(st *incr.CheckpointState) []byte {
	var buf []byte

	hdr := []byte{recCkptHeader}
	hdr = binary.AppendUvarint(hdr, ckptVersion)
	hdr = binary.AppendUvarint(hdr, st.Epoch)
	hdr = binary.AppendUvarint(hdr, st.Added)
	hdr = binary.AppendUvarint(hdr, st.Removed)
	if st.Pairs != nil {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	buf = appendFrame(buf, hdr)

	props := []byte{recCkptProps}
	props = binary.AppendUvarint(props, uint64(len(st.PropIDs)))
	for _, id := range st.PropIDs {
		props = binary.AppendUvarint(props, uint64(id))
	}
	buf = appendFrame(buf, props)

	for off := 0; off < len(st.Triples); off += ckptTripleChunk {
		end := off + ckptTripleChunk
		if end > len(st.Triples) {
			end = len(st.Triples)
		}
		chunk := []byte{recCkptTriples}
		chunk = binary.AppendUvarint(chunk, uint64(end-off))
		for _, it := range st.Triples[off:end] {
			chunk = appendTriple(chunk, it)
		}
		buf = appendFrame(buf, chunk)
	}

	buf = appendFrame(buf, st.Tracker.AppendBinary([]byte{recCkptTracker}))
	if st.Pairs != nil {
		buf = appendFrame(buf, st.Pairs.AppendBinary([]byte{recCkptPairs}))
	}
	buf = appendFrame(buf, st.View.AppendBinary([]byte{recCkptView}))
	buf = appendFrame(buf, []byte{recCkptEnd})
	return buf
}

// decodeCheckpoint parses a full checkpoint file. Any framing damage,
// missing section, out-of-order section, or absent end marker is an
// error — checkpoints are written atomically, so a damaged one is
// simply not used (the caller falls back to an older checkpoint or an
// empty state plus full WAL replay).
func decodeCheckpoint(data []byte) (*incr.CheckpointState, error) {
	sc := frameScanner{data: data}
	nextPayload := func(want byte) ([]byte, error) {
		p, _, err := sc.next()
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("checkpoint ends before %s section", ckptSectionName(want))
		}
		if p[0] != want {
			return nil, fmt.Errorf("checkpoint section %s where %s expected",
				ckptSectionName(p[0]), ckptSectionName(want))
		}
		return p[1:], nil
	}

	hdr, err := nextPayload(recCkptHeader)
	if err != nil {
		return nil, err
	}
	r := recReader{data: hdr}
	if v := r.uvarint(); r.err == nil && v != ckptVersion {
		return nil, fmt.Errorf("checkpoint version %d (supported: %d)", v, ckptVersion)
	}
	st := &incr.CheckpointState{
		Epoch:   r.uvarint(),
		Added:   r.uvarint(),
		Removed: r.uvarint(),
	}
	hasPairs := r.byte()
	if r.err != nil {
		return nil, fmt.Errorf("checkpoint header: %w", r.err)
	}
	if hasPairs > 1 {
		return nil, fmt.Errorf("checkpoint header: bad pairs flag %d", hasPairs)
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("checkpoint header: %d trailing bytes", r.rest())
	}

	props, err := nextPayload(recCkptProps)
	if err != nil {
		return nil, err
	}
	r = recReader{data: props}
	nProps := r.uvarint()
	if r.err == nil && nProps > uint64(r.rest()) { // an ID costs ≥ 1 byte
		return nil, fmt.Errorf("checkpoint claims %d property columns in %d bytes", nProps, r.rest())
	}
	st.PropIDs = make([]term.ID, 0, nProps)
	for i := uint64(0); i < nProps && r.err == nil; i++ {
		id := r.uvarint()
		if id > 1<<32-1 {
			return nil, fmt.Errorf("checkpoint property column %d out of uint32 range", i)
		}
		st.PropIDs = append(st.PropIDs, term.ID(id))
	}
	if r.err != nil {
		return nil, fmt.Errorf("checkpoint props: %w", r.err)
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("checkpoint props: %d trailing bytes", r.rest())
	}

	// Triple chunks run until the tracker section appears.
	var payload []byte
	for {
		p, _, err := sc.next()
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("checkpoint ends before tracker section")
		}
		if p[0] == recCkptTriples {
			r = recReader{data: p[1:]}
			n := r.uvarint()
			if r.err == nil && n > uint64(r.rest()) { // a triple costs ≥ 4 bytes
				return nil, fmt.Errorf("checkpoint chunk claims %d triples in %d bytes", n, r.rest())
			}
			for i := uint64(0); i < n && r.err == nil; i++ {
				st.Triples = append(st.Triples, r.triple())
			}
			if r.err != nil {
				return nil, fmt.Errorf("checkpoint triples: %w", r.err)
			}
			if r.rest() != 0 {
				return nil, fmt.Errorf("checkpoint triples: %d trailing bytes", r.rest())
			}
			continue
		}
		if p[0] != recCkptTracker {
			return nil, fmt.Errorf("checkpoint section %s where %s expected",
				ckptSectionName(p[0]), ckptSectionName(recCkptTracker))
		}
		payload = p[1:]
		break
	}

	st.Tracker, err = rules.DecodeCountTracker(payload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint tracker: %w", err)
	}

	if hasPairs == 1 {
		payload, err = nextPayload(recCkptPairs)
		if err != nil {
			return nil, err
		}
		st.Pairs, err = rules.DecodePairTracker(payload)
		if err != nil {
			return nil, fmt.Errorf("checkpoint pairs: %w", err)
		}
	}

	payload, err = nextPayload(recCkptView)
	if err != nil {
		return nil, err
	}
	st.View, err = matrix.DecodeView(payload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint view: %w", err)
	}

	if _, err = nextPayload(recCkptEnd); err != nil {
		return nil, err
	}
	if p, _, err := sc.next(); err != nil || p != nil {
		return nil, fmt.Errorf("checkpoint has data after end marker")
	}
	return st, nil
}

func ckptSectionName(tag byte) string {
	switch tag {
	case recCkptHeader:
		return "header"
	case recCkptProps:
		return "props"
	case recCkptTriples:
		return "triples"
	case recCkptTracker:
		return "tracker"
	case recCkptPairs:
		return "pairs"
	case recCkptView:
		return "view"
	case recCkptEnd:
		return "end"
	default:
		return fmt.Sprintf("kind-%d", tag)
	}
}

// writeCheckpoint atomically publishes st into dir and prunes old
// checkpoints, keeping the newest two (the survivor covers a crash that
// corrupts the newest before its first read).
func writeCheckpoint(fs FS, dir string, st *incr.CheckpointState) error {
	name := checkpointName(st.Epoch)
	tmp := filepath.Join(dir, name+".tmp")
	f, _, err := fs.OpenAppend(tmp)
	if err != nil {
		return err
	}
	data := encodeCheckpoint(st)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	return pruneCheckpoints(fs, dir, 2)
}

// pruneCheckpoints removes all but the keep newest checkpoints, plus
// any stale .tmp leftovers from crashed writes.
func pruneCheckpoints(fs FS, dir string, keep int) error {
	names, err := fs.List(dir)
	if err != nil {
		return err
	}
	type ck struct {
		name  string
		epoch uint64
	}
	var cks []ck
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			if err := fs.Remove(filepath.Join(dir, n)); err != nil {
				return err
			}
			continue
		}
		if e, ok := parseCheckpointName(n); ok {
			cks = append(cks, ck{n, e})
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].epoch > cks[j].epoch })
	for _, c := range cks[min(keep, len(cks)):] {
		if err := fs.Remove(filepath.Join(dir, c.name)); err != nil {
			return err
		}
	}
	return nil
}

// latestCheckpoint loads the newest readable checkpoint in dir. A
// damaged newest checkpoint falls back to the previous one (checkpoints
// are redundant with the WAL they summarize — an older checkpoint just
// means a longer replay). Returns (nil, "", nil) when no usable
// checkpoint exists.
func latestCheckpoint(fs FS, dir string) (*incr.CheckpointState, string, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, "", err
	}
	type ck struct {
		name  string
		epoch uint64
	}
	var cks []ck
	for _, n := range names {
		if e, ok := parseCheckpointName(n); ok {
			cks = append(cks, ck{n, e})
		}
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].epoch > cks[j].epoch })
	var firstErr error
	for _, c := range cks {
		data, err := fs.ReadFile(filepath.Join(dir, c.name))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		st, err := decodeCheckpoint(data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", c.name, err)
			}
			continue
		}
		return st, c.name, nil
	}
	if firstErr != nil && len(cks) > 0 {
		// Every checkpoint present is unreadable. Surface the newest
		// failure rather than silently replaying from genesis: the WAL
		// tail alone cannot reach the checkpointed epoch.
		return nil, "", fmt.Errorf("no readable checkpoint: %w", firstErr)
	}
	return nil, "", nil
}
