package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Every durable file — WAL segments, the dictionary log, checkpoints,
// the manifest — is a sequence of frames:
//
//	┌────────────┬────────────┬─────────────────┐
//	│ length u32 │ crc32c u32 │ payload (length)│
//	└────────────┴────────────┴─────────────────┘
//
// length and crc are little-endian; crc is Castagnoli over the payload.
// A frame is valid only if it is complete and its CRC matches. When a
// scan hits an invalid frame it classifies the damage:
//
//   - torn tail: the frame is cut off by end-of-file; everything from
//     the frame's first byte to EOF is zero (a crash lost the tail of
//     the page cache, or the filesystem zero-filled preallocated
//     space); or the final frame's header survived but its payload is
//     zero-filled from some point through EOF (the file length and
//     header page persisted, the payload pages did not). Recovery
//     truncates the tail and continues — these are the expected shapes
//     of a crash mid-write.
//   - corruption: a complete frame whose CRC mismatches, a frame
//     claiming an impossible length, or garbage followed by more
//     non-zero data. Recovery stops with a hard error — silently
//     dropping records that were once durable would un-acknowledge
//     acknowledged writes.
const frameHeaderSize = 8

// maxFramePayload bounds a single frame. Batches and checkpoint
// sections are chunked well below this; a length field above it is
// treated as corruption, not as a torn tail, so a flipped length bit
// cannot silently swallow the rest of a log.
const maxFramePayload = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameScanner iterates the frames of a byte buffer.
type frameScanner struct {
	data []byte
	off  int64
}

// errTorn distinguishes a truncatable torn tail from hard corruption.
type tornError struct {
	off int64
}

func (e *tornError) Error() string {
	return fmt.Sprintf("torn tail at offset %d", e.off)
}

// next returns the next frame's payload. Returns (nil, 0, nil) at a
// clean end of buffer. A torn tail returns *tornError (the caller
// truncates at its offset); anything else unrecoverable returns a
// corruption error.
func (s *frameScanner) next() (payload []byte, end int64, err error) {
	rest := int64(len(s.data)) - s.off
	if rest == 0 {
		return nil, s.off, nil
	}
	if rest < frameHeaderSize {
		return nil, 0, s.classify("header cut off by EOF")
	}
	hdr := s.data[s.off:]
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxFramePayload {
		return nil, 0, s.classify(fmt.Sprintf("impossible frame length %d", n))
	}
	if rest < frameHeaderSize+n {
		return nil, 0, s.classify("payload cut off by EOF")
	}
	payload = hdr[frameHeaderSize : frameHeaderSize+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, s.classify("crc mismatch")
	}
	s.off += frameHeaderSize + n
	return payload, s.off, nil
}

// classify decides torn-vs-corrupt for an invalid frame starting at the
// current offset. Torn tails — truncated and replay continues — are: a
// frame cut off by EOF, bad bytes that are all zero through EOF, and a
// final frame whose header survived but whose payload tail (and
// everything after it) is zero — a crash that persisted the file length
// and header but zero-filled the payload. An impossible length or a CRC
// mismatch followed by more non-zero data is corruption.
func (s *frameScanner) classify(reason string) error {
	tail := s.data[s.off:]
	// Last non-zero byte after the frame start; -1 when zeros run from
	// the frame start to EOF.
	lastNZ := int64(-1)
	for i := len(tail) - 1; i >= 0; i-- {
		if tail[i] != 0 {
			lastNZ = int64(i)
			break
		}
	}
	if lastNZ < 0 {
		return &tornError{off: s.off}
	}
	rest := int64(len(tail))
	if rest < frameHeaderSize {
		// Header cut off by EOF.
		return &tornError{off: s.off}
	}
	n := int64(binary.LittleEndian.Uint32(tail[0:4]))
	if n > 0 && n <= maxFramePayload {
		if rest < frameHeaderSize+n {
			// Payload cut off by EOF.
			return &tornError{off: s.off}
		}
		if lastNZ < frameHeaderSize+n-1 {
			// Plausible length, CRC mismatch, and the payload's final
			// byte — plus everything through EOF — is zero: the tail of
			// the payload was never persisted. No later frame exists
			// (it would be non-zero), so this frame was never covered
			// by a completed fsync and truncating it loses nothing
			// acknowledged.
			return &tornError{off: s.off}
		}
	}
	return fmt.Errorf("corrupt frame at offset %d: %s", s.off, reason)
}
