package wal

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/incr"
	"repro/internal/wal/faultfs"
)

// openOnFS opens a fresh engine + store over the given filesystem.
func openOnFS(t *testing.T, fs FS, shards int, mode SyncMode) (incr.Engine, *Store, *RecoveryStats) {
	t.Helper()
	e, ds := newEngine(t, shards)
	s, rec, err := Open("data", e.Dict(), ds, Options{FS: fs, Mode: mode})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return e, s, rec
}

// TestInjectedWriteFailure: a failed or short write latches the store —
// Barrier reports the error instead of acknowledging an unlogged batch
// — and a subsequent recovery from the damaged files still yields a
// consistent prefix.
func TestInjectedWriteFailure(t *testing.T) {
	for _, short := range []bool{false, true} {
		name := "fail"
		if short {
			name = "short-write"
		}
		t.Run(name, func(t *testing.T) {
			fs := faultfs.New()
			e, s, _ := openOnFS(t, fs, 1, SyncBatch)
			batches := genBatches(rand.New(rand.NewSource(21)), 10)
			applyBatches(t, e, s, batches[:5], true)
			acked := fingerprint(e)

			// Trip on the next shard-segment write. Each barrier cycle
			// writes the dict delta (if any) then the shard chunk; the
			// dict delta for these batches is non-empty, so fault the
			// second write of the cycle.
			if short {
				fs.ShortWriteAt(2)
			} else {
				fs.FailAt(2)
			}
			e.Apply(batches[5].add, batches[5].remove)
			if err := s.Barrier(); err == nil {
				t.Fatal("barrier acknowledged a batch the WAL failed to write")
			}
			if err := s.Barrier(); err == nil {
				t.Fatal("failure did not latch")
			}

			// Recovery on the damaged filesystem: a torn last record is
			// truncated; the acked prefix must be intact.
			e2, ds2 := newEngine(t, 1)
			s2, _, err := Open("data", e2.Dict(), ds2, Options{FS: fs, Mode: SyncBatch})
			if err != nil {
				t.Fatalf("recover after injected failure: %v", err)
			}
			defer s2.Close()
			if got := fingerprint(e2); got != acked {
				t.Fatalf("acked prefix lost:\n got: %s\nwant: %s", got, acked)
			}
		})
	}
}

// TestCheckpointCapturesLateDictTerms: batches applied in the window
// between Checkpoint's flush cycle and the per-shard export intern
// terms that cycle's dict sync never saw. The checkpoint captures
// those batches, becomes durable, and prunes the WAL behind it — so it
// must fsync the dictionary delta before publishing, or a crash before
// the next flush leaves a durable checkpoint referencing term IDs past
// the recovered dictionary and recovery hard-fails.
func TestCheckpointCapturesLateDictTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fs := faultfs.New()
	e, s, _ := openOnFS(t, fs, 1, SyncBatch)
	batches := genBatches(rng, 10)
	applyBatches(t, e, s, batches[:8], true)

	// Sneak the last two batches — each interning fresh terms — into
	// the checkpoint window.
	injected := false
	s.testAfterFlush = func() {
		if injected {
			return
		}
		injected = true
		for _, b := range batches[8:] {
			e.Apply(b.add, b.remove)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if !injected {
		t.Fatal("checkpoint window hook never ran")
	}
	want := fingerprint(e)

	// Crash losing every un-synced byte. The injected batches' WAL
	// records were still pending in memory, so the fsynced checkpoint
	// is the only durable copy — every term ID it references must
	// resolve from the fsynced dict log.
	crashed := fs.Crash(faultfs.KeepNone, rng)
	e2, ds2 := newEngine(t, 1)
	s2, rec, err := Open("data", e2.Dict(), ds2, Options{FS: crashed, Mode: SyncBatch})
	if err != nil {
		t.Fatalf("recovery hard-failed after a checkpoint that captured late-interned terms: %v", err)
	}
	defer s2.Close()
	if rec.Checkpoints != 1 {
		t.Fatalf("recovered from %d checkpoints, want 1", rec.Checkpoints)
	}
	if got := fingerprint(e2); got != want {
		t.Fatalf("recovered state diverges:\n got: %s\nwant: %s", got, want)
	}
}

// TestCrashNeverLosesSyncedData: whatever the crash policy does to
// un-synced bytes, batches acknowledged through a SyncBatch barrier
// must survive bit-identically.
func TestCrashNeverLosesSyncedData(t *testing.T) {
	for _, policy := range []faultfs.CrashPolicy{faultfs.KeepNone, faultfs.TornTail, faultfs.ReorderedWrites} {
		for seed := int64(0); seed < 5; seed++ {
			t.Run(fmt.Sprintf("policy=%d/seed=%d", policy, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				fs := faultfs.New()
				e, s, _ := openOnFS(t, fs, 2, SyncBatch)
				applyBatches(t, e, s, genBatches(rng, 25), true)
				want := fingerprint(e)
				_ = s // the dead process: never closed

				crashed := fs.Crash(policy, rng)
				e2, ds2 := newEngine(t, 2)
				s2, _, err := Open("data", e2.Dict(), ds2, Options{FS: crashed, Mode: SyncBatch})
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				defer s2.Close()
				if got := fingerprint(e2); got != want {
					t.Fatalf("synced data lost under crash policy %d:\n got: %s\nwant: %s", policy, got, want)
				}
			})
		}
	}
}

// TestCrashUnsyncedProperty: with fsync off, a crash may lose or
// mangle any un-synced suffix. The safety property recovery must
// uphold: it either reconstructs a clean prefix of the applied batches
// — verified bit-identical against a reference fed that prefix — or it
// refuses with an error. It must never serve a silently wrong state.
func TestCrashUnsyncedProperty(t *testing.T) {
	policies := []faultfs.CrashPolicy{faultfs.KeepNone, faultfs.TornTail, faultfs.ReorderedWrites}
	for _, policy := range policies {
		for seed := int64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("policy=%d/seed=%d", policy, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(1000 + seed))
				fs := faultfs.New()
				e, s, _ := openOnFS(t, fs, 1, SyncOff)
				batches := genBatches(rng, 20)
				for _, b := range batches {
					e.Apply(b.add, b.remove)
					// Per-batch flush: bytes reach the "OS" un-synced,
					// one write per batch, so crash policies can cut
					// and reorder at batch granularity.
					if err := s.Flush(); err != nil {
						t.Fatalf("flush: %v", err)
					}
				}

				crashed := fs.Crash(policy, rng)
				e2, ds2 := newEngine(t, 1)
				s2, _, err := Open("data", e2.Dict(), ds2, Options{FS: crashed, Mode: SyncBatch})
				if err != nil {
					// Refusing loudly is a legal outcome for mangled
					// un-synced state (e.g. a reorder hole, or a WAL
					// that outran the lost dictionary tail).
					t.Logf("recovery refused (ok): %v", err)
					return
				}
				defer s2.Close()
				n := int(e2.Epoch())
				if n > len(batches) {
					t.Fatalf("recovered epoch %d beyond %d applied batches", n, len(batches))
				}
				ref := incr.NewDataset(incr.Options{})
				for _, b := range batches[:n] {
					ref.Apply(b.add, b.remove)
				}
				if got, want := fingerprint(e2), fingerprint(ref); got != want {
					t.Fatalf("recovered state is not the %d-batch prefix:\n got: %s\nwant: %s", n, got, want)
				}
			})
		}
	}
}
