// Package protect is the overload-protection layer for the serving
// stack: request admission control (a concurrency-limited, queue-
// bounded gate per endpoint class that sheds excess load instead of
// accepting unbounded work) and an epoch-keyed response cache with a
// stale-while-revalidate mode (internal/serve threads both through the
// rdfserved request path).
//
// The design target is graceful degradation: under a write burst or a
// refine storm the server's memory and goroutine count stay bounded —
// at most Limit in-flight plus Queue waiting requests per class — and
// everything beyond that is rejected immediately with a retry hint,
// never accepted and then half-served. Shedding is loadable work the
// client retries; falling over is not.
package protect

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ErrShed is returned by Acquire when the gate's wait queue is full —
// the request should be rejected immediately with a retry hint.
var ErrShed = errors.New("admission queue full")

// ErrWaitExpired is returned by Acquire when the request waited in the
// queue until its context (or the gate's MaxWait) expired without a
// slot freeing up.
var ErrWaitExpired = errors.New("admission wait expired")

// GateConfig sizes one admission gate.
type GateConfig struct {
	// Limit is the maximum number of concurrently admitted requests.
	// Zero or negative disables the gate (everything is admitted).
	Limit int
	// Queue is the maximum number of requests allowed to wait for a
	// slot; a request arriving with Limit in flight and Queue waiting
	// is shed immediately (ErrShed). Zero means no waiting: the gate
	// sheds as soon as Limit is reached.
	Queue int
	// MaxWait bounds the time a queued request waits for a slot before
	// being shed (ErrWaitExpired); it composes with the request's own
	// context deadline (whichever expires first). Zero means the
	// request waits as long as its context allows.
	MaxWait time.Duration
}

// gateMetrics is one gate's slice of the rdf_admission_* families; nil
// when the limiter is not registered.
type gateMetrics struct {
	inFlight *metrics.Gauge
	waiting  *metrics.Gauge
	admitted *metrics.Counter
	shedFull *metrics.Counter
	shedWait *metrics.Counter
	waitSec  *metrics.Histogram
}

// Gate is one concurrency-limited, queue-bounded admission gate. The
// zero value is not usable; construct with NewGate. All methods are
// safe for concurrent use.
type Gate struct {
	cfg GateConfig
	// sem holds one token per admitted request; capacity is the
	// concurrency limit. nil when the gate is disabled.
	sem     chan struct{}
	waiting atomic.Int64
	met     *gateMetrics
}

// NewGate returns a gate for cfg. A non-positive Limit yields a
// disabled gate whose Acquire always admits.
func NewGate(cfg GateConfig) *Gate {
	g := &Gate{cfg: cfg}
	if cfg.Limit > 0 {
		g.sem = make(chan struct{}, cfg.Limit)
	}
	return g
}

// Acquire admits the request or sheds it. On admission it returns a
// release function that MUST be called exactly once when the request
// finishes. On shed it returns ErrShed (queue full — reject now) or
// ErrWaitExpired (queued, but the context or MaxWait expired first);
// both mean "reply 429 with a retry hint".
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g.sem == nil {
		return func() {}, nil
	}
	// Fast path: a free slot, no queuing.
	select {
	case g.sem <- struct{}{}:
		return g.admitted(), nil
	default:
	}
	if g.cfg.Queue <= 0 {
		g.shed(false)
		return nil, ErrShed
	}
	// Queue-bound check on the incremented value: at most Queue
	// requests hold a wait ticket at once (the transient overshoot
	// backs out immediately and is never admitted past the bound).
	if g.waiting.Add(1) > int64(g.cfg.Queue) {
		g.waiting.Add(-1)
		g.shed(false)
		return nil, ErrShed
	}
	if m := g.met; m != nil {
		m.waiting.Add(1)
	}
	defer func() {
		g.waiting.Add(-1)
		if m := g.met; m != nil {
			m.waiting.Add(-1)
		}
	}()
	if g.cfg.MaxWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.MaxWait)
		defer cancel()
	}
	start := time.Now()
	select {
	case g.sem <- struct{}{}:
		if m := g.met; m != nil {
			m.waitSec.Observe(time.Since(start).Seconds())
		}
		return g.admitted(), nil
	case <-ctx.Done():
		g.shed(true)
		return nil, fmt.Errorf("%w: %v", ErrWaitExpired, ctx.Err())
	}
}

// admitted records the admission and returns the release closure.
func (g *Gate) admitted() func() {
	if m := g.met; m != nil {
		m.admitted.Inc()
		m.inFlight.Add(1)
	}
	return func() {
		<-g.sem
		if m := g.met; m != nil {
			m.inFlight.Add(-1)
		}
	}
}

func (g *Gate) shed(wait bool) {
	if m := g.met; m == nil {
	} else if wait {
		m.shedWait.Inc()
	} else {
		m.shedFull.Inc()
	}
}

// InFlight returns the number of currently admitted requests (0 for a
// disabled gate).
func (g *Gate) InFlight() int { return len(g.sem) }

// Waiting returns the number of requests queued for a slot.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// Limit returns the configured concurrency limit (0 = disabled).
func (g *Gate) Limit() int {
	if g.sem == nil {
		return 0
	}
	return g.cfg.Limit
}

// Class is an endpoint admission class: requests are gated by what
// they cost, not by URL — cheap aggregate reads, mutating ingest
// batches and refinement searches contend for different resources.
type Class int

// Classes.
const (
	// ClassRead covers cheap aggregate reads (/sigma).
	ClassRead Class = iota
	// ClassWrite covers mutating ingest (/triples).
	ClassWrite
	// ClassRefine covers refinement searches (/refine).
	ClassRefine
	numClasses
)

var classNames = [numClasses]string{"read", "write", "refine"}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Limits sizes the three per-class gates of a Limiter.
type Limits struct {
	Read, Write, Refine GateConfig
}

// Limiter is the per-class admission front of a server: one Gate per
// endpoint class.
type Limiter struct {
	gates [numClasses]*Gate
}

// NewLimiter returns a limiter with one gate per class. A class with a
// non-positive Limit is unprotected.
func NewLimiter(l Limits) *Limiter {
	return &Limiter{gates: [numClasses]*Gate{
		ClassRead:   NewGate(l.Read),
		ClassWrite:  NewGate(l.Write),
		ClassRefine: NewGate(l.Refine),
	}}
}

// Gate returns the class's gate.
func (l *Limiter) Gate(c Class) *Gate { return l.gates[c] }

// Acquire admits or sheds a request of class c (see Gate.Acquire).
func (l *Limiter) Acquire(c Class, ctx context.Context) (func(), error) {
	return l.gates[c].Acquire(ctx)
}

// GateStats is one gate's operator-facing occupancy summary.
type GateStats struct {
	Limit    int `json:"limit"`
	Queue    int `json:"queue"`
	InFlight int `json:"inFlight"`
	Waiting  int `json:"waiting"`
}

// Stats returns per-class occupancy, keyed by class name — the
// /stats admission section.
func (l *Limiter) Stats() map[string]GateStats {
	out := make(map[string]GateStats, numClasses)
	for c, g := range l.gates {
		out[Class(c).String()] = GateStats{
			Limit: g.Limit(), Queue: g.cfg.Queue,
			InFlight: g.InFlight(), Waiting: g.Waiting(),
		}
	}
	return out
}

// Register registers the rdf_admission_* families into reg and wires
// every gate's instrumentation. Children for every class (and shed
// reason) are materialized immediately so the series appear in scrapes
// at 0 before any traffic. At most one Limiter per registry.
func (l *Limiter) Register(reg *metrics.Registry) {
	limit := reg.GaugeVec("rdf_admission_limit",
		"Configured admission concurrency limit, by endpoint class (0 = unlimited).", "class")
	inFlight := reg.GaugeVec("rdf_admission_in_flight",
		"Requests currently admitted past the gate, by endpoint class.", "class")
	waiting := reg.GaugeVec("rdf_admission_waiting",
		"Requests queued for an admission slot, by endpoint class.", "class")
	admitted := reg.CounterVec("rdf_admission_admitted_total",
		"Requests admitted past the gate, by endpoint class.", "class")
	shed := reg.CounterVec("rdf_admission_shed_total",
		"Requests shed by admission control, by endpoint class and reason (queue_full, wait_expired).", "class", "reason")
	waitSec := reg.HistogramVec("rdf_admission_wait_seconds",
		"Time queued requests waited for an admission slot, by endpoint class.", metrics.DefLatencyBuckets, "class")
	for c, g := range l.gates {
		name := Class(c).String()
		limit.With(name).Set(int64(g.Limit()))
		g.met = &gateMetrics{
			inFlight: inFlight.With(name),
			waiting:  waiting.With(name),
			admitted: admitted.With(name),
			shedFull: shed.With(name, "queue_full"),
			shedWait: shed.With(name, "wait_expired"),
			waitSec:  waitSec.With(name),
		}
	}
}
