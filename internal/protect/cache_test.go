package protect

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheEpochKeying: exact-epoch hit, any-other-epoch miss, and the
// stale path still sees the old entry.
func TestCacheEpochKeying(t *testing.T) {
	c := NewCache(8)
	if _, ok := c.Get("sigma?fn=cov", 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("sigma?fn=cov", 1, "body@1")

	v, ok := c.Get("sigma?fn=cov", 1)
	if !ok || v.(string) != "body@1" {
		t.Fatalf("same-epoch get = %v, %v", v, ok)
	}
	// Epoch advanced: the entry is a miss but remains for GetStale.
	if _, ok := c.Get("sigma?fn=cov", 2); ok {
		t.Fatal("hit for advanced epoch")
	}
	sv, sepoch, ok := c.GetStale("sigma?fn=cov")
	if !ok || sv.(string) != "body@1" || sepoch != 1 {
		t.Fatalf("stale get = %v, %d, %v", sv, sepoch, ok)
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Stale != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCachePutNewerWins: a Put at an older epoch never regresses an
// entry that a faster computation already refreshed.
func TestCachePutNewerWins(t *testing.T) {
	c := NewCache(8)
	c.Put("k", 5, "new")
	c.Put("k", 3, "old") // slow loser of the compute race
	v, ok := c.Get("k", 5)
	if !ok || v.(string) != "new" {
		t.Fatalf("get = %v, %v; older Put overwrote newer entry", v, ok)
	}
	c.Put("k", 7, "newer")
	if v, ok := c.Get("k", 7); !ok || v.(string) != "newer" {
		t.Fatalf("get = %v, %v", v, ok)
	}
}

// TestCacheLRUEviction: the entry count never exceeds the bound and the
// least recently used key is the one evicted.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1, "A")
	c.Put("b", 1, "B")
	c.Get("a", 1) // touch a so b is LRU
	c.Put("c", 1, "C")
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, _, ok := c.GetStale("b"); ok {
		t.Fatal("LRU entry b not evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Fatalf("entry %q evicted, want kept", k)
		}
	}
}

// TestCacheRefreshSingleFlight: only one refresh per key runs toward a
// given epoch; a newer-epoch claim may supersede after release.
func TestCacheRefreshSingleFlight(t *testing.T) {
	c := NewCache(8)
	if !c.BeginRefresh("k", 4) {
		t.Fatal("first claim refused")
	}
	if c.BeginRefresh("k", 4) {
		t.Fatal("duplicate claim admitted")
	}
	if c.BeginRefresh("k", 3) {
		t.Fatal("older-epoch claim admitted during newer refresh")
	}
	if c.BeginRefresh("k2", 4) != true {
		t.Fatal("other key blocked")
	}
	c.EndRefresh("k")
	if !c.BeginRefresh("k", 5) {
		t.Fatal("claim refused after release")
	}
	c.EndRefresh("k")
	c.EndRefresh("k2")
}

// TestCacheConcurrent exercises all paths from many goroutines; run
// with -race. Invariant checked: a Get hit at epoch e returns the value
// that was Put at epoch e for that key.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%20)
				epoch := uint64(i % 7)
				c.Put(key, epoch, fmt.Sprintf("%s@%d", key, epoch))
				if v, ok := c.Get(key, epoch); ok {
					want := fmt.Sprintf("%s@%d", key, epoch)
					got := v.(string)
					// A racing Put at the same epoch writes the same
					// value, so a hit must match exactly.
					if got != want {
						t.Errorf("get(%s,%d) = %q, want %q", key, epoch, got, want)
						return
					}
				}
				c.GetStale(key)
				if c.BeginRefresh(key, epoch) {
					c.EndRefresh(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len = %d exceeds bound", c.Len())
	}
}

// TestCacheRefreshLatchUnderEviction pins the latch lifecycle against
// LRU churn: the refresh latch is keyed independently of the entry
// table, so evicting a key's entry mid-refresh must neither release
// its latch nor leak it (the key would never refresh again). The
// single-flight guarantee is per (key, epoch) — a newer-epoch claim
// may overlap an older in-flight one, but no (key, epoch) pair is
// ever refreshed twice concurrently, even when a superseded holder
// releases early. Every latch must be claimable again once its
// holders drain. Run with -race.
func TestCacheRefreshLatchUnderEviction(t *testing.T) {
	const (
		keys    = 8
		workers = 8
		iters   = 400
	)
	c := NewCache(2) // far below the working set: constant eviction
	var holders [keys][iters]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % keys
				key := fmt.Sprintf("k%d", k)
				epoch := uint64(i)
				if c.BeginRefresh(key, epoch) {
					if n := holders[k][i].Add(1); n != 1 {
						t.Errorf("key %s epoch %d: %d concurrent refresh holders", key, i, n)
					}
					// The "refresh": churn other keys through the tiny LRU
					// so this key's entry (if any) is evicted while the
					// latch is held, then publish the result.
					for j := 0; j < keys; j++ {
						c.Put(fmt.Sprintf("k%d", (k+j)%keys), epoch, j)
					}
					c.Put(key, epoch, w)
					holders[k][i].Add(-1)
					c.EndRefresh(key)
				}
				c.Get(key, epoch)
				c.GetStale(key)
			}
		}(w)
	}
	wg.Wait()
	// Lifecycle must have fully drained: every latch is claimable at an
	// epoch above everything used, and releasable.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		if !c.BeginRefresh(key, uint64(iters+1)) {
			t.Fatalf("latch for %s leaked: claim refused after all refreshes ended", key)
		}
		c.EndRefresh(key)
	}
	if c.Len() > 2 {
		t.Fatalf("len = %d exceeds bound", c.Len())
	}
}
