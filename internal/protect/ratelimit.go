package protect

import (
	"container/list"
	"math"
	"sync"
	"time"

	"repro/internal/metrics"
)

// RateLimitConfig sizes a per-client rate limiter.
type RateLimitConfig struct {
	// RPS is the steady-state refill rate per client (tokens per
	// second). Zero or negative disables the limiter (everything is
	// allowed).
	RPS float64
	// Burst is the bucket capacity — how many requests a quiet client
	// may issue back to back. Defaults to max(RPS, 1).
	Burst float64
	// MaxClients bounds the bucket table: the least-recently-seen
	// client is evicted past it, so an open-world client population
	// (e.g. keying by remote IP) cannot grow memory without bound.
	// Default 4096.
	MaxClients int
	// Now is the clock (tests inject a fake one). Default time.Now.
	Now func() time.Time
}

// RateLimiter is a per-client token-bucket limiter: each client key
// (ID header or remote IP — the caller extracts it) owns a bucket
// refilled at RPS up to Burst, and a request finding the bucket empty
// is shed with a retry hint. The bucket table is LRU-bounded, so the
// limiter's memory is O(MaxClients) regardless of the client
// population. A freshly (re)admitted client starts with a full bucket:
// eviction under table pressure can only ever under-limit, never
// wrongly shed.
type RateLimiter struct {
	cfg RateLimitConfig

	mu      sync.Mutex
	buckets map[string]*list.Element
	lru     *list.List // front = most recently seen

	evictions uint64

	// metrics, nil until Register.
	allowed *metrics.Counter
	shed    *metrics.Counter
	evicted *metrics.Counter
}

// bucket is one client's token state, embedded in its LRU element.
type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter for cfg; nil when cfg.RPS is zero
// or negative (callers treat a nil limiter as "allow everything").
func NewRateLimiter(cfg RateLimitConfig) *RateLimiter {
	if cfg.RPS <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.RPS, 1)
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &RateLimiter{
		cfg:     cfg,
		buckets: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Allow spends one token from key's bucket. When the bucket is empty
// it reports false with the duration until one token refills — the
// Retry-After hint (rounded up to a whole second by the caller).
func (l *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	now := l.cfg.Now()
	l.mu.Lock()
	el, found := l.buckets[key]
	var b *bucket
	if found {
		b = el.Value.(*bucket)
		l.lru.MoveToFront(el)
		// Refill for the elapsed time, capped at Burst.
		b.tokens = math.Min(l.cfg.Burst, b.tokens+now.Sub(b.last).Seconds()*l.cfg.RPS)
		b.last = now
	} else {
		b = &bucket{key: key, tokens: l.cfg.Burst, last: now}
		l.buckets[key] = l.lru.PushFront(b)
		if l.lru.Len() > l.cfg.MaxClients {
			oldest := l.lru.Back()
			l.lru.Remove(oldest)
			delete(l.buckets, oldest.Value.(*bucket).key)
			l.evictions++
			if l.evicted != nil {
				l.evicted.Inc()
			}
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		l.mu.Unlock()
		if l.allowed != nil {
			l.allowed.Inc()
		}
		return true, 0
	}
	need := (1 - b.tokens) / l.cfg.RPS
	l.mu.Unlock()
	if l.shed != nil {
		l.shed.Inc()
	}
	return false, time.Duration(need * float64(time.Second))
}

// Register claims the rdf_ratelimit_* families on reg.
func (l *RateLimiter) Register(reg *metrics.Registry) {
	l.allowed = reg.Counter("rdf_ratelimit_allowed_total",
		"Requests admitted by the per-client rate limiter.")
	l.shed = reg.Counter("rdf_ratelimit_shed_total",
		"Requests shed by the per-client rate limiter (429).")
	l.evicted = reg.Counter("rdf_ratelimit_evictions_total",
		"Client buckets evicted from the LRU-bounded table.")
	reg.GaugeFunc("rdf_ratelimit_clients",
		"Client buckets currently tracked.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(len(l.buckets))
		})
}

// RateLimitStats is the /stats summary of the limiter.
type RateLimitStats struct {
	RPS       float64 `json:"rps"`
	Burst     float64 `json:"burst"`
	Clients   int     `json:"clients"`
	Evictions uint64  `json:"evictions"`
}

// Stats returns a point-in-time summary for /stats.
func (l *RateLimiter) Stats() RateLimitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return RateLimitStats{
		RPS:       l.cfg.RPS,
		Burst:     l.cfg.Burst,
		Clients:   len(l.buckets),
		Evictions: l.evictions,
	}
}
