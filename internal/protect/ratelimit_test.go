package protect

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic refill.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func limiterAt(c *fakeClock, cfg RateLimitConfig) *RateLimiter {
	cfg.Now = c.now
	return NewRateLimiter(cfg)
}

// TestRateLimitBurstAndRefill pins the token-bucket semantics: Burst
// back-to-back requests pass, the next is shed with a refill-time
// hint, and tokens return at RPS.
func TestRateLimitBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	l := limiterAt(clk, RateLimitConfig{RPS: 2, Burst: 3})
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c1"); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	ok, retry := l.Allow("c1")
	if ok {
		t.Fatal("over-burst request allowed")
	}
	// Empty bucket at RPS=2: one token refills in 500ms.
	if retry != 500*time.Millisecond {
		t.Fatalf("retry hint = %s, want 500ms", retry)
	}
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("c1"); !ok {
		t.Fatal("request after refill shed")
	}
	if ok, _ := l.Allow("c1"); ok {
		t.Fatal("second request after single-token refill allowed")
	}
	// A different client has its own bucket.
	if ok, _ := l.Allow("c2"); !ok {
		t.Fatal("independent client shed")
	}
	// Refill is capped at Burst even after a long idle.
	clk.advance(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("c1"); ok {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("allowed %d after long idle, want Burst=3", allowed)
	}
}

// TestRateLimitLRUBound checks the bucket table stays bounded and
// evicts the least-recently-seen client.
func TestRateLimitLRUBound(t *testing.T) {
	clk := newFakeClock()
	l := limiterAt(clk, RateLimitConfig{RPS: 1, Burst: 1, MaxClients: 3})
	for i := 0; i < 10; i++ {
		l.Allow(fmt.Sprintf("c%d", i))
	}
	st := l.Stats()
	if st.Clients != 3 {
		t.Fatalf("clients = %d, want 3", st.Clients)
	}
	if st.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", st.Evictions)
	}
	// c9 is still resident with an empty bucket; an evicted client
	// re-enters with a full one (eviction may under-limit, never
	// over-shed).
	if ok, _ := l.Allow("c9"); ok {
		t.Fatal("resident empty bucket allowed")
	}
	if ok, _ := l.Allow("c0"); !ok {
		t.Fatal("re-admitted client shed")
	}
}

// TestRateLimitDisabled checks a non-positive RPS yields a nil
// limiter (the caller's allow-everything sentinel).
func TestRateLimitDisabled(t *testing.T) {
	if NewRateLimiter(RateLimitConfig{}) != nil {
		t.Fatal("zero config returned a limiter")
	}
	if NewRateLimiter(RateLimitConfig{RPS: -1}) != nil {
		t.Fatal("negative RPS returned a limiter")
	}
}

// TestRateLimitConcurrent hammers one limiter from many goroutines
// (run with -race) and checks the token accounting stays exact.
func TestRateLimitConcurrent(t *testing.T) {
	clk := newFakeClock()
	l := limiterAt(clk, RateLimitConfig{RPS: 1, Burst: 100, MaxClients: 8})
	const workers = 8
	allowed := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			n := 0
			for i := 0; i < 50; i++ {
				if ok, _ := l.Allow(fmt.Sprintf("w%d", w%4)); ok {
					n++
				}
			}
			allowed <- n
		}(w)
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += <-allowed
	}
	// 4 distinct keys × Burst=100 tokens, 400 requests total at a
	// frozen clock: every key pair issues exactly its burst.
	if total != 400 {
		t.Fatalf("allowed %d, want 400", total)
	}
}
