package protect

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestGateLimitAndQueue: a gate with limit 2 / queue 1 admits two,
// queues one, and sheds the fourth immediately.
func TestGateLimitAndQueue(t *testing.T) {
	g := NewGate(GateConfig{Limit: 2, Queue: 1})
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("in-flight = %d, want 2", got)
	}

	// Third caller queues; give it time to enter the wait.
	queued := make(chan error, 1)
	go func() {
		r3, err := g.Acquire(context.Background())
		if err == nil {
			defer r3()
		}
		queued <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiting() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1", g.Waiting())
	}

	// Fourth caller finds the queue full and is shed without blocking.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("queue-full acquire: err = %v, want ErrShed", err)
	}

	// Releasing a slot admits the queued caller.
	r1()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	r2()
}

// TestGateWaitExpired: a queued request whose context deadline passes
// is shed with ErrWaitExpired.
func TestGateWaitExpired(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, Queue: 4})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, ErrWaitExpired) {
		t.Fatalf("err = %v, want ErrWaitExpired", err)
	}
}

// TestGateMaxWait: the gate's own MaxWait sheds a queued request even
// when the caller's context has no deadline.
func TestGateMaxWait(t *testing.T) {
	g := NewGate(GateConfig{Limit: 1, Queue: 4, MaxWait: 20 * time.Millisecond})
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrWaitExpired) {
		t.Fatalf("err = %v, want ErrWaitExpired", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("MaxWait shed took %s", elapsed)
	}
}

// TestGateDisabled: limit <= 0 admits everything.
func TestGateDisabled(t *testing.T) {
	g := NewGate(GateConfig{Limit: 0})
	for i := 0; i < 100; i++ {
		release, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer release()
	}
	if g.Limit() != 0 || g.InFlight() != 0 {
		t.Fatalf("disabled gate reports limit=%d inFlight=%d", g.Limit(), g.InFlight())
	}
}

// TestGateConcurrencyBound: under a storm of goroutines the number
// concurrently inside the critical section never exceeds the limit,
// and admitted + shed accounts for every attempt.
func TestGateConcurrencyBound(t *testing.T) {
	const limit, queue, attempts = 4, 8, 400
	g := NewGate(GateConfig{Limit: limit, Queue: queue})
	var inside, peak, admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			if err != nil {
				shed.Add(1)
				return
			}
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			inside.Add(-1)
			admitted.Add(1)
			release()
		}()
	}
	wg.Wait()
	if peak.Load() > limit {
		t.Fatalf("concurrency peaked at %d, limit %d", peak.Load(), limit)
	}
	if got := admitted.Load() + shed.Load(); got != attempts {
		t.Fatalf("admitted %d + shed %d != %d attempts", admitted.Load(), shed.Load(), attempts)
	}
	if g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inFlight=%d waiting=%d", g.InFlight(), g.Waiting())
	}
}

// TestLimiterRegister: registration materializes every class series at
// zero and the tallies move with traffic.
func TestLimiterRegister(t *testing.T) {
	reg := metrics.NewRegistry()
	l := NewLimiter(Limits{
		Read:   GateConfig{Limit: 2, Queue: 2},
		Write:  GateConfig{Limit: 1, Queue: 1},
		Refine: GateConfig{Limit: 1},
	})
	l.Register(reg)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rdf_admission_limit{class="read"} 2`,
		`rdf_admission_limit{class="write"} 1`,
		`rdf_admission_limit{class="refine"} 1`,
		`rdf_admission_in_flight{class="read"} 0`,
		`rdf_admission_admitted_total{class="read"} 0`,
		`rdf_admission_shed_total{class="read",reason="queue_full"} 0`,
		`rdf_admission_shed_total{class="read",reason="wait_expired"} 0`,
		`rdf_admission_wait_seconds_count{class="refine"} 0`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("scrape missing %q:\n%s", want, b.String())
		}
	}

	release, err := l.Acquire(ClassWrite, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Saturate write (limit 1, queue 1): one queued + one shed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ClassWrite, ctx); !errors.Is(err, ErrWaitExpired) {
		t.Fatalf("err = %v, want ErrWaitExpired", err)
	}
	release()

	st := l.Stats()
	if st["write"].Limit != 1 || st["write"].InFlight != 0 {
		t.Fatalf("stats: %+v", st["write"])
	}
	b.Reset()
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rdf_admission_admitted_total{class="write"} 1`,
		`rdf_admission_shed_total{class="write",reason="wait_expired"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("scrape missing %q:\n%s", want, b.String())
		}
	}
}
