package protect

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a bounded LRU response cache keyed by (query key, epoch).
// The engine's composite epoch advances with every effective mutation,
// so an entry tagged with the epoch it was computed at is invalidated
// for free the moment the dataset changes — Get only returns an entry
// whose epoch equals the reader's current epoch, no TTLs and no
// explicit invalidation anywhere in the write path.
//
// Entries additionally support the stale-while-revalidate protocol:
// GetStale returns the entry regardless of epoch (the caller serves it
// flagged stale while a background recompute runs) and
// BeginRefresh/EndRefresh is the per-key single-flight latch bounding
// those recomputes to one per key.
//
// Values are opaque (any); the serving layer stores rendered response
// bodies. All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	lru   *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
	// refreshing maps keys to their in-flight background refresh
	// claims (the single-flight latch).
	refreshing map[string]*refreshClaim

	hits, misses, stale atomic.Int64
	// met mirrors the internal tallies into registry counters when the
	// serving layer wires them (SetMetrics); nil fields are skipped.
	met cacheMetrics
}

// cacheMetrics is the optional registry-side mirror of the tallies.
type cacheMetrics struct {
	Hits, Misses, Stale interface{ Inc() }
}

type cacheEntry struct {
	key   string
	epoch uint64
	val   any
}

// refreshClaim tracks a key's in-flight refreshes: how many holders
// are active and the newest epoch claimed. A newer-epoch claim may
// supersede (overlap) an older in-flight one, but the latch is only
// released when the last active holder ends — so a superseded
// refresh finishing early can never free the latch out from under
// the newer holder and admit a duplicate.
type refreshClaim struct {
	active int
	max    uint64
}

// NewCache returns a cache bounded to max entries (min 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:        max,
		lru:        list.New(),
		byKey:      make(map[string]*list.Element),
		refreshing: make(map[string]*refreshClaim),
	}
}

// SetMetrics wires registry counters that mirror the hit/miss/stale
// tallies (any of them may be nil).
func (c *Cache) SetMetrics(hits, misses, stale interface{ Inc() }) {
	c.met = cacheMetrics{Hits: hits, Misses: misses, Stale: stale}
}

// Get returns the value cached under key if it was computed at exactly
// the given epoch. An entry at any other epoch is a miss — it is left
// in place for GetStale, not evicted, since the stale-while-revalidate
// path may still serve it.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	c.mu.Lock()
	e, ok := c.byKey[key]
	if ok {
		ent := e.Value.(*cacheEntry)
		if ent.epoch == epoch {
			// Copy before unlocking: a racing Put updates the entry in
			// place under the lock.
			val := ent.val
			c.lru.MoveToFront(e)
			c.mu.Unlock()
			c.hits.Add(1)
			if c.met.Hits != nil {
				c.met.Hits.Inc()
			}
			return val, true
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	if c.met.Misses != nil {
		c.met.Misses.Inc()
	}
	return nil, false
}

// GetStale returns whatever is cached under key regardless of epoch,
// with the epoch it was computed at — the stale-while-revalidate read.
// It counts a stale serve; call it only when actually about to serve
// the result.
func (c *Cache) GetStale(key string) (val any, epoch uint64, ok bool) {
	c.mu.Lock()
	e, found := c.byKey[key]
	if !found {
		c.mu.Unlock()
		return nil, 0, false
	}
	ent := e.Value.(*cacheEntry)
	val, entEpoch := ent.val, ent.epoch // copy before unlocking (Put mutates in place)
	c.lru.MoveToFront(e)
	c.mu.Unlock()
	c.stale.Add(1)
	if c.met.Stale != nil {
		c.met.Stale.Inc()
	}
	return val, entEpoch, true
}

// Put stores val under (key, epoch), replacing an older-epoch entry
// and evicting the least recently used entry past the bound. A stored
// entry at a newer epoch wins: a slow computation racing a fresh one
// never regresses the cache.
func (c *Cache) Put(key string, epoch uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[key]; ok {
		ent := e.Value.(*cacheEntry)
		if epoch < ent.epoch {
			return
		}
		ent.epoch, ent.val = epoch, val
		c.lru.MoveToFront(e)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, epoch: epoch, val: val})
	for c.lru.Len() > c.max {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// BeginRefresh claims the single-flight refresh latch for key toward
// epoch. It returns true when the caller should run the refresh (no
// refresh toward this epoch or newer is in flight); the caller must
// then call EndRefresh when done, success or not. Concurrent holders
// for one key always have strictly increasing epochs: at most one
// refresh per (key, epoch) is ever admitted while any holder lives.
func (c *Cache) BeginRefresh(key string, epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.refreshing[key]
	if !ok {
		c.refreshing[key] = &refreshClaim{active: 1, max: epoch}
		return true
	}
	if epoch <= cl.max {
		return false
	}
	cl.active++
	cl.max = epoch
	return true
}

// EndRefresh releases one holder's claim on key's refresh latch; the
// latch clears when the last active holder releases.
func (c *Cache) EndRefresh(key string) {
	c.mu.Lock()
	if cl, ok := c.refreshing[key]; ok {
		cl.active--
		if cl.active <= 0 {
			delete(c.refreshing, key)
		}
	}
	c.mu.Unlock()
}

// CacheStats is the operator-facing cache summary (the /stats cache
// section).
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Stale   int64 `json:"staleServed"`
}

// Stats returns the current tallies.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Entries: n,
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Stale:   c.stale.Load(),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
