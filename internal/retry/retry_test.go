package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCeilingSchedule pins the jitter-free backoff schedule: capped
// doubling from Base, clamped at Max.
func TestCeilingSchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		0,                     // attempt 0 runs immediately
		10 * time.Millisecond, // 1st retry: Base
		20 * time.Millisecond, // 2nd: Base·2
		40 * time.Millisecond, // 3rd: Base·4
		80 * time.Millisecond, // 4th: Base·8 = Max
		80 * time.Millisecond, // 5th: clamped
		80 * time.Millisecond, // 6th: clamped
	}
	for n, w := range want {
		if got := p.Ceiling(n); got != w {
			t.Errorf("Ceiling(%d) = %s, want %s", n, got, w)
		}
	}
}

// TestDelayFullJitter pins the jittered draw: Delay(n) = rand() ×
// Ceiling(n), never above the ceiling, and zero at rand() = 0.
func TestDelayFullJitter(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Rand: func() float64 { return 0.5 }}
	cases := []struct {
		n    int
		want time.Duration
	}{
		{1, 50 * time.Millisecond},
		{2, 100 * time.Millisecond},
		{3, 200 * time.Millisecond},
		{5, 500 * time.Millisecond}, // ceiling clamped at Max=1s
		{9, 500 * time.Millisecond},
	}
	for _, c := range cases {
		if got := p.Delay(c.n); got != c.want {
			t.Errorf("Delay(%d) = %s, want %s", c.n, got, c.want)
		}
	}
	p.Rand = func() float64 { return 0 }
	if got := p.Delay(3); got != 0 {
		t.Errorf("Delay with zero jitter = %s, want 0", got)
	}
}

func TestDefaults(t *testing.T) {
	var p Policy
	if p.attempts() != 4 {
		t.Errorf("default attempts = %d, want 4", p.attempts())
	}
	if p.Ceiling(1) != 50*time.Millisecond {
		t.Errorf("default first ceiling = %s, want 50ms", p.Ceiling(1))
	}
	if p.Ceiling(100) != 2*time.Second {
		t.Errorf("default max ceiling = %s, want 2s", p.Ceiling(100))
	}
}

// TestDoRetriesUntilSuccess verifies Do stops at the first nil and
// reports the attempt count through the closure.
func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{Attempts: 5, Base: time.Microsecond, Max: time.Microsecond, Rand: func() float64 { return 1 }}
	calls := 0
	err := Do(context.Background(), p, func(n int) error {
		if n != calls {
			t.Errorf("attempt number %d, want %d", n, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// TestDoExhaustsBudget verifies the last error surfaces after the
// attempt budget is spent.
func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{Attempts: 3, Base: time.Microsecond, Rand: func() float64 { return 0 }}
	calls := 0
	sentinel := errors.New("still down")
	err := Do(context.Background(), p, func(int) error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

// TestDoPermanentStopsImmediately verifies a Permanent-wrapped error
// short-circuits the loop and unwraps.
func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{Attempts: 10, Base: time.Microsecond}
	calls := 0
	sentinel := errors.New("bad request")
	err := Do(context.Background(), p, func(int) error { calls++; return Permanent(sentinel) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, sentinel) || IsPermanent(err) {
		t.Fatalf("err = %v, want unwrapped %v", err, sentinel)
	}
	if !IsPermanent(Permanent(sentinel)) {
		t.Fatal("IsPermanent(Permanent(err)) = false")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

// TestDoContextCancel verifies cancellation aborts the backoff sleep
// and joins the context error with the last failure.
func TestDoContextCancel(t *testing.T) {
	p := Policy{Attempts: 100, Base: time.Hour, Max: time.Hour, Rand: func() float64 { return 1 }}
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("transient")
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		done <- Do(ctx, p, func(n int) error {
			if n == 0 {
				close(started)
			}
			return sentinel
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want joined %v", err, sentinel)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not abort on cancellation")
	}
}

func TestSleep(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0): %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on canceled ctx = %v, want Canceled", err)
	}
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep(1h) on canceled ctx = %v, want Canceled", err)
	}
}
