// Package retry is the shared retry/backoff policy used by every
// client-side path that talks to a possibly-overloaded or
// possibly-crashed peer: the cluster coordinator's worker client and
// rdfload's 429/503 handling. One implementation keeps the fleet's
// retry behavior uniform — capped exponential growth with full jitter,
// so synchronized clients desynchronize instead of stampeding a
// recovering server in lockstep.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy describes a capped-exponential-backoff retry schedule with
// full jitter: the delay before attempt n (0-based; attempt 0 runs
// immediately) is uniformly drawn from [0, min(Max, Base·2ⁿ⁻¹)].
// The zero value is usable and picks the defaults.
type Policy struct {
	// Attempts is the total number of tries, first included
	// (default 4; 1 means no retries).
	Attempts int
	// Base is the cap on the delay before the first retry
	// (default 50ms).
	Base time.Duration
	// Max caps every delay (default 2s).
	Max time.Duration
	// Rand is the jitter source returning values in [0, 1); nil uses a
	// locked process-global source. Tests inject a deterministic one to
	// pin the schedule.
	Rand func() float64
}

func (p Policy) attempts() int {
	if p.Attempts <= 0 {
		return 4
	}
	return p.Attempts
}

func (p Policy) base() time.Duration {
	if p.Base <= 0 {
		return 50 * time.Millisecond
	}
	return p.Base
}

func (p Policy) max() time.Duration {
	if p.Max <= 0 {
		return 2 * time.Second
	}
	return p.Max
}

// globalRand guards the process-wide jitter source: rand.Float64 is
// already locked, but an explicit source keeps the policy independent
// of global seeding.
var (
	globalMu   sync.Mutex
	globalRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func (p Policy) random() float64 {
	if p.Rand != nil {
		return p.Rand()
	}
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalRand.Float64()
}

// Delay returns the backoff before attempt n (n ≥ 1; attempt 0 has no
// delay): full jitter over the capped exponential ceiling
// min(Max, Base·2ⁿ⁻¹).
func (p Policy) Delay(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	ceil := p.base()
	maxD := p.max()
	for i := 1; i < n && ceil < maxD; i++ {
		ceil *= 2
	}
	if ceil > maxD {
		ceil = maxD
	}
	return time.Duration(p.random() * float64(ceil))
}

// Ceiling returns the jitter-free upper bound on the delay before
// attempt n — what Delay draws under. Exposed so tests and operators
// can reason about the worst-case schedule.
func (p Policy) Ceiling(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	ceil := p.base()
	maxD := p.max()
	for i := 1; i < n && ceil < maxD; i++ {
		ceil *= 2
	}
	if ceil > maxD {
		ceil = maxD
	}
	return ceil
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns the
// underlying error — for failures where retrying cannot help (a 400, a
// parse error, an explicit shutdown).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs op up to p.Attempts times, sleeping the jittered backoff
// between tries and aborting as soon as ctx is done (returning
// ctx.Err() joined with the last op error, so callers see both why it
// stopped and what kept failing). op receives the 0-based attempt
// number. A nil return stops immediately; a Permanent-wrapped error
// stops immediately with the unwrapped error; any other error is
// retried until the budget is spent, then returned.
func Do(ctx context.Context, p Policy, op func(attempt int) error) error {
	var last error
	for n := 0; n < p.attempts(); n++ {
		if n > 0 {
			if err := Sleep(ctx, p.Delay(n)); err != nil {
				return errors.Join(err, last)
			}
		}
		err := op(n)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		last = err
		if ctx.Err() != nil {
			return errors.Join(ctx.Err(), last)
		}
	}
	return last
}

// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
// latter case. A non-positive d returns immediately (after a ctx
// check), so callers never miss a cancellation.
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
