package datagen

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rdf"
)

// WordNet Nouns property names (Section 7.2 of the paper).
const (
	PropGloss             = "gloss"
	PropLabel             = "label"
	PropSynsetID          = "synsetId"
	PropHyponymOf         = "hyponymOf"
	PropClassifiedByTopic = "classifiedByTopic"
	PropContainsWordSense = "containsWordSense"
	PropMemberMeronymOf   = "memberMeronymOf"
	PropPartMeronymOf     = "partMeronymOf"
	PropSubstanceMeronym  = "substanceMeronymOf"
	PropClassifiedByUsage = "classifiedByUsage"
	PropClassifiedByRegin = "classifiedByRegion"
	PropAttribute         = "attribute"
)

// WordNetNounsSortURI is the sort URI used for generated noun synsets.
const WordNetNounsSortURI = "http://www.w3.org/2006/03/wn/wn20/schema/NounSynset"

// WordNetNounsFullSize is the paper's subject count for the sort.
const WordNetNounsFullSize = 79689

// wordnetProps is the column order, matching Figure 3.
var wordnetProps = []string{
	PropGloss, PropLabel, PropSynsetID, PropHyponymOf,
	PropClassifiedByTopic, PropContainsWordSense, PropMemberMeronymOf,
	PropPartMeronymOf, PropSubstanceMeronym, PropClassifiedByUsage,
	PropClassifiedByRegin, PropAttribute,
}

// wordnetSignatureCount is the paper's signature-set count.
const wordnetSignatureCount = 53

// Calibration (checked by tests): gloss, label and synsetId are
// universal; hyponymOf and containsWordSense nearly so; the remaining
// seven properties are rare, sized so that σCov ≈ 0.44 (ΣN_p =
// 0.44·12·N) and σSim ≈ 0.93 — the paper's values, with the visual
// shape of Figure 3 (5 dominant columns, long sparse tail).
var wordnetPresence = map[string]float64{
	PropGloss:             1.0,
	PropLabel:             1.0,
	PropSynsetID:          1.0,
	PropHyponymOf:         0.94,
	PropContainsWordSense: 0.98,
	PropClassifiedByTopic: 0.17,
	PropMemberMeronymOf:   0.10,
	PropPartMeronymOf:     0.045,
	PropSubstanceMeronym:  0.02,
	PropClassifiedByUsage: 0.01,
	PropClassifiedByRegin: 0.008,
	PropAttribute:         0.007,
}

// WordNetNouns generates the WordNet Nouns view at the given scale
// (1.0 = 79,689 subjects). The generator enumerates property
// combinations under the calibrated independence model, keeps the 53
// most probable (the paper's signature count), and apportions subjects
// deterministically. Scale must be in (0, 1].
func WordNetNouns(scale float64) *matrix.View {
	if scale <= 0 || scale > 1 {
		panic("datagen: scale must be in (0,1]")
	}
	total := int(float64(WordNetNounsFullSize) * scale)

	// Variable columns: those with presence strictly between 0 and 1.
	var varying []int
	for i, p := range wordnetProps {
		pr := wordnetPresence[p]
		if pr > 0 && pr < 1 {
			varying = append(varying, i)
		}
	}
	type cell struct {
		bits bitset.Set
		prob float64
	}
	var cells []cell
	for mask := 0; mask < 1<<len(varying); mask++ {
		b := bitset.New(len(wordnetProps))
		prob := 1.0
		for i, p := range wordnetProps {
			if pr := wordnetPresence[p]; pr >= 1 {
				b.Set(i)
			} else if pr > 0 {
				// Find this column's position among varying ones.
				vi := sort.SearchInts(varying, i)
				if mask&(1<<vi) != 0 {
					b.Set(i)
					prob *= pr
				} else {
					prob *= 1 - pr
				}
			}
		}
		cells = append(cells, cell{bits: b, prob: prob})
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].prob > cells[b].prob })
	if len(cells) > wordnetSignatureCount {
		cells = cells[:wordnetSignatureCount]
	}
	weights := make([]float64, len(cells))
	for i, c := range cells {
		weights[i] = c.prob
	}
	counts := apportion(weights, total, true)
	sigs := make([]matrix.Signature, 0, len(cells))
	for i, c := range cells {
		if counts[i] > 0 {
			sigs = append(sigs, matrix.Signature{Bits: c.bits, Count: counts[i]})
		}
	}
	v, err := matrix.New(wordnetProps, sigs)
	if err != nil {
		panic(err)
	}
	return v
}

// WordNetNounsGraph materializes the generated view as an RDF graph.
func WordNetNounsGraph(scale float64) *rdf.Graph {
	return GraphFromView(WordNetNouns(scale), WordNetNounsSortURI, "http://www.w3.org/2006/03/wn/noun")
}
