package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/matrix"
)

// YagoSort is one synthetic explicit sort from the YAGO-like sample
// used by the scalability study (Section 7.3).
type YagoSort struct {
	Name string
	View *matrix.View
}

// YagoSampleOptions shapes the sampled population. Defaults mirror the
// paper's sample: sizes 10²–10⁵ subjects, 1–350 signatures with a
// heavy lower tail (99.9% of YAGO sorts have < 350), 10–40 properties.
type YagoSampleOptions struct {
	NumSorts      int
	MinSubjects   int
	MaxSubjects   int
	MaxSignatures int
	MinProperties int
	MaxProperties int
}

func (o *YagoSampleOptions) defaults() {
	if o.NumSorts == 0 {
		o.NumSorts = 500
	}
	if o.MinSubjects == 0 {
		o.MinSubjects = 100
	}
	if o.MaxSubjects == 0 {
		o.MaxSubjects = 100000
	}
	if o.MaxSignatures == 0 {
		o.MaxSignatures = 350
	}
	if o.MinProperties == 0 {
		o.MinProperties = 10
	}
	if o.MaxProperties == 0 {
		o.MaxProperties = 40
	}
}

// YagoSample deterministically generates a population of synthetic
// explicit sorts. Signature counts follow a log-uniform distribution
// (heavy low tail as in Figure 8's histograms); subject counts are
// log-uniform over [MinSubjects, MaxSubjects]; property counts are
// uniform with a mild skew toward the low end.
func YagoSample(seed int64, opts YagoSampleOptions) []YagoSort {
	opts.defaults()
	rng := rand.New(rand.NewSource(seed))
	out := make([]YagoSort, 0, opts.NumSorts)
	for i := 0; i < opts.NumSorts; i++ {
		nProps := opts.MinProperties +
			int(float64(opts.MaxProperties-opts.MinProperties)*math.Pow(rng.Float64(), 1.5))
		logMin, logMax := math.Log(float64(opts.MinSubjects)), math.Log(float64(opts.MaxSubjects))
		nSubj := int(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		maxSigs := opts.MaxSignatures
		if maxSigs > nSubj {
			maxSigs = nSubj
		}
		nSigs := 1 + int(math.Exp(rng.Float64()*math.Log(float64(maxSigs))))
		if nSigs > maxSigs {
			nSigs = maxSigs
		}
		v := randomSortView(rng, nProps, nSigs, nSubj)
		out = append(out, YagoSort{Name: fmt.Sprintf("yago/sort%03d", i), View: v})
	}
	return out
}

// randomSortView builds a view with exactly nSigs distinct signatures
// over nProps properties and nSubj subjects distributed Zipf-style
// (a few dominant signatures, a long tail — the shape of real sorts).
func randomSortView(rng *rand.Rand, nProps, nSigs, nSubj int) *matrix.View {
	props := make([]string, nProps)
	for i := range props {
		props[i] = fmt.Sprintf("p%02d", i)
	}
	// Per-property presence probability: a core of common properties and
	// a tail of rare ones.
	presence := make([]float64, nProps)
	for i := range presence {
		if i < nProps/3 {
			presence[i] = 0.7 + 0.3*rng.Float64()
		} else {
			presence[i] = 0.05 + 0.3*rng.Float64()
		}
	}
	seen := map[string]bool{}
	sigs := make([]matrix.Signature, 0, nSigs)
	weights := make([]float64, 0, nSigs)
	misses := 0
	for len(sigs) < nSigs {
		b := bitset.New(nProps)
		for i, p := range presence {
			if rng.Float64() < p {
				b.Set(i)
			}
		}
		if b.Count() == 0 {
			b.Set(rng.Intn(nProps))
		}
		// After repeated collisions (dense regions of the sampling
		// distribution), force novelty by flipping random bits.
		for seen[b.Key()] && misses > 20 {
			b2 := b.Clone()
			i := rng.Intn(nProps)
			if b2.Test(i) {
				b2.Clear(i)
			} else {
				b2.Set(i)
			}
			b = b2
		}
		k := b.Key()
		if seen[k] {
			misses++
			continue
		}
		misses = 0
		seen[k] = true
		sigs = append(sigs, matrix.Signature{Bits: b, Count: 1})
		// Zipf weight for rank r (1-based).
		weights = append(weights, 1/math.Pow(float64(len(sigs)), 1.1))
	}
	counts := apportion(weights, nSubj, true)
	for i := range sigs {
		sigs[i].Count = counts[i]
		if sigs[i].Count == 0 {
			sigs[i].Count = 1
		}
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		panic(err)
	}
	return v
}
