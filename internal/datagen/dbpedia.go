package datagen

import (
	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rdf"
)

// DBpedia Persons property names (Section 7.1 of the paper, in the
// paper's abbreviated form).
const (
	PropDeathPlace  = "deathPlace"
	PropBirthPlace  = "birthPlace"
	PropDescription = "description"
	PropName        = "name"
	PropDeathDate   = "deathDate"
	PropBirthDate   = "birthDate"
	PropGivenName   = "givenName"
	PropSurName     = "surName"
)

// DBpediaPersonsSortURI is the sort URI used for generated persons.
const DBpediaPersonsSortURI = "http://xmlns.com/foaf/0.1/Person"

// DBpediaPersonsFullSize is the paper's subject count for the sort.
const DBpediaPersonsFullSize = 790703

// dbpediaPersonsProps is the column order used by the generator,
// matching the paper's Figure 2 ordering.
var dbpediaPersonsProps = []string{
	PropDeathPlace, PropBirthPlace, PropDescription, PropName,
	PropDeathDate, PropBirthDate, PropGivenName, PropSurName,
}

// The calibration below reproduces every statistic the paper states
// about DBpedia Persons at full scale (N = 790,703):
//
//   - name is universal; givenName and surName co-occur perfectly
//     (σSymDep[givenName,surName] = 1.0, Table 2) and are missing for
//     ~40,000 subjects;
//   - birthDate 420,242, birthPlace 323,368, both 241,156 (§1);
//   - deathDate 173,507, deathPlace 90,246 (§1), with
//     σSymDep[deathPlace,deathDate] ≈ 0.39 (§7.1) giving ≈74,300 with
//     both;
//   - description is sized so σCov = 0.54 (§7.1): ΣN_p = 0.54·8·N
//     ⇒ description ≈ 116,365;
//   - Table 1 row 1: σDep[dP,bP] = 0.93 and σDep[dP,bD] = 0.77
//     condition the birth distribution of subjects with a deathPlace;
//     σDep[dD,·] similarly conditions deathDate-only subjects.
//
// Four death categories × four birth categories × givenName/surName
// pair × description = exactly 64 signatures (the paper's count).
type dbpediaCell struct {
	death int // 0 none, 1 dP only, 2 dD only, 3 both
	birth int // 0 none, 1 bP only, 2 bD only, 3 both
	gs    bool
	desc  bool
}

// dbpediaCellWeights returns the 64 cells and their probabilities.
func dbpediaCellWeights() ([]dbpediaCell, []float64) {
	const n = float64(DBpediaPersonsFullSize)
	// Death category marginals.
	deathP := [4]float64{601250 / n, 15946 / n, 99207 / n, 74300 / n}
	// Birth category conditioned on death group (derived in DESIGN.md §2
	// from Table 1): [death group][birth cat] with groups
	// 0 = no death info, 1 = has deathPlace (cat 1 or 3), 2 = deathDate only.
	birthGiven := [3][4]float64{
		{0.4678, 0.0956, 0.2164, 0.2202}, // no death
		{0.0161, 0.2139, 0.0539, 0.7161}, // has deathPlace: 1453,19304,4864,64625 / 90246
		{0.0550, 0.0550, 0.4450, 0.4450}, // deathDate only: 5456,5457,44147,44147 / 99207
	}
	const pGS = 750703.0 / 790703.0
	const pDesc = 116365.0 / 790703.0

	var cells []dbpediaCell
	var weights []float64
	for d := 0; d < 4; d++ {
		group := 0
		switch d {
		case 1, 3:
			group = 1
		case 2:
			group = 2
		}
		for b := 0; b < 4; b++ {
			for _, gs := range []bool{true, false} {
				for _, desc := range []bool{true, false} {
					p := deathP[d] * birthGiven[group][b]
					if gs {
						p *= pGS
					} else {
						p *= 1 - pGS
					}
					if desc {
						p *= pDesc
					} else {
						p *= 1 - pDesc
					}
					cells = append(cells, dbpediaCell{death: d, birth: b, gs: gs, desc: desc})
					weights = append(weights, p)
				}
			}
		}
	}
	return cells, weights
}

func (c dbpediaCell) bits() bitset.Set {
	b := bitset.New(len(dbpediaPersonsProps))
	set := func(name string) {
		for i, p := range dbpediaPersonsProps {
			if p == name {
				b.Set(i)
				return
			}
		}
	}
	set(PropName)
	if c.gs {
		set(PropGivenName)
		set(PropSurName)
	}
	if c.desc {
		set(PropDescription)
	}
	switch c.birth {
	case 1:
		set(PropBirthPlace)
	case 2:
		set(PropBirthDate)
	case 3:
		set(PropBirthPlace)
		set(PropBirthDate)
	}
	switch c.death {
	case 1:
		set(PropDeathPlace)
	case 2:
		set(PropDeathDate)
	case 3:
		set(PropDeathPlace)
		set(PropDeathDate)
	}
	return b
}

// DBpediaPersons generates the DBpedia Persons property-structure view
// at the given scale (1.0 = the paper's 790,703 subjects). Cell counts
// are apportioned deterministically (largest remainder, each cell ≥ 1)
// so every scale preserves the 64 signatures and closely tracks the
// paper's marginals. Scale must be in (0, 1].
func DBpediaPersons(scale float64) *matrix.View {
	if scale <= 0 || scale > 1 {
		panic("datagen: scale must be in (0,1]")
	}
	total := int(float64(DBpediaPersonsFullSize) * scale)
	cells, weights := dbpediaCellWeights()
	counts := apportion(weights, total, true)
	sigs := make([]matrix.Signature, 0, len(cells))
	for i, c := range cells {
		if counts[i] == 0 {
			continue
		}
		sigs = append(sigs, matrix.Signature{Bits: c.bits(), Count: counts[i]})
	}
	v, err := matrix.New(dbpediaPersonsProps, sigs)
	if err != nil {
		panic(err)
	}
	return v
}

// DBpediaPersonsGraph materializes the generated view as an RDF graph
// with rdf:type triples (usable by the N-Triples round-trip tools).
func DBpediaPersonsGraph(scale float64) *rdf.Graph {
	return GraphFromView(DBpediaPersons(scale), DBpediaPersonsSortURI, "http://dbpedia.org/resource/person")
}
