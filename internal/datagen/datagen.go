// Package datagen synthesizes the paper's evaluation datasets. The real
// corpora (DBpedia dump, WordNet RDF, YAGO) are not available offline,
// so each generator is calibrated against every statistic the paper
// publishes about its dataset; the calibrations are enforced by tests.
// See DESIGN.md §2 for the substitution argument.
package datagen

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/term"
)

// apportion distributes total units over weights using the largest
// remainder method. When minOne is set every positive-weight cell gets
// at least one unit (used to preserve the signature count of a dataset
// at reduced scale).
func apportion(weights []float64, total int, minOne bool) []int {
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			panic("datagen: negative weight")
		}
		wsum += w
	}
	out := make([]int, len(weights))
	if wsum == 0 || total <= 0 {
		return out
	}
	type rem struct {
		i    int
		frac float64
	}
	assigned := 0
	rems := make([]rem, 0, len(weights))
	for i, w := range weights {
		exact := float64(total) * w / wsum
		fl := math.Floor(exact)
		out[i] = int(fl)
		if minOne && w > 0 && out[i] == 0 {
			out[i] = 1
		}
		assigned += out[i]
		rems = append(rems, rem{i, exact - fl})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].i < rems[b].i
	})
	// Distribute or retract the rounding difference.
	for j := 0; assigned < total && j < len(rems); j++ {
		out[rems[j].i]++
		assigned++
	}
	for j := len(rems) - 1; assigned > total && j >= 0; j-- {
		i := rems[j].i
		min := 0
		if minOne && weights[i] > 0 {
			min = 1
		}
		if out[i] > min {
			out[i]--
			assigned--
		}
	}
	return out
}

// GraphFromView materializes a view back into an RDF graph: every
// subject receives an rdf:type triple for sortURI plus one literal
// triple per property in its signature. Subject URIs are synthesized
// from prefix unless the view retains real subject names.
//
// Generation runs on the interned fast path: the sort URI, rdf:type,
// the property names and the shared literal intern once up front, and
// each subject's triples are emitted as IDTriples — so materializing a
// paper-scale dataset costs one dictionary insert per subject, not one
// string hash per triple.
func GraphFromView(v *matrix.View, sortURI, prefix string) *rdf.Graph {
	g := rdf.NewGraph()
	dict := g.Dict()
	typeID := dict.Intern(rdf.TypeURI)
	sortID := dict.Intern(sortURI)
	valID := dict.Intern("v")
	props := v.Properties()
	propIDs := make([]term.ID, len(props))
	for i, p := range props {
		propIDs[i] = dict.Intern(p)
	}
	var nameBuf []byte
	n := 0
	for _, sg := range v.Signatures() {
		for i := 0; i < sg.Count; i++ {
			var subj term.ID
			if sg.Subjects != nil {
				subj = dict.Intern(sg.Subjects[i])
			} else {
				nameBuf = append(append(nameBuf[:0], prefix...), '/')
				nameBuf = strconv.AppendInt(nameBuf, int64(n), 10)
				subj = dict.InternBytes(nameBuf)
			}
			n++
			g.AddID(rdf.IDTriple{S: subj, P: typeID, O: sortID, OKind: rdf.URI})
			sg.Bits.ForEach(func(p int) {
				g.AddID(rdf.IDTriple{S: subj, P: propIDs[p], O: valID, OKind: rdf.Literal})
			})
		}
	}
	return g
}
