package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rdf"
)

// The wide-schema scenario models full-DBpedia-shaped datasets
// (ROADMAP item 5): tens of thousands of property columns, subjects
// touching only a handful each, column popularity following a power
// law. No paper corpus has this shape — the paper's datasets top out at
// a few hundred properties — so the generator is calibrated against
// the structural facts the compressed signature tier must survive
// rather than published statistics:
//
//   - |P(D)| equals the requested width exactly (a coverage tail of
//     small signatures touches every otherwise-unused column), so the
//     dense baseline really pays |P| per signature;
//   - column popularity is power-law: the head columns appear in most
//     signatures, the tail in exactly one;
//   - adversarial signature splits: sibling signatures differing in a
//     single column with equal-or-near counts, plus a large cohort of
//     count-1 signatures — the shapes that stress the canonical sort
//     tie-break, merge identity and refinement delta-scoring.

// WideSortURI is the rdf:type object of every wide-scenario subject.
const WideSortURI = "http://wide/Thing"

// WideOptions sizes the wide-schema scenario. The zero value gives the
// full |P| ≈ 20k shape.
type WideOptions struct {
	// Props is the number of distinct property columns, all of which
	// appear in the dataset (default 20000).
	Props int
	// Subjects is the subject count (default 4000). Must leave room for
	// the coverage tail: at least Props/WideTailChunk + Templates.
	Subjects int
	// Templates is the number of base signature templates drawn from
	// the power-law column distribution (default 300). Every second
	// template also emits an adversarial sibling differing in exactly
	// one column.
	Templates int
	// Alpha is the power-law exponent of column popularity
	// (default 1.07).
	Alpha float64
	// Seed drives all sampling (default 1).
	Seed int64
}

// WideTailChunk is the support size of the coverage-tail signatures
// that sweep up otherwise-unused columns.
const WideTailChunk = 16

func (o *WideOptions) defaults() {
	if o.Props == 0 {
		o.Props = 20000
	}
	if o.Subjects == 0 {
		o.Subjects = 4000
	}
	if o.Templates == 0 {
		o.Templates = 300
	}
	if o.Alpha == 0 {
		o.Alpha = 1.07
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// WideProp returns the URI of wide-scenario column i. Names are
// zero-padded so lexicographic order equals column order, making the
// generated view bit-identical to FromGraph on its materialization.
func WideProp(i int) string { return fmt.Sprintf("http://wide/p%05d", i) }

// WideSchema generates the wide-schema signature view.
func WideSchema(opts WideOptions) *matrix.View {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Props

	// Power-law column popularity: cumulative weights over 1/(i+1)^α,
	// sampled by binary search.
	cum := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), opts.Alpha)
		cum[i] = sum
	}
	drawCol := func() int {
		x := rng.Float64() * sum
		return sort.SearchFloat64s(cum, x)
	}
	sampleSupport := func(k int) []int {
		seen := map[int]bool{}
		out := make([]int, 0, k)
		for len(out) < k {
			c := drawCol()
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		sort.Ints(out)
		return out
	}

	// Base templates plus adversarial one-column siblings.
	var supports [][]int
	for t := 0; t < opts.Templates; t++ {
		k := 4 + int(rng.ExpFloat64()*6)
		if k > 28 {
			k = 28
		}
		supp := sampleSupport(k)
		supports = append(supports, supp)
		if t%2 == 0 {
			// Sibling: same support except one member swapped for a fresh
			// column — maximal key/sort-order adjacency at Hamming
			// distance 2, or distance 1 when the swap collides.
			sib := append([]int(nil), supp...)
			for {
				c := drawCol()
				i := sort.SearchInts(sib, c)
				if i < len(sib) && sib[i] == c {
					continue
				}
				sib[rng.Intn(len(sib))] = c
				sort.Ints(sib)
				break
			}
			supports = append(supports, sib)
		}
	}

	// Coverage tail: sweep every column the templates missed into
	// count-1 signatures of WideTailChunk columns each, so |P(D)| == n.
	used := make([]bool, n)
	for _, supp := range supports {
		for _, c := range supp {
			used[c] = true
		}
	}
	var tail [][]int
	var chunk []int
	for c := 0; c < n; c++ {
		if used[c] {
			continue
		}
		chunk = append(chunk, c)
		if len(chunk) == WideTailChunk {
			tail = append(tail, chunk)
			chunk = nil
		}
	}
	if len(chunk) > 0 {
		tail = append(tail, chunk)
	}

	tmplSubjects := opts.Subjects - len(tail)
	if tmplSubjects < len(supports) {
		panic(fmt.Sprintf("datagen: %d subjects cannot cover %d template and %d tail signatures",
			opts.Subjects, len(supports), len(tail)))
	}
	// Template multiplicities follow their own power law; adjacent
	// template/sibling pairs share a weight, so their counts are equal
	// or within one — the sort tie-break has to consult the patterns.
	weights := make([]float64, len(supports))
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i/2+1), 0.9)
	}
	counts := apportion(weights, tmplSubjects, true)

	props := make([]string, n)
	for i := range props {
		props[i] = WideProp(i)
	}
	sigs := make([]matrix.Signature, 0, len(supports)+len(tail))
	for i, supp := range supports {
		if counts[i] == 0 {
			continue
		}
		sigs = append(sigs, matrix.Signature{Bits: bitset.FromSortedIndices(n, supp), Count: counts[i]})
	}
	for _, supp := range tail {
		sigs = append(sigs, matrix.Signature{Bits: bitset.FromSortedIndices(n, supp), Count: 1})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		panic("datagen: wide schema: " + err.Error())
	}
	return v
}

// WideSchemaGraph materializes the wide-schema scenario as triples.
func WideSchemaGraph(opts WideOptions) *rdf.Graph {
	return GraphFromView(WideSchema(opts), WideSortURI, "http://wide/s")
}

// WideAtScale sizes the scenario by a single scale knob: scale 1 is the
// full 20k-column shape, smaller scales shrink columns, subjects and
// templates proportionally (floors keep the shape non-degenerate).
func WideAtScale(scale float64, seed int64) WideOptions {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	o := WideOptions{
		Props:     int(20000 * scale),
		Subjects:  int(4000 * scale),
		Templates: int(300 * scale),
		Seed:      seed,
	}
	if o.Props < 64 {
		o.Props = 64
	}
	if o.Templates < 8 {
		o.Templates = 8
	}
	if min := o.Props/WideTailChunk + 3*o.Templates/2 + 2; o.Subjects < min {
		o.Subjects = min
	}
	return o
}
