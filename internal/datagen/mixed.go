package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Section 7.4's semantic-correctness experiment mixes two YAGO explicit
// sorts — Drug Companies and Sultans — and asks whether a k=2 sort
// refinement recovers the original separation. The generators below
// synthesize the two sorts with distinct property profiles plus the
// four RDF-syntax properties (type, sameAs, subClassOf, label) that all
// subjects share; sparsely-described sultans whose signatures carry
// little beyond the shared properties blur the boundary, reproducing
// the paper's imperfect precision.

// RDF-syntax property URIs shared by both sorts; the paper improves its
// result by ignoring them (modified Cov rule).
const (
	PropSameAs     = "http://www.w3.org/2002/07/owl#sameAs"
	PropSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	PropRDFLabel   = "http://www.w3.org/2000/01/rdf-schema#label"
)

// SharedSyntaxProps lists the RDF-syntax properties (excluding
// rdf:type, which the view builder already drops) present on subjects
// of both sorts.
var SharedSyntaxProps = []string{PropSameAs, PropSubClassOf, PropRDFLabel}

// Sort URIs for the mixed experiment.
const (
	DrugCompanySortURI = "http://yago/DrugCompany"
	SultanSortURI      = "http://yago/Sultan"
)

var drugCompanyProps = []string{"industry", "products", "founded", "headquarters", "revenue", "numEmployees"}
var sultanProps = []string{"birthDate", "dynasty", "reignStart", "reignEnd", "predecessor", "successor"}

// MixedOptions sizes the Section 7.4 dataset. Defaults match the
// paper's population: 27 drug companies and 40 sultans.
type MixedOptions struct {
	DrugCompanies int
	Sultans       int
	// SparseSultans is the number of sultans with almost no
	// sort-specific properties (the confusable ones). Default 17, the
	// paper's misclassification count.
	SparseSultans int
	Seed          int64
}

func (o *MixedOptions) defaults() {
	if o.DrugCompanies == 0 {
		o.DrugCompanies = 27
	}
	if o.Sultans == 0 {
		o.Sultans = 40
	}
	if o.SparseSultans == 0 {
		o.SparseSultans = 17
	}
}

// MixedDrugSultans generates the combined dataset. Every subject keeps
// its true rdf:type triple (used as ground truth for scoring), and the
// returned graph is the union.
func MixedDrugSultans(opts MixedOptions) *rdf.Graph {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := rdf.NewGraph()

	addShared := func(s string) {
		g.AddURI(s, PropSameAs, s+"#same")
		g.AddURI(s, PropSubClassOf, "http://yago/Entity")
		g.AddLiteral(s, PropRDFLabel, "label")
	}

	for i := 0; i < opts.DrugCompanies; i++ {
		s := fmt.Sprintf("http://yago/drugco/%02d", i)
		g.AddURI(s, rdf.TypeURI, DrugCompanySortURI)
		addShared(s)
		// Drug companies are richly described: most specific properties
		// present.
		for _, p := range drugCompanyProps {
			if rng.Float64() < 0.85 {
				g.AddLiteral(s, p, "v")
			}
		}
		// Ensure at least one specific property.
		g.AddLiteral(s, drugCompanyProps[i%len(drugCompanyProps)], "v")
	}

	for i := 0; i < opts.Sultans; i++ {
		s := fmt.Sprintf("http://yago/sultan/%02d", i)
		g.AddURI(s, rdf.TypeURI, SultanSortURI)
		addShared(s)
		if i < opts.Sultans-opts.SparseSultans {
			// Well-described sultans.
			for _, p := range sultanProps {
				if rng.Float64() < 0.8 {
					g.AddLiteral(s, p, "v")
				}
			}
			g.AddLiteral(s, sultanProps[i%len(sultanProps)], "v")
		} else if rng.Float64() < 0.5 {
			// Sparse sultans: at most one specific property — their
			// signatures are dominated by the shared RDF-syntax columns.
			g.AddLiteral(s, sultanProps[rng.Intn(len(sultanProps))], "v")
		}
	}
	return g
}

// TrueSort returns the ground-truth sort of a subject in the mixed
// dataset ("drug", "sultan", or "").
func TrueSort(g *rdf.Graph, subject string) string {
	for _, t := range g.SubjectTriples(subject) {
		if t.Predicate == rdf.TypeURI && t.Object.IsURI() {
			switch t.Object.Value {
			case DrugCompanySortURI:
				return "drug"
			case SultanSortURI:
				return "sultan"
			}
		}
	}
	return ""
}
