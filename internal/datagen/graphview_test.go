package datagen

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rdf"
)

func TestGraphFromView(t *testing.T) {
	props := []string{"name", "age"}
	sigs := []matrix.Signature{
		{Bits: bitset.FromIndices(2, 0, 1), Count: 2},
		{Bits: bitset.FromIndices(2, 0), Count: 1},
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	g := GraphFromView(v, "http://ex/T", "http://ex/s")
	// 3 type triples + 2·2 + 1·1 property triples.
	if g.Len() != 3+5 {
		t.Fatalf("triples = %d, want 8", g.Len())
	}
	// Round trip through the view builder restores the structure.
	back := matrix.FromGraph(g.SortSubgraph("http://ex/T"), matrix.Options{})
	if back.NumSubjects() != 3 || back.NumSignatures() != 2 {
		t.Fatalf("round trip: %s", back)
	}
	if back.Ones() != v.Ones() {
		t.Fatalf("ones %d != %d", back.Ones(), v.Ones())
	}
}

func TestGraphFromViewKeepsRealSubjects(t *testing.T) {
	props := []string{"p"}
	sigs := []matrix.Signature{
		{Bits: bitset.FromIndices(1, 0), Count: 2, Subjects: []string{"http://ex/a", "http://ex/b"}},
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	g := GraphFromView(v, "http://ex/T", "ignored")
	if !g.HasProperty("http://ex/a", "p") || !g.HasProperty("http://ex/b", "p") {
		t.Fatalf("real subject URIs not preserved: %v", g.Subjects())
	}
}

func TestWordNetScaledKeepsSignatureCount(t *testing.T) {
	for _, scale := range []float64{0.005, 0.05, 0.5} {
		v := WordNetNouns(scale)
		if v.NumSignatures() != wordnetSignatureCount {
			t.Errorf("scale %v: signatures = %d", scale, v.NumSignatures())
		}
	}
}

func TestMixedOptionsOverrides(t *testing.T) {
	g := MixedDrugSultans(MixedOptions{DrugCompanies: 5, Sultans: 7, SparseSultans: 2, Seed: 9})
	if got := g.SortSubgraph(DrugCompanySortURI).SubjectCount(); got != 5 {
		t.Fatalf("drugs = %d", got)
	}
	if got := g.SortSubgraph(SultanSortURI).SubjectCount(); got != 7 {
		t.Fatalf("sultans = %d", got)
	}
}

func TestTrueSortUnknown(t *testing.T) {
	g := rdf.NewGraph()
	g.AddLiteral("s", "p", "v")
	if got := TrueSort(g, "s"); got != "" {
		t.Fatalf("TrueSort = %q, want empty", got)
	}
}
