package datagen

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/matrix"
)

// The wide-scenario calibrations: full column coverage, power-law
// popularity, adversarial near-duplicate signatures, and the adaptive
// tier actually choosing compressed containers on this shape.

func TestWideSchemaCalibration(t *testing.T) {
	opts := WideAtScale(0.1, 1) // 2000 columns — fast but wide
	v := WideSchema(opts)

	if v.NumProperties() != opts.Props {
		t.Fatalf("NumProperties = %d, want %d", v.NumProperties(), opts.Props)
	}
	if v.UsedProperties() != opts.Props {
		t.Fatalf("UsedProperties = %d, want full coverage %d", v.UsedProperties(), opts.Props)
	}
	if v.NumSubjects() != opts.Subjects {
		t.Fatalf("NumSubjects = %d, want %d", v.NumSubjects(), opts.Subjects)
	}

	// Sparse shape: mean support far below the column count.
	meanSupport := float64(v.Ones()) / float64(v.NumSubjects())
	if meanSupport > 30 {
		t.Fatalf("mean support %.1f, want wide-sparse (≤30)", meanSupport)
	}

	// Power-law popularity: the most popular column dwarfs the median
	// (the tail columns appear exactly once by construction).
	counts := v.PropertyCounts()
	var max, min int64 = 0, 1 << 62
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 20*min || min < 1 {
		t.Fatalf("popularity head/tail = %d/%d, want skew ≥20x with full coverage", max, min)
	}

	// Adversarial splits: some pair of signatures within Hamming
	// distance ≤2 (the template/sibling pairs).
	sigs := v.Signatures()
	found := false
	for i := 0; i < len(sigs) && !found; i++ {
		for j := i + 1; j < len(sigs) && j < i+50; j++ {
			if bitset.HammingBits(sigs[i].Bits, sigs[j].Bits) <= 2 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatalf("no adversarial sibling signatures (Hamming ≤ 2) found")
	}

	// The adaptive cost model must compress this shape.
	st := v.StorageStats()
	if st.SparseSigs == 0 || st.SparseSigs < st.DenseSigs {
		t.Fatalf("adaptive storage on wide shape: %d sparse / %d dense, want mostly sparse",
			st.SparseSigs, st.DenseSigs)
	}
}

func TestWideSchemaGraphRoundTrip(t *testing.T) {
	opts := WideAtScale(0.02, 7) // 400 columns
	v := WideSchema(opts)
	g := WideSchemaGraph(opts)
	rebuilt := matrix.FromGraph(g, matrix.Options{})
	if rebuilt.NumSubjects() != v.NumSubjects() ||
		rebuilt.NumProperties() != v.NumProperties() ||
		rebuilt.NumSignatures() != v.NumSignatures() {
		t.Fatalf("round trip %v, want %v", rebuilt, v)
	}
	// Bit-identical: same canonical encoding.
	a := v.AppendBinary(nil)
	b := rebuilt.AppendBinary(nil)
	if string(a) != string(b) {
		t.Fatalf("materialized view differs from generated view")
	}
}

func TestWideSchemaDeterministic(t *testing.T) {
	opts := WideAtScale(0.02, 3)
	a := WideSchema(opts).AppendBinary(nil)
	b := WideSchema(opts).AppendBinary(nil)
	if string(a) != string(b) {
		t.Fatalf("same options produced different views")
	}
}
