package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/rules"
)

func TestApportion(t *testing.T) {
	got := apportion([]float64{1, 1, 2}, 8, false)
	if got[0]+got[1]+got[2] != 8 {
		t.Fatalf("sum %v", got)
	}
	if got[2] != 4 {
		t.Fatalf("weights ignored: %v", got)
	}
	// minOne keeps tiny cells alive.
	got = apportion([]float64{0.999, 0.001}, 10, true)
	if got[1] < 1 {
		t.Fatalf("minOne violated: %v", got)
	}
	if got[0]+got[1] != 10 {
		t.Fatalf("sum %v", got)
	}
	// Zero weights stay zero.
	got = apportion([]float64{1, 0}, 5, true)
	if got[1] != 0 {
		t.Fatalf("zero weight got units: %v", got)
	}
}

func TestQuickApportionSums(t *testing.T) {
	f := func(seed int64, totalRaw uint16) bool {
		total := int(totalRaw)%1000 + 1
		n := int(uint64(seed)%7 + 2)
		ws := make([]float64, n)
		x := seed
		for i := range ws {
			x = x*6364136223846793005 + 1442695040888963407
			ws[i] = float64(uint64(x)%1000) / 100
		}
		nonzero := 0
		for _, w := range ws {
			if w > 0 {
				nonzero++
			}
		}
		if nonzero == 0 || total < nonzero {
			return true // skip degenerate combinations
		}
		got := apportion(ws, total, true)
		sum := 0
		for i, c := range got {
			if ws[i] == 0 && c != 0 {
				return false
			}
			if ws[i] > 0 && c < 1 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// propCount returns N_p by property name.
func propCount(v *matrix.View, name string) int64 {
	i, ok := v.PropertyIndex(name)
	if !ok {
		return -1
	}
	return v.PropertyCounts()[i]
}

func TestDBpediaPersonsFullScaleCalibration(t *testing.T) {
	v := DBpediaPersons(1.0)
	if v.NumSubjects() != DBpediaPersonsFullSize {
		t.Fatalf("subjects = %d", v.NumSubjects())
	}
	if v.NumProperties() != 8 {
		t.Fatalf("properties = %d", v.NumProperties())
	}
	if v.NumSignatures() != 64 {
		t.Fatalf("signatures = %d, want 64", v.NumSignatures())
	}
	// §1 marginals (±0.5% after apportionment).
	checks := []struct {
		prop string
		want int64
	}{
		{PropName, 790703},
		{PropBirthDate, 420242},
		{PropBirthPlace, 323368},
		{PropDeathDate, 173507},
		{PropDeathPlace, 90246},
	}
	for _, c := range checks {
		got := propCount(v, c.prop)
		if math.Abs(float64(got-c.want)) > 0.005*float64(c.want) {
			t.Errorf("N[%s] = %d, want ≈%d", c.prop, got, c.want)
		}
	}
	// §7.1 structuredness values.
	if cov := rules.Coverage(v).Value(); math.Abs(cov-0.54) > 0.01 {
		t.Errorf("σCov = %.3f, want ≈0.54", cov)
	}
	if sim := rules.Similarity(v).Value(); math.Abs(sim-0.77) > 0.01 {
		t.Errorf("σSim = %.3f, want ≈0.77", sim)
	}
	if sd := rules.SymDep(v, PropDeathPlace, PropDeathDate).Value(); math.Abs(sd-0.39) > 0.01 {
		t.Errorf("σSymDep[dP,dD] = %.3f, want ≈0.39", sd)
	}
	// Table 2 extremes.
	if sd := rules.SymDep(v, PropGivenName, PropSurName).Value(); sd != 1.0 {
		t.Errorf("σSymDep[givenName,surName] = %.3f, want 1.0", sd)
	}
	if sd := rules.SymDep(v, PropName, PropGivenName).Value(); math.Abs(sd-0.95) > 0.01 {
		t.Errorf("σSymDep[name,givenName] = %.3f, want ≈0.95", sd)
	}
	if sd := rules.SymDep(v, PropDeathPlace, PropName).Value(); math.Abs(sd-0.11) > 0.01 {
		t.Errorf("σSymDep[deathPlace,name] = %.3f, want ≈0.11", sd)
	}
	// Table 1 row 1.
	if d := rules.Dep(v, PropDeathPlace, PropBirthPlace).Value(); math.Abs(d-0.93) > 0.01 {
		t.Errorf("σDep[dP,bP] = %.3f, want ≈0.93", d)
	}
	if d := rules.Dep(v, PropDeathPlace, PropBirthDate).Value(); math.Abs(d-0.77) > 0.01 {
		t.Errorf("σDep[dP,bD] = %.3f, want ≈0.77", d)
	}
}

func TestDBpediaPersonsScaledPreservesShape(t *testing.T) {
	v := DBpediaPersons(0.01)
	if v.NumSignatures() != 64 {
		t.Fatalf("signatures at 1%% scale = %d, want 64", v.NumSignatures())
	}
	if cov := rules.Coverage(v).Value(); math.Abs(cov-0.54) > 0.02 {
		t.Errorf("σCov at 1%% = %.3f", cov)
	}
	if sim := rules.Similarity(v).Value(); math.Abs(sim-0.77) > 0.02 {
		t.Errorf("σSim at 1%% = %.3f", sim)
	}
}

func TestDBpediaPersonsGraphRoundTrip(t *testing.T) {
	g := DBpediaPersonsGraph(0.002)
	sub := g.SortSubgraph(DBpediaPersonsSortURI)
	v := matrix.FromGraph(sub, matrix.Options{})
	if v.NumProperties() != 8 {
		t.Fatalf("graph view properties = %v", v.Properties())
	}
	if v.NumSubjects() != DBpediaPersons(0.002).NumSubjects() {
		t.Fatalf("subjects: %d", v.NumSubjects())
	}
	if cov := rules.Coverage(v).Value(); math.Abs(cov-0.54) > 0.05 {
		t.Errorf("σCov from graph = %.3f", cov)
	}
}

func TestWordNetNounsCalibration(t *testing.T) {
	v := WordNetNouns(1.0)
	if v.NumSubjects() != WordNetNounsFullSize {
		t.Fatalf("subjects = %d", v.NumSubjects())
	}
	if v.NumProperties() != 12 {
		t.Fatalf("properties = %d", v.NumProperties())
	}
	if v.NumSignatures() != 53 {
		t.Fatalf("signatures = %d, want 53", v.NumSignatures())
	}
	if cov := rules.Coverage(v).Value(); math.Abs(cov-0.44) > 0.02 {
		t.Errorf("σCov = %.3f, want ≈0.44", cov)
	}
	if sim := rules.Similarity(v).Value(); math.Abs(sim-0.93) > 0.02 {
		t.Errorf("σSim = %.3f, want ≈0.93", sim)
	}
	// Three universal properties.
	for _, p := range []string{PropGloss, PropLabel, PropSynsetID} {
		if propCount(v, p) != int64(v.NumSubjects()) {
			t.Errorf("%s not universal: %d", p, propCount(v, p))
		}
	}
}

func TestYagoSample(t *testing.T) {
	sorts := YagoSample(1, YagoSampleOptions{NumSorts: 30, MaxSubjects: 5000})
	if len(sorts) != 30 {
		t.Fatalf("sorts = %d", len(sorts))
	}
	for _, s := range sorts {
		v := s.View
		if v.NumProperties() < 10 || v.NumProperties() > 40 {
			t.Errorf("%s: properties = %d", s.Name, v.NumProperties())
		}
		if v.NumSignatures() < 1 || v.NumSignatures() > 350 {
			t.Errorf("%s: signatures = %d", s.Name, v.NumSignatures())
		}
		if v.NumSubjects() < v.NumSignatures() {
			t.Errorf("%s: %d subjects < %d signatures", s.Name, v.NumSubjects(), v.NumSignatures())
		}
	}
	// Determinism.
	again := YagoSample(1, YagoSampleOptions{NumSorts: 30, MaxSubjects: 5000})
	for i := range sorts {
		if sorts[i].View.NumSubjects() != again[i].View.NumSubjects() ||
			sorts[i].View.NumSignatures() != again[i].View.NumSignatures() {
			t.Fatal("YagoSample not deterministic")
		}
	}
}

func TestMixedDrugSultans(t *testing.T) {
	g := MixedDrugSultans(MixedOptions{Seed: 2})
	sorts := g.Sorts()
	if len(sorts) != 2 {
		t.Fatalf("sorts = %v", sorts)
	}
	drugs := g.SortSubgraph(DrugCompanySortURI)
	sultans := g.SortSubgraph(SultanSortURI)
	if drugs.SubjectCount() != 27 || sultans.SubjectCount() != 40 {
		t.Fatalf("drug=%d sultan=%d", drugs.SubjectCount(), sultans.SubjectCount())
	}
	// Ground truth resolves for every subject.
	for _, s := range g.Subjects() {
		if TrueSort(g, s) == "" {
			t.Fatalf("subject %s has no ground truth", s)
		}
	}
	// Shared syntax properties exist on both sorts.
	dv := matrix.FromGraph(drugs, matrix.Options{})
	sv := matrix.FromGraph(sultans, matrix.Options{})
	for _, p := range SharedSyntaxProps {
		if _, ok := dv.PropertyIndex(p); !ok {
			t.Errorf("drug view missing %s", p)
		}
		if _, ok := sv.PropertyIndex(p); !ok {
			t.Errorf("sultan view missing %s", p)
		}
	}
}

func BenchmarkDBpediaPersonsFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = DBpediaPersons(1.0)
	}
}

func BenchmarkYagoSample100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = YagoSample(7, YagoSampleOptions{NumSorts: 100, MaxSubjects: 10000})
	}
}
