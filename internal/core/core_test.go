package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ilp"
	"repro/internal/refine"
)

const fixture = `
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/alice> <http://ex/birthDate> "1980" .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://ex/name> "Bob" .
<http://ex/acme> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Company> .
<http://ex/acme> <http://ex/name> "Acme" .
`

func TestReadNTriplesWithSort(t *testing.T) {
	d, err := ReadNTriples(strings.NewReader(fixture), "test", "http://ex/Person")
	if err != nil {
		t.Fatal(err)
	}
	if d.View.NumSubjects() != 2 {
		t.Fatalf("subjects = %d, want 2 (persons only)", d.View.NumSubjects())
	}
	if d.View.NumProperties() != 2 {
		t.Fatalf("properties = %v", d.View.Properties())
	}
}

func TestReadNTriplesUnknownSort(t *testing.T) {
	if _, err := ReadNTriples(strings.NewReader(fixture), "test", "http://ex/Nothing"); err == nil {
		t.Fatal("unknown sort accepted")
	}
}

func TestStructurednessAndSummary(t *testing.T) {
	d, err := ReadNTriples(strings.NewReader(fixture), "persons", "http://ex/Person")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ParseRule("c = c -> val(c) = 1")
	if err != nil {
		t.Fatal(err)
	}
	val, err := d.Structuredness(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := val.Value(); got != 0.75 { // 3 ones / (2 subjects × 2 props)
		t.Fatalf("σCov = %v, want 0.75", got)
	}
	sum := d.Summary()
	if !strings.Contains(sum, "persons") || !strings.Contains(sum, "2 subjects") {
		t.Fatalf("summary = %q", sum)
	}
	if d.Render(5) == "" {
		t.Fatal("empty render")
	}
}

func TestBuiltin(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"cov", "Cov"},
		{"sim", "Sim"},
		{"dep[a,b]", "Dep[a,b]"},
		{"symdep[a, b]", "SymDep[a,b]"},
	}
	for _, c := range cases {
		fn, rule, err := Builtin(c.name)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", c.name, err)
		}
		if fn.Name() != c.want {
			t.Errorf("Builtin(%q) = %q, want %q", c.name, fn.Name(), c.want)
		}
		if rule == nil {
			t.Errorf("Builtin(%q) returned nil rule", c.name)
		}
	}
	for _, bad := range []string{"nope", "dep[a]", "dep[a,b,c]", ""} {
		if _, _, err := Builtin(bad); err == nil {
			t.Errorf("Builtin(%q) accepted", bad)
		}
	}
}

func TestHighestThetaEndToEnd(t *testing.T) {
	d := FromView("dbpedia", datagen.DBpediaPersons(0.005))
	_, rule, err := Builtin("cov")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.HighestTheta(rule, 2, refine.SearchOptions{
		Heuristic: refine.HeuristicOptions{Restarts: 2, MaxIters: 30},
		Solver:    ilp.Options{MaxDecisions: 20000},
		Encode:    refine.EncodeOptions{SymmetryBreaking: true, MaxTVars: 2500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Theta1 <= 54 {
		t.Fatalf("no improvement over base: θ=%d", res.Outcome.Theta1)
	}
	desc := res.Describe()
	if !strings.Contains(desc, "sort 1") || !strings.Contains(desc, "sort 2") {
		t.Fatalf("Describe missing sorts:\n%s", desc)
	}
	if res.RenderSorts(3) == "" {
		t.Fatal("RenderSorts empty")
	}
	if len(res.SortViewsBySize()) != 2 {
		t.Fatal("expected 2 sorts")
	}
}

func TestLowestKEndToEnd(t *testing.T) {
	d := FromView("dbpedia", datagen.DBpediaPersons(0.005))
	_, rule, err := Builtin("sim")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.LowestK(rule, 85, 100, refine.SearchOptions{
		Engine:    refine.EngineHeuristic,
		Heuristic: refine.HeuristicOptions{Restarts: 2, MaxIters: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.K < 1 || res.Outcome.K > 10 {
		t.Fatalf("k = %d", res.Outcome.K)
	}
}

func TestSaveAndLoadNTriples(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persons.nt")
	g := datagen.DBpediaPersonsGraph(0.001)
	d, err := FromGraph(g, "gen", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveNTriples(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNTriples(path, datagen.DBpediaPersonsSortURI)
	if err != nil {
		t.Fatal(err)
	}
	if back.View.NumSubjects() != d.View.NumSubjects() {
		t.Fatalf("round trip subjects %d != %d", back.View.NumSubjects(), d.View.NumSubjects())
	}
	// A view-only dataset cannot be saved.
	vOnly := FromView("v", datagen.DBpediaPersons(0.001))
	if err := vOnly.SaveNTriples(filepath.Join(dir, "x.nt")); err == nil {
		t.Fatal("view-only save accepted")
	}
}

func TestLoadTurtle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.ttl")
	src := "@prefix ex: <http://ex/> .\nex:a a ex:T ; ex:name \"A\" .\nex:b a ex:T ; ex:name \"B\" ; ex:age 3 .\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Load(path, "http://ex/T")
	if err != nil {
		t.Fatal(err)
	}
	if d.View.NumSubjects() != 2 || d.View.NumProperties() != 2 {
		t.Fatalf("turtle load: %s", d.Summary())
	}
	// N-Triples fallback by extension.
	ntPath := filepath.Join(dir, "data.nt")
	nt := "<http://ex/a> <http://ex/name> \"A\" .\n"
	if err := os.WriteFile(ntPath, []byte(nt), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(ntPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if d2.View.NumSubjects() != 1 {
		t.Fatalf("ntriples load: %s", d2.Summary())
	}
}
