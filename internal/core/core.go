// Package core is the public facade of the library: loading RDF
// datasets, computing structuredness values under built-in or custom
// rules, and discovering sort refinements. Examples and command-line
// tools are written against this package; the underlying machinery
// lives in internal/rdf, internal/matrix, internal/rules, internal/ilp
// and internal/refine.
package core

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
	"repro/internal/viz"
)

// Dataset couples a property-structure view with its provenance.
type Dataset struct {
	Name string
	View *matrix.View
	// Graph is the originating RDF graph, when loaded from triples
	// (nil for synthetically generated views).
	Graph *rdf.Graph
}

// LoadNTriples reads an N-Triples file and extracts the subgraph of the
// given sort (empty sortURI = whole graph) as a dataset.
func LoadNTriples(path, sortURI string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadNTriples(f, path, sortURI)
}

// Load reads an RDF file, selecting the parser by extension: .ttl/.turtle
// for Turtle, anything else N-Triples.
func Load(path, sortURI string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".ttl") || strings.HasSuffix(path, ".turtle") {
		g, err := rdf.ParseTurtle(f)
		if err != nil {
			return nil, err
		}
		return FromGraph(g, path, sortURI)
	}
	return ReadNTriples(f, path, sortURI)
}

// ReadNTriples is LoadNTriples over an io.Reader.
func ReadNTriples(r io.Reader, name, sortURI string) (*Dataset, error) {
	g, err := rdf.ParseNTriples(r)
	if err != nil {
		return nil, err
	}
	return FromGraph(g, name, sortURI)
}

// FromGraph builds a dataset from a graph, extracting Dt when sortURI
// is non-empty.
func FromGraph(g *rdf.Graph, name, sortURI string) (*Dataset, error) {
	if sortURI != "" {
		g = g.SortSubgraph(sortURI)
		if g.Len() == 0 {
			return nil, fmt.Errorf("core: no subjects of sort %q", sortURI)
		}
	}
	v := matrix.FromGraph(g, matrix.Options{KeepSubjects: true})
	return &Dataset{Name: name, View: v, Graph: g}, nil
}

// FromView wraps a pre-built view.
func FromView(name string, v *matrix.View) *Dataset {
	return &Dataset{Name: name, View: v}
}

// ParseRule parses the rule language (see internal/rules for syntax).
func ParseRule(src string) (*rules.Rule, error) { return rules.Parse(src) }

// Builtin returns a named built-in structuredness function: "cov",
// "sim", "dep[p1,p2]", "symdep[p1,p2]", "depdisj[p1,p2]".
func Builtin(name string) (rules.Func, *rules.Rule, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	switch {
	case lower == "cov":
		return rules.CovFunc(), rules.CovRule(), nil
	case lower == "sim":
		return rules.SimFunc(), rules.SimRule(), nil
	case strings.HasPrefix(lower, "dep[") && strings.HasSuffix(lower, "]"):
		p1, p2, err := splitPair(name[4 : len(name)-1])
		if err != nil {
			return nil, nil, err
		}
		return rules.DepFunc(p1, p2), rules.DepRule(p1, p2), nil
	case strings.HasPrefix(lower, "symdep[") && strings.HasSuffix(lower, "]"):
		p1, p2, err := splitPair(name[7 : len(name)-1])
		if err != nil {
			return nil, nil, err
		}
		return rules.SymDepFunc(p1, p2), rules.SymDepRule(p1, p2), nil
	case strings.HasPrefix(lower, "depdisj[") && strings.HasSuffix(lower, "]"):
		p1, p2, err := splitPair(name[8 : len(name)-1])
		if err != nil {
			return nil, nil, err
		}
		return rules.DepDisjFunc(p1, p2), rules.DepDisjRule(p1, p2), nil
	}
	return nil, nil, fmt.Errorf("core: unknown builtin %q (want cov, sim, dep[p1,p2], symdep[p1,p2] or depdisj[p1,p2])", name)
}

func splitPair(s string) (string, string, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return "", "", fmt.Errorf("core: want two comma-separated properties, got %q", s)
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), nil
}

// Structuredness computes σ of the dataset under a rule (closed form
// or compiled kernel when the rule is in the two-variable fragment).
func (d *Dataset) Structuredness(r *rules.Rule) (rules.Ratio, error) {
	return d.StructurednessParallel(r, 0)
}

// StructurednessParallel is Structuredness with an evaluation worker
// count for rules outside the compiled fragment: when the rule falls
// back to the generic rough-assignment evaluator, the enumeration is
// split across workers (rules.EvaluateParallel; 0 = GOMAXPROCS, 1 =
// sequential). The result is bit-identical for every worker count;
// closed forms and compiled kernels ignore the knob — they are already
// cheap.
func (d *Dataset) StructurednessParallel(r *rules.Rule, workers int) (rules.Ratio, error) {
	fn := rules.FuncForRule(r)
	if rf, ok := fn.(rules.RuleFunc); ok {
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		rf.Workers = workers
		fn = rf
	}
	return fn.Eval(d.View)
}

// StructurednessFunc computes σ under an arbitrary Func.
func (d *Dataset) StructurednessFunc(fn rules.Func) (rules.Ratio, error) {
	return fn.Eval(d.View)
}

// Summary returns a one-paragraph description mirroring the dataset
// statistics the paper reports (Figures 2 and 3 captions).
func (d *Dataset) Summary() string {
	v := d.View
	cov := rules.Coverage(v).Value()
	sim := rules.Similarity(v).Value()
	return fmt.Sprintf("%s: %d subjects, %d properties, %d signature sets; σCov=%.2f σSim=%.2f",
		d.Name, v.NumSubjects(), v.NumProperties(), v.NumSignatures(), cov, sim)
}

// Render draws the dataset's signature view as ASCII art.
func (d *Dataset) Render(maxRows int) string {
	return viz.Render(d.View, viz.Options{MaxRows: maxRows, ShowCounts: true})
}

// RefineResult packages a sort refinement with presentation helpers.
type RefineResult struct {
	Outcome *refine.Outcome
	Dataset *Dataset
}

// HighestTheta runs the paper's first strategy: the best threshold
// achievable with at most k implicit sorts.
func (d *Dataset) HighestTheta(r *rules.Rule, k int, opts refine.SearchOptions) (*RefineResult, error) {
	out, err := refine.HighestTheta(d.View, r, nil, k, opts)
	if err != nil {
		return nil, err
	}
	return &RefineResult{Outcome: out, Dataset: d}, nil
}

// LowestK runs the paper's second strategy: the fewest implicit sorts
// reaching threshold theta1/theta2.
func (d *Dataset) LowestK(r *rules.Rule, theta1, theta2 int64, opts refine.SearchOptions) (*RefineResult, error) {
	out, err := refine.LowestK(d.View, r, nil, theta1, theta2, opts)
	if err != nil {
		return nil, err
	}
	return &RefineResult{Outcome: out, Dataset: d}, nil
}

// Describe renders the refinement like the paper's figure captions:
// per-sort subject counts, signature counts, and σCov/σSim values.
func (rr *RefineResult) Describe() string {
	var b strings.Builder
	out := rr.Outcome
	ref := out.Refinement
	if ref == nil {
		return "no refinement found"
	}
	views, _ := ref.SortViews(rr.Dataset.View)
	fmt.Fprintf(&b, "θ=%d/%d, k≤%d → %d non-empty sorts (exact=%v, %d instances, %v)\n",
		out.Theta1, out.Theta2, ref.K, len(views), out.Exact, out.Instances, out.Elapsed.Round(1000000))
	// Stable presentation order: by subject count descending.
	sort.Slice(views, func(i, j int) bool { return views[i].NumSubjects() > views[j].NumSubjects() })
	for i, v := range views {
		fmt.Fprintf(&b, "  sort %d: %d subjects, %d signatures, σCov=%.2f, σSim=%.2f\n",
			i+1, v.NumSubjects(), v.NumSignatures(),
			rules.Coverage(v).Value(), rules.Similarity(v).Value())
	}
	return b.String()
}

// RenderSorts draws the refinement's sorts side by side (Figures 4–7).
func (rr *RefineResult) RenderSorts(maxRows int) string {
	views, _ := rr.Outcome.Refinement.SortViews(rr.Dataset.View)
	sort.Slice(views, func(i, j int) bool { return views[i].NumSubjects() > views[j].NumSubjects() })
	return viz.RenderSideBySide(views, nil, viz.Options{MaxRows: maxRows, ShowCounts: true})
}

// SortViewsBySize returns the refinement's non-empty sorts, largest
// first.
func (rr *RefineResult) SortViewsBySize() []*matrix.View {
	views, _ := rr.Outcome.Refinement.SortViews(rr.Dataset.View)
	sort.Slice(views, func(i, j int) bool { return views[i].NumSubjects() > views[j].NumSubjects() })
	return views
}

// SaveNTriples serializes the dataset's graph (must have been loaded or
// generated with triples).
func (d *Dataset) SaveNTriples(path string) error {
	if d.Graph == nil {
		return fmt.Errorf("core: dataset %q has no graph to save", d.Name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rdf.WriteNTriples(f, d.Graph)
}
