package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/rdf"
)

func graphFixture() *rdf.Graph {
	g := rdf.NewGraph()
	add := func(s string, props ...string) {
		g.AddURI(s, rdf.TypeURI, "T")
		for _, p := range props {
			g.AddLiteral(s, p, "v")
		}
	}
	add("s1", "name", "birthDate")
	add("s2", "name", "birthDate")
	add("s3", "name")
	add("s4", "name", "birthDate", "deathDate")
	return g
}

func TestFromGraph(t *testing.T) {
	v := FromGraph(graphFixture(), Options{KeepSubjects: true})
	if v.NumSubjects() != 4 {
		t.Fatalf("subjects = %d", v.NumSubjects())
	}
	if v.NumProperties() != 3 { // type excluded
		t.Fatalf("properties = %v", v.Properties())
	}
	if v.NumSignatures() != 3 {
		t.Fatalf("signatures = %d: %s", v.NumSignatures(), v.Describe(10))
	}
	// Largest signature first: {name, birthDate} ×2.
	top := v.Signatures()[0]
	if top.Count != 2 || top.Bits.Count() != 2 {
		t.Fatalf("top signature %v ×%d", top.Bits, top.Count)
	}
	if len(top.Subjects) != 2 || top.Subjects[0] != "s1" || top.Subjects[1] != "s2" {
		t.Fatalf("top subjects = %v", top.Subjects)
	}
}

func TestIgnoreProperties(t *testing.T) {
	v := FromGraph(graphFixture(), Options{IgnoreProperties: []string{"deathDate"}})
	if v.NumProperties() != 2 {
		t.Fatalf("properties = %v", v.Properties())
	}
	// s4 collapses into the {name,birthDate} signature: now ×3.
	if v.NumSignatures() != 2 {
		t.Fatalf("signatures = %d", v.NumSignatures())
	}
	if v.Signatures()[0].Count != 3 {
		t.Fatalf("top count = %d", v.Signatures()[0].Count)
	}
}

func TestPropertyCountsAndOnes(t *testing.T) {
	v := FromGraph(graphFixture(), Options{})
	counts := v.PropertyCounts()
	byName := map[string]int64{}
	for i, p := range v.Properties() {
		byName[p] = counts[i]
	}
	if byName["name"] != 4 || byName["birthDate"] != 3 || byName["deathDate"] != 1 {
		t.Fatalf("counts = %v", byName)
	}
	if v.Ones() != 8 {
		t.Fatalf("Ones = %d, want 8", v.Ones())
	}
	if v.UsedProperties() != 3 {
		t.Fatalf("UsedProperties = %d", v.UsedProperties())
	}
}

func TestNewMergesDuplicates(t *testing.T) {
	props := []string{"a", "b"}
	s1 := Signature{Bits: bitset.FromIndices(2, 0), Count: 3}
	s2 := Signature{Bits: bitset.FromIndices(2, 0), Count: 2}
	s3 := Signature{Bits: bitset.FromIndices(2, 0, 1), Count: 1}
	v, err := New(props, []Signature{s1, s2, s3})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumSignatures() != 2 {
		t.Fatalf("signatures = %d", v.NumSignatures())
	}
	if v.Signatures()[0].Count != 5 {
		t.Fatalf("merged count = %d", v.Signatures()[0].Count)
	}
	if v.NumSubjects() != 6 {
		t.Fatalf("subjects = %d", v.NumSubjects())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a", "a"}, nil); err == nil {
		t.Fatal("duplicate property accepted")
	}
	if _, err := New([]string{"a"}, []Signature{{Bits: bitset.New(2), Count: 1}}); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if _, err := New([]string{"a"}, []Signature{{Bits: bitset.New(1), Count: 0}}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestSubset(t *testing.T) {
	v := FromGraph(graphFixture(), Options{})
	sub := v.Subset([]int{0})
	if sub.NumSubjects() != v.Signatures()[0].Count {
		t.Fatalf("subset subjects = %d", sub.NumSubjects())
	}
	if sub.NumProperties() != v.NumProperties() {
		t.Fatal("subset changed columns")
	}
	if sub.UsedProperties() != 2 {
		t.Fatalf("subset used properties = %d", sub.UsedProperties())
	}
}

func TestSignatureOf(t *testing.T) {
	v := FromGraph(graphFixture(), Options{})
	for i, sg := range v.Signatures() {
		if got := v.SignatureOf(sg.Bits); got != i {
			t.Fatalf("SignatureOf(%v) = %d, want %d", sg.Bits, got, i)
		}
	}
	if got := v.SignatureOf(bitset.New(v.NumProperties())); got == -1 {
		// all-zero not present in fixture: expected -1; adjust check
		_ = got
	} else {
		t.Fatalf("SignatureOf(zero) = %d, want -1", got)
	}
}

// Property: signature set sizes always sum to the subject count, and
// Ones equals Σ support(μ)·count(μ).
func TestQuickViewInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProps := rng.Intn(6) + 1
		props := make([]string, nProps)
		for i := range props {
			props[i] = string(rune('a' + i))
		}
		var sigs []Signature
		for i := 0; i < rng.Intn(10)+1; i++ {
			b := bitset.New(nProps)
			for j := 0; j < nProps; j++ {
				if rng.Intn(2) == 1 {
					b.Set(j)
				}
			}
			sigs = append(sigs, Signature{Bits: b, Count: rng.Intn(50) + 1})
		}
		v, err := New(props, sigs)
		if err != nil {
			return false
		}
		sum, ones := 0, int64(0)
		for _, sg := range v.Signatures() {
			sum += sg.Count
			ones += int64(sg.Count) * int64(sg.Bits.Count())
		}
		if sum != v.NumSubjects() || ones != v.Ones() {
			return false
		}
		// PropertyCounts sums to Ones.
		var pc int64
		for _, c := range v.PropertyCounts() {
			pc += c
		}
		return pc == v.Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromGraph(b *testing.B) {
	g := rdf.NewGraph()
	rng := rand.New(rand.NewSource(1))
	props := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"}
	for i := 0; i < 5000; i++ {
		s := "s" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		g.AddURI(s, rdf.TypeURI, "T")
		for _, p := range props {
			if rng.Intn(2) == 1 {
				g.AddLiteral(s, p, "v")
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromGraph(g, Options{})
	}
}

// randomView builds a random view for pair-count property tests.
func randomView(t *testing.T, rng *rand.Rand, maxProps, maxSigs, maxCount int) *View {
	t.Helper()
	nProps := rng.Intn(maxProps) + 1
	props := make([]string, nProps)
	for i := range props {
		props[i] = "p" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	nSigs := rng.Intn(maxSigs) + 1
	var sigs []Signature
	for i := 0; i < nSigs; i++ {
		b := bitset.New(nProps)
		for j := 0; j < nProps; j++ {
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		sigs = append(sigs, Signature{Bits: b, Count: rng.Intn(maxCount) + 1})
	}
	v, err := New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// bruteBoth counts subjects having both columns by direct signature
// scan — the ground truth for the pair-count builds.
func bruteBoth(v *View, i, j int) int64 {
	var n int64
	for _, sg := range v.Signatures() {
		if sg.Bits.Test(i) && sg.Bits.Test(j) {
			n += int64(sg.Count)
		}
	}
	return n
}

// Both build strategies must agree with each other and with the brute
// force on arbitrary views, diagonal included.
func TestPairCountsBuildsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		v := randomView(t, rng, 12, 10, 1000)
		n := v.NumProperties()
		sparse := &PairCounts{v: v, c: make([]int64, n*n)}
		v.buildPairsSparse(sparse)
		maxCount := 0
		for _, sg := range v.Signatures() {
			if sg.Count > maxCount {
				maxCount = sg.Count
			}
		}
		dense := &PairCounts{v: v, c: make([]int64, n*n)}
		v.buildPairsDense(dense, maxCount)
		counts := v.PropertyCounts()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := bruteBoth(v, i, j)
				if sparse.Both(i, j) != want || dense.Both(i, j) != want {
					t.Fatalf("trial %d: Both(%d,%d): sparse=%d dense=%d want=%d",
						trial, i, j, sparse.Both(i, j), dense.Both(i, j), want)
				}
			}
			if sparse.Both(i, i) != counts[i] {
				t.Fatalf("diagonal (%d) = %d, want N_p = %d", i, sparse.Both(i, i), counts[i])
			}
		}
	}
}

// PairCounts must be memoized: one build, shared result, stable under
// concurrent first access (run under -race in CI).
func TestPairCountsMemoizedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := randomView(t, rng, 16, 20, 50)
	results := make([]*PairCounts, 16)
	done := make(chan int, len(results))
	for w := range results {
		go func(w int) {
			results[w] = v.PairCounts()
			done <- w
		}(w)
	}
	for range results {
		<-done
	}
	for w := 1; w < len(results); w++ {
		if results[w] != results[0] {
			t.Fatal("PairCounts not memoized: distinct aggregates returned")
		}
	}
	if i, ok := v.PairCounts().Column(v.Properties()[0]); !ok || i != 0 {
		t.Fatalf("Column(%q) = %d,%v", v.Properties()[0], i, ok)
	}
}

// benchView builds a deterministic view for the pair-count build
// crossover benchmark: given support density over nProps columns and
// Zipf-ish signature-set sizes.
func benchView(nProps, nSigs int, density float64, seed int64) *View {
	rng := rand.New(rand.NewSource(seed))
	props := make([]string, nProps)
	for i := range props {
		props[i] = "p" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
	}
	sigs := make([]Signature, 0, nSigs)
	for i := 0; i < nSigs; i++ {
		b := bitset.New(nProps)
		for j := 0; j < nProps; j++ {
			if rng.Float64() < density {
				b.Set(j)
			}
		}
		b.Set(i % nProps) // keep patterns distinct enough to survive merging
		sigs = append(sigs, Signature{Bits: b, Count: 1 + 100000/(i+1)})
	}
	v, err := New(props, sigs)
	if err != nil {
		panic(err)
	}
	return v
}

// BenchmarkPairCountsBuild forces each build strategy explicitly
// (bypassing the sync.Once memoization) across view shapes, locating
// the sparse/dense crossover recorded in EXPERIMENTS.md.
func BenchmarkPairCountsBuild(b *testing.B) {
	shapes := []struct {
		name          string
		nProps, nSigs int
		density       float64
	}{
		{"P8/L64/dense66", 8, 64, 0.66},
		{"P64/L64/dense66", 64, 64, 0.66},
		{"P256/L64/dense66", 256, 64, 0.66},
		{"P256/L64/sparse5", 256, 64, 0.05},
		{"P256/L1024/dense66", 256, 1024, 0.66},
	}
	for _, sh := range shapes {
		v := benchView(sh.nProps, sh.nSigs, sh.density, 1)
		maxCount := 0
		for _, sg := range v.Signatures() {
			if sg.Count > maxCount {
				maxCount = sg.Count
			}
		}
		n := v.NumProperties()
		b.Run(sh.name+"/sparse", func(b *testing.B) {
			b.ReportAllocs()
			pc := &PairCounts{v: v, c: make([]int64, n*n)}
			for i := 0; i < b.N; i++ {
				for j := range pc.c {
					pc.c[j] = 0
				}
				v.buildPairsSparse(pc)
			}
		})
		b.Run(sh.name+"/dense", func(b *testing.B) {
			b.ReportAllocs()
			pc := &PairCounts{v: v, c: make([]int64, n*n)}
			for i := 0; i < b.N; i++ {
				v.buildPairsDense(pc, maxCount)
			}
		})
	}
}
