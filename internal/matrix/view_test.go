package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/rdf"
)

func graphFixture() *rdf.Graph {
	g := rdf.NewGraph()
	add := func(s string, props ...string) {
		g.AddURI(s, rdf.TypeURI, "T")
		for _, p := range props {
			g.AddLiteral(s, p, "v")
		}
	}
	add("s1", "name", "birthDate")
	add("s2", "name", "birthDate")
	add("s3", "name")
	add("s4", "name", "birthDate", "deathDate")
	return g
}

func TestFromGraph(t *testing.T) {
	v := FromGraph(graphFixture(), Options{KeepSubjects: true})
	if v.NumSubjects() != 4 {
		t.Fatalf("subjects = %d", v.NumSubjects())
	}
	if v.NumProperties() != 3 { // type excluded
		t.Fatalf("properties = %v", v.Properties())
	}
	if v.NumSignatures() != 3 {
		t.Fatalf("signatures = %d: %s", v.NumSignatures(), v.Describe(10))
	}
	// Largest signature first: {name, birthDate} ×2.
	top := v.Signatures()[0]
	if top.Count != 2 || top.Bits.Count() != 2 {
		t.Fatalf("top signature %v ×%d", top.Bits, top.Count)
	}
	if len(top.Subjects) != 2 || top.Subjects[0] != "s1" || top.Subjects[1] != "s2" {
		t.Fatalf("top subjects = %v", top.Subjects)
	}
}

func TestIgnoreProperties(t *testing.T) {
	v := FromGraph(graphFixture(), Options{IgnoreProperties: []string{"deathDate"}})
	if v.NumProperties() != 2 {
		t.Fatalf("properties = %v", v.Properties())
	}
	// s4 collapses into the {name,birthDate} signature: now ×3.
	if v.NumSignatures() != 2 {
		t.Fatalf("signatures = %d", v.NumSignatures())
	}
	if v.Signatures()[0].Count != 3 {
		t.Fatalf("top count = %d", v.Signatures()[0].Count)
	}
}

func TestPropertyCountsAndOnes(t *testing.T) {
	v := FromGraph(graphFixture(), Options{})
	counts := v.PropertyCounts()
	byName := map[string]int64{}
	for i, p := range v.Properties() {
		byName[p] = counts[i]
	}
	if byName["name"] != 4 || byName["birthDate"] != 3 || byName["deathDate"] != 1 {
		t.Fatalf("counts = %v", byName)
	}
	if v.Ones() != 8 {
		t.Fatalf("Ones = %d, want 8", v.Ones())
	}
	if v.UsedProperties() != 3 {
		t.Fatalf("UsedProperties = %d", v.UsedProperties())
	}
}

func TestNewMergesDuplicates(t *testing.T) {
	props := []string{"a", "b"}
	s1 := Signature{Bits: bitset.FromIndices(2, 0), Count: 3}
	s2 := Signature{Bits: bitset.FromIndices(2, 0), Count: 2}
	s3 := Signature{Bits: bitset.FromIndices(2, 0, 1), Count: 1}
	v, err := New(props, []Signature{s1, s2, s3})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumSignatures() != 2 {
		t.Fatalf("signatures = %d", v.NumSignatures())
	}
	if v.Signatures()[0].Count != 5 {
		t.Fatalf("merged count = %d", v.Signatures()[0].Count)
	}
	if v.NumSubjects() != 6 {
		t.Fatalf("subjects = %d", v.NumSubjects())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a", "a"}, nil); err == nil {
		t.Fatal("duplicate property accepted")
	}
	if _, err := New([]string{"a"}, []Signature{{Bits: bitset.New(2), Count: 1}}); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if _, err := New([]string{"a"}, []Signature{{Bits: bitset.New(1), Count: 0}}); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestSubset(t *testing.T) {
	v := FromGraph(graphFixture(), Options{})
	sub := v.Subset([]int{0})
	if sub.NumSubjects() != v.Signatures()[0].Count {
		t.Fatalf("subset subjects = %d", sub.NumSubjects())
	}
	if sub.NumProperties() != v.NumProperties() {
		t.Fatal("subset changed columns")
	}
	if sub.UsedProperties() != 2 {
		t.Fatalf("subset used properties = %d", sub.UsedProperties())
	}
}

func TestSignatureOf(t *testing.T) {
	v := FromGraph(graphFixture(), Options{})
	for i, sg := range v.Signatures() {
		if got := v.SignatureOf(sg.Bits); got != i {
			t.Fatalf("SignatureOf(%v) = %d, want %d", sg.Bits, got, i)
		}
	}
	if got := v.SignatureOf(bitset.New(v.NumProperties())); got == -1 {
		// all-zero not present in fixture: expected -1; adjust check
		_ = got
	} else {
		t.Fatalf("SignatureOf(zero) = %d, want -1", got)
	}
}

// Property: signature set sizes always sum to the subject count, and
// Ones equals Σ support(μ)·count(μ).
func TestQuickViewInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProps := rng.Intn(6) + 1
		props := make([]string, nProps)
		for i := range props {
			props[i] = string(rune('a' + i))
		}
		var sigs []Signature
		for i := 0; i < rng.Intn(10)+1; i++ {
			b := bitset.New(nProps)
			for j := 0; j < nProps; j++ {
				if rng.Intn(2) == 1 {
					b.Set(j)
				}
			}
			sigs = append(sigs, Signature{Bits: b, Count: rng.Intn(50) + 1})
		}
		v, err := New(props, sigs)
		if err != nil {
			return false
		}
		sum, ones := 0, int64(0)
		for _, sg := range v.Signatures() {
			sum += sg.Count
			ones += int64(sg.Count) * int64(sg.Bits.Count())
		}
		if sum != v.NumSubjects() || ones != v.Ones() {
			return false
		}
		// PropertyCounts sums to Ones.
		var pc int64
		for _, c := range v.PropertyCounts() {
			pc += c
		}
		return pc == v.Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromGraph(b *testing.B) {
	g := rdf.NewGraph()
	rng := rand.New(rand.NewSource(1))
	props := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"}
	for i := 0; i < 5000; i++ {
		s := "s" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		g.AddURI(s, rdf.TypeURI, "T")
		for _, p := range props {
			if rng.Intn(2) == 1 {
				g.AddLiteral(s, p, "v")
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromGraph(g, Options{})
	}
}
