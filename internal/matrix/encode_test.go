package matrix

import (
	"bytes"
	"testing"

	"repro/internal/rdf"
)

func encodeTestGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	for _, line := range []string{
		"<s1> <p1> <o1> .",
		"<s1> <p2> \"v\" .",
		"<s2> <p1> <o1> .",
		"<s3> <p2> <o2> .",
		"<s3> <p3> <o3> .",
		"<s4> <p1> <o4> .",
	} {
		tr, ok, err := rdf.ParseNTriplesLine(line, 1)
		if err != nil || !ok {
			t.Fatalf("parse %q: %v", line, err)
		}
		g.Add(tr)
	}
	return g
}

func TestViewEncodeRoundTrip(t *testing.T) {
	for _, keepSubjects := range []bool{false, true} {
		v := FromGraph(encodeTestGraph(t), Options{KeepSubjects: keepSubjects})
		enc := v.AppendBinary(nil)
		got, err := DecodeView(enc)
		if err != nil {
			t.Fatalf("decode (subjects=%v): %v", keepSubjects, err)
		}
		assertViewsEqual(t, got, v)
		if !bytes.Equal(got.AppendBinary(nil), enc) {
			t.Fatalf("re-encoding is not canonical (subjects=%v)", keepSubjects)
		}
	}
}

// TestViewEncodingCanonical: the encoding is a function of the
// signature multiset, not of construction order — the property the
// checkpoint integrity pin and the crash tests rely on.
func TestViewEncodingCanonical(t *testing.T) {
	v1 := FromGraph(encodeTestGraph(t), Options{})
	// Same triples, reversed insertion order.
	g := rdf.NewGraph()
	lines := []string{
		"<s4> <p1> <o4> .",
		"<s3> <p3> <o3> .",
		"<s3> <p2> <o2> .",
		"<s2> <p1> <o1> .",
		"<s1> <p2> \"v\" .",
		"<s1> <p1> <o1> .",
	}
	for _, line := range lines {
		tr, ok, err := rdf.ParseNTriplesLine(line, 1)
		if err != nil || !ok {
			t.Fatalf("parse %q: %v", line, err)
		}
		g.Add(tr)
	}
	v2 := FromGraph(g, Options{})
	if !bytes.Equal(v1.AppendBinary(nil), v2.AppendBinary(nil)) {
		t.Fatalf("encoding depends on construction order:\n%s\nvs\n%s", v1, v2)
	}
}

func TestDecodeViewRejectsDamage(t *testing.T) {
	v := FromGraph(encodeTestGraph(t), Options{})
	enc := v.AppendBinary(nil)

	if _, err := DecodeView(append(enc[:len(enc):len(enc)], 9)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeView(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if _, err := DecodeView([]byte{99}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := DecodeView(nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
}

func assertViewsEqual(t *testing.T, got, want *View) {
	t.Helper()
	if got.NumSubjects() != want.NumSubjects() || got.NumSignatures() != want.NumSignatures() {
		t.Fatalf("shape: %d subjects/%d sigs, want %d/%d",
			got.NumSubjects(), got.NumSignatures(), want.NumSubjects(), want.NumSignatures())
	}
	gp, wp := got.Properties(), want.Properties()
	if len(gp) != len(wp) {
		t.Fatalf("properties %v, want %v", gp, wp)
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("property[%d] = %q, want %q", i, gp[i], wp[i])
		}
	}
	gs, ws := got.Signatures(), want.Signatures()
	for i := range gs {
		if gs[i].Bits.String() != ws[i].Bits.String() || gs[i].Count != ws[i].Count {
			t.Fatalf("signature %d: %s×%d, want %s×%d", i, gs[i].Bits, gs[i].Count, ws[i].Bits, ws[i].Count)
		}
		if len(gs[i].Subjects) != len(ws[i].Subjects) {
			t.Fatalf("signature %d subjects: %v, want %v", i, gs[i].Subjects, ws[i].Subjects)
		}
		for j := range gs[i].Subjects {
			if gs[i].Subjects[j] != ws[i].Subjects[j] {
				t.Fatalf("signature %d subject %d: %q, want %q", i, j, gs[i].Subjects[j], ws[i].Subjects[j])
			}
		}
	}
}
