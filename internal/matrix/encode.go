package matrix

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitset"
)

// Binary serialization of signature views, used by the durability layer
// (internal/wal) to embed the signature sets in shard checkpoints. The
// encoding is canonical: a view's signature order is its canonical sort
// (decreasing Count, bit-pattern tie-break — a total order over
// distinct signatures), so two views of the same dataset, however they
// were built (FromGraph, incremental snapshot, recovery replay), encode
// to identical bytes. Recovery relies on that to pin a rebuilt view
// bit-identical to the checkpointed one with a single byte comparison.

// viewEncodingVersion guards the layout; bump on any format change so a
// stale checkpoint fails decoding loudly.
const viewEncodingVersion = 1

// AppendBinary appends a canonical encoding of the view to dst and
// returns the extended slice: version, property names, then each
// signature as its support column indices (delta-coded), multiplicity
// and optional sorted subject list.
func (v *View) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, viewEncodingVersion)
	dst = binary.AppendUvarint(dst, uint64(len(v.props)))
	for _, p := range v.props {
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		dst = append(dst, p...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(v.sigs)))
	var idx []int
	for _, sg := range v.sigs {
		idx = sg.Bits.AppendIndices(idx[:0])
		dst = binary.AppendUvarint(dst, uint64(len(idx)))
		prev := 0
		for _, i := range idx {
			dst = binary.AppendUvarint(dst, uint64(i-prev))
			prev = i
		}
		dst = binary.AppendUvarint(dst, uint64(sg.Count))
		if sg.Subjects == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			for _, s := range sg.Subjects {
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
		}
	}
	return dst
}

// DecodeView decodes an AppendBinary encoding back into a view,
// validating structure (distinct well-formed signatures, subject lists
// matching their counts) via NewDistinct.
func DecodeView(data []byte) (*View, error) {
	r := viewReader{data: data}
	if ver := r.uvarint(); r.err == nil && ver != viewEncodingVersion {
		return nil, fmt.Errorf("matrix: view encoding version %d (want %d)", ver, viewEncodingVersion)
	}
	nProps := int(r.uvarint())
	if r.err == nil && nProps > len(data) {
		return nil, fmt.Errorf("matrix: view claims %d properties in %d bytes", nProps, len(data))
	}
	var props []string
	if nProps > 0 {
		props = make([]string, nProps)
		for i := range props {
			props[i] = r.str()
		}
	}
	nSigs := int(r.uvarint())
	if r.err == nil && nSigs > len(data) {
		return nil, fmt.Errorf("matrix: view claims %d signatures in %d bytes", nSigs, len(data))
	}
	sigs := make([]Signature, 0, nSigs)
	var idx []int
	for s := 0; s < nSigs && r.err == nil; s++ {
		nIdx := int(r.uvarint())
		if r.err == nil && nIdx > r.rest() { // each index costs ≥ 1 byte
			return nil, fmt.Errorf("matrix: signature %d claims %d columns in %d bytes", s, nIdx, r.rest())
		}
		idx = idx[:0]
		col := 0
		for k := 0; k < nIdx && r.err == nil; k++ {
			col += int(r.uvarint())
			if col >= nProps {
				return nil, fmt.Errorf("matrix: signature %d: column %d out of %d", s, col, nProps)
			}
			if k > 0 && col <= idx[len(idx)-1] {
				return nil, fmt.Errorf("matrix: signature %d: non-ascending column %d", s, col)
			}
			idx = append(idx, col)
		}
		// The container representation is chosen per signature by the
		// active policy/cost model — a checkpoint written under one
		// policy decodes identically under any other.
		bits := bitset.FromSortedIndices(nProps, idx)
		count := int(r.uvarint())
		var subjects []string
		switch r.byte() {
		case 0:
		case 1:
			if count > r.rest() { // each subject costs ≥ 1 length byte
				return nil, fmt.Errorf("matrix: signature %d claims %d subjects in %d bytes", s, count, r.rest())
			}
			subjects = make([]string, count)
			for i := range subjects {
				subjects[i] = r.str()
			}
		default:
			if r.err == nil {
				return nil, fmt.Errorf("matrix: signature %d: bad subjects flag", s)
			}
		}
		sigs = append(sigs, Signature{Bits: bits, Count: count, Subjects: subjects})
	}
	if r.err != nil {
		return nil, fmt.Errorf("matrix: view decode: %w", r.err)
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("matrix: view decode: %d trailing bytes", r.rest())
	}
	return NewDistinct(props, sigs)
}

// viewReader is a cursor over an encoding, accumulating the first error.
type viewReader struct {
	data []byte
	off  int
	err  error
}

func (r *viewReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *viewReader) str() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || n > len(r.data)-r.off {
		r.err = fmt.Errorf("truncated string (%d bytes) at offset %d", n, r.off)
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *viewReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.err = fmt.Errorf("truncated byte at offset %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *viewReader) rest() int { return len(r.data) - r.off }
