// Package matrix implements the property-structure view M(D) of an RDF
// graph (Section 2.1 of the paper): the |S(D)|×|P(D)| 0/1 matrix
// recording which subject has which property, compressed into signature
// sets (Definition 4.1). The signature representation is the paper's
// key scalability lever: DBpedia Persons (790,703 subjects) compresses
// to 64 signatures.
package matrix

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"repro/internal/bitset"
	"repro/internal/rdf"
	"repro/internal/term"
)

// Signature is a distinct row pattern of M(D) together with the set of
// subjects exhibiting it (a "signature set").
type Signature struct {
	// Bits has one bit per property column (view order).
	Bits bitset.Set
	// Count is the signature set size (number of subjects).
	Count int
	// Subjects holds the subject URIs in this signature set, sorted.
	// May be nil when a view is built synthetically from counts alone.
	Subjects []string
}

// Support returns the property column indices set in the signature.
func (sg Signature) Support() []int { return sg.Bits.Indices() }

// View is the signature-compressed property-structure view of a
// dataset. Construct with FromGraph or New. Signatures are ordered by
// decreasing Count (ties broken by bit pattern) as in the paper's
// figures.
type View struct {
	props     []string
	propIndex map[string]int
	sigs      []Signature
	subjects  int

	// Lazily memoized aggregates. Views are immutable after
	// construction and evaluated concurrently by the parallel
	// refinement engine, so the caches are guarded by sync.Once.
	onesOnce  sync.Once
	ones      int64
	pcOnce    sync.Once
	pcCache   []int64
	pairOnce  sync.Once
	pairCache *PairCounts
}

// Options configures view construction.
type Options struct {
	// IgnoreProperties are predicate URIs excluded from the view's
	// columns (e.g. rdf:type, which the paper excludes from the
	// experiments' property counts, and the RDF-syntax properties
	// excluded in Section 7.4).
	IgnoreProperties []string
	// KeepSubjects controls whether subject URIs are retained per
	// signature (needed to materialize partitions back into RDF graphs).
	KeepSubjects bool
}

// FromGraph builds the view of g. By default rdf:type is excluded from
// the property columns, matching the paper's dataset descriptions
// ("8 properties (excluding the type property)").
//
// Construction runs on interned term IDs: one dictionary pass maps the
// graph's predicate IDs to sorted-by-name columns, and each subject's
// signature bits are set by integer column lookups — no URI is hashed
// or re-materialized per cell. Subject strings only materialize when
// KeepSubjects asks for them.
func FromGraph(g *rdf.Graph, opts Options) *View {
	dict := g.Dict()
	ignore := map[term.ID]bool{}
	for _, p := range append([]string{rdf.TypeURI}, opts.IgnoreProperties...) {
		if id, ok := dict.Lookup(p); ok {
			ignore[id] = true
		}
	}
	// The single dictionary pass: materialize each column name once and
	// order columns by name, as the string implementation did.
	type pcol struct {
		name string
		id   term.ID
	}
	cols := make([]pcol, 0, g.PropertyCount())
	for _, id := range g.PropertyIDs() {
		if !ignore[id] {
			cols = append(cols, pcol{name: dict.String(id), id: id})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	var props []string
	if len(cols) > 0 {
		props = make([]string, len(cols))
	}
	propIndex := make(map[string]int, len(cols))
	colOf := make(map[term.ID]int, len(cols))
	for i, c := range cols {
		props[i] = c.name
		propIndex[c.name] = i
		colOf[c.id] = i
	}

	type group struct {
		bits     bitset.Set
		subjects []term.ID
	}
	groups := map[string]*group{}
	nSubjects := 0
	// One scratch signature and key buffer serve the whole grouping
	// loop: the map is probed without materializing a key string, and
	// the bits are only cloned for a pattern never seen before.
	scratch := bitset.New(len(props))
	var keyBuf []byte
	setBit := func(tr rdf.IDTriple) {
		if i, ok := colOf[tr.P]; ok {
			scratch.Set(i)
		}
	}
	for _, s := range g.SubjectIDs() {
		scratch.Reset()
		g.EachSubjectTripleID(s, setBit)
		// Subjects whose only triples are ignored properties still count
		// as rows (they exist in S(D)); their signature is all-zero.
		nSubjects++
		keyBuf = scratch.AppendKey(keyBuf[:0])
		gr := groups[string(keyBuf)]
		if gr == nil {
			gr = &group{bits: scratch.Clone()}
			groups[string(keyBuf)] = gr
		}
		gr.subjects = append(gr.subjects, s)
	}

	sigs := make([]Signature, 0, len(groups))
	for _, gr := range groups {
		sg := Signature{Bits: gr.bits, Count: len(gr.subjects)}
		if opts.KeepSubjects {
			subs := make([]string, len(gr.subjects))
			for i, id := range gr.subjects {
				subs[i] = dict.String(id)
			}
			sort.Strings(subs)
			sg.Subjects = subs
		}
		sigs = append(sigs, sg)
	}
	v := &View{props: props, propIndex: propIndex, sigs: sigs, subjects: nSubjects}
	v.sortSigs()
	return v
}

// New builds a view directly from property names and signatures — used
// by generators and by partition operations. Signature bit sets must
// have capacity len(props). Counts must be positive.
func New(props []string, sigs []Signature) (*View, error) {
	propIndex := make(map[string]int, len(props))
	for i, p := range props {
		if _, dup := propIndex[p]; dup {
			return nil, fmt.Errorf("matrix: duplicate property %q", p)
		}
		propIndex[p] = i
	}
	merged := map[string]*Signature{}
	order := []string{}
	total := 0
	for _, sg := range sigs {
		if sg.Bits.Len() != len(props) {
			return nil, fmt.Errorf("matrix: signature capacity %d != %d properties", sg.Bits.Len(), len(props))
		}
		if sg.Count <= 0 {
			return nil, fmt.Errorf("matrix: non-positive signature count %d", sg.Count)
		}
		if sg.Subjects != nil && len(sg.Subjects) != sg.Count {
			return nil, fmt.Errorf("matrix: %d subjects but count %d", len(sg.Subjects), sg.Count)
		}
		total += sg.Count
		k := sg.Bits.Key()
		if prev, ok := merged[k]; ok {
			prev.Count += sg.Count
			prev.Subjects = append(prev.Subjects, sg.Subjects...)
		} else {
			cp := Signature{Bits: sg.Bits.Clone(), Count: sg.Count}
			cp.Subjects = append(cp.Subjects, sg.Subjects...)
			merged[k] = &cp
			order = append(order, k)
		}
	}
	out := make([]Signature, 0, len(merged))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	v := &View{props: props, propIndex: propIndex, sigs: out, subjects: total}
	v.sortSigs()
	return v, nil
}

// NewDistinct builds a view from signatures known to have pairwise
// distinct bit patterns — the invariant the incremental engine
// maintains per epoch — skipping New's merge pass and key
// materialization, so snapshot construction is O(signatures · |P|/64).
// The signature structs (bit sets and subject slices included) are
// taken over by the view, not cloned; callers must hand over fresh
// copies and never mutate them afterwards.
func NewDistinct(props []string, sigs []Signature) (*View, error) {
	propIndex := make(map[string]int, len(props))
	for i, p := range props {
		if _, dup := propIndex[p]; dup {
			return nil, fmt.Errorf("matrix: duplicate property %q", p)
		}
		propIndex[p] = i
	}
	total := 0
	for _, sg := range sigs {
		if sg.Bits.Len() != len(props) {
			return nil, fmt.Errorf("matrix: signature capacity %d != %d properties", sg.Bits.Len(), len(props))
		}
		if sg.Count <= 0 {
			return nil, fmt.Errorf("matrix: non-positive signature count %d", sg.Count)
		}
		if sg.Subjects != nil && len(sg.Subjects) != sg.Count {
			return nil, fmt.Errorf("matrix: %d subjects but count %d", len(sg.Subjects), sg.Count)
		}
		total += sg.Count
	}
	v := &View{props: props, propIndex: propIndex, sigs: sigs, subjects: total}
	v.sortSigs()
	return v, nil
}

// MergeViews merges the views of subject-disjoint datasets at the
// signature level: the property columns are the sorted union of the
// inputs' columns, signatures with the same remapped bit pattern merge
// by summing their multiplicities, and KeepSubjects lists concatenate
// (re-sorted per merged signature). Because every subject's signature
// lives wholly in one input, the result is bit-identical to FromGraph
// on the union triple set — same columns, same signature order, same
// counts, same subject lists — so refinement and warm-start run
// unchanged on merged snapshots. This is the associative-array merge
// the sharded live engine (internal/incr) relies on.
//
// A single input is returned as-is (the degenerate merge). Inputs must
// either all carry subject lists or none (matching construction from a
// shared Options); a mixed merge fails NewDistinct's count validation.
func MergeViews(views ...*View) (*View, error) {
	if len(views) == 1 {
		return views[0], nil
	}
	nameSet := map[string]struct{}{}
	for _, v := range views {
		for _, p := range v.props {
			nameSet[p] = struct{}{}
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	nameIdx := make(map[string]int, len(names))
	for i, n := range names {
		nameIdx[n] = i
	}

	// Merge signatures by remapped bit pattern. Multiplicities add and
	// subject lists concatenate; both are exact under subject-disjoint
	// inputs.
	type acc struct {
		bits     bitset.Set
		count    int
		subjects []string
		hasSubs  bool
	}
	merged := map[string]*acc{}
	var order []string // deterministic iteration for reproducible builds
	var keyBuf []byte
	for _, v := range views {
		remap := make([]int, len(v.props))
		for i, p := range v.props {
			remap[i] = nameIdx[p]
		}
		for _, sg := range v.sigs {
			bits := bitset.New(len(names))
			sg.Bits.ForEach(func(i int) { bits.Set(remap[i]) })
			keyBuf = bits.AppendKey(keyBuf[:0])
			a := merged[string(keyBuf)]
			if a == nil {
				a = &acc{bits: bits}
				merged[string(keyBuf)] = a
				order = append(order, string(keyBuf))
			}
			a.count += sg.Count
			if sg.Subjects != nil {
				a.hasSubs = true
				a.subjects = append(a.subjects, sg.Subjects...)
			}
		}
	}
	sigs := make([]Signature, 0, len(merged))
	for _, k := range order {
		a := merged[k]
		sg := Signature{Bits: a.bits, Count: a.count}
		if a.hasSubs {
			sort.Strings(a.subjects)
			sg.Subjects = a.subjects
		}
		sigs = append(sigs, sg)
	}
	return NewDistinct(names, sigs)
}

func (v *View) sortSigs() {
	sort.Slice(v.sigs, func(i, j int) bool {
		if v.sigs[i].Count != v.sigs[j].Count {
			return v.sigs[i].Count > v.sigs[j].Count
		}
		return v.sigs[i].Bits.String() > v.sigs[j].Bits.String()
	})
}

// Properties returns the property columns in view order.
func (v *View) Properties() []string { return v.props }

// PropertyIndex returns the column of property p and whether it exists.
func (v *View) PropertyIndex(p string) (int, bool) {
	i, ok := v.propIndex[p]
	return i, ok
}

// Signatures returns the signature sets in decreasing size order.
func (v *View) Signatures() []Signature { return v.sigs }

// NumSignatures returns |Λ(D)|.
func (v *View) NumSignatures() int { return len(v.sigs) }

// NumSubjects returns |S(D)|.
func (v *View) NumSubjects() int { return v.subjects }

// NumProperties returns the number of property columns.
func (v *View) NumProperties() int { return len(v.props) }

// PropertyCounts returns N_p for each column: the number of subjects
// having each property. The slice is computed once and cached; callers
// must treat it as read-only.
func (v *View) PropertyCounts() []int64 {
	v.pcOnce.Do(func() {
		counts := make([]int64, len(v.props))
		for _, sg := range v.sigs {
			c := int64(sg.Count)
			sg.Bits.ForEach(func(i int) { counts[i] += c })
		}
		v.pcCache = counts
	})
	return v.pcCache
}

// UsedProperties returns the number of columns with at least one
// subject, i.e. |P(D)| of the sub-dataset the view represents. For a
// full dataset this equals NumProperties; for a partition element it
// can be smaller (the paper's U_{i,p} variables).
func (v *View) UsedProperties() int {
	used := 0
	for _, c := range v.PropertyCounts() {
		if c > 0 {
			used++
		}
	}
	return used
}

// Ones returns ΣspM(D)sp: the total number of 1 entries. The value is
// computed once and cached.
func (v *View) Ones() int64 {
	v.onesOnce.Do(func() {
		var total int64
		for _, sg := range v.sigs {
			total += int64(sg.Bits.Count()) * int64(sg.Count)
		}
		v.ones = total
	})
	return v.ones
}

// PairCounts is the pairwise co-occurrence aggregate of a view: an
// associative-array style |P|×|P| matrix whose (i, j) entry is the
// number of subjects having both property columns i and j, with the
// per-property counts N_p on the diagonal. Together with the N_p vector
// and |S| it determines every two-variable measure of the rule language
// in closed form — the compiled σ-evaluators in internal/rules read
// nothing else.
type PairCounts struct {
	v *View
	c []int64 // |P|×|P| row-major, symmetric
}

// NumProperties returns the number of property columns.
func (pc *PairCounts) NumProperties() int { return len(pc.v.props) }

// Both returns the number of subjects having both column i and column j.
func (pc *PairCounts) Both(i, j int) int64 { return pc.c[i*len(pc.v.props)+j] }

// Column resolves a property name to its column index, implementing the
// name-keyed half of the rules-layer PairCounts contract.
func (pc *PairCounts) Column(p string) (int, bool) { return pc.v.PropertyIndex(p) }

// PairCounts returns the view's pairwise co-occurrence aggregate,
// computed once and cached (sync.Once-guarded like Ones and
// PropertyCounts, so concurrent evaluators share one build).
//
// Two build strategies produce identical matrices and the cheaper one
// is picked by a cost model: the sparse path makes one pass over the
// signatures accumulating every support pair (O(Σ|supp|²)), while the
// dense path transposes the view into per-column signature-incidence
// bit vectors plus count bit-planes and fills each entry word-parallel
// with bitset.AndCount3 (O(|P|²·log(max count)·|Λ|/64)). The measured
// crossover is recorded in EXPERIMENTS.md.
func (v *View) PairCounts() *PairCounts {
	v.pairOnce.Do(func() {
		n := len(v.props)
		pc := &PairCounts{v: v, c: make([]int64, n*n)}
		var sparseOps, maxCount int64
		for _, sg := range v.sigs {
			s := int64(sg.Bits.Count())
			sparseOps += s * s
			if int64(sg.Count) > maxCount {
				maxCount = int64(sg.Count)
			}
		}
		planes := int64(bits.Len64(uint64(maxCount)))
		words := int64((len(v.sigs) + 63) / 64)
		// Calibrated on the BenchmarkPairCountsBuild shapes (see
		// EXPERIMENTS.md): a sparse support-pair step retires in ~0.8 ns,
		// a dense AndCount3 probe costs ~4 ns fixed plus ~1.1 ns per
		// signature word — so the dense path only wins once the
		// signature count is large enough to amortize the per-pair
		// overhead (hundreds of signatures for paper-shaped supports).
		denseCost := int64(n) * int64(n+1) / 2 * planes * (40 + 11*words)
		if n > 0 && denseCost < 8*sparseOps {
			v.buildPairsDense(pc, int(maxCount))
		} else {
			v.buildPairsSparse(pc)
		}
		v.pairCache = pc
	})
	return v.pairCache
}

// buildPairsSparse accumulates support pairs in one pass over the
// signatures.
func (v *View) buildPairsSparse(pc *PairCounts) {
	n := len(v.props)
	var idx []int
	for _, sg := range v.sigs {
		idx = sg.Bits.AppendIndices(idx[:0])
		c := int64(sg.Count)
		for _, i := range idx {
			row := pc.c[i*n : (i+1)*n]
			for _, j := range idx {
				row[j] += c
			}
		}
	}
}

// buildPairsDense fills the matrix from per-column signature-incidence
// vectors and count bit-planes: entry (i, j) is
// Σ_b 2^b·|{μ : i,j ∈ supp(μ) ∧ bit b of Count(μ)}|, computed with
// word-parallel three-way intersection popcounts.
func (v *View) buildPairsDense(pc *PairCounts, maxCount int) {
	n := len(v.props)
	nSigs := len(v.sigs)
	colSigs := make([]bitset.Set, n)
	for i := range colSigs {
		colSigs[i] = bitset.New(nSigs)
	}
	planes := make([]bitset.Set, bits.Len64(uint64(maxCount)))
	for b := range planes {
		planes[b] = bitset.New(nSigs)
	}
	for mu, sg := range v.sigs {
		sg.Bits.ForEach(func(i int) { colSigs[i].Set(mu) })
		for b := range planes {
			if sg.Count>>uint(b)&1 == 1 {
				planes[b].Set(mu)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var tot int64
			for b, plane := range planes {
				tot += int64(bitset.AndCount3(colSigs[i], colSigs[j], plane)) << uint(b)
			}
			pc.c[i*n+j] = tot
			pc.c[j*n+i] = tot
		}
	}
}

// Subset returns a new view containing only the signatures at the given
// indices (into Signatures()). The property columns are preserved, so
// subset views of the same parent are column-compatible; UsedProperties
// reflects the subset. Passing indices in ascending order preserves the
// parent's size ordering (the common case — assignment group lists are
// built in ascending order); no re-sort is performed, keeping Subset
// cheap enough for inner-loop use by the local-search engine. Panics on
// out-of-range indices.
func (v *View) Subset(sigIdx []int) *View {
	sigs := make([]Signature, 0, len(sigIdx))
	total := 0
	for _, i := range sigIdx {
		sigs = append(sigs, v.sigs[i])
		total += v.sigs[i].Count
	}
	return &View{props: v.props, propIndex: v.propIndex, sigs: sigs, subjects: total}
}

// SignatureOf returns the index (into Signatures()) of the signature
// with the given bit pattern, or -1.
func (v *View) SignatureOf(bits bitset.Set) int {
	for i, sg := range v.sigs {
		if sg.Bits.Equal(bits) {
			return i
		}
	}
	return -1
}

// String summarizes the view.
func (v *View) String() string {
	return fmt.Sprintf("view{%d subjects, %d properties, %d signatures}",
		v.subjects, len(v.props), len(v.sigs))
}

// Describe returns a multi-line human-readable summary listing the
// largest signature sets, used in figure reproductions.
func (v *View) Describe(maxSigs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d subjects, %d properties, %d signature sets\n",
		v.subjects, len(v.props), len(v.sigs))
	for i, sg := range v.sigs {
		if i >= maxSigs {
			fmt.Fprintf(&b, "  … %d more signature sets\n", len(v.sigs)-maxSigs)
			break
		}
		fmt.Fprintf(&b, "  %s  ×%d\n", sg.Bits.String(), sg.Count)
	}
	return b.String()
}
