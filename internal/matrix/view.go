// Package matrix implements the property-structure view M(D) of an RDF
// graph (Section 2.1 of the paper): the |S(D)|×|P(D)| 0/1 matrix
// recording which subject has which property, compressed into signature
// sets (Definition 4.1). The signature representation is the paper's
// key scalability lever: DBpedia Persons (790,703 subjects) compresses
// to 64 signatures.
package matrix

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/rdf"
	"repro/internal/term"
)

// Signature is a distinct row pattern of M(D) together with the set of
// subjects exhibiting it (a "signature set").
type Signature struct {
	// Bits has one bit per property column (view order). The container
	// representation (dense words or compressed sorted indices) is an
	// implementation detail chosen per signature by the bitset cost
	// model; every observable — key, iteration order, String — is
	// identical across representations.
	Bits bitset.Bits
	// Count is the signature set size (number of subjects).
	Count int
	// Subjects holds the subject URIs in this signature set, sorted.
	// May be nil when a view is built synthetically from counts alone.
	Subjects []string
}

// Support returns the property column indices set in the signature.
func (sg Signature) Support() []int { return sg.Bits.Indices() }

// View is the signature-compressed property-structure view of a
// dataset. Construct with FromGraph or New. Signatures are ordered by
// decreasing Count (ties broken by bit pattern) as in the paper's
// figures.
type View struct {
	props     []string
	propIndex map[string]int
	sigs      []Signature
	subjects  int

	// Lazily memoized aggregates. Views are immutable after
	// construction and evaluated concurrently by the parallel
	// refinement engine, so the caches are guarded by sync.Once.
	onesOnce  sync.Once
	ones      int64
	pcOnce    sync.Once
	pcCache   []int64
	pairOnce  sync.Once
	pairCache *PairCounts
	// pairBytes is the built aggregate's footprint, published at the end
	// of the pairOnce build. Storage accounting reads it instead of
	// pairCache so it never races an in-flight build.
	pairBytes atomic.Int64
}

// Options configures view construction.
type Options struct {
	// IgnoreProperties are predicate URIs excluded from the view's
	// columns (e.g. rdf:type, which the paper excludes from the
	// experiments' property counts, and the RDF-syntax properties
	// excluded in Section 7.4).
	IgnoreProperties []string
	// KeepSubjects controls whether subject URIs are retained per
	// signature (needed to materialize partitions back into RDF graphs).
	KeepSubjects bool
}

// FromGraph builds the view of g. By default rdf:type is excluded from
// the property columns, matching the paper's dataset descriptions
// ("8 properties (excluding the type property)").
//
// Construction runs on interned term IDs: one dictionary pass maps the
// graph's predicate IDs to sorted-by-name columns, and each subject's
// signature bits are set by integer column lookups — no URI is hashed
// or re-materialized per cell. Subject strings only materialize when
// KeepSubjects asks for them.
func FromGraph(g *rdf.Graph, opts Options) *View {
	dict := g.Dict()
	ignore := map[term.ID]bool{}
	for _, p := range append([]string{rdf.TypeURI}, opts.IgnoreProperties...) {
		if id, ok := dict.Lookup(p); ok {
			ignore[id] = true
		}
	}
	// The single dictionary pass: materialize each column name once and
	// order columns by name, as the string implementation did.
	type pcol struct {
		name string
		id   term.ID
	}
	cols := make([]pcol, 0, g.PropertyCount())
	for _, id := range g.PropertyIDs() {
		if !ignore[id] {
			cols = append(cols, pcol{name: dict.String(id), id: id})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	var props []string
	if len(cols) > 0 {
		props = make([]string, len(cols))
	}
	propIndex := make(map[string]int, len(cols))
	colOf := make(map[term.ID]int, len(cols))
	for i, c := range cols {
		props[i] = c.name
		propIndex[c.name] = i
		colOf[c.id] = i
	}

	type group struct {
		bits     bitset.Bits
		subjects []term.ID
	}
	groups := map[string]*group{}
	nSubjects := 0
	// One scratch signature and key buffer serve the whole grouping
	// loop: the map is probed without materializing a key string, and
	// the bits are only compressed into a retained container for a
	// pattern never seen before. On wide schemas the retained form is
	// the sorted-index container, so live memory tracks Σ|supp|, not
	// |Λ|·|P|/8.
	scratch := bitset.New(len(props))
	var keyBuf []byte
	setBit := func(tr rdf.IDTriple) {
		if i, ok := colOf[tr.P]; ok {
			scratch.Set(i)
		}
	}
	for _, s := range g.SubjectIDs() {
		scratch.Reset()
		g.EachSubjectTripleID(s, setBit)
		// Subjects whose only triples are ignored properties still count
		// as rows (they exist in S(D)); their signature is all-zero.
		nSubjects++
		keyBuf = scratch.AppendKey(keyBuf[:0])
		gr := groups[string(keyBuf)]
		if gr == nil {
			gr = &group{bits: bitset.Compress(scratch)}
			groups[string(keyBuf)] = gr
		}
		gr.subjects = append(gr.subjects, s)
	}

	sigs := make([]Signature, 0, len(groups))
	for _, gr := range groups {
		sg := Signature{Bits: gr.bits, Count: len(gr.subjects)}
		if opts.KeepSubjects {
			subs := make([]string, len(gr.subjects))
			for i, id := range gr.subjects {
				subs[i] = dict.String(id)
			}
			sort.Strings(subs)
			sg.Subjects = subs
		}
		sigs = append(sigs, sg)
	}
	v := &View{props: props, propIndex: propIndex, sigs: sigs, subjects: nSubjects}
	v.sortSigs()
	return v
}

// New builds a view directly from property names and signatures — used
// by generators and by partition operations. Signature bit sets must
// have capacity len(props). Counts must be positive.
func New(props []string, sigs []Signature) (*View, error) {
	propIndex := make(map[string]int, len(props))
	for i, p := range props {
		if _, dup := propIndex[p]; dup {
			return nil, fmt.Errorf("matrix: duplicate property %q", p)
		}
		propIndex[p] = i
	}
	merged := map[string]*Signature{}
	order := []string{}
	total := 0
	for _, sg := range sigs {
		if sg.Bits == nil {
			return nil, fmt.Errorf("matrix: nil signature bits")
		}
		if sg.Bits.Len() != len(props) {
			return nil, fmt.Errorf("matrix: signature capacity %d != %d properties", sg.Bits.Len(), len(props))
		}
		if sg.Count <= 0 {
			return nil, fmt.Errorf("matrix: non-positive signature count %d", sg.Count)
		}
		if sg.Subjects != nil && len(sg.Subjects) != sg.Count {
			return nil, fmt.Errorf("matrix: %d subjects but count %d", len(sg.Subjects), sg.Count)
		}
		total += sg.Count
		// The canonical key is representation-independent, so inputs
		// mixing dense and compressed containers for the same pattern
		// merge correctly.
		k := sg.Bits.Key()
		if prev, ok := merged[k]; ok {
			prev.Count += sg.Count
			prev.Subjects = append(prev.Subjects, sg.Subjects...)
		} else {
			cp := Signature{Bits: bitset.CloneBits(sg.Bits), Count: sg.Count}
			cp.Subjects = append(cp.Subjects, sg.Subjects...)
			merged[k] = &cp
			order = append(order, k)
		}
	}
	out := make([]Signature, 0, len(merged))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	v := &View{props: props, propIndex: propIndex, sigs: out, subjects: total}
	v.sortSigs()
	return v, nil
}

// NewDistinct builds a view from signatures known to have pairwise
// distinct bit patterns — the invariant the incremental engine
// maintains per epoch — skipping New's merge pass and key
// materialization, so snapshot construction is O(signatures · |P|/64).
// The signature structs (bit sets and subject slices included) are
// taken over by the view, not cloned; callers must hand over fresh
// copies and never mutate them afterwards.
func NewDistinct(props []string, sigs []Signature) (*View, error) {
	propIndex := make(map[string]int, len(props))
	for i, p := range props {
		if _, dup := propIndex[p]; dup {
			return nil, fmt.Errorf("matrix: duplicate property %q", p)
		}
		propIndex[p] = i
	}
	total := 0
	for _, sg := range sigs {
		if sg.Bits == nil {
			return nil, fmt.Errorf("matrix: nil signature bits")
		}
		if sg.Bits.Len() != len(props) {
			return nil, fmt.Errorf("matrix: signature capacity %d != %d properties", sg.Bits.Len(), len(props))
		}
		if sg.Count <= 0 {
			return nil, fmt.Errorf("matrix: non-positive signature count %d", sg.Count)
		}
		if sg.Subjects != nil && len(sg.Subjects) != sg.Count {
			return nil, fmt.Errorf("matrix: %d subjects but count %d", len(sg.Subjects), sg.Count)
		}
		total += sg.Count
	}
	v := &View{props: props, propIndex: propIndex, sigs: sigs, subjects: total}
	v.sortSigs()
	return v, nil
}

// MergeViews merges the views of subject-disjoint datasets at the
// signature level: the property columns are the sorted union of the
// inputs' columns, signatures with the same remapped bit pattern merge
// by summing their multiplicities, and KeepSubjects lists concatenate
// (re-sorted per merged signature). Because every subject's signature
// lives wholly in one input, the result is bit-identical to FromGraph
// on the union triple set — same columns, same signature order, same
// counts, same subject lists — so refinement and warm-start run
// unchanged on merged snapshots. This is the associative-array merge
// the sharded live engine (internal/incr) relies on.
//
// A single input is returned as-is (the degenerate merge). Inputs must
// either all carry subject lists or none (matching construction from a
// shared Options); a mixed merge fails NewDistinct's count validation.
func MergeViews(views ...*View) (*View, error) {
	if len(views) == 1 {
		return views[0], nil
	}
	nameSet := map[string]struct{}{}
	for _, v := range views {
		for _, p := range v.props {
			nameSet[p] = struct{}{}
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	nameIdx := make(map[string]int, len(names))
	for i, n := range names {
		nameIdx[n] = i
	}

	// Merge signatures by remapped bit pattern. Multiplicities add and
	// subject lists concatenate; both are exact under subject-disjoint
	// inputs. The remapped support is kept as an index list and only
	// materialized into a container (adaptive representation) for
	// patterns never seen before, so a wide-schema merge never allocates
	// |P|-wide scratch per signature.
	type acc struct {
		bits     bitset.Bits
		count    int
		subjects []string
		hasSubs  bool
	}
	merged := map[string]*acc{}
	var order []string // deterministic iteration for reproducible builds
	var keyBuf []byte
	var idxBuf []int
	for _, v := range views {
		remap := make([]int, len(v.props))
		for i, p := range v.props {
			remap[i] = nameIdx[p]
		}
		for _, sg := range v.sigs {
			idxBuf = idxBuf[:0]
			sg.Bits.ForEach(func(i int) { idxBuf = append(idxBuf, remap[i]) })
			// Views built by FromGraph/buildView list properties in
			// sorted name order, making remap monotone; New accepts
			// arbitrary column orders, so re-sort when needed.
			if !sort.IntsAreSorted(idxBuf) {
				sort.Ints(idxBuf)
			}
			keyBuf = bitset.AppendSortedIndicesKey(keyBuf[:0], len(names), idxBuf)
			a := merged[string(keyBuf)]
			if a == nil {
				a = &acc{bits: bitset.FromSortedIndices(len(names), idxBuf)}
				merged[string(keyBuf)] = a
				order = append(order, string(keyBuf))
			}
			a.count += sg.Count
			if sg.Subjects != nil {
				a.hasSubs = true
				a.subjects = append(a.subjects, sg.Subjects...)
			}
		}
	}
	sigs := make([]Signature, 0, len(merged))
	for _, k := range order {
		a := merged[k]
		sg := Signature{Bits: a.bits, Count: a.count}
		if a.hasSubs {
			sort.Strings(a.subjects)
			sg.Subjects = a.subjects
		}
		sigs = append(sigs, sg)
	}
	return NewDistinct(names, sigs)
}

func (v *View) sortSigs() {
	sort.Slice(v.sigs, func(i, j int) bool {
		if v.sigs[i].Count != v.sigs[j].Count {
			return v.sigs[i].Count > v.sigs[j].Count
		}
		// CompareBits orders exactly as comparing String() renderings
		// but without materializing two |P|-byte strings per probe —
		// the former tie-break dominated sort cost on wide schemas.
		return bitset.CompareBits(v.sigs[i].Bits, v.sigs[j].Bits) > 0
	})
}

// Properties returns the property columns in view order.
func (v *View) Properties() []string { return v.props }

// PropertyIndex returns the column of property p and whether it exists.
func (v *View) PropertyIndex(p string) (int, bool) {
	i, ok := v.propIndex[p]
	return i, ok
}

// Signatures returns the signature sets in decreasing size order.
func (v *View) Signatures() []Signature { return v.sigs }

// NumSignatures returns |Λ(D)|.
func (v *View) NumSignatures() int { return len(v.sigs) }

// NumSubjects returns |S(D)|.
func (v *View) NumSubjects() int { return v.subjects }

// NumProperties returns the number of property columns.
func (v *View) NumProperties() int { return len(v.props) }

// PropertyCounts returns N_p for each column: the number of subjects
// having each property. The slice is computed once and cached; callers
// must treat it as read-only.
func (v *View) PropertyCounts() []int64 {
	v.pcOnce.Do(func() {
		counts := make([]int64, len(v.props))
		for _, sg := range v.sigs {
			c := int64(sg.Count)
			sg.Bits.ForEach(func(i int) { counts[i] += c })
		}
		v.pcCache = counts
	})
	return v.pcCache
}

// UsedProperties returns the number of columns with at least one
// subject, i.e. |P(D)| of the sub-dataset the view represents. For a
// full dataset this equals NumProperties; for a partition element it
// can be smaller (the paper's U_{i,p} variables).
func (v *View) UsedProperties() int {
	used := 0
	for _, c := range v.PropertyCounts() {
		if c > 0 {
			used++
		}
	}
	return used
}

// Ones returns ΣspM(D)sp: the total number of 1 entries. The value is
// computed once and cached.
func (v *View) Ones() int64 {
	v.onesOnce.Do(func() {
		var total int64
		for _, sg := range v.sigs {
			total += int64(sg.Bits.Count()) * int64(sg.Count)
		}
		v.ones = total
	})
	return v.ones
}

// PairCounts is the pairwise co-occurrence aggregate of a view: an
// associative-array style |P|×|P| matrix whose (i, j) entry is the
// number of subjects having both property columns i and j, with the
// per-property counts N_p on the diagonal. Together with the N_p vector
// and |S| it determines every two-variable measure of the rule language
// in closed form — the compiled σ-evaluators in internal/rules read
// nothing else.
//
// Storage is adaptive: up to pairPlaneMaxProps columns the matrix is a
// dense row-major plane (O(1) reads, word-parallel dense build
// available); above that — where the plane would cost 8·|P|² bytes,
// 3.2 GB at |P| = 20k — it is a symmetric CSR holding only the
// non-zero co-occurrences, read by binary search within a row. Both
// forms hold exactly the same entries.
type PairCounts struct {
	v *View
	c []int64 // dense |P|×|P| row-major, symmetric; nil in CSR mode
	// CSR mode: row i's non-zeros are cols/vals[rowStart[i]:rowStart[i+1]],
	// cols sorted ascending within each row. Symmetric entries are stored
	// on both rows so Both needs a single row probe.
	rowStart []int32
	cols     []int32
	vals     []int64
}

// pairPlaneMaxProps is the widest schema for which the dense |P|² plane
// is still the right pair storage (8 MB at the boundary). Above it the
// plane's zeros dominate: paper-shaped wide datasets co-occur only
// O(Σ|supp|²) pairs out of |P|² possible.
const pairPlaneMaxProps = 1024

// usePairCSR applies the storage policy on top of the plane bound.
func usePairCSR(n int) bool {
	switch bitset.CurrentPolicy() {
	case bitset.PolicyDense:
		return false
	case bitset.PolicySparse:
		return true
	}
	return n > pairPlaneMaxProps
}

// NumProperties returns the number of property columns.
func (pc *PairCounts) NumProperties() int { return len(pc.v.props) }

// Both returns the number of subjects having both column i and column j.
func (pc *PairCounts) Both(i, j int) int64 {
	if pc.c != nil {
		return pc.c[i*len(pc.v.props)+j]
	}
	lo, hi := pc.rowStart[i], pc.rowStart[i+1]
	row := pc.cols[lo:hi]
	k := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		return pc.vals[int(lo)+k]
	}
	return 0
}

// Column resolves a property name to its column index, implementing the
// name-keyed half of the rules-layer PairCounts contract.
func (pc *PairCounts) Column(p string) (int, bool) { return pc.v.PropertyIndex(p) }

// MemSize estimates the aggregate's heap footprint in bytes.
func (pc *PairCounts) MemSize() int64 {
	if pc.c != nil {
		return int64(len(pc.c)) * 8
	}
	return int64(len(pc.rowStart))*4 + int64(len(pc.cols))*4 + int64(len(pc.vals))*8
}

// PairCounts returns the view's pairwise co-occurrence aggregate,
// computed once and cached (sync.Once-guarded like Ones and
// PropertyCounts, so concurrent evaluators share one build).
//
// In plane mode two build strategies produce identical matrices and the
// cheaper one is picked by a cost model: the sparse path makes one pass
// over the signatures accumulating every support pair (O(Σ|supp|²)),
// while the dense path transposes the view into per-column
// signature-incidence bit vectors plus count bit-planes and fills each
// entry word-parallel with bitset.AndCount3
// (O(|P|²·log(max count)·|Λ|/64)). The measured crossover is recorded
// in EXPERIMENTS.md. In CSR mode only the support-pair pass applies —
// its output is the non-zero set itself.
func (v *View) PairCounts() *PairCounts {
	v.pairOnce.Do(func() {
		n := len(v.props)
		pc := &PairCounts{v: v}
		if usePairCSR(n) {
			v.buildPairsCSR(pc)
			v.pairBytes.Store(pc.MemSize())
			v.pairCache = pc
			return
		}
		pc.c = make([]int64, n*n)
		var sparseOps, maxCount int64
		for _, sg := range v.sigs {
			s := int64(sg.Bits.Count())
			sparseOps += s * s
			if int64(sg.Count) > maxCount {
				maxCount = int64(sg.Count)
			}
		}
		planes := int64(bits.Len64(uint64(maxCount)))
		words := int64((len(v.sigs) + 63) / 64)
		// Calibrated on the BenchmarkPairCountsBuild shapes (see
		// EXPERIMENTS.md): a sparse support-pair step retires in ~0.8 ns,
		// a dense AndCount3 probe costs ~4 ns fixed plus ~1.1 ns per
		// signature word — so the dense path only wins once the
		// signature count is large enough to amortize the per-pair
		// overhead (hundreds of signatures for paper-shaped supports).
		denseCost := int64(n) * int64(n+1) / 2 * planes * (40 + 11*words)
		if n > 0 && denseCost < 8*sparseOps {
			v.buildPairsDense(pc, int(maxCount))
		} else {
			v.buildPairsSparse(pc)
		}
		v.pairBytes.Store(pc.MemSize())
		v.pairCache = pc
	})
	return v.pairCache
}

// buildPairsSparse accumulates support pairs in one pass over the
// signatures.
func (v *View) buildPairsSparse(pc *PairCounts) {
	n := len(v.props)
	var idx []int
	for _, sg := range v.sigs {
		idx = sg.Bits.AppendIndices(idx[:0])
		c := int64(sg.Count)
		for _, i := range idx {
			row := pc.c[i*n : (i+1)*n]
			for _, j := range idx {
				row[j] += c
			}
		}
	}
}

// buildPairsCSR accumulates the same support pairs into a hash map of
// non-zero entries and lays them out as a sorted symmetric CSR. The
// entry values are identical to the plane build's — only zeros are
// elided — so every σ read through Both is bit-identical.
func (v *View) buildPairsCSR(pc *PairCounts) {
	n := len(v.props)
	acc := map[uint64]int64{}
	var idx []int
	for _, sg := range v.sigs {
		idx = sg.Bits.AppendIndices(idx[:0])
		c := int64(sg.Count)
		for _, i := range idx {
			base := uint64(i) << 32
			for _, j := range idx {
				acc[base|uint64(j)] += c
			}
		}
	}
	rowLen := make([]int32, n+1)
	for k := range acc {
		rowLen[int(k>>32)+1]++
	}
	for i := 0; i < n; i++ {
		rowLen[i+1] += rowLen[i]
	}
	pc.rowStart = rowLen
	pc.cols = make([]int32, len(acc))
	pc.vals = make([]int64, len(acc))
	next := make([]int32, n)
	for k, c := range acc {
		i, j := int(k>>32), int32(uint32(k))
		at := pc.rowStart[i] + next[i]
		next[i]++
		pc.cols[at] = j
		pc.vals[at] = c
	}
	// Map iteration is unordered; sort each row's (col, val) pairs.
	for i := 0; i < n; i++ {
		lo, hi := pc.rowStart[i], pc.rowStart[i+1]
		cols, vals := pc.cols[lo:hi], pc.vals[lo:hi]
		sort.Sort(&csrRow{cols, vals})
	}
}

type csrRow struct {
	cols []int32
	vals []int64
}

func (r *csrRow) Len() int           { return len(r.cols) }
func (r *csrRow) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r *csrRow) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// buildPairsDense fills the matrix from per-column signature-incidence
// vectors and count bit-planes: entry (i, j) is
// Σ_b 2^b·|{μ : i,j ∈ supp(μ) ∧ bit b of Count(μ)}|, computed with
// word-parallel three-way intersection popcounts.
func (v *View) buildPairsDense(pc *PairCounts, maxCount int) {
	n := len(v.props)
	nSigs := len(v.sigs)
	colSigs := make([]bitset.Set, n)
	for i := range colSigs {
		colSigs[i] = bitset.New(nSigs)
	}
	planes := make([]bitset.Set, bits.Len64(uint64(maxCount)))
	for b := range planes {
		planes[b] = bitset.New(nSigs)
	}
	for mu, sg := range v.sigs {
		sg.Bits.ForEach(func(i int) { colSigs[i].Set(mu) })
		for b := range planes {
			if sg.Count>>uint(b)&1 == 1 {
				planes[b].Set(mu)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var tot int64
			for b, plane := range planes {
				tot += int64(bitset.AndCount3(colSigs[i], colSigs[j], plane)) << uint(b)
			}
			pc.c[i*n+j] = tot
			pc.c[j*n+i] = tot
		}
	}
}

// Subset returns a new view containing only the signatures at the given
// indices (into Signatures()). The property columns are preserved, so
// subset views of the same parent are column-compatible; UsedProperties
// reflects the subset. Passing indices in ascending order preserves the
// parent's size ordering (the common case — assignment group lists are
// built in ascending order); no re-sort is performed, keeping Subset
// cheap enough for inner-loop use by the local-search engine. Panics on
// out-of-range indices.
func (v *View) Subset(sigIdx []int) *View {
	sigs := make([]Signature, 0, len(sigIdx))
	total := 0
	for _, i := range sigIdx {
		sigs = append(sigs, v.sigs[i])
		total += v.sigs[i].Count
	}
	return &View{props: v.props, propIndex: v.propIndex, sigs: sigs, subjects: total}
}

// SignatureOf returns the index (into Signatures()) of the signature
// with the given bit pattern, or -1. The probe may use either
// container representation.
func (v *View) SignatureOf(bits bitset.Bits) int {
	for i, sg := range v.sigs {
		if bitset.EqualBits(sg.Bits, bits) {
			return i
		}
	}
	return -1
}

// StorageStats breaks down a view's signature-tier memory use — the
// observability surface behind /stats and the rdf_view_bytes gauge.
type StorageStats struct {
	// DenseSigs and SparseSigs count signatures by container kind.
	DenseSigs  int
	SparseSigs int
	// SigBytes estimates the signature containers' footprint.
	SigBytes int64
	// PairBytes is the built pair aggregate's footprint (0 before the
	// lazy build runs).
	PairBytes int64
}

// StorageStats returns the view's signature-storage breakdown. Safe to
// call concurrently with a PairCounts build.
func (v *View) StorageStats() StorageStats {
	var st StorageStats
	for _, sg := range v.sigs {
		if bitset.IsSparse(sg.Bits) {
			st.SparseSigs++
		} else {
			st.DenseSigs++
		}
		st.SigBytes += int64(sg.Bits.MemSize())
	}
	st.PairBytes = v.pairBytes.Load()
	return st
}

// MemSize estimates the view's total heap footprint in bytes:
// signature containers, property name table, and any built pair
// aggregate.
func (v *View) MemSize() int64 {
	st := v.StorageStats()
	var props int64
	for _, p := range v.props {
		props += int64(len(p)) + 16 // string header
	}
	return st.SigBytes + st.PairBytes + props
}

// String summarizes the view.
func (v *View) String() string {
	return fmt.Sprintf("view{%d subjects, %d properties, %d signatures}",
		v.subjects, len(v.props), len(v.sigs))
}

// Describe returns a multi-line human-readable summary listing the
// largest signature sets, used in figure reproductions.
func (v *View) Describe(maxSigs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d subjects, %d properties, %d signature sets\n",
		v.subjects, len(v.props), len(v.sigs))
	for i, sg := range v.sigs {
		if i >= maxSigs {
			fmt.Fprintf(&b, "  … %d more signature sets\n", len(v.sigs)-maxSigs)
			break
		}
		fmt.Fprintf(&b, "  %s  ×%d\n", sg.Bits.String(), sg.Count)
	}
	return b.String()
}
