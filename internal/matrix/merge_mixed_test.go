package matrix

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitset"
)

// Mixed-representation merge tests: MergeViews and the pair-aggregate
// plane must produce identical results no matter which container
// policy built each input — including inputs whose fragments mix dense
// and compressed signatures within one view.

// fragDesc describes one mergeable fragment independent of any storage
// policy, so the same fragment can be materialized under different
// policies and the results compared.
type fragDesc struct {
	props    []string
	supports [][]int
	counts   []int
	subjects [][]string // nil when the fragment drops subject lists
}

// materialize builds the fragment's view with the given policy active.
func (f fragDesc) materialize(t *testing.T, pol bitset.Policy) *View {
	t.Helper()
	defer bitset.SetPolicy(bitset.SetPolicy(pol))
	sigs := make([]Signature, len(f.supports))
	for i, supp := range f.supports {
		sigs[i] = Signature{
			Bits:  bitset.FromSortedIndices(len(f.props), supp),
			Count: f.counts[i],
		}
		if f.subjects != nil {
			sigs[i].Subjects = f.subjects[i]
		}
	}
	v, err := New(f.props, sigs)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return v
}

// randomFragments draws subject-disjoint fragments over overlapping
// slices of a wide shared column pool. Column counts straddle the
// sparse cost-model threshold so adaptive materialization genuinely
// mixes representations.
func randomFragments(rng *rand.Rand, nFrags int, withSubjects bool) []fragDesc {
	const poolSize = 1600
	pool := make([]string, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("http://mx/p%04d", i)
	}
	subj := 0
	frags := make([]fragDesc, nFrags)
	for fi := range frags {
		// Each fragment sees a contiguous window of the pool; windows
		// overlap so merged signatures need remapping.
		width := 200 + rng.Intn(poolSize-200)
		start := rng.Intn(poolSize - width + 1)
		f := fragDesc{props: append([]string(nil), pool[start:start+width]...)}
		nSigs := 3 + rng.Intn(8)
		seen := map[string]bool{}
		for len(f.supports) < nSigs {
			k := 1 + rng.Intn(12)
			suppSet := map[int]bool{}
			for len(suppSet) < k {
				suppSet[rng.Intn(width)] = true
			}
			supp := make([]int, 0, k)
			for c := range suppSet {
				supp = append(supp, c)
			}
			sort.Ints(supp)
			key := fmt.Sprint(supp)
			if seen[key] {
				continue
			}
			seen[key] = true
			count := 1 + rng.Intn(5)
			f.supports = append(f.supports, supp)
			f.counts = append(f.counts, count)
			if withSubjects {
				subs := make([]string, count)
				for i := range subs {
					subs[i] = fmt.Sprintf("http://mx/s%06d", subj)
					subj++
				}
				f.subjects = append(f.subjects, subs)
			}
		}
		frags[fi] = f
	}
	return frags
}

// TestMergeViewsMixedRepresentations merges fragments materialized
// under rotating policies (so the merge sees dense, compressed and
// cost-model-mixed inputs at once) and checks the canonical encoding
// against the all-dense reference merge.
func TestMergeViewsMixedRepresentations(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	policies := []bitset.Policy{bitset.PolicyDense, bitset.PolicySparse, bitset.PolicyAdaptive}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		frags := randomFragments(rng, 3+rng.Intn(3), seed%2 == 1)

		bitset.SetPolicy(bitset.PolicyDense)
		ref := make([]*View, len(frags))
		for i, f := range frags {
			ref[i] = f.materialize(t, bitset.PolicyDense)
		}
		refMerged, err := MergeViews(ref...)
		if err != nil {
			t.Fatalf("seed %d: reference merge: %v", seed, err)
		}
		want := refMerged.AppendBinary(nil)

		for _, mergePol := range policies {
			mixed := make([]*View, len(frags))
			for i, f := range frags {
				mixed[i] = f.materialize(t, policies[(i+int(seed))%len(policies)])
			}
			bitset.SetPolicy(mergePol)
			merged, err := MergeViews(mixed...)
			if err != nil {
				t.Fatalf("seed %d: mixed merge: %v", seed, err)
			}
			if got := merged.AppendBinary(nil); !bytes.Equal(got, want) {
				t.Fatalf("seed %d merge policy %v: merged encoding differs from all-dense reference", seed, mergePol)
			}
			// Subject lists survive the merge representation-independently.
			ms, rs := merged.Signatures(), refMerged.Signatures()
			for i := range ms {
				if len(ms[i].Subjects) != len(rs[i].Subjects) {
					t.Fatalf("seed %d: signature %d subject list %d vs %d",
						seed, i, len(ms[i].Subjects), len(rs[i].Subjects))
				}
				for j := range ms[i].Subjects {
					if ms[i].Subjects[j] != rs[i].Subjects[j] {
						t.Fatalf("seed %d: signature %d subject %d differs", seed, i, j)
					}
				}
			}
		}
	}
}

// TestPairCountsCSRMatchesPlane pins the wide-schema pair aggregate:
// the CSR form the adaptive policy builds above the plane bound must
// agree entry-for-entry with the dense |P|² plane on the same view.
func TestPairCountsCSRMatchesPlane(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	rng := rand.New(rand.NewSource(99))
	frags := randomFragments(rng, 4, false)

	bitset.SetPolicy(bitset.PolicyDense)
	views := make([]*View, len(frags))
	for i, f := range frags {
		views[i] = f.materialize(t, bitset.PolicyDense)
	}
	v, err := MergeViews(views...)
	if err != nil {
		t.Fatal(err)
	}
	n := v.NumProperties()
	if n <= 1024 {
		t.Fatalf("merged view has %d columns; need >1024 to cross the CSR bound", n)
	}

	plane := v.PairCounts() // policy dense: |P|² plane even above the bound
	bitset.SetPolicy(bitset.PolicySparse)
	v2, err := DecodeView(v.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	csr := v2.PairCounts()
	if csr.MemSize() >= plane.MemSize() {
		t.Fatalf("CSR %d bytes, plane %d bytes — no reduction", csr.MemSize(), plane.MemSize())
	}

	// Every support pair of every signature, plus random probes (mostly
	// zeros on this sparse shape).
	for _, sg := range v.Signatures() {
		idx := sg.Bits.Indices()
		for _, i := range idx {
			for _, j := range idx {
				if got, want := csr.Both(i, j), plane.Both(i, j); got != want {
					t.Fatalf("Both(%d,%d) = %d, want %d", i, j, got, want)
				}
			}
		}
	}
	for k := 0; k < 5000; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if got, want := csr.Both(i, j), plane.Both(i, j); got != want {
			t.Fatalf("Both(%d,%d) = %d, want %d", i, j, got, want)
		}
	}
}
