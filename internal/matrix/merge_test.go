package matrix_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/rdf"
)

// TestMergeViewsMatchesFromGraph splits a generator graph into
// subject-disjoint shards, builds each shard's view independently, and
// checks that MergeViews reproduces FromGraph on the whole graph
// bit-for-bit: columns, signature order, bits, counts and subject
// lists.
func TestMergeViewsMatchesFromGraph(t *testing.T) {
	full := datagen.MixedDrugSultans(datagen.MixedOptions{
		DrugCompanies: 12, Sultans: 9, SparseSultans: 4, Seed: 5,
	})
	// A few multi-valued and single-property subjects to vary signatures
	// across shards.
	for i := 0; i < 25; i++ {
		full.AddURI(fmt.Sprintf("http://syn/s%d", i), fmt.Sprintf("http://syn/p%d", i%4), "http://syn/o")
	}
	for _, keep := range []bool{false, true} {
		for _, nShards := range []int{2, 3, 5} {
			t.Run(fmt.Sprintf("keep=%v/shards=%d", keep, nShards), func(t *testing.T) {
				shards := make([]*rdf.Graph, nShards)
				for i := range shards {
					shards[i] = rdf.NewGraphWithDict(full.Dict())
				}
				full.EachTriple(func(tr rdf.Triple) {
					h := fnv.New32a()
					h.Write([]byte(tr.Subject))
					shards[h.Sum32()%uint32(nShards)].Add(tr)
				})
				opts := matrix.Options{KeepSubjects: keep}
				views := make([]*matrix.View, nShards)
				for i, g := range shards {
					views[i] = matrix.FromGraph(g, opts)
				}
				merged, err := matrix.MergeViews(views...)
				if err != nil {
					t.Fatal(err)
				}
				want := matrix.FromGraph(full, opts)
				assertSameView(t, merged, want)
			})
		}
	}
}

// assertSameView checks bit-identity of two views.
func assertSameView(t *testing.T, got, want *matrix.View) {
	t.Helper()
	if got.NumSubjects() != want.NumSubjects() {
		t.Fatalf("subjects = %d, want %d", got.NumSubjects(), want.NumSubjects())
	}
	gp, wp := got.Properties(), want.Properties()
	if len(gp) != len(wp) {
		t.Fatalf("properties = %v, want %v", gp, wp)
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("property[%d] = %q, want %q", i, gp[i], wp[i])
		}
	}
	gs, ws := got.Signatures(), want.Signatures()
	if len(gs) != len(ws) {
		t.Fatalf("%d signatures, want %d", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i].Bits.String() != ws[i].Bits.String() || gs[i].Count != ws[i].Count {
			t.Fatalf("signature %d = %s×%d, want %s×%d",
				i, gs[i].Bits, gs[i].Count, ws[i].Bits, ws[i].Count)
		}
		if len(gs[i].Subjects) != len(ws[i].Subjects) {
			t.Fatalf("signature %d has %d subjects, want %d",
				i, len(gs[i].Subjects), len(ws[i].Subjects))
		}
		for j := range gs[i].Subjects {
			if gs[i].Subjects[j] != ws[i].Subjects[j] {
				t.Fatalf("signature %d subject %d = %q, want %q",
					i, j, gs[i].Subjects[j], ws[i].Subjects[j])
			}
		}
	}
}

// TestMergeViewsDegenerate pins the single-input fast path (returned
// as-is) and the empty-inputs merge.
func TestMergeViewsDegenerate(t *testing.T) {
	v := matrix.FromGraph(datagen.DBpediaPersonsGraph(0.001), matrix.Options{})
	got, err := matrix.MergeViews(v)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatal("single-view merge did not return the input view")
	}
	empty1 := matrix.FromGraph(rdf.NewGraph(), matrix.Options{})
	empty2 := matrix.FromGraph(rdf.NewGraph(), matrix.Options{})
	m, err := matrix.MergeViews(empty1, empty2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSubjects() != 0 || m.NumSignatures() != 0 || m.NumProperties() != 0 {
		t.Fatalf("empty merge = %s", m)
	}
	// Empty shards alongside a live one vanish in the merge.
	m, err = matrix.MergeViews(empty1, v, empty2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameView(t, m, v)
}
