package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatalf("empty set: Len=%d Count=%d", s.Len(), s.Count())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Test(%d) did not panic", i)
				}
			}()
			s.Test(i)
		}()
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(8, 1, 3, 5)
	if s.String() != "01010100" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestEqualAndKey(t *testing.T) {
	a := FromIndices(100, 3, 64, 99)
	b := FromIndices(100, 3, 64, 99)
	c := FromIndices(100, 3, 64)
	d := FromIndices(99, 3, 64)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("equal sets not equal")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("different sets compare equal")
	}
	if a.Equal(d) {
		t.Fatal("sets of different capacity compare equal")
	}
}

func TestClone(t *testing.T) {
	a := FromIndices(70, 1, 69)
	b := a.Clone()
	b.Set(2)
	if a.Test(2) {
		t.Fatal("Clone shares storage")
	}
	if !b.Test(1) || !b.Test(69) {
		t.Fatal("Clone lost bits")
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromIndices(10, 0, 1, 2)
	b := FromIndices(10, 2, 3)
	or := a.Clone()
	or.Or(b)
	if or.String() != "1111000000" {
		t.Fatalf("Or = %q", or.String())
	}
	and := a.Clone()
	and.And(b)
	if and.String() != "0010000000" {
		t.Fatalf("And = %q", and.String())
	}
	andnot := a.Clone()
	andnot.AndNot(b)
	if andnot.String() != "1100000000" {
		t.Fatalf("AndNot = %q", andnot.String())
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects false for overlapping sets")
	}
	if a.Intersects(FromIndices(10, 5, 6)) {
		t.Fatal("Intersects true for disjoint sets")
	}
	if !FromIndices(10, 1, 2).IsSubsetOf(a) {
		t.Fatal("IsSubsetOf false for subset")
	}
	if a.IsSubsetOf(b) {
		t.Fatal("IsSubsetOf true for non-subset")
	}
}

func TestIndicesAndForEach(t *testing.T) {
	want := []int{2, 63, 64, 100}
	s := FromIndices(128, want...)
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	var walked []int
	s.ForEach(func(i int) { walked = append(walked, i) })
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", walked, want)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	a := FromIndices(80, 0, 1, 70)
	b := FromIndices(80, 1, 2, 70, 79)
	if d := a.HammingDistance(b); d != 3 {
		t.Fatalf("HammingDistance = %d, want 3", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestMismatchedLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or across lengths did not panic")
		}
	}()
	a, b := New(10), New(11)
	a.Or(b)
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesIndices(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(n)
		seen := map[int]bool{}
		for i := 0; i < n/2; i++ {
			j := rng.Intn(n)
			s.Set(j)
			seen[j] = true
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: x.HammingDistance(y) == (x XOR y).Count() behaviourally —
// distance is symmetric and satisfies the triangle inequality.
func TestQuickHammingMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 1
		mk := func() Set {
			s := New(n)
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 1 {
					s.Set(i)
				}
			}
			return s
		}
		a, b, c := mk(), mk(), mk()
		if a.HammingDistance(b) != b.HammingDistance(a) {
			return false
		}
		return a.HammingDistance(c) <= a.HammingDistance(b)+b.HammingDistance(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective over observed patterns.
func TestQuickKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(4096)
	for i := 0; i < 4096; i += 3 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}

func BenchmarkKey(b *testing.B) {
	s := New(64)
	for i := 0; i < 64; i += 2 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

func TestAndCount(t *testing.T) {
	a := FromIndices(130, 0, 5, 63, 64, 100, 129)
	b := FromIndices(130, 5, 63, 65, 100)
	if got := AndCount(a, b); got != 3 {
		t.Fatalf("AndCount = %d, want 3", got)
	}
	if got := AndCount(a, New(130)); got != 0 {
		t.Fatalf("AndCount with empty = %d, want 0", got)
	}
	if got := AndCount(a, a); got != a.Count() {
		t.Fatalf("AndCount(a,a) = %d, want %d", got, a.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	AndCount(a, New(64))
}

// Property: AndCount agrees with materializing the intersection.
func TestAndCountQuick(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		and := a.Clone()
		and.And(b)
		return AndCount(a, b) == and.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndCount3(t *testing.T) {
	a := FromIndices(130, 0, 5, 63, 64, 100, 129)
	b := FromIndices(130, 0, 5, 63, 65, 100, 129)
	c := FromIndices(130, 5, 63, 100)
	if got := AndCount3(a, b, c); got != 3 {
		t.Fatalf("AndCount3 = %d, want 3", got)
	}
	if got := AndCount3(a, b, New(130)); got != 0 {
		t.Fatalf("AndCount3 with empty = %d, want 0", got)
	}
	if got := AndCount3(a, a, a); got != a.Count() {
		t.Fatalf("AndCount3(a,a,a) = %d, want %d", got, a.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	AndCount3(a, b, New(64))
}

// Property: AndCount3 agrees with materializing the intersection.
func TestAndCount3Quick(t *testing.T) {
	f := func(xs, ys, zs []uint16) bool {
		a, b, c := New(1<<16), New(1<<16), New(1<<16)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		for _, z := range zs {
			c.Set(int(z))
		}
		and := a.Clone()
		and.And(b)
		and.And(c)
		return AndCount3(a, b, c) == and.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendIndices(t *testing.T) {
	s := FromIndices(130, 3, 64, 129)
	scratch := make([]int, 0, 8)
	got := s.AppendIndices(scratch[:0])
	want := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("AppendIndices = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AppendIndices = %v, want %v", got, want)
		}
	}
	// Reuse must not retain stale entries.
	s2 := FromIndices(130, 7)
	got = s2.AppendIndices(got[:0])
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("reused AppendIndices = %v, want [7]", got)
	}
}
