package bitset

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// randomSet returns a dense Set of capacity n with each bit set with
// probability p, plus its sorted index list.
func randomSet(rng *rand.Rand, n int, p float64) (Set, []int) {
	s := New(n)
	var idx []int
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			s.Set(i)
			idx = append(idx, i)
		}
	}
	return s, idx
}

func forceSparse(t *testing.T) {
	t.Helper()
	prev := SetPolicy(PolicySparse)
	t.Cleanup(func() { SetPolicy(prev) })
}

func TestSparseMatchesDenseOps(t *testing.T) {
	forceSparse(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		d, idx := randomSet(rng, n, rng.Float64())
		sp := Compress(d)
		if _, ok := sp.(Sparse); !ok {
			t.Fatalf("PolicySparse did not yield Sparse")
		}
		if sp.Len() != d.Len() || sp.Count() != d.Count() {
			t.Fatalf("Len/Count mismatch: %d/%d vs %d/%d", sp.Len(), sp.Count(), d.Len(), d.Count())
		}
		for i := 0; i < n; i++ {
			if sp.Test(i) != d.Test(i) {
				t.Fatalf("Test(%d) mismatch", i)
			}
		}
		if got := sp.Indices(); !equalInts(got, idx) {
			t.Fatalf("Indices mismatch: %v vs %v", got, idx)
		}
		var walked []int
		sp.ForEach(func(i int) { walked = append(walked, i) })
		if !equalInts(walked, idx) {
			t.Fatalf("ForEach order mismatch: %v vs %v", walked, idx)
		}
		if sp.Key() != d.Key() {
			t.Fatalf("canonical key differs across representations")
		}
		if sp.String() != d.String() {
			t.Fatalf("String differs across representations")
		}
		if !EqualBits(sp, d) || !EqualBits(d, sp) {
			t.Fatalf("EqualBits(sparse, dense) = false on equal patterns")
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFromSortedIndicesAndKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(2500)
		d, idx := randomSet(rng, n, 0.02)
		b := FromSortedIndices(n, idx)
		if !EqualBits(b, d) {
			t.Fatalf("FromSortedIndices pattern mismatch")
		}
		if got := string(AppendSortedIndicesKey(nil, n, idx)); got != d.Key() {
			t.Fatalf("AppendSortedIndicesKey != materialized key")
		}
		// Input slice must be copied, not aliased.
		if len(idx) > 0 {
			idx[0] = n - 1
			if b.Count() != len(b.Indices()) || !sort.IntsAreSorted(b.Indices()) {
				t.Fatalf("FromSortedIndices aliased its input")
			}
		}
	}
	if _, ok := FromSortedIndices(4, []int{1, 3}).(Set); !ok {
		t.Fatalf("narrow pattern should stay dense under adaptive policy")
	}
	if _, ok := FromSortedIndices(8192, []int{1, 3}).(Sparse); !ok {
		t.Fatalf("wide sparse pattern should compress under adaptive policy")
	}
}

func TestKeyInjectiveAcrossShapes(t *testing.T) {
	// Distinct (capacity, pattern) pairs must produce distinct keys even
	// when the index deltas could collide naively.
	seen := map[string]string{}
	add := func(n int, idx ...int) {
		t.Helper()
		k := string(AppendSortedIndicesKey(nil, n, idx))
		desc := FromIndices(n, idx...).String()
		if prev, ok := seen[k]; ok && prev != desc {
			t.Fatalf("key collision: %q vs %q", prev, desc)
		}
		seen[k] = desc
	}
	add(1)
	add(1, 0)
	add(2)
	add(2, 0)
	add(2, 1)
	add(2, 0, 1)
	add(3, 0, 1)
	add(3, 0, 2)
	add(3, 1, 2)
	add(130, 0, 128)
	add(130, 128)
	add(130, 1, 129)
}

func TestCompareBitsMatchesStringOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var pool []Bits
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(80)
		d, idx := randomSet(rng, n, rng.Float64())
		pool = append(pool, d)
		pool = append(pool, Sparse{n: n, idx: toU32(idx)})
	}
	for i := 0; i < 400; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		want := strings.Compare(a.String(), b.String())
		got := CompareBits(a, b)
		if sign(got) != sign(want) {
			t.Fatalf("CompareBits(%q, %q) = %d, want sign of %d", a, b, got, want)
		}
	}
}

func toU32(idx []int) []uint32 {
	out := make([]uint32, len(idx))
	for i, v := range idx {
		out[i] = uint32(v)
	}
	return out
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCrossRepAndCountAndHamming(t *testing.T) {
	forceSparse(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(200)
		a, _ := randomSet(rng, n, rng.Float64())
		b, _ := randomSet(rng, n, rng.Float64())
		wantAnd := AndCount(a, b)
		wantHam := a.HammingDistance(b)
		sa, sb := Compress(a), Compress(b)
		for _, pair := range [][2]Bits{{a, sb}, {sa, b}, {sa, sb}} {
			if got := AndCountBits(pair[0], pair[1]); got != wantAnd {
				t.Fatalf("AndCountBits = %d, want %d", got, wantAnd)
			}
			if got := HammingBits(pair[0], pair[1]); got != wantHam {
				t.Fatalf("HammingBits = %d, want %d", got, wantHam)
			}
		}
	}
}

func TestForcedSparseCompress(t *testing.T) {
	prev := SetPolicy(PolicySparse)
	defer SetPolicy(prev)
	s := FromIndices(10, 2, 5)
	b := Compress(s)
	if _, ok := b.(Sparse); !ok {
		t.Fatalf("PolicySparse Compress returned %T", b)
	}
	prev2 := SetPolicy(PolicyDense)
	defer SetPolicy(prev2)
	if _, ok := Compress(s).(Set); !ok {
		t.Fatalf("PolicyDense Compress returned non-Set")
	}
}

func TestCostModelCrossover(t *testing.T) {
	prev := SetPolicy(PolicyAdaptive)
	defer SetPolicy(prev)
	// Narrow capacities never compress, regardless of density.
	if sparseWins(512, 1) {
		t.Fatalf("narrow capacity chose sparse")
	}
	// Wide and nearly empty compresses.
	if !sparseWins(20000, 15) {
		t.Fatalf("wide sparse signature stayed dense")
	}
	// Wide but saturated stays dense (index array would exceed words).
	if sparseWins(20000, 19000) {
		t.Fatalf("saturated signature chose sparse")
	}
}

func TestCloneBitsIndependence(t *testing.T) {
	d := FromIndices(64, 1, 7, 40)
	c := CloneBits(d).(Set)
	d.Set(2)
	if c.Test(2) {
		t.Fatalf("CloneBits aliased dense words")
	}
	sp := Sparse{n: 5000, idx: []uint32{3, 99}}
	c2 := CloneBits(sp)
	if !EqualBits(c2, sp) {
		t.Fatalf("CloneBits(sparse) mismatch")
	}
}

func TestMemSize(t *testing.T) {
	wide := Sparse{n: 20000, idx: make([]uint32, 12)}
	dense := New(20000)
	if wide.MemSize()*5 > dense.MemSize() {
		t.Fatalf("sparse container not at least 5x smaller: %d vs %d", wide.MemSize(), dense.MemSize())
	}
}

func BenchmarkAppendKeyDense(b *testing.B) {
	s := FromIndices(20000, 1, 77, 300, 4096, 19999)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.AppendKey(buf[:0])
	}
}

func BenchmarkTestSparse(b *testing.B) {
	sp := Sparse{n: 20000, idx: []uint32{1, 77, 300, 4096, 19999}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sp.Test((i * 37) % 20000)
	}
}
