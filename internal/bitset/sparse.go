package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// This file is the adaptive compressed signature tier. A property
// signature over a wide schema (|P| in the tens of thousands, as in
// full DBpedia) almost never has more than a few dozen set bits, so a
// dense word array wastes |P|/8 bytes per signature on zeros. Following
// the roaring-bitmap two-level design, a signature is stored either as
// the existing dense Set or as a Sparse sorted-index array, whichever
// the cost model prefers, behind the read-only Bits interface that the
// view, rule and refinement layers consume. Both containers expose the
// same canonical key and iteration order, so every aggregate computed
// from them — σ rationals, signature sort keys, merge sequences — is
// bit-identical regardless of representation.

// Bits is the read-only signature container: the operations the hot
// paths need (membership, popcount, ordered iteration, canonical
// grouping key). Set and Sparse implement it; signatures are immutable
// once constructed, so no mutator is part of the contract.
type Bits interface {
	// Len returns the capacity (number of addressable bits).
	Len() int
	// Count returns the number of 1 bits.
	Count() int
	// Test reports whether bit i is 1.
	Test(i int) bool
	// AppendIndices appends the positions of the 1 bits to dst in
	// increasing order and returns it.
	AppendIndices(dst []int) []int
	// Indices returns the positions of the 1 bits in increasing order.
	Indices() []int
	// ForEach calls f with each set bit index in increasing order.
	ForEach(f func(i int))
	// AppendKey appends the canonical key bytes to dst and returns it.
	// Equal patterns produce equal keys regardless of representation.
	AppendKey(dst []byte) []byte
	// Key returns the canonical key as a string.
	Key() string
	// String renders the container as a 0/1 string, lowest index first.
	String() string
	// MemSize estimates the container's heap footprint in bytes.
	MemSize() int
}

var (
	_ Bits = Set{}
	_ Bits = Sparse{}
)

// Policy forces or frees the container choice — the representation-
// invariance test hook. Production code leaves it at PolicyAdaptive.
type Policy int32

const (
	// PolicyAdaptive picks the container per signature by the cost model.
	PolicyAdaptive Policy = iota
	// PolicyDense forces every new container dense.
	PolicyDense
	// PolicySparse forces every new container sparse.
	PolicySparse
)

var policy atomic.Int32

// SetPolicy installs the container-choice policy process-wide and
// returns the previous one (restore it with a defer in tests).
func SetPolicy(p Policy) Policy { return Policy(policy.Swap(int32(p))) }

// CurrentPolicy returns the active container-choice policy.
func CurrentPolicy() Policy { return Policy(policy.Load()) }

// Container cost model. A sparse container spends 4 bytes per set bit
// plus a fixed struct overhead; a dense one spends 8 bytes per 64-bit
// word. Below sparseMinLen the dense words fit in a cache line or two
// and every operation is branch-free, so compression can only lose —
// this keeps the narrow paper corpora (|P| ≤ a few hundred) on the
// dense path untouched. Above it, the sparse form wins whenever its
// index array undercuts the word array, which for paper-shaped wide
// signatures (<20 set bits over tens of thousands of columns) is a
// 30×+ reduction.
const (
	sparseMinLen    = 1024
	sparseOverhead  = 32 // Sparse struct + slice header estimate
	denseOverheadB  = 32 // Set struct + slice header estimate
	bytesPerSparse  = 4
	bytesPerWordSet = 8
)

// sparseWins reports whether the cost model prefers the sparse
// container for a pattern of count set bits over n columns.
func sparseWins(n, count int) bool {
	if n < sparseMinLen {
		return false
	}
	words := (n + wordBits - 1) / wordBits
	return bytesPerSparse*count+sparseOverhead < bytesPerWordSet*words
}

// chooseSparse applies the policy on top of the cost model.
func chooseSparse(n, count int) bool {
	switch CurrentPolicy() {
	case PolicyDense:
		return false
	case PolicySparse:
		return true
	}
	return sparseWins(n, count)
}

// Sparse is a compressed bit container: the sorted positions of the 1
// bits. It is immutable by convention (no mutators), shares Set's
// canonical key and iteration order, and implements Bits.
type Sparse struct {
	n   int
	idx []uint32 // sorted ascending, no duplicates
}

// Len returns the capacity (number of addressable bits).
func (s Sparse) Len() int { return s.n }

// Count returns the number of 1 bits.
func (s Sparse) Count() int { return len(s.idx) }

// Test reports whether bit i is 1 (binary search, O(log count)).
func (s Sparse) Test(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	j := sort.Search(len(s.idx), func(k int) bool { return s.idx[k] >= uint32(i) })
	return j < len(s.idx) && s.idx[j] == uint32(i)
}

// AppendIndices appends the positions of the 1 bits to dst in
// increasing order and returns it.
func (s Sparse) AppendIndices(dst []int) []int {
	for _, i := range s.idx {
		dst = append(dst, int(i))
	}
	return dst
}

// Indices returns the positions of the 1 bits in increasing order.
func (s Sparse) Indices() []int { return s.AppendIndices(make([]int, 0, len(s.idx))) }

// ForEach calls f with each set bit index in increasing order.
func (s Sparse) ForEach(f func(i int)) {
	for _, i := range s.idx {
		f(int(i))
	}
}

// AppendKey appends the canonical key bytes to dst and returns it.
func (s Sparse) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.n))
	prev := 0
	for _, i := range s.idx {
		dst = binary.AppendUvarint(dst, uint64(int(i)-prev))
		prev = int(i)
	}
	return dst
}

// Key returns the canonical key as a string.
func (s Sparse) Key() string { return string(s.AppendKey(make([]byte, 0, len(s.idx)+8))) }

// String renders the container as a 0/1 string, lowest index first.
func (s Sparse) String() string {
	var b strings.Builder
	b.Grow(s.n)
	next := 0
	for i := 0; i < s.n; i++ {
		if next < len(s.idx) && int(s.idx[next]) == i {
			b.WriteByte('1')
			next++
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// MemSize estimates the container's heap footprint in bytes.
func (s Sparse) MemSize() int { return sparseOverhead + bytesPerSparse*len(s.idx) }

// MemSize estimates the container's heap footprint in bytes.
func (s Set) MemSize() int { return denseOverheadB + bytesPerWordSet*len(s.words) }

// IsSparse reports whether b uses the compressed representation —
// the storage-accounting probe behind /stats breakdowns.
func IsSparse(b Bits) bool {
	_, ok := b.(Sparse)
	return ok
}

// Compress returns an immutable copy of s in the representation the
// policy and cost model pick — the construction edge of the adaptive
// tier (FromGraph, MergeViews and snapshot builds all funnel through
// here or FromSortedIndices).
func Compress(s Set) Bits {
	if chooseSparse(s.n, s.Count()) {
		idx := make([]uint32, 0, s.Count())
		s.ForEach(func(i int) { idx = append(idx, uint32(i)) })
		return Sparse{n: s.n, idx: idx}
	}
	return s.Clone()
}

// FromSortedIndices builds a container of capacity n from strictly
// ascending bit positions, copying idx, in the representation the
// policy and cost model pick. Panics on out-of-range, unsorted or
// duplicate indices.
func FromSortedIndices(n int, idx []int) Bits {
	prev := -1
	for _, i := range idx {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, n))
		}
		if i <= prev {
			panic(fmt.Sprintf("bitset: indices not strictly ascending at %d", i))
		}
		prev = i
	}
	if chooseSparse(n, len(idx)) {
		out := make([]uint32, len(idx))
		for k, i := range idx {
			out[k] = uint32(i)
		}
		return Sparse{n: n, idx: out}
	}
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// AppendSortedIndicesKey appends the canonical key of the pattern
// {idx...} over n columns to dst — what AppendKey would produce for
// the materialized container, without building it. idx must be
// strictly ascending. The allocation-free probe for grouping loops
// that hold remapped index lists rather than containers.
func AppendSortedIndicesKey(dst []byte, n int, idx []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(n))
	prev := 0
	for _, i := range idx {
		dst = binary.AppendUvarint(dst, uint64(i-prev))
		prev = i
	}
	return dst
}

// CloneBits returns an independent copy of b, preserving its
// representation.
func CloneBits(b Bits) Bits {
	switch t := b.(type) {
	case Set:
		return t.Clone()
	case Sparse:
		return Sparse{n: t.n, idx: append([]uint32(nil), t.idx...)}
	default:
		return FromSortedIndices(b.Len(), b.Indices())
	}
}

// indexIter walks a container's set bits in ascending order without
// allocating — the kernel under the cross-representation comparisons.
type indexIter struct {
	// dense cursor
	words []uint64
	wi    int
	cur   uint64
	// sparse cursor
	idx []uint32
	si  int
	// fallback (foreign Bits implementations)
	rest []int
}

func iterOf(b Bits) indexIter {
	switch t := b.(type) {
	case Set:
		it := indexIter{words: t.words}
		if len(it.words) > 0 {
			it.cur = it.words[0]
		}
		return it
	case Sparse:
		return indexIter{idx: t.idx, words: nil}
	default:
		return indexIter{rest: b.Indices()}
	}
}

// next returns the next set index, or ok = false when exhausted.
func (it *indexIter) next() (int, bool) {
	if it.words != nil {
		for {
			if it.cur != 0 {
				b := bits.TrailingZeros64(it.cur)
				it.cur &= it.cur - 1
				return it.wi*wordBits + b, true
			}
			it.wi++
			if it.wi >= len(it.words) {
				return 0, false
			}
			it.cur = it.words[it.wi]
		}
	}
	if it.idx != nil || it.si < len(it.idx) {
		if it.si < len(it.idx) {
			v := int(it.idx[it.si])
			it.si++
			return v, true
		}
		return 0, false
	}
	if it.si < len(it.rest) {
		v := it.rest[it.si]
		it.si++
		return v, true
	}
	return 0, false
}

// EqualBits reports whether a and b have the same capacity and bit
// pattern, across representations.
func EqualBits(a, b Bits) bool {
	if as, ok := a.(Set); ok {
		if bs, ok := b.(Set); ok {
			return as.Equal(bs)
		}
	}
	if a.Len() != b.Len() || a.Count() != b.Count() {
		return false
	}
	ia, ib := iterOf(a), iterOf(b)
	for {
		va, oka := ia.next()
		vb, okb := ib.next()
		if oka != okb {
			return false
		}
		if !oka {
			return true
		}
		if va != vb {
			return false
		}
	}
}

// CompareBits orders containers exactly as comparing their String()
// renderings would (the signature sort tie-break): negative when
// a.String() < b.String(), zero on equal patterns, positive otherwise
// — without materializing either string. For equal capacities the
// first index where the patterns differ decides: the container with
// that bit set renders '1' against '0' and sorts greater.
func CompareBits(a, b Bits) int {
	ia, ib := iterOf(a), iterOf(b)
	n := a.Len()
	if m := b.Len(); m < n {
		n = m
	}
	for {
		va, oka := ia.next()
		vb, okb := ib.next()
		switch {
		case oka && okb:
			if va == vb {
				continue
			}
			// The lower differing index belongs to the container whose
			// bit is set there.
			if va < vb {
				if va < n {
					return 1
				}
			} else if vb < n {
				return -1
			}
			// Differing index beyond the shorter capacity: the common
			// prefix is equal, the longer string wins.
			return lenCompare(a, b)
		case oka:
			if va < n {
				return 1
			}
			return lenCompare(a, b)
		case okb:
			if vb < n {
				return -1
			}
			return lenCompare(a, b)
		default:
			return lenCompare(a, b)
		}
	}
}

// lenCompare breaks ties between patterns equal over the common
// capacity: Go string comparison makes the shorter rendering smaller.
func lenCompare(a, b Bits) int {
	switch {
	case a.Len() < b.Len():
		return -1
	case a.Len() > b.Len():
		return 1
	default:
		return 0
	}
}

// AndCountBits returns the number of bits set in both a and b, across
// representations. Panics if capacities differ, matching AndCount.
func AndCountBits(a, b Bits) int {
	if as, ok := a.(Set); ok {
		if bs, ok := b.(Set); ok {
			return AndCount(as, bs)
		}
	}
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("bitset: mismatched lengths %d and %d", a.Len(), b.Len()))
	}
	// Probe the sparser side's indices against the other container:
	// O(count·log count) beats a merge when one side is dense.
	if a.Count() > b.Count() {
		a, b = b, a
	}
	c := 0
	it := iterOf(a)
	for {
		v, ok := it.next()
		if !ok {
			return c
		}
		if b.Test(v) {
			c++
		}
	}
}

// HammingBits returns the number of positions at which a and b differ,
// across representations. Panics if capacities differ, matching
// Set.HammingDistance.
func HammingBits(a, b Bits) int {
	if as, ok := a.(Set); ok {
		if bs, ok := b.(Set); ok {
			return as.HammingDistance(bs)
		}
	}
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("bitset: mismatched lengths %d and %d", a.Len(), b.Len()))
	}
	ia, ib := iterOf(a), iterOf(b)
	va, oka := ia.next()
	vb, okb := ib.next()
	d := 0
	for oka && okb {
		switch {
		case va == vb:
			va, oka = ia.next()
			vb, okb = ib.next()
		case va < vb:
			d++
			va, oka = ia.next()
		default:
			d++
			vb, okb = ib.next()
		}
	}
	for oka {
		d++
		_, oka = ia.next()
		// consume remaining a indices
	}
	for okb {
		d++
		_, okb = ib.next()
	}
	return d
}
