// Package bitset provides a dense, fixed-capacity bit set used to
// represent property signatures (Definition 4.1 of the paper): one bit
// per property column of the property-structure view M(D).
package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set. The zero value is an empty set of capacity 0;
// use New to create a set with a given capacity. Sets of different
// lengths are never equal.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set able to hold n bits, all initially zero.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a Set of capacity n with the given bits set.
func FromIndices(n int, idx ...int) Set {
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// Len returns the capacity (number of addressable bits).
func (s Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (s Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is 1.
func (s Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of 1 bits (the signature support size).
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether s and t have the same capacity and bits.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	t := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(t.words, s.words)
	return t
}

// Key returns a string usable as a map key identifying the bit pattern.
// Two sets have the same Key iff they are Equal.
func (s Set) Key() string {
	return string(s.AppendKey(make([]byte, 0, s.Count()+8)))
}

// AppendKey appends the Key bytes to dst and returns it — the
// allocation-free form for hot grouping loops, where the caller probes
// a map with string(AppendKey(buf[:0])) and only materializes the
// string for genuinely new patterns. The format is canonical across
// representations — varint capacity followed by delta-varint set-bit
// indices (injective because varints self-delimit) — so dense and
// sparse containers holding the same pattern collide in the same map
// bucket, and its size tracks the support, not the capacity.
func (s Set) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.n))
	prev := 0
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			i := wi*wordBits + b
			dst = binary.AppendUvarint(dst, uint64(i-prev))
			prev = i
			w &= w - 1
		}
	}
	return dst
}

// Reset clears every bit, keeping the capacity — for reusing one
// scratch set across a grouping loop.
func (s Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// String renders the set as a 0/1 string, lowest index first,
// e.g. "1011" — convenient in tests and visualizations.
func (s Set) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Or sets s to the bitwise OR of s and t. Panics if capacities differ.
func (s Set) Or(t Set) {
	s.sameLen(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// And sets s to the bitwise AND of s and t. Panics if capacities differ.
func (s Set) And(t Set) {
	s.sameLen(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// AndNot clears in s every bit set in t. Panics if capacities differ.
func (s Set) AndNot(t Set) {
	s.sameLen(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// AndCount returns the number of bits set in both a and b — the
// popcount of the intersection, computed word-parallel without
// materializing the intersection or its indices. Panics if capacities
// differ.
func AndCount(a, b Set) int {
	a.sameLen(b)
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w & b.words[i])
	}
	return c
}

// AndCount3 returns the number of bits set in all of a, b and c — the
// popcount of the three-way intersection, computed word-parallel. It is
// the kernel of the dense pair-count build: with a and b as per-column
// signature-incidence vectors and c as one bit-plane of the signature
// counts, Σ_plane 2^plane·AndCount3 is the subject-weighted
// co-occurrence of two columns. Panics if capacities differ.
func AndCount3(a, b, c Set) int {
	a.sameLen(b)
	a.sameLen(c)
	n := 0
	for i, w := range a.words {
		n += bits.OnesCount64(w & b.words[i] & c.words[i])
	}
	return n
}

// Intersects reports whether s and t share any set bit.
func (s Set) Intersects(t Set) bool {
	s.sameLen(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every bit of s is also set in t.
func (s Set) IsSubsetOf(t Set) bool {
	s.sameLen(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

func (s Set) sameLen(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: mismatched lengths %d and %d", s.n, t.n))
	}
}

// Indices returns the positions of the 1 bits in increasing order.
func (s Set) Indices() []int {
	return s.AppendIndices(make([]int, 0, s.Count()))
}

// AppendIndices appends the positions of the 1 bits to dst in
// increasing order and returns it — the allocation-free form for loops
// that materialize supports into a reused scratch slice.
func (s Set) AppendIndices(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls f with each set bit index in increasing order.
func (s Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// HammingDistance returns the number of positions at which s and t
// differ. Panics if capacities differ.
func (s Set) HammingDistance(t Set) int {
	s.sameLen(t)
	d := 0
	for i := range s.words {
		d += bits.OnesCount64(s.words[i] ^ t.words[i])
	}
	return d
}
