package experiments

import (
	"math"
	"strings"
	"testing"
)

// The experiment tests assert the *shape* of each paper artifact —
// who wins, by roughly what factor, where the splits fall — not exact
// runtimes (see EXPERIMENTS.md). Quick mode keeps the suite fast.

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func metric(t *testing.T, rep *Report, key string) float64 {
	t.Helper()
	v, ok := rep.Metrics[key]
	if !ok {
		t.Fatalf("%s: missing metric %q (have %v)", rep.ID, key, rep.Metrics)
	}
	return v
}

func TestFig2Shape(t *testing.T) {
	rep, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := metric(t, rep, "signatures"); got != 64 {
		t.Errorf("signatures = %v, want 64", got)
	}
	if got := metric(t, rep, "cov"); math.Abs(got-0.54) > 0.02 {
		t.Errorf("cov = %v, want ≈0.54", got)
	}
	if got := metric(t, rep, "sim"); math.Abs(got-0.77) > 0.02 {
		t.Errorf("sim = %v, want ≈0.77", got)
	}
}

func TestFig3Shape(t *testing.T) {
	rep, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := metric(t, rep, "signatures"); got != 53 {
		t.Errorf("signatures = %v, want 53", got)
	}
	if got := metric(t, rep, "cov"); math.Abs(got-0.44) > 0.02 {
		t.Errorf("cov = %v, want ≈0.44", got)
	}
	if got := metric(t, rep, "sim"); math.Abs(got-0.93) > 0.03 {
		t.Errorf("sim = %v, want ≈0.93", got)
	}
}

func TestFig4aAliveDeadSplit(t *testing.T) {
	rep, err := Fig4a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's split: both sorts clear ≈0.7 coverage and the larger
	// sort holds only death-free signatures ("people that are alive").
	if got := metric(t, rep, "theta"); got < 0.65 {
		t.Errorf("theta = %v, want ≥ 0.65 (paper ≈ 0.71)", got)
	}
	if got := metric(t, rep, "aliveShare"); got != 1.0 {
		t.Errorf("aliveShare = %v, want 1.0", got)
	}
	if got := metric(t, rep, "sort1.cov"); got < 0.65 {
		t.Errorf("sort1 cov = %v, want ≥ 0.65 (paper 0.73)", got)
	}
	// The alive sort keeps the 8 death-free signatures.
	if got := metric(t, rep, "sort1.signatures"); got != 8 {
		t.Errorf("sort1 signatures = %v, want 8 (paper: 8)", got)
	}
}

func TestFig4bSimSplit(t *testing.T) {
	rep, err := Fig4b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Sim improves over the dataset's 0.77 and yields a more balanced
	// split than Cov (paper: 387k vs 403k).
	if got := metric(t, rep, "theta"); got < 0.8 {
		t.Errorf("theta = %v, want ≥ 0.8 (paper ≈ 0.82)", got)
	}
	s1 := metric(t, rep, "sort1.subjects")
	s2 := metric(t, rep, "sort2.subjects")
	ratio := s1 / (s1 + s2)
	if ratio < 0.3 || ratio > 0.8 {
		t.Errorf("split balance = %v, want roughly balanced as in the paper", ratio)
	}
}

func TestFig4cVacuousSort(t *testing.T) {
	rep, err := Fig4c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// One sort reaches σSymDep = 1 (no deathPlace column), the other
	// lands near the paper's 0.82.
	v1 := metric(t, rep, "sort1.symdep")
	v2 := metric(t, rep, "sort2.symdep")
	hi, lo := math.Max(v1, v2), math.Min(v1, v2)
	if hi != 1.0 {
		t.Errorf("no vacuous sort: %v, %v", v1, v2)
	}
	if math.Abs(lo-0.82) > 0.05 {
		t.Errorf("non-vacuous sort σ = %v, want ≈0.82", lo)
	}
}

func TestFig5aLowestK(t *testing.T) {
	rep, err := Fig5a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: k = 9. The heuristic gives an upper bound; it must land in
	// the same regime (5–15), far below the 64-signature identity.
	if got := metric(t, rep, "k"); got < 5 || got > 15 {
		t.Errorf("k = %v, want within [5,15] (paper 9)", got)
	}
}

func TestFig5bLowestK(t *testing.T) {
	rep, err := Fig5b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: k = 4. Sim needs far fewer sorts than Cov (9 vs 4).
	if got := metric(t, rep, "k"); got < 3 || got > 7 {
		t.Errorf("k = %v, want within [3,7] (paper 4)", got)
	}
}

func TestCovNeedsMoreSortsThanSim(t *testing.T) {
	cov, err := Fig5a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Fig5b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, cov, "k") <= metric(t, sim, "k") {
		t.Errorf("Cov k = %v not above Sim k = %v (paper: 9 > 4)",
			cov.Metrics["k"], sim.Metrics["k"])
	}
}

func TestTable1Row1(t *testing.T) {
	rep, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper row 1: deathPlace → {dP 1.0, bP .93, dD .82, bD .77}.
	for key, want := range map[string]float64{
		"dep.dP.dP": 1.0, "dep.dP.bP": 0.93, "dep.dP.dD": 0.82, "dep.dP.bD": 0.77,
	} {
		if got := metric(t, rep, key); math.Abs(got-want) > 0.02 {
			t.Errorf("%s = %v, want ≈%v", key, got, want)
		}
	}
	// The asymmetry the paper highlights: knowing deathPlace implies
	// the rest, but not conversely.
	if metric(t, rep, "dep.bP.dP") > 0.5 {
		t.Errorf("dep.bP.dP = %v, want well below dep.dP.bP", rep.Metrics["dep.bP.dP"])
	}
}

func TestTable2Extremes(t *testing.T) {
	rep, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := metric(t, rep, "givenSur"); got != 1.0 {
		t.Errorf("σSymDep[givenName,surName] = %v, want 1.0", got)
	}
	if got := metric(t, rep, "bottom"); got > 0.15 {
		t.Errorf("bottom pair = %v, want ≤ 0.15 (paper 0.11)", got)
	}
}

func TestFig6Shapes(t *testing.T) {
	a, err := Fig6a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: k=2 Cov on WordNet yields only a small gain (0.44 → ≈0.55).
	if got := metric(t, a, "theta"); got < 0.45 || got > 0.75 {
		t.Errorf("fig6a theta = %v, want a modest gain over 0.44", got)
	}
	b, err := Fig6b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := metric(t, b, "theta"); got < 0.92 {
		t.Errorf("fig6b theta = %v, want ≥ 0.92 (paper ≈ 0.98 at scale 1)", got)
	}
}

func TestFig7Shapes(t *testing.T) {
	a, err := Fig7a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: k = 31 — a large k indicating WordNet is already highly
	// structured. Accept the same regime.
	if got := metric(t, a, "k"); got < 15 {
		t.Errorf("fig7a k = %v, want ≥ 15 (paper 31)", got)
	}
	bRep, err := Fig7b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: k = 4 at θ=0.98. Sim again needs far fewer sorts than Cov.
	if metric(t, bRep, "k") >= metric(t, a, "k") {
		t.Errorf("fig7b k = %v not below fig7a k = %v", bRep.Metrics["k"], a.Metrics["k"])
	}
}

func TestFig8Scalability(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep in -short mode")
	}
	rep, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Superlinear growth in signature count with a meaningful fit
	// (paper: exponent 2.53, R² = 0.72).
	if got := metric(t, rep, "sigExponent"); got < 1.2 {
		t.Errorf("signature exponent = %v, want clearly superlinear", got)
	}
	if got := metric(t, rep, "sigR2"); got < 0.4 {
		t.Errorf("signature fit R² = %v, want ≥ 0.4", got)
	}
	// And no comparable dependence on the subject count (paper §7.3).
	if got := metric(t, rep, "subjR2"); got > metric(t, rep, "sigR2") {
		t.Errorf("subject R² %v exceeds signature R² %v", got, rep.Metrics["sigR2"])
	}
}

func TestSec74Recovery(t *testing.T) {
	rep, err := Sec74(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 100% recall (every drug company recovered), precision
	// below 100% (sparse sultans confused), accuracy ≈ 75–88%.
	if got := metric(t, rep, "plain.recall"); got != 1.0 {
		t.Errorf("recall = %v, want 1.0", got)
	}
	if got := metric(t, rep, "plain.accuracy"); got < 0.7 {
		t.Errorf("accuracy = %v, want ≥ 0.7 (paper 0.746)", got)
	}
	if got := metric(t, rep, "plain.precision"); got >= 1.0 {
		t.Errorf("precision = %v, want < 1.0 (sparse sultans confused)", got)
	}
	if got := metric(t, rep, "ignored.accuracy"); got < metric(t, rep, "plain.accuracy")-0.05 {
		t.Errorf("ignoring syntax made accuracy much worse: %v vs %v",
			got, rep.Metrics["plain.accuracy"])
	}
}

func TestAllRunnersRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Errorf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
		if _, ok := ByID(r.ID); !ok {
			t.Errorf("ByID(%s) failed", r.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
	for _, want := range []string{"fig2", "fig4a", "fig5b", "table1", "fig8", "sec74"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := newReport("x", "tit")
	rep.printf("hello %d\n", 7)
	rep.Metrics["a"] = 1
	s := rep.String()
	for _, want := range []string{"x", "tit", "hello 7", "a=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestIngestDurable: the WAL ablation workload completes in every
// fsync mode and ingests the full corpus regardless of policy.
func TestIngestDurable(t *testing.T) {
	data := IngestCorpus(0.001)
	want := -1
	for _, mode := range []string{"none", "off", "10ms", "batch"} {
		n, err := IngestDurable(data, 500, mode)
		if err != nil {
			t.Fatalf("fsync=%s: %v", mode, err)
		}
		if want == -1 {
			want = n
		} else if n != want {
			t.Fatalf("fsync=%s ingested %d triples, want %d", mode, n, want)
		}
	}
	if _, err := IngestDurable(data, 500, "bogus"); err == nil {
		t.Fatal("bogus fsync mode accepted")
	}
}
