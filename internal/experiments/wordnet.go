package experiments

import (
	"repro/internal/datagen"
	"repro/internal/refine"
	"repro/internal/rules"
	"repro/internal/viz"
)

// Fig3 reproduces Figure 3: the WordNet Nouns signature view (79,689
// subjects, 12 properties, 53 signature sets, σCov = 0.44, σSim = 0.93).
func Fig3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.WordNetNouns(cfg.Scale)
	rep := newReport("fig3", "WordNet Nouns dataset statistics")
	rep.printf("scale %.3g → %d subjects, %d properties, %d signature sets\n",
		cfg.Scale, v.NumSubjects(), v.NumProperties(), v.NumSignatures())
	rep.printf("%s\n", viz.Render(v, viz.Options{MaxRows: 12, ShowCounts: true}))
	cov := rules.Coverage(v).Value()
	sim := rules.Similarity(v).Value()
	rep.printf("σCov = %.2f (paper: 0.44), σSim = %.2f (paper: 0.93)\n", cov, sim)
	rep.Metrics["subjects"] = float64(v.NumSubjects())
	rep.Metrics["properties"] = float64(v.NumProperties())
	rep.Metrics["signatures"] = float64(v.NumSignatures())
	rep.Metrics["cov"] = cov
	rep.Metrics["sim"] = sim
	return rep, nil
}

// Fig6a reproduces Figure 6a: WordNet, σCov, k = 2. The paper found
// only a small improvement (0.44 → ≈0.55 per sort): the dataset's
// dominant signatures share most properties, so two sorts cannot
// separate the long tail.
func Fig6a(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.WordNetNouns(cfg.Scale)
	opts := cfg.search()
	out, err := refine.HighestTheta(v, rules.CovRule(), nil, 2, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig6a", "WordNet Nouns, σCov, highest θ for k=2")
	describeSplit(rep, v, out)
	rep.printf("paper: sorts reach σCov ≈ 0.55/0.56 (small gain over 0.44)\n")
	return rep, nil
}

// Fig6b reproduces Figure 6b: WordNet, σSim, k = 2 (the paper's split
// separates the few gloss-less subjects; σSim ≈ 0.94/0.98).
func Fig6b(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.WordNetNouns(cfg.Scale)
	opts := cfg.search()
	out, err := refine.HighestTheta(v, rules.SimRule(), nil, 2, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig6b", "WordNet Nouns, σSim, highest θ for k=2")
	describeSplit(rep, v, out)
	return rep, nil
}

// Fig7a reproduces Figure 7a: WordNet, σCov, lowest k for θ = 0.9.
// The paper needed k = 31 — evidence that WordNet Nouns is already a
// highly structured sort whose Cov-refinement degenerates to
// near-singleton signature groups.
func Fig7a(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.WordNetNouns(cfg.Scale)
	opts := cfg.search()
	opts.Downward = true
	out, err := refine.LowestK(v, rules.CovRule(), nil, 9, 10, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig7a", "WordNet Nouns, σCov, lowest k for θ=0.9")
	rep.printf("lowest k = %d (paper: 31; exact=%v, %d instances, %v)\n",
		out.K, out.Exact, out.Instances, out.Elapsed.Round(1000000))
	rep.Metrics["k"] = float64(out.K)
	return rep, nil
}

// Fig7b reproduces Figure 7b: WordNet, σSim, lowest k for θ = 0.98
// (the paper raises the threshold above the dataset's own 0.93;
// outcome k = 4, with the four dominant signatures in sorts of their
// own).
func Fig7b(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.WordNetNouns(cfg.Scale)
	opts := cfg.search()
	opts.Downward = true
	out, err := refine.LowestK(v, rules.SimRule(), nil, 98, 100, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig7b", "WordNet Nouns, σSim, lowest k for θ=0.98")
	rep.printf("lowest k = %d (paper: 4; exact=%v, %d instances, %v)\n",
		out.K, out.Exact, out.Instances, out.Elapsed.Round(1000000))
	describeSplit(rep, v, out)
	rep.Metrics["k"] = float64(out.K)
	return rep, nil
}
