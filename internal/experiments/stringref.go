package experiments

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rdf"
)

// RefGraph is the pre-interning string-keyed graph implementation,
// retained verbatim as the reference half of two artifacts: the
// equivalence test proving the ID-based pipeline produces bit-identical
// views, σ values and refinements, and the interned-vs-string ingest
// ablation (BenchmarkAblationInternedVsString, cmd/benchjson). Every
// index is keyed by URI string, so each Add hashes the full subject,
// predicate and object strings — the cost the term dictionary removed.
// It supports the add-only ingest + view-construction pipeline; it is
// not a general-purpose graph.
type RefGraph struct {
	triples      []rdf.Triple
	bySubject    map[string][]int
	present      map[refKey]int
	propSubjects map[string]map[string]struct{}
}

type refKey struct {
	s, p string
	ok   rdf.TermKind
	ov   string
}

// NewRefGraph returns an empty reference graph.
func NewRefGraph() *RefGraph {
	return &RefGraph{
		bySubject:    make(map[string][]int),
		present:      make(map[refKey]int),
		propSubjects: make(map[string]map[string]struct{}),
	}
}

// Add inserts t if not already present and reports whether it was
// added — the pre-refactor hot path, string hashing included.
func (g *RefGraph) Add(t rdf.Triple) bool {
	k := refKey{s: t.Subject, p: t.Predicate, ok: t.Object.Kind, ov: t.Object.Value}
	if _, dup := g.present[k]; dup {
		return false
	}
	g.present[k] = len(g.triples)
	g.bySubject[t.Subject] = append(g.bySubject[t.Subject], len(g.triples))
	ps := g.propSubjects[t.Predicate]
	if ps == nil {
		ps = make(map[string]struct{})
		g.propSubjects[t.Predicate] = ps
	}
	ps[t.Subject] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// Len returns the number of triples.
func (g *RefGraph) Len() int { return len(g.triples) }

// Subjects returns the distinct subjects, sorted.
func (g *RefGraph) Subjects() []string {
	out := make([]string, 0, len(g.bySubject))
	for s := range g.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// View builds the property-structure view exactly as the pre-refactor
// matrix.FromGraph did: string-sorted property columns (rdf:type and
// opts.IgnoreProperties excluded), subjects grouped by signature via
// per-subject string property lookups.
func (g *RefGraph) View(opts matrix.Options) *matrix.View {
	ignore := map[string]bool{rdf.TypeURI: true}
	for _, p := range opts.IgnoreProperties {
		ignore[p] = true
	}
	var props []string
	for p := range g.propSubjects {
		if !ignore[p] {
			props = append(props, p)
		}
	}
	sort.Strings(props)
	propIndex := make(map[string]int, len(props))
	for i, p := range props {
		propIndex[p] = i
	}

	type group struct {
		bits     bitset.Set
		subjects []string
	}
	groups := map[string]*group{}
	nSubjects := 0
	for _, s := range g.Subjects() {
		bits := bitset.New(len(props))
		for _, j := range g.bySubject[s] {
			if i, ok := propIndex[g.triples[j].Predicate]; ok {
				bits.Set(i)
			}
		}
		nSubjects++
		k := bits.Key()
		gr := groups[k]
		if gr == nil {
			gr = &group{bits: bits}
			groups[k] = gr
		}
		gr.subjects = append(gr.subjects, s)
	}

	sigs := make([]matrix.Signature, 0, len(groups))
	for _, gr := range groups {
		sg := matrix.Signature{Bits: gr.bits, Count: len(gr.subjects)}
		if opts.KeepSubjects {
			sort.Strings(gr.subjects)
			sg.Subjects = gr.subjects
		}
		sigs = append(sigs, sg)
	}
	v, err := matrix.NewDistinct(props, sigs)
	if err != nil {
		panic("experiments: reference view: " + err.Error())
	}
	return v
}
