package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
)

// This file defines the ingest and refinement workloads shared by the
// root ablation benchmarks (bench_test.go) and cmd/benchjson, so the
// numbers recorded in BENCH_ingest.json / BENCH_refine.json measure
// exactly the code paths the benchmarks do.

// IngestCorpus serializes the DBpedia Persons generator output at the
// given scale to N-Triples — the ingest benchmark input. At scale 0.01
// this is ~7.9k subjects / ~50k triples.
func IngestCorpus(scale float64) []byte {
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, datagen.DBpediaPersonsGraph(scale)); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// IngestInterned decodes an N-Triples corpus through the interning
// streaming decoder into an ID-based rdf.Graph and builds its view —
// the post-refactor ingest pipeline.
func IngestInterned(data []byte) (*matrix.View, int, error) {
	g := rdf.NewGraph()
	err := rdf.ReadNTriplesIDs(bytes.NewReader(data), g.Dict(), func(it rdf.IDTriple) error {
		g.AddID(it)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return matrix.FromGraph(g, matrix.Options{}), g.Len(), nil
}

// IngestString decodes the same corpus through the string decoder into
// the retained pre-refactor RefGraph and builds its view — the
// baseline the ablation compares against.
func IngestString(data []byte) (*matrix.View, int, error) {
	g := NewRefGraph()
	if err := rdf.ReadNTriples(bytes.NewReader(data), func(t rdf.Triple) error {
		g.Add(t)
		return nil
	}); err != nil {
		return nil, 0, err
	}
	return g.View(matrix.Options{}), g.Len(), nil
}

// IngestIncremental streams the corpus into an incremental dataset via
// the interned batch path and reads σCov once — the rdfserved raw-body
// ingest pipeline.
func IngestIncremental(data []byte, batch int) (int, error) {
	d := incr.NewDataset(incr.Options{})
	added, err := d.AddNTriples(bytes.NewReader(data), batch)
	if err != nil {
		return added, err
	}
	_ = d.SigmaCov()
	return added, nil
}

// RefineWorkload runs the Fig4a-class search (σCov highest-θ, k=2)
// with quick budgets on a DBpedia Persons view — the refinement
// trajectory benchmark behind BENCH_refine.json.
func RefineWorkload(scale float64, workers int) (*refine.Outcome, error) {
	v := datagen.DBpediaPersons(scale)
	opts := Config{Quick: true, Seed: 1, Workers: workers}.search()
	out, err := refine.HighestTheta(v, rules.CovRule(), nil, 2, opts)
	if err != nil {
		return nil, fmt.Errorf("refine workload: %w", err)
	}
	return out, nil
}
