package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
	"repro/internal/wal"
)

// This file defines the ingest and refinement workloads shared by the
// root ablation benchmarks (bench_test.go) and cmd/benchjson, so the
// numbers recorded in BENCH_ingest.json / BENCH_refine.json measure
// exactly the code paths the benchmarks do.

// IngestCorpus serializes the DBpedia Persons generator output at the
// given scale to N-Triples — the ingest benchmark input. At scale 0.01
// this is ~7.9k subjects / ~50k triples.
func IngestCorpus(scale float64) []byte {
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, datagen.DBpediaPersonsGraph(scale)); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// IngestInterned decodes an N-Triples corpus through the interning
// streaming decoder into an ID-based rdf.Graph and builds its view —
// the post-refactor ingest pipeline.
func IngestInterned(data []byte) (*matrix.View, int, error) {
	g := rdf.NewGraph()
	err := rdf.ReadNTriplesIDs(bytes.NewReader(data), g.Dict(), func(it rdf.IDTriple) error {
		g.AddID(it)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return matrix.FromGraph(g, matrix.Options{}), g.Len(), nil
}

// IngestString decodes the same corpus through the string decoder into
// the retained pre-refactor RefGraph and builds its view — the
// baseline the ablation compares against.
func IngestString(data []byte) (*matrix.View, int, error) {
	g := NewRefGraph()
	if err := rdf.ReadNTriples(bytes.NewReader(data), func(t rdf.Triple) error {
		g.Add(t)
		return nil
	}); err != nil {
		return nil, 0, err
	}
	return g.View(matrix.Options{}), g.Len(), nil
}

// IngestIncremental streams the corpus into an incremental dataset via
// the interned batch path and reads σCov once — the rdfserved raw-body
// ingest pipeline.
func IngestIncremental(data []byte, batch int) (int, error) {
	d := incr.NewDataset(incr.Options{})
	added, err := d.AddNTriples(bytes.NewReader(data), batch)
	if err != nil {
		return added, err
	}
	_ = d.SigmaCov()
	return added, nil
}

// IngestSharded streams the corpus into a sharded live engine (the
// rdfserved -shards path): one parse pass routing interned batches to
// per-shard ingest workers, then one merged σCov read. shards = 1
// exercises the unsharded delegation.
func IngestSharded(data []byte, batch, shards int) (int, error) {
	s := incr.NewSharded(shards, incr.Options{})
	added, err := s.AddNTriples(bytes.NewReader(data), batch)
	if err != nil {
		return added, err
	}
	_ = s.SigmaCov()
	return added, nil
}

// IngestDurable streams the corpus into an incremental dataset with a
// write-ahead log attached, mirroring the rdfserved -data-dir ingest
// path: parse, apply in batches, and await the durability barrier
// after every batch (exactly what POST /triples does before replying).
// fsync selects the group-commit policy — "none" disables the WAL
// entirely (the in-memory baseline), "off" logs without fsync, "batch"
// fsyncs per batch, and a duration ("10ms") group-commits on that
// interval. The WAL lives in a temp dir on the real filesystem so the
// fsyncs being ablated are real ones.
func IngestDurable(data []byte, batch int, fsync string) (int, error) {
	d := incr.NewDataset(incr.Options{})
	var store *wal.Store
	if fsync != "none" {
		mode, interval, err := wal.ParseSyncMode(fsync)
		if err != nil {
			return 0, err
		}
		dir, err := os.MkdirTemp("", "wal-bench-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		store, _, err = wal.Open(dir, d.Dict(), []*incr.Dataset{d}, wal.Options{
			Mode: mode, SyncInterval: interval,
		})
		if err != nil {
			return 0, err
		}
		defer store.Close()
	}
	added := 0
	pending := make([]rdf.Triple, 0, batch)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		n, _ := d.Apply(pending, nil)
		added += n
		pending = pending[:0]
		if store != nil {
			return store.Barrier()
		}
		return nil
	}
	if err := rdf.ReadNTriples(bytes.NewReader(data), func(t rdf.Triple) error {
		pending = append(pending, t)
		if len(pending) >= batch {
			return flush()
		}
		return nil
	}); err != nil {
		return added, err
	}
	if err := flush(); err != nil {
		return added, err
	}
	_ = d.SigmaCov()
	return added, nil
}

// RefineWorkload runs the Fig4a-class search (σCov highest-θ, k=2)
// with quick budgets on a DBpedia Persons view — the refinement
// trajectory benchmark behind BENCH_refine.json.
func RefineWorkload(scale float64, workers int) (*refine.Outcome, error) {
	v := datagen.DBpediaPersons(scale)
	opts := Config{Quick: true, Seed: 1, Workers: workers}.search()
	out, err := refine.HighestTheta(v, rules.CovRule(), nil, 2, opts)
	if err != nil {
		return nil, fmt.Errorf("refine workload: %w", err)
	}
	return out, nil
}

// opaqueFunc hides a measure's incremental interfaces, forcing the
// search engine and evaluators onto their generic paths — the
// pre-compilation baseline of the compiled-evaluator ablation.
type opaqueFunc struct{ fn rules.Func }

func (o opaqueFunc) Name() string                             { return o.fn.Name() }
func (o opaqueFunc) Eval(v *matrix.View) (rules.Ratio, error) { return o.fn.Eval(v) }

// Opaque wraps fn so it exposes only Name and Eval.
func Opaque(fn rules.Func) rules.Func { return opaqueFunc{fn} }

// DepBenchProps are the DBpedia Persons generator properties used by
// the dependency-measure benchmarks (the Table 1 deathPlace→deathDate
// asymmetry pair).
var DepBenchProps = [2]string{datagen.PropDeathPlace, datagen.PropDeathDate}

// DepEvalScan evaluates σDep by the signature-scan closed form.
func DepEvalScan(v *matrix.View) rules.Ratio {
	return rules.Dep(v, DepBenchProps[0], DepBenchProps[1])
}

// DepEvalKernel evaluates σDep from the memoized pair-count aggregate.
func DepEvalKernel(v *matrix.View) rules.Ratio {
	fn := rules.DepFunc(DepBenchProps[0], DepBenchProps[1]).(rules.PairCountsFunc)
	return fn.EvalPairCounts(v.PropertyCounts(), v.PairCounts(), int64(v.NumSubjects()))
}

// RefineDepWorkload runs a fixed-budget σDep local search on the
// 64-signature DBpedia Persons generator view, with the pair-count
// kernels (baseline = false) or through the opaque scan-per-evaluation
// baseline (baseline = true). It returns the signature scans consumed,
// so callers can derive the scans-per-iteration ablation ratio.
func RefineDepWorkload(v *matrix.View, baseline bool, workers int) (int64, error) {
	fn := rules.DepFunc(DepBenchProps[0], DepBenchProps[1])
	if baseline {
		fn = Opaque(fn)
	}
	p := &refine.Problem{View: v, Func: fn, K: 3, Theta1: 99, Theta2: 100}
	before := rules.SignatureScans()
	_, _, err := refine.SolveHeuristic(p, refine.HeuristicOptions{
		Restarts: 4, MaxIters: 30, Seed: 1, Workers: workers,
	})
	if err != nil {
		return 0, fmt.Errorf("refine dep workload: %w", err)
	}
	return rules.SignatureScans() - before, nil
}

// DepRefineView builds a synthetic DBpedia-shaped view with the given
// column and signature counts — the |P| scaling axis of the
// compiled-evaluator ablation (the DBpedia Persons generator itself is
// fixed at 8 properties × 64 signatures). Signatures get random
// supports with paper-like density and Zipf-ish set sizes.
func DepRefineView(nProps, nSigs int, seed int64) *matrix.View {
	rng := rand.New(rand.NewSource(seed))
	props := make([]string, nProps)
	for i := range props {
		props[i] = fmt.Sprintf("p%03d", i)
	}
	// Ensure the benchmarked pair exists under its generator names.
	props[0], props[1] = DepBenchProps[0], DepBenchProps[1]
	sigs := make([]matrix.Signature, 0, nSigs)
	for i := 0; i < nSigs; i++ {
		b := bitset.New(nProps)
		for j := 0; j < nProps; j++ {
			if rng.Intn(3) != 0 {
				b.Set(j)
			}
		}
		if i%2 == 0 {
			b.Set(0)
		}
		if i%3 == 0 {
			b.Set(1)
		}
		sigs = append(sigs, matrix.Signature{Bits: b, Count: 1 + 1000/(i+1)})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		panic(err)
	}
	return v
}
