package experiments

import (
	"fmt"
	"sort"

	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/refine"
	"repro/internal/rules"
	"repro/internal/viz"
)

// Fig2 reproduces Figure 2: the DBpedia Persons signature view with
// its headline statistics (790,703 subjects, 8 properties, 64
// signature sets, σCov = 0.54, σSim = 0.77).
func Fig2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	rep := newReport("fig2", "DBpedia Persons dataset statistics")
	rep.printf("scale %.3g → %d subjects, %d properties, %d signature sets\n",
		cfg.Scale, v.NumSubjects(), v.NumProperties(), v.NumSignatures())
	rep.printf("%s\n", viz.Render(v, viz.Options{MaxRows: 12, ShowCounts: true}))
	cov := rules.Coverage(v).Value()
	sim := rules.Similarity(v).Value()
	rep.printf("σCov = %.2f (paper: 0.54), σSim = %.2f (paper: 0.77)\n", cov, sim)
	rep.Metrics["subjects"] = float64(v.NumSubjects())
	rep.Metrics["properties"] = float64(v.NumProperties())
	rep.Metrics["signatures"] = float64(v.NumSignatures())
	rep.Metrics["cov"] = cov
	rep.Metrics["sim"] = sim
	return rep, nil
}

// describeSplit renders a k-way refinement the way the paper's figure
// captions do and fills metrics with per-sort values (largest first).
func describeSplit(rep *Report, v *matrix.View, out *refine.Outcome) {
	views, _ := out.Refinement.SortViews(v)
	sort.Slice(views, func(i, j int) bool { return views[i].NumSubjects() > views[j].NumSubjects() })
	rep.printf("highest θ = %d/%d (exact=%v, %d instances, %v)\n",
		out.Theta1, out.Theta2, out.Exact, out.Instances, out.Elapsed.Round(1000000))
	for i, sv := range views {
		cov := rules.Coverage(sv).Value()
		sim := rules.Similarity(sv).Value()
		rep.printf("  sort %d: %d subjects, %d signatures, σCov=%.2f, σSim=%.2f\n",
			i+1, sv.NumSubjects(), sv.NumSignatures(), cov, sim)
		rep.Metrics[fmt.Sprintf("sort%d.subjects", i+1)] = float64(sv.NumSubjects())
		rep.Metrics[fmt.Sprintf("sort%d.signatures", i+1)] = float64(sv.NumSignatures())
		rep.Metrics[fmt.Sprintf("sort%d.cov", i+1)] = cov
		rep.Metrics[fmt.Sprintf("sort%d.sim", i+1)] = sim
	}
	rep.Metrics["theta"] = float64(out.Theta1) / float64(out.Theta2)
	rep.Metrics["sorts"] = float64(len(views))
}

// Fig4a reproduces Figure 4a: σCov, k = 2. The paper's outcome is the
// "alive vs dead" split — the larger sort has no deathDate/deathPlace
// columns at all.
func Fig4a(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	opts := cfg.search()
	out, err := refine.HighestTheta(v, rules.CovRule(), nil, 2, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig4a", "DBpedia Persons, σCov, highest θ for k=2")
	describeSplit(rep, v, out)
	// The paper's signature observation: the larger sort represents
	// people that are alive (no death columns used).
	views, _ := out.Refinement.SortViews(v)
	sort.Slice(views, func(i, j int) bool { return views[i].NumSubjects() > views[j].NumSubjects() })
	alive := deathFreeShare(views)
	rep.printf("death-free share of larger sort: %.2f (1.00 = the paper's alive/dead split)\n", alive)
	rep.Metrics["aliveShare"] = alive
	return rep, nil
}

// deathFreeShare returns the fraction of the largest sort's subjects
// whose signatures use neither deathDate nor deathPlace.
func deathFreeShare(views []*matrix.View) float64 {
	if len(views) == 0 {
		return 0
	}
	sv := views[0]
	di, ok1 := sv.PropertyIndex(datagen.PropDeathDate)
	pi, ok2 := sv.PropertyIndex(datagen.PropDeathPlace)
	if !ok1 || !ok2 {
		return 1
	}
	free := 0
	for _, sg := range sv.Signatures() {
		if !sg.Bits.Test(di) && !sg.Bits.Test(pi) {
			free += sg.Count
		}
	}
	return float64(free) / float64(sv.NumSubjects())
}

// Fig4b reproduces Figure 4b: σSim, k = 2 (the paper's balanced split
// isolating sparsely-described people).
func Fig4b(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	opts := cfg.search()
	out, err := refine.HighestTheta(v, rules.SimRule(), nil, 2, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig4b", "DBpedia Persons, σSim, highest θ for k=2")
	describeSplit(rep, v, out)
	return rep, nil
}

// Fig4c reproduces Figure 4c: σSymDep[deathPlace, deathDate], k = 2.
// The paper's split: a sort without the deathPlace column (vacuous
// σ = 1.0) and a sort where deathPlace and deathDate nearly coincide
// (σ ≈ 0.82).
func Fig4c(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	opts := cfg.search()
	rule := rules.SymDepRule(datagen.PropDeathPlace, datagen.PropDeathDate)
	out, err := refine.HighestTheta(v, rule, nil, 2, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig4c", "DBpedia Persons, σSymDep[deathPlace,deathDate], k=2")
	describeSplit(rep, v, out)
	fn := rules.SymDepFunc(datagen.PropDeathPlace, datagen.PropDeathDate)
	views, _ := out.Refinement.SortViews(v)
	sort.Slice(views, func(i, j int) bool { return views[i].NumSubjects() > views[j].NumSubjects() })
	for i, sv := range views {
		r, err := fn.Eval(sv)
		if err != nil {
			return nil, err
		}
		rep.printf("  sort %d σSymDep[dP,dD] = %.2f\n", i+1, r.Value())
		rep.Metrics[fmt.Sprintf("sort%d.symdep", i+1)] = r.Value()
	}
	return rep, nil
}

// Fig5a reproduces Figure 5a: σCov, lowest k for θ = 0.9 (paper: k=9,
// with alive/dead people separated by which optional columns they use).
func Fig5a(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	opts := cfg.search()
	opts.Downward = true
	out, err := refine.LowestK(v, rules.CovRule(), nil, 9, 10, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig5a", "DBpedia Persons, σCov, lowest k for θ=0.9")
	rep.printf("lowest k = %d (paper: 9; exact=%v, %d instances, %v)\n",
		out.K, out.Exact, out.Instances, out.Elapsed.Round(1000000))
	describeSplit(rep, v, out)
	rep.Metrics["k"] = float64(out.K)
	return rep, nil
}

// Fig5b reproduces Figure 5b: σSim, lowest k for θ = 0.9 (paper: k=4).
func Fig5b(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	opts := cfg.search()
	opts.Downward = true
	out, err := refine.LowestK(v, rules.SimRule(), nil, 9, 10, opts)
	if err != nil {
		return nil, err
	}
	rep := newReport("fig5b", "DBpedia Persons, σSim, lowest k for θ=0.9")
	rep.printf("lowest k = %d (paper: 4; exact=%v, %d instances, %v)\n",
		out.K, out.Exact, out.Instances, out.Elapsed.Round(1000000))
	describeSplit(rep, v, out)
	rep.Metrics["k"] = float64(out.K)
	return rep, nil
}

// Table1 reproduces Table 1: σDep[p1, p2] for all ordered pairs of the
// four death/birth properties.
func Table1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	props := []string{datagen.PropDeathPlace, datagen.PropBirthPlace, datagen.PropDeathDate, datagen.PropBirthDate}
	labels := []string{"dP", "bP", "dD", "bD"}
	rep := newReport("table1", "σDep over death/birth properties")
	rep.printf("%12s", "")
	for _, l := range labels {
		rep.printf("%6s", l)
	}
	rep.printf("\n")
	for i, p1 := range props {
		rep.printf("%12s", p1)
		for j, p2 := range props {
			val := rules.Dep(v, p1, p2).Value()
			rep.printf("%6.2f", val)
			rep.Metrics[fmt.Sprintf("dep.%s.%s", labels[i], labels[j])] = val
		}
		rep.printf("\n")
	}
	rep.printf("paper row 1 (deathPlace): 1.00 0.93 0.82 0.77\n")
	return rep, nil
}

// Table2 reproduces Table 2: the σSymDep ranking over all property
// pairs, highest and lowest entries.
func Table2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	v := datagen.DBpediaPersons(cfg.Scale)
	props := v.Properties()
	type pairVal struct {
		p1, p2 string
		val    float64
	}
	var pairs []pairVal
	for i := 0; i < len(props); i++ {
		for j := i + 1; j < len(props); j++ {
			pairs = append(pairs, pairVal{props[i], props[j], rules.SymDep(v, props[i], props[j]).Value()})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })
	rep := newReport("table2", "σSymDep ranking over property pairs")
	rep.printf("top pairs:\n")
	for _, pv := range pairs[:4] {
		rep.printf("  %-12s %-12s %.2f\n", pv.p1, pv.p2, pv.val)
	}
	rep.printf("bottom pairs:\n")
	for _, pv := range pairs[len(pairs)-4:] {
		rep.printf("  %-12s %-12s %.2f\n", pv.p1, pv.p2, pv.val)
	}
	rep.printf("paper: top = givenName/surName 1.0, name/givenName .95; bottom = deathPlace/name .11\n")
	rep.Metrics["top"] = pairs[0].val
	rep.Metrics["bottom"] = pairs[len(pairs)-1].val
	for _, pv := range pairs {
		if pv.p1 == datagen.PropGivenName && pv.p2 == datagen.PropSurName ||
			pv.p2 == datagen.PropGivenName && pv.p1 == datagen.PropSurName {
			rep.Metrics["givenSur"] = pv.val
		}
	}
	return rep, nil
}
