package experiments

import (
	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
	"repro/internal/stats"
)

// Sec74 reproduces Section 7.4's semantic-correctness experiment: mix
// the Drug Companies and Sultans sorts, solve a highest-θ k=2 sort
// refinement, and score the resulting split against the ground truth
// (Drug Company = positive class). The paper reports 74.6% accuracy,
// 61.4% precision, 100% recall with plain σCov, improving to 82.1% /
// 69.2% / 100% when the RDF-syntax properties are ignored.
func Sec74(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	g := datagen.MixedDrugSultans(datagen.MixedOptions{Seed: cfg.Seed + 3})
	rep := newReport("sec74", "Drug Companies vs Sultans recovery")

	run := func(label string, rule *rules.Rule, ignore []string) (stats.Confusion, error) {
		v := matrix.FromGraph(g, matrix.Options{KeepSubjects: true, IgnoreProperties: ignore})
		opts := cfg.search()
		out, err := refine.HighestTheta(v, rule, nil, 2, opts)
		if err != nil {
			return stats.Confusion{}, err
		}
		conf := scoreSplit(g, v, out.Refinement)
		rep.printf("%s: θ=%d/%d → %s\n", label, out.Theta1, out.Theta2, conf)
		return conf, nil
	}

	plain, err := run("plain σCov          ", rules.CovRule(), nil)
	if err != nil {
		return nil, err
	}
	// The paper's modified rule adds prop(c) ≠ u conjuncts for the
	// RDF-syntax properties; dropping the columns from the view is the
	// equivalent operation on the closed form (verified by the rules
	// package tests).
	ignored, err := run("σCov ignoring syntax", rules.CovRule(), datagen.SharedSyntaxProps)
	if err != nil {
		return nil, err
	}
	rep.printf("paper: plain 74.6%%/61.4%%/100%%; ignoring syntax 82.1%%/69.2%%/100%%\n")

	rep.Metrics["plain.accuracy"] = plain.Accuracy()
	rep.Metrics["plain.precision"] = plain.Precision()
	rep.Metrics["plain.recall"] = plain.Recall()
	rep.Metrics["ignored.accuracy"] = ignored.Accuracy()
	rep.Metrics["ignored.precision"] = ignored.Precision()
	rep.Metrics["ignored.recall"] = ignored.Recall()
	return rep, nil
}

// scoreSplit labels the refinement's sorts by drug-company share (the
// richer labeling the paper implies: every subject in the drug-heavy
// sort is classified as a drug company) and computes the confusion
// matrix with Drug Company as the positive class.
func scoreSplit(g *rdf.Graph, v *matrix.View, ref *refine.Refinement) stats.Confusion {
	// Per predicted sort: how many true drugs / sultans.
	type tally struct{ drugs, sultans int }
	tallies := make([]tally, ref.K)
	subjectSort := map[string]int{}
	for sigIdx, sg := range v.Signatures() {
		sort := ref.Assignment[sigIdx]
		for _, s := range sg.Subjects {
			subjectSort[s] = sort
			switch datagen.TrueSort(g, s) {
			case "drug":
				tallies[sort].drugs++
			case "sultan":
				tallies[sort].sultans++
			}
		}
	}
	// The sort with the larger share of all drug companies is the
	// predicted drug-company sort.
	drugSort, best := 0, -1
	for i, t := range tallies {
		if t.drugs > best {
			best = t.drugs
			drugSort = i
		}
	}
	var conf stats.Confusion
	for s, sort := range subjectSort {
		predictedDrug := sort == drugSort
		actualDrug := datagen.TrueSort(g, s) == "drug"
		switch {
		case predictedDrug && actualDrug:
			conf.TP++
		case predictedDrug && !actualDrug:
			conf.FP++
		case !predictedDrug && actualDrug:
			conf.FN++
		default:
			conf.TN++
		}
	}
	return conf
}
