// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 7) against the calibrated synthetic
// datasets. Each experiment returns a Report with the printable
// artifact and the key numbers, and EXPERIMENTS.md records
// paper-vs-measured for each. cmd/paper is the command-line driver;
// the root bench_test.go exposes one benchmark per artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/refine"
)

// Config scopes an experiment run.
type Config struct {
	// Scale applies to the DBpedia/WordNet generators (1.0 = the
	// paper's full subject counts). Structuredness values are
	// scale-invariant by design; 0.01 is the default trade-off.
	Scale float64
	// Seed drives every randomized component.
	Seed int64
	// Quick trims search budgets for use inside `go test`.
	Quick bool
	// Engine overrides the solver selection (default auto).
	Engine refine.Engine
	// Workers sets the refinement engine's parallelism (0 = GOMAXPROCS,
	// 1 = sequential). Outcomes are identical for every value.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	return c
}

func (c Config) search() refine.SearchOptions {
	opts := refine.SearchOptions{Engine: c.Engine, Workers: c.Workers}
	if c.Quick {
		opts.Heuristic = refine.HeuristicOptions{Restarts: 2, MaxIters: 40, Seed: c.Seed}
		opts.Solver.MaxDecisions = 20_000
		opts.Encode.MaxTVars = 2_500
	} else {
		opts.Heuristic = refine.HeuristicOptions{Restarts: 6, MaxIters: 150, Seed: c.Seed}
		opts.Solver.MaxDecisions = 500_000
		opts.Encode.MaxTVars = 30_000
	}
	opts.Encode.SymmetryBreaking = true
	return opts
}

// Report is the outcome of one experiment.
type Report struct {
	ID      string
	Title   string
	Text    string
	Metrics map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

func (r *Report) printf(format string, args ...interface{}) {
	r.Text += fmt.Sprintf(format, args...)
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n%s", r.ID, r.Title, r.Text)
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.4g", k, r.Metrics[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig2", "DBpedia Persons dataset statistics (Figure 2)", Fig2},
		{"fig3", "WordNet Nouns dataset statistics (Figure 3)", Fig3},
		{"fig4a", "DBpedia Persons, σCov, highest θ for k=2 (Figure 4a)", Fig4a},
		{"fig4b", "DBpedia Persons, σSim, highest θ for k=2 (Figure 4b)", Fig4b},
		{"fig4c", "DBpedia Persons, σSymDep[deathPlace,deathDate], k=2 (Figure 4c)", Fig4c},
		{"fig5a", "DBpedia Persons, σCov, lowest k for θ=0.9 (Figure 5a)", Fig5a},
		{"fig5b", "DBpedia Persons, σSim, lowest k for θ=0.9 (Figure 5b)", Fig5b},
		{"table1", "σDep over death/birth properties (Table 1)", Table1},
		{"table2", "σSymDep ranking over property pairs (Table 2)", Table2},
		{"fig6a", "WordNet Nouns, σCov, highest θ for k=2 (Figure 6a)", Fig6a},
		{"fig6b", "WordNet Nouns, σSim, highest θ for k=2 (Figure 6b)", Fig6b},
		{"fig7a", "WordNet Nouns, σCov, lowest k for θ=0.9 (Figure 7a)", Fig7a},
		{"fig7b", "WordNet Nouns, σSim, lowest k for θ=0.98 (Figure 7b)", Fig7b},
		{"fig8", "YAGO scalability: runtime vs signatures and properties (Figure 8)", Fig8},
		{"sec74", "Semantic correctness: Drug Companies vs Sultans (Section 7.4)", Sec74},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
