package experiments

import (
	"time"

	"repro/internal/datagen"
	"repro/internal/refine"
	"repro/internal/rules"
	"repro/internal/stats"
)

// Fig8 reproduces the scalability study of Section 7.3: for a sample
// of YAGO-like explicit sorts, solve a highest-θ sort refinement for
// k = 2 and model the runtime as a function of the number of
// signatures (power law; paper: s^2.53, R² = 0.72) and of the number
// of properties (exponential; paper: e^0.28p, R² = 0.61). The paper's
// population histograms are reproduced from the same sample.
func Fig8(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	numSorts := 60
	maxSubjects := 20000
	maxSigs := 40
	if cfg.Quick {
		numSorts, maxSubjects, maxSigs = 30, 5000, 30
	}
	sorts := datagen.YagoSample(cfg.Seed+7, datagen.YagoSampleOptions{
		NumSorts:      numSorts,
		MaxSubjects:   maxSubjects,
		MaxSignatures: maxSigs,
	})
	opts := cfg.search()
	// The scalability profile measures the exact ILP engine (as the
	// paper measures CPLEX); the pseudo-Boolean solver's cost grows with
	// the encoding size — signatures and properties — not with the
	// subject count. A uniform per-instance budget keeps the profile
	// comparable across sorts.
	opts.Engine = refine.EngineExact
	opts.Solver.MaxDecisions = 30_000
	opts.Heuristic.Restarts = 2
	opts.Heuristic.MaxIters = 25

	var sigCounts, propCounts, subjCounts, runtimes []float64
	for _, s := range sorts {
		start := time.Now()
		if _, err := refine.HighestTheta(s.View, rules.CovRule(), nil, 2, opts); err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		sigCounts = append(sigCounts, float64(s.View.NumSignatures()))
		propCounts = append(propCounts, float64(s.View.NumProperties()))
		subjCounts = append(subjCounts, float64(s.View.NumSubjects()))
		runtimes = append(runtimes, ms)
	}
	rep := newReport("fig8", "YAGO scalability study")
	rep.printf("%d sorts solved (highest θ, k=2, σCov)\n", len(sorts))

	powerFit, err := stats.PowerFit(sigCounts, runtimes)
	if err != nil {
		return nil, err
	}
	rep.printf("runtime vs signatures: %s (paper: x^2.53, R²=0.72)\n", powerFit)
	expFit, err := stats.ExpFit(propCounts, runtimes)
	if err != nil {
		return nil, err
	}
	rep.printf("runtime vs properties: %s (paper: e^0.28p, R²=0.61)\n", expFit)

	// The paper's key negative result: runtime does NOT depend on the
	// subject count. A power fit against subjects should explain far
	// less variance than the signature fit.
	subjFit, err := stats.PowerFit(subjCounts, runtimes)
	if err != nil {
		return nil, err
	}
	rep.printf("runtime vs subjects:   %s (paper: no dependence)\n", subjFit)

	rep.printf("\nsignature histogram:\n%s", stats.NewHistogram(sigCounts, 8, 0, float64(maxSigs)).String())
	rep.printf("\nproperty histogram:\n%s", stats.NewHistogram(propCounts, 8, 10, 40).String())

	rep.Metrics["sigExponent"] = powerFit.B
	rep.Metrics["sigR2"] = powerFit.R2
	rep.Metrics["propRate"] = expFit.B
	rep.Metrics["propR2"] = expFit.R2
	rep.Metrics["subjR2"] = subjFit.R2
	rep.Metrics["meanRuntimeMs"] = stats.Mean(runtimes)
	rep.Metrics["p95RuntimeMs"] = stats.Percentile(runtimes, 95)
	return rep, nil
}
