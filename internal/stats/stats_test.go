package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPowerFitRecoversExponent(t *testing.T) {
	// y = 2.5·x^1.7 with mild noise.
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for x := 1.0; x < 300; x *= 1.4 {
		xs = append(xs, x)
		ys = append(ys, 2.5*math.Pow(x, 1.7)*(1+0.05*rng.NormFloat64()))
	}
	fit, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B-1.7) > 0.1 {
		t.Fatalf("exponent = %v, want ≈1.7", fit.B)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R² = %v", fit.R2)
	}
}

func TestExpFitRecoversRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs, ys []float64
	for x := 10.0; x <= 40; x += 2 {
		xs = append(xs, x)
		ys = append(ys, 3*math.Exp(0.28*x)*(1+0.05*rng.NormFloat64()))
	}
	fit, err := ExpFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B-0.28) > 0.03 {
		t.Fatalf("rate = %v, want ≈0.28", fit.B)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R² = %v", fit.R2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := PowerFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := PowerFit([]float64{-1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("non-positive xs accepted")
	}
	if _, err := ExpFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate xs accepted")
	}
}

// Property: a perfect power law is recovered exactly (R² = 1).
func TestQuickPowerFitExact(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%50) + 0.5
		b := float64(bRaw%40)/10 - 2
		if b > -0.05 && b < 0.05 {
			b = 0.5 // avoid the constant-y degenerate case, tested separately
		}
		var xs, ys []float64
		for x := 1.0; x <= 100; x *= 2 {
			xs = append(xs, x)
			ys = append(ys, a*math.Pow(x, b))
		}
		fit, err := PowerFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.A-a) < 1e-6*a && math.Abs(fit.B-b) < 1e-9 && fit.R2 > 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 9, 10, 11}, 2, 0, 10)
	if h.Counts[0] != 4 || h.Counts[1] != 2 { // 11 out of range, 10 in last bin
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestConfusion(t *testing.T) {
	// The paper's Section 7.4 matrix: 27 TP, 17 FP, 0 FN, 23 TN.
	c := Confusion{TP: 27, FP: 17, FN: 0, TN: 23}
	if math.Abs(c.Accuracy()-0.746) > 0.001 {
		t.Fatalf("accuracy = %v, want ≈0.746", c.Accuracy())
	}
	if math.Abs(c.Precision()-0.614) > 0.001 {
		t.Fatalf("precision = %v, want ≈0.614", c.Precision())
	}
	if c.Recall() != 1.0 {
		t.Fatalf("recall = %v, want 1.0", c.Recall())
	}
	if c.F1() <= 0 || c.F1() > 1 {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestMeanPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Mean(xs) != 3 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 5 || Percentile(xs, 0) != 1 {
		t.Fatal("extremes wrong")
	}
	if Mean(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty input not handled")
	}
}

func TestPowerFitConstantY(t *testing.T) {
	// Exponent 0: ys constant up to rounding — R² must report a perfect
	// fit rather than amplified rounding noise.
	var xs, ys []float64
	for x := 1.0; x <= 128; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 3.25*math.Pow(x, 0))
	}
	fit, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B) > 1e-9 || fit.R2 < 1-1e-9 {
		t.Fatalf("fit = %+v, want B≈0 R²≈1", fit)
	}
}
