// Package stats provides the statistics used by the paper's evaluation:
// least-squares power-law and exponential fits with R² (the Figure 8
// runtime models), histograms (Figure 8's population panels), and
// binary-classification metrics (Section 7.4).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Fit is a fitted model y = A·x^B (power) or y = A·e^(B·x) (exponential).
type Fit struct {
	A, B float64
	R2   float64
	Kind string // "power" or "exp"
}

// String renders the fit like the paper's captions.
func (f Fit) String() string {
	switch f.Kind {
	case "power":
		return fmt.Sprintf("f(x) ≈ %.3g·x^%.2f (R²=%.2f)", f.A, f.B, f.R2)
	case "exp":
		return fmt.Sprintf("f(x) ≈ %.3g·e^(%.2fx) (R²=%.2f)", f.A, f.B, f.R2)
	}
	return fmt.Sprintf("fit{A=%g,B=%g,R2=%g}", f.A, f.B, f.R2)
}

// linreg computes the least-squares line y = a + b·x and R².
func linreg(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: need ≥2 paired points, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	// R² = 1 − SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := a + b*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	// Near-constant ys make R² numerically meaningless (0/0); treat the
	// fit as perfect when the total variance is at rounding scale.
	if ssTot <= 1e-18*(1+meanY*meanY)*n {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2, nil
}

// PowerFit fits y = A·x^B by linear regression in log-log space
// (the paper's Figure 8a model, runtime vs signature count). All x and
// y must be positive.
func PowerFit(xs, ys []float64) (Fit, error) {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	a, b, r2, err := linreg(lx, ly)
	if err != nil {
		return Fit{}, err
	}
	return Fit{A: math.Exp(a), B: b, R2: r2, Kind: "power"}, nil
}

// ExpFit fits y = A·e^(B·x) by linear regression in semi-log space
// (the paper's Figure 8b model, runtime vs property count). All y must
// be positive.
func ExpFit(xs, ys []float64) (Fit, error) {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if ys[i] <= 0 {
			continue
		}
		lx = append(lx, xs[i])
		ly = append(ly, math.Log(ys[i]))
	}
	a, b, r2, err := linreg(lx, ly)
	if err != nil {
		return Fit{}, err
	}
	return Fit{A: math.Exp(a), B: b, R2: r2, Kind: "exp"}, nil
}

// Histogram bins values into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with the given number of bins.
func NewHistogram(values []float64, bins int, min, max float64) *Histogram {
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	if max <= min || bins <= 0 {
		return h
	}
	w := (max - min) / float64(bins)
	for _, v := range values {
		if v < min || v > max {
			continue
		}
		i := int((v - min) / w)
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// String renders an ASCII bar histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	w := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * 40 / maxC
		}
		fmt.Fprintf(&b, "%10.0f–%-10.0f |%-40s %d\n",
			h.Min+float64(i)*w, h.Min+float64(i+1)*w, strings.Repeat("█", bar), c)
	}
	return b.String()
}

// Confusion is a 2×2 confusion matrix for a binary classification with
// a designated positive class (Section 7.4 treats Drug Company as
// positive).
type Confusion struct {
	TP, FP, FN, TN int
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.FN + c.TN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP), 1 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 1 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d acc=%.1f%% prec=%.1f%% rec=%.1f%%",
		c.TP, c.FP, c.FN, c.TN, 100*c.Accuracy(), 100*c.Precision(), 100*c.Recall())
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using nearest
// rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
