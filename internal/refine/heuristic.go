package refine

import (
	"math/rand"
	"sort"

	"repro/internal/matrix"
	"repro/internal/rules"
)

// HeuristicOptions configures the local-search engine.
type HeuristicOptions struct {
	// Restarts is the number of independent seeds (default 8).
	Restarts int
	// MaxIters caps local-search rounds per restart (default 200).
	MaxIters int
	// Seed makes runs deterministic.
	Seed int64
	// TargetEarlyExit stops at the first restart whose result clears the
	// problem's threshold — the search drivers set this because any
	// verified witness decides the feasibility instance.
	TargetEarlyExit bool
}

func (o *HeuristicOptions) defaults() {
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
}

// SolveHeuristic searches for an assignment maximizing the minimum
// σ over non-empty sorts with at most p.K sorts, via greedy seeding
// plus steepest-ascent relocation local search with restarts. Feasible
// answers are exactly verified witnesses; "not found" answers carry no
// infeasibility proof (use SolveExact for that).
func SolveHeuristic(p *Problem, opts HeuristicOptions) (*Refinement, bool, error) {
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	opts.defaults()
	fn := p.EvalFunc()
	v := p.View
	nSigs := v.NumSignatures()
	rng := rand.New(rand.NewSource(opts.Seed))

	var best Assignment
	bestScore := score{min: -1}

	for r := 0; r < opts.Restarts; r++ {
		var assign Assignment
		var err error
		switch r % 4 {
		case 0:
			assign, err = mergeSeed(fn, v, p.K)
		case 1:
			assign, err = greedySeed(fn, v, p.K)
		case 2:
			assign = profileSeed(v, p.K, rng)
		default:
			assign = make(Assignment, nSigs)
			for i := range assign {
				assign[i] = rng.Intn(p.K)
			}
		}
		if err != nil {
			return nil, false, err
		}
		// Seeds are often already feasible (notably at large k, where a
		// near-identity assignment clears any threshold); skip the local
		// search when a witness only is needed.
		if opts.TargetEarlyExit {
			if ok, err := Feasible(fn, v, assign, p.K, p.Theta1, p.Theta2); err != nil {
				return nil, false, err
			} else if ok {
				best = assign.Clone()
				break
			}
		}
		st, err := newSearchState(fn, v, assign, p.K)
		if err != nil {
			return nil, false, err
		}
		if err := st.localSearch(opts.MaxIters); err != nil {
			return nil, false, err
		}
		if sc := st.score(); sc.better(bestScore) {
			best = st.assign.Clone()
			bestScore = sc
			if opts.TargetEarlyExit {
				if ok, _ := Feasible(fn, v, best, p.K, p.Theta1, p.Theta2); ok {
					break
				}
			}
		}
	}
	values, min, err := EvalAssignment(fn, v, best, p.K)
	if err != nil {
		return nil, false, err
	}
	feasible, err := Feasible(fn, v, best, p.K, p.Theta1, p.Theta2)
	if err != nil {
		return nil, false, err
	}
	// A feasible answer is an exactly-verified witness (rational
	// comparison in Feasible); only a "not found" answer is heuristic.
	return &Refinement{Assignment: best, K: p.K, Values: values, MinSigma: min, Exact: feasible}, feasible, nil
}

// score orders candidate assignments: primarily by minimum σ over
// non-empty sorts, secondarily by the sum of σ values (to escape
// plateaus where the minimum is pinned by one sort).
type score struct {
	min float64
	sum float64
}

func (s score) better(t score) bool {
	const eps = 1e-12
	if s.min > t.min+eps {
		return true
	}
	if s.min < t.min-eps {
		return false
	}
	return s.sum > t.sum+eps
}

// searchState evaluates relocation moves incrementally: per-sort σ
// values are cached and a candidate move re-evaluates only its source
// and destination sorts, making one local-search round O(n·k) sort
// evaluations instead of O(n·k²).
type searchState struct {
	fn     rules.Func
	view   *matrix.View
	assign Assignment
	k      int
	groups [][]int   // sort -> ascending signature indices
	vals   []float64 // per-sort σ (vacuous 1 for empty)
}

func newSearchState(fn rules.Func, v *matrix.View, assign Assignment, k int) (*searchState, error) {
	st := &searchState{fn: fn, view: v, assign: assign, k: k}
	st.groups = make([][]int, k)
	for sig, s := range assign {
		st.groups[s] = append(st.groups[s], sig)
	}
	st.vals = make([]float64, k)
	for s := range st.groups {
		val, err := st.eval(st.groups[s])
		if err != nil {
			return nil, err
		}
		st.vals[s] = val
	}
	return st, nil
}

func (st *searchState) eval(group []int) (float64, error) {
	if len(group) == 0 {
		return 1, nil
	}
	r, err := st.fn.Eval(st.view.Subset(group))
	if err != nil {
		return 0, err
	}
	return r.Value(), nil
}

func (st *searchState) score() score {
	sc := score{min: 1}
	for s, g := range st.groups {
		if len(g) == 0 {
			continue
		}
		sc.sum += st.vals[s]
		if st.vals[s] < sc.min {
			sc.min = st.vals[s]
		}
	}
	return sc
}

// scoreWith computes the score if sorts a and b had values va and vb.
func (st *searchState) scoreWith(a int, va float64, emptyA bool, b int, vb float64) score {
	sc := score{min: 1}
	for s, g := range st.groups {
		var val float64
		switch s {
		case a:
			if emptyA {
				continue
			}
			val = va
		case b:
			val = vb
		default:
			if len(g) == 0 {
				continue
			}
			val = st.vals[s]
		}
		sc.sum += val
		if val < sc.min {
			sc.min = val
		}
	}
	return sc
}

// remove returns group g without signature mu (preserving order).
func remove(g []int, mu int) []int {
	out := make([]int, 0, len(g)-1)
	for _, x := range g {
		if x != mu {
			out = append(out, x)
		}
	}
	return out
}

// insertSorted returns group g with mu inserted in ascending order.
func insertSorted(g []int, mu int) []int {
	i := sort.SearchInts(g, mu)
	out := make([]int, 0, len(g)+1)
	out = append(out, g[:i]...)
	out = append(out, mu)
	return append(out, g[i:]...)
}

// localSearch runs steepest-ascent relocation moves until a local
// optimum or the iteration cap.
func (st *searchState) localSearch(maxIters int) error {
	n := st.view.NumSignatures()
	for iter := 0; iter < maxIters; iter++ {
		curSc := st.score()
		bestSc := curSc
		bestMu, bestSort := -1, -1
		var bestVA, bestVB float64
		for mu := 0; mu < n; mu++ {
			a := st.assign[mu]
			ga := remove(st.groups[a], mu)
			va, err := st.eval(ga)
			if err != nil {
				return err
			}
			for b := 0; b < st.k; b++ {
				if b == a {
					continue
				}
				gb := insertSorted(st.groups[b], mu)
				vb, err := st.eval(gb)
				if err != nil {
					return err
				}
				sc := st.scoreWith(a, va, len(ga) == 0, b, vb)
				if sc.better(bestSc) {
					bestSc = sc
					bestMu, bestSort = mu, b
					bestVA, bestVB = va, vb
				}
			}
		}
		if bestMu < 0 {
			return nil
		}
		a := st.assign[bestMu]
		st.groups[a] = remove(st.groups[a], bestMu)
		st.groups[bestSort] = insertSorted(st.groups[bestSort], bestMu)
		st.assign[bestMu] = bestSort
		st.vals[a] = bestVA
		st.vals[bestSort] = bestVB
	}
	return nil
}

// greedySeed assigns signatures in decreasing size order, each to the
// sort that yields the best interim score, evaluating only the
// receiving sort per candidate.
func greedySeed(fn rules.Func, v *matrix.View, k int) (Assignment, error) {
	n := v.NumSignatures()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sigs := v.Signatures()
	sort.Slice(order, func(a, b int) bool { return sigs[order[a]].Count > sigs[order[b]].Count })

	assign := make(Assignment, n)
	groups := make([][]int, k)
	vals := make([]float64, k)
	used := 0
	evalGroup := func(g []int) (float64, error) {
		if len(g) == 0 {
			return 1, nil
		}
		r, err := fn.Eval(v.Subset(g))
		if err != nil {
			return 0, err
		}
		return r.Value(), nil
	}
	for _, mu := range order {
		// Placing into any currently-empty sort is symmetric; try only
		// the first one.
		maxTry := used + 1
		if maxTry > k {
			maxTry = k
		}
		bestSort, bestSc := 0, score{min: -1}
		var bestVal float64
		for s := 0; s < maxTry; s++ {
			cand := insertSorted(groups[s], mu)
			val, err := evalGroup(cand)
			if err != nil {
				return nil, err
			}
			// Interim score over placed signatures.
			sc := score{min: 1}
			for q := 0; q < k; q++ {
				var qv float64
				if q == s {
					qv = val
				} else if len(groups[q]) == 0 {
					continue
				} else {
					qv = vals[q]
				}
				sc.sum += qv
				if qv < sc.min {
					sc.min = qv
				}
			}
			if sc.better(bestSc) {
				bestSc = sc
				bestSort = s
				bestVal = val
			}
		}
		if len(groups[bestSort]) == 0 {
			used++
		}
		groups[bestSort] = insertSorted(groups[bestSort], mu)
		vals[bestSort] = bestVal
		assign[mu] = bestSort
	}
	return assign, nil
}

// mergeSeed builds an assignment agglomeratively: every signature set
// starts as its own sort (σ = 1 for all built-in measures), then the
// pair of sorts whose merge keeps the highest σ is merged until at most
// k sorts remain. This seed directly targets the lowest-k problem: it
// trades sort count against structuredness one merge at a time.
func mergeSeed(fn rules.Func, v *matrix.View, k int) (Assignment, error) {
	n := v.NumSignatures()
	groups := make([][]int, 0, n)
	for mu := 0; mu < n; mu++ {
		groups = append(groups, []int{mu})
	}
	evalGroup := func(g []int) (float64, error) {
		r, err := fn.Eval(v.Subset(g))
		if err != nil {
			return 0, err
		}
		return r.Value(), nil
	}
	for len(groups) > k {
		bestI, bestJ, bestVal := -1, -1, -1.0
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				merged := mergeSorted(groups[i], groups[j])
				val, err := evalGroup(merged)
				if err != nil {
					return nil, err
				}
				if val > bestVal {
					bestVal = val
					bestI, bestJ = i, j
				}
			}
		}
		merged := mergeSorted(groups[bestI], groups[bestJ])
		groups[bestI] = merged
		groups = append(groups[:bestJ], groups[bestJ+1:]...)
	}
	assign := make(Assignment, n)
	for s, g := range groups {
		for _, mu := range g {
			assign[mu] = s
		}
	}
	return assign, nil
}

// mergeSorted merges two ascending index lists.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// profileSeed clusters signatures around k random centroids by Hamming
// distance on their property bit vectors — a structural seed that often
// lands near "schema-shaped" partitions.
func profileSeed(v *matrix.View, k int, rng *rand.Rand) Assignment {
	n := v.NumSignatures()
	sigs := v.Signatures()
	assign := make(Assignment, n)
	if n == 0 {
		return assign
	}
	centroids := rng.Perm(n)
	if len(centroids) > k {
		centroids = centroids[:k]
	}
	for mu := range assign {
		best, bestD := 0, 1<<30
		for ci, c := range centroids {
			d := sigs[mu].Bits.HammingDistance(sigs[c].Bits)
			if d < bestD {
				bestD = d
				best = ci
			}
		}
		assign[mu] = best
	}
	return assign
}
